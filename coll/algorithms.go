package coll

// The schedule constructors. Each returns a stepper — the rank-local
// round sequence of one algorithm. Peers are rank numbers; the Request
// engine translates them to processes and posts the comm operations.

// barrierDissemination: ⌈log2 n⌉ rounds; in round k every rank sends a
// token to (id+2^k) and receives one from (id-2^k).
func (r *Rank) barrierDissemination() stepper {
	size, id := r.Size(), r.id
	token := []byte{1}
	s := &sched{}
	var stage func(k int)
	stage = func(k int) {
		if k >= size {
			return
		}
		s.push(round{
			sends: []msg{{to: (id + k) % size, data: token}},
			recvs: []rcv{{from: (id - k + size) % size, n: 1}},
		}, func([][]byte) { stage(k << 1) })
	}
	stage(1)
	return s.stepper()
}

// barrierTree: a 1-byte token reduced to rank 0 over the binomial tree,
// then broadcast back down it.
func (r *Rank) barrierTree() stepper {
	first := func(a, b []byte) []byte { return a }
	return then(r.reduceBinomial(0, []byte{1}, first), func(res []byte) stepper {
		return r.bcastBinomial(0, res, 1)
	})
}

// bcastBinomial: the rank receives from its tree parent (unless root),
// then fans out to the subtree below its receive level.
func (r *Rank) bcastBinomial(root int, data []byte, n int) stepper {
	size := r.Size()
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	// Climb the mask to this rank's receive level (past size for root).
	mask := 1
	for mask < size && rel&mask == 0 {
		mask <<= 1
	}
	s := &sched{}
	fanout := func() {
		s.res = data
		var sends []msg
		for m := mask >> 1; m > 0; m >>= 1 {
			if rel+m < size {
				sends = append(sends, msg{to: abs(rel + m), data: data})
			}
		}
		if len(sends) > 0 {
			s.push(round{sends: sends}, nil)
		}
	}
	if rel == 0 {
		fanout()
	} else {
		s.push(round{recvs: []rcv{{from: abs(rel - mask), n: n}}}, func(got [][]byte) {
			data = got[0]
			fanout()
		})
	}
	return s.stepper()
}

// bcastRing: the data travels root → root+1 → … around the ring, n-1
// hops.
func (r *Rank) bcastRing(root int, data []byte, n int) stepper {
	size := r.Size()
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	s := &sched{}
	forward := func() {
		s.res = data
		if size > 1 && rel < size-1 {
			s.push(round{sends: []msg{{to: abs(rel + 1), data: data}}}, nil)
		}
	}
	if rel == 0 {
		forward()
	} else {
		s.push(round{recvs: []rcv{{from: abs(rel - 1), n: n}}}, func(got [][]byte) {
			data = got[0]
			forward()
		})
	}
	return s.stepper()
}

// reduceBinomial: each mask level either sends the accumulator to the
// tree parent (and finishes) or receives a child's contribution and
// folds it in. Combination order follows the tree, so the op must be
// associative and commutative.
func (r *Rank) reduceBinomial(root int, data []byte, op Op) stepper {
	size := r.Size()
	n := len(data)
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	acc := append([]byte(nil), data...)
	s := &sched{}
	var level func(mask int)
	level = func(mask int) {
		for ; mask < size; mask <<= 1 {
			if rel&mask != 0 {
				s.push(round{sends: []msg{{to: abs(rel - mask), data: acc}}}, nil)
				return // non-root ranks end with a nil result
			}
			if rel+mask < size {
				m := mask
				s.push(round{recvs: []rcv{{from: abs(rel + m), n: n}}}, func(got [][]byte) {
					acc = op(acc, got[0])
					level(m << 1)
				})
				return
			}
		}
		s.res = acc // rel == 0: the root holds the reduction
	}
	level(1)
	return s.stepper()
}

// reduceRing is the ordered variant: the accumulator is folded along
// absolute rank order 0 → 1 → … → n-1 — always the left fold
// op(…op(op(d0, d1), d2)…, dn-1), whatever the root — and the final
// rank hands the result to the root.
func (r *Rank) reduceRing(root int, data []byte, op Op) stepper {
	size, id, n := r.Size(), r.id, len(data)
	acc := append([]byte(nil), data...)
	s := &sched{}
	recvResult := func() {
		if id == root && root != size-1 {
			s.push(round{recvs: []rcv{{from: size - 1, n: n}}}, func(got [][]byte) { s.res = got[0] })
		}
	}
	switch {
	case size == 1:
		s.res = acc
	case id == 0:
		s.push(round{sends: []msg{{to: 1, data: acc}}}, func([][]byte) { recvResult() })
	default:
		s.push(round{recvs: []rcv{{from: id - 1, n: n}}}, func(got [][]byte) {
			acc = op(got[0], acc)
			switch {
			case id < size-1:
				s.push(round{sends: []msg{{to: id + 1, data: acc}}}, func([][]byte) { recvResult() })
			case id == root:
				s.res = acc
			default:
				s.push(round{sends: []msg{{to: root, data: acc}}}, nil)
			}
		})
	}
	return s.stepper()
}

// allReduceRD: ⌈log2 n⌉ bidirectional exchange rounds, with the
// standard fold-in/fold-out fixup for non-power-of-two world sizes.
// Latency-optimal for short vectors, and the classic victim of
// ack-latency — which is why it makes a good showcase for
// Push-and-Acknowledge Overlapping.
func (r *Rank) allReduceRD(data []byte, op Op) stepper {
	size, id, n := r.Size(), r.id, len(data)
	acc := append([]byte(nil), data...)
	s := &sched{}
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2

	var stage func(newID, mask int)
	stage = func(newID, mask int) {
		if mask >= pof2 {
			// Unfold: partners return the result to the folded-out ranks.
			if id < 2*rem && id%2 != 0 {
				s.push(round{sends: []msg{{to: id - 1, data: acc}}}, nil)
			}
			s.res = acc
			return
		}
		peerNew := newID ^ mask
		peer := peerNew + rem
		if peerNew < rem {
			peer = peerNew*2 + 1
		}
		s.push(round{sends: []msg{{to: peer, data: acc}}, recvs: []rcv{{from: peer, n: n}}},
			func(got [][]byte) {
				acc = op(acc, got[0])
				stage(newID, mask<<1)
			})
	}

	switch {
	case id < 2*rem && id%2 == 0:
		// Fold the surplus rank into its odd partner, sit out the
		// doubling, and get the result afterward.
		s.push(round{sends: []msg{{to: id + 1, data: acc}}}, func([][]byte) {
			s.push(round{recvs: []rcv{{from: id + 1, n: n}}}, func(got [][]byte) { s.res = got[0] })
		})
	case id < 2*rem:
		s.push(round{recvs: []rcv{{from: id - 1, n: n}}}, func(got [][]byte) {
			acc = op(acc, got[0])
			stage(id/2, 1)
		})
	default:
		stage(id-rem, 1)
	}
	return s.stepper()
}

// allGatherRing: size-1 neighbour exchanges, bandwidth-optimal; the
// result is the rank-major concatenation.
func (r *Rank) allGatherRing(data []byte, n int) stepper {
	size, id := r.Size(), r.id
	out := make([]byte, size*n)
	copy(out[id*n:], data)
	right := (id + 1) % size
	left := (id - 1 + size) % size
	s := &sched{}
	s.res = out
	blk := id // whose block travels out of this rank this step
	var step func(k int)
	step = func(k int) {
		if k >= size {
			return
		}
		s.push(round{
			sends: []msg{{to: right, data: out[blk*n : (blk+1)*n]}},
			recvs: []rcv{{from: left, n: n}},
		}, func(got [][]byte) {
			blk = (blk - 1 + size) % size // the block that just arrived
			copy(out[blk*n:], got[0])
			step(k + 1)
		})
	}
	step(1)
	return s.stepper()
}

// allGatherTree: every contribution is gathered on rank 0 (one linear
// round: n-1 concurrent receives at the root), then the concatenation
// is broadcast over the binomial tree — latency ⌈log2 n⌉+1 rounds, but
// the root moves size·n bytes per tree level.
func (r *Rank) allGatherTree(data []byte, n int) stepper {
	size, id := r.Size(), r.id
	gather := &sched{}
	switch {
	case size == 1:
		gather.res = append([]byte(nil), data...)
	case id != 0:
		gather.push(round{sends: []msg{{to: 0, data: data}}}, nil)
	default:
		out := make([]byte, size*n)
		copy(out, data)
		recvs := make([]rcv, 0, size-1)
		for from := 1; from < size; from++ {
			recvs = append(recvs, rcv{from: from, n: n})
		}
		gather.push(round{recvs: recvs}, func(got [][]byte) {
			for i, b := range got {
				copy(out[(i+1)*n:], b)
			}
			gather.res = out
		})
	}
	return then(gather.stepper(), func(res []byte) stepper {
		return r.bcastBinomial(0, res, size*n)
	})
}
