package coll

// The schedule constructors. Each returns a stepper — the rank-local
// round sequence of one algorithm. Peers are rank numbers; the Request
// engine translates them to processes and posts the comm operations.

// barrierDissemination: ⌈log2 n⌉ rounds; in round k every rank sends a
// token to (id+2^k) and receives one from (id-2^k).
func (r *Rank) barrierDissemination() stepper {
	size, id := r.Size(), r.id
	token := []byte{1}
	s := &sched{}
	var stage func(k int)
	stage = func(k int) {
		if k >= size {
			return
		}
		s.push(round{
			sends: []msg{{to: (id + k) % size, data: token}},
			recvs: []rcv{{from: (id - k + size) % size, n: 1}},
		}, func([][]byte) { stage(k << 1) })
	}
	stage(1)
	return s.stepper()
}

// barrierTree: a 1-byte token reduced to rank 0 over the binomial tree,
// then broadcast back down it.
func (r *Rank) barrierTree() stepper {
	first := func(a, b []byte) []byte { return a }
	return then(r.reduceBinomial(0, []byte{1}, first), func(res []byte) stepper {
		return r.bcastBinomial(0, res, 1)
	})
}

// bcastBinomial: the rank receives from its tree parent (unless root),
// then fans out to the subtree below its receive level.
func (r *Rank) bcastBinomial(root int, data []byte, n int) stepper {
	size := r.Size()
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	// Climb the mask to this rank's receive level (past size for root).
	mask := 1
	for mask < size && rel&mask == 0 {
		mask <<= 1
	}
	s := &sched{}
	fanout := func() {
		s.res = data
		var sends []msg
		for m := mask >> 1; m > 0; m >>= 1 {
			if rel+m < size {
				sends = append(sends, msg{to: abs(rel + m), data: data})
			}
		}
		if len(sends) > 0 {
			s.push(round{sends: sends}, nil)
		}
	}
	if rel == 0 {
		fanout()
	} else {
		s.push(round{recvs: []rcv{{from: abs(rel - mask), n: n}}}, func(got [][]byte) {
			data = got[0]
			fanout()
		})
	}
	return s.stepper()
}

// bcastRing: the data travels root → root+1 → … around the ring, n-1
// hops.
func (r *Rank) bcastRing(root int, data []byte, n int) stepper {
	size := r.Size()
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	s := &sched{}
	forward := func() {
		s.res = data
		if size > 1 && rel < size-1 {
			s.push(round{sends: []msg{{to: abs(rel + 1), data: data}}}, nil)
		}
	}
	if rel == 0 {
		forward()
	} else {
		s.push(round{recvs: []rcv{{from: abs(rel - 1), n: n}}}, func(got [][]byte) {
			data = got[0]
			forward()
		})
	}
	return s.stepper()
}

// bcastRingSeg: the pipelined ring broadcast for long vectors. The
// vector is cut into ⌈n/seg⌉ segments; the root streams them all to its
// successor back to back, and every interior rank forwards segment k-1
// while segment k is still arriving, so once the pipe fills all n-1
// links carry data simultaneously. Completion is ~T(n) + (hops-1)·T(seg)
// instead of the plain ring's hops·T(n) store-and-forward chain.
// Segments ride the collective's one tag lane, so FIFO lane order keeps
// them in sequence however the wire interleaves their fragments.
func (r *Rank) bcastRingSeg(root int, data []byte, n, seg int) stepper {
	size := r.Size()
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	nseg := (n + seg - 1) / seg
	if nseg == 0 {
		nseg = 1 // zero-length broadcast: one empty segment carries the envelope
	}
	bounds := func(k int) (lo, hi int) {
		lo = k * seg
		hi = lo + seg
		if hi > n {
			hi = n
		}
		return lo, hi
	}
	s := &sched{}
	switch {
	case size == 1:
		s.res = data
	case rel == 0:
		// Root: all segments outstanding in one round; the channel's
		// FIFO lane keeps them ordered and the transport pipelines them.
		s.res = data
		sends := make([]msg, nseg)
		for k := range sends {
			lo, hi := bounds(k)
			sends[k] = msg{to: abs(1), data: data[lo:hi]}
		}
		s.push(round{sends: sends}, nil)
	case rel == size-1:
		// Tail: sink every segment; posting all receives up front lets
		// each pull phase start the moment its segment is announced.
		out := make([]byte, n)
		recvs := make([]rcv, nseg)
		for k := range recvs {
			lo, hi := bounds(k)
			recvs[k] = rcv{from: abs(rel - 1), n: hi - lo}
		}
		s.push(round{recvs: recvs}, func(got [][]byte) {
			off := 0
			for _, b := range got {
				off += copy(out[off:], b)
			}
			s.res = out
		})
	default:
		// Interior: round k receives segment k and forwards segment k-1
		// in the same round — the overlap that keeps the pipe moving —
		// then a drain round pushes the final segment onward.
		out := make([]byte, n)
		var stage func(k int)
		stage = func(k int) {
			lo, hi := bounds(k)
			rd := round{recvs: []rcv{{from: abs(rel - 1), n: hi - lo}}}
			if k > 0 {
				plo, phi := bounds(k - 1)
				rd.sends = []msg{{to: abs(rel + 1), data: out[plo:phi]}}
			}
			s.push(rd, func(got [][]byte) {
				copy(out[lo:hi], got[0])
				if k+1 < nseg {
					stage(k + 1)
					return
				}
				s.push(round{sends: []msg{{to: abs(rel + 1), data: out[lo:hi]}}}, nil)
				s.res = out
			})
		}
		stage(0)
	}
	return s.stepper()
}

// reduceBinomial: each mask level either sends the accumulator to the
// tree parent (and finishes) or receives a child's contribution and
// folds it in. Combination order follows the tree, so the op must be
// associative and commutative.
func (r *Rank) reduceBinomial(root int, data []byte, op Op) stepper {
	size := r.Size()
	n := len(data)
	rel := (r.id - root + size) % size
	abs := func(rr int) int { return (rr + root) % size }
	acc := append([]byte(nil), data...)
	s := &sched{}
	var level func(mask int)
	level = func(mask int) {
		for ; mask < size; mask <<= 1 {
			if rel&mask != 0 {
				s.push(round{sends: []msg{{to: abs(rel - mask), data: acc}}}, nil)
				return // non-root ranks end with a nil result
			}
			if rel+mask < size {
				m := mask
				s.push(round{recvs: []rcv{{from: abs(rel + m), n: n}}}, func(got [][]byte) {
					acc = op(acc, got[0])
					level(m << 1)
				})
				return
			}
		}
		s.res = acc // rel == 0: the root holds the reduction
	}
	level(1)
	return s.stepper()
}

// reduceRing is the ordered variant: the accumulator is folded along
// absolute rank order 0 → 1 → … → n-1 — always the left fold
// op(…op(op(d0, d1), d2)…, dn-1), whatever the root — and the final
// rank hands the result to the root.
func (r *Rank) reduceRing(root int, data []byte, op Op) stepper {
	size, id, n := r.Size(), r.id, len(data)
	acc := append([]byte(nil), data...)
	s := &sched{}
	recvResult := func() {
		if id == root && root != size-1 {
			s.push(round{recvs: []rcv{{from: size - 1, n: n}}}, func(got [][]byte) { s.res = got[0] })
		}
	}
	switch {
	case size == 1:
		s.res = acc
	case id == 0:
		s.push(round{sends: []msg{{to: 1, data: acc}}}, func([][]byte) { recvResult() })
	default:
		s.push(round{recvs: []rcv{{from: id - 1, n: n}}}, func(got [][]byte) {
			acc = op(got[0], acc)
			switch {
			case id < size-1:
				s.push(round{sends: []msg{{to: id + 1, data: acc}}}, func([][]byte) { recvResult() })
			case id == root:
				s.res = acc
			default:
				s.push(round{sends: []msg{{to: root, data: acc}}}, nil)
			}
		})
	}
	return s.stepper()
}

// allReduceRD: ⌈log2 n⌉ bidirectional exchange rounds, with the
// standard fold-in/fold-out fixup for non-power-of-two world sizes.
// Latency-optimal for short vectors, and the classic victim of
// ack-latency — which is why it makes a good showcase for
// Push-and-Acknowledge Overlapping.
func (r *Rank) allReduceRD(data []byte, op Op) stepper {
	size, id, n := r.Size(), r.id, len(data)
	acc := append([]byte(nil), data...)
	s := &sched{}
	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2

	var stage func(newID, mask int)
	stage = func(newID, mask int) {
		if mask >= pof2 {
			// Unfold: partners return the result to the folded-out ranks.
			if id < 2*rem && id%2 != 0 {
				s.push(round{sends: []msg{{to: id - 1, data: acc}}}, nil)
			}
			s.res = acc
			return
		}
		peerNew := newID ^ mask
		peer := peerNew + rem
		if peerNew < rem {
			peer = peerNew*2 + 1
		}
		s.push(round{sends: []msg{{to: peer, data: acc}}, recvs: []rcv{{from: peer, n: n}}},
			func(got [][]byte) {
				acc = op(acc, got[0])
				stage(newID, mask<<1)
			})
	}

	switch {
	case id < 2*rem && id%2 == 0:
		// Fold the surplus rank into its odd partner, sit out the
		// doubling, and get the result afterward.
		s.push(round{sends: []msg{{to: id + 1, data: acc}}}, func([][]byte) {
			s.push(round{recvs: []rcv{{from: id + 1, n: n}}}, func(got [][]byte) { s.res = got[0] })
		})
	case id < 2*rem:
		s.push(round{recvs: []rcv{{from: id - 1, n: n}}}, func(got [][]byte) {
			acc = op(acc, got[0])
			stage(id/2, 1)
		})
	default:
		stage(id-rem, 1)
	}
	return s.stepper()
}

// allReduceRSAG: reduce-scatter + allgather over the ring — the
// bandwidth-optimal long-vector AllReduce. The vector is split into
// size blocks (block b spans [b·n/size, (b+1)·n/size)). Phase 1
// (reduce-scatter, size-1 steps): at step s every rank sends block
// id-s to its right neighbour and folds the arriving block id-s-1
// into its accumulator, so after the phase rank r holds the fully
// reduced block r+1. Phase 2 (allgather, size-1 steps): the reduced
// blocks circulate until every rank has them all. Each rank moves
// 2·(size-1)·(n/size) bytes in total, and no rank is a bottleneck —
// unlike the tree, whose root moves ⌈log2 n⌉ full vectors each way.
//
// Block b's contributions fold in rank order *starting at rank b* (the
// cyclic left fold op(…op(op(d_b, d_b+1), d_b+2)…, d_b-1)), so
// different blocks combine in different rotations: like the tree
// algorithms, RSAG needs a commutative op for a well-defined result.
func (r *Rank) allReduceRSAG(data []byte, op Op) stepper {
	size, id, n := r.Size(), r.id, len(data)
	acc := append([]byte(nil), data...)
	s := &sched{}
	if size == 1 {
		s.res = acc
		return s.stepper()
	}
	right, left := (id+1)%size, (id-1+size)%size
	mod := func(x int) int { return ((x % size) + size) % size }
	// Block boundaries fall on gcd(n, 8)-byte marks, so the element-wise
	// int64 reduction helpers (8-byte elements) never see a split
	// element when the vector is a whole number of elements.
	grain := 8
	for n%grain != 0 {
		grain >>= 1
	}
	units := n / grain
	lo := func(b int) int { return b * units / size * grain }
	hi := func(b int) int { return (b + 1) * units / size * grain }
	blk := func(b int) []byte { return acc[lo(b):hi(b)] }

	var rs, ag func(step int)
	rs = func(step int) {
		if step >= size-1 {
			ag(0)
			return
		}
		sb, rb := mod(id-step), mod(id-step-1)
		s.push(round{
			sends: []msg{{to: right, data: blk(sb)}},
			recvs: []rcv{{from: left, n: hi(rb) - lo(rb)}},
		}, func(got [][]byte) {
			copy(blk(rb), op(got[0], blk(rb)))
			rs(step + 1)
		})
	}
	ag = func(step int) {
		if step >= size-1 {
			s.res = acc
			return
		}
		sb, rb := mod(id+1-step), mod(id-step)
		s.push(round{
			sends: []msg{{to: right, data: blk(sb)}},
			recvs: []rcv{{from: left, n: hi(rb) - lo(rb)}},
		}, func(got [][]byte) {
			copy(blk(rb), got[0])
			ag(step + 1)
		})
	}
	rs(0)
	return s.stepper()
}

// allGatherRing: size-1 neighbour exchanges, bandwidth-optimal; the
// result is the rank-major concatenation.
func (r *Rank) allGatherRing(data []byte, n int) stepper {
	size, id := r.Size(), r.id
	out := make([]byte, size*n)
	copy(out[id*n:], data)
	right := (id + 1) % size
	left := (id - 1 + size) % size
	s := &sched{}
	s.res = out
	blk := id // whose block travels out of this rank this step
	var step func(k int)
	step = func(k int) {
		if k >= size {
			return
		}
		s.push(round{
			sends: []msg{{to: right, data: out[blk*n : (blk+1)*n]}},
			recvs: []rcv{{from: left, n: n}},
		}, func(got [][]byte) {
			blk = (blk - 1 + size) % size // the block that just arrived
			copy(out[blk*n:], got[0])
			step(k + 1)
		})
	}
	step(1)
	return s.stepper()
}

// allGatherTree: every contribution is gathered on rank 0 (one linear
// round: n-1 concurrent receives at the root), then the concatenation
// is broadcast over the binomial tree — latency ⌈log2 n⌉+1 rounds, but
// the root moves size·n bytes per tree level.
func (r *Rank) allGatherTree(data []byte, n int) stepper {
	size, id := r.Size(), r.id
	gather := &sched{}
	switch {
	case size == 1:
		gather.res = append([]byte(nil), data...)
	case id != 0:
		gather.push(round{sends: []msg{{to: 0, data: data}}}, nil)
	default:
		out := make([]byte, size*n)
		copy(out, data)
		recvs := make([]rcv, 0, size-1)
		for from := 1; from < size; from++ {
			recvs = append(recvs, rcv{from: from, n: n})
		}
		gather.push(round{recvs: recvs}, func(got [][]byte) {
			for i, b := range got {
				copy(out[(i+1)*n:], b)
			}
			gather.res = out
		})
	}
	return then(gather.stepper(), func(res []byte) stepper {
		return r.bcastBinomial(0, res, size*n)
	})
}
