package coll

import (
	"fmt"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// World maps collective ranks onto the processes of a cluster,
// node-major: rank r is process r%procs on node r/procs.
type World struct {
	c     *cluster.Cluster
	cfg   Config
	ranks []*comm.Comm
	// progs are the per-node progression tasklets (each created on its
	// node's first nonblocking collective): they advance outstanding
	// Requests' rounds as their operations complete, so collectives make
	// progress while rank threads compute, without Test polling. The
	// state is per node — tasklet, outstanding list, completion conds —
	// so under a partitioned cluster every rank's progression runs
	// entirely on its own shard.
	progs []*nodeProgressor
}

// nodeProgressor drives the progressed Requests of one node's ranks on
// that node's engine.
type nodeProgressor struct {
	tk          *sim.Tasklet
	outstanding []*Request
}

// step is the progression tasklet's body: pump every outstanding
// Request, dropping the ones that completed. Spurious wakes (several
// operations broadcasting before the tasklet runs) cost one scan.
func (np *nodeProgressor) step(tk *sim.Tasklet) {
	live := np.outstanding[:0]
	for _, rq := range np.outstanding {
		if !rq.pump(tk) {
			live = append(live, rq)
		}
	}
	for i := len(live); i < len(np.outstanding); i++ {
		np.outstanding[i] = nil
	}
	np.outstanding = live
}

// WorldOption configures a World at construction.
type WorldOption func(*World)

// WithConfig installs the world's per-operation algorithm selection. It
// panics on an invalid pairing — worlds are built from code, not user
// input (screen spec-driven input with Config.Validate first).
func WithConfig(cfg Config) WorldOption {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return func(w *World) { w.cfg = cfg }
}

// NewWorld builds the rank space over every process of the cluster.
func NewWorld(c *cluster.Cluster, opts ...WorldOption) *World {
	w := &World{c: c}
	for n := range c.Stacks {
		for p := 0; p < c.ProcsPerNode(); p++ {
			w.ranks = append(w.ranks, comm.At(c, n, p))
		}
	}
	for _, o := range opts {
		o(w)
	}
	return w
}

// enqueueProgress hands a freshly started progressed Request to its
// node's progression tasklet and subscribes the tasklet to the round
// already in flight. The unconditional Wake covers operations that
// completed before the subscription (the round was posted on the rank's
// thread, whose posting costs let helper threads run ahead): Subscribe
// registers nothing for those, so the first pump must not depend on a
// wake from them.
func (w *World) enqueueProgress(rq *Request) {
	node := rq.r.cm.ID().Node
	if w.progs == nil {
		w.progs = make([]*nodeProgressor, len(w.c.Nodes))
	}
	np := w.progs[node]
	if np == nil {
		np = &nodeProgressor{}
		np.tk = w.c.Nodes[node].Engine.NewTasklet("coll-progress", np.step)
		w.progs[node] = np
	}
	np.outstanding = append(np.outstanding, rq)
	rq.subscribe(np.tk)
	np.tk.Wake()
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Cluster returns the underlying cluster.
func (w *World) Cluster() *cluster.Cluster { return w.c }

// Config returns the world's algorithm selection.
func (w *World) Config() Config { return w.cfg }

// Launch starts one thread per rank executing body, without driving the
// simulation — for callers that own the run loop (the scenario engine
// drives the cluster under a virtual-time budget). Most programs want
// Run.
func (w *World) Launch(body func(r *Rank)) {
	for i, cm := range w.ranks {
		r := &Rank{w: w, id: i, cm: cm}
		id := cm.ID()
		node := w.c.Nodes[id.Node]
		node.Spawn(fmt.Sprintf("rank%d", i), cm.Endpoint().CPU, func(t *smp.Thread) {
			r.t = t
			body(r)
		})
	}
}

// Run starts one thread per rank executing body and drives the
// simulation until every rank returns, returning the final virtual time.
// It panics if any rank's collective fails: collectives are programming
// errors when they fail, not runtime conditions.
func (w *World) Run(body func(r *Rank)) sim.Time {
	w.Launch(body)
	return w.c.Run()
}

// Rank is one process's handle inside a running World. All methods must
// be called from the rank's own thread (inside the Run body).
type Rank struct {
	w  *World
	id int
	cm *comm.Comm
	t  *smp.Thread
	// seq counts the collectives this rank has started. Every rank
	// starts collectives in the same order (the SPMD requirement), so
	// the rank-local counters agree globally and ReservedTag+seq is the
	// same lane on every participant.
	seq int
}

// nextCollTag allocates the next collective's tag lane.
func (r *Rank) nextCollTag() int {
	tag := ReservedTag + r.seq
	r.seq++
	return tag
}

// ID reports this rank's number; Size the world size.
func (r *Rank) ID() int   { return r.id }
func (r *Rank) Size() int { return r.w.Size() }

// Thread exposes the rank's thread for application compute phases.
func (r *Rank) Thread() *smp.Thread { return r.t }

// Comm exposes the rank's messaging handle for point-to-point calls
// beyond the collective vocabulary.
func (r *Rank) Comm() *comm.Comm { return r.cm }

// Compute burns application cycles (the paper's NOP loops).
func (r *Rank) Compute(cycles int64) { r.t.Compute(cycles) }

// peer returns rank to's process identity.
func (r *Rank) peer(to int) comm.ProcessID { return r.w.ranks[to].ID() }

// algorithm resolves the schedule for op: per-call option, then the
// world's Config, then the op's default. Invalid pairings panic.
func (r *Rank) algorithm(op OpKind, opts []Opt) Algorithm {
	var c callCfg
	for _, o := range opts {
		o(&c)
	}
	a := c.alg
	if a == "" {
		a = r.w.cfg.algorithm(op)
	}
	if a == "" {
		a = DefaultAlgorithm(op)
	}
	if err := ValidateAlgorithm(op, a); err != nil {
		panic(err)
	}
	return a
}

// segment resolves the segmented algorithms' segment size: the per-call
// WithSegment, then the world's Config.SegmentBytes, then
// DefaultSegmentBytes.
func (r *Rank) segment(opts []Opt) int {
	var c callCfg
	for _, o := range opts {
		o(&c)
	}
	if c.seg > 0 {
		return c.seg
	}
	if r.w.cfg.SegmentBytes > 0 {
		return r.w.cfg.SegmentBytes
	}
	return DefaultSegmentBytes
}

// Send transmits data to rank to (blocking, like comm.Send: returns
// when the local send completes). Extra comm options (tags, BTP
// overrides) pass through.
func (r *Rank) Send(to int, data []byte, opts ...comm.Option) {
	if err := r.cm.Send(r.t, r.peer(to), data, opts...); err != nil {
		panic(fmt.Errorf("coll: rank %d send to %d: %w", r.id, to, err))
	}
}

// Isend starts a nonblocking send to rank to.
func (r *Rank) Isend(to int, data []byte, opts ...comm.Option) *comm.Op {
	return r.cm.Isend(r.t, r.peer(to), data, opts...)
}

// Recv blocks until the next message from rank from arrives and returns
// its bytes. n bounds the expected size.
func (r *Rank) Recv(from, n int, opts ...comm.Option) []byte {
	b, err := r.cm.Recv(r.t, r.peer(from), n, opts...)
	if err != nil {
		panic(fmt.Errorf("coll: rank %d recv from %d: %w", r.id, from, err))
	}
	return b
}

// Irecv starts a nonblocking receive of up to n bytes from rank from.
func (r *Rank) Irecv(from, n int, opts ...comm.Option) *comm.Op {
	return r.cm.Irecv(r.t, r.peer(from), n, opts...)
}

// SendRecv exchanges messages with two peers concurrently (send to one,
// receive from the other) — the ring-step primitive for application
// code. Using a nonblocking send is what makes rings deadlock-free
// under synchronous modes. Extra comm options (e.g. a tag) apply to
// both the send and the receive.
func (r *Rank) SendRecv(to int, data []byte, from, n int, opts ...comm.Option) []byte {
	sreq := r.Isend(to, data, opts...)
	got := r.Recv(from, n, opts...)
	if _, err := sreq.Wait(r.t); err != nil {
		panic(fmt.Errorf("coll: rank %d sendrecv to %d: %w", r.id, to, err))
	}
	return got
}
