// Package coll implements MPI-style collective operations — barrier,
// broadcast, reduce, allreduce, scatter, gather, allgather, all-to-all —
// on top of the public comm API.
//
// The paper positions Push-Pull as the messaging layer for parallel
// programs on COMPs ("a typical compute-then-communicate parallel
// program", §5.3); this package is that program layer: the collectives a
// real application would call, built purely from the point-to-point
// public API (comm.Send/Recv/Isend/Irecv). Collectives inherit whatever
// messaging mode the cluster is configured with, which is what makes
// mode × algorithm ablations at the application level possible.
//
// # Algorithms
//
// Each operation ships with the classic algorithms of the era, selected
// per world (Config via WithConfig) or per call (WithAlgorithm):
//
//	op         algorithms (first = default)      rounds        volume/rank
//	Barrier    dissemination, tree               ⌈log2 n⌉      1 B tokens
//	Bcast      binomial, ring, ring-seg          ≤⌈log2 n⌉ / n-1 / n-1 hops pipelined in ⌈m/S⌉ segments
//	                                             (volume ≤ m·⌈log2 n⌉ / m / m per hop)
//	Reduce     binomial, ring (ordered)          ≤⌈log2 n⌉ / n     m per hop
//	AllReduce  tree, recursive-doubling, ring,   2⌈log2 n⌉ / ⌈log2 n⌉ / 2(n-1) /
//	           rs-ag                             2(n-1) blocks of m/n
//	AllGather  ring, tree                        n-1 / n-1+⌈log2 n⌉
//
// The segmented/long-vector algorithms: ring-seg pipelines the Bcast by
// streaming the vector through the chain in SegmentBytes segments
// (Config.SegmentBytes or WithSegment; DefaultSegmentBytes otherwise),
// keeping every link busy at once; rs-ag reduces 1/n blocks in a ring
// reduce-scatter and then allgathers them, moving 2·(n-1)/n·m bytes per
// rank with no bottleneck rank. Pick them for vectors much larger than
// a segment; the log-round trees stay ahead on short vectors, where
// per-hop latency dominates.
//
// Gather, Scatter and AllToAll have one schedule each (rooted linear
// exchange, and the rotation schedule that pairs distinct partners every
// step).
//
// # Reduction ordering
//
// The tree, recursive-doubling and rs-ag algorithms reorder
// combinations (rs-ag folds each block in rank order starting at the
// block's own index), so Reduce/AllReduce require an associative AND
// commutative Op for algorithm-independent results. The ring algorithm
// is the ordered variant: it always combines contributions as the left
// fold op(...op(op(d0, d1), d2)..., dn-1) in rank order, so
// order-sensitive reductions get one well-defined answer — at the price
// of O(n) rounds. See TestReduceNonCommutativeOpDiverges for the
// divergence the reordering algorithms exhibit.
//
// # Non-blocking collectives
//
// IBarrier/IBcast/IReduce/IAllReduce/IAllGather start the collective and
// return a Request — the comm.Op-style handle — so a rank can overlap
// compute with collective progress:
//
//	req := r.IAllReduce(vec, coll.SumInt64)
//	r.Compute(500_000) // the first round's messages progress meanwhile
//	res, err := req.Wait()
//
// Progression is software-driven, as in real MPI implementations: the
// round in flight progresses in the background (the stack and NIC do the
// work), but later rounds are only posted when the rank calls Test or
// Wait. All Request methods must be called from the rank's own thread.
//
// # Failure propagation
//
// Collectives propagate transport failures instead of hanging on them:
// when the cluster runs with a retransmission budget
// (Options.GBN.MaxRetries) and a peer becomes unreachable, the
// operations of the round in flight fail with an error wrapping
// comm.ErrPeerUnreachable, and Request.Wait/Test (and the blocking
// wrappers) return it — the wrapped *PeerUnreachableError identifies
// the dead node pair, so the failed rank is known. A failed Request is
// done: its rounds stop posting, and WaitAll reports the first failure.
// Ranks that never exchange with the dead peer in the remaining rounds
// may still complete; deciding what to do with a half-failed collective
// is the application's policy, as in MPI.
//
// Each collective travels on its own tag lane (ReservedTag plus a
// per-rank start sequence), so neither point-to-point messages nor
// other in-flight collectives on the same channels can cross-match —
// provided every rank starts its collectives in the same order (the
// usual SPMD requirement) and application tags stay below ReservedTag.
// The matcher enforces the split: comm.AnyTag wildcards only see
// application tags, so even wildcard receives posted while a collective
// is in flight cannot swallow its rounds.
package coll
