package coll

import (
	"fmt"

	"pushpull/comm"
	"pushpull/internal/sim"
)

// ReservedTag is the base of the tag space collective rounds travel
// under: the k-th collective a rank starts uses tag ReservedTag+k.
// Keeping collective traffic on its own tag lanes is what lets a rank
// mix point-to-point calls (which default to tag 0) with in-flight
// collectives on the same channels without cross-matching, and the
// per-collective sequence keeps even several outstanding non-blocking
// collectives apart — provided every rank starts its collectives in
// the same order (the usual SPMD requirement). Application tags must
// stay below ReservedTag; the matcher enforces the split, so even
// wildcard AnyTag receives posted while a collective is in flight only
// see application traffic, never collective rounds.
const ReservedTag = comm.ReservedTag

// A collective is expressed as a sequence of rounds. Each round posts
// all its sends (nonblocking) and then all its receives; the round
// completes when every operation has. Sequencing rounds — rather than
// issuing everything up front — is what lets receive data feed the next
// round's sends (the reduce combines, the allgather block rotation).

// msg is one outgoing message of a round; rcv one expected arrival.
type msg struct {
	to   int
	data []byte
}

type rcv struct {
	from int
	n    int
}

type round struct {
	sends []msg
	recvs []rcv
}

// stepper generates rounds one at a time. got holds the previous
// round's received payloads in recvs order (nil before the first
// round). done=true ends the collective with result (nil for
// result-less ops and non-root ranks).
type stepper func(got [][]byte) (next round, result []byte, done bool)

// sched builds steppers by chaining phases: each phase's after-hook
// runs when its round completes and pushes the successor phase(s), so
// data-dependent rounds are built from actually-received bytes.
type sched struct {
	queue []phase
	res   []byte
}

type phase struct {
	rd    round
	after func(got [][]byte)
}

func (s *sched) push(rd round, after func(got [][]byte)) {
	s.queue = append(s.queue, phase{rd: rd, after: after})
}

func (s *sched) stepper() stepper {
	var pending func(got [][]byte)
	return func(got [][]byte) (round, []byte, bool) {
		if pending != nil {
			f := pending
			pending = nil
			f(got)
		}
		if len(s.queue) == 0 {
			return round{}, s.res, true
		}
		ph := s.queue[0]
		s.queue = s.queue[1:]
		pending = ph.after
		return ph.rd, nil, false
	}
}

// then runs a to completion, then the stepper makeB builds from a's
// result — the composition behind reduce-then-broadcast AllReduce,
// gather-then-broadcast AllGather and the tree Barrier.
func then(a stepper, makeB func(res []byte) stepper) stepper {
	var b stepper
	return func(got [][]byte) (round, []byte, bool) {
		for {
			if b != nil {
				return b(got)
			}
			rd, res, done := a(got)
			if !done {
				return rd, nil, false
			}
			b = makeB(res)
			got = nil
		}
	}
}

// Request is a collective in flight — the comm.Op-style handle returned
// by the nonblocking collectives. Complete it with Wait (blocking) or
// poll it with Test; completing more than once returns the same
// outcome. All methods must be called from the owning rank's thread.
//
// Requests returned by the public I* calls are driven by their World's
// progression tasklet: as each round's operations complete, the tasklet
// posts the next round, so multi-round collectives keep moving while the
// application computes — no Test polling required.
type Request struct {
	r      *Rank
	step   stepper
	tag    int // this collective's lane in the reserved tag space
	sends  []*comm.Op
	recvs  []*comm.Op
	result []byte
	err    error
	done   bool
	// progressed marks a Request owned by the World's progression
	// tasklet; doneC is its completion broadcast, which Wait parks on.
	progressed bool
	doneC      *sim.Cond
}

// progressed hands a freshly started Request to the World's progression
// tasklet, which advances its rounds as their operations complete. The
// first round was already posted (and charged) on the rank's thread;
// subsequent rounds post asynchronously from the tasklet.
func (r *Rank) progressed(rq *Request) *Request {
	if rq.done {
		return rq // completed at start (e.g. single-rank world): nothing to drive
	}
	rq.progressed = true
	// The completion cond lives on the rank's node engine: Broadcast runs
	// from the node's progression tasklet and Wait parks the rank's own
	// thread, so the whole handshake is shard-local.
	rq.doneC = sim.NewNamedCond(r.w.c.Nodes[r.cm.ID().Node].Engine, fmt.Sprintf("coll-done/r%d.t%d", r.id, rq.tag))
	r.w.enqueueProgress(rq)
	return rq
}

// start builds a Request on its own collective tag and posts the first
// round.
func (r *Rank) start(st stepper) *Request {
	rq := &Request{r: r, step: st, tag: r.nextCollTag()}
	rq.advance(nil)
	return rq
}

// advance feeds the previous round's receives to the stepper and posts
// the next non-empty round (empty rounds — ranks idle in a phase — are
// skipped immediately). A progressed Request posts through the async
// variants — advance then runs on the progression tasklet, where there
// is no rank thread to charge, so the posting cost lands on the helper
// threads instead.
func (rq *Request) advance(got [][]byte) {
	for {
		rd, res, done := rq.step(got)
		if done {
			rq.result, rq.done = res, true
			rq.sends, rq.recvs = nil, nil
			return
		}
		got = nil
		if len(rd.sends) == 0 && len(rd.recvs) == 0 {
			continue
		}
		rq.sends = rq.sends[:0]
		rq.recvs = rq.recvs[:0]
		for _, m := range rd.sends {
			var op *comm.Op
			if rq.progressed {
				op = rq.r.cm.IsendAsync(rq.r.peer(m.to), m.data, comm.WithTag(rq.tag))
			} else {
				//pushpull:lint-allow taskletblock guarded by rq.progressed: this branch runs only when the owning rank thread pumps the request, never from the progression tasklet
				op = rq.r.cm.Isend(rq.r.t, rq.r.peer(m.to), m.data, comm.WithTag(rq.tag))
			}
			rq.sends = append(rq.sends, op)
		}
		for _, v := range rd.recvs {
			var op *comm.Op
			if rq.progressed {
				op = rq.r.cm.IrecvAsync(rq.r.peer(v.from), v.n, comm.WithTag(rq.tag))
			} else {
				//pushpull:lint-allow taskletblock guarded by rq.progressed: this branch runs only when the owning rank thread pumps the request, never from the progression tasklet
				op = rq.r.cm.Irecv(rq.r.t, rq.r.peer(v.from), v.n, comm.WithTag(rq.tag))
			}
			rq.recvs = append(rq.recvs, op)
		}
		return
	}
}

// subscribe registers w for a wake when any still-pending operation of
// the round in flight completes. Operation conds are broadcast-only, so
// the registrations coexist with each other and with parked waiters.
func (rq *Request) subscribe(w sim.Waiter) {
	for _, op := range rq.sends {
		op.Subscribe(w)
	}
	for _, op := range rq.recvs {
		op.Subscribe(w)
	}
}

// pump drives a progressed Request one step from the progression
// tasklet: if the round in flight has fully completed, it posts the next
// round and subscribes w to it. It reports true once the collective is
// done (broadcasting doneC to release waiters), false while rounds
// remain — in which case w stays subscribed to the pending operations
// and will be woken again.
func (rq *Request) pump(w sim.Waiter) bool {
	if rq.done {
		return true
	}
	for _, op := range rq.sends {
		done, _, err := op.Test()
		if err != nil {
			rq.fail(err)
			rq.doneC.Broadcast()
			return true
		}
		if !done {
			return false
		}
	}
	for _, op := range rq.recvs {
		done, _, err := op.Test()
		if err != nil {
			rq.fail(err)
			rq.doneC.Broadcast()
			return true
		}
		if !done {
			return false
		}
	}
	got := make([][]byte, len(rq.recvs))
	for i, op := range rq.recvs {
		_, data, _ := op.Test()
		got[i] = data
	}
	rq.advance(got)
	if rq.done {
		rq.doneC.Broadcast()
		return true
	}
	rq.subscribe(w)
	return false
}

func (rq *Request) fail(err error) {
	rq.err = err
	rq.done = true
	rq.sends, rq.recvs = nil, nil
}

// Wait parks the rank until the collective completes and returns its
// result: the received data for Bcast, the reduction on participating
// ranks for Reduce/AllReduce, the rank-major concatenation for
// AllGather, nil for Barrier.
func (rq *Request) Wait() ([]byte, error) {
	if rq.progressed {
		// The progression tasklet advances the rounds; just park on the
		// completion broadcast.
		for !rq.done {
			rq.doneC.Wait(rq.r.t.P)
			rq.r.t.Exec(rq.r.t.Node.Cfg.WakeLatency)
		}
		return rq.result, rq.err
	}
	for !rq.done {
		got := make([][]byte, len(rq.recvs))
		for i, op := range rq.recvs {
			data, err := op.Wait(rq.r.t)
			if err != nil {
				rq.fail(err)
				return nil, rq.err
			}
			got[i] = data
		}
		for _, op := range rq.sends {
			if _, err := op.Wait(rq.r.t); err != nil {
				rq.fail(err)
				return nil, rq.err
			}
		}
		rq.advance(got)
	}
	return rq.result, rq.err
}

// Test reports whether the collective has completed, without blocking.
// Requests from the public I* calls advance in the background (the
// World's progression tasklet posts each next round as the previous one
// completes), so Test is a pure poll — calling it inside compute phases
// is never needed for progress, only for checking.
func (rq *Request) Test() (bool, []byte, error) {
	if rq.progressed {
		return rq.done, rq.result, rq.err
	}
	// A plain (internal, blocking-wrapper) Request has no progression
	// tasklet: polling advances it, posting the next round when the one
	// in flight has completed.
	for !rq.done {
		for _, op := range rq.sends {
			done, _, err := op.Test()
			if err != nil {
				rq.fail(err)
				return true, nil, rq.err
			}
			if !done {
				return false, nil, nil
			}
		}
		// Confirm every receive completed before collecting payloads, so
		// a poll that finds the round still in flight costs no allocation
		// — Test is called from inside compute loops.
		for _, op := range rq.recvs {
			done, _, err := op.Test()
			if err != nil {
				rq.fail(err)
				return true, nil, rq.err
			}
			if !done {
				return false, nil, nil
			}
		}
		got := make([][]byte, len(rq.recvs))
		for i, op := range rq.recvs {
			_, data, _ := op.Test()
			got[i] = data
		}
		rq.advance(got)
	}
	return true, rq.result, rq.err
}

// WaitAll completes every Request in order and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, rq := range reqs {
		if _, err := rq.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
