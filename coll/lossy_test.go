package coll

import (
	"bytes"
	"fmt"
	"testing"

	"pushpull/internal/cluster"
	"pushpull/internal/gbn"
	"pushpull/internal/sim"
)

// lossyWorld builds a switched world over a damaged cable: every frame
// has a 1% chance of vanishing, and a short RTO keeps go-back-N
// recoveries cheap enough for test-sized runs.
func lossyWorld(nodes, procs int, seed uint64) *World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.UseSwitch = true
	cfg.Net.LossRate = 0.01
	cfg.Opts.GBN = gbn.Config{Window: 8, RTO: 2 * sim.Millisecond}
	cfg.Opts.PushedBufBytes = 64 << 10
	cfg.Seed = seed
	return NewWorld(cluster.New(cfg))
}

// Correctness must survive retransmission: every collective op, every
// algorithm, byte-exact results at lossRate > 0. A dropped frame costs
// virtual time (an RTO), never data.
func TestCollectivesByteExactUnderLoss(t *testing.T) {
	const n = 1500 // ≥ one full Ethernet frame, so losses hit mid-message
	for _, seed := range []uint64{1, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Run("bcast", func(t *testing.T) {
				for _, alg := range Algorithms(OpBcast) {
					w := lossyWorld(4, 1, seed)
					payload := fill(3, n)
					got := make([][]byte, w.Size())
					w.Run(func(r *Rank) {
						var data []byte
						if r.ID() == 1 {
							data = payload
						}
						got[r.ID()] = r.Bcast(1, data, n, WithAlgorithm(alg))
					})
					for rank := range got {
						if !bytes.Equal(got[rank], payload) {
							t.Errorf("%s: rank %d corrupted under loss", alg, rank)
						}
					}
				}
			})
			t.Run("allreduce", func(t *testing.T) {
				for _, alg := range Algorithms(OpAllReduce) {
					w := lossyWorld(3, 1, seed)
					size := w.Size()
					want := make([]byte, n)
					inputs := make([][]byte, size)
					for rank := 0; rank < size; rank++ {
						inputs[rank] = fill(rank, n)
						want = XorBytes(want, inputs[rank])
					}
					got := make([][]byte, size)
					w.Run(func(r *Rank) {
						got[r.ID()] = r.AllReduce(inputs[r.ID()], XorBytes, WithAlgorithm(alg))
					})
					for rank := 0; rank < size; rank++ {
						if !bytes.Equal(got[rank], want) {
							t.Errorf("%s: rank %d wrong allreduce under loss", alg, rank)
						}
					}
				}
			})
			t.Run("barrier-allgather-alltoall", func(t *testing.T) {
				w := lossyWorld(4, 1, seed)
				size := w.Size()
				ag := make([][][]byte, size)
				a2a := make([][][]byte, size)
				w.Run(func(r *Rank) {
					r.Barrier(WithAlgorithm(Tree))
					ag[r.ID()] = r.AllGather(fill(r.ID(), n), n)
					blocks := make([][]byte, size)
					for to := 0; to < size; to++ {
						blocks[to] = fill(r.ID()*size+to, 256)
					}
					a2a[r.ID()] = r.AllToAll(blocks, 256)
					r.Barrier()
				})
				for rank := 0; rank < size; rank++ {
					for i := 0; i < size; i++ {
						if !bytes.Equal(ag[rank][i], fill(i, n)) {
							t.Errorf("allgather: rank %d block %d corrupted under loss", rank, i)
						}
						if !bytes.Equal(a2a[rank][i], fill(i*size+rank, 256)) {
							t.Errorf("alltoall: rank %d block from %d corrupted under loss", rank, i)
						}
					}
				}
			})
			// The long-vector algorithms with many segments/blocks in
			// flight: a lost frame inside any segment must cost an RTO,
			// never a byte. (The algorithm loops above already run
			// ring-seg and rs-ag, but at n=1500 the default segment
			// holds the whole vector — here every message is a fraction
			// of the vector.)
			t.Run("long-vector", func(t *testing.T) {
				const long = 12_000
				w := lossyWorld(4, 1, seed)
				size := w.Size()
				payload := fill(5, long)
				want := make([]byte, long)
				for rank := 0; rank < size; rank++ {
					want = XorBytes(want, fill(rank, long))
				}
				bc := make([][]byte, size)
				ar := make([][]byte, size)
				w.Run(func(r *Rank) {
					var data []byte
					if r.ID() == 2 {
						data = payload
					}
					bc[r.ID()] = r.Bcast(2, data, long,
						WithAlgorithm(RingSegmented), WithSegment(1024))
					ar[r.ID()] = r.AllReduce(fill(r.ID(), long), XorBytes,
						WithAlgorithm(RSAG))
				})
				for rank := 0; rank < size; rank++ {
					if !bytes.Equal(bc[rank], payload) {
						t.Errorf("ring-seg: rank %d corrupted under loss", rank)
					}
					if !bytes.Equal(ar[rank], want) {
						t.Errorf("rs-ag: rank %d corrupted under loss", rank)
					}
				}
			})
			t.Run("gather-scatter-reduce", func(t *testing.T) {
				w := lossyWorld(3, 1, seed)
				size := w.Size()
				var reduced []byte
				scattered := make([][]byte, size)
				w.Run(func(r *Rank) {
					g := r.Gather(0, fill(r.ID(), n), n)
					scattered[r.ID()] = r.Scatter(0, g, n)
					if out := r.Reduce(2, fill(r.ID(), n), XorBytes, WithAlgorithm(Ring)); r.ID() == 2 {
						reduced = out
					}
				})
				want := make([]byte, n)
				for rank := 0; rank < size; rank++ {
					if !bytes.Equal(scattered[rank], fill(rank, n)) {
						t.Errorf("gather/scatter: rank %d corrupted under loss", rank)
					}
					want = XorBytes(want, fill(rank, n))
				}
				if !bytes.Equal(reduced, want) {
					t.Errorf("ring reduce corrupted under loss")
				}
			})
		})
	}
}
