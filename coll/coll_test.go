package coll

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// newWorld builds a world of nodes×procs ranks in the given mode.
func newWorld(nodes, procs int, mode pushpull.Mode, opts ...WorldOption) *World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	if nodes > 2 {
		cfg.UseSwitch = true
	}
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 64 << 10
	return NewWorld(cluster.New(cfg), opts...)
}

// fill builds rank-specific payloads.
func fill(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*131 + i*7)
	}
	return b
}

func TestWorldSizeAndMapping(t *testing.T) {
	w := newWorld(2, 3, pushpull.PushPull)
	if w.Size() != 6 {
		t.Fatalf("Size = %d, want 6", w.Size())
	}
	// Node-major: ranks 0-2 on node 0, ranks 3-5 on node 1.
	seen := make(map[int][2]int)
	w.Run(func(r *Rank) {
		seen[r.ID()] = [2]int{r.Comm().ID().Node, r.Comm().ID().Proc}
	})
	for rank := 0; rank < 6; rank++ {
		want := [2]int{rank / 3, rank % 3}
		if seen[rank] != want {
			t.Errorf("rank %d on %v, want %v", rank, seen[rank], want)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, alg := range Algorithms(OpBarrier) {
		for _, shape := range [][2]int{{2, 1}, {2, 2}, {3, 1}, {4, 2}} {
			w := newWorld(shape[0], shape[1], pushpull.PushPull)
			size := w.Size()
			enter := make([]sim.Time, size)
			exit := make([]sim.Time, size)
			w.Run(func(r *Rank) {
				// Stagger arrivals so the barrier has real work to do.
				r.Compute(int64(r.ID()) * 50_000)
				enter[r.ID()] = r.Thread().Now()
				r.Barrier(WithAlgorithm(alg))
				exit[r.ID()] = r.Thread().Now()
			})
			var maxEnter, minExit sim.Time
			minExit = 1 << 62
			for i := 0; i < size; i++ {
				if enter[i] > maxEnter {
					maxEnter = enter[i]
				}
				if exit[i] < minExit {
					minExit = exit[i]
				}
			}
			if minExit < maxEnter {
				t.Errorf("%s %dx%d: rank left the barrier at %v before the last arrival at %v",
					alg, shape[0], shape[1], minExit, maxEnter)
			}
		}
	}
}

func TestBcastFromEveryRootAllAlgorithms(t *testing.T) {
	const n = 3000
	for _, alg := range Algorithms(OpBcast) {
		size := 6
		for root := 0; root < size; root++ {
			w := newWorld(3, 2, pushpull.PushPull)
			payload := fill(root, n)
			got := make([][]byte, size)
			w.Run(func(r *Rank) {
				var data []byte
				if r.ID() == root {
					data = payload
				}
				got[r.ID()] = r.Bcast(root, data, n, WithAlgorithm(alg))
			})
			for i := 0; i < size; i++ {
				if !bytes.Equal(got[i], payload) {
					t.Errorf("%s root %d: rank %d received wrong data", alg, root, i)
				}
			}
		}
	}
}

func TestReduceSumAllAlgorithms(t *testing.T) {
	const elems = 64
	for _, alg := range Algorithms(OpReduce) {
		w := newWorld(2, 2, pushpull.PushPull)
		size := w.Size()
		var res []byte
		w.Run(func(r *Rank) {
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64(r.ID()*1000 + i)
			}
			if out := r.Reduce(1, FromInt64s(vals), SumInt64, WithAlgorithm(alg)); r.ID() == 1 {
				res = out
			} else if out != nil {
				t.Errorf("%s: non-root rank %d got a reduce result", alg, r.ID())
			}
		})
		got := Int64s(res)
		for i := 0; i < elems; i++ {
			var want int64
			for rank := 0; rank < size; rank++ {
				want += int64(rank*1000 + i)
			}
			if got[i] != want {
				t.Fatalf("%s: element %d = %d, want %d", alg, i, got[i], want)
			}
		}
	}
}

func TestAllReduceAllAlgorithmsAgree(t *testing.T) {
	// Include non-power-of-two world sizes: the recursive-doubling
	// fold-in/fold-out fixup is the part worth testing.
	for _, shape := range [][2]int{{2, 1}, {3, 1}, {2, 2}, {5, 1}, {3, 2}, {4, 2}} {
		shape := shape
		t.Run(fmt.Sprintf("%dx%d", shape[0], shape[1]), func(t *testing.T) {
			const elems = 16
			run := func(alg Algorithm) [][]byte {
				w := newWorld(shape[0], shape[1], pushpull.PushPull)
				out := make([][]byte, w.Size())
				w.Run(func(r *Rank) {
					vals := make([]int64, elems)
					for i := range vals {
						vals[i] = int64((r.ID() + 1) * (i + 1))
					}
					out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64, WithAlgorithm(alg))
				})
				return out
			}
			var size int
			want := make([]int64, elems)
			for _, alg := range Algorithms(OpAllReduce) {
				got := run(alg)
				if size == 0 {
					size = len(got)
					for i := range want {
						for rank := 0; rank < size; rank++ {
							want[i] += int64((rank + 1) * (i + 1))
						}
					}
				}
				for rank := 0; rank < size; rank++ {
					gv := Int64s(got[rank])
					for i := 0; i < elems; i++ {
						if gv[i] != want[i] {
							t.Fatalf("%s rank %d elem %d = %d, want %d", alg, rank, i, gv[i], want[i])
						}
					}
				}
			}
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 500
	w := newWorld(2, 2, pushpull.PushPull)
	size := w.Size()
	const root = 2
	var gathered [][]byte
	scattered := make([][]byte, size)
	w.Run(func(r *Rank) {
		// Gather everyone's block on root, then scatter it back.
		g := r.Gather(root, fill(r.ID(), n), n)
		if r.ID() == root {
			gathered = g
		}
		scattered[r.ID()] = r.Scatter(root, g, n)
	})
	for i := 0; i < size; i++ {
		if !bytes.Equal(gathered[i], fill(i, n)) {
			t.Errorf("gather: block %d wrong", i)
		}
		if !bytes.Equal(scattered[i], fill(i, n)) {
			t.Errorf("scatter: rank %d got wrong block back", i)
		}
	}
}

func TestAllGatherAllAlgorithms(t *testing.T) {
	const n = 700
	for _, alg := range Algorithms(OpAllGather) {
		for _, shape := range [][2]int{{2, 1}, {3, 1}, {2, 2}, {3, 2}} {
			w := newWorld(shape[0], shape[1], pushpull.PushPull)
			size := w.Size()
			out := make([][][]byte, size)
			w.Run(func(r *Rank) {
				out[r.ID()] = r.AllGather(fill(r.ID(), n), n, WithAlgorithm(alg))
			})
			for rank := 0; rank < size; rank++ {
				for i := 0; i < size; i++ {
					if !bytes.Equal(out[rank][i], fill(i, n)) {
						t.Errorf("%s %dx%d: rank %d block %d wrong", alg, shape[0], shape[1], rank, i)
					}
				}
			}
		}
	}
}

func TestAllToAllTransposes(t *testing.T) {
	const n = 256
	w := newWorld(3, 1, pushpull.PushPull)
	size := w.Size()
	block := func(from, to int) []byte { return fill(from*size+to, n) }
	out := make([][][]byte, size)
	w.Run(func(r *Rank) {
		blocks := make([][]byte, size)
		for to := 0; to < size; to++ {
			blocks[to] = block(r.ID(), to)
		}
		out[r.ID()] = r.AllToAll(blocks, n)
	})
	for rank := 0; rank < size; rank++ {
		for from := 0; from < size; from++ {
			if !bytes.Equal(out[rank][from], block(from, rank)) {
				t.Errorf("rank %d: block from %d wrong", rank, from)
			}
		}
	}
}

// Collectives run unchanged on every messaging mode, including the
// synchronous three-phase baseline (nonblocking sends inside each round
// are what keep the schedules deadlock-free).
func TestCollectivesAcrossModes(t *testing.T) {
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		for _, alg := range Algorithms(OpAllReduce) {
			w := newWorld(2, 2, mode)
			size := w.Size()
			out := make([][]byte, size)
			w.Run(func(r *Rank) {
				r.Barrier()
				vals := []int64{int64(r.ID()), 7}
				out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64, WithAlgorithm(alg))
				r.Barrier(WithAlgorithm(Tree))
			})
			want := int64(size * (size - 1) / 2)
			for rank := 0; rank < size; rank++ {
				got := Int64s(out[rank])
				if got[0] != want || got[1] != int64(7*size) {
					t.Errorf("mode %v alg %s rank %d: allreduce = %v", mode, alg, rank, got)
				}
			}
		}
	}
}

// Property: XOR-allreduce of arbitrary contributions equals the XOR of
// them all, on every rank, for arbitrary world shapes and every
// algorithm.
func TestAllReduceXorProperty(t *testing.T) {
	algs := Algorithms(OpAllReduce)
	f := func(nodes, procs uint8, vecLen uint8, seed byte, algPick uint8) bool {
		nn := int(nodes)%3 + 1 // 1..3 nodes
		pp := int(procs)%2 + 1 // 1..2 procs
		if nn == 1 && pp == 1 {
			pp = 2
		}
		n := (int(vecLen)%32 + 1) * 8
		alg := algs[int(algPick)%len(algs)]
		w := newWorld(nn, pp, pushpull.PushPull)
		size := w.Size()
		want := make([]byte, n)
		inputs := make([][]byte, size)
		for rank := 0; rank < size; rank++ {
			inputs[rank] = fill(rank+int(seed), n)
			want = XorBytes(want, inputs[rank])
		}
		out := make([][]byte, size)
		w.Run(func(r *Rank) {
			out[r.ID()] = r.AllReduce(inputs[r.ID()], XorBytes, WithAlgorithm(alg))
		})
		for rank := 0; rank < size; rank++ {
			if !bytes.Equal(out[rank], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBcastRootValidation(t *testing.T) {
	w := newWorld(2, 1, pushpull.PushPull)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		r.Bcast(99, nil, 8)
	})
}

func TestInvalidAlgorithmPanics(t *testing.T) {
	w := newWorld(2, 1, pushpull.PushPull)
	defer func() {
		if recover() == nil {
			t.Error("dissemination bcast did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		r.Bcast(0, fill(0, 8), 8, WithAlgorithm(Dissemination))
	})
}

// A world-level Config selects the algorithm for every call; WithAlgorithm
// still overrides per call.
func TestWorldConfigSelectsAlgorithm(t *testing.T) {
	if err := (Config{Bcast: Dissemination}).Validate(); err == nil {
		t.Error("Config.Validate accepted a dissemination bcast")
	}
	cfg := Config{AllReduce: Ring, Barrier: Tree}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	w := newWorld(3, 1, pushpull.PushPull, WithConfig(cfg))
	size := w.Size()
	out := make([][]byte, size)
	override := make([][]byte, size)
	w.Run(func(r *Rank) {
		r.Barrier() // tree via config
		data := FromInt64s([]int64{int64(r.ID())})
		out[r.ID()] = r.AllReduce(data, SumInt64)
		override[r.ID()] = r.AllReduce(data, SumInt64, WithAlgorithm(RecursiveDoubling))
	})
	want := int64(size * (size - 1) / 2)
	for rank := 0; rank < size; rank++ {
		if got := Int64s(out[rank])[0]; got != want {
			t.Errorf("config ring: rank %d = %d, want %d", rank, got, want)
		}
		if got := Int64s(override[rank])[0]; got != want {
			t.Errorf("override RD: rank %d = %d, want %d", rank, got, want)
		}
	}
}

// mulAdd31 is deliberately NON-commutative and NON-associative
// (elementwise x*31 + y): the probe for combination-order semantics.
func mulAdd31(a, b []byte) []byte {
	return zipInt64(a, b, func(x, y int64) int64 { return x*31 + y })
}

// The documented Op contract: tree/recursive-doubling reorder
// combinations, so a non-commutative op diverges across algorithms —
// and the Ring algorithm is the pinned ordered semantics, always the
// left fold in rank order.
func TestReduceNonCommutativeOpDiverges(t *testing.T) {
	const size = 4
	run := func(alg Algorithm) []int64 {
		w := newWorld(size, 1, pushpull.PushPull)
		var res []byte
		w.Run(func(r *Rank) {
			if out := r.Reduce(0, FromInt64s([]int64{int64(r.ID() + 1)}), mulAdd31, WithAlgorithm(alg)); r.ID() == 0 {
				res = out
			}
		})
		return Int64s(res)
	}
	// Left fold op(...op(op(d0,d1),d2)...) of 1,2,3,4.
	fold := int64(1)
	for d := int64(2); d <= size; d++ {
		fold = fold*31 + d
	}
	if got := run(Ring)[0]; got != fold {
		t.Errorf("ring reduce = %d, want the rank-order left fold %d", got, fold)
	}
	if got := run(Binomial)[0]; got == fold {
		t.Errorf("binomial reduce = %d: expected the tree's reordered combination to diverge from the left fold", got)
	}

	// AllReduce: ring agrees with the fold on every rank; tree does not.
	runAll := func(alg Algorithm) []int64 {
		w := newWorld(size, 1, pushpull.PushPull)
		out := make([]int64, size)
		w.Run(func(r *Rank) {
			out[r.ID()] = Int64s(r.AllReduce(FromInt64s([]int64{int64(r.ID() + 1)}), mulAdd31, WithAlgorithm(alg)))[0]
		})
		return out
	}
	for rank, got := range runAll(Ring) {
		if got != fold {
			t.Errorf("ring allreduce rank %d = %d, want %d", rank, got, fold)
		}
	}
	if got := runAll(Tree); got[0] == fold {
		t.Errorf("tree allreduce = %d: expected divergence from the left fold", got[0])
	}
}

// Non-blocking collectives: a Test immediately after starting cannot
// have completed (no virtual time has passed), compute overlaps the
// collective, and the result is exact.
func TestNonBlockingAllReduceOverlapsCompute(t *testing.T) {
	const elems = 1024
	run := func(overlap bool) ([]int64, sim.Time) {
		w := newWorld(4, 1, pushpull.PushPull)
		size := w.Size()
		out := make([][]byte, size)
		var end sim.Time
		w.Run(func(r *Rank) {
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64((r.ID() + 1) * (i + 1))
			}
			r.Barrier()
			if overlap {
				req := r.IAllReduce(FromInt64s(vals), SumInt64)
				if done, _, _ := req.Test(); done {
					t.Errorf("rank %d: IAllReduce completed with no virtual time elapsed", r.ID())
				}
				r.Compute(2_000_000)
				res, err := req.Wait()
				if err != nil {
					t.Errorf("rank %d: %v", r.ID(), err)
				}
				out[r.ID()] = res
				// Completing again returns the same outcome.
				if again, _ := req.Wait(); &again[0] != &res[0] {
					t.Errorf("rank %d: second Wait returned a different result", r.ID())
				}
			} else {
				r.Compute(2_000_000)
				out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64)
			}
			r.Barrier()
			if r.ID() == 0 {
				end = r.Thread().Now()
			}
		})
		sums := make([]int64, size)
		for rank := 0; rank < size; rank++ {
			sums[rank] = Int64s(out[rank])[0]
		}
		return sums, end
	}
	seq, seqEnd := run(false)
	ovl, ovlEnd := run(true)
	var want int64
	for rank := 1; rank <= 4; rank++ {
		want += int64(rank)
	}
	for rank := 0; rank < 4; rank++ {
		if seq[rank] != want || ovl[rank] != want {
			t.Errorf("rank %d: blocking %d / overlapped %d, want %d", rank, seq[rank], ovl[rank], want)
		}
	}
	if ovlEnd >= seqEnd {
		t.Errorf("overlapped run finished at %v, not before the sequential run's %v — no compute/collective overlap", ovlEnd, seqEnd)
	}
}

// Collective rounds travel on ReservedTag, so application
// point-to-point traffic (tag 0) interleaved with an in-flight
// non-blocking collective on the same channels can never cross-match:
// both the app messages and the reduction must come out byte-exact.
func TestNonBlockingCollectiveDoesNotCrossMatchAppTraffic(t *testing.T) {
	const n = 1200
	w := newWorld(2, 1, pushpull.PushPull)
	size := w.Size()
	appGot := make([][]byte, size)
	sums := make([][]byte, size)
	w.Run(func(r *Rank) {
		peer := (r.ID() + 1) % size
		req := r.IAllReduce(FromInt64s([]int64{int64(r.ID() + 1)}), SumInt64)
		// Untagged app exchange while the collective is in flight.
		r.Send(peer, fill(100+r.ID(), n))
		appGot[r.ID()] = r.Recv(peer, n)
		res, err := req.Wait()
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		sums[r.ID()] = res
	})
	for rank := 0; rank < size; rank++ {
		if !bytes.Equal(appGot[rank], fill(100+(rank+1)%size, n)) {
			t.Errorf("rank %d: app message cross-matched collective traffic", rank)
		}
		if got := Int64s(sums[rank])[0]; got != 3 {
			t.Errorf("rank %d: allreduce = %d, want 3 (collective folded app bytes?)", rank, got)
		}
	}
}

// Several non-blocking collectives may be outstanding at once: each
// gets its own tag lane (ReservedTag + start sequence), so rounds of
// different collectives can never cross-match even when ranks progress
// and complete them at divergent times.
func TestConcurrentOutstandingCollectives(t *testing.T) {
	w := newWorld(4, 1, pushpull.PushPull)
	size := w.Size()
	sums := make([][]byte, size)
	gathers := make([][]byte, size)
	w.Run(func(r *Rank) {
		bar := r.IBarrier()
		ar := r.IAllReduce(FromInt64s([]int64{int64(r.ID() + 1)}), SumInt64)
		ag := r.IAllGather(FromInt64s([]int64{int64(r.ID())}), 8)
		// Rank-skewed compute staggers when each rank progresses what.
		r.Compute(int64(r.ID()+1) * 50_000)
		// Complete in an order unrelated to the start order.
		var err error
		if gathers[r.ID()], err = ag.Wait(); err != nil {
			t.Errorf("rank %d allgather: %v", r.ID(), err)
		}
		if sums[r.ID()], err = ar.Wait(); err != nil {
			t.Errorf("rank %d allreduce: %v", r.ID(), err)
		}
		if err := WaitAll(bar); err != nil {
			t.Errorf("rank %d barrier: %v", r.ID(), err)
		}
	})
	for rank := 0; rank < size; rank++ {
		if got := Int64s(sums[rank])[0]; got != 10 {
			t.Errorf("rank %d: allreduce = %d, want 10 (cross-matched another collective?)", rank, got)
		}
		for i, v := range Int64s(gathers[rank]) {
			if v != int64(i) {
				t.Errorf("rank %d: allgather block %d = %d, want %d", rank, i, v, i)
			}
		}
	}
}

// Test-driven progression: a multi-round IBarrier completes through
// polling alone — each Test that finds the in-flight round complete
// posts the next one.
func TestIBarrierCompletesByPolling(t *testing.T) {
	w := newWorld(4, 2, pushpull.PushPull)
	size := w.Size()
	done := make([]bool, size)
	w.Run(func(r *Rank) {
		req := r.IBarrier()
		for i := 0; i < 100_000; i++ {
			if ok, _, err := req.Test(); ok {
				if err != nil {
					t.Errorf("rank %d: %v", r.ID(), err)
				}
				done[r.ID()] = true
				return
			}
			r.Compute(1000) // let virtual time pass between polls
		}
	})
	for rank, ok := range done {
		if !ok {
			t.Errorf("rank %d: IBarrier never completed under polling", rank)
		}
	}
}

// IBcast and IReduce round-trip through their Request results.
func TestNonBlockingBcastReduce(t *testing.T) {
	const n = 2000
	w := newWorld(3, 1, pushpull.PushPull)
	size := w.Size()
	got := make([][]byte, size)
	var reduced []byte
	payload := fill(9, n)
	w.Run(func(r *Rank) {
		var data []byte
		if r.ID() == 0 {
			data = payload
		}
		breq := r.IBcast(0, data, n)
		b, err := breq.Wait()
		if err != nil {
			t.Errorf("rank %d bcast: %v", r.ID(), err)
		}
		got[r.ID()] = b
		rreq := r.IReduce(1, FromInt64s([]int64{int64(r.ID() + 10)}), SumInt64)
		res, err := rreq.Wait()
		if err != nil {
			t.Errorf("rank %d reduce: %v", r.ID(), err)
		}
		if r.ID() == 1 {
			reduced = res
		}
	})
	for rank := 0; rank < size; rank++ {
		if !bytes.Equal(got[rank], payload) {
			t.Errorf("rank %d received wrong bcast data", rank)
		}
	}
	if got := Int64s(reduced)[0]; got != 10+11+12 {
		t.Errorf("reduce = %d, want 33", got)
	}
}

// The AnyTag cross-match fix, pinned end to end: a wildcard receive
// posted while a non-blocking collective is in flight must wait for the
// application message — on the old matcher it swallowed the
// collective's next round instead, deadlocking the reduction (which is
// why this runs under a virtual-time budget: the old behavior fails the
// budget, not the whole test binary).
func TestAnyTagDoesNotSwallowCollectiveRounds(t *testing.T) {
	const n = 900
	const appTag = 3
	w := newWorld(2, 1, pushpull.PushPull)
	size := w.Size()
	appGot := make([][]byte, size)
	sts := make([]comm.Status, size)
	sums := make([][]byte, size)
	w.Launch(func(r *Rank) {
		peer := (r.ID() + 1) % size
		req := r.IAllReduce(FromInt64s([]int64{int64(r.ID() + 1)}), SumInt64)
		// Wildcard posted mid-collective: rounds of req are still being
		// posted and arriving while this receive is pending.
		wild := r.Irecv(peer, n, comm.WithTag(comm.AnyTag))
		res, err := req.Wait()
		if err != nil {
			t.Errorf("rank %d allreduce: %v", r.ID(), err)
		}
		sums[r.ID()] = res
		r.Send(peer, fill(40+r.ID(), n), comm.WithTag(appTag))
		data, err := wild.Wait(r.Thread())
		if err != nil {
			t.Errorf("rank %d wildcard: %v", r.ID(), err)
			return
		}
		appGot[r.ID()] = data
		sts[r.ID()] = wild.Status()
	})
	if _, err := w.Cluster().RunWithin(200 * sim.Millisecond); err != nil {
		t.Fatalf("run stalled — AnyTag receive swallowed a collective round: %v", err)
	}
	for rank := 0; rank < size; rank++ {
		if got := Int64s(sums[rank])[0]; got != 3 {
			t.Errorf("rank %d: allreduce = %d, want 3", rank, got)
		}
		if !bytes.Equal(appGot[rank], fill(40+(rank+1)%size, n)) {
			t.Errorf("rank %d: wildcard bound the wrong message", rank)
		}
		if st := sts[rank]; !st.Valid || st.Tag != appTag {
			t.Errorf("rank %d: wildcard status = %+v, want valid tag %d", rank, st, appTag)
		}
	}
}

// rs-ag correctness across shapes, including sizes where blocks are
// uneven and (with procs > 1) ranks sharing nodes.
func TestAllReduceRSAGShapes(t *testing.T) {
	for _, shape := range [][2]int{{2, 1}, {3, 1}, {5, 1}, {3, 2}, {4, 2}} {
		for _, elems := range []int{1, 5, 64, 1000} {
			w := newWorld(shape[0], shape[1], pushpull.PushPull)
			size := w.Size()
			out := make([][]byte, size)
			w.Run(func(r *Rank) {
				vals := make([]int64, elems)
				for i := range vals {
					vals[i] = int64((r.ID() + 2) * (i + 1))
				}
				out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64, WithAlgorithm(RSAG))
			})
			for rank := 0; rank < size; rank++ {
				got := Int64s(out[rank])
				for i := 0; i < elems; i++ {
					var want int64
					for rr := 0; rr < size; rr++ {
						want += int64((rr + 2) * (i + 1))
					}
					if got[i] != want {
						t.Fatalf("%dx%d elems %d: rank %d elem %d = %d, want %d",
							shape[0], shape[1], elems, rank, i, got[i], want)
					}
				}
			}
		}
	}
}

// rs-ag's block-reduction order, pinned: block b folds contributions in
// rank order starting at rank b (the cyclic left fold), so only block 0
// matches the ordered ring's global left fold and the other blocks are
// rotations of it.
func TestAllReduceRSAGBlockOrderPinned(t *testing.T) {
	const size = 4
	w := newWorld(size, 1, pushpull.PushPull)
	out := make([][]byte, size)
	w.Run(func(r *Rank) {
		// One int64 element per block; every element of rank r's vector
		// is r+1, so element b records exactly block b's fold order.
		vals := make([]int64, size)
		for i := range vals {
			vals[i] = int64(r.ID() + 1)
		}
		out[r.ID()] = r.AllReduce(FromInt64s(vals), mulAdd31, WithAlgorithm(RSAG))
	})
	fold := func(start int) int64 {
		acc := int64(start + 1)
		for s := 1; s < size; s++ {
			acc = acc*31 + int64((start+s)%size+1)
		}
		return acc
	}
	for rank := 0; rank < size; rank++ {
		got := Int64s(out[rank])
		for b := 0; b < size; b++ {
			if got[b] != fold(b) {
				t.Errorf("rank %d block %d = %d, want the cyclic fold from rank %d = %d",
					rank, b, got[b], b, fold(b))
			}
		}
		if got[1] == fold(0) {
			t.Errorf("block 1 matches block 0's order — rotation lost, the pin is meaningless")
		}
	}
}

// The segmented ring must produce byte-identical results for any
// segment size — segments that do not divide the vector, a segment
// larger than the whole vector — from any root.
func TestBcastRingSegmentedSegmentSizes(t *testing.T) {
	const n = 10_000
	for _, seg := range []int{512, 1000, 4096, 16384} {
		for _, root := range []int{0, 2, 5} {
			w := newWorld(3, 2, pushpull.PushPull)
			payload := fill(root, n)
			got := make([][]byte, w.Size())
			w.Run(func(r *Rank) {
				var data []byte
				if r.ID() == root {
					data = payload
				}
				got[r.ID()] = r.Bcast(root, data, n,
					WithAlgorithm(RingSegmented), WithSegment(seg))
			})
			for rank := range got {
				if !bytes.Equal(got[rank], payload) {
					t.Errorf("seg %d root %d: rank %d received wrong bytes", seg, root, rank)
				}
			}
		}
	}
	// The world-level Config supplies the segment when the call does not.
	w := newWorld(3, 1, pushpull.PushPull, WithConfig(Config{Bcast: RingSegmented, SegmentBytes: 700}))
	payload := fill(1, n)
	got := make([][]byte, w.Size())
	w.Run(func(r *Rank) {
		var data []byte
		if r.ID() == 1 {
			data = payload
		}
		got[r.ID()] = r.Bcast(1, data, n)
	})
	for rank := range got {
		if !bytes.Equal(got[rank], payload) {
			t.Errorf("config segment: rank %d received wrong bytes", rank)
		}
	}
}

// The point of segmentation: on a long vector through a multi-hop
// chain, the pipelined ring completes in less virtual time than the
// store-and-forward ring, because interior links carry segment k-1
// while segment k is still arriving.
func TestBcastSegmentedPipelinesFasterThanRing(t *testing.T) {
	const n = 64 << 10
	run := func(opts ...Opt) sim.Time {
		w := newWorld(8, 1, pushpull.PushPull)
		var bad bool
		end := w.Run(func(r *Rank) {
			var data []byte
			if r.ID() == 0 {
				data = fill(1, n)
			}
			if !bytes.Equal(r.Bcast(0, data, n, opts...), fill(1, n)) {
				bad = true
			}
		})
		if bad {
			t.Fatal("broadcast corrupted")
		}
		return end
	}
	ring := run(WithAlgorithm(Ring))
	seg := run(WithAlgorithm(RingSegmented), WithSegment(8192))
	if seg >= ring {
		t.Errorf("segmented ring took %v, store-and-forward ring %v — no pipelining win", seg, ring)
	}
}

// Test must not allocate while the round in flight is incomplete: it is
// the polling point inside application compute loops.
func TestRequestTestDoesNotAllocateWhilePending(t *testing.T) {
	w := newWorld(2, 1, pushpull.PushPull)
	allocs := -1.0
	w.Run(func(r *Rank) {
		req := r.IAllReduce(FromInt64s(make([]int64, 256)), SumInt64)
		if r.ID() == 0 {
			if done, _, _ := req.Test(); done {
				t.Error("IAllReduce completed with no virtual time elapsed")
			}
			allocs = testing.AllocsPerRun(100, func() { req.Test() })
		}
		if _, err := req.Wait(); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	if allocs != 0 {
		t.Errorf("Test allocated %.1f objects per pending poll, want 0", allocs)
	}
}

// TestProgressionAdvancesWithoutPolling is the sharp assertion behind
// retiring the software-progression caveat: a MULTI-round nonblocking
// collective must fully complete under a long pure-compute phase the
// rank never interrupts with Test. Only the world's progression tasklet
// can have posted rounds 2..n, because nobody else ran collective code.
func TestProgressionAdvancesWithoutPolling(t *testing.T) {
	w := newWorld(4, 1, pushpull.PushPull)
	size := w.Size()
	out := make([][]byte, size)
	w.Run(func(r *Rank) {
		contrib := fill(r.ID(), 256)
		// Ring allgather: size-1 sequenced rounds, each depending on the
		// previous round's received block.
		req := r.IAllGather(contrib, 256, WithAlgorithm(Ring))
		if done, _, _ := req.Test(); done {
			t.Errorf("rank %d: allgather done with no virtual time elapsed", r.ID())
		}
		// ~50 ms of virtual compute — orders of magnitude longer than the
		// collective — with no Test calls at all.
		r.Compute(10_000_000)
		done, res, err := req.Test()
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
			return
		}
		if !done {
			t.Errorf("rank %d: collective still in flight after 50 ms of compute — progression is not advancing rounds", r.ID())
			res, err = req.Wait() // complete anyway to check data
			if err != nil {
				t.Errorf("rank %d: %v", r.ID(), err)
				return
			}
		}
		out[r.ID()] = res
	})
	for rank := 0; rank < size; rank++ {
		for from := 0; from < size; from++ {
			want := fill(from, 256)
			if !bytes.Equal(out[rank][from*256:(from+1)*256], want) {
				t.Fatalf("rank %d: block %d corrupted", rank, from)
			}
		}
	}
}

// TestProgressionSeveralOutstanding: two nonblocking collectives in
// flight at once, both driven by the one progression tasklet, complete
// independently and correctly.
func TestProgressionSeveralOutstanding(t *testing.T) {
	w := newWorld(4, 1, pushpull.PushPull)
	size := w.Size()
	sums := make([]int64, size)
	gathers := make([][]byte, size)
	w.Run(func(r *Rank) {
		a := r.IAllReduce(FromInt64s([]int64{int64(r.ID() + 1)}), SumInt64)
		b := r.IAllGather(fill(r.ID(), 64), 64, WithAlgorithm(Ring))
		r.Compute(10_000_000)
		res, err := a.Wait()
		if err != nil {
			t.Errorf("rank %d allreduce: %v", r.ID(), err)
			return
		}
		sums[r.ID()] = Int64s(res)[0]
		cat, err := b.Wait()
		if err != nil {
			t.Errorf("rank %d allgather: %v", r.ID(), err)
			return
		}
		gathers[r.ID()] = cat
	})
	for rank := 0; rank < size; rank++ {
		if sums[rank] != 10 {
			t.Errorf("rank %d: sum %d, want 10", rank, sums[rank])
		}
		for from := 0; from < size; from++ {
			if !bytes.Equal(gathers[rank][from*64:(from+1)*64], fill(from, 64)) {
				t.Errorf("rank %d: gather block %d corrupted", rank, from)
			}
		}
	}
}
