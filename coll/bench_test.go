package coll

import (
	"testing"

	"pushpull/internal/pushpull"
)

// BenchmarkRequestTestWhilePending measures the overlap polling path:
// Test on a request whose round is still in flight runs inside
// application compute loops, so it must stay allocation-free (the
// received payloads are only collected once every op reports done).
func BenchmarkRequestTestWhilePending(b *testing.B) {
	b.ReportAllocs()
	w := newWorld(2, 1, pushpull.PushPull)
	w.Run(func(r *Rank) {
		req := r.IAllReduce(FromInt64s(make([]int64, 512)), SumInt64)
		if r.ID() == 0 {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req.Test()
			}
			b.StopTimer()
		}
		if _, err := req.Wait(); err != nil {
			b.Error(err)
		}
	})
}
