package coll

import (
	"fmt"

	"pushpull/comm"
)

// Op combines two reduction operands into one. The binomial-tree and
// recursive-doubling algorithms reorder combinations freely, so ops must
// be associative AND commutative for an algorithm-independent result;
// the Ring algorithm is the ordered alternative (a left fold in rank
// order) when order matters. Ops must not retain their arguments.
type Op func(a, b []byte) []byte

// wait completes a blocking collective, panicking with rank context on
// transport failure (collectives are programming errors when they fail,
// not runtime conditions). The panic value is an error that wraps the
// transport failure, so a recovering harness can still classify it —
// errors.Is(v, comm.ErrPeerUnreachable) keeps working through the
// panic.
func (r *Rank) wait(what string, rq *Request) []byte {
	res, err := rq.Wait()
	if err != nil {
		panic(fmt.Errorf("coll: rank %d %s: %w", r.id, what, err))
	}
	return res
}

// checkRoot validates a root rank.
func (r *Rank) checkRoot(what string, root int) {
	if root < 0 || root >= r.Size() {
		panic(fmt.Sprintf("coll: %s root %d out of range", what, root))
	}
}

// collSend/collRecv/collSendRecv carry the blocking collectives'
// internal traffic on the operation's own reserved tag lane, like the
// Request engine's rounds, so neither concurrent application
// point-to-point calls (tag 0 by default) nor other collectives can
// cross-match its data.
func (r *Rank) collSend(tag, to int, data []byte) { r.Send(to, data, comm.WithTag(tag)) }

func (r *Rank) collRecv(tag, from, n int) []byte {
	return r.Recv(from, n, comm.WithTag(tag))
}

func (r *Rank) collSendRecv(tag, to int, data []byte, from, n int) []byte {
	return r.SendRecv(to, data, from, n, comm.WithTag(tag))
}

// The i* variants start a collective and return its plain Request: the
// caller drives it (Wait advances rounds in-line). The public I*
// wrappers hand the Request to the World's progression tasklet instead,
// so it advances without the application's involvement. The blocking
// collectives use the plain variants — their immediate Wait IS the
// driver, and keeping them off the progression path keeps their event
// schedule (and so scenario digests) identical to a world that never
// runs a nonblocking collective.

// IBarrier starts a nonblocking barrier: its Request completes once
// every rank has entered the barrier.
func (r *Rank) IBarrier(opts ...Opt) *Request {
	return r.progressed(r.iBarrier(opts...))
}

func (r *Rank) iBarrier(opts ...Opt) *Request {
	if r.algorithm(OpBarrier, opts) == Tree {
		return r.start(r.barrierTree())
	}
	return r.start(r.barrierDissemination())
}

// Barrier blocks until every rank has entered it.
func (r *Rank) Barrier(opts ...Opt) {
	r.wait("barrier", r.iBarrier(opts...))
}

// IBcast starts a nonblocking broadcast of root's data; the Request's
// result is the received copy (root completes with data itself). Every
// rank must pass the same n, the message length; non-root ranks may
// pass nil data.
func (r *Rank) IBcast(root int, data []byte, n int, opts ...Opt) *Request {
	return r.progressed(r.iBcast(root, data, n, opts...))
}

func (r *Rank) iBcast(root int, data []byte, n int, opts ...Opt) *Request {
	r.checkRoot("bcast", root)
	if r.id == root && len(data) != n {
		panic(fmt.Sprintf("coll: bcast root has %d bytes, promised %d", len(data), n))
	}
	switch r.algorithm(OpBcast, opts) {
	case Ring:
		return r.start(r.bcastRing(root, data, n))
	case RingSegmented:
		return r.start(r.bcastRingSeg(root, data, n, r.segment(opts)))
	default:
		return r.start(r.bcastBinomial(root, data, n))
	}
}

// Bcast distributes root's data to every rank and returns the received
// copy (root returns data itself).
func (r *Rank) Bcast(root int, data []byte, n int, opts ...Opt) []byte {
	return r.wait("bcast", r.iBcast(root, data, n, opts...))
}

// IReduce starts a nonblocking reduction of every rank's data with op;
// the Request's result lands on root (other ranks complete with nil).
// All contributions must have the same length.
func (r *Rank) IReduce(root int, data []byte, op Op, opts ...Opt) *Request {
	return r.progressed(r.iReduce(root, data, op, opts...))
}

func (r *Rank) iReduce(root int, data []byte, op Op, opts ...Opt) *Request {
	r.checkRoot("reduce", root)
	if r.algorithm(OpReduce, opts) == Ring {
		return r.start(r.reduceRing(root, data, op))
	}
	return r.start(r.reduceBinomial(root, data, op))
}

// Reduce combines every rank's data with op; the result lands on root
// (other ranks return nil).
func (r *Rank) Reduce(root int, data []byte, op Op, opts ...Opt) []byte {
	return r.wait("reduce", r.iReduce(root, data, op, opts...))
}

// IAllReduce starts a nonblocking allreduce; every rank's Request
// completes with the combined result.
func (r *Rank) IAllReduce(data []byte, op Op, opts ...Opt) *Request {
	return r.progressed(r.iAllReduce(data, op, opts...))
}

func (r *Rank) iAllReduce(data []byte, op Op, opts ...Opt) *Request {
	switch r.algorithm(OpAllReduce, opts) {
	case RecursiveDoubling:
		return r.start(r.allReduceRD(data, op))
	case RSAG:
		return r.start(r.allReduceRSAG(data, op))
	case Ring:
		last := r.Size() - 1
		return r.start(then(r.reduceRing(last, data, op), func(res []byte) stepper {
			return r.bcastRing(last, res, len(data))
		}))
	default: // Tree: reduce to rank 0 plus broadcast.
		return r.start(then(r.reduceBinomial(0, data, op), func(res []byte) stepper {
			return r.bcastBinomial(0, res, len(data))
		}))
	}
}

// AllReduce combines every rank's data with op and returns the result
// on every rank.
func (r *Rank) AllReduce(data []byte, op Op, opts ...Opt) []byte {
	return r.wait("allreduce", r.iAllReduce(data, op, opts...))
}

// IAllGather starts a nonblocking allgather of every rank's n-byte
// contribution; the Request's result is the rank-major concatenation
// (rank i's block at [i*n : (i+1)*n]). AllGather splits it.
func (r *Rank) IAllGather(data []byte, n int, opts ...Opt) *Request {
	return r.progressed(r.iAllGather(data, n, opts...))
}

func (r *Rank) iAllGather(data []byte, n int, opts ...Opt) *Request {
	if len(data) != n {
		panic(fmt.Sprintf("coll: allgather contribution has %d bytes, promised %d", len(data), n))
	}
	if r.algorithm(OpAllGather, opts) == Tree {
		return r.start(r.allGatherTree(data, n))
	}
	return r.start(r.allGatherRing(data, n))
}

// AllGather collects every rank's n-byte contribution on every rank,
// indexed by rank.
func (r *Rank) AllGather(data []byte, n int, opts ...Opt) [][]byte {
	concat := r.wait("allgather", r.iAllGather(data, n, opts...))
	size := r.Size()
	out := make([][]byte, size)
	for i := 0; i < size; i++ {
		out[i] = concat[i*n : (i+1)*n : (i+1)*n]
	}
	return out
}

// Gather collects every rank's data on root, which returns the
// contributions indexed by rank (other ranks return nil). All
// contributions must have length n.
func (r *Rank) Gather(root int, data []byte, n int) [][]byte {
	r.checkRoot("gather", root)
	size := r.Size()
	tag := r.nextCollTag()
	if r.id != root {
		r.collSend(tag, root, data)
		return nil
	}
	out := make([][]byte, size)
	out[r.id] = append([]byte(nil), data...)
	// Receive in rank order; FIFO channels make this deterministic.
	for from := 0; from < size; from++ {
		if from == root {
			continue
		}
		out[from] = r.collRecv(tag, from, n)
	}
	return out
}

// Scatter distributes root's per-rank chunks; every rank returns its own
// chunk. Every rank must pass the same n, the chunk length; non-root
// ranks may pass nil chunks.
func (r *Rank) Scatter(root int, chunks [][]byte, n int) []byte {
	r.checkRoot("scatter", root)
	size := r.Size()
	tag := r.nextCollTag()
	if r.id == root {
		if len(chunks) != size {
			panic(fmt.Sprintf("coll: scatter root has %d chunks for %d ranks", len(chunks), size))
		}
		for to := 0; to < size; to++ {
			if to != root {
				r.collSend(tag, to, chunks[to])
			}
		}
		return append([]byte(nil), chunks[root]...)
	}
	return r.collRecv(tag, root, n)
}

// AllToAll sends blocks[j] to rank j and returns the blocks received,
// indexed by source rank. All blocks must have length n. The rotation
// schedule pairs distinct partners each step, so no two messages to the
// same destination ever contend.
func (r *Rank) AllToAll(blocks [][]byte, n int) [][]byte {
	size := r.Size()
	if len(blocks) != size {
		panic(fmt.Sprintf("coll: alltoall has %d blocks for %d ranks", len(blocks), size))
	}
	out := make([][]byte, size)
	out[r.id] = append([]byte(nil), blocks[r.id]...)
	tag := r.nextCollTag()
	for step := 1; step < size; step++ {
		dst := (r.id + step) % size
		src := (r.id - step + size) % size
		out[src] = r.collSendRecv(tag, dst, blocks[dst], src, n)
	}
	return out
}
