package coll

import "fmt"

// Algorithm names one collective communication schedule. Not every
// algorithm applies to every operation — see Algorithms.
type Algorithm string

const (
	// Binomial is the binomial-tree schedule (Bcast, Reduce).
	Binomial Algorithm = "binomial"
	// Ring is the neighbour-chain schedule. For Reduce/AllReduce it is
	// the ordered variant: contributions are combined as a left fold in
	// rank order, so non-commutative ops get a well-defined result.
	Ring Algorithm = "ring"
	// RecursiveDoubling is the ⌈log2 n⌉-round pairwise-exchange
	// AllReduce, with the standard fold-in/fold-out fixup for
	// non-power-of-two world sizes.
	RecursiveDoubling Algorithm = "recursive-doubling"
	// Dissemination is the ⌈log2 n⌉-round token-exchange Barrier.
	Dissemination Algorithm = "dissemination"
	// Tree composes rooted phases: reduce-then-broadcast for AllReduce
	// and Barrier, gather-then-broadcast for AllGather.
	Tree Algorithm = "tree"
	// RingSegmented is the pipelined ring Bcast for long vectors: the
	// vector is cut into SegmentBytes segments and streamed through the
	// chain, so all n-1 links carry data simultaneously once the pipe
	// fills — where the plain ring forwards the whole vector
	// store-and-forward, one busy link at a time.
	RingSegmented Algorithm = "ring-seg"
	// RSAG is the reduce-scatter + allgather (Rabenseifner-style ring)
	// AllReduce: each rank reduces a 1/n block of the vector, then the
	// reduced blocks circulate in a ring allgather. Every rank moves
	// 2·(n-1)/n·m bytes — bandwidth-optimal for long vectors — instead
	// of a full vector per tree edge or chain hop. Like the tree
	// algorithms it reorders combinations (each block folds in rank
	// order starting from its own index), so ops must be commutative.
	RSAG Algorithm = "rs-ag"
)

// OpKind names one algorithm-selectable collective operation.
type OpKind string

const (
	OpBarrier   OpKind = "barrier"
	OpBcast     OpKind = "bcast"
	OpReduce    OpKind = "reduce"
	OpAllReduce OpKind = "allreduce"
	OpAllGather OpKind = "allgather"
)

// algTable lists the valid algorithms per operation; the first entry is
// the default.
var algTable = map[OpKind][]Algorithm{
	OpBarrier:   {Dissemination, Tree},
	OpBcast:     {Binomial, Ring, RingSegmented},
	OpReduce:    {Binomial, Ring},
	OpAllReduce: {Tree, RecursiveDoubling, Ring, RSAG},
	OpAllGather: {Ring, Tree},
}

// Algorithms lists the valid algorithms for op, default first.
func Algorithms(op OpKind) []Algorithm {
	return append([]Algorithm(nil), algTable[op]...)
}

// DefaultAlgorithm reports op's default algorithm.
func DefaultAlgorithm(op OpKind) Algorithm { return algTable[op][0] }

// ValidateAlgorithm reports whether a names a valid algorithm for op;
// the empty string means the default and is always valid. Exported so
// spec-driven callers (the scenario engine) can reject bad input without
// tripping the package's programming-error panics.
func ValidateAlgorithm(op OpKind, a Algorithm) error {
	if a == "" {
		return nil
	}
	algs, ok := algTable[op]
	if !ok {
		return fmt.Errorf("coll: unknown operation %q", op)
	}
	for _, valid := range algs {
		if a == valid {
			return nil
		}
	}
	return fmt.Errorf("coll: operation %s has no algorithm %q (have %v)", op, a, algs)
}

// Config selects one algorithm per operation for a whole World. The
// zero value means every operation uses its default; WithAlgorithm
// overrides per call.
type Config struct {
	Barrier   Algorithm `json:"barrier,omitempty"`
	Bcast     Algorithm `json:"bcast,omitempty"`
	Reduce    Algorithm `json:"reduce,omitempty"`
	AllReduce Algorithm `json:"allreduce,omitempty"`
	AllGather Algorithm `json:"allgather,omitempty"`
	// SegmentBytes is the segment size the segmented algorithms
	// (ring-seg Bcast) cut long vectors into; 0 means
	// DefaultSegmentBytes. WithSegment overrides per call.
	SegmentBytes int `json:"segmentBytes,omitempty"`
}

// Validate reports the first invalid op/algorithm pairing or a negative
// segment size.
func (c Config) Validate() error {
	if c.SegmentBytes < 0 {
		return fmt.Errorf("coll: SegmentBytes %d is negative", c.SegmentBytes)
	}
	for _, f := range []struct {
		op OpKind
		a  Algorithm
	}{
		{OpBarrier, c.Barrier},
		{OpBcast, c.Bcast},
		{OpReduce, c.Reduce},
		{OpAllReduce, c.AllReduce},
		{OpAllGather, c.AllGather},
	} {
		if err := ValidateAlgorithm(f.op, f.a); err != nil {
			return err
		}
	}
	return nil
}

// algorithm resolves the configured algorithm for op ("" if unset).
func (c Config) algorithm(op OpKind) Algorithm {
	switch op {
	case OpBarrier:
		return c.Barrier
	case OpBcast:
		return c.Bcast
	case OpReduce:
		return c.Reduce
	case OpAllReduce:
		return c.AllReduce
	case OpAllGather:
		return c.AllGather
	}
	return ""
}

// DefaultSegmentBytes is the segment size the segmented algorithms use
// when neither Config.SegmentBytes nor WithSegment sets one. 4 KiB is
// several Ethernet frames per segment — large enough to amortize the
// per-message protocol cost, small enough that an 8-rank pipe fills
// within the first few percent of a long vector.
const DefaultSegmentBytes = 4096

// Opt tunes one collective call.
type Opt func(*callCfg)

type callCfg struct {
	alg Algorithm
	seg int
}

// WithAlgorithm selects the schedule for this one call, overriding the
// world's Config. Invalid op/algorithm pairings panic: algorithm choice
// is a programming (or pre-validated spec) decision, not a runtime
// condition.
func WithAlgorithm(a Algorithm) Opt { return func(c *callCfg) { c.alg = a } }

// WithSegment sets the segment size in bytes the segmented algorithms
// (ring-seg Bcast) use for this one call, overriding the world's
// Config.SegmentBytes. It panics on a non-positive size: segmenting is
// a programming decision, not a runtime condition.
func WithSegment(n int) Opt {
	if n <= 0 {
		panic(fmt.Sprintf("coll: segment size %d is not positive", n))
	}
	return func(c *callCfg) { c.seg = n }
}
