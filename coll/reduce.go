package coll

import "encoding/binary"

// Reduction helpers over vectors of little-endian int64 elements — the
// element type the examples and benchmarks use. Each returns a fresh
// slice and requires equal-length, 8-byte-multiple operands.

// Int64s decodes a reduction buffer into its elements.
func Int64s(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic("coll: reduction buffer not a multiple of 8 bytes")
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// FromInt64s encodes elements into a reduction buffer.
func FromInt64s(vals []int64) []byte {
	out := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func zipInt64(a, b []byte, f func(x, y int64) int64) []byte {
	if len(a) != len(b) {
		panic("coll: reduction operands differ in length")
	}
	av, bv := Int64s(a), Int64s(b)
	out := make([]int64, len(av))
	for i := range out {
		out[i] = f(av[i], bv[i])
	}
	return FromInt64s(out)
}

// SumInt64 adds element-wise.
func SumInt64(a, b []byte) []byte {
	return zipInt64(a, b, func(x, y int64) int64 { return x + y })
}

// MaxInt64 takes the element-wise maximum.
func MaxInt64(a, b []byte) []byte {
	return zipInt64(a, b, func(x, y int64) int64 {
		if x > y {
			return x
		}
		return y
	})
}

// MinInt64 takes the element-wise minimum.
func MinInt64(a, b []byte) []byte {
	return zipInt64(a, b, func(x, y int64) int64 {
		if x < y {
			return x
		}
		return y
	})
}

// XorBytes combines operands bitwise — order-insensitive and lossless,
// which makes it the property-test workhorse.
func XorBytes(a, b []byte) []byte {
	if len(a) != len(b) {
		panic("coll: reduction operands differ in length")
	}
	out := make([]byte, len(a))
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}
