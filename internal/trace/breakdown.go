package trace

import (
	"fmt"
	"strings"

	"pushpull/internal/sim"
)

// Phase is one span of a messaging event's critical path.
type Phase struct {
	Name     string
	From, To sim.Time
}

// Duration reports the phase's span.
func (p Phase) Duration() sim.Duration { return p.To.Sub(p.From) }

// Breakdown reconstructs the protocol phases of a single messaging event
// from its trace — the paper's Figure 2, measured instead of drawn. It
// expects the events of exactly one message (the shape cmd/pushpull-trace
// produces); with several interleaved messages the result describes the
// first.
//
// The phases, all in global virtual time:
//
//	push     — send registration until the last pushed fragment was
//	           handed to the wire
//	wait-ack — idle gap until the receiver's acknowledgement/pull
//	           request was transmitted (hidden when Push-and-Acknowledge
//	           Overlapping works: the gap is small or negative and is
//	           reported as zero)
//	grant    — pull request flight and service at the send party
//	pull     — pull data transfer until the message completed
//
// A fully pushed message (no pull phase) collapses to push plus a final
// "deliver" phase ending at completion.
func Breakdown(evs []Event) []Phase {
	var send, lastPush, req, grant, complete sim.Time
	var haveSend, havePush, haveReq, haveGrant, haveComplete bool
	for _, ev := range evs {
		switch ev.Kind {
		case KindSend:
			if !haveSend {
				send, haveSend = ev.T, true
			}
		case KindPush:
			lastPush, havePush = ev.T, true
		case KindPullReq:
			if !haveReq {
				req, haveReq = ev.T, true
			}
		case KindPullGrant:
			if !haveGrant {
				grant, haveGrant = ev.T, true
			}
		case KindComplete:
			if !haveComplete {
				complete, haveComplete = ev.T, true
			}
		}
	}
	if !haveSend {
		return nil
	}
	var phases []Phase
	cursor := send
	if havePush {
		phases = append(phases, Phase{"push", cursor, lastPush})
		cursor = lastPush
	}
	if !haveReq {
		// Fully pushed: everything after the push is delivery.
		if haveComplete && complete > cursor {
			phases = append(phases, Phase{"deliver", cursor, complete})
		}
		return phases
	}
	ackEnd := req
	if ackEnd < cursor {
		ackEnd = cursor // overlapped ack: the wait is fully hidden
	}
	phases = append(phases, Phase{"wait-ack", cursor, ackEnd})
	cursor = ackEnd
	if haveGrant {
		g := grant
		if g < cursor {
			g = cursor
		}
		phases = append(phases, Phase{"grant", cursor, g})
		cursor = g
	}
	if haveComplete && complete > cursor {
		phases = append(phases, Phase{"pull", cursor, complete})
	}
	return phases
}

// RenderBreakdown formats phases as an aligned table with durations and
// critical-path percentages.
func RenderBreakdown(phases []Phase) string {
	if len(phases) == 0 {
		return "(no phases: trace contained no send event)\n"
	}
	total := phases[len(phases)-1].To.Sub(phases[0].From)
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %14s %12s %7s\n", "phase", "from", "to", "duration", "share")
	for _, p := range phases {
		share := 0.0
		if total > 0 {
			share = 100 * float64(p.Duration()) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %14v %14v %12v %6.1f%%\n", p.Name, p.From, p.To, p.Duration(), share)
	}
	fmt.Fprintf(&b, "%-10s %14s %14s %12v %6.1f%%\n", "total", "", "", total, 100.0)
	return b.String()
}
