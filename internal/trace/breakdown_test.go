package trace

import (
	"strings"
	"testing"

	"pushpull/internal/sim"
)

func us(n int64) sim.Time { return sim.Time(n * int64(sim.Microsecond)) }

func TestBreakdownFullProtocol(t *testing.T) {
	evs := []Event{
		{T: us(0), Kind: KindSend},
		{T: us(2), Kind: KindPush},
		{T: us(10), Kind: KindPush},
		{T: us(40), Kind: KindPullReq},
		{T: us(55), Kind: KindPullGrant},
		{T: us(120), Kind: KindComplete},
	}
	phases := Breakdown(evs)
	want := []struct {
		name     string
		from, to sim.Time
	}{
		{"push", us(0), us(10)},
		{"wait-ack", us(10), us(40)},
		{"grant", us(40), us(55)},
		{"pull", us(55), us(120)},
	}
	if len(phases) != len(want) {
		t.Fatalf("%d phases, want %d: %+v", len(phases), len(want), phases)
	}
	for i, w := range want {
		p := phases[i]
		if p.Name != w.name || p.From != w.from || p.To != w.to {
			t.Errorf("phase %d = %+v, want %+v", i, p, w)
		}
	}
}

func TestBreakdownFullyPushed(t *testing.T) {
	evs := []Event{
		{T: us(0), Kind: KindSend},
		{T: us(5), Kind: KindPush},
		{T: us(50), Kind: KindComplete},
	}
	phases := Breakdown(evs)
	if len(phases) != 2 || phases[0].Name != "push" || phases[1].Name != "deliver" {
		t.Fatalf("phases = %+v", phases)
	}
	if phases[1].To != us(50) {
		t.Errorf("deliver ends at %v, want 50µs", phases[1].To)
	}
}

func TestBreakdownOverlappedAckIsHidden(t *testing.T) {
	// Push-and-Acknowledge Overlapping: the pull request arrives before
	// the second pushed fragment is handed over — wait-ack must be zero,
	// never negative.
	evs := []Event{
		{T: us(0), Kind: KindSend},
		{T: us(30), Kind: KindPullReq},
		{T: us(35), Kind: KindPush}, // second fragment after the req
		{T: us(36), Kind: KindPullGrant},
		{T: us(90), Kind: KindComplete},
	}
	phases := Breakdown(evs)
	for _, p := range phases {
		if p.Duration() < 0 {
			t.Errorf("negative phase %+v", p)
		}
		if p.Name == "wait-ack" && p.Duration() != 0 {
			t.Errorf("overlapped ack not hidden: %+v", p)
		}
	}
}

func TestBreakdownNoSend(t *testing.T) {
	if got := Breakdown([]Event{{T: us(1), Kind: KindPush}}); got != nil {
		t.Errorf("breakdown without send = %+v, want nil", got)
	}
}

func TestRenderBreakdown(t *testing.T) {
	out := RenderBreakdown(Breakdown([]Event{
		{T: us(0), Kind: KindSend},
		{T: us(10), Kind: KindPush},
		{T: us(40), Kind: KindPullReq},
		{T: us(50), Kind: KindPullGrant},
		{T: us(100), Kind: KindComplete},
	}))
	for _, want := range []string{"push", "wait-ack", "grant", "pull", "total", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if RenderBreakdown(nil) == "" {
		t.Error("empty breakdown rendered nothing")
	}
}
