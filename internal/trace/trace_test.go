package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"pushpull/internal/sim"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder(0)
	r.Record(10, 0, KindSend, "a")
	r.Record(20, 1, KindPush, "b")
	r.Recordf(30, 0, KindComplete, "got %d", 42)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Len = %d, want 3", len(evs))
	}
	if evs[0].Kind != KindSend || evs[1].Kind != KindPush || evs[2].Kind != KindComplete {
		t.Errorf("kinds out of order: %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[2].Text != "got 42" {
		t.Errorf("Recordf text = %q", evs[2].Text)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 || evs[2].Seq != 2 {
		t.Errorf("sequence numbers %d %d %d", evs[0].Seq, evs[1].Seq, evs[2].Seq)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(1, 0, KindSend, "x") // must not panic
	r.Recordf(2, 0, KindPush, "y %d", 1)
	if r.Len() != 0 || r.Total() != 0 || r.Count(KindSend) != 0 {
		t.Error("nil recorder reported non-zero state")
	}
	if r.Events() != nil || r.Kinds() != nil {
		t.Error("nil recorder returned events")
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 7; i++ {
		r.Record(sim.Time(i), 0, KindPush, "")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Total() != 7 || r.Evicted() != 4 {
		t.Errorf("Total = %d Evicted = %d, want 7 and 4", r.Total(), r.Evicted())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := sim.Time(4 + i); ev.T != want {
			t.Errorf("event %d at %v, want %v (oldest must be evicted first)", i, ev.T, want)
		}
	}
	// Counters survive eviction.
	if r.Count(KindPush) != 7 {
		t.Errorf("Count = %d, want 7", r.Count(KindPush))
	}
}

func TestFilterOfKindBetween(t *testing.T) {
	r := NewRecorder(0)
	r.Record(10, 0, KindSend, "s")
	r.Record(20, 1, KindPush, "p1")
	r.Record(30, 1, KindPush, "p2")
	r.Record(40, 0, KindComplete, "c")

	if got := len(r.OfKind(KindPush)); got != 2 {
		t.Errorf("OfKind(push) = %d, want 2", got)
	}
	if got := len(r.Between(20, 40)); got != 2 {
		t.Errorf("Between(20,40) = %d events, want 2 (half-open)", got)
	}
	node1 := r.Filter(func(ev Event) bool { return ev.Node == 1 })
	if len(node1) != 2 {
		t.Errorf("Filter(node 1) = %d, want 2", len(node1))
	}
}

func TestKindsSortedAndSummary(t *testing.T) {
	r := NewRecorder(0)
	r.Record(1, 0, KindPush, "")
	r.Record(2, 0, KindComplete, "")
	r.Record(3, 0, KindPush, "")

	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != KindComplete || kinds[1] != KindPush {
		t.Errorf("Kinds = %v, want sorted [complete push]", kinds)
	}
	sum := r.Summary()
	if !strings.Contains(sum, "push") || !strings.Contains(sum, "2") {
		t.Errorf("Summary missing push count: %q", sum)
	}
}

func TestRenderFlatContainsEverything(t *testing.T) {
	r := NewRecorder(0)
	r.Record(10, 0, KindSend, "hello")
	r.Record(20, 1, KindComplete, "world")
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "hello") || !strings.Contains(out, "world") {
		t.Errorf("Render output missing events:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Errorf("Render produced %d lines, want 2", lines)
	}
}

func TestRenderColumnsIndentsByNode(t *testing.T) {
	r := NewRecorder(0)
	r.Record(10, 0, KindSend, "left")
	r.Record(20, 5, KindComplete, "right")
	r.Record(30, -1, KindError, "gutter")
	var b strings.Builder
	if err := r.RenderColumns(&b, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if strings.HasPrefix(lines[0], " ") {
		t.Errorf("node 0 event indented: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], strings.Repeat(" ", 20)) {
		t.Errorf("second node's column not indented: %q", lines[1])
	}
	if strings.HasPrefix(lines[2], " ") {
		t.Errorf("gutter event indented: %q", lines[2])
	}
}

func TestEventString(t *testing.T) {
	ev := Event{T: sim.Time(1500), Node: 2, Kind: KindPullReq, Text: "x"}
	s := ev.String()
	if !strings.Contains(s, "n2") || !strings.Contains(s, "pull-req") {
		t.Errorf("Event.String = %q", s)
	}
}

// Property: for any record sequence, Total == sum of per-kind counts, and
// retained events are a suffix of the recorded sequence in order.
func TestRecorderCountInvariant(t *testing.T) {
	kinds := []Kind{KindSend, KindPush, KindPark, KindComplete}
	f := func(choices []uint8, max uint8) bool {
		r := NewRecorder(int(max % 16))
		for i, c := range choices {
			r.Record(sim.Time(i), int(c)%3, kinds[int(c)%len(kinds)], "")
		}
		var sum uint64
		for _, k := range r.Kinds() {
			sum += r.Count(k)
		}
		if sum != uint64(len(choices)) || r.Total() != uint64(len(choices)) {
			return false
		}
		evs := r.Events()
		// Events are in recording order and are the most recent ones.
		for i := 1; i < len(evs); i++ {
			if evs[i].Seq != evs[i-1].Seq+1 {
				return false
			}
		}
		return len(evs) == 0 || evs[len(evs)-1].Seq == uint64(len(choices))-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
