// Package trace records structured protocol events from a simulation run.
//
// The messaging stack, the NIC model and the reliability layer publish
// typed events (push transmitted, fragment parked, pull granted, frame
// dropped, ...) into a Recorder. The recorder keeps a bounded ring of the
// most recent events plus complete per-kind counters, and renders either a
// flat timeline or a per-node columnar view. cmd/pushpull-trace uses it to
// show a messaging event's anatomy; tests use the counters to assert which
// protocol paths a scenario exercised.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pushpull/internal/sim"
)

// Kind classifies one protocol event. Kinds are open-ended strings so
// substrate packages can add their own without a central registry, but the
// messaging stack sticks to the constants below.
type Kind string

// Event kinds emitted by the Push-Pull stack.
const (
	// KindSend marks a send operation entering the send queue.
	KindSend Kind = "send"
	// KindPush marks a pushed fragment (or bare announcement) handed to
	// the wire during the push phase.
	KindPush Kind = "push"
	// KindDirect marks a fragment copied straight into the destination
	// buffer through the registered zero buffer (one copy).
	KindDirect Kind = "direct"
	// KindPark marks a fragment staged in the pushed buffer because no
	// receive operation was registered yet (second copy to come).
	KindPark Kind = "park"
	// KindDiscard marks a pushed fragment dropped for lack of pushed-
	// buffer space that the pull request will re-fetch.
	KindDiscard Kind = "discard"
	// KindRefuse marks a fully eager fragment refused for lack of pushed-
	// buffer space; go-back-N retransmission recovers it (the Fig. 6
	// Push-All collapse).
	KindRefuse Kind = "refuse"
	// KindPullReq marks the receive side's acknowledgement-cum-pull-
	// request leaving for the sender.
	KindPullReq Kind = "pull-req"
	// KindPullGrant marks the send side serving a pull request from the
	// send queue.
	KindPullGrant Kind = "pull-grant"
	// KindPullDispatch marks the intranode pull phase being handed to a
	// kernel thread on a chosen CPU.
	KindPullDispatch Kind = "pull-dispatch"
	// KindComplete marks a message fully received.
	KindComplete Kind = "complete"
	// KindError marks protocol-visible errors (unknown peers, oversized
	// messages).
	KindError Kind = "error"
)

// Event kinds emitted by the NIC model.
const (
	// KindNICTx marks a frame fully serialized onto the wire.
	KindNICTx Kind = "nic-tx"
	// KindNICRx marks a frame delivered to the protocol handler.
	KindNICRx Kind = "nic-rx"
	// KindNICDrop marks a frame lost to incoming-ring overflow.
	KindNICDrop Kind = "nic-drop"
)

// Event kinds emitted by the go-back-N layer.
const (
	// KindRTO marks a retransmission timeout firing.
	KindRTO Kind = "rto"
	// KindRetransmit marks one packet retransmission.
	KindRetransmit Kind = "retransmit"
)

// Event is one recorded protocol event.
type Event struct {
	// T is the virtual time the event was recorded.
	T sim.Time
	// Node is the node the event happened on (-1 when not node-bound).
	Node int
	// Kind classifies the event.
	Kind Kind
	// Text is the human-readable description.
	Text string
	// Seq is the recorder-assigned sequence number (total order of
	// recording, stable across ring eviction).
	Seq uint64
}

func (ev Event) String() string {
	return fmt.Sprintf("%v n%d %-13s %s", ev.T, ev.Node, ev.Kind, ev.Text)
}

// Recorder collects events. It keeps at most max events (the oldest are
// evicted first) but counts every event ever recorded per kind, so
// counters remain exact even after eviction. The zero value is not usable;
// create recorders with NewRecorder.
//
// A nil *Recorder is safe to record into (the calls are no-ops), so model
// code can publish events unconditionally.
type Recorder struct {
	max     int
	evs     []Event
	start   int // ring head
	seq     uint64
	evicted uint64
	counts  map[Kind]uint64
}

// NewRecorder returns an empty recorder keeping at most max events.
// max <= 0 means unbounded.
func NewRecorder(max int) *Recorder {
	return &Recorder{max: max, counts: make(map[Kind]uint64)}
}

// Record appends one event. Recording into a nil recorder is a no-op.
func (r *Recorder) Record(t sim.Time, node int, kind Kind, text string) {
	if r == nil {
		return
	}
	ev := Event{T: t, Node: node, Kind: kind, Text: text, Seq: r.seq}
	r.seq++
	r.counts[kind]++
	if r.max > 0 && len(r.evs) == r.max {
		// Evict the oldest by rotating the ring start.
		r.evs[r.start] = ev
		r.start = (r.start + 1) % r.max
		r.evicted++
		return
	}
	r.evs = append(r.evs, ev)
}

// Recordf is Record with fmt.Sprintf formatting.
func (r *Recorder) Recordf(t sim.Time, node int, kind Kind, format string, args ...any) {
	if r == nil {
		return
	}
	r.Record(t, node, kind, fmt.Sprintf(format, args...))
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.evs)
}

// Total reports the number of events ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// Evicted reports how many events the ring dropped.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	return r.evicted
}

// Count reports how many events of the given kind were ever recorded.
func (r *Recorder) Count(kind Kind) uint64 {
	if r == nil {
		return 0
	}
	return r.counts[kind]
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.evs))
	for i := 0; i < len(r.evs); i++ {
		out = append(out, r.evs[(r.start+i)%len(r.evs)])
	}
	return out
}

// Filter returns the retained events for which pred is true, oldest-first.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if pred(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// OfKind returns the retained events of one kind, oldest-first.
func (r *Recorder) OfKind(kind Kind) []Event {
	return r.Filter(func(ev Event) bool { return ev.Kind == kind })
}

// Between returns the retained events with from <= T < to, oldest-first.
func (r *Recorder) Between(from, to sim.Time) []Event {
	return r.Filter(func(ev Event) bool { return ev.T >= from && ev.T < to })
}

// Kinds returns every kind ever recorded, sorted, for stable reports.
func (r *Recorder) Kinds() []Kind {
	if r == nil {
		return nil
	}
	kinds := make([]Kind, 0, len(r.counts))
	for k := range r.counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// Summary renders one line per kind with its total count, sorted by kind.
func (r *Recorder) Summary() string {
	var b strings.Builder
	for _, k := range r.Kinds() {
		fmt.Fprintf(&b, "%-13s %d\n", k, r.counts[k])
	}
	return b.String()
}

// Render writes the retained events as a flat timeline, one per line.
func (r *Recorder) Render(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintln(w, ev.String()); err != nil {
			return err
		}
	}
	return nil
}

// RenderColumns writes the retained events with one column per node, so
// concurrent activity on different machines reads side by side. Events
// with Node < 0 span the gutter. width is the column width (0 picks 44).
func (r *Recorder) RenderColumns(w io.Writer, width int) error {
	if width <= 0 {
		width = 44
	}
	nodes := r.nodeIDs()
	col := make(map[int]int, len(nodes))
	for i, n := range nodes {
		col[n] = i
	}
	for _, ev := range r.Events() {
		text := fmt.Sprintf("%v %s %s", ev.T, ev.Kind, ev.Text)
		var line strings.Builder
		if ev.Node < 0 {
			line.WriteString(text)
		} else {
			line.WriteString(strings.Repeat(" ", col[ev.Node]*width))
			line.WriteString(text)
		}
		if _, err := fmt.Fprintln(w, line.String()); err != nil {
			return err
		}
	}
	return nil
}

// nodeIDs lists the distinct non-negative node ids seen, sorted.
func (r *Recorder) nodeIDs() []int {
	seen := map[int]bool{}
	for _, ev := range r.Events() {
		if ev.Node >= 0 {
			seen[ev.Node] = true
		}
	}
	ids := make([]int, 0, len(seen))
	for n := range seen {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	return ids
}
