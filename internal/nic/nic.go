// Package nic models the network interface card (the paper's testbed used
// D-Link 500TX cards with the DEC 21140 controller): an outgoing FIFO
// drained by a transmit engine, host-memory DMA that contends for the
// node's memory bus, an incoming ring, and handler invocation through the
// node's interrupt controller.
//
// Two transmit trigger paths exist, because Address Translation Overhead
// Masking depends on the cheap one: the control registers and FIFO can be
// mapped into user space, letting the send process copy a pushed fragment
// into the outgoing FIFO and trigger transmission without a system call
// (paper §4.3, cf. DP, GAMMA, U-Net); or transmission can be triggered
// from kernel context after a host-memory DMA.
package nic

import (
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/fault"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// Config describes one NIC.
type Config struct {
	// TxRingFrames / RxRingFrames bound the on-card FIFOs.
	TxRingFrames int
	RxRingFrames int
	// TxSetup is the per-frame cost of the transmit engine (descriptor
	// fetch, FIFO management) before serialization starts.
	TxSetup sim.Duration
	// RxSetup is the per-frame receive-side DMA setup cost.
	RxSetup sim.Duration
	// DMABytesPerSec is the card's host-memory DMA rate.
	DMABytesPerSec int64
	// RxProcess is the driver's per-frame receive processing (ring
	// bookkeeping, header inspection) executed in handler context.
	RxProcess sim.Duration
	// TriggerUser is the cost of the mapped control-register write that
	// starts transmission from user space.
	TriggerUser sim.Duration
	// TriggerKernel is the driver transmit path taken without the mapped
	// registers: descriptor setup, ring bookkeeping (syscall cost is
	// charged separately by the protocol layer). Eliminating this per-
	// frame cost is what user-level triggering buys (cf. U-Net, GAMMA,
	// DP).
	TriggerKernel sim.Duration
}

// DEC21140 approximates the paper's 100 Mbit/s D-Link 500TX (DEC 21140
// "Tulip" controller) on a 33 MHz PCI bus.
func DEC21140() Config {
	return Config{
		TxRingFrames:   32,
		RxRingFrames:   64,
		TxSetup:        2500 * sim.Nanosecond,
		RxSetup:        2800 * sim.Nanosecond,
		DMABytesPerSec: 120_000_000,
		RxProcess:      4500 * sim.Nanosecond,
		TriggerUser:    200 * sim.Nanosecond,
		TriggerKernel:  5500 * sim.Nanosecond,
	}
}

// TxRequest is one frame queued for transmission.
type TxRequest struct {
	Frame ether.Frame
	// Preloaded marks frames whose payload is already in the outgoing
	// FIFO (copied there by the user-level trigger path); they skip the
	// host-memory DMA.
	Preloaded bool
}

// NIC is one network interface attached to a node and a link. All three
// of its actors — the transmit engine, the per-frame wire stage and the
// receive DMA — run as engine tasklets: resumable state machines
// dispatched inline, with no goroutine per pump or per frame.
type NIC struct {
	node *smp.Node
	cfg  Config
	link ether.Medium
	txQ  *sim.Queue[TxRequest]
	onRx func(t *smp.Thread, f ether.Frame)

	// Rec, when set, receives nic-tx / nic-rx / nic-drop trace events.
	Rec *trace.Recorder

	// Transmit-engine pump state (resume point + frame in hand).
	txTk  *sim.Tasklet
	txPC  int8
	txReq TxRequest
	// Recycled one-shot tasklets for the wire and receive stages.
	wirePool []*wireTx
	rxPool   []*rxJob

	rxInFlight int
	txFrames   uint64
	txBytes    uint64
	rxFrames   uint64
	rxDropped  uint64

	// inj, when set, injects node-pause rx drops and tx-stall windows;
	// nil (the default) costs one comparison per frame.
	inj          *fault.NICInjector
	faultDropped uint64
}

// Transmit-engine resume points.
const (
	nicTxFetch   = iota // fetch the next FIFO entry (parks on empty ring)
	nicTxSetup          // TxSetup elapsed: start the host DMA or go to wire
	nicTxBusWait        // wake-driven retry of the bus acquisition
	nicTxDMADone        // DMA hold elapsed: release the bus, go to wire
)

// New creates a NIC on node n. Attach a link with AttachLink before
// sending.
func New(n *smp.Node, cfg Config) *NIC {
	nc := &NIC{node: n, cfg: cfg}
	nc.txQ = sim.NewQueue[TxRequest](n.Engine, cfg.TxRingFrames)
	nc.txQ.SetName(fmt.Sprintf("nic-txq/n%d", n.ID))
	nc.txTk = n.Engine.NewTasklet(fmt.Sprintf("nic-tx/n%d", n.ID), nc.txPump)
	nc.txTk.Start()
	return nc
}

// AttachLink connects the NIC to its transmit medium — a point-to-point
// link, a switch port's link, or a shared hub.
func (nc *NIC) AttachLink(l ether.Medium) { nc.link = l }

// SetReceiveHandler registers the protocol entry point invoked (in
// interrupt or polling context, per the node's policy) for every received
// frame.
func (nc *NIC) SetReceiveHandler(fn func(t *smp.Thread, f ether.Frame)) { nc.onRx = fn }

// Node returns the owning node.
func (nc *NIC) Node() *smp.Node { return nc.node }

// Config returns the NIC's configuration.
func (nc *NIC) Config() Config { return nc.cfg }

// NodeID implements ether.Port.
func (nc *NIC) NodeID() int { return nc.node.ID }

// TxFrames reports frames handed to the wire.
func (nc *NIC) TxFrames() uint64 { return nc.txFrames }

// TxBytes reports payload bytes handed to the wire — the per-node
// volume counter the bandwidth-optimal collective algorithms are
// judged by.
func (nc *NIC) TxBytes() uint64 { return nc.txBytes }

// RxFrames reports frames delivered to the protocol handler.
func (nc *NIC) RxFrames() uint64 { return nc.rxFrames }

// RxDropped reports frames lost to incoming-ring overflow.
func (nc *NIC) RxDropped() uint64 { return nc.rxDropped }

// SetFaultInjector arms a fault injector on the NIC (nil disarms).
func (nc *NIC) SetFaultInjector(in *fault.NICInjector) { nc.inj = in }

// FaultDropped reports received frames discarded because the host was
// paused by an injected fault.
func (nc *NIC) FaultDropped() uint64 { return nc.faultDropped }

// Send queues a frame for transmission, blocking the calling thread while
// the outgoing FIFO is full (the driver spins on ring space).
func (nc *NIC) Send(p *sim.Process, req TxRequest) {
	nc.txQ.Put(p, req)
}

// SendPoll is the tasklet-tier Send: it queues the frame if the outgoing
// FIFO has room; otherwise it registers w for a ring-space wake and
// reports false, and the caller must retry the same request when woken.
func (nc *NIC) SendPoll(w sim.Waiter, req TxRequest) bool {
	return nc.txQ.PollPut(w, req)
}

// TriggerCost reports the cost of the user-level doorbell write.
func (nc *NIC) TriggerCost() sim.Duration { return nc.cfg.TriggerUser }

// KernelTriggerCost reports the per-frame driver transmit path cost when
// transmission is initiated from kernel context.
func (nc *NIC) KernelTriggerCost() sim.Duration { return nc.cfg.TriggerKernel }

// txPump is the card's transmit engine: it drains the outgoing FIFO and
// DMAs payloads from host memory when they are not preloaded. Wire
// serialization happens on a separate stage so the engine can fetch the
// next frame while the current one is still on the wire — the link's FIFO
// resource keeps frames in order, and the wire (not the DMA engine) is
// the steady-state bottleneck, as on the real card.
//
// The pump is a persistent tasklet: each wake resumes at txPC, and every
// park (empty ring, bus contention, timed DMA hold) is a registration or
// sleep followed by a plain return.
func (nc *NIC) txPump(tk *sim.Tasklet) {
	for {
		switch nc.txPC {
		case nicTxFetch:
			req, ok := nc.txQ.PollGet(tk)
			if !ok {
				return
			}
			nc.txReq = req
			nc.txPC = nicTxSetup
			delay := nc.cfg.TxSetup
			// A stall or pause window freezes the transmit engine: the
			// fetched frame waits until the window lifts.
			if nc.inj != nil {
				if until, stalled := nc.inj.StallUntil(tk.Now()); stalled {
					delay += until.Sub(tk.Now())
				}
			}
			tk.Sleep(delay)
			return
		case nicTxSetup:
			if nc.txReq.Preloaded {
				nc.launchWire()
				nc.txPC = nicTxFetch
				continue
			}
			// DMA the payload across the host bus into the FIFO.
			if !nc.node.Bus.PollAcquire(tk, true) {
				nc.txPC = nicTxBusWait
				return
			}
			nc.txPC = nicTxDMADone
			tk.Sleep(dmaTime(nc.txReq.Frame.PayloadBytes, nc.cfg.DMABytesPerSec))
			return
		case nicTxBusWait:
			if !nc.node.Bus.PollAcquire(tk, false) {
				return
			}
			nc.txPC = nicTxDMADone
			tk.Sleep(dmaTime(nc.txReq.Frame.PayloadBytes, nc.cfg.DMABytesPerSec))
			return
		case nicTxDMADone:
			nc.node.Bus.Release()
			nc.launchWire()
			nc.txPC = nicTxFetch
		}
	}
}

// launchWire hands the frame in hand to a one-shot wire-stage tasklet,
// recycled through a pool so steady-state transmission allocates nothing.
func (nc *NIC) launchWire() {
	if nc.link == nil {
		panic(fmt.Sprintf("nic: node %d transmitting with no link attached", nc.node.ID))
	}
	var w *wireTx
	if n := len(nc.wirePool); n > 0 {
		w = nc.wirePool[n-1]
		nc.wirePool = nc.wirePool[:n-1]
	} else {
		w = &wireTx{nc: nc}
		w.tk = nc.node.Engine.NewTasklet(fmt.Sprintf("nic-wire/n%d", nc.node.ID), w.step)
	}
	w.frame = nc.txReq.Frame
	w.cur = ether.TxCursor{}
	nc.txReq = TxRequest{}
	w.tk.Start()
}

// wireTx serializes one frame onto the medium: a one-shot tasklet whose
// resume state lives in the medium's TxCursor.
type wireTx struct {
	nc    *NIC
	tk    *sim.Tasklet
	frame ether.Frame
	cur   ether.TxCursor
}

func (w *wireTx) step(tk *sim.Tasklet) {
	nc := w.nc
	if !nc.link.TransmitStep(tk, &w.cur, nc, w.frame) {
		return
	}
	nc.txFrames++
	nc.txBytes += uint64(w.frame.PayloadBytes)
	nc.Rec.Recordf(tk.Now(), nc.node.ID, trace.KindNICTx, "frame %d->%d %dB on wire", w.frame.Src, w.frame.Dst, w.frame.PayloadBytes)
	w.frame = ether.Frame{}
	nc.wirePool = append(nc.wirePool, w)
}

// DeliverFrame implements ether.Port: the last bit of a frame has arrived
// in the card's incoming buffer.
func (nc *NIC) DeliverFrame(f ether.Frame) {
	if nc.inj != nil && nc.inj.RxDrop(nc.node.Engine.Now()) {
		nc.faultDropped++
		nc.Rec.Recordf(nc.node.Engine.Now(), nc.node.ID, trace.KindNICDrop, "frame %d->%d %dB dropped: host paused", f.Src, f.Dst, f.PayloadBytes)
		return
	}
	if nc.rxInFlight >= nc.cfg.RxRingFrames {
		nc.rxDropped++
		nc.Rec.Recordf(nc.node.Engine.Now(), nc.node.ID, trace.KindNICDrop, "frame %d->%d %dB lost to rx-ring overflow", f.Src, f.Dst, f.PayloadBytes)
		return
	}
	nc.rxInFlight++
	// Receive-side DMA into the host ring, then handler invocation: a
	// one-shot tasklet per frame, recycled through a pool.
	var j *rxJob
	if n := len(nc.rxPool); n > 0 {
		j = nc.rxPool[n-1]
		nc.rxPool = nc.rxPool[:n-1]
	} else {
		j = &rxJob{nc: nc}
		j.tk = nc.node.Engine.NewTasklet(fmt.Sprintf("nic-rx/n%d", nc.node.ID), j.step)
	}
	j.frame = f
	j.tk.Start()
}

// rxJob DMAs one received frame into the host ring and raises the
// handler interrupt.
type rxJob struct {
	nc    *NIC
	tk    *sim.Tasklet
	frame ether.Frame
	pc    int8 // 0 = first bus attempt, 1 = retry, 2 = DMA hold elapsed
}

func (j *rxJob) step(tk *sim.Tasklet) {
	nc := j.nc
	switch j.pc {
	case 0, 1:
		if !nc.node.Bus.PollAcquire(tk, j.pc == 0) {
			j.pc = 1
			return
		}
		j.pc = 2
		tk.Sleep(nc.cfg.RxSetup + dmaTime(j.frame.PayloadBytes, nc.cfg.DMABytesPerSec))
	case 2:
		nc.node.Bus.Release()
		nc.rxFrames++
		nc.Rec.Recordf(tk.Now(), nc.node.ID, trace.KindNICRx, "frame %d->%d %dB in host ring", j.frame.Src, j.frame.Dst, j.frame.PayloadBytes)
		f := j.frame
		j.frame, j.pc = ether.Frame{}, 0
		nc.rxPool = append(nc.rxPool, j)
		nc.node.IRQ.Raise("nic-rx", func(t *smp.Thread) {
			t.Exec(nc.cfg.RxProcess)
			nc.rxInFlight--
			if nc.onRx != nil {
				nc.onRx(t, f)
			}
		})
	}
}

func dmaTime(n int, rate int64) sim.Duration {
	if n <= 0 || rate <= 0 {
		return 0
	}
	return sim.Duration(int64(n) * int64(sim.Second) / rate)
}
