package nic

import (
	"testing"

	"pushpull/internal/ether"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// pair builds two nodes with NICs joined by a direct link.
func pair(e *sim.Engine) (*NIC, *NIC) {
	na := smp.NewNode(e, 0, smp.DefaultConfig())
	nb := smp.NewNode(e, 1, smp.DefaultConfig())
	a := New(na, DEC21140())
	b := New(nb, DEC21140())
	l := ether.NewLink(e, ether.FastEthernet(), a, b)
	a.AttachLink(l)
	b.AttachLink(l)
	return a, b
}

func TestSendDelivers(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e)
	var got []ether.Frame
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { got = append(got, f) })
	e.Go("app", func(p *sim.Process) {
		a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 256, Payload: "msg"}})
	})
	e.Run()
	if len(got) != 1 || got[0].Payload != "msg" {
		t.Fatalf("received %v", got)
	}
	if a.TxFrames() != 1 || b.RxFrames() != 1 {
		t.Errorf("tx=%d rx=%d, want 1/1", a.TxFrames(), b.RxFrames())
	}
}

func TestHandlerRunsInInterruptContext(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e)
	b.Node().IRQ.SetPolicy(smp.Asymmetric, 2)
	var cpu = -1
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { cpu = th.CPU.ID })
	e.Go("app", func(p *sim.Process) {
		a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 64}})
	})
	e.Run()
	if cpu != 2 {
		t.Errorf("handler CPU = %d, want 2 (asymmetric target)", cpu)
	}
}

func TestPreloadedSkipsHostDMA(t *testing.T) {
	latency := func(preloaded bool) sim.Duration {
		e := sim.NewEngine(1)
		a, b := pair(e)
		var at sim.Time
		b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { at = th.Now() })
		e.Go("app", func(p *sim.Process) {
			a.Send(p, TxRequest{
				Frame:     ether.Frame{Src: 0, Dst: 1, PayloadBytes: 1400},
				Preloaded: preloaded,
			})
		})
		e.Run()
		return sim.Duration(at)
	}
	if latency(true) >= latency(false) {
		t.Errorf("preloaded latency %v not below DMA latency %v", latency(true), latency(false))
	}
}

func TestPipelinedFramesSpacedByWireTime(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e)
	var times []sim.Time
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { times = append(times, th.Now()) })
	e.Go("app", func(p *sim.Process) {
		for i := 0; i < 5; i++ {
			a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 1484}})
		}
	})
	e.Run()
	if len(times) != 5 {
		t.Fatalf("delivered %d frames, want 5", len(times))
	}
	wire := ether.FastEthernet().WireTime(1484)
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		// The steady-state gap must be within a small tolerance of wire
		// time: the link is the bottleneck, not the NIC.
		if gap < wire || gap > wire+wire/4 {
			t.Errorf("frame %d gap = %v, want ~%v (wire-limited)", i, gap, wire)
		}
	}
}

func TestRxRingOverflowDrops(t *testing.T) {
	e := sim.NewEngine(1)
	na := smp.NewNode(e, 0, smp.DefaultConfig())
	nb := smp.NewNode(e, 1, smp.DefaultConfig())
	cfg := DEC21140()
	a := New(na, cfg)
	small := cfg
	small.RxRingFrames = 2
	// Stall handler invocation entirely so the ring cannot drain.
	b := New(nb, small)
	l := ether.NewLink(e, ether.FastEthernet(), a, b)
	a.AttachLink(l)
	b.AttachLink(l)
	// Deliver frames directly (bypassing the wire) at the same instant so
	// the ring cannot drain between arrivals.
	for i := 0; i < 5; i++ {
		b.DeliverFrame(ether.Frame{Src: 0, Dst: 1, PayloadBytes: 1484})
	}
	if b.RxDropped() != 3 {
		t.Errorf("dropped = %d, want 3 of 5 with a 2-frame ring", b.RxDropped())
	}
}

func TestDMAChargesHostBus(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e)
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) {})
	e.Go("app", func(p *sim.Process) {
		a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 1400}})
	})
	e.Run()
	if a.Node().Bus.BusyTime() == 0 {
		t.Error("TX DMA did not charge the sender's bus")
	}
	if b.Node().Bus.BusyTime() == 0 {
		t.Error("RX DMA did not charge the receiver's bus")
	}
}

func TestSendWithoutLinkPanics(t *testing.T) {
	e := sim.NewEngine(1)
	n := smp.NewNode(e, 0, smp.DefaultConfig())
	nc := New(n, DEC21140())
	e.Go("app", func(p *sim.Process) {
		nc.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 64}})
	})
	defer func() {
		if recover() == nil {
			t.Error("transmit with no link did not panic")
		}
	}()
	e.Run()
}

func TestTriggerCosts(t *testing.T) {
	e := sim.NewEngine(1)
	n := smp.NewNode(e, 0, smp.DefaultConfig())
	nc := New(n, DEC21140())
	if nc.TriggerCost() <= 0 || nc.KernelTriggerCost() <= 0 {
		t.Error("trigger costs must be positive")
	}
	if nc.KernelTriggerCost() <= nc.TriggerCost() {
		t.Error("the kernel driver path must cost more than the mapped doorbell")
	}
}

func TestPollingDeliversFrames(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := pair(e)
	b.Node().IRQ.SetPolicy(smp.Polling, 0)
	var got int
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { got++ })
	e.Go("app", func(p *sim.Process) {
		for i := 0; i < 3; i++ {
			a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 200}})
		}
	})
	e.Run()
	if got != 3 {
		t.Errorf("polling delivered %d of 3 frames", got)
	}
}

func TestRxRingReleasedAfterHandling(t *testing.T) {
	e := sim.NewEngine(1)
	na := smp.NewNode(e, 0, smp.DefaultConfig())
	nb := smp.NewNode(e, 1, smp.DefaultConfig())
	cfg := DEC21140()
	small := cfg
	small.RxRingFrames = 2
	a := New(na, cfg)
	b := New(nb, small)
	l := ether.NewLink(e, ether.FastEthernet(), a, b)
	a.AttachLink(l)
	b.AttachLink(l)
	var got int
	b.SetReceiveHandler(func(th *smp.Thread, f ether.Frame) { got++ })
	// Frames arrive spaced by wire time, so the 2-slot ring drains
	// between arrivals and nothing drops.
	e.Go("app", func(p *sim.Process) {
		for i := 0; i < 6; i++ {
			a.Send(p, TxRequest{Frame: ether.Frame{Src: 0, Dst: 1, PayloadBytes: 1400}})
		}
	})
	e.Run()
	if got != 6 || b.RxDropped() != 0 {
		t.Errorf("delivered %d dropped %d; ring should recycle", got, b.RxDropped())
	}
}
