package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors build independent generators from an explicit seed or
// source; they do not touch the shared process-global stream and are
// therefore allowed.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// sharedRandTypes are math/rand types that, held in a struct field or
// package-level variable, become ordering-dependent shared state.
var sharedRandTypes = map[string]bool{
	"Source":   true,
	"Source64": true,
	"Rand":     true,
}

var globalrandAnalyzer = &Analyzer{
	Name: "globalrand",
	Doc: "forbid the process-global math/rand stream and shared " +
		"rand.Source state: randomness must flow from the engine's " +
		"seeded generator or a splitmix64-split stream.",
	Run: runGlobalrand,
}

func isMathRand(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runGlobalrand(prog *Program) []Finding {
	var fs []Finding
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					pkgPath, name, ok := pkgSelector(pkg.Info, n.Fun)
					if ok && isMathRand(pkgPath) && !randConstructors[name] {
						fs = append(fs, prog.finding("globalrand", n.Pos(),
							"call to %s.%s uses the process-global random stream; draw from the engine's seeded RNG (or a splitmix64 split) instead",
							pkgPath, name))
					}
				case *ast.StructType:
					if n.Fields == nil {
						return true
					}
					for _, field := range n.Fields.List {
						tv, ok := pkg.Info.Types[field.Type]
						if !ok {
							continue
						}
						if isMathRand(namedTypePkg(tv.Type)) && sharedRandTypes[namedTypeName(tv.Type)] {
							fs = append(fs, prog.finding("globalrand", field.Pos(),
								"struct field of type %s is shared RNG state; store an engine-derived generator and split per consumer",
								types.TypeString(tv.Type, nil)))
						}
					}
				}
				return true
			})
			// Package-level variable declarations of shared rand types.
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						if isMathRand(namedTypePkg(obj.Type())) && sharedRandTypes[namedTypeName(obj.Type())] {
							fs = append(fs, prog.finding("globalrand", name.Pos(),
								"package-level %s of type %s is shared RNG state; thread a seeded generator through the engine instead",
								name.Name, types.TypeString(obj.Type(), nil)))
						}
					}
				}
			}
		}
	}
	return fs
}
