package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// simFacingPackages are the packages whose code runs inside (or feeds)
// a simulation: anything here can reach a digest, so the determinism
// analyzers treat findings in them as hard violations. Directive policy
// (README "Static analysis") is stricter for these than for the
// tooling/CLI layers, where e.g. a wall-clock capture stamp is fine.
var simFacingPackages = map[string]bool{
	"pushpull/internal/sim":      true,
	"pushpull/internal/ether":    true,
	"pushpull/internal/nic":      true,
	"pushpull/internal/gbn":      true,
	"pushpull/internal/pushpull": true,
	"pushpull/internal/fault":    true,
	"pushpull/coll":              true,
	"pushpull/comm":              true,
	"pushpull/internal/scenario": true,
}

// simFacing reports whether the package's code can reach a digest.
func simFacing(path string) bool { return simFacingPackages[path] }

// exprString renders an expression as compact source text, for matching
// append targets against later sort calls and for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pkgSelector resolves expr as a qualified identifier pkg.Name and
// returns the imported package path and selected identifier, e.g.
// ("time", "Now") for time.Now. ok is false for anything else
// (method calls, field selections, locals).
func pkgSelector(info *types.Info, expr ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := unparen(expr).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// calleeFunc resolves the function or method object a call invokes,
// for direct calls through an identifier, a qualified identifier, or a
// method selection (concrete or interface). Dynamic calls through
// function-valued variables resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified identifier (pkg.Func).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// namedTypeName reports the defining name of t's named type, unwrapping
// pointers and generic instantiations: *sim.Queue[T] -> "Queue". Empty
// for unnamed types.
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		return namedTypeName(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// namedTypePkg reports the package path defining t's named type, or ""
// for unnamed/builtin types.
func namedTypePkg(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		return namedTypePkg(p.Elem())
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// recvTypeName reports the receiver type name of a method object, or ""
// for plain functions. Matching is by name rather than full package
// identity so the self-contained golden testdata packages can model the
// engine's API with local stand-ins.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return namedTypeName(sig.Recv().Type())
}

// funcDisplayName renders fn as Recv.Name or pkg.Name for diagnostics.
func funcDisplayName(fn *types.Func) string {
	if r := recvTypeName(fn); r != "" {
		return r + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isSortCall reports whether call invokes a recognized slice-sorting
// function (sort.* / slices.Sort*) — the second half of the
// collect-keys-then-sort idiom the maprange analyzer exempts.
func isSortCall(info *types.Info, call *ast.CallExpr) (args []ast.Expr, ok bool) {
	pkg, name, isQualified := pkgSelector(info, call.Fun)
	if !isQualified {
		return nil, false
	}
	base := pkg[strings.LastIndex(pkg, "/")+1:]
	switch base {
	case "sort":
		switch name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return call.Args, true
		}
	case "slices":
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return call.Args, true
		}
	}
	return nil, false
}
