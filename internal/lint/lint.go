// Package lint implements pushpull-lint: five repo-specific static
// analyzers that enforce, at compile time, the invariants the digest
// replays only check after the fact. The whole repo rests on runs being
// byte-identical for any worker count (ROADMAP; `make pdes-check`), and
// every analyzer here guards one way that property has been broken or
// nearly broken before:
//
//   - walltime: wall-clock reads (time.Now and friends) in simulation
//     code leak host timing into results that must depend only on
//     virtual time and the seed.
//   - globalrand: the process-global math/rand stream (and shared
//     rand.Source fields) is ordering-dependent state; randomness must
//     flow from the engine's seeded sim.Rand or a splitmix64-split
//     stream.
//   - maprange: Go map iteration order is randomized per run; ranging
//     over a map while appending to a slice, scheduling events or
//     writing a hash makes the iteration order reach a digest.
//   - taskletblock: tasklet steps run inline in engine context and must
//     never call the blocking process-tier primitives (Queue.Get/Put,
//     Resource.Acquire, Cond.Wait, Process.Sleep, Link.Transmit); only
//     the polling variants (PollGet/PollPut/PollAcquire/Await/
//     TransmitStep) are legal there.
//   - poolretain: pooled one-shot objects (sim event structs, nic
//     wireTx/rxJob, pushpull txJob) must not be stored anywhere after
//     the call that returns them to their free list.
//
// The driver is stdlib-only (go/parser + go/types + `go list -json`
// package discovery), keeping go.mod dependency-free. Diagnostics are
// deterministic (sorted by file, line, column, analyzer) and can be
// acknowledged only with a
//
//	//pushpull:lint-allow <analyzer> <reason>
//
// directive whose reason must be non-empty; the directive suppresses
// findings of that analyzer on its own line and on the line following
// its comment group.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
)

// Finding is one diagnostic. File is relative to the module root, so
// output is stable across checkouts.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named pass over a loaded Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Finding
}

// Analyzers returns the five pushpull analyzers in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		walltimeAnalyzer,
		globalrandAnalyzer,
		maprangeAnalyzer,
		taskletblockAnalyzer,
		poolretainAnalyzer,
	}
}

// AnalyzerNames reports the known analyzer names, sorted, for directive
// validation and usage text.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full analyzed package set plus shared lookups.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
	// Root is the directory findings' file paths are made relative to.
	Root string

	// decls maps every top-level function/method object to its
	// declaration, across all loaded packages — the basis of the
	// taskletblock call-graph traversal.
	decls map[*types.Func]*ast.FuncDecl
	// declPkg maps a declaration back to its package (for type info).
	declPkg map[*ast.FuncDecl]*Package
}

// indexDecls builds the cross-package function-declaration lookup.
func (p *Program) indexDecls() {
	p.decls = make(map[*types.Func]*ast.FuncDecl)
	p.declPkg = make(map[*ast.FuncDecl]*Package)
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = fd
					p.declPkg[fd] = pkg
				}
			}
		}
	}
}

// DeclOf returns the declaration of fn, if fn is declared in a loaded
// package.
func (p *Program) DeclOf(fn *types.Func) (*ast.FuncDecl, *Package) {
	d := p.decls[fn]
	if d == nil {
		return nil, nil
	}
	return d, p.declPkg[d]
}

// posOf converts a token.Pos into a Finding-ready position with the
// file path relative to the program root.
func (p *Program) posOf(pos token.Pos) (file string, line, col int) {
	ps := p.Fset.Position(pos)
	return relPath(p.Root, ps.Filename), ps.Line, ps.Column
}

// finding builds a Finding at pos.
func (p *Program) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	file, line, col := p.posOf(pos)
	return Finding{
		Analyzer: analyzer,
		File:     file,
		Line:     line,
		Col:      col,
		Message:  fmt.Sprintf(format, args...),
	}
}

// Run executes the given analyzers over the program, validates and
// applies //pushpull:lint-allow directives, and returns the surviving
// findings in deterministic (file, line, col, analyzer, message) order.
func Run(prog *Program, analyzers []*Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		all = append(all, a.Run(prog)...)
	}
	dirs, problems := collectDirectives(prog)
	all = append(suppress(all, dirs), problems...)
	SortFindings(all)
	return all
}

// SortFindings orders findings deterministically.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WriteText renders findings one per line.
func WriteText(w io.Writer, fs []Finding) error {
	for _, f := range fs {
		if _, err := fmt.Fprintln(w, f.String()); err != nil {
			return err
		}
	}
	return nil
}

// jsonReport is the machine-readable output shape of pushpull-lint
// -json. Findings retain their sorted order.
type jsonReport struct {
	Findings []Finding `json:"findings"`
}

// WriteJSON renders findings as a single JSON document with stable
// ordering.
func WriteJSON(w io.Writer, fs []Finding) error {
	if fs == nil {
		fs = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Findings: fs})
}
