package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var poolretainAnalyzer = &Analyzer{
	Name: "poolretain",
	Doc: "flag storing a pooled one-shot object (sim event, nic " +
		"wireTx/rxJob, pushpull txJob) into a struct field, slice, or " +
		"map after the call that returns it to its free list: the pool " +
		"will recycle the object and the stale reference aliases a " +
		"different logical event.",
	Run: runPoolretain,
}

// pooledTypeNames are the free-listed one-shot types. Matching is by
// type name so golden testdata can declare local stand-ins.
var pooledTypeNames = map[string]bool{
	"event":  true,
	"wireTx": true,
	"rxJob":  true,
	"txJob":  true,
}

// prKind distinguishes the per-function lifecycle events the analyzer
// replays in source order.
type prKind int

const (
	prRelease prKind = iota // object handed back to its pool
	prClear                 // variable rebound; prior release irrelevant
	prStore                 // object stored into field/slice/map
)

type prEvent struct {
	pos  token.Pos
	kind prKind
	obj  types.Object
	desc string
}

func runPoolretain(prog *Program) []Finding {
	var fs []Finding
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fs = append(fs, poolretainInFunc(prog, pkg, fd)...)
			}
		}
	}
	return fs
}

// pooledObj resolves e to the object of a pooled-type variable (through
// parens and address-of), or nil.
func pooledObj(info *types.Info, e ast.Expr) types.Object {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !pooledTypeNames[namedTypeName(obj.Type())] {
		return nil
	}
	return obj
}

// poolNamed reports whether the expression names a free list (the
// conventional pool/free slice the releasing append targets).
func poolNamed(e ast.Expr) bool {
	s := strings.ToLower(exprString(e))
	return strings.Contains(s, "pool") || strings.Contains(s, "free")
}

// releasingCallee reports whether a call's function name marks it as a
// pool-release entry point.
func releasingCallee(info *types.Info, call *ast.CallExpr) bool {
	var name string
	if fn := calleeFunc(info, call); fn != nil {
		name = fn.Name()
	} else if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		name = id.Name
	}
	name = strings.ToLower(name)
	return strings.Contains(name, "release") || strings.Contains(name, "free") ||
		strings.Contains(name, "recycle")
}

func poolretainInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var events []prEvent
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) >= 2 {
					toPool := poolNamed(n.Args[0])
					for _, arg := range n.Args[1:] {
						obj := pooledObj(pkg.Info, arg)
						if obj == nil {
							continue
						}
						if toPool {
							events = append(events, prEvent{pos: n.Pos(), kind: prRelease, obj: obj})
						} else {
							events = append(events, prEvent{pos: arg.Pos(), kind: prStore, obj: obj,
								desc: "appended to " + exprString(n.Args[0])})
						}
					}
					return true
				}
			}
			if releasingCallee(pkg.Info, n) {
				for _, arg := range n.Args {
					if obj := pooledObj(pkg.Info, arg); obj != nil {
						events = append(events, prEvent{pos: n.Pos(), kind: prRelease, obj: obj})
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				// Rebinding the variable itself starts a fresh lifetime.
				if obj := pooledObj(pkg.Info, lhs); obj != nil {
					events = append(events, prEvent{pos: n.Pos(), kind: prClear, obj: obj})
					continue
				}
				if rhs == nil {
					continue
				}
				obj := pooledObj(pkg.Info, rhs)
				if obj == nil {
					continue
				}
				switch unparen(lhs).(type) {
				case *ast.SelectorExpr:
					events = append(events, prEvent{pos: rhs.Pos(), kind: prStore, obj: obj,
						desc: "stored in field " + exprString(lhs)})
				case *ast.IndexExpr:
					events = append(events, prEvent{pos: rhs.Pos(), kind: prStore, obj: obj,
						desc: "stored in " + exprString(lhs)})
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := pooledObj(pkg.Info, v); obj != nil {
					events = append(events, prEvent{pos: v.Pos(), kind: prStore, obj: obj,
						desc: "captured in composite literal"})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	released := make(map[types.Object]bool)
	var fs []Finding
	for _, ev := range events {
		switch ev.kind {
		case prRelease:
			released[ev.obj] = true
		case prClear:
			released[ev.obj] = false
		case prStore:
			if released[ev.obj] {
				fs = append(fs, prog.finding("poolretain", ev.pos,
					"pooled %s %q %s after it was released to its free list; the pool will recycle it out from under this reference",
					namedTypeName(ev.obj.Type()), ev.obj.Name(), ev.desc))
			}
		}
	}
	return fs
}
