package lint

import (
	"go/ast"
)

// wallClockFuncs are the time-package entry points that read or depend
// on the host clock. Pure value manipulation (time.Duration arithmetic,
// time.Unix construction from simulated stamps) is fine.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
}

var walltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock reads (time.Now/Since/Sleep/...): simulated " +
		"results must depend only on virtual time and the seed. Capture " +
		"stamps in lab/bench tooling are acknowledged by directive.",
	Run: runWalltime,
}

func runWalltime(prog *Program) []Finding {
	var fs []Finding
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkgPath, name, ok := pkgSelector(pkg.Info, call.Fun)
				if !ok || pkgPath != "time" || !wallClockFuncs[name] {
					return true
				}
				why := "wall clock must not reach simulation state; use engine virtual time"
				if !simFacing(pkg.Path) {
					why = "wall clock is banned module-wide; acknowledge intentional capture stamps with //pushpull:lint-allow walltime <reason>"
				}
				fs = append(fs, prog.finding("walltime", call.Pos(),
					"call to time.%s: %s", name, why))
				return true
			})
		}
	}
	return fs
}
