// Package directives exercises lint-allow parsing: unknown analyzers
// and missing reasons are findings in their own right, and stacked
// directives each suppress their own analyzer on the next statement.
package directives

import (
	"math/rand"
	"time"
)

func unknownAnalyzer() {
	//pushpull:lint-allow bogus this analyzer does not exist
	time.Sleep(1)
}

func missingReason() {
	//pushpull:lint-allow walltime
	time.Sleep(1)
}

func stacked() int {
	//pushpull:lint-allow walltime fixture stamp, not digested
	//pushpull:lint-allow globalrand fixture shuffle, re-sorted afterwards
	return int(time.Now().Unix()) + rand.Int()
}
