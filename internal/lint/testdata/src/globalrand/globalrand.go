// Package globalrand exercises the globalrand analyzer: randomness must
// flow from an explicitly seeded generator, never shared global state.
package globalrand

import "math/rand"

// shared is ordering-dependent state: whichever goroutine draws first
// changes every later draw.
var shared = rand.New(rand.NewSource(1)) // want `package-level shared`

type node struct {
	src rand.Source // want `shared RNG state`
	id  int
}

func draw() int {
	return rand.Int() // want `process-global random stream`
}

func acknowledged() int {
	//pushpull:lint-allow globalrand fixture shuffling in tooling; outputs are re-sorted before comparison
	return rand.Intn(6)
}

// clean: a locally constructed generator from an explicit seed.
func local(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Int()
}
