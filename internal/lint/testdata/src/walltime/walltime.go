// Package walltime exercises the walltime analyzer: wall-clock reads
// must not reach simulation state.
package walltime

import "time"

func tick() time.Duration {
	start := time.Now()            // want `call to time\.Now`
	time.Sleep(time.Millisecond)   // want `call to time\.Sleep`
	t := time.NewTicker(time.Hour) // want `call to time\.NewTicker`
	t.Stop()
	return time.Since(start) // want `call to time\.Since`
}

// stamp is a capture stamp: intentional wall-clock use, acknowledged.
func stamp() string {
	//pushpull:lint-allow walltime capture stamp for run metadata; never digested
	return time.Now().UTC().Format(time.RFC3339)
}

// clean: pure duration arithmetic never touches the host clock.
func clean(d time.Duration) time.Duration {
	return 3 * d / 2
}
