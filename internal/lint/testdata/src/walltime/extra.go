package walltime

import "time"

// deadline lives in a second file so the driver test can assert that
// findings across files come out sorted.
func deadline() {
	timer := time.NewTimer(time.Second) // want `call to time\.NewTimer`
	timer.Stop()
}
