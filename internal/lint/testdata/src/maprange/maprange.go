// Package maprange exercises the maprange analyzer: map iteration order
// is randomized per run, so ordering-sensitive loop bodies leak
// nondeterminism.
package maprange

import (
	"hash/fnv"
	"sort"
)

// Engine is a local stand-in for the simulation engine; the analyzer
// matches schedule methods by receiver and method name.
type Engine struct{}

func (e *Engine) Schedule(d int, fn func())          {}
func (e *Engine) ScheduleOn(s, d int, fn func())     {}
func (e *Engine) At(d int, fn func())                {}
func (e *Engine) AtCancel(d int, fn func()) func()   { return nil }
func (e *Engine) Other(keys []string, m map[int]int) {}

func appendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `ordering-sensitive body \(append`
		keys = append(keys, k)
	}
	return keys
}

func scheduleUnsorted(e *Engine, m map[int]int) {
	for d := range m { // want `ordering-sensitive body \(event scheduling`
		e.Schedule(d, func() {})
	}
}

func hashUnsorted(m map[string]int) uint64 {
	h := fnv.New64a()
	for k := range m { // want `ordering-sensitive body \(hash write`
		h.Write([]byte(k))
	}
	return h.Sum64()
}

func acknowledged(m map[string]bool) []string {
	var hit []string
	//pushpull:lint-allow maprange result is re-sorted by the caller before any digest
	for k := range m {
		if m[k] {
			hit = append(hit, k)
		}
	}
	return hit
}

// clean: the canonical collect-keys-then-sort idiom.
func collectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// clean: an order-insensitive reduction.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
