// Package taskletblock exercises the taskletblock analyzer: code
// reachable from an Engine.NewTasklet step registration must stay on
// the polling tier.
package taskletblock

// Local stand-ins for the engine API; matching is by type and method
// name.
type (
	Engine  struct{}
	Tasklet struct{}
	Process struct{}
	Queue   struct{}
)

func (e *Engine) NewTasklet(name string, step func(*Tasklet)) *Tasklet { return nil }
func (q *Queue) Get(p *Process) int                                    { return 0 }
func (q *Queue) PollGet(tk *Tasklet) (int, bool)                       { return 0, false }
func (p *Process) Sleep(d int)                                         {}
func (p *Process) Name() string                                        { return "" }

type pump struct {
	q *Queue
	p *Process
}

// step is registered as a tasklet step below; everything it reaches is
// checked.
func (pm *pump) step(tk *Tasklet) {
	pm.q.Get(pm.p) // want `blocking call Queue\.Get`
	helper(pm)
}

func helper(pm *pump) {
	pm.p.Sleep(1) // want `blocking call Process\.Sleep`
	_ = pm.p.Name()
}

func handoff(pm *pump) {
	drive(pm.p) // want `passing \*Process`
}

func drive(p *Process) {}

func register(e *Engine, pm *pump) {
	e.NewTasklet("pump", pm.step)
	e.NewTasklet("inline", func(tk *Tasklet) {
		pm.q.Put(tk) // want `blocking call Queue\.Put`
	})
	e.NewTasklet("handoff", func(tk *Tasklet) { handoff(pm) })
}

func (q *Queue) Put(v any) {}

// acknowledged: a blocking call explicitly signed off.
func acked(e *Engine, pm *pump) {
	e.NewTasklet("acked", func(tk *Tasklet) {
		//pushpull:lint-allow taskletblock reached only via the process-tier fallback, guarded by a tier flag
		pm.q.Get(pm.p)
	})
}

// clean: the polling tier is the legal way to touch a queue from a
// tasklet, and benign identity methods are fine anywhere.
func cleanStep(e *Engine, pm *pump) {
	e.NewTasklet("clean", func(tk *Tasklet) {
		if v, ok := pm.q.PollGet(tk); ok {
			_ = v
		}
		_ = pm.p.Name()
	})
}

// clean: blocking calls outside any tasklet-reachable function are the
// process tier working as intended.
func processTier(q *Queue, p *Process) int {
	return q.Get(p)
}
