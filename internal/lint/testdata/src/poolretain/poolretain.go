// Package poolretain exercises the poolretain analyzer: once a pooled
// object is back on its free list, no new reference to it may be
// stored.
package poolretain

// event is a local stand-in for the engine's pooled event record.
type event struct {
	fn  func()
	seq uint64
}

type engine struct {
	free []*event
	heap []*event
	last *event
	byID map[uint64]*event
}

// release hands ev back to the free list — the append into e.free is
// the release, not a retention.
func (e *engine) release(ev *event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

func (e *engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

func (e *engine) fieldAfterRelease(ev *event) {
	e.release(ev)
	e.last = ev // want `after it was released`
}

func (e *engine) appendAfterRelease(ev *event) {
	e.release(ev)
	e.heap = append(e.heap, ev) // want `after it was released`
}

func (e *engine) mapAfterRelease(ev *event) {
	e.release(ev)
	e.byID[ev.seq] = ev // want `after it was released`
}

func (e *engine) acknowledged(ev *event) {
	e.release(ev)
	//pushpull:lint-allow poolretain debug breadcrumb; cleared before the pool can recycle the entry
	e.last = ev
}

// clean: read what you need, then release last.
func (e *engine) fire(ev *event) {
	fn := ev.fn
	e.release(ev)
	fn()
}

// clean: rebinding the variable starts a fresh lifetime.
func (e *engine) recycleOne(ev *event) {
	e.release(ev)
	ev = e.alloc()
	e.last = ev
}
