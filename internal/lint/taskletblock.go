package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

var taskletblockAnalyzer = &Analyzer{
	Name: "taskletblock",
	Doc: "flag blocking process-tier primitives (Queue.Get/Put, " +
		"Resource.Acquire/Use, Cond.Wait, Process.Sleep, Link.Transmit) " +
		"in functions reachable from an Engine.NewTasklet step " +
		"registration: tasklet steps run inline in engine context and " +
		"must use the polling variants " +
		"(PollGet/PollPut/PollAcquire/Await/TransmitStep).",
	Run: runTaskletblock,
}

// blockingMethods maps receiver type name to the methods that park the
// calling process. Matching is by name so golden testdata can model the
// engine API with local stand-ins.
var blockingMethods = map[string]map[string]bool{
	"Queue":    {"Get": true, "Put": true},
	"Resource": {"Acquire": true, "Use": true},
	"Cond":     {"Wait": true, "WaitFor": true},
	"Process":  {"Sleep": true},
	"Link":     {"Transmit": true},
	"Hub":      {"Transmit": true},
	"Medium":   {"Transmit": true},
	"Thread":   {"Exec": true, "Compute": true, "Copy": true, "PIO": true, "Syscall": true},
}

// benignCtxMethods are Process/Thread methods that only read identity or
// engine handles and are safe from any tier.
var benignCtxMethods = map[string]bool{
	"Name":   true,
	"Engine": true,
	"Now":    true,
	"Done":   true,
	"ID":     true,
	"Node":   true,
}

// taskletblockPass carries traversal state for one program.
type taskletblockPass struct {
	prog    *Program
	visited map[*types.Func]bool
	seen    map[string]bool // finding dedupe across seeds
	fs      []Finding
}

func runTaskletblock(prog *Program) []Finding {
	tb := &taskletblockPass{
		prog:    prog,
		visited: make(map[*types.Func]bool),
		seen:    make(map[string]bool),
	}
	// Seeds in deterministic order: packages sorted by path, files and
	// call sites in source order.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Name() != "NewTasklet" || recvTypeName(fn) != "Engine" {
					return true
				}
				if len(call.Args) < 2 {
					return true
				}
				tb.seedStep(pkg, call)
				return true
			})
		}
	}
	return tb.fs
}

// seedStep resolves the step argument of an Engine.NewTasklet call and
// starts traversal from it.
func (tb *taskletblockPass) seedStep(pkg *Package, call *ast.CallExpr) {
	label := "tasklet"
	if lit, ok := unparen(call.Args[0]).(*ast.BasicLit); ok {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			label = s
		}
	}
	step := unparen(call.Args[1])
	switch step := step.(type) {
	case *ast.FuncLit:
		tb.walkBody(pkg, step.Body, label)
	default:
		if fn := resolveFuncValue(pkg.Info, step); fn != nil {
			tb.follow(fn, label)
		}
	}
}

// resolveFuncValue resolves an expression used as a function value — a
// named function or a method value like np.step — to its object.
func resolveFuncValue(info *types.Info, e ast.Expr) *types.Func {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// follow enqueues fn's body for traversal if it is declared in the
// analyzed program and not yet visited.
func (tb *taskletblockPass) follow(fn *types.Func, label string) {
	if tb.visited[fn] {
		return
	}
	tb.visited[fn] = true
	decl, dpkg := tb.prog.DeclOf(fn)
	if decl == nil || decl.Body == nil {
		return
	}
	tb.walkBody(dpkg, decl.Body, label)
}

// walkBody scans one function body for violating calls, descending into
// statically-resolved callees. Function literals are skipped unless
// immediately invoked: a literal passed elsewhere (say, a process body
// handed to Spawn) runs in its own tier, not the tasklet's.
func (tb *taskletblockPass) walkBody(pkg *Package, body ast.Node, label string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if lit, ok := unparen(n.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, walk)
			}
			tb.checkCall(pkg, n, label)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkCall classifies one call made from tasklet-reachable code.
func (tb *taskletblockPass) checkCall(pkg *Package, call *ast.CallExpr, label string) {
	fn := calleeFunc(pkg.Info, call)
	// The engine package itself is the scheduler: its internals manage
	// process lifecycles inline by design, so the process-tier hand-off
	// rules do not apply there (the blocking set still does).
	inEngine := pkg.Path == "pushpull/internal/sim"
	if fn != nil {
		recv := recvTypeName(fn)
		if blockingMethods[recv][fn.Name()] {
			tb.report(call.Pos(),
				"blocking call %s reachable from tasklet %q; tasklet steps must use the polling tier (PollGet/PollPut/PollAcquire/Await/TransmitStep)",
				funcDisplayName(fn), label)
			return
		}
		if !inEngine && (recv == "Process" || recv == "Thread") && !benignCtxMethods[fn.Name()] {
			tb.report(call.Pos(),
				"call to process-tier method %s reachable from tasklet %q; tasklets must not drive process context",
				funcDisplayName(fn), label)
			return
		}
	}
	if !inEngine {
		for _, arg := range call.Args {
			tv, ok := pkg.Info.Types[arg]
			if !ok {
				continue
			}
			name := namedTypeName(tv.Type)
			if name == "Process" || name == "Thread" {
				callee := "a function"
				if fn != nil {
					callee = funcDisplayName(fn)
				}
				tb.report(call.Pos(),
					"passing *%s to %s from code reachable from tasklet %q hands process-tier context to an inline step",
					name, callee, label)
				return // the callee runs process-tier logic; do not descend
			}
		}
	}
	if fn != nil {
		tb.follow(fn, label)
	}
}

// report records a deduplicated finding: the same call site may be
// reachable from several tasklet registrations, and the first seed in
// deterministic order wins.
func (tb *taskletblockPass) report(pos token.Pos, format string, args ...any) {
	f := tb.prog.finding("taskletblock", pos, format, args...)
	key := f.File + ":" + strconv.Itoa(f.Line) + ":" + strconv.Itoa(f.Col)
	if tb.seen[key] {
		return
	}
	tb.seen[key] = true
	tb.fs = append(tb.fs, f)
}
