package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

var maprangeAnalyzer = &Analyzer{
	Name: "maprange",
	Doc: "flag range-over-map loops whose bodies are ordering-sensitive " +
		"(append to a slice, schedule events, write a hash, or store " +
		"into indexed results): Go randomizes map iteration per run, so " +
		"such loops leak nondeterminism into digests unless the loop " +
		"only collects keys that are sorted afterwards.",
	Run: runMaprange,
}

// scheduleMethods are engine entry points whose invocation order decides
// event-ID allocation and therefore tie-breaking and digests.
var scheduleMethods = map[string]bool{
	"Schedule":   true,
	"ScheduleOn": true,
	"At":         true,
	"AtCancel":   true,
}

// hashWriteMethods feed bytes into a running digest.
var hashWriteMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Sum":         true,
	"Sum32":       true,
	"Sum64":       true,
}

// rangeOp is one ordering-sensitive operation found in a loop body.
type rangeOp struct {
	kind string
	pos  ast.Node
	// appendTarget is the destination expression of an append op,
	// rendered as source text; empty for non-append ops.
	appendTarget string
}

func runMaprange(prog *Program) []Finding {
	var fs []Finding
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fs = append(fs, maprangeInFunc(prog, pkg, fd)...)
			}
		}
	}
	return fs
}

func maprangeInFunc(prog *Program, pkg *Package, fd *ast.FuncDecl) []Finding {
	var fs []Finding
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ops := mapRangeOps(pkg, rng.Body)
		if len(ops) == 0 {
			return true
		}
		if onlySortedCollects(pkg, fd, rng, ops) {
			return true
		}
		op := ops[0]
		fs = append(fs, prog.finding("maprange", rng.Pos(),
			"range over map with ordering-sensitive body (%s at line %d); iterate keys in sorted order, or collect and sort them before this work",
			op.kind, prog.Fset.Position(op.pos.Pos()).Line))
		return true
	})
	return fs
}

// mapRangeOps scans a range body for operations whose effect depends on
// iteration order, in source order.
func mapRangeOps(pkg *Package, body *ast.BlockStmt) []rangeOp {
	var ops []rangeOp
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) > 0 {
					ops = append(ops, rangeOp{
						kind:         "append",
						pos:          n,
						appendTarget: exprString(n.Args[0]),
					})
					return true
				}
			}
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && hashWriteMethods[sel.Sel.Name] {
				if tv, ok := pkg.Info.Types[sel.X]; ok && isHashType(tv.Type) {
					ops = append(ops, rangeOp{kind: "hash write (" + exprString(n.Fun) + ")", pos: n})
					return true
				}
			}
			fn := calleeFunc(pkg.Info, n)
			if fn == nil {
				return true
			}
			if recvTypeName(fn) == "Engine" && scheduleMethods[fn.Name()] {
				ops = append(ops, rangeOp{kind: "event scheduling (" + funcDisplayName(fn) + ")", pos: n})
				return true
			}
		case *ast.AssignStmt:
			// Storing into an indexed slice position builds an ordered
			// result structure from unordered iteration.
			for _, lhs := range n.Lhs {
				ix, ok := unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				tv, ok := pkg.Info.Types[ix.X]
				if !ok {
					continue
				}
				if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
					ops = append(ops, rangeOp{kind: "indexed slice store", pos: n})
				}
			}
		}
		return true
	})
	return ops
}

// isHashType reports whether t is a hash-like value: declared in a
// hash/crypto package, or named like a digest interface. The receiver
// expression's type is checked (not the method's declared receiver)
// because interface dispatch resolves hash.Hash64.Write to the embedded
// io.Writer method.
func isHashType(t types.Type) bool {
	pkgPath := namedTypePkg(t)
	if strings.HasPrefix(pkgPath, "hash") || strings.HasPrefix(pkgPath, "crypto") {
		return true
	}
	switch namedTypeName(t) {
	case "Hash", "Hash32", "Hash64":
		return true
	}
	return false
}

// onlySortedCollects reports whether every op in the loop is an append
// whose destination is sorted by a sort.*/slices.Sort* call later in the
// same function — the canonical collect-keys-then-sort idiom.
func onlySortedCollects(pkg *Package, fd *ast.FuncDecl, rng *ast.RangeStmt, ops []rangeOp) bool {
	targets := make(map[string]bool)
	for _, op := range ops {
		if op.kind != "append" {
			return false
		}
		targets[op.appendTarget] = true
	}
	sorted := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if args, ok := isSortCall(pkg.Info, call); ok && len(args) > 0 {
			sorted[exprString(args[0])] = true
		}
		return true
	})
	for t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
