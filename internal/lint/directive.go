package lint

import (
	"strings"
)

// directivePrefix introduces a lint-acknowledgement comment:
//
//	//pushpull:lint-allow <analyzer> <reason>
//
// The reason is mandatory: an allow without a recorded justification is
// itself a finding. A directive suppresses findings of the named
// analyzer on its own line (trailing-comment form) and on the first
// line after its comment group (stacked standalone form), so several
// directives for different analyzers may sit above one statement.
const directivePrefix = "pushpull:lint-allow"

// directive is one parsed lint-allow comment.
type directive struct {
	analyzer string
	reason   string
	file     string
	// lines this directive suppresses findings on.
	targets []int
}

// collectDirectives parses every lint-allow directive in the program
// and reports malformed ones (missing analyzer, unknown analyzer, or
// empty reason) as findings in their own right.
func collectDirectives(prog *Program) (map[string]map[int][]*directive, []Finding) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	// byFileLine: file -> line -> directives targeting that line.
	byFileLine := make(map[string]map[int][]*directive)
	var problems []Finding
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				groupEnd := prog.Fset.Position(cg.End()).Line
				for _, c := range cg.List {
					text, ok := directiveText(c.Text)
					if !ok {
						continue
					}
					file, line, _ := prog.posOf(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 || !known[fields[0]] {
						problems = append(problems, prog.finding("directive", c.Pos(),
							"malformed %s directive: first word must be one of %s",
							directivePrefix, strings.Join(AnalyzerNames(), "|")))
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(text, fields[0]))
					if reason == "" {
						problems = append(problems, prog.finding("directive", c.Pos(),
							"%s %s directive needs a non-empty reason", directivePrefix, fields[0]))
						continue
					}
					d := &directive{
						analyzer: fields[0],
						reason:   reason,
						file:     file,
						targets:  []int{line, groupEnd + 1},
					}
					if byFileLine[file] == nil {
						byFileLine[file] = make(map[int][]*directive)
					}
					for _, t := range d.targets {
						byFileLine[file][t] = append(byFileLine[file][t], d)
					}
				}
			}
		}
	}
	return byFileLine, problems
}

// directiveText extracts the payload after the directive prefix, or
// reports that the comment is not a directive.
func directiveText(comment string) (string, bool) {
	body, ok := strings.CutPrefix(comment, "//")
	if !ok {
		return "", false // block comments are not directive carriers
	}
	body = strings.TrimPrefix(body, " ")
	rest, ok := strings.CutPrefix(body, directivePrefix)
	if !ok {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// suppress drops findings acknowledged by a matching directive.
func suppress(fs []Finding, dirs map[string]map[int][]*directive) []Finding {
	if len(dirs) == 0 {
		return fs
	}
	var kept []Finding
	for _, f := range fs {
		matched := false
		for _, d := range dirs[f.File][f.Line] {
			if d.analyzer == f.Analyzer {
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, f)
		}
	}
	return kept
}
