package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDirectiveValidation pins the directive contract: unknown analyzer
// names and empty reasons are reported instead of suppressing, and a
// stack of directives suppresses each named analyzer on the statement
// that follows.
func TestDirectiveValidation(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "src", "directives"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(prog, Analyzers())
	var got []string
	for _, f := range fs {
		got = append(got, f.Analyzer+" "+firstWords(f.Message, 4))
	}
	want := []string{
		// unknownAnalyzer: the directive itself is malformed, and the
		// Sleep it meant to cover stays reported.
		"directive malformed pushpull:lint-allow directive: first",
		"walltime call to time.Sleep: wall",
		// missingReason: same shape.
		"directive pushpull:lint-allow walltime directive needs",
		"walltime call to time.Sleep: wall",
		// stacked: nothing — both findings on the return line are
		// suppressed by their respective directives.
	}
	if len(got) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func firstWords(s string, n int) string {
	words := strings.Fields(s)
	if len(words) > n {
		words = words[:n]
	}
	return strings.Join(words, " ")
}
