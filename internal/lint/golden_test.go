package lint

import (
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// want is one parsed `// want `regex“ expectation from a testdata
// package — the hand-rolled analysistest convention.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func loadWants(t *testing.T, prog *Program) []*want {
	t.Helper()
	var ws []*want
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					rest = strings.TrimSpace(rest)
					if len(rest) < 2 || !strings.HasPrefix(rest, "`") || !strings.HasSuffix(rest, "`") {
						t.Fatalf("%s: malformed want comment %q (expected a backquoted regexp)", prog.Fset.Position(c.Pos()), c.Text)
					}
					pat := rest[1 : len(rest)-1]
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", prog.Fset.Position(c.Pos()), pat, err)
					}
					file, line, _ := prog.posOf(c.Pos())
					ws = append(ws, &want{file: file, line: line, re: re, raw: pat})
				}
			}
		}
	}
	return ws
}

// runGolden analyzes testdata/src/<name> with the named analyzer
// (directives included, as in production) and checks the findings
// against the package's want comments, both ways.
func runGolden(t *testing.T, name string) []Finding {
	t.Helper()
	var a *Analyzer
	for _, x := range Analyzers() {
		if x.Name == name {
			a = x
		}
	}
	if a == nil {
		t.Fatalf("no analyzer named %q", name)
	}
	prog, err := LoadDir(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(prog, []*Analyzer{a})
	wants := loadWants(t, prog)
	if len(wants) == 0 {
		t.Fatalf("testdata/src/%s has no want comments", name)
	}
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.raw)
		}
	}
	return findings
}

func TestWalltimeGolden(t *testing.T)     { runGolden(t, "walltime") }
func TestGlobalrandGolden(t *testing.T)   { runGolden(t, "globalrand") }
func TestMaprangeGolden(t *testing.T)     { runGolden(t, "maprange") }
func TestTaskletblockGolden(t *testing.T) { runGolden(t, "taskletblock") }
func TestPoolretainGolden(t *testing.T)   { runGolden(t, "poolretain") }

// TestFindingsSorted pins the driver's output ordering: findings come
// out sorted by (file, line, col, analyzer, message), across files.
func TestFindingsSorted(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "src", "walltime"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(prog, Analyzers())
	if len(fs) < 2 {
		t.Fatalf("want at least 2 findings to check ordering, got %d", len(fs))
	}
	if !sort.SliceIsSorted(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	}) {
		t.Errorf("findings not sorted: %v", fs)
	}
	// extra.go sorts before walltime.go, so the cross-file finding must
	// lead even though walltime.go holds earlier-written cases.
	if fs[0].File != "extra.go" {
		t.Errorf("first finding in %s, want extra.go", fs[0].File)
	}
}

// TestSortFindings pins the full comparison chain on a synthetic set.
func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", File: "z.go", Line: 1, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 9, Col: 1, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 7, Message: "m"},
		{Analyzer: "a", File: "a.go", Line: 2, Col: 3, Message: "m"},
		{Analyzer: "b", File: "a.go", Line: 2, Col: 3, Message: "m"},
	}
	SortFindings(fs)
	got := []string{}
	for _, f := range fs {
		got = append(got, f.String())
	}
	want := []string{
		"a.go:2:3: a: m",
		"a.go:2:3: b: m",
		"a.go:2:7: a: m",
		"a.go:9:1: a: m",
		"z.go:1:1: b: m",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("position %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
