package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// needs. Only non-test GoFiles are analyzed: the invariants protect the
// shipped simulation code that produces digests, while tests routinely
// (and legitimately) use wall-clock timeouts and goroutine counting.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList discovers packages matching patterns under dir via the go
// command — the stdlib-only stand-in for golang.org/x/tools/go/packages.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// topoSort orders pkgs so every in-set import precedes its importer,
// breaking ties by import path for determinism.
func topoSort(pkgs []*listedPackage) ([]*listedPackage, error) {
	byPath := make(map[string]*listedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	indeg := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string)
	for _, p := range pkgs {
		for _, imp := range p.Imports {
			if _, ok := byPath[imp]; ok {
				indeg[p.ImportPath]++
				dependents[imp] = append(dependents[imp], p.ImportPath)
			}
		}
	}
	var ready []string
	for _, p := range pkgs {
		if indeg[p.ImportPath] == 0 {
			ready = append(ready, p.ImportPath)
		}
	}
	sort.Strings(ready)
	var order []*listedPackage
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		order = append(order, byPath[path])
		next := append([]string(nil), dependents[path]...)
		sort.Strings(next)
		for _, dep := range next {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
		sort.Strings(ready)
	}
	if len(order) != len(pkgs) {
		return nil, fmt.Errorf("lint: import cycle among analyzed packages")
	}
	return order, nil
}

// moduleImporter resolves module-internal imports from the packages
// already checked this load, and everything else (the stdlib) through a
// source importer sharing the same FileSet.
type moduleImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// Load discovers, parses and type-checks the packages matching patterns
// under dir (the module root).
func Load(dir string, patterns []string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	order, err := topoSort(listed)
	if err != nil {
		return nil, err
	}
	absRoot, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), Root: absRoot}
	imp := &moduleImporter{
		mod: make(map[string]*types.Package),
		std: importer.ForCompiler(prog.Fset, "source", nil),
	}
	for _, lp := range order {
		if len(lp.GoFiles) == 0 {
			continue // test-only package (e.g. the repo root)
		}
		pkg, err := checkPackage(prog, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.mod[lp.ImportPath] = pkg.Types
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	prog.indexDecls()
	return prog, nil
}

// LoadDir parses and type-checks the single package in dir, resolving
// imports through the stdlib source importer only. The golden-file
// tests use it to analyze self-contained testdata packages.
func LoadDir(dir string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	absRoot, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	prog := &Program{Fset: token.NewFileSet(), Root: absRoot}
	imp := &moduleImporter{
		mod: map[string]*types.Package{},
		std: importer.ForCompiler(prog.Fset, "source", nil),
	}
	pkg, err := checkPackage(prog, imp, filepath.Base(dir), absRoot, files)
	if err != nil {
		return nil, err
	}
	prog.Pkgs = []*Package{pkg}
	prog.indexDecls()
	return prog, nil
}

// checkPackage parses files and runs the type checker, failing on the
// first parse error and reporting up to a handful of type errors.
func checkPackage(prog *Program, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(prog.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []string
	cfg := &types.Config{
		Importer: imp,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, err := cfg.Check(path, prog.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", path, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// relPath makes file relative to root where possible, with forward
// slashes, for stable cross-machine output.
func relPath(root, file string) string {
	if root == "" {
		return file
	}
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}
