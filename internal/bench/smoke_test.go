package bench

import (
	"fmt"
	"testing"
)

func TestSmokeAll(t *testing.T) {
	p := Params{Iters: 30}
	for _, e := range All() {
		tabs := e.Run(p)
		for _, tab := range tabs {
			fmt.Println(tab.Render())
		}
	}
}
