package bench

import (
	"pushpull/internal/scenario"
	"pushpull/internal/stats"
)

// RunExperimentsStream runs the given experiments across a worker pool
// and calls emit(i, tables) for each experiment in input order, as soon
// as it and all its predecessors have finished — so a long multi-
// experiment run streams completed tables instead of buffering
// everything behind a barrier. Every experiment drives its own clusters
// on its own single-threaded simulation engines, so the tables are
// identical for any worker count (TestRunExperimentsWorkerCount pins
// this). workers <= 0 means GOMAXPROCS.
func RunExperimentsStream(exps []Experiment, p Params, workers int, emit func(i int, tables []*stats.Table)) {
	out := make([][]*stats.Table, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go scenario.ParallelFor(len(exps), workers, func(i int) {
		out[i] = exps[i].Run(p)
		close(done[i])
	})
	for i := range exps {
		<-done[i]
		emit(i, out[i])
	}
}

// RunExperiments is RunExperimentsStream collecting every experiment's
// tables, in input order.
func RunExperiments(exps []Experiment, p Params, workers int) [][]*stats.Table {
	out := make([][]*stats.Table, len(exps))
	RunExperimentsStream(exps, p, workers, func(i int, tables []*stats.Table) {
		out[i] = tables
	})
	return out
}
