package bench

import (
	"testing"

	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

func paperWorkload(intra bool, size, iters int) Workload {
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 12 << 10
	return Workload{Cluster: baseConfig(opts), Intra: intra, Size: size, Iters: iters}
}

func TestSingleTripCollectsRequestedIterations(t *testing.T) {
	s := SingleTrip(paperWorkload(true, 100, 37))
	if s.N != 37 {
		t.Errorf("samples = %d, want 37", s.N)
	}
	if s.TrimmedMean <= 0 {
		t.Error("non-positive latency")
	}
}

func TestSingleTripSteadyStateIsNoiseFree(t *testing.T) {
	// A deterministic simulator in steady state should produce nearly
	// identical iterations: min and max within a few percent.
	s := SingleTrip(paperWorkload(false, 760, 100))
	if s.Max > s.Min*1.10 {
		t.Errorf("ping-pong jitter too high: min %.2f max %.2f", s.Min, s.Max)
	}
}

func TestSingleTripMonotonicInSize(t *testing.T) {
	small := SingleTrip(paperWorkload(true, 100, 50)).TrimmedMean
	large := SingleTrip(paperWorkload(true, 8000, 50)).TrimmedMean
	if large <= small {
		t.Errorf("8000B (%.2f) not slower than 100B (%.2f)", large, small)
	}
}

func TestSingleTripDeterministic(t *testing.T) {
	a := SingleTrip(paperWorkload(false, 1400, 60)).TrimmedMean
	b := SingleTrip(paperWorkload(false, 1400, 60)).TrimmedMean
	if a != b {
		t.Errorf("same workload measured %.4f then %.4f", a, b)
	}
}

func TestBandwidthPositiveAndBounded(t *testing.T) {
	bw := Bandwidth(paperWorkload(false, 32768, 20))
	if bw <= 0 {
		t.Fatal("non-positive bandwidth")
	}
	// The wire's payload ceiling is ~12.2 MB/s; no protocol can beat it.
	if bw > 12.3 {
		t.Errorf("internode bandwidth %.2f MB/s exceeds the wire ceiling", bw)
	}
}

func TestBandwidthIntranodeBelowBus(t *testing.T) {
	bw := Bandwidth(paperWorkload(true, 16384, 50))
	if bw <= 0 || bw > 533 {
		t.Errorf("intranode bandwidth %.1f MB/s outside (0, 533] bus bound", bw)
	}
}

func TestEarlyLateIncludesComputeTime(t *testing.T) {
	// With x+y NOPs of compute inside the timed region, the single-trip
	// reading must be at least half the pure compute time.
	w := paperWorkload(false, 1024, 20)
	s := EarlyLate(w, 100_000, 300_000)
	minCompute := float64(100_000+300_000) * 0.005 / 2 // 5ns per NOP, halved
	if s.TrimmedMean < minCompute {
		t.Errorf("early/late latency %.1fµs below compute floor %.1fµs", s.TrimmedMean, minCompute)
	}
}

func TestEarlyVsLateOrdering(t *testing.T) {
	// The early test burns more total NOPs (500k+100k vs 100k+300k), so
	// its reading must be larger.
	w := paperWorkload(false, 1024, 20)
	early := EarlyLate(w, earlyX, earlyY).TrimmedMean
	late := EarlyLate(w, lateX, lateY).TrimmedMean
	if early <= late {
		t.Errorf("early (%.1f) should exceed late (%.1f) for push-pull at 1KB", early, late)
	}
}

func TestOneShotImmediateReceiver(t *testing.T) {
	us := OneShot(paperWorkload(false, 760, 1), 0)
	if us < 30 || us > 200 {
		t.Errorf("one-shot 760B transfer = %.1fµs, expected tens of µs", us)
	}
}

func TestOneShotLateReceiverIncludesDelay(t *testing.T) {
	us := OneShot(paperWorkload(false, 760, 1), 2*sim.Duration(sim.Millisecond))
	if us < 2000 {
		t.Errorf("one-shot with 2ms-late receiver = %.1fµs, want >= 2000", us)
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig3", "fig4", "fig6-early", "fig6-late", "btp1", "btp2", "headline"} {
		if !ids[want] {
			t.Errorf("paper experiment %q missing from registry", want)
		}
	}
	if _, err := ByID("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nonsense"); err == nil {
		t.Error("unknown id lookup succeeded")
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	if DefaultParams().Iters != 1000 {
		t.Error("paper methodology uses 1000 iterations")
	}
}
