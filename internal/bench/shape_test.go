package bench

// These tests pin the *shape* of every reproduced figure: who wins, by
// roughly what factor, and where crossovers fall. They are the
// regression net for the reproduction — calibration changes that break a
// paper claim fail here.

import (
	"math"
	"testing"

	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/stats"
)

// quick keeps shape tests fast; shapes are stable at 50 iterations in a
// noise-free simulator.
var quickParams = Params{Iters: 50}

func seriesByLabel(t *testing.T, tab *stats.Table, label string) *stats.Series {
	t.Helper()
	for _, s := range tab.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("table %q has no series %q", tab.Title, label)
	return nil
}

func TestFig3Shape(t *testing.T) {
	tab := runFig3(quickParams)[0]
	zero := seriesByLabel(t, tab, "push-zero")
	pull := seriesByLabel(t, tab, "push-pull")
	all := seriesByLabel(t, tab, "push-all")

	// Paper: minimum latency for a 10-byte message is 7.5 µs and
	// Push-Zero's synchronization makes it clearly slower there.
	if v := pull.Y(10); v < 5 || v > 10 {
		t.Errorf("push-pull at 10B = %.2fµs, want ~7.5", v)
	}
	if zero.Y(10) < pull.Y(10)+2 {
		t.Errorf("push-zero at 10B (%.2f) should clearly exceed push-pull (%.2f)", zero.Y(10), pull.Y(10))
	}
	// Paper: "Around 4000 bytes, the latency of Push-All was abruptly
	// increased" — the jump must be visible between 4000 and 5000 while
	// Push-Pull grows smoothly.
	allJump := all.Y(5000) - all.Y(4000)
	pullJump := pull.Y(5000) - pull.Y(4000)
	if allJump < 2*pullJump {
		t.Errorf("push-all cliff missing: jump %.2fµs vs push-pull %.2fµs", allJump, pullJump)
	}
	// Paper: Push-All is the worst mechanism at 8 KB; Push-Pull and
	// Push-Zero stay steady and close.
	if all.Y(8192) <= pull.Y(8192) {
		t.Errorf("at 8192B push-all (%.2f) should exceed push-pull (%.2f)", all.Y(8192), pull.Y(8192))
	}
	if math.Abs(pull.Y(8192)-zero.Y(8192)) > 2 {
		t.Errorf("push-pull (%.2f) and push-zero (%.2f) should track closely at 8KB", pull.Y(8192), zero.Y(8192))
	}
}

func TestFig4Shape(t *testing.T) {
	tab := runFig4(quickParams)[0]
	none := seriesByLabel(t, tab, "no-optimization")
	mask := seriesByLabel(t, tab, "mask-only")
	over := seriesByLabel(t, tab, "overlap-only")
	full := seriesByLabel(t, tab, "full-optimization")

	// Paper: "Before 760 bytes, all four messaging mechanisms behaved
	// the same" (up to the trigger-path difference masking implies).
	for _, x := range []float64{4, 200, 600, 760} {
		if none.Y(x)-over.Y(x) > 0.01 || mask.Y(x)-full.Y(x) > 0.01 {
			t.Errorf("at %gB overlap should change nothing: none %.2f/overlap %.2f, mask %.2f/full %.2f",
				x, none.Y(x), over.Y(x), mask.Y(x), full.Y(x))
		}
	}
	// Beyond 760 B: full < overlap-only < mask-only < none, and the
	// overlap gain exceeds the masking gain ("Push-and-Acknowledge
	// Overlapping showed larger improvement").
	for _, x := range []float64{1000, 1400} {
		if !(full.Y(x) < over.Y(x) && over.Y(x) < mask.Y(x) && mask.Y(x) < none.Y(x)) {
			t.Errorf("at %gB ordering broken: full %.2f, overlap %.2f, mask %.2f, none %.2f",
				x, full.Y(x), over.Y(x), mask.Y(x), none.Y(x))
		}
		maskGain := none.Y(x) - mask.Y(x)
		overGain := none.Y(x) - over.Y(x)
		if overGain <= maskGain {
			t.Errorf("at %gB overlap gain (%.2f) should exceed mask gain (%.2f)", x, overGain, maskGain)
		}
	}
}

func TestFig6EarlyShape(t *testing.T) {
	tab := runFig6(quickParams, earlyX, earlyY, "early")[0]
	zero := seriesByLabel(t, tab, "push-zero")
	pull := seriesByLabel(t, tab, "push-pull")
	all := seriesByLabel(t, tab, "push-all")
	for _, x := range []float64{1024, 4096, 8192} {
		// Paper: Push-Zero's empty push phase wastes bandwidth — it is
		// constantly slower than both data-pushing mechanisms.
		if zero.Y(x) <= pull.Y(x) || zero.Y(x) <= all.Y(x) {
			t.Errorf("early at %gB: push-zero (%.1f) should be slowest (pull %.1f, all %.1f)",
				x, zero.Y(x), pull.Y(x), all.Y(x))
		}
		// Paper: Push-Pull and Push-All perform similarly (the
		// translation saving is real but small).
		if d := math.Abs(pull.Y(x) - all.Y(x)); d > 25 {
			t.Errorf("early at %gB: push-pull (%.1f) and push-all (%.1f) should be close, differ %.1f",
				x, pull.Y(x), all.Y(x), d)
		}
	}
}

func TestFig6LateShape(t *testing.T) {
	tab := runFig6(quickParams, lateX, lateY, "late")[0]
	zero := seriesByLabel(t, tab, "push-zero")
	pull := seriesByLabel(t, tab, "push-pull")
	all := seriesByLabel(t, tab, "push-all")

	// Paper: below 3072 B Push-All delivers fastest (the whole message
	// is already buffered when the late receive arrives).
	for _, x := range []float64{1024, 2048} {
		if !(all.Y(x) < pull.Y(x) && pull.Y(x) < zero.Y(x)) {
			t.Errorf("late at %gB: want all < pull < zero, got %.1f / %.1f / %.1f",
				x, all.Y(x), pull.Y(x), zero.Y(x))
		}
	}
	// Paper: at 3072 B Push-All collapses — ~150 ms recovery versus
	// ~1.2-1.3 ms for the others ("Push-All took around 150 ms while
	// Push-Zero took 1303.58 µs and Push-Pull 1227.42 µs").
	if all.Y(3072) < 50_000 {
		t.Errorf("push-all at 3072B = %.0fµs; expected go-back-N collapse above 50ms", all.Y(3072))
	}
	if pull.Y(3072) > 3000 || zero.Y(3072) > 3000 {
		t.Errorf("push-pull/zero at 3072B should stay in the ms range: %.0f / %.0f", pull.Y(3072), zero.Y(3072))
	}
	// Paper: Push-Pull always beats Push-Zero in the late test (the
	// pushed BTP bytes shorten the pull).
	for _, x := range []float64{1024, 3072, 8192} {
		if pull.Y(x) >= zero.Y(x) {
			t.Errorf("late at %gB: push-pull (%.1f) should beat push-zero (%.1f)", x, pull.Y(x), zero.Y(x))
		}
	}
}

func TestBTP2SweepShape(t *testing.T) {
	tab := runBTP2(quickParams)[0]
	s := seriesByLabel(t, tab, "push-pull")
	// Pushing more in the overlapped second fragment must help a lot at
	// first (paper: "the overall latency could be shortened as the value
	// of BTP(2) increased")...
	if s.Y(0) <= s.Y(600) {
		t.Errorf("BTP2=0 (%.1f) should be slower than BTP2=600 (%.1f)", s.Y(0), s.Y(600))
	}
	// ...and there is an interior optimum: the largest sweep value is
	// not the best (paper: "there was an upper limit on the BTP(2)
	// value").
	best := argminX(s)
	if best >= 1400 {
		t.Errorf("BTP2 optimum at the sweep edge (%.0f); expected an interior optimum", best)
	}
	if s.Y(1400) <= s.Y(best) {
		t.Errorf("latency at BTP2=1400 (%.2f) should exceed the optimum (%.2f at %.0f)",
			s.Y(1400), s.Y(best), best)
	}
}

func TestBTP1SweepShape(t *testing.T) {
	tab := runBTP1(quickParams)[0]
	s := seriesByLabel(t, tab, "push-pull")
	// Paper: a modest first push helps ("when the value was smaller than
	// the threshold value, the latency would actually decrease").
	if s.Y(80) >= s.Y(0) {
		t.Errorf("BTP1=80 (%.2f) should beat BTP1=0 (%.2f)", s.Y(80), s.Y(0))
	}
}

func TestHeadlineWithinTolerance(t *testing.T) {
	tab := runHeadline(Params{Iters: 100})[0]
	paper := seriesByLabel(t, tab, "paper")
	ours := seriesByLabel(t, tab, "measured")
	// Rows: 0 intranode latency, 1 intranode BW, 2 internode latency,
	// 3 internode BW, 4 translation cost, 5 push-all recovery.
	tolerances := []float64{0.15, 0.15, 0.10, 0.10, 0.25, 0.25}
	for i, tol := range tolerances {
		p, m := paper.Y(float64(i)), ours.Y(float64(i))
		if rel := math.Abs(m-p) / p; rel > tol {
			t.Errorf("headline row %d: measured %.2f vs paper %.2f (off %.0f%%, tolerance %.0f%%)",
				i, m, p, rel*100, tol*100)
		}
	}
}

func TestMultiRailScaling(t *testing.T) {
	tab := runMultiRail(Params{Iters: 100})[0]
	s := seriesByLabel(t, tab, "push-pull")
	if s.Y(2) < 1.8*s.Y(1) {
		t.Errorf("2 rails = %.1f MB/s, want >= 1.8x one rail (%.1f)", s.Y(2), s.Y(1))
	}
	if s.Y(4) < 3.4*s.Y(1) {
		t.Errorf("4 rails = %.1f MB/s, want >= 3.4x one rail (%.1f)", s.Y(4), s.Y(1))
	}
}

func TestPollingAblationShape(t *testing.T) {
	tab := runAblationPolling(Params{Iters: 50})[0]
	s := seriesByLabel(t, tab, "latency")
	// Slow polling must cost roughly the added period.
	if s.Y(50) <= s.Y(1) {
		t.Error("50µs polling should be slower than 1µs polling")
	}
	// Tight polling beats interrupt dispatch (that is its point).
	if s.Y(1) >= s.Y(0) {
		t.Errorf("1µs polling (%.1f) should beat symmetric interrupts (%.1f)", s.Y(1), s.Y(0))
	}
}

func TestZeroBufAblationShape(t *testing.T) {
	tabs := runAblationZeroBuf(Params{Iters: 50})
	bwTab := tabs[1]
	zb := seriesByLabel(t, bwTab, "zero-buffer")
	dc := seriesByLabel(t, bwTab, "double-copy")
	for _, x := range []float64{4000, 16384} {
		if zb.Y(x) < 1.3*dc.Y(x) {
			t.Errorf("zero buffer at %gB = %.1f MB/s, want >= 1.3x double copy (%.1f)", x, zb.Y(x), dc.Y(x))
		}
	}
}

func TestPullCPUAblationShape(t *testing.T) {
	tab := runAblationPullCPU(Params{Iters: 50})[0]
	ll := seriesByLabel(t, tab, "least-loaded")
	rc := seriesByLabel(t, tab, "receiver-cpu")
	if rc.Y(0) <= ll.Y(0) {
		t.Errorf("co-located pulls (%.2fms) should slow the worker vs offloaded (%.2fms)", rc.Y(0), ll.Y(0))
	}
}

func TestTriggerAblationShape(t *testing.T) {
	tab := runAblationTrigger(Params{Iters: 50})[0]
	user := seriesByLabel(t, tab, "user-trigger")
	kern := seriesByLabel(t, tab, "kernel-trigger")
	for _, x := range []float64{4, 760} {
		if user.Y(x) >= kern.Y(x) {
			t.Errorf("at %gB user trigger (%.2f) should beat kernel path (%.2f)", x, user.Y(x), kern.Y(x))
		}
	}
}

func TestOneShotRecoveryNearPaper(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.Mode = pushpull.PushAll
	opts.PushedBufBytes = 4096
	w := Workload{Cluster: baseConfig(opts), Size: 3072, Iters: 1}
	ms := OneShot(w, sim.Duration(sim.Millisecond)) / 1000
	if ms < 100 || ms > 200 {
		t.Errorf("push-all 3072B recovery = %.1fms, want ~150", ms)
	}
}
