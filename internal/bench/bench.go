// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (§5) on the simulated testbed, using
// the paper's own methodology — ping-pong single-trip latency, the
// bandwidth formula with the 4-byte-acknowledgement correction, the
// barrier-synchronized compute-then-communicate early/late receiver
// tests, and middle-80 % trimmed means over repeated iterations.
//
// The measurement bodies themselves live in internal/scenario as
// declarative traffic patterns programmed against the public comm API;
// bench contributes the paper's workload sweeps (which sizes, which
// option combinations, which derived quantities) on top of that engine.
package bench

import (
	"pushpull/internal/cluster"
	"pushpull/internal/scenario"
	"pushpull/internal/sim"
	"pushpull/internal/stats"
)

// Workload identifies one measurement configuration.
type Workload struct {
	// Cluster is the full testbed description (protocol options live in
	// Cluster.Opts).
	Cluster cluster.Config
	// Intra selects the intranode route (both processes on node 0);
	// otherwise node 0 talks to node 1.
	Intra bool
	// Size is the message size in bytes.
	Size int
	// Iters is the number of timed iterations (the paper uses 1000).
	Iters int
}

// run executes one traffic pattern on the workload's cluster through
// the scenario engine and returns the raw latency samples.
func (w Workload) run(traffic scenario.Traffic) []float64 {
	cfg := w.Cluster
	if w.Intra {
		cfg.Nodes = 1
		cfg.ProcsPerNode = 2
	}
	traffic.Size = w.Size
	if traffic.Messages == 0 {
		traffic.Messages = w.Iters
	}
	res, err := scenario.RunConfig(cfg, scenario.Spec{Traffic: traffic}, scenario.KeepSamples())
	must(err)
	return res.Samples
}

// SingleTrip measures the paper's single-trip latency: half the ping-pong
// round trip, trimmed-mean over w.Iters iterations, in microseconds.
func SingleTrip(w Workload) stats.Summary {
	return stats.Summarize(SingleTripSamples(w))
}

// SingleTripSamples returns the raw per-iteration single-trip latencies
// in microseconds — for distribution analyses (percentiles, histograms)
// that the paper's trimmed mean would hide.
func SingleTripSamples(w Workload) []float64 {
	return w.run(scenario.Traffic{Pattern: "pingpong"})
}

// Bandwidth measures the paper's bandwidth: the time to send Size bytes
// plus a 4-byte acknowledgement back, minus the 4-byte single-trip time,
// with bandwidth = Size / that time. Returned in MB/s.
func Bandwidth(w Workload) float64 {
	small := w
	small.Size = 4
	base := SingleTrip(small).TrimmedMean // µs per 4-byte single trip

	samples := w.run(scenario.Traffic{Pattern: "bandwidth"})
	per := stats.TrimmedMean(samples, 0.10) - base
	if per <= 0 {
		return 0
	}
	return float64(w.Size) / per // bytes/µs == MB/s
}

// EarlyLate runs the paper's redesigned ping-pong (Fig. 5): both sides
// compute before they communicate, with x and y NOP counts steering who
// arrives first. It reports the single-trip mean latency (half the
// measured ping duration), trimmed, in microseconds.
//
// Paper parameters: early receiver x=500000, y=100000; late receiver
// x=100000, y=300000.
func EarlyLate(w Workload, x, y int64) stats.Summary {
	return stats.Summarize(w.run(scenario.Traffic{
		Pattern: "earlylate", ComputeX: x, ComputeY: y,
	}))
}

// OneShot measures a single untimed-warmup-free transfer end to end and
// returns the completion time in microseconds — used for the go-back-N
// recovery measurements, where trimming would hide the event under test.
func OneShot(w Workload, recvDelay sim.Duration) float64 {
	samples := w.run(scenario.Traffic{
		Pattern: "oneshot",
		DelayUS: recvDelay.Microseconds(),
		// The pattern runs exactly one transfer regardless of Iters.
		Messages: 1,
	})
	return samples[0]
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
