// Package bench is the experiment harness: it reproduces every table and
// figure of the paper's evaluation (§5) on the simulated testbed, using
// the paper's own methodology — ping-pong single-trip latency, the
// bandwidth formula with the 4-byte-acknowledgement correction, the
// barrier-synchronized compute-then-communicate early/late receiver
// tests, and middle-80 % trimmed means over repeated iterations.
package bench

import (
	"fmt"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/stats"
	"pushpull/internal/vm"
)

// Workload identifies one measurement configuration.
type Workload struct {
	// Cluster is the full testbed description (protocol options live in
	// Cluster.Opts).
	Cluster cluster.Config
	// Intra selects the intranode route (both processes on node 0);
	// otherwise node 0 talks to node 1.
	Intra bool
	// Size is the message size in bytes.
	Size int
	// Iters is the number of timed iterations (the paper uses 1000).
	Iters int
}

// endpoints returns the two communicating endpoints for w, building the
// cluster.
func (w Workload) build() (*cluster.Cluster, *pushpull.Endpoint, *pushpull.Endpoint) {
	cfg := w.Cluster
	if w.Intra {
		cfg.Nodes = 1
		cfg.ProcsPerNode = 2
	}
	c := cluster.New(cfg)
	a := c.Endpoint(0, 0)
	var b *pushpull.Endpoint
	if w.Intra {
		b = c.Endpoint(0, 1)
	} else {
		b = c.Endpoint(1, 0)
	}
	return c, a, b
}

// barrier performs the paper's barrier: a simple 4-byte ping-pong.
func barrier(t *smp.Thread, self, peer *pushpull.Endpoint,
	src, dst vm.VirtAddr, initiator bool) error {
	tiny := []byte{1, 2, 3, 4}
	if initiator {
		if err := self.Send(t, peer.ID, src, tiny); err != nil {
			return err
		}
		_, err := self.Recv(t, peer.ID, dst, 4)
		return err
	}
	if _, err := self.Recv(t, peer.ID, dst, 4); err != nil {
		return err
	}
	return self.Send(t, peer.ID, src, tiny)
}

// SingleTrip measures the paper's single-trip latency: half the ping-pong
// round trip, trimmed-mean over w.Iters iterations, in microseconds.
func SingleTrip(w Workload) stats.Summary {
	return stats.Summarize(SingleTripSamples(w))
}

// SingleTripSamples returns the raw per-iteration single-trip latencies
// in microseconds — for distribution analyses (percentiles, histograms)
// that the paper's trimmed mean would hide.
func SingleTripSamples(w Workload) []float64 {
	c, a, b := w.build()
	n := w.Size
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i)
	}
	aSrc, aDst := a.Alloc(max(n, 4)), a.Alloc(max(n, 4))
	bSrc, bDst := b.Alloc(max(n, 4)), b.Alloc(max(n, 4))
	samples := make([]float64, 0, w.Iters)

	c.Nodes[a.ID.Node].Spawn("ping", a.CPU, func(t *smp.Thread) {
		must(barrier(t, a, b, aSrc, aDst, true))
		for i := 0; i < w.Iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID, aSrc, msg))
			_, err := a.Recv(t, b.ID, aDst, n)
			must(err)
			rt := t.Now().Sub(start)
			samples = append(samples, rt.Microseconds()/2)
		}
	})
	c.Nodes[b.ID.Node].Spawn("pong", b.CPU, func(t *smp.Thread) {
		must(barrier(t, b, a, bSrc, bDst, false))
		for i := 0; i < w.Iters; i++ {
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			must(b.Send(t, a.ID, bSrc, msg))
		}
	})
	c.Run()
	if len(samples) != w.Iters {
		panic(fmt.Sprintf("bench: ping-pong finished %d of %d iterations (deadlock?)", len(samples), w.Iters))
	}
	return samples
}

// Bandwidth measures the paper's bandwidth: the time to send Size bytes
// plus a 4-byte acknowledgement back, minus the 4-byte single-trip time,
// with bandwidth = Size / that time. Returned in MB/s.
func Bandwidth(w Workload) float64 {
	small := w
	small.Size = 4
	base := SingleTrip(small).TrimmedMean // µs per 4-byte single trip

	c, a, b := w.build()
	n := w.Size
	msg := make([]byte, n)
	ackBuf := []byte{1, 2, 3, 4}
	aSrc, aDst := a.Alloc(n), a.Alloc(4)
	bSrc, bDst := b.Alloc(4), b.Alloc(n)
	samples := make([]float64, 0, w.Iters)

	c.Nodes[a.ID.Node].Spawn("src", a.CPU, func(t *smp.Thread) {
		must(barrier(t, a, b, aSrc, aDst, true))
		for i := 0; i < w.Iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID, aSrc, msg))
			_, err := a.Recv(t, b.ID, aDst, 4)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds())
		}
	})
	c.Nodes[b.ID.Node].Spawn("sink", b.CPU, func(t *smp.Thread) {
		must(barrier(t, b, a, bSrc, bDst, false))
		for i := 0; i < w.Iters; i++ {
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			must(b.Send(t, a.ID, bSrc, ackBuf))
		}
	})
	c.Run()
	per := stats.TrimmedMean(samples, 0.10) - base
	if per <= 0 {
		return 0
	}
	return float64(n) / per // bytes/µs == MB/s
}

// EarlyLate runs the paper's redesigned ping-pong (Fig. 5): both sides
// compute before they communicate, with x and y NOP counts steering who
// arrives first. It reports the single-trip mean latency (half the
// measured ping duration), trimmed, in microseconds.
//
// Paper parameters: early receiver x=500000, y=100000; late receiver
// x=100000, y=300000.
func EarlyLate(w Workload, x, y int64) stats.Summary {
	c, a, b := w.build()
	n := w.Size
	msg := make([]byte, n)
	aSrc, aDst := a.Alloc(max(n, 4)), a.Alloc(max(n, 4))
	bSrc, bDst := b.Alloc(max(n, 4)), b.Alloc(max(n, 4))
	samples := make([]float64, 0, w.Iters)

	c.Nodes[a.ID.Node].Spawn("ping", a.CPU, func(t *smp.Thread) {
		for i := 0; i < w.Iters; i++ {
			must(barrier(t, a, b, aSrc, aDst, true))
			start := t.Now()
			t.Compute(x)
			must(a.Send(t, b.ID, aSrc, msg))
			t.Compute(y)
			_, err := a.Recv(t, b.ID, aDst, n)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds()/2)
		}
	})
	c.Nodes[b.ID.Node].Spawn("pong", b.CPU, func(t *smp.Thread) {
		for i := 0; i < w.Iters; i++ {
			must(barrier(t, b, a, bSrc, bDst, false))
			t.Compute(y)
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			t.Compute(x)
			must(b.Send(t, a.ID, bSrc, msg))
		}
	})
	c.Run()
	if len(samples) != w.Iters {
		panic(fmt.Sprintf("bench: early/late finished %d of %d iterations (deadlock?)", len(samples), w.Iters))
	}
	return stats.Summarize(samples)
}

// OneShot measures a single untimed-warmup-free transfer end to end and
// returns the completion time in microseconds — used for the go-back-N
// recovery measurements, where trimming would hide the event under test.
func OneShot(w Workload, recvDelay sim.Duration) float64 {
	c, a, b := w.build()
	n := w.Size
	msg := make([]byte, n)
	src := a.Alloc(n)
	dst := b.Alloc(n)
	var done sim.Time
	c.Nodes[a.ID.Node].Spawn("src", a.CPU, func(t *smp.Thread) {
		must(a.Send(t, b.ID, src, msg))
	})
	c.Nodes[b.ID.Node].SpawnAt(recvDelay, "dst-recv", b.CPU, func(t *smp.Thread) {
		_, err := b.Recv(t, a.ID, dst, n)
		must(err)
		done = t.Now()
	})
	c.Run()
	return sim.Duration(done).Microseconds()
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
