package bench

// Experiments beyond the paper's figures: the three-phase historical
// baseline, damaged-cable and hub topologies, the adaptive BTP
// controller, and the collective/application layer. Each is registered
// in All() and regenerable through cmd/pushpull-bench.

import (
	"fmt"

	"pushpull/coll"
	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/gbn"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/stats"
)

// threePhaseOptions is the classical protocol: no optimizations, kernel
// trigger, synchronous handshake.
func threePhaseOptions() pushpull.Options {
	opts := pushpull.DefaultOptions()
	opts.Mode = pushpull.ThreePhase
	opts.MaskTranslation = false
	opts.OverlapAck = false
	opts.UserTrigger = false
	return opts
}

var threePhaseSizes = []int{4, 100, 400, 760, 1400, 3000, 8192}

func runThreePhase(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Three-phase handshake baseline vs Push-Pull (internode)",
		"size(B)", "single-trip µs, middle-80% mean")
	variants := []struct {
		label string
		opts  pushpull.Options
	}{
		{"three-phase", threePhaseOptions()},
		{"push-zero full-opt", func() pushpull.Options {
			o := pushpull.DefaultOptions()
			o.Mode = pushpull.PushZero
			return o
		}()},
		{"push-pull full-opt", pushpull.DefaultOptions()},
	}
	for _, v := range variants {
		s := tab.AddSeries(v.label)
		for _, n := range threePhaseSizes {
			w := Workload{Cluster: baseConfig(v.opts), Size: n, Iters: p.Iters}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}
	tab.Comment = "the paper's §1 motivation: the handshake penalizes every size, worst in relative terms for short messages"
	return []*stats.Table{tab}
}

// lossRates swept by the damaged-cable ablation.
var lossRates = []float64{0, 0.0001, 0.001, 0.01, 0.05}

func runAblationLoss(p Params) []*stats.Table {
	iters := p.Iters
	if iters > 300 {
		iters = 300 // every recovery costs an RTO of virtual time
	}
	lossOpts := func() pushpull.Options {
		opts := pushpull.DefaultOptions()
		opts.GBN = gbn.Config{Window: 8, RTO: 2 * sim.Millisecond}
		return opts
	}

	lat := stats.NewTable(
		"Frame loss ablation: 1400 B internode single-trip latency vs loss rate (RTO 2 ms)",
		"loss(%)", "single-trip µs")
	trimmed := lat.AddSeries("middle-80% mean")
	plain := lat.AddSeries("plain mean")
	for _, rate := range lossRates {
		cfg := baseConfig(lossOpts())
		cfg.Net.LossRate = rate
		w := Workload{Cluster: cfg, Size: 1400, Iters: iters}
		sum := SingleTrip(w)
		trimmed.Add(rate*100, sum.TrimmedMean)
		plain.Add(rate*100, sum.Mean)
	}
	lat.Comment = "the paper's trimmed estimator hides rare recoveries at low loss rates; the plain mean exposes them"

	bw := stats.NewTable(
		"Frame loss ablation: 8192 B internode bandwidth vs loss rate (RTO 2 ms)",
		"loss(%)", "MB/s")
	s := bw.AddSeries("push-pull full-opt")
	for _, rate := range lossRates {
		cfg := baseConfig(lossOpts())
		cfg.Net.LossRate = rate
		w := Workload{Cluster: cfg, Size: 8192, Iters: iters}
		s.Add(rate*100, Bandwidth(w))
	}
	return []*stats.Table{lat, bw}
}

// hub topologies compared by the hub-vs-switch ablation.
func runHub(p Params) []*stats.Table {
	topologies := []struct {
		label string
		mut   func(*cluster.Config)
	}{
		{"back-to-back", func(*cluster.Config) {}},
		{"switch", func(c *cluster.Config) { c.UseSwitch = true }},
		{"hub (half-duplex)", func(c *cluster.Config) { c.UseHub = true }},
	}

	lat := stats.NewTable(
		"Topology ablation: internode single-trip latency",
		"size(B)", "single-trip µs, middle-80% mean")
	for _, topo := range topologies {
		s := lat.AddSeries(topo.label)
		for _, n := range []int{4, 760, 1400, 4096, 8192} {
			cfg := baseConfig(pushpull.DefaultOptions())
			topo.mut(&cfg)
			w := Workload{Cluster: cfg, Size: n, Iters: p.Iters}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}

	bw := stats.NewTable(
		"Topology ablation: internode bandwidth (data and acks share the hub's one wire)",
		"size(B)", "MB/s")
	for _, topo := range topologies {
		s := bw.AddSeries(topo.label)
		for _, n := range []int{1400, 8192} {
			cfg := baseConfig(pushpull.DefaultOptions())
			topo.mut(&cfg)
			w := Workload{Cluster: cfg, Size: n, Iters: p.Iters}
			s.Add(float64(n), Bandwidth(w))
		}
	}
	bw.Comment = "the testbed (and every serious COMP of the era) used a switch or back-to-back cabling; the hub shows why"

	jit := stats.NewTable(
		"Topology ablation: 8192 B latency distribution (contention jitter the trimmed mean hides)",
		"percentile", "single-trip µs")
	for _, topo := range topologies {
		s := jit.AddSeries(topo.label)
		cfg := baseConfig(pushpull.DefaultOptions())
		topo.mut(&cfg)
		samples := SingleTripSamples(Workload{Cluster: cfg, Size: 8192, Iters: p.Iters})
		q := stats.QuantileSummary(samples)
		s.Add(50, q.P50)
		s.Add(90, q.P90)
		s.Add(99, q.P99)
	}
	return []*stats.Table{lat, bw, jit}
}

// adaptivePhases drives one sender through an early-receiver phase then a
// late-receiver phase and reports per-phase mean latency plus the wire
// bytes wasted on discarded pushes. The receiver clocks the exchange: it
// grants a 4-byte credit, optionally computes past the push's arrival
// (late phase), then posts its receive — so the lateness is a constant
// phase offset, not a drifting queue.
func adaptivePhases(p Params, adaptive bool) (early, late float64, wasted uint64, finalBTP int) {
	iters := p.Iters
	if iters > 200 {
		iters = 200
	}
	cfg := cluster.DefaultConfig()
	cfg.Opts.PushedBufBytes = 2048 // one ring slot: a late 2-fragment push overflows
	c := cluster.New(cfg)
	var ctl *adapt.Controller
	if adaptive {
		ac := adapt.DefaultConfig()
		// Never push more than the receiver's pushed buffer: beyond it a
		// fully pushed message both overflows (go-back-N recovery) and
		// yields no pull-request feedback to learn from.
		ac.Max = cfg.Opts.PushedBufBytes
		ctl = adapt.NewController(ac)
		c.Stacks[0].SetAdapter(ctl)
	}

	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	const size = 3000
	msg := make([]byte, size)
	credit := []byte{1, 2, 3, 4}
	src := sender.Alloc(size)
	creditDst := sender.Alloc(4)
	dst := receiver.Alloc(size)
	creditSrc := receiver.Alloc(4)

	sendStart := make([]sim.Time, 2*iters)
	recvDone := make([]sim.Time, 2*iters)

	c.Nodes[0].Spawn("sender", sender.CPU, func(t *smp.Thread) {
		for i := 0; i < 2*iters; i++ {
			_, err := sender.Recv(t, receiver.ID, creditDst, 4)
			must(err)
			sendStart[i] = t.Now()
			must(sender.Send(t, receiver.ID, src, msg))
		}
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(t *smp.Thread) {
		for i := 0; i < 2*iters; i++ {
			must(receiver.Send(t, sender.ID, creditSrc, credit))
			if i >= iters {
				// Late phase: the push lands ~70 µs after the credit; the
				// receive is posted ~300 µs after it, every time.
				t.Compute(60_000)
			}
			_, err := receiver.Recv(t, sender.ID, dst, size)
			must(err)
			recvDone[i] = t.Now()
		}
	})
	c.Run()

	phase := func(from, to int) float64 {
		xs := make([]float64, 0, to-from)
		for i := from; i < to; i++ {
			xs = append(xs, recvDone[i].Sub(sendStart[i]).Microseconds())
		}
		return stats.TrimmedMean(xs, 0.10)
	}
	early, late = phase(0, iters), phase(iters, 2*iters)
	wasted = c.Stacks[1].DiscardedBytes()
	finalBTP = 760
	if ctl != nil {
		finalBTP = ctl.Current(pushpull.ChannelID{From: sender.ID, To: receiver.ID})
	}
	return early, late, wasted, finalBTP
}

func runAdaptive(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Adaptive BTP (§3: \"applications can dynamically change the size of the pushed buffer\"): 3000 B messages, 2 KB pushed buffer",
		"phase (0=early recv, 1=late recv)", "send-to-complete µs, middle-80% mean")
	sEarly, sLate, dis, btp := adaptivePhases(p, false)
	aEarly, aLate, adis, abtp := adaptivePhases(p, true)
	st := tab.AddSeries("static BTP=760")
	st.Add(0, sEarly)
	st.Add(1, sLate)
	ad := tab.AddSeries("adaptive AIMD")
	ad.Add(0, aEarly)
	ad.Add(1, aLate)
	tab.Comment = fmt.Sprintf(
		"static: %d B of pushes discarded and re-pulled, BTP stays %d; adaptive: %d B wasted, BTP ends at %d — AIMD finds the largest push the late receiver's buffer absorbs",
		dis, btp, adis, abtp)
	return []*stats.Table{tab}
}

// runCollective measures allreduce at the application layer across
// messaging modes on a four-node COMP.
func runCollective(p Params) []*stats.Table {
	iters := p.Iters
	if iters > 50 {
		iters = 50 // each iteration is a full collective on 4 nodes
	}
	tab := stats.NewTable(
		"Collective layer: 4-node allreduce (recursive doubling) vs vector size",
		"vector(B)", "µs per allreduce, mean over iterations")
	modes := []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase}
	for _, mode := range modes {
		s := tab.AddSeries(mode.String())
		for _, vec := range []int{64, 1024, 8192} {
			cfg := cluster.DefaultConfig()
			cfg.Nodes = 4
			cfg.Opts.Mode = mode
			cfg.Opts.PushedBufBytes = 64 << 10
			w := coll.NewWorld(cluster.New(cfg))
			var start, end sim.Time
			vecBytes := vec
			w.Run(func(r *coll.Rank) {
				data := make([]byte, vecBytes)
				for i := range data {
					data[i] = byte(r.ID() + i)
				}
				r.Barrier()
				if r.ID() == 0 {
					start = r.Thread().Now()
				}
				for i := 0; i < iters; i++ {
					r.AllReduce(data, coll.XorBytes, coll.WithAlgorithm(coll.RecursiveDoubling))
				}
				r.Barrier()
				if r.ID() == 0 {
					end = r.Thread().Now()
				}
			})
			s.Add(float64(vec), end.Sub(start).Microseconds()/float64(iters))
		}
	}
	tab.Comment = "collective steps are the §5.3 early/late races; push-pull stays near the per-pattern best while three-phase pays its handshake on every exchange"
	return []*stats.Table{tab}
}

// LongVectorCollective runs iters of body on a fresh ranks-node
// switched COMP and reports the mean per-op virtual time plus the
// busiest node's transmitted wire bytes per op — the volume metric the
// bandwidth-optimal schedules are judged by (a balanced schedule has no
// hot node; a rooted tree concentrates full vectors on the root). The
// root bench2 rows and the longvector experiment share it.
func LongVectorCollective(ranks, iters int, body func(r *coll.Rank)) (perOp, maxTxPerOp float64) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = ranks
	cfg.UseSwitch = true
	cfg.Opts.PushedBufBytes = 64 << 10
	c := cluster.New(cfg)
	w := coll.NewWorld(c)
	var start, end sim.Time
	w.Run(func(r *coll.Rank) {
		r.Barrier()
		if r.ID() == 0 {
			start = r.Thread().Now()
		}
		for i := 0; i < iters; i++ {
			body(r)
		}
		r.Barrier()
		if r.ID() == 0 {
			end = r.Thread().Now()
		}
	})
	var maxTx uint64
	for _, st := range c.Stacks {
		if tx := st.NIC().TxBytes(); tx > maxTx {
			maxTx = tx
		}
	}
	return end.Sub(start).Microseconds() / float64(iters), float64(maxTx) / float64(iters)
}

// runLongVector characterizes the long-vector algorithms: the segmented
// ring Bcast (pipelined chain) against the plain store-and-forward
// ring, and the reduce-scatter + allgather AllReduce against the
// rooted tree, on an eight-node switched COMP.
func runLongVector(p Params) []*stats.Table {
	iters := p.Iters
	if iters > 10 {
		iters = 10 // every iteration moves hundreds of KB through the switch
	}
	const ranks = 8
	sizes := []int{16 << 10, 64 << 10, 256 << 10}

	bc := stats.NewTable(
		"Long-vector Bcast on 8 switched ranks: store-and-forward ring vs segmented (pipelined) ring",
		"vector(B)", "µs per bcast, mean over iterations")
	for _, v := range []struct {
		label string
		opts  []coll.Opt
	}{
		{"ring (store-and-forward)", []coll.Opt{coll.WithAlgorithm(coll.Ring)}},
		{"ring-seg (8 KiB segments)", []coll.Opt{coll.WithAlgorithm(coll.RingSegmented), coll.WithSegment(8192)}},
	} {
		s := bc.AddSeries(v.label)
		for _, n := range sizes {
			data := make([]byte, n)
			perOp, _ := LongVectorCollective(ranks, iters, func(r *coll.Rank) {
				var src []byte
				if r.ID() == 0 {
					src = data
				}
				r.Bcast(0, src, n, v.opts...)
			})
			s.Add(float64(n), perOp)
		}
	}
	bc.Comment = "segmentation keeps all 7 links busy at once: completion ~T(n) + 6·T(seg) instead of 7·T(n)"

	art := stats.NewTable(
		"Long-vector AllReduce on 8 switched ranks: rooted tree vs reduce-scatter + allgather",
		"vector(B)", "µs per allreduce, mean over iterations")
	arv := stats.NewTable(
		"Long-vector AllReduce volume: busiest node's transmitted wire bytes per operation",
		"vector(B)", "B per op at the hottest NIC")
	for _, v := range []struct {
		label string
		alg   coll.Algorithm
	}{
		{"tree (reduce+bcast)", coll.Tree},
		{"rs-ag (reduce-scatter+allgather)", coll.RSAG},
	} {
		st := art.AddSeries(v.label)
		sv := arv.AddSeries(v.label)
		for _, n := range sizes {
			alg := v.alg
			perOp, maxTx := LongVectorCollective(ranks, iters, func(r *coll.Rank) {
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(r.ID() + i)
				}
				r.AllReduce(data, coll.XorBytes, coll.WithAlgorithm(alg))
			})
			st.Add(float64(n), perOp)
			sv.Add(float64(n), maxTx)
		}
	}
	arv.Comment = "the tree's root moves ⌈log2 n⌉ full vectors each way; rs-ag moves 2·(n-1)/n of one vector per rank, evenly"
	return []*stats.Table{bc, art, arv}
}

// runScale measures an 8 KB ring allgather while the COMP grows — the
// multi-node scalability the paper's conclusion reaches toward.
func runScale(p Params) []*stats.Table {
	iters := p.Iters
	if iters > 30 {
		iters = 30
	}
	tab := stats.NewTable(
		"Scalability: 8 KB-per-rank ring allgather vs node count (store-and-forward switch)",
		"nodes", "µs per allgather, mean over iterations")
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushAll} {
		s := tab.AddSeries(mode.String())
		for _, nodes := range []int{2, 3, 4, 6} {
			cfg := cluster.DefaultConfig()
			cfg.Nodes = nodes
			cfg.UseSwitch = true
			cfg.Opts.Mode = mode
			cfg.Opts.PushedBufBytes = 64 << 10
			w := coll.NewWorld(cluster.New(cfg))
			var start, end sim.Time
			w.Run(func(r *coll.Rank) {
				data := make([]byte, 8192)
				r.Barrier()
				if r.ID() == 0 {
					start = r.Thread().Now()
				}
				for i := 0; i < iters; i++ {
					r.AllGather(data, 8192)
				}
				r.Barrier()
				if r.ID() == 0 {
					end = r.Thread().Now()
				}
			})
			s.Add(float64(nodes), end.Sub(start).Microseconds()/float64(iters))
		}
	}
	tab.Comment = "ring steps grow linearly with nodes; each step is bounded by the 100 Mbit/s wire, so the curve is near-linear until switch queues contend"
	return []*stats.Table{tab}
}
