package bench

import (
	"testing"

	"pushpull/internal/stats"
)

// TestRunExperimentsWorkerCount pins RunExperiments' guarantee: the
// rendered tables are identical for any worker count, and the streaming
// variant emits strictly in input order however completion interleaves.
func TestRunExperimentsWorkerCount(t *testing.T) {
	var exps []Experiment
	for _, id := range []string{"fig3", "btp2", "threephase"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	p := Params{Iters: 5}

	serial := RunExperiments(exps, p, 1)
	parallel := RunExperiments(exps, p, 4)
	if len(serial) != len(exps) || len(parallel) != len(exps) {
		t.Fatalf("result lengths %d/%d, want %d", len(serial), len(parallel), len(exps))
	}
	for i := range exps {
		if len(serial[i]) == 0 {
			t.Fatalf("experiment %s produced no tables", exps[i].ID)
		}
		if len(serial[i]) != len(parallel[i]) {
			t.Fatalf("experiment %s: %d tables serial vs %d parallel", exps[i].ID, len(serial[i]), len(parallel[i]))
		}
		for j := range serial[i] {
			if serial[i][j].Render() != parallel[i][j].Render() {
				t.Errorf("experiment %s table %d differs between 1 and 4 workers", exps[i].ID, j)
			}
		}
	}

	var order []int
	RunExperimentsStream(exps, p, 4, func(i int, tables []*stats.Table) {
		order = append(order, i)
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("stream emitted experiments in order %v, want input order", order)
		}
	}
}
