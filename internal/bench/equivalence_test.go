package bench

import (
	"math"
	"testing"

	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// The bench measurement primitives were refactored to run through the
// scenario engine (internal/scenario). The simulation is deterministic,
// so the refactor must not move a single number: these values were
// captured from the pre-refactor drivers at seed 1 and are pinned
// exactly. A diff here means the scenario patterns no longer execute
// the paper's measurement loops operation for operation.
func TestScenarioRefactorPreservesBenchNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("pinned-number equivalence is not meaningful at reduced iteration counts")
	}
	opts := pushpull.DefaultOptions()

	pin := func(name string, got, want float64) {
		t.Helper()
		// The values are deterministic; the tolerance only absorbs
		// last-bit float noise from summary arithmetic.
		if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %.9f, pre-refactor value was %.9f", name, got, want)
		}
	}

	w := Workload{Cluster: baseConfig(opts), Size: 1400, Iters: 100}
	pin("internode 1400B single-trip µs", SingleTrip(w).TrimmedMean, 158.484)

	o12 := pushpull.DefaultOptions()
	o12.PushedBufBytes = 12 << 10
	wi := Workload{Cluster: baseConfig(o12), Intra: true, Size: 10, Iters: 100}
	pin("intranode 10B single-trip µs", SingleTrip(wi).TrimmedMean, 7.169)

	wb := Workload{Cluster: baseConfig(opts), Size: 8192, Iters: 50}
	pin("internode 8192B bandwidth MB/s", Bandwidth(wb), 11.118078006)

	o4 := pushpull.DefaultOptions()
	o4.PushedBufBytes = 4096
	we := Workload{Cluster: baseConfig(o4), Size: 2048, Iters: 50}
	pin("early receiver 2048B µs", EarlyLate(we, 500_000, 100_000).TrimmedMean, 2720.123)
	pin("late receiver 2048B µs", EarlyLate(we, 100_000, 300_000).TrimmedMean, 1192.095)

	pa := pushpull.DefaultOptions()
	pa.Mode = pushpull.PushAll
	pa.PushedBufBytes = 4096
	wPA := Workload{Cluster: baseConfig(pa), Size: 3072, Iters: 1}
	pin("push-all 3072B one-shot recovery µs", OneShot(wPA, sim.Millisecond), 150347.881)
}
