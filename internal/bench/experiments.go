package bench

import (
	"fmt"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/stats"
	"pushpull/internal/vm"
)

// Params tunes an experiment run.
type Params struct {
	// Iters is the number of timed iterations per point; the paper used
	// 1000. Reduce for quicker runs.
	Iters int
}

// DefaultParams matches the paper's methodology.
func DefaultParams() Params { return Params{Iters: 1000} }

// Experiment is one reproducible artifact of the paper's evaluation.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes what the original reports, for side-by-side
	// reading.
	Paper string
	Run   func(p Params) []*stats.Table
}

// All lists every experiment, paper figures first, ablations after.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "fig3",
			Title: "Figure 3: intranode single-trip latency vs message size (pushed buffer 12 KB)",
			Paper: "7.5 µs minimum at 10 B; Push-All degrades abruptly around 4000 B; Push-Pull steady",
			Run:   runFig3,
		},
		{
			ID:    "fig4",
			Title: "Figure 4: internode latency under the three optimizing techniques (BTP(1)=80, BTP(2)=680)",
			Paper: "identical curves up to 760 B; beyond it full < overlap-only < mask-only < none",
			Run:   runFig4,
		},
		{
			ID:    "fig6-early",
			Title: "Figure 6 (left): early receiver test (x=500k, y=100k NOPs, pushed buffer 4 KB)",
			Paper: "Push-Zero constantly slower; Push-Pull and Push-All close, Push-Pull slightly ahead",
			Run:   runFig6Early,
		},
		{
			ID:    "fig6-late",
			Title: "Figure 6 (right): late receiver test (x=100k, y=300k NOPs, pushed buffer 4 KB)",
			Paper: "Push-All fastest below 3072 B then collapses (~150 ms via go-back-N); Push-Pull < Push-Zero throughout",
			Run:   runFig6Late,
		},
		{
			ID:    "btp2",
			Title: "§5.2 test 1: sweep BTP(2) with BTP(1)=0 (1400 B messages)",
			Paper: "latency falls as BTP(2) grows, bottoming out around 680 B",
			Run:   runBTP2,
		},
		{
			ID:    "btp1",
			Title: "§5.2 test 2: sweep BTP(1) with BTP(2)=680 (1400 B messages)",
			Paper: "small BTP(1) helps; beyond a threshold latency grows — 80 B chosen",
			Run:   runBTP1,
		},
		{
			ID:    "headline",
			Title: "Headline numbers (abstract / §5 / §6)",
			Paper: "intranode 7.5 µs & 350.9 MB/s; internode 34.9 µs & 12.1 MB/s; translation ~12-13 µs hidden",
			Run:   runHeadline,
		},
		{
			ID:    "ablation-interrupt",
			Title: "Ablation: reception-handler invocation method (§2 stage 3, §4.1)",
			Paper: "symmetric interrupt chosen for the optimized configuration",
			Run:   runAblationInterrupt,
		},
		{
			ID:    "ablation-trigger",
			Title: "Ablation: user-level NIC trigger vs kernel driver path (§4.3)",
			Paper: "user-level direct thread invocation required for translation masking",
			Run:   runAblationTrigger,
		},
		{
			ID:    "ablation-zerobuf",
			Title: "Ablation: cross-space zero buffer vs shared-segment double copy (§4.2)",
			Paper: "zero buffer eliminates one copy: bandwidth up, latency down intranode",
			Run:   runAblationZeroBuf,
		},
		{
			ID:    "multirail",
			Title: "Extension (§6 outlook): bandwidth scaling with multiple NICs per node",
			Paper: "future work in the paper: 'a more general mechanism to work with multiple network interfaces'",
			Run:   runMultiRail,
		},
		{
			ID:    "ablation-polling",
			Title: "Ablation: polling period vs internode latency (§2 stage 3)",
			Paper: "polling is lightweight but its frequency bounds responsiveness",
			Run:   runAblationPolling,
		},
		{
			ID:    "ablation-pullcpu",
			Title: "Ablation: pull phase on least-loaded CPU vs receiver's CPU (§4.1)",
			Paper: "offloaded pull overlaps communication with computation on other processors",
			Run:   runAblationPullCPU,
		},
		{
			ID:    "threephase",
			Title: "Baseline: classical three-phase handshake protocol vs Push-Pull (§1)",
			Paper: "three-phase 'introduced a significant amount of overheads during the handshaking phase'",
			Run:   runThreePhase,
		},
		{
			ID:    "ablation-loss",
			Title: "Ablation: frame loss rate vs latency and bandwidth (go-back-N recovery, §5.3/[10])",
			Paper: "the implemented go-back-n reliable protocol resumes transmission after drops",
			Run:   runAblationLoss,
		},
		{
			ID:    "hub",
			Title: "Ablation: back-to-back vs switch vs shared-medium hub",
			Paper: "the testbed uses back-to-back Fast Ethernet; a hub halves the wire and collides acks with data",
			Run:   runHub,
		},
		{
			ID:    "adaptive",
			Title: "Extension: adaptive AIMD BTP controller (§3 dynamic pushed-buffer remark)",
			Paper: "applications can dynamically change the size of the pushed buffer to adapt to the runtime environment",
			Run:   runAdaptive,
		},
		{
			ID:    "collective",
			Title: "Application layer: 4-node allreduce across messaging modes",
			Paper: "the compute-then-communicate pattern of §5.3, lifted to whole collectives",
			Run:   runCollective,
		},
		{
			ID:    "scale",
			Title: "Scalability: ring allgather vs node count over a switch",
			Paper: "beyond the paper's two-node testbed; its conclusion asks for multi-interface, multi-node scaling",
			Run:   runScale,
		},
		{
			ID:    "longvector",
			Title: "Long vectors: segmented ring Bcast and reduce-scatter+allgather AllReduce (8 ranks)",
			Paper: "beyond the paper: bandwidth-optimal schedules keep every link busy once transfers dwarf per-hop latency",
			Run:   runLongVector,
		},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// baseConfig is the paper's testbed with protocol options opts.
func baseConfig(opts pushpull.Options) cluster.Config {
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	return cfg
}

// fig3Sizes includes the paper's x points plus fill-in sizes around the
// Push-All cliff.
var fig3Sizes = []int{10, 500, 1000, 2000, 3000, 3500, 4000, 4500, 5000, 6000, 7000, 8192}

func runFig3(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Figure 3: intranode single-trip mean latency, pushed buffer 12 KB",
		"size(B)", "single-trip µs, middle-80% mean")
	for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
		s := tab.AddSeries(mode.String())
		for _, n := range fig3Sizes {
			opts := pushpull.DefaultOptions()
			opts.Mode = mode
			opts.PushedBufBytes = 12 << 10
			w := Workload{Cluster: baseConfig(opts), Intra: true, Size: n, Iters: p.Iters}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}
	return []*stats.Table{tab}
}

// fig4Variant describes one optimization combination of Figure 4.
type fig4Variant struct {
	label   string
	mask    bool
	overlap bool
}

func fig4Variants() []fig4Variant {
	return []fig4Variant{
		{"no-optimization", false, false},
		{"mask-only", true, false},
		{"overlap-only", false, true},
		{"full-optimization", true, true},
	}
}

func fig4Options(v fig4Variant) pushpull.Options {
	opts := pushpull.DefaultOptions()
	opts.MaskTranslation = v.mask
	// Masking requires (and implies) the user-level trigger; the other
	// variants go through the kernel driver path.
	opts.UserTrigger = v.mask
	opts.OverlapAck = v.overlap
	return opts
}

var fig4Sizes = []int{4, 100, 200, 400, 600, 760, 800, 1000, 1200, 1400}

func runFig4(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Figure 4: internode single-trip mean latency under optimizing techniques",
		"size(B)", "single-trip µs, middle-80% mean")
	for _, v := range fig4Variants() {
		s := tab.AddSeries(v.label)
		for _, n := range fig4Sizes {
			w := Workload{Cluster: baseConfig(fig4Options(v)), Size: n, Iters: p.Iters}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}
	return []*stats.Table{tab}
}

var fig6Sizes = []int{4, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192}

// Early/late receiver NOP counts (paper §5.3).
const (
	earlyX, earlyY = 500_000, 100_000
	lateX, lateY   = 100_000, 300_000
)

func runFig6(p Params, x, y int64, what string) []*stats.Table {
	tab := stats.NewTable(
		fmt.Sprintf("Figure 6 (%s receiver): compute-then-communicate ping-pong, pushed buffer 4 KB", what),
		"size(B)", "single-trip µs, middle-80% mean")
	iters := p.Iters
	if iters > 200 {
		// Each iteration burns milliseconds of virtual compute (and the
		// Push-All collapse hundreds of ms); 200 iterations already give
		// a stable trimmed mean in a noise-free simulation.
		iters = 200
	}
	for _, mode := range []pushpull.Mode{pushpull.PushZero, pushpull.PushPull, pushpull.PushAll} {
		s := tab.AddSeries(mode.String())
		for _, n := range fig6Sizes {
			opts := pushpull.DefaultOptions()
			opts.Mode = mode
			opts.PushedBufBytes = 4096
			w := Workload{Cluster: baseConfig(opts), Size: n, Iters: iters}
			s.Add(float64(n), EarlyLate(w, x, y).TrimmedMean)
		}
	}
	return []*stats.Table{tab}
}

func runFig6Early(p Params) []*stats.Table { return runFig6(p, earlyX, earlyY, "early") }
func runFig6Late(p Params) []*stats.Table  { return runFig6(p, lateX, lateY, "late") }

func runBTP2(p Params) []*stats.Table {
	tab := stats.NewTable(
		"BTP(2) sweep at BTP(1)=0, 1400 B messages (overlap only)",
		"BTP2(B)", "single-trip µs, middle-80% mean")
	s := tab.AddSeries("push-pull")
	for btp2 := 0; btp2 <= 1400; btp2 += 100 {
		opts := pushpull.DefaultOptions()
		opts.BTP1 = 0
		opts.BTP2 = btp2
		opts.BTP = btp2
		w := Workload{Cluster: baseConfig(opts), Size: 1400, Iters: p.Iters}
		s.Add(float64(btp2), SingleTrip(w).TrimmedMean)
	}
	tab.Comment = fmt.Sprintf("paper picks BTP(2)=680; this run's minimum is at %g", argminX(s))
	return []*stats.Table{tab}
}

func runBTP1(p Params) []*stats.Table {
	tab := stats.NewTable(
		"BTP(1) sweep at BTP(2)=680, 1400 B messages",
		"BTP1(B)", "single-trip µs, middle-80% mean")
	s := tab.AddSeries("push-pull")
	for btp1 := 0; btp1 <= 400; btp1 += 20 {
		opts := pushpull.DefaultOptions()
		opts.BTP1 = btp1
		opts.BTP2 = 680
		opts.BTP = btp1 + 680
		w := Workload{Cluster: baseConfig(opts), Size: 1400, Iters: p.Iters}
		s.Add(float64(btp1), SingleTrip(w).TrimmedMean)
	}
	tab.Comment = fmt.Sprintf("paper picks BTP(1)=80; this run's minimum is at %g", argminX(s))
	return []*stats.Table{tab}
}

func argminX(s *stats.Series) float64 {
	bestX, bestY := 0.0, 0.0
	for i, pt := range s.Points {
		if i == 0 || pt.Y < bestY {
			bestX, bestY = pt.X, pt.Y
		}
	}
	return bestX
}

func runHeadline(p Params) []*stats.Table {
	tab := stats.NewTable("Headline numbers: paper vs this reproduction", "row", "value")
	paper := tab.AddSeries("paper")
	ours := tab.AddSeries("measured")
	row := 0
	add := func(name string, paperVal, ourVal float64) {
		tab.Comment += fmt.Sprintf("row %d: %s; ", row, name)
		paper.Add(float64(row), paperVal)
		ours.Add(float64(row), ourVal)
		row++
	}

	intra := pushpull.DefaultOptions()
	intra.PushedBufBytes = 12 << 10
	wIntra := Workload{Cluster: baseConfig(intra), Intra: true, Size: 10, Iters: p.Iters}
	add("intranode 10B single-trip µs", 7.5, SingleTrip(wIntra).TrimmedMean)

	peakIntra := 0.0
	for _, n := range []int{2000, 4000, 8192, 16384} {
		w := Workload{Cluster: baseConfig(intra), Intra: true, Size: n, Iters: p.Iters / 4}
		if bw := Bandwidth(w); bw > peakIntra {
			peakIntra = bw
		}
	}
	add("intranode peak bandwidth MB/s", 350.9, peakIntra)

	inter := pushpull.DefaultOptions()
	wInter := Workload{Cluster: baseConfig(inter), Size: 4, Iters: p.Iters}
	add("internode 4B single-trip µs", 34.9, SingleTrip(wInter).TrimmedMean)

	peakInter := 0.0
	for _, n := range []int{16384, 65536} {
		w := Workload{Cluster: baseConfig(inter), Size: n, Iters: p.Iters / 10}
		if bw := Bandwidth(w); bw > peakInter {
			peakInter = bw
		}
	}
	add("internode peak bandwidth MB/s", 12.1, peakInter)

	space := vm.NewAddressSpace("probe", vm.NewFrameAllocator(1<<24), vm.DefaultCostModel())
	addr := space.Alloc(64 << 10)
	add("address translation of a 64KB message µs (paper: ~12-13 hidden by masking)",
		12.5, space.TranslateCost(addr, 64<<10).Microseconds())

	pa := pushpull.DefaultOptions()
	pa.Mode = pushpull.PushAll
	pa.PushedBufBytes = 4096
	wPA := Workload{Cluster: baseConfig(pa), Size: 3072, Iters: 1}
	add("push-all late-receiver 3072B recovery ms (paper: ~150)",
		150, OneShot(wPA, sim.Duration(sim.Millisecond))/1000)

	return []*stats.Table{tab}
}

func runAblationInterrupt(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Ablation: internode single-trip latency by handler invocation method",
		"size(B)", "single-trip µs, middle-80% mean")
	type pol struct {
		label  string
		policy smp.Policy
	}
	for _, pc := range []pol{{"symmetric", smp.Symmetric}, {"asymmetric-cpu0", smp.Asymmetric}, {"polling-5us", smp.Polling}} {
		s := tab.AddSeries(pc.label)
		for _, n := range []int{4, 760, 1400, 8192} {
			cfg := baseConfig(pushpull.DefaultOptions())
			cfg.Policy = pc.policy
			cfg.PolicyTarget = 0
			w := Workload{Cluster: cfg, Size: n, Iters: p.Iters / 2}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}
	return []*stats.Table{tab}
}

func runAblationTrigger(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Ablation: user-level trigger vs kernel driver transmit path (masking off to isolate)",
		"size(B)", "single-trip µs, middle-80% mean")
	for _, user := range []bool{true, false} {
		label := "kernel-trigger"
		if user {
			label = "user-trigger"
		}
		s := tab.AddSeries(label)
		for _, n := range []int{4, 200, 760, 1400} {
			opts := pushpull.DefaultOptions()
			opts.UserTrigger = user
			opts.MaskTranslation = false
			w := Workload{Cluster: baseConfig(opts), Size: n, Iters: p.Iters / 2}
			s.Add(float64(n), SingleTrip(w).TrimmedMean)
		}
	}
	return []*stats.Table{tab}
}

func runAblationZeroBuf(p Params) []*stats.Table {
	lat := stats.NewTable(
		"Ablation: intranode latency, zero buffer vs shared-segment double copy",
		"size(B)", "single-trip µs, middle-80% mean")
	bw := stats.NewTable(
		"Ablation: intranode bandwidth, zero buffer vs shared-segment double copy",
		"size(B)", "MB/s")
	for _, zero := range []bool{true, false} {
		label := "double-copy"
		if zero {
			label = "zero-buffer"
		}
		sl := lat.AddSeries(label)
		sb := bw.AddSeries(label)
		opts := pushpull.DefaultOptions()
		opts.DisableZeroBuffer = !zero
		opts.PushedBufBytes = 64 << 10
		for _, n := range []int{1000, 4000, 8192, 16384} {
			w := Workload{Cluster: baseConfig(opts), Intra: true, Size: n, Iters: p.Iters / 2}
			sl.Add(float64(n), SingleTrip(w).TrimmedMean)
			sb.Add(float64(n), Bandwidth(w))
		}
	}
	return []*stats.Table{lat, bw}
}

// runAblationPullCPU measures how much a co-scheduled computation slows
// down when the intranode pull threads run on its CPU instead of an idle
// one: the §4.1 overlap argument, quantified.
func runAblationPullCPU(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Ablation: compute slowdown from pull placement (100 x 8 KB messages during a 10 ms computation)",
		"row", "worker completion ms")
	labels := []string{"least-loaded", "receiver-cpu"}
	tab.Comment = "row 0: worker co-located with the receiving process (CPU 1)"
	for _, label := range labels {
		s := tab.AddSeries(label)
		opts := pushpull.DefaultOptions()
		opts.PushedBufBytes = 64 << 10
		opts.PullLocal = label == "receiver-cpu"
		cfg := baseConfig(opts)
		cfg.Nodes = 1
		cfg.ProcsPerNode = 2
		c := cluster.New(cfg)
		a, b := c.Endpoint(0, 0), c.Endpoint(0, 1)
		const msgs = 100
		const msgSize = 8192
		src, dst := a.Alloc(msgSize), b.Alloc(msgSize)
		payload := make([]byte, msgSize)
		c.Spawn(0, a.CPU, "sender", func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				must(a.Send(t, b.ID, src, payload))
			}
		})
		c.Spawn(0, b.CPU, "receiver", func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := b.Recv(t, a.ID, dst, msgSize)
				must(err)
			}
		})
		var workerDone sim.Time
		// The worker shares CPU 1 with the receiving process.
		c.Spawn(0, b.CPU, "worker", func(t *smp.Thread) {
			t.Compute(2_000_000) // 10 ms at 200 MHz
			workerDone = t.Now()
		})
		c.Run()
		s.Add(0, sim.Duration(workerDone).Microseconds()/1000)
	}
	return []*stats.Table{tab}
}

// runMultiRail measures internode bandwidth at 64 KB messages with 1-4
// NICs per node, demonstrating the §6 extension: fragments stripe across
// rails, so aggregate bandwidth approaches rails x 12.1 MB/s.
func runMultiRail(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Extension: internode bandwidth vs NIC rails (64 KB messages)",
		"rails", "MB/s")
	s := tab.AddSeries("push-pull")
	for rails := 1; rails <= 4; rails++ {
		opts := pushpull.DefaultOptions()
		opts.PushedBufBytes = 64 << 10
		cfg := baseConfig(opts)
		cfg.Rails = rails
		w := Workload{Cluster: cfg, Size: 64 << 10, Iters: p.Iters / 20}
		s.Add(float64(rails), Bandwidth(w))
	}
	return []*stats.Table{tab}
}

// runAblationPolling sweeps the polling period: short periods approach
// (and beat) interrupt latency at the cost of a busy processor; long
// periods quantize every frame arrival up to the period.
func runAblationPolling(p Params) []*stats.Table {
	tab := stats.NewTable(
		"Ablation: internode 4 B single-trip latency vs reception method",
		"poll period µs (0 = symmetric interrupt)", "single-trip µs, middle-80% mean")
	s := tab.AddSeries("latency")
	// Baseline: symmetric interrupts.
	base := baseConfig(pushpull.DefaultOptions())
	w := Workload{Cluster: base, Size: 4, Iters: p.Iters / 2}
	s.Add(0, SingleTrip(w).TrimmedMean)
	for _, period := range []sim.Duration{1, 2, 5, 10, 20, 50} {
		cfg := baseConfig(pushpull.DefaultOptions())
		cfg.Policy = smp.Polling
		cfg.SMP.PollPeriod = period * sim.Microsecond
		w := Workload{Cluster: cfg, Size: 4, Iters: p.Iters / 2}
		s.Add(float64(period), SingleTrip(w).TrimmedMean)
	}
	return []*stats.Table{tab}
}
