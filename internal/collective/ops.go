package collective

import "fmt"

// Op combines two reduction operands into one. Ops must be associative
// and commutative (the tree and recursive-doubling algorithms reorder
// combinations freely) and must not retain their arguments.
type Op func(a, b []byte) []byte

// Barrier blocks until every rank has entered it (dissemination
// algorithm: ceil(log2 n) rounds of token exchange).
func (r *Rank) Barrier() {
	size := r.Size()
	token := []byte{1}
	for k := 1; k < size; k <<= 1 {
		to := (r.id + k) % size
		from := (r.id - k + size) % size
		r.SendRecv(to, token, from, 1)
	}
}

// Bcast distributes root's data to every rank over a binomial tree and
// returns the received copy (root returns data itself). Every rank must
// pass the same n, the message length; non-root ranks may pass nil data.
func (r *Rank) Bcast(root int, data []byte, n int) []byte {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("collective: bcast root %d out of range", root))
	}
	if r.id == root && len(data) != n {
		panic(fmt.Sprintf("collective: bcast root has %d bytes, promised %d", len(data), n))
	}
	rel := (r.id - root + size) % size
	abs := func(relrank int) int { return (relrank + root) % size }

	// Climb the mask until this rank's receive level is found.
	mask := 1
	for mask < size {
		if rel&mask != 0 {
			data = r.Recv(abs(rel-mask), n)
			break
		}
		mask <<= 1
	}
	// Fan out to the subtree below that level.
	mask >>= 1
	for mask > 0 {
		if rel+mask < size {
			r.Send(abs(rel+mask), data)
		}
		mask >>= 1
	}
	return data
}

// Reduce combines every rank's data with op over a binomial tree; the
// result lands on root (other ranks return nil). All contributions must
// have the same length.
func (r *Rank) Reduce(root int, data []byte, op Op) []byte {
	size := r.Size()
	if root < 0 || root >= size {
		panic(fmt.Sprintf("collective: reduce root %d out of range", root))
	}
	n := len(data)
	rel := (r.id - root + size) % size
	abs := func(relrank int) int { return (relrank + root) % size }

	acc := append([]byte(nil), data...)
	for mask := 1; mask < size; mask <<= 1 {
		if rel&mask != 0 {
			r.Send(abs(rel-mask), acc)
			return nil
		}
		if rel+mask < size {
			acc = op(acc, r.Recv(abs(rel+mask), n))
		}
	}
	if r.id != root {
		return nil
	}
	return acc
}

// AllReduce combines every rank's data with op and returns the result on
// every rank, via reduce-to-zero plus broadcast. See AllReduceRD for the
// recursive-doubling alternative benchmarked against it.
func (r *Rank) AllReduce(data []byte, op Op) []byte {
	res := r.Reduce(0, data, op)
	return r.Bcast(0, res, len(data))
}

// AllReduceRD is allreduce by recursive doubling: log2(n) bidirectional
// exchange rounds, with the standard fold-in/fold-out fixup for
// non-power-of-two world sizes. Latency-optimal for short vectors, and
// the classic victim of ack-latency — which is why it makes a good
// showcase for Push-and-Acknowledge Overlapping.
func (r *Rank) AllReduceRD(data []byte, op Op) []byte {
	size := r.Size()
	n := len(data)
	acc := append([]byte(nil), data...)

	pof2 := 1
	for pof2*2 <= size {
		pof2 *= 2
	}
	rem := size - pof2

	// Fold the surplus ranks into their even partners.
	newID := -1
	switch {
	case r.id < 2*rem && r.id%2 == 0:
		r.Send(r.id+1, acc)
		// This rank sits out the doubling and gets the result afterward.
	case r.id < 2*rem:
		acc = op(acc, r.Recv(r.id-1, n))
		newID = r.id / 2
	default:
		newID = r.id - rem
	}

	if newID >= 0 {
		for mask := 1; mask < pof2; mask <<= 1 {
			peerNew := newID ^ mask
			peer := peerNew + rem
			if peerNew < rem {
				peer = peerNew*2 + 1
			}
			acc = op(acc, r.SendRecv(peer, acc, peer, n))
		}
	}

	// Unfold: partners return the final result to the ranks that sat out.
	if r.id < 2*rem {
		if r.id%2 == 0 {
			acc = r.Recv(r.id+1, n)
		} else {
			r.Send(r.id-1, acc)
		}
	}
	return acc
}

// Gather collects every rank's data on root, which returns the
// contributions indexed by rank (other ranks return nil). All
// contributions must have length n.
func (r *Rank) Gather(root int, data []byte, n int) [][]byte {
	size := r.Size()
	if r.id != root {
		r.Send(root, data)
		return nil
	}
	out := make([][]byte, size)
	out[r.id] = append([]byte(nil), data...)
	// Receive in rank order; FIFO channels make this deterministic.
	for from := 0; from < size; from++ {
		if from == root {
			continue
		}
		out[from] = r.Recv(from, n)
	}
	return out
}

// Scatter distributes root's per-rank chunks; every rank returns its own
// chunk. Every rank must pass the same n, the chunk length; non-root
// ranks may pass nil chunks.
func (r *Rank) Scatter(root int, chunks [][]byte, n int) []byte {
	size := r.Size()
	if r.id == root {
		if len(chunks) != size {
			panic(fmt.Sprintf("collective: scatter root has %d chunks for %d ranks", len(chunks), size))
		}
		for to := 0; to < size; to++ {
			if to != root {
				r.Send(to, chunks[to])
			}
		}
		return append([]byte(nil), chunks[root]...)
	}
	return r.Recv(root, n)
}

// AllGather collects every rank's n-byte contribution on every rank
// (ring algorithm: size-1 neighbour exchanges, bandwidth-optimal).
func (r *Rank) AllGather(data []byte, n int) [][]byte {
	size := r.Size()
	out := make([][]byte, size)
	out[r.id] = append([]byte(nil), data...)
	right := (r.id + 1) % size
	left := (r.id - 1 + size) % size
	blk := r.id // whose block travels out of this rank this step
	for step := 1; step < size; step++ {
		got := r.SendRecv(right, out[blk], left, n)
		blk = (blk - 1 + size) % size // the block that just arrived
		out[blk] = got
	}
	return out
}

// AllToAll sends blocks[j] to rank j and returns the blocks received,
// indexed by source rank. All blocks must have length n. The rotation
// schedule pairs distinct partners each step, so no two messages to the
// same destination ever contend.
func (r *Rank) AllToAll(blocks [][]byte, n int) [][]byte {
	size := r.Size()
	if len(blocks) != size {
		panic(fmt.Sprintf("collective: alltoall has %d blocks for %d ranks", len(blocks), size))
	}
	out := make([][]byte, size)
	out[r.id] = append([]byte(nil), blocks[r.id]...)
	for step := 1; step < size; step++ {
		dst := (r.id + step) % size
		src := (r.id - step + size) % size
		out[src] = r.SendRecv(dst, blocks[dst], src, n)
	}
	return out
}
