package collective

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// newWorld builds a world of nodes×procs ranks in the given mode.
func newWorld(nodes, procs int, mode pushpull.Mode) *World {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.ProcsPerNode = procs
	cfg.Opts.Mode = mode
	cfg.Opts.PushedBufBytes = 64 << 10
	return NewWorld(cluster.New(cfg))
}

// fill builds rank-specific payloads.
func fill(rank, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rank*131 + i*7)
	}
	return b
}

func TestWorldSizeAndMapping(t *testing.T) {
	w := newWorld(2, 3, pushpull.PushPull)
	if w.Size() != 6 {
		t.Fatalf("Size = %d, want 6", w.Size())
	}
	// Node-major: ranks 0-2 on node 0, ranks 3-5 on node 1.
	seen := make(map[int][2]int)
	w.Run(func(r *Rank) {
		seen[r.ID()] = [2]int{r.Comm().ID().Node, r.Comm().ID().Proc}
	})
	for rank := 0; rank < 6; rank++ {
		want := [2]int{rank / 3, rank % 3}
		if seen[rank] != want {
			t.Errorf("rank %d on %v, want %v", rank, seen[rank], want)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, shape := range [][2]int{{2, 1}, {2, 2}, {3, 1}, {4, 2}} {
		w := newWorld(shape[0], shape[1], pushpull.PushPull)
		size := w.Size()
		enter := make([]sim.Time, size)
		exit := make([]sim.Time, size)
		w.Run(func(r *Rank) {
			// Stagger arrivals so the barrier has real work to do.
			r.Compute(int64(r.ID()) * 50_000)
			enter[r.ID()] = r.Thread().Now()
			r.Barrier()
			exit[r.ID()] = r.Thread().Now()
		})
		var maxEnter, minExit sim.Time
		minExit = 1 << 62
		for i := 0; i < size; i++ {
			if enter[i] > maxEnter {
				maxEnter = enter[i]
			}
			if exit[i] < minExit {
				minExit = exit[i]
			}
		}
		if minExit < maxEnter {
			t.Errorf("%dx%d: rank left the barrier at %v before the last arrival at %v",
				shape[0], shape[1], minExit, maxEnter)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const n = 3000
	w := newWorld(3, 2, pushpull.PushPull)
	size := w.Size()
	for root := 0; root < size; root++ {
		w := newWorld(3, 2, pushpull.PushPull)
		payload := fill(root, n)
		got := make([][]byte, size)
		w.Run(func(r *Rank) {
			var data []byte
			if r.ID() == root {
				data = payload
			}
			got[r.ID()] = r.Bcast(root, data, n)
		})
		for i := 0; i < size; i++ {
			if !bytes.Equal(got[i], payload) {
				t.Errorf("root %d: rank %d received wrong data", root, i)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	const elems = 64
	w := newWorld(2, 2, pushpull.PushPull)
	size := w.Size()
	var res []byte
	w.Run(func(r *Rank) {
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(r.ID()*1000 + i)
		}
		if out := r.Reduce(1, FromInt64s(vals), SumInt64); r.ID() == 1 {
			res = out
		} else if out != nil {
			t.Errorf("non-root rank %d got a reduce result", r.ID())
		}
	})
	got := Int64s(res)
	for i := 0; i < elems; i++ {
		var want int64
		for rank := 0; rank < size; rank++ {
			want += int64(rank*1000 + i)
		}
		if got[i] != want {
			t.Fatalf("element %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestAllReduceBothAlgorithmsAgree(t *testing.T) {
	// Include non-power-of-two world sizes: the recursive-doubling
	// fold-in/fold-out fixup is the part worth testing.
	for _, shape := range [][2]int{{2, 1}, {3, 1}, {2, 2}, {5, 1}, {3, 2}, {4, 2}} {
		shape := shape
		t.Run(fmt.Sprintf("%dx%d", shape[0], shape[1]), func(t *testing.T) {
			const elems = 16
			run := func(rd bool) [][]byte {
				w := newWorld(shape[0], shape[1], pushpull.PushPull)
				out := make([][]byte, w.Size())
				w.Run(func(r *Rank) {
					vals := make([]int64, elems)
					for i := range vals {
						vals[i] = int64((r.ID() + 1) * (i + 1))
					}
					if rd {
						out[r.ID()] = r.AllReduceRD(FromInt64s(vals), SumInt64)
					} else {
						out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64)
					}
				})
				return out
			}
			tree := run(false)
			rd := run(true)
			size := len(tree)
			var want []int64
			{
				want = make([]int64, elems)
				for i := range want {
					for rank := 0; rank < size; rank++ {
						want[i] += int64((rank + 1) * (i + 1))
					}
				}
			}
			for rank := 0; rank < size; rank++ {
				tv, rv := Int64s(tree[rank]), Int64s(rd[rank])
				for i := 0; i < elems; i++ {
					if tv[i] != want[i] {
						t.Fatalf("tree rank %d elem %d = %d, want %d", rank, i, tv[i], want[i])
					}
					if rv[i] != want[i] {
						t.Fatalf("RD rank %d elem %d = %d, want %d", rank, i, rv[i], want[i])
					}
				}
			}
		})
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const n = 500
	w := newWorld(2, 2, pushpull.PushPull)
	size := w.Size()
	const root = 2
	var gathered [][]byte
	scattered := make([][]byte, size)
	w.Run(func(r *Rank) {
		// Gather everyone's block on root, then scatter it back.
		g := r.Gather(root, fill(r.ID(), n), n)
		if r.ID() == root {
			gathered = g
		}
		scattered[r.ID()] = r.Scatter(root, g, n)
	})
	for i := 0; i < size; i++ {
		if !bytes.Equal(gathered[i], fill(i, n)) {
			t.Errorf("gather: block %d wrong", i)
		}
		if !bytes.Equal(scattered[i], fill(i, n)) {
			t.Errorf("scatter: rank %d got wrong block back", i)
		}
	}
}

func TestAllGather(t *testing.T) {
	const n = 700
	for _, shape := range [][2]int{{2, 1}, {3, 1}, {2, 2}, {3, 2}} {
		w := newWorld(shape[0], shape[1], pushpull.PushPull)
		size := w.Size()
		out := make([][][]byte, size)
		w.Run(func(r *Rank) {
			out[r.ID()] = r.AllGather(fill(r.ID(), n), n)
		})
		for rank := 0; rank < size; rank++ {
			for i := 0; i < size; i++ {
				if !bytes.Equal(out[rank][i], fill(i, n)) {
					t.Errorf("%dx%d: rank %d block %d wrong", shape[0], shape[1], rank, i)
				}
			}
		}
	}
}

func TestAllToAllTransposes(t *testing.T) {
	const n = 256
	w := newWorld(3, 1, pushpull.PushPull)
	size := w.Size()
	block := func(from, to int) []byte { return fill(from*size+to, n) }
	out := make([][][]byte, size)
	w.Run(func(r *Rank) {
		blocks := make([][]byte, size)
		for to := 0; to < size; to++ {
			blocks[to] = block(r.ID(), to)
		}
		out[r.ID()] = r.AllToAll(blocks, n)
	})
	for rank := 0; rank < size; rank++ {
		for from := 0; from < size; from++ {
			if !bytes.Equal(out[rank][from], block(from, rank)) {
				t.Errorf("rank %d: block from %d wrong", rank, from)
			}
		}
	}
}

// Collectives run unchanged on every messaging mode, including the
// synchronous three-phase baseline (the nonblocking ring primitive is
// what keeps them deadlock-free).
func TestCollectivesAcrossModes(t *testing.T) {
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		w := newWorld(2, 2, mode)
		size := w.Size()
		out := make([][]byte, size)
		w.Run(func(r *Rank) {
			r.Barrier()
			vals := []int64{int64(r.ID()), 7}
			out[r.ID()] = r.AllReduce(FromInt64s(vals), SumInt64)
			r.Barrier()
		})
		want := int64(size * (size - 1) / 2)
		for rank := 0; rank < size; rank++ {
			got := Int64s(out[rank])
			if got[0] != want || got[1] != int64(7*size) {
				t.Errorf("mode %v rank %d: allreduce = %v", mode, rank, got)
			}
		}
	}
}

// Property: XOR-allreduce of arbitrary contributions equals the XOR of
// them all, on every rank, for arbitrary world shapes and both
// algorithms.
func TestAllReduceXorProperty(t *testing.T) {
	f := func(nodes, procs uint8, vecLen uint8, seed byte, rd bool) bool {
		nn := int(nodes)%3 + 1 // 1..3 nodes
		pp := int(procs)%2 + 1 // 1..2 procs
		if nn == 1 && pp == 1 {
			pp = 2
		}
		n := (int(vecLen)%32 + 1) * 8
		w := newWorld(nn, pp, pushpull.PushPull)
		size := w.Size()
		want := make([]byte, n)
		inputs := make([][]byte, size)
		for rank := 0; rank < size; rank++ {
			inputs[rank] = fill(rank+int(seed), n)
			want = XorBytes(want, inputs[rank])
		}
		out := make([][]byte, size)
		w.Run(func(r *Rank) {
			if rd {
				out[r.ID()] = r.AllReduceRD(inputs[r.ID()], XorBytes)
			} else {
				out[r.ID()] = r.AllReduce(inputs[r.ID()], XorBytes)
			}
		})
		for rank := 0; rank < size; rank++ {
			if !bytes.Equal(out[rank], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBcastRootValidation(t *testing.T) {
	w := newWorld(2, 1, pushpull.PushPull)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range root did not panic")
		}
	}()
	w.Run(func(r *Rank) {
		r.Bcast(99, nil, 8)
	})
}
