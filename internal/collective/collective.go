// Package collective implements MPI-style collective operations —
// barrier, broadcast, reduce, allreduce, scatter, gather, allgather,
// all-to-all — on top of the public comm API.
//
// The paper positions Push-Pull as the messaging layer for parallel
// programs on COMPs ("a typical compute-then-communicate parallel
// program", §5.3); this package is that program layer: the collectives a
// real application would call, built purely from the point-to-point
// public API (comm.Send/Recv/Isend/Irecv), with the classic algorithms
// of the era — binomial trees, recursive doubling, rings. Collectives
// therefore inherit whatever messaging mode the cluster is configured
// with, which is what makes mode ablations at the application level
// possible.
package collective

import (
	"fmt"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// World maps collective ranks onto the processes of a cluster,
// node-major: rank r is process r%procs on node r/procs.
type World struct {
	c     *cluster.Cluster
	ranks []*comm.Comm
}

// NewWorld builds the rank space over every process of the cluster.
func NewWorld(c *cluster.Cluster) *World {
	w := &World{c: c}
	for n := range c.Stacks {
		p := 0
		for {
			ep := c.Stacks[n].Endpoint(p)
			if ep == nil {
				break
			}
			w.ranks = append(w.ranks, comm.Attach(ep))
			p++
		}
	}
	if len(w.ranks) == 0 {
		panic("collective: cluster has no endpoints")
	}
	return w
}

// Size reports the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Cluster returns the underlying cluster.
func (w *World) Cluster() *cluster.Cluster { return w.c }

// Run starts one thread per rank executing body and drives the
// simulation until every rank returns, returning the final virtual time.
// It panics if any rank's collective fails: collectives are programming
// errors when they fail, not runtime conditions.
func (w *World) Run(body func(r *Rank)) sim.Time {
	for i, cm := range w.ranks {
		r := &Rank{w: w, id: i, cm: cm}
		id := cm.ID()
		node := w.c.Nodes[id.Node]
		node.Spawn(fmt.Sprintf("rank%d", i), cm.Endpoint().CPU, func(t *smp.Thread) {
			r.t = t
			body(r)
		})
	}
	return w.c.Run()
}

// Rank is one process's handle inside a running World. All methods must
// be called from the rank's own thread (inside the Run body).
type Rank struct {
	w  *World
	id int
	cm *comm.Comm
	t  *smp.Thread
}

// ID reports this rank's number; Size the world size.
func (r *Rank) ID() int   { return r.id }
func (r *Rank) Size() int { return r.w.Size() }

// Thread exposes the rank's thread for application compute phases.
func (r *Rank) Thread() *smp.Thread { return r.t }

// Comm exposes the rank's messaging handle for point-to-point calls
// beyond the collective vocabulary.
func (r *Rank) Comm() *comm.Comm { return r.cm }

// Compute burns application cycles (the paper's NOP loops).
func (r *Rank) Compute(cycles int64) { r.t.Compute(cycles) }

// peer returns rank to's process identity.
func (r *Rank) peer(to int) comm.ProcessID { return r.w.ranks[to].ID() }

// Send transmits data to rank to (blocking, like comm.Send: returns
// when the local send completes).
func (r *Rank) Send(to int, data []byte) {
	if err := r.cm.Send(r.t, r.peer(to), data); err != nil {
		panic(fmt.Sprintf("collective: rank %d send to %d: %v", r.id, to, err))
	}
}

// Isend starts a nonblocking send to rank to.
func (r *Rank) Isend(to int, data []byte) *comm.Op {
	return r.cm.Isend(r.t, r.peer(to), data)
}

// Recv blocks until the next message from rank from arrives and returns
// its bytes. n bounds the expected size.
func (r *Rank) Recv(from, n int) []byte {
	b, err := r.cm.Recv(r.t, r.peer(from), n)
	if err != nil {
		panic(fmt.Sprintf("collective: rank %d recv from %d: %v", r.id, from, err))
	}
	return b
}

// Irecv starts a nonblocking receive of up to n bytes from rank from.
func (r *Rank) Irecv(from, n int) *comm.Op {
	return r.cm.Irecv(r.t, r.peer(from), n)
}

// SendRecv exchanges messages with two peers concurrently (send to one,
// receive from the other) — the ring-step primitive. Using a nonblocking
// send is what makes rings deadlock-free under synchronous modes.
func (r *Rank) SendRecv(to int, data []byte, from, n int) []byte {
	sreq := r.Isend(to, data)
	got := r.Recv(from, n)
	if _, err := sreq.Wait(r.t); err != nil {
		panic(fmt.Sprintf("collective: rank %d sendrecv to %d: %v", r.id, to, err))
	}
	return got
}
