package lab

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testStudy is a fast two-job study for tests that do not need the full
// builtin smoke gate.
func testStudy() Study {
	return Study{
		Name: "test",
		Jobs: []Job{
			{Name: "pingpong", Kind: KindScenario, Target: "paper-internode-pingpong",
				Seeds: []uint64{1, 2}, Messages: 50},
			{Name: "intra", Kind: KindScenario, Target: "paper-intranode-pingpong",
				Messages: 50},
		},
	}
}

// TestStudyArtifactDeterminism pins the subsystem's core guarantee:
// the same study produces a byte-identical artifact body at workers=1
// and workers=8 — the sweep-check guarantee, extended to whole studies.
func TestStudyArtifactDeterminism(t *testing.T) {
	st, err := StudyByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	a1, err := RunStudy(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	a8, err := RunStudy(st, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Stamps differ by construction; bodies must not.
	a1.CapturedAt, a1.Workers = "2026-01-01T00:00:00Z", 1
	a8.CapturedAt, a8.Workers = "2026-01-02T00:00:00Z", 8
	if a1.Digest != a8.Digest {
		t.Errorf("artifact digest differs across worker counts: %s vs %s", a1.Digest, a8.Digest)
	}
	if !bytes.Equal(a1.Body(), a8.Body()) {
		t.Errorf("artifact bodies differ across worker counts")
	}
}

// TestRunStudyRepeatable: two runs of the same study agree byte for
// byte — an artifact is reproducible from its config alone.
func TestRunStudyRepeatable(t *testing.T) {
	st := testStudy()
	a, err := RunStudy(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStudy(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Body(), b.Body()) {
		t.Errorf("rerun changed the artifact body")
	}
	if err := a.VerifyDigest(); err != nil {
		t.Errorf("fresh artifact fails digest verification: %v", err)
	}
}

// TestBuiltinStudiesValidate: every shipped study must expand cleanly,
// and the builtin names must be unique.
func TestBuiltinStudiesValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range BuiltinStudies() {
		if seen[st.Name] {
			t.Errorf("duplicate builtin study name %q", st.Name)
		}
		seen[st.Name] = true
		if err := st.Validate(); err != nil {
			t.Errorf("builtin study %q fails validation: %v", st.Name, err)
		}
	}
	for _, want := range []string{"smoke", "collectives", "faults", "longvector"} {
		if !seen[want] {
			t.Errorf("builtin study %q missing", want)
		}
	}
}

// TestStudyValidationFieldErrors: malformed configs must fail expansion
// with errors naming the job and field.
func TestStudyValidationFieldErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Study)
		wantSub []string
	}{
		{"no name", func(s *Study) { s.Name = "" }, []string{"no name"}},
		{"slash in name", func(s *Study) { s.Name = "a/b" }, []string{"must not contain"}},
		{"no jobs", func(s *Study) { s.Jobs = nil }, []string{"jobs is empty"}},
		{"empty job name", func(s *Study) { s.Jobs[1].Name = "" }, []string{"jobs[1]", "name is empty"}},
		{"duplicate job name", func(s *Study) { s.Jobs[1].Name = s.Jobs[0].Name }, []string{"jobs[1]", "duplicate"}},
		{"empty target", func(s *Study) { s.Jobs[0].Target = "" }, []string{"jobs[0]", "target is empty"}},
		{"unknown kind", func(s *Study) { s.Jobs[0].Kind = "scenrio" }, []string{"jobs[0]", `unknown kind "scenrio"`}},
		{"unknown scenario", func(s *Study) { s.Jobs[0].Target = "no-such-scenario" }, []string{"jobs[0]", "target", "no-such-scenario"}},
		{"negative repetitions", func(s *Study) { s.Jobs[0].Repetitions = -1 }, []string{"jobs[0]", "repetitions -1"}},
		{"seeds and repetitions", func(s *Study) { s.Jobs[0].Repetitions = 3 }, []string{"jobs[0]", "mutually exclusive"}},
		{"iters on scenario", func(s *Study) { s.Jobs[0].Iters = 5 }, []string{"jobs[0]", "iters applies to bench"}},
		{"unknown bench id", func(s *Study) { s.Jobs[0] = Job{Name: "b", Kind: KindBench, Target: "no-such-exp"} },
			[]string{"jobs[0]", "no-such-exp"}},
		{"seed on sweep", func(s *Study) { s.Jobs[0] = Job{Name: "sw", Kind: KindSweep, Target: "smoke-grid", Seed: 3} },
			[]string{"jobs[0]", "seed does not apply to sweep"}},
		{"unknown sweep", func(s *Study) { s.Jobs[0] = Job{Name: "sw", Kind: KindSweep, Target: "no-such-sweep"} },
			[]string{"jobs[0]", "no-such-sweep"}},
	}
	for _, tc := range cases {
		st := testStudy()
		tc.mutate(&st)
		err := st.Validate()
		if err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
			continue
		}
		for _, sub := range tc.wantSub {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, sub)
			}
		}
	}
}

// TestParseStudyRoundTrip: JSON() output parses back to an equal hash.
func TestParseStudyRoundTrip(t *testing.T) {
	st := testStudy()
	back, err := ParseStudy(st.JSON())
	if err != nil {
		t.Fatal(err)
	}
	if back.ConfigHash() != st.ConfigHash() {
		t.Errorf("round-tripped study hash differs")
	}
}

// TestStoreNewestFirst: List orders artifacts by capture stamp,
// newest first.
func TestStoreNewestFirst(t *testing.T) {
	dir := t.TempDir()
	s := Store{Dir: dir}
	st := testStudy()
	a, err := RunStudy(st, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, stamp := range []string{"2026-01-01T00:00:00Z", "2026-03-01T00:00:00Z", "2026-02-01T00:00:00Z"} {
		c := *a
		c.CapturedAt = stamp
		if _, err := s.Put(&c); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("List() = %d entries, want 3", len(entries))
	}
	want := []string{"2026-03-01T00:00:00Z", "2026-02-01T00:00:00Z", "2026-01-01T00:00:00Z"}
	for i, e := range entries {
		if e.Artifact.CapturedAt != want[i] {
			t.Errorf("entry %d capturedAt = %s, want %s", i, e.Artifact.CapturedAt, want[i])
		}
	}
}

// TestBaselineMatchesCurrent is the in-process form of `make
// lab-check`'s compare leg: the checked-in smoke baseline must match a
// fresh capture exactly. When this fails after an intentional
// wire-behavior change, recapture with `make lab-baseline` (the only
// legitimate path — see README).
func TestBaselineMatchesCurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("baseline compare runs the full smoke study")
	}
	data, err := os.ReadFile(filepath.Join("testdata", "baseline-smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := ParseArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := baseline.VerifyDigest(); err != nil {
		t.Fatalf("checked-in baseline is corrupt: %v", err)
	}
	st, err := StudyByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunStudy(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compare(baseline, fresh, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitOK {
		t.Errorf("fresh smoke capture does not match the checked-in baseline (exit %d):\n%s", code, c.Render())
	}
}
