package lab

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendBenchSeriesPreservesHistory: appending a capture must keep
// every existing series entry verbatim — including historical entries
// whose shape differs from today's (the PR-2 before/after form).
func TestAppendBenchSeriesPreservesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "series.json")
	legacy := `{
  "comment": "existing comment",
  "series": [
    {"pr": 2, "before": {"x": 1}, "after": {"x": 2}},
    {"captured_at": "2026-01-01T00:00:00Z", "benchmarks": []}
  ]
}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	entry := BenchSeriesEntry{
		CapturedAt: "2026-02-01T00:00:00Z",
		Comment:    "test capture",
		Benchmarks: []BenchMeasurement{{Name: "BenchmarkX", NsPerOp: 42, AllocsPerOp: 1}},
	}
	if err := AppendBenchSeries(path, entry); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Comment string            `json:"comment"`
		Series  []json.RawMessage `json:"series"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Comment != "existing comment" {
		t.Errorf("comment rewritten to %q", file.Comment)
	}
	if len(file.Series) != 3 {
		t.Fatalf("series has %d entries, want 3", len(file.Series))
	}
	// The legacy heterogeneous entry survives semantically intact.
	var first map[string]any
	if err := json.Unmarshal(file.Series[0], &first); err != nil {
		t.Fatal(err)
	}
	if first["pr"] != float64(2) || first["before"] == nil {
		t.Errorf("legacy entry mangled: %v", first)
	}
	var last BenchSeriesEntry
	if err := json.Unmarshal(file.Series[2], &last); err != nil {
		t.Fatal(err)
	}
	if last.CapturedAt != entry.CapturedAt || len(last.Benchmarks) != 1 || last.Benchmarks[0].NsPerOp != 42 {
		t.Errorf("appended entry mangled: %+v", last)
	}
}

// TestAppendBenchSeriesCreates: appending to a missing file creates it
// with the standard header comment.
func TestAppendBenchSeriesCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "new.json")
	if err := AppendBenchSeries(path, BenchSeriesEntry{CapturedAt: "2026-01-01T00:00:00Z"}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		Comment string            `json:"comment"`
		Series  []json.RawMessage `json:"series"`
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	if file.Comment == "" || len(file.Series) != 1 {
		t.Errorf("created file malformed: comment=%q series=%d", file.Comment, len(file.Series))
	}
}

// TestGoBenchmarksRun: every tracked microbenchmark executes one
// iteration cleanly. Full timing runs belong to `pushpull-lab gobench`,
// not the test suite.
func TestGoBenchmarksRun(t *testing.T) {
	for _, gb := range GoBenchmarks() {
		gb := gb
		t.Run(gb.Name, func(t *testing.T) {
			r := testing.Benchmark(func(b *testing.B) {
				if b.N > 1 {
					b.Skip()
				}
				gb.F(b)
			})
			_ = r
		})
	}
}
