package lab

import (
	"runtime"
	"time"

	"pushpull/internal/scenario"
)

// The BENCH_pdes.json capture path: wall-clock speedup of the
// conservative-PDES partition against the sequential engine on a
// representative scenario, plus the schedule-derived orchestration
// counters. Like BENCH_sim.json it is an append-only series compared
// within one entry — and on a single-core CI box the speedup hovers
// around (or below) 1.0, since the partition's barriers cost real time
// while the workers time-slice one core. The capture target for
// meaningful speedups is a multi-core machine with GOMAXPROCS >= the
// worker count; gomaxprocs is recorded so entries say which kind of
// box they came from.

// PDESBenchRun is one timed configuration: workers 0 is the plain
// sequential engine, workers >= 1 the partition.
type PDESBenchRun struct {
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
}

// PDESBenchEntry is one append-only capture of the PDES speedup probe.
type PDESBenchEntry struct {
	CapturedAt string `json:"captured_at"`
	Commit     string `json:"commit,omitempty"`
	Comment    string `json:"comment,omitempty"`
	// Scenario names the probe workload; GoMaxProcs the cores the
	// capture box exposed (the speedup ceiling).
	Scenario   string         `json:"scenario"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Runs       []PDESBenchRun `json:"runs"`
	// SpeedupW4OverW1 is wall(1 worker) / wall(4 workers) — the
	// parallel efficiency of the partition itself, with the sharding
	// overhead present in both terms.
	SpeedupW4OverW1 float64 `json:"speedup_w4_over_w1"`
	// Schedule-derived orchestration counters of the partitioned run
	// (identical for any worker count).
	Supersteps           uint64  `json:"supersteps"`
	RoutedEvents         uint64  `json:"routed_events"`
	MeanReady            float64 `json:"mean_ready"`
	LookaheadUtilization float64 `json:"lookahead_utilization"`
}

const pdesSeriesComment = "conservative-PDES wall-clock speedup trajectory, captured by `pushpull-lab gobench`. Append-only: each entry is one capture of the probe scenario at 0 (sequential), 1, 2 and 4 workers. Compare wall_ms within one entry; speedup > 1 needs gomaxprocs >= workers — single-core CI boxes legitimately record ~1.0 or below."

// pdesProbeSpec is the speedup probe workload: the permutation builtin
// (6 switched nodes, every channel concurrent — the shape sharding
// helps) with enough traffic that per-run wall clock dominates setup.
func pdesProbeSpec() (scenario.Spec, error) {
	s, err := scenario.ByName("permutation")
	if err != nil {
		return scenario.Spec{}, err
	}
	s.Traffic.Messages = 150
	return s, nil
}

// CapturePDESBench times the probe at 0/1/2/4 workers (best of 3 each)
// and assembles the series entry, stamp fields left to the caller.
func CapturePDESBench() (PDESBenchEntry, error) {
	spec, err := pdesProbeSpec()
	if err != nil {
		return PDESBenchEntry{}, err
	}
	entry := PDESBenchEntry{
		Scenario:   spec.Name,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	wall := make(map[int]float64)
	for _, workers := range []int{0, 1, 2, 4} {
		s := spec
		s.ParallelWorkers = workers
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			//pushpull:lint-allow walltime measures real parallel speedup of the PDES engine; wall time is the quantity under test and never enters a digest
			start := time.Now()
			res, err := scenario.Run(s)
			elapsed := time.Since(start) //pushpull:lint-allow walltime measures real parallel speedup of the PDES engine; wall time is the quantity under test and never enters a digest
			if err != nil {
				return PDESBenchEntry{}, err
			}
			if ms := float64(elapsed.Nanoseconds()) / 1e6; rep == 0 || ms < best {
				best = ms
			}
			if workers == 1 && rep == 0 && res.PDES != nil {
				entry.Supersteps = res.PDES.Supersteps
				entry.RoutedEvents = res.PDES.RoutedEvents
				entry.MeanReady = res.PDES.MeanReady
				entry.LookaheadUtilization = res.PDES.LookaheadUtilization
			}
		}
		wall[workers] = best
		entry.Runs = append(entry.Runs, PDESBenchRun{Workers: workers, WallMS: best})
	}
	if wall[4] > 0 {
		entry.SpeedupW4OverW1 = wall[1] / wall[4]
	}
	return entry, nil
}

// AppendPDESBenchSeries appends one PDES capture to the series file
// (creating it if absent), preserving every existing entry verbatim.
func AppendPDESBenchSeries(path string, entry PDESBenchEntry) error {
	return appendSeriesEntry(path, pdesSeriesComment, entry)
}
