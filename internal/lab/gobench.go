package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"pushpull/internal/sim"
)

// This file is the lab's capture path for the BENCH_sim.json series:
// the sim-core microbenchmark trajectory that used to be appended by
// hand after a `go test -bench` run. GoBenchmarks replicates the
// tracked shapes of internal/sim/bench_test.go on the exported engine
// API so they are runnable from the CLI via testing.Benchmark, and
// AppendBenchSeries appends one capture entry without disturbing the
// existing (heterogeneous) history. Wall-clock numbers are inherently
// machine-dependent, so gobench captures never enter study artifacts
// or their digests — they are an append-only series, compared by ratio
// within one entry.

// GoBenchmark is one tracked microbenchmark.
type GoBenchmark struct {
	Name string
	Note string
	F    func(b *testing.B)
	// EventsPerOp > 1 means ns_per_op amortizes that many events (the
	// ScheduleRun batch), reported as ns_per_event.
	EventsPerOp int
}

// GoBenchmarks returns the tracked sim-core microbenchmarks, the same
// shapes BENCH_sim.json has recorded since PR 2.
func GoBenchmarks() []GoBenchmark {
	return []GoBenchmark{
		{
			Name: "BenchmarkScheduleRun", Note: "64 heap events per op", EventsPerOp: 64,
			F: func(b *testing.B) {
				e := sim.NewEngine(1)
				const batch = 64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := 0; j < batch; j++ {
						e.Schedule(sim.Duration(j%16)*sim.Microsecond, func() {})
					}
					e.Run()
				}
			},
		},
		{
			Name: "BenchmarkSameTimeDispatch", Note: "one wake/Yield-shaped event per op",
			F: func(b *testing.B) {
				e := sim.NewEngine(1)
				b.ReportAllocs()
				b.ResetTimer()
				n := 0
				var step func()
				step = func() {
					if n < b.N {
						n++
						e.Schedule(0, step)
					}
				}
				e.Schedule(0, step)
				e.Run()
			},
		},
		{
			Name: "BenchmarkProcessSwitch", Note: "two processes yielding per op (goroutine-handoff bound)",
			F: func(b *testing.B) {
				e := sim.NewEngine(1)
				body := func(p *sim.Process) {
					for i := 0; i < b.N; i++ {
						p.Yield()
					}
				}
				e.Go("a", body)
				e.Go("b", body)
				b.ReportAllocs()
				b.ResetTimer()
				e.Run()
			},
		},
		{
			Name: "BenchmarkTaskletSwitch", Note: "two tasklets yielding per op (inline dispatch, no goroutine handoff)",
			F: func(b *testing.B) {
				e := sim.NewEngine(1)
				mk := func(name string) *sim.Tasklet {
					n := 0
					var tk *sim.Tasklet
					tk = e.NewTasklet(name, func(*sim.Tasklet) {
						if n < b.N {
							n++
							tk.Sleep(0)
						}
					})
					return tk
				}
				mk("a").Start()
				mk("b").Start()
				b.ReportAllocs()
				b.ResetTimer()
				e.Run()
			},
		},
		{
			Name: "BenchmarkPDESSuperstepBarrier", Note: "one 8-shard superstep per op: feed pool, drain, barrier (4 workers)",
			F: func(b *testing.B) {
				const shards = 8
				p := sim.NewPartition(1, shards, 4, 100)
				defer p.Shutdown()
				var tick [shards]func()
				for i := 0; i < shards; i++ {
					e, n := p.Shard(i), i
					tick[i] = func() { e.Schedule(100, tick[n]) }
					e.At(1, sim.PriorityNormal, tick[i])
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RunUntil(p.Now().Add(100))
				}
			},
		},
		{
			Name: "BenchmarkPDESCrossShardRouting", Note: "one routed event per op: outbox, barrier merge, destination insert",
			F: func(b *testing.B) {
				p := sim.NewPartition(1, 2, 1, 100)
				defer p.Shutdown()
				a, c := p.Shard(0), p.Shard(1)
				var fwd, back func()
				fwd = func() { a.ScheduleOn(c, 100, back) }
				back = func() { c.ScheduleOn(a, 100, fwd) }
				a.At(1, sim.PriorityNormal, fwd)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p.RunUntil(p.Now().Add(100))
				}
			},
		},
		{
			Name: "BenchmarkPDESWindowPlanning", Note: "one conservative-window computation per op (PlanWindow over 16 loaded shards)",
			F: func(b *testing.B) {
				const shards = 16
				p := sim.NewPartition(1, shards, 1, 100)
				defer p.Shutdown()
				for i := 0; i < shards; i++ {
					p.Shard(i).At(sim.Time(1+i*10), sim.PriorityNormal, func() {})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, _, ok := p.PlanWindow(); !ok {
						b.Fatal("unplannable window")
					}
				}
			},
		},
		{
			Name: "BenchmarkTimerArmCancel", Note: "one Reset+Stop cycle per op (the go-back-N retransmission shape)",
			F: func(b *testing.B) {
				e := sim.NewEngine(1)
				tm := sim.NewTimer(e, func() {})
				b.ReportAllocs()
				b.ResetTimer()
				n := 0
				var step func()
				step = func() {
					if n < b.N {
						n++
						tm.Reset(sim.Millisecond)
						tm.Stop()
						e.Schedule(sim.Microsecond, step)
					}
				}
				e.Schedule(0, step)
				e.Run()
			},
		},
	}
}

// BenchMeasurement is one benchmark's capture, in the series' JSON
// vocabulary.
type BenchMeasurement struct {
	Name        string  `json:"name"`
	UnitNote    string  `json:"unit_note,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerEvent  float64 `json:"ns_per_event,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchSeriesEntry is one append-only capture of the whole tracked set.
type BenchSeriesEntry struct {
	CapturedAt string             `json:"captured_at"`
	Commit     string             `json:"commit,omitempty"`
	Comment    string             `json:"comment,omitempty"`
	Benchmarks []BenchMeasurement `json:"benchmarks"`
}

// CaptureGoBench runs every tracked microbenchmark via
// testing.Benchmark and returns the measurements (stamp fields left to
// the caller).
func CaptureGoBench() []BenchMeasurement {
	var out []BenchMeasurement
	for _, gb := range GoBenchmarks() {
		r := testing.Benchmark(gb.F)
		m := BenchMeasurement{
			Name:        gb.Name,
			UnitNote:    gb.Note,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if gb.EventsPerOp > 1 {
			m.NsPerEvent = m.NsPerOp / float64(gb.EventsPerOp)
		}
		out = append(out, m)
	}
	return out
}

// benchSeriesFile mirrors BENCH_sim.json's top level; series entries
// stay raw so heterogeneous historical shapes (the PR-2 before/after
// entry) survive a rewrite byte-for-byte up to re-indentation.
type benchSeriesFile struct {
	Comment string            `json:"comment"`
	Series  []json.RawMessage `json:"series"`
}

// AppendBenchSeries appends one capture entry to the series file
// (creating it if absent), preserving every existing entry verbatim.
func AppendBenchSeries(path string, entry BenchSeriesEntry) error {
	return appendSeriesEntry(path, "internal/sim hot-path microbenchmark trajectory, captured by `pushpull-lab gobench`. Append-only: each series entry is one capture, never overwritten. Compare ratios within one entry, not ns across entries — machine speed varies between captures.", entry)
}

// appendSeriesEntry is the shared append-only series writer: entries
// stay raw so heterogeneous historical shapes survive a rewrite
// byte-for-byte up to re-indentation; defaultComment seeds the file's
// top-level comment only on creation.
func appendSeriesEntry(path, defaultComment string, entry any) error {
	var file benchSeriesFile
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("lab: parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if file.Comment == "" {
		file.Comment = defaultComment
	}
	raw, err := json.Marshal(entry)
	if err != nil {
		return err
	}
	file.Series = append(file.Series, raw)
	out, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
