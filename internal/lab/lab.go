// Package lab is the study orchestration subsystem: it composes the
// repo's three run kinds — declarative scenarios, parameter sweeps and
// bench experiments — into named, replayable studies, runs them on the
// scenario worker pool, and persists each capture as a schema-versioned
// artifact in a plain-directory store. Artifacts are diffable:
// Compare gates CI on per-job digests (hard failures) and per-metric
// tolerances (flagged regressions), so the perf trajectory is enforced
// by the build instead of remembered by hand.
//
// Everything a study runs is simulation-derived, so the artifact body —
// everything except the capture stamp (time, commit, worker count) —
// is byte-identical for any worker count: the same guarantee the sweep
// subsystem pins with `make sweep-check`, extended to whole studies.
package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"pushpull/internal/bench"
	"pushpull/internal/scenario"
)

// Study is one named, replayable composition of jobs. Like a scenario
// Spec it is a plain struct with a stable JSON encoding: studies are
// files, and the ConfigHash over that encoding ties every artifact to
// the exact configuration that produced it.
type Study struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Jobs        []Job  `json:"jobs"`
}

// Job is one named unit of a study. Kind selects the run machinery;
// Target names what runs (a builtin scenario/sweep/experiment, or — for
// scenario and sweep jobs — a path to a JSON spec file). Fields that do
// not apply to the job's kind are rejected at validation, field by
// field, so a typo'd study fails expansion instead of silently running
// something else.
type Job struct {
	Name string `json:"name"`
	// Kind is "scenario", "sweep" or "bench".
	Kind string `json:"kind"`
	// Target is the builtin scenario name / sweep name / bench
	// experiment id, or a spec-file path for scenario and sweep jobs.
	Target string `json:"target"`

	// Scenario jobs: the spec runs once per seed. Seeds lists them
	// explicitly; otherwise Repetitions (default 1) runs consecutive
	// seeds starting at Seed (0 keeps the spec's own seed as the base).
	Repetitions int      `json:"repetitions,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Seeds       []uint64 `json:"seeds,omitempty"`
	// Scenario overrides, mirroring `pushpull-scen run` flags.
	Messages  int    `json:"messages,omitempty"`
	Size      int    `json:"size,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	// ParallelWorkers runs the scenario on the conservative-PDES
	// partition with that many workers (see Spec.ParallelWorkers).
	// Digest-neutral across worker counts by construction, so it only
	// changes wall-clock — and the PDES metrics the job reports.
	ParallelWorkers int `json:"parallelWorkers,omitempty"`

	// Bench jobs: timed iterations per point (default 100).
	Iters int `json:"iters,omitempty"`

	// Workers overrides the study-level worker pool for this job
	// (0 = inherit). It never changes the artifact body.
	Workers int `json:"workers,omitempty"`
}

// Job kinds.
const (
	KindScenario = "scenario"
	KindSweep    = "sweep"
	KindBench    = "bench"
)

// ConfigHash is the SHA-256 over the study's canonical JSON encoding.
// Two artifacts are comparable only if their config hashes agree: a
// diff between different configurations is not a regression, it is a
// different experiment.
func (st Study) ConfigHash() string {
	enc, err := json.Marshal(st)
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:])
}

// JSON renders the study canonically (indented, stable field order).
func (st Study) JSON() []byte {
	out, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		panic(err)
	}
	return out
}

// ParseStudy decodes and validates a study file.
func ParseStudy(data []byte) (Study, error) {
	var st Study
	if err := json.Unmarshal(data, &st); err != nil {
		return Study{}, fmt.Errorf("lab: parsing study: %w", err)
	}
	if err := st.Validate(); err != nil {
		return Study{}, err
	}
	return st, nil
}

// Validate checks the study field by field — every error names the
// offending job (by index and name) and field, so a malformed config
// fails expansion with a pointed diagnosis instead of a downstream
// panic. Targets are resolved too: a typo'd builtin name fails here,
// not at job N of a half-run study.
func (st Study) Validate() error {
	if st.Name == "" {
		return fmt.Errorf("lab: study has no name")
	}
	if strings.ContainsAny(st.Name, "/ ") {
		return fmt.Errorf("lab: study %q: name must not contain '/' or spaces (it becomes a store filename)", st.Name)
	}
	if len(st.Jobs) == 0 {
		return fmt.Errorf("lab: study %q: jobs is empty", st.Name)
	}
	seen := make(map[string]bool, len(st.Jobs))
	for i, j := range st.Jobs {
		where := fmt.Sprintf("lab: study %q: jobs[%d]", st.Name, i)
		if j.Name == "" {
			return fmt.Errorf("%s: name is empty", where)
		}
		where = fmt.Sprintf("%s (%q)", where, j.Name)
		if seen[j.Name] {
			return fmt.Errorf("%s: duplicate job name", where)
		}
		seen[j.Name] = true
		if j.Target == "" {
			return fmt.Errorf("%s: target is empty", where)
		}
		if j.Repetitions < 0 {
			return fmt.Errorf("%s: repetitions %d is negative", where, j.Repetitions)
		}
		if j.Iters < 0 {
			return fmt.Errorf("%s: iters %d is negative", where, j.Iters)
		}
		if j.Workers < 0 {
			return fmt.Errorf("%s: workers %d is negative", where, j.Workers)
		}
		if j.ParallelWorkers < 0 {
			return fmt.Errorf("%s: parallelWorkers %d is negative", where, j.ParallelWorkers)
		}
		if len(j.Seeds) > 0 && (j.Repetitions > 1 || j.Seed != 0) {
			return fmt.Errorf("%s: seeds and repetitions/seed are mutually exclusive (seeds already lists every run)", where)
		}
		switch j.Kind {
		case KindScenario:
			if j.Iters != 0 {
				return fmt.Errorf("%s: iters applies to bench jobs only", where)
			}
			if _, err := resolveSpec(j.Target); err != nil {
				return fmt.Errorf("%s: target: %w", where, err)
			}
		case KindSweep:
			for _, f := range []struct {
				name string
				set  bool
			}{
				{"repetitions", j.Repetitions != 0},
				{"seed", j.Seed != 0},
				{"seeds", len(j.Seeds) > 0},
				{"messages", j.Messages != 0},
				{"size", j.Size != 0},
				{"algorithm", j.Algorithm != ""},
				{"parallelWorkers", j.ParallelWorkers != 0},
				{"iters", j.Iters != 0},
			} {
				if f.set {
					return fmt.Errorf("%s: %s does not apply to sweep jobs (the sweep's grid owns its parameters)", where, f.name)
				}
			}
			if _, err := resolveSweep(j.Target); err != nil {
				return fmt.Errorf("%s: target: %w", where, err)
			}
		case KindBench:
			for _, f := range []struct {
				name string
				set  bool
			}{
				{"repetitions", j.Repetitions != 0},
				{"seed", j.Seed != 0},
				{"seeds", len(j.Seeds) > 0},
				{"messages", j.Messages != 0},
				{"size", j.Size != 0},
				{"algorithm", j.Algorithm != ""},
				{"parallelWorkers", j.ParallelWorkers != 0},
			} {
				if f.set {
					return fmt.Errorf("%s: %s applies to scenario jobs only", where, f.name)
				}
			}
			if _, err := bench.ByID(j.Target); err != nil {
				return fmt.Errorf("%s: target: %w", where, err)
			}
		default:
			return fmt.Errorf("%s: unknown kind %q (have %q, %q, %q)", where, j.Kind, KindScenario, KindSweep, KindBench)
		}
	}
	return nil
}

// resolveSpec maps a scenario target to a Spec: builtin name first,
// then spec-file path.
func resolveSpec(target string) (scenario.Spec, error) {
	if spec, err := scenario.ByName(target); err == nil {
		return spec, nil
	}
	data, err := os.ReadFile(target)
	if err != nil {
		return scenario.Spec{}, fmt.Errorf("%q is neither a builtin scenario nor a readable spec file: %w", target, err)
	}
	return scenario.ParseSpec(data)
}

// resolveSweep maps a sweep target to a Sweep: builtin name first, then
// sweep-file path.
func resolveSweep(target string) (scenario.Sweep, error) {
	if sw, err := scenario.SweepByName(target); err == nil {
		return sw, nil
	}
	data, err := os.ReadFile(target)
	if err != nil {
		return scenario.Sweep{}, fmt.Errorf("%q is neither a builtin sweep nor a readable sweep file: %w", target, err)
	}
	return scenario.ParseSweep(data)
}
