package lab

import (
	"fmt"
	"sort"
)

// BuiltinStudies returns the named studies shipped with the lab: a
// small CI gate and one study per measurement family. Each is a
// complete Study — print it with Study.JSON, tweak, and feed it back
// through ParseStudy.
func BuiltinStudies() []Study {
	smoke := Study{
		Name:        "smoke",
		Description: "CI gate: paper ping-pongs, the smoke sweep grid and the BTP(2) curve (seconds; make lab-check compares it against the checked-in baseline)",
		Jobs: []Job{
			{Name: "internode-pingpong", Kind: KindScenario, Target: "paper-internode-pingpong",
				Seeds: []uint64{1, 2}, Messages: 200},
			{Name: "intranode-pingpong", Kind: KindScenario, Target: "paper-intranode-pingpong",
				Messages: 200},
			{Name: "grid", Kind: KindSweep, Target: "smoke-grid"},
			{Name: "btp2-curve", Kind: KindBench, Target: "btp2", Iters: 25},
		},
	}

	collectives := Study{
		Name:        "collectives",
		Description: "the coll family: allreduce algorithm ablation, the 8-rank block shuffle, the halo exchange, and the coll-smoke grid",
		Jobs: []Job{
			{Name: "allreduce-rd", Kind: KindScenario, Target: "coll-allreduce", Repetitions: 2},
			{Name: "allreduce-ring", Kind: KindScenario, Target: "coll-allreduce-ring", Repetitions: 2},
			{Name: "alltoall", Kind: KindScenario, Target: "coll-alltoall", Repetitions: 2},
			{Name: "halo", Kind: KindScenario, Target: "coll-halo"},
			{Name: "grid", Kind: KindSweep, Target: "coll-smoke"},
		},
	}

	faults := Study{
		Name:        "faults",
		Description: "the fault family: blackout recovery, correlated loss bursts inside a collective, layered pipeline faults, and the fault-smoke grid",
		Jobs: []Job{
			{Name: "blackout", Kind: KindScenario, Target: "blackout-recovery", Seeds: []uint64{1, 7}},
			{Name: "flaky-allreduce", Kind: KindScenario, Target: "flaky-link-allreduce"},
			{Name: "pipeline-faults", Kind: KindScenario, Target: "port-blackout-pipeline"},
			{Name: "grid", Kind: KindSweep, Target: "fault-smoke"},
		},
	}

	longvector := Study{
		Name:        "longvector",
		Description: "the long-vector schedules: segmented ring bcast and rs-ag allreduce scenarios plus the bench comparison tables",
		Jobs: []Job{
			{Name: "bcast-seg", Kind: KindScenario, Target: "coll-bcast-seg"},
			{Name: "allreduce-rsag", Kind: KindScenario, Target: "coll-allreduce-rsag"},
			{Name: "tables", Kind: KindBench, Target: "longvector", Iters: 10},
		},
	}

	pdes := Study{
		Name:        "pdes",
		Description: "conservative-PDES orchestration: representative scenarios on the 4-worker partition, reporting supersteps, routed events and lookahead utilization (digests identical to any other worker count by construction)",
		Jobs: []Job{
			{Name: "permutation", Kind: KindScenario, Target: "permutation",
				Repetitions: 2, ParallelWorkers: 4},
			{Name: "wavefront", Kind: KindScenario, Target: "wavefront",
				ParallelWorkers: 4},
			{Name: "allreduce", Kind: KindScenario, Target: "coll-allreduce",
				ParallelWorkers: 4},
			{Name: "internode-pingpong", Kind: KindScenario, Target: "paper-internode-pingpong",
				Messages: 500, ParallelWorkers: 4},
		},
	}

	return []Study{smoke, collectives, faults, longvector, pdes}
}

// StudyNames lists the builtin study names, sorted.
func StudyNames() []string {
	studies := BuiltinStudies()
	names := make([]string, 0, len(studies))
	for _, st := range studies {
		names = append(names, st.Name)
	}
	sort.Strings(names)
	return names
}

// StudyByName returns the builtin study with the given name.
func StudyByName(name string) (Study, error) {
	for _, st := range BuiltinStudies() {
		if st.Name == name {
			return st, nil
		}
	}
	return Study{}, fmt.Errorf("lab: unknown study %q (have %v)", name, StudyNames())
}
