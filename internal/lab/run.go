package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"pushpull/internal/bench"
	"pushpull/internal/scenario"
)

// RunStudy validates and executes the study, returning the sealed
// artifact (capture stamp unset — the CLI stamps it). Jobs run in study
// order; inside a job, scenario repetitions and sweep points fan out on
// the scenario.ParallelFor worker pool (workers <= 0 = GOMAXPROCS).
// Worker count never changes the artifact body: every unit owns its
// single-threaded simulation engines, and results are assembled in
// expansion order.
func RunStudy(st Study, workers int) (*Artifact, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	a := &Artifact{
		Schema:      SchemaVersion,
		Study:       st.Name,
		Description: st.Description,
		ConfigHash:  st.ConfigHash(),
	}
	for i, j := range st.Jobs {
		w := workers
		if j.Workers > 0 {
			w = j.Workers
		}
		var (
			jr  JobResult
			err error
		)
		switch j.Kind {
		case KindScenario:
			jr, err = runScenarioJob(j, w)
		case KindSweep:
			jr, err = runSweepJob(j, w)
		case KindBench:
			jr, err = runBenchJob(j)
		}
		if err != nil {
			return nil, fmt.Errorf("lab: study %q: jobs[%d] (%q): %w", st.Name, i, j.Name, err)
		}
		a.Jobs = append(a.Jobs, jr)
	}
	a.seal()
	return a, nil
}

// jobSeeds expands a scenario job's seed list: explicit Seeds, or
// Repetitions consecutive seeds from the base (the job's Seed override,
// else the spec's own).
func jobSeeds(j Job, spec scenario.Spec) []uint64 {
	if len(j.Seeds) > 0 {
		return j.Seeds
	}
	reps := j.Repetitions
	if reps == 0 {
		reps = 1
	}
	base := spec.Seed
	if j.Seed != 0 {
		base = j.Seed
	}
	seeds := make([]uint64, reps)
	for i := range seeds {
		seeds[i] = base + uint64(i)
	}
	return seeds
}

func runScenarioJob(j Job, workers int) (JobResult, error) {
	spec, err := resolveSpec(j.Target)
	if err != nil {
		return JobResult{}, err
	}
	if j.Messages > 0 {
		spec.Traffic.Messages = j.Messages
	}
	if j.Size > 0 {
		spec.Traffic.Size = j.Size
	}
	if j.Algorithm != "" {
		spec.Traffic.Algorithm = j.Algorithm
	}
	if j.ParallelWorkers > 0 {
		spec.ParallelWorkers = j.ParallelWorkers
	}
	seeds := jobSeeds(j, spec)

	results := make([]*scenario.Result, len(seeds))
	errs := make([]error, len(seeds))
	scenario.ParallelFor(len(seeds), workers, func(i int) {
		// A model panic escaping a worker goroutine would kill the whole
		// process (the same reason sweep points recover); report it as
		// the repetition's error instead.
		defer func() {
			if r := recover(); r != nil {
				results[i], errs[i] = nil, fmt.Errorf("panic: %v", r)
			}
		}()
		s := spec
		s.Seed = seeds[i]
		// KeepSamples: the job's latency quantiles pool every
		// repetition's raw samples. The samples never enter the
		// artifact — only the quantiles do.
		results[i], errs[i] = scenario.Run(s, scenario.KeepSamples())
	})

	jr := JobResult{Job: j.Name, Kind: j.Kind, Target: j.Target, Units: len(seeds)}
	h := sha256.New()
	var (
		samples    []float64
		virtualUS  float64
		receives   float64
		bytesTotal float64
		throughput []float64
		supersteps float64
		routed     float64
		lookUtil   []float64
	)
	for i, seed := range seeds {
		if errs[i] != nil {
			jr.Failed++
			jr.Runs = append(jr.Runs, RunRecord{Seed: seed, Error: errs[i].Error()})
			fmt.Fprintf(h, "%d %d error %s\n", i, seed, errs[i])
			continue
		}
		res := results[i]
		jr.Runs = append(jr.Runs, RunRecord{Seed: seed, Digest: res.Digest, VirtualUS: res.VirtualUS})
		fmt.Fprintf(h, "%d %d %s\n", i, seed, res.Digest)
		samples = append(samples, res.Samples...)
		virtualUS += res.VirtualUS
		receives += float64(res.Receives)
		bytesTotal += float64(res.Bytes)
		throughput = append(throughput, res.ThroughputMBps)
		if res.PDES != nil {
			supersteps += float64(res.PDES.Supersteps)
			routed += float64(res.PDES.RoutedEvents)
			lookUtil = append(lookUtil, res.PDES.LookaheadUtilization)
		}
	}
	jr.Digest = hex.EncodeToString(h.Sum(nil))
	jr.Metrics = []Metric{
		{Name: "virtualUS", Unit: "µs", Value: virtualUS},
		{Name: "receives", Unit: "ops", Value: receives},
		{Name: "bytes", Unit: "B", Value: bytesTotal},
	}
	if n := len(throughput); n > 0 {
		var sum float64
		for _, t := range throughput {
			sum += t
		}
		jr.Metrics = append(jr.Metrics, Metric{Name: "throughputMBps", Unit: "MB/s", Value: sum / float64(n)})
	}
	// PDES orchestration metrics appear only for partitioned runs, and
	// every value below is schedule-derived — identical for any worker
	// count, so the body-digest guarantee survives the extra rows.
	if n := len(lookUtil); n > 0 {
		var sum float64
		for _, u := range lookUtil {
			sum += u
		}
		jr.Metrics = append(jr.Metrics,
			Metric{Name: "pdesSupersteps", Unit: "ops", Value: supersteps},
			Metric{Name: "pdesRoutedEvents", Unit: "ops", Value: routed},
			Metric{Name: "pdesLookaheadUtil", Unit: "ratio", Value: sum / float64(n)})
	}
	jr.addQuantiles("latency", "µs", samples)
	return jr, nil
}

func runSweepJob(j Job, workers int) (JobResult, error) {
	sw, err := resolveSweep(j.Target)
	if err != nil {
		return JobResult{}, err
	}
	res, err := scenario.RunSweep(sw, workers)
	if err != nil {
		return JobResult{}, err
	}
	jr := JobResult{
		Job: j.Name, Kind: j.Kind, Target: j.Target,
		Units: res.Points, Failed: res.Failed,
		// The sweep's aggregate digest already covers every point in
		// grid order.
		Digest: res.Digest,
	}
	var (
		virtualUS float64
		means     []float64
	)
	for i := range res.Results {
		pr := &res.Results[i]
		if pr.Result == nil {
			continue
		}
		virtualUS += pr.Result.VirtualUS
		means = append(means, pr.Result.Latency.TrimmedMean)
	}
	jr.Metrics = []Metric{
		{Name: "points", Unit: "ops", Value: float64(res.Points)},
		{Name: "failed", Unit: "ops", Value: float64(res.Failed)},
		{Name: "virtualUS", Unit: "µs", Value: virtualUS},
	}
	// The per-point trimmed means are the sweep's sample set: their
	// quantiles say how the grid's latency landscape moved.
	jr.addQuantiles("trimmedMeanUS", "µs", means)
	return jr, nil
}

func runBenchJob(j Job) (JobResult, error) {
	exp, err := bench.ByID(j.Target)
	if err != nil {
		return JobResult{}, err
	}
	iters := j.Iters
	if iters == 0 {
		iters = 100
	}
	tables := exp.Run(bench.Params{Iters: iters})

	jr := JobResult{Job: j.Name, Kind: j.Kind, Target: j.Target, Units: len(tables)}
	h := sha256.New()
	for i, tab := range tables {
		// The CSV rendering is the table's canonical form: every row,
		// every series, fixed precision.
		fmt.Fprintf(h, "%d %s\n%s", i, tab.Title, tab.CSV())
		var ys []float64
		for _, s := range tab.Series {
			for _, p := range s.Points {
				ys = append(ys, p.Y)
			}
		}
		jr.addQuantiles(fmt.Sprintf("t%d", i), tab.YLabel, ys)
	}
	jr.Digest = hex.EncodeToString(h.Sum(nil))
	return jr, nil
}
