package lab

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pushpull/internal/stats"
)

// SchemaVersion is the artifact schema this package writes. Compare
// refuses artifacts from other schemas: a schema bump is a format
// change, not a regression.
const SchemaVersion = 1

// Artifact is one persisted study capture. Everything below the capture
// stamp (CapturedAt, Commit, Workers) is derived from virtual time and
// deterministic counters, so the body — see Body — is byte-identical
// for any worker count, and the Digest makes that checkable at a
// glance.
type Artifact struct {
	// Schema versions the artifact format itself.
	Schema int `json:"schema"`
	// Study and ConfigHash tie the capture to the exact configuration
	// that produced it (Study.ConfigHash).
	Study       string `json:"study"`
	Description string `json:"description,omitempty"`
	ConfigHash  string `json:"configHash"`
	// The capture stamp: wall-clock time, git commit and worker count of
	// the capturing run. Excluded from Body and Digest — two captures of
	// the same tree agree on everything else byte-for-byte.
	CapturedAt string `json:"capturedAt,omitempty"`
	Commit     string `json:"commit,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	// Jobs holds one result per study job, in study order.
	Jobs []JobResult `json:"jobs"`
	// Digest is a SHA-256 over the canonical body encoding: two
	// artifacts agree iff their studies ran identically.
	Digest string `json:"digest"`
}

// JobResult is one job's outcome: a digest pinning exactly what ran,
// and the metric summaries the regression gate compares.
type JobResult struct {
	Job    string `json:"job"`
	Kind   string `json:"kind"`
	Target string `json:"target"`
	// Units counts what ran: scenario repetitions, sweep points, or
	// bench tables. Failed counts units that errored; their error
	// strings are folded into the digest so a failing study cannot
	// masquerade as a passing one.
	Units  int `json:"units"`
	Failed int `json:"failed,omitempty"`
	// Runs itemizes scenario repetitions (seed, digest, virtual time);
	// sweep and bench jobs summarize into Digest alone.
	Runs []RunRecord `json:"runs,omitempty"`
	// Digest pins the job: a SHA-256 over the per-run digests (scenario),
	// the sweep's aggregate digest, or the rendered bench tables.
	Digest string `json:"digest"`
	// Metrics are the job's comparable numbers, in a fixed order.
	Metrics []Metric `json:"metrics"`
}

// RunRecord is one scenario repetition inside a job.
type RunRecord struct {
	Seed      uint64  `json:"seed"`
	Digest    string  `json:"digest,omitempty"`
	VirtualUS float64 `json:"virtualUS,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// Metric is one named, unit-labelled number. Values are derived from
// virtual time or deterministic counters — never wall clock.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// metric looks a metric up by name; ok reports whether it exists.
func (jr *JobResult) metric(name string) (Metric, bool) {
	for _, m := range jr.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// addQuantiles appends the standard quantile metrics for a sample set
// under a name prefix, reusing the stats helper the scenario
// degradation section summarizes with.
func (jr *JobResult) addQuantiles(prefix, unit string, xs []float64) {
	q := stats.QuantileSummary(xs)
	jr.Metrics = append(jr.Metrics,
		Metric{Name: prefix + ".mean", Unit: unit, Value: q.Mean},
		Metric{Name: prefix + ".p50", Unit: unit, Value: q.P50},
		Metric{Name: prefix + ".p90", Unit: unit, Value: q.P90},
		Metric{Name: prefix + ".p99", Unit: unit, Value: q.P99},
		Metric{Name: prefix + ".max", Unit: unit, Value: q.Max},
	)
}

// body returns the canonical (compact) encoding of the artifact with
// the capture stamp and digest cleared — the bytes the digest covers.
func (a *Artifact) body() []byte {
	c := *a
	c.CapturedAt, c.Commit, c.Workers, c.Digest = "", "", 0, ""
	enc, err := json.Marshal(&c)
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	return enc
}

// seal computes the digest over the body. Stamp fields may be set
// before or after; they never participate.
func (a *Artifact) seal() {
	sum := sha256.Sum256(a.body())
	a.Digest = hex.EncodeToString(sum[:])
}

// Body renders the deterministic portion of the artifact indented —
// capture stamp stripped, digest kept. `make lab-check` diffs these
// bytes across worker counts.
func (a *Artifact) Body() []byte {
	c := *a
	c.CapturedAt, c.Commit, c.Workers = "", "", 0
	out, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// JSON renders the full artifact (stamp included) indented.
func (a *Artifact) JSON() []byte {
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// ParseArtifact decodes an artifact and verifies its digest against the
// body, so a hand-edited or truncated file is rejected before it can
// gate anything.
func ParseArtifact(data []byte) (*Artifact, error) {
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("lab: parsing artifact: %w", err)
	}
	if a.Schema == 0 {
		return nil, fmt.Errorf("lab: artifact has no schema version (not a lab artifact?)")
	}
	return &a, nil
}

// VerifyDigest recomputes the body digest and reports a mismatch. Kept
// separate from ParseArtifact: compare wants to *see* a perturbed
// digest (and fail hard on it), not refuse to load the file.
func (a *Artifact) VerifyDigest() error {
	sum := sha256.Sum256(a.body())
	if got := hex.EncodeToString(sum[:]); got != a.Digest {
		return fmt.Errorf("lab: artifact digest %s does not match its body (recomputed %s)", short(a.Digest), short(got))
	}
	return nil
}

func short(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// Store is a plain directory of artifact files — no index, no
// database; `ls` is the schema.
type Store struct{ Dir string }

// DefaultStoreDir is where the CLI keeps artifacts unless told
// otherwise.
const DefaultStoreDir = "labstore"

// Put writes the artifact into the store, named
// <study>-<capturedAt>-<digest12>.json, and returns the path.
func (s Store) Put(a *Artifact) (string, error) {
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return "", err
	}
	stamp := strings.NewReplacer(":", "", "-", "", "T", "-", "Z", "").Replace(a.CapturedAt)
	if stamp == "" {
		stamp = "undated"
	}
	path := filepath.Join(s.Dir, fmt.Sprintf("%s-%s-%s.json", a.Study, stamp, short(a.Digest)))
	if err := os.WriteFile(path, a.JSON(), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Entry is one store listing row.
type Entry struct {
	Path     string
	Artifact *Artifact
}

// List reads every artifact in the store, newest first (by capture
// stamp, then by filename so the order is total).
func (s Store) List() ([]Entry, error) {
	names, err := filepath.Glob(filepath.Join(s.Dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		a, err := ParseArtifact(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, Entry{Path: path, Artifact: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Artifact.CapturedAt != out[j].Artifact.CapturedAt {
			return out[i].Artifact.CapturedAt > out[j].Artifact.CapturedAt
		}
		return out[i].Path > out[j].Path
	})
	return out, nil
}

// LoadArtifact reads one artifact from a path.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	a, err := ParseArtifact(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}
