package lab

import (
	"fmt"
	"math"
	"strings"
)

// Tolerances configures the regression gate. Every metric delta is
// relative: |b-a| / |a| (absolute when a == 0). Default applies to any
// metric without a PerMetric entry.
type Tolerances struct {
	Default   float64
	PerMetric map[string]float64
}

// DefaultTolerances allows 5% drift on derived metrics and none at all
// on exact counters — receives, bytes, points, failed are deterministic
// counts, so any movement is a behaviour change, not noise.
func DefaultTolerances() Tolerances {
	return Tolerances{
		Default: 0.05,
		PerMetric: map[string]float64{
			"receives": 0,
			"bytes":    0,
			"points":   0,
			"failed":   0,
		},
	}
}

// For returns the tolerance for a metric name.
func (t Tolerances) For(name string) float64 {
	if v, ok := t.PerMetric[name]; ok {
		return v
	}
	return t.Default
}

// MetricDelta is one metric compared across two artifacts.
type MetricDelta struct {
	Job       string  `json:"job"`
	Metric    string  `json:"metric"`
	Unit      string  `json:"unit,omitempty"`
	A         float64 `json:"a"`
	B         float64 `json:"b"`
	RelDelta  float64 `json:"relDelta"`
	Tolerance float64 `json:"tolerance"`
	Regressed bool    `json:"regressed"`
}

// Comparison is the outcome of diffing artifact B against baseline A.
type Comparison struct {
	Study string `json:"study"`
	// DigestChanged lists jobs whose digests moved (plus jobs present in
	// only one artifact). Digest changes are hard failures: the study
	// did not run the same computation, so metric deltas are findings
	// about a *different* experiment.
	DigestChanged []string `json:"digestChanged,omitempty"`
	// Regressions are the metric deltas outside tolerance; Deltas holds
	// every compared metric for reporting.
	Regressions []MetricDelta `json:"regressions,omitempty"`
	Deltas      []MetricDelta `json:"deltas"`
}

// Compare exit codes, shared with the CLI and pinned by tests: digest
// changes and metric regressions fail differently so CI logs say which
// gate tripped without parsing prose.
const (
	ExitOK               = 0
	ExitMetricRegression = 3
	ExitDigestChange     = 4
)

// ExitCode maps the comparison to the CLI's exit code. A digest change
// outranks a metric regression: when the computation itself moved, the
// metric deltas are a symptom, not the diagnosis.
func (c *Comparison) ExitCode() int {
	if len(c.DigestChanged) > 0 {
		return ExitDigestChange
	}
	if len(c.Regressions) > 0 {
		return ExitMetricRegression
	}
	return ExitOK
}

// Compare diffs artifact b against baseline a. It refuses — with an
// error, not a report — when the artifacts are not comparable: schema
// mismatch, different studies, or different config hashes (a diff
// between different configurations is a different experiment, and
// `make lab-baseline` is the legitimate path to a new baseline).
func Compare(a, b *Artifact, tol Tolerances) (*Comparison, error) {
	if a.Schema != b.Schema {
		return nil, fmt.Errorf("lab: artifact schemas differ (%d vs %d); not comparable", a.Schema, b.Schema)
	}
	if a.Study != b.Study {
		return nil, fmt.Errorf("lab: artifacts capture different studies (%q vs %q); not comparable", a.Study, b.Study)
	}
	if a.ConfigHash != b.ConfigHash {
		return nil, fmt.Errorf("lab: config hash mismatch (%s vs %s): the study configuration changed, so a diff would compare different experiments — recapture the baseline (make lab-baseline)",
			short(a.ConfigHash), short(b.ConfigHash))
	}

	c := &Comparison{Study: a.Study}
	bJobs := make(map[string]*JobResult, len(b.Jobs))
	for i := range b.Jobs {
		bJobs[b.Jobs[i].Job] = &b.Jobs[i]
	}
	seen := make(map[string]bool, len(a.Jobs))
	for i := range a.Jobs {
		ja := &a.Jobs[i]
		seen[ja.Job] = true
		jb, ok := bJobs[ja.Job]
		if !ok {
			c.DigestChanged = append(c.DigestChanged, ja.Job+" (missing from B)")
			continue
		}
		if ja.Digest != jb.Digest {
			c.DigestChanged = append(c.DigestChanged, ja.Job)
		}
		for _, ma := range ja.Metrics {
			mb, ok := jb.metric(ma.Name)
			if !ok {
				c.DigestChanged = append(c.DigestChanged, fmt.Sprintf("%s (metric %s missing from B)", ja.Job, ma.Name))
				continue
			}
			d := MetricDelta{
				Job: ja.Job, Metric: ma.Name, Unit: ma.Unit,
				A: ma.Value, B: mb.Value,
				Tolerance: tol.For(ma.Name),
			}
			diff := math.Abs(mb.Value - ma.Value)
			if ma.Value != 0 {
				d.RelDelta = diff / math.Abs(ma.Value)
			} else if diff > 0 {
				d.RelDelta = math.Inf(1)
			}
			d.Regressed = d.RelDelta > d.Tolerance
			c.Deltas = append(c.Deltas, d)
			if d.Regressed {
				c.Regressions = append(c.Regressions, d)
			}
		}
	}
	for i := range b.Jobs {
		if !seen[b.Jobs[i].Job] {
			c.DigestChanged = append(c.DigestChanged, b.Jobs[i].Job+" (missing from A)")
		}
	}
	return c, nil
}

// Render formats the comparison for humans: one line per out-of-family
// finding, a summary line last.
func (c *Comparison) Render() string {
	var sb strings.Builder
	for _, j := range c.DigestChanged {
		fmt.Fprintf(&sb, "DIGEST  %-24s job digest changed — the study ran a different computation\n", j)
	}
	for _, d := range c.Regressions {
		dir := "up"
		if d.B < d.A {
			dir = "down"
		}
		fmt.Fprintf(&sb, "METRIC  %-24s %-20s %g -> %g %s (%s %.1f%%, tolerance %.1f%%)\n",
			d.Job, d.Metric, d.A, d.B, d.Unit, dir, d.RelDelta*100, d.Tolerance*100)
	}
	switch {
	case len(c.DigestChanged) > 0:
		fmt.Fprintf(&sb, "lab compare: %s: %d job digest change(s), %d metric regression(s) — HARD FAIL\n",
			c.Study, len(c.DigestChanged), len(c.Regressions))
	case len(c.Regressions) > 0:
		fmt.Fprintf(&sb, "lab compare: %s: %d metric regression(s) beyond tolerance\n", c.Study, len(c.Regressions))
	default:
		fmt.Fprintf(&sb, "lab compare: %s: OK (%d metrics within tolerance, all job digests identical)\n",
			c.Study, len(c.Deltas))
	}
	return sb.String()
}
