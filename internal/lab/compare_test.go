package lab

import (
	"strings"
	"testing"
)

// captureOnce runs the fast test study a single time; tests clone the
// artifact instead of re-running the simulation.
var captured *Artifact

func capture(t *testing.T) *Artifact {
	t.Helper()
	if captured == nil {
		a, err := RunStudy(testStudy(), 2)
		if err != nil {
			t.Fatal(err)
		}
		a.CapturedAt = "2026-01-01T00:00:00Z"
		captured = a
	}
	clone, err := ParseArtifact(captured.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return clone
}

// TestCompareIdentical: an artifact compared against its own clone is
// clean — exit 0, no digest changes, no regressions.
func TestCompareIdentical(t *testing.T) {
	a, b := capture(t), capture(t)
	c, err := Compare(a, b, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitOK {
		t.Errorf("ExitCode() = %d, want %d:\n%s", code, ExitOK, c.Render())
	}
	if len(c.Deltas) == 0 {
		t.Errorf("comparison produced no metric deltas — nothing was compared")
	}
}

// TestComparePerturbedMetric pins the acceptance gate: a metric pushed
// beyond tolerance must fail with the metric-regression exit code.
func TestComparePerturbedMetric(t *testing.T) {
	a, b := capture(t), capture(t)
	// virtualUS carries the default 5% tolerance; +10% must trip it.
	m := findMetric(t, b, "pingpong", "virtualUS")
	m.Value *= 1.10
	c, err := Compare(a, b, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitMetricRegression {
		t.Fatalf("ExitCode() = %d, want %d:\n%s", code, ExitMetricRegression, c.Render())
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Metric != "virtualUS" {
		t.Errorf("Regressions = %+v, want exactly the perturbed virtualUS", c.Regressions)
	}
	if !strings.Contains(c.Render(), "METRIC") {
		t.Errorf("Render() does not flag the metric regression:\n%s", c.Render())
	}
	// The same delta passes once the tolerance is widened — the knob the
	// CLI's -tol flag turns.
	tol := DefaultTolerances()
	tol.PerMetric["virtualUS"] = 0.25
	c2, err := Compare(a, b, tol)
	if err != nil {
		t.Fatal(err)
	}
	if code := c2.ExitCode(); code != ExitOK {
		t.Errorf("with widened tolerance ExitCode() = %d, want %d", code, ExitOK)
	}
}

// TestCompareExactCounterZeroTolerance: counters like receives carry
// tolerance 0 — any drift at all is a regression.
func TestCompareExactCounterZeroTolerance(t *testing.T) {
	a, b := capture(t), capture(t)
	m := findMetric(t, b, "pingpong", "receives")
	m.Value++
	c, err := Compare(a, b, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitMetricRegression {
		t.Errorf("ExitCode() = %d, want %d after a one-count drift in receives", code, ExitMetricRegression)
	}
}

// TestComparePerturbedDigest pins the other acceptance gate: a changed
// job digest is a hard failure with its own exit code, and it outranks
// any metric regression.
func TestComparePerturbedDigest(t *testing.T) {
	a, b := capture(t), capture(t)
	b.Jobs[0].Digest = strings.Repeat("0", 64)
	// Also perturb a metric: digest must still win.
	findMetric(t, b, "intra", "virtualUS").Value *= 2
	c, err := Compare(a, b, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitDigestChange {
		t.Fatalf("ExitCode() = %d, want %d:\n%s", code, ExitDigestChange, c.Render())
	}
	if len(c.DigestChanged) != 1 || c.DigestChanged[0] != "pingpong" {
		t.Errorf("DigestChanged = %v, want [pingpong]", c.DigestChanged)
	}
	if !strings.Contains(c.Render(), "DIGEST") {
		t.Errorf("Render() does not flag the digest change:\n%s", c.Render())
	}
}

// TestCompareMissingJob: a job present in only one artifact counts as a
// digest change, whichever side it is missing from.
func TestCompareMissingJob(t *testing.T) {
	a, b := capture(t), capture(t)
	b.Jobs = b.Jobs[:1]
	c, err := Compare(a, b, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitDigestChange {
		t.Errorf("job missing from B: ExitCode() = %d, want %d", code, ExitDigestChange)
	}
	c, err = Compare(b, a, DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if code := c.ExitCode(); code != ExitDigestChange {
		t.Errorf("job missing from A: ExitCode() = %d, want %d", code, ExitDigestChange)
	}
}

// TestCompareRefusals: comparisons across different configurations,
// studies or schemas are refused with an error — not reported as
// regressions.
func TestCompareRefusals(t *testing.T) {
	a, b := capture(t), capture(t)
	b.ConfigHash = strings.Repeat("f", 64)
	if _, err := Compare(a, b, DefaultTolerances()); err == nil {
		t.Errorf("config hash mismatch: Compare() = nil error, want refusal")
	} else if !strings.Contains(err.Error(), "lab-baseline") {
		t.Errorf("config hash refusal %q does not point at make lab-baseline", err)
	}

	b = capture(t)
	b.Study = "other"
	if _, err := Compare(a, b, DefaultTolerances()); err == nil {
		t.Errorf("study mismatch: Compare() = nil error, want refusal")
	}

	b = capture(t)
	b.Schema = SchemaVersion + 1
	if _, err := Compare(a, b, DefaultTolerances()); err == nil {
		t.Errorf("schema mismatch: Compare() = nil error, want refusal")
	}
}

// TestArtifactTamperDetection: VerifyDigest catches a hand-edited
// artifact body.
func TestArtifactTamperDetection(t *testing.T) {
	a := capture(t)
	if err := a.VerifyDigest(); err != nil {
		t.Fatalf("clean artifact fails verification: %v", err)
	}
	findMetric(t, a, "pingpong", "bytes").Value++
	if err := a.VerifyDigest(); err == nil {
		t.Errorf("tampered artifact passes digest verification")
	}
}

// TestParseArtifactRejectsUnversioned: schema 0 (or pre-schema JSON) is
// not a lab artifact.
func TestParseArtifactRejectsUnversioned(t *testing.T) {
	if _, err := ParseArtifact([]byte(`{"study":"x","jobs":[]}`)); err == nil {
		t.Errorf("ParseArtifact accepted JSON without a schema version")
	}
	if _, err := ParseArtifact([]byte(`not json`)); err == nil {
		t.Errorf("ParseArtifact accepted malformed JSON")
	}
}

// findMetric returns a pointer into the artifact's metric slice so
// tests can perturb values in place.
func findMetric(t *testing.T, a *Artifact, job, name string) *Metric {
	t.Helper()
	for i := range a.Jobs {
		if a.Jobs[i].Job != job {
			continue
		}
		for k := range a.Jobs[i].Metrics {
			if a.Jobs[i].Metrics[k].Name == name {
				return &a.Jobs[i].Metrics[k]
			}
		}
	}
	t.Fatalf("artifact has no metric %s/%s", job, name)
	return nil
}
