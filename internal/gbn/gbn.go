// Package gbn implements the go-back-N sliding-window reliability protocol
// (Tanenbaum, Computer Networks 3/e, pp. 207–213 — the paper's reference
// [10]) that Push-Pull Messaging runs over raw Ethernet frames.
//
// The receiver accepts packets strictly in order and acknowledges
// cumulatively. A packet the upper layer cannot buffer (pushed buffer
// full) is treated exactly like a lost packet: it is not acknowledged, and
// the sender's retransmission timer eventually resends the window. That
// path is what produces the paper's ~150 ms Push-All collapse in the
// late-receiver test (Fig. 6, right).
//
// Beyond the paper's fixed-timeout sender, the Config can arm an adaptive
// retransmission timeout (RFC 6298-style SRTT/RTTVAR estimation with
// Karn's algorithm and exponential backoff on consecutive timeouts) and a
// retransmission budget: after MaxRetries consecutive timeouts with no
// acknowledgement progress the sender declares the peer dead and fires the
// OnDead callback exactly once, so the layer above can fail fast instead
// of retransmitting into a black hole forever. Both features default off,
// in which case the sender behaves bit-for-bit like the fixed-RTO
// original.
package gbn

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/trace"
)

// Config parameterizes one go-back-N session.
type Config struct {
	// Window is the maximum number of unacknowledged packets in flight.
	Window int
	// RTO is the retransmission timeout. The paper's implementation ran
	// on Linux 2.1 jiffy timers; the observed recovery penalty is about
	// 150 ms ("It took around 150 ms to transfer a 3072-byte message").
	// With Adaptive set it becomes the initial RTO used until the first
	// RTT sample arrives.
	RTO sim.Duration

	// Adaptive switches the sender from the fixed RTO to an RFC 6298
	// estimator: SRTT/RTTVAR track acknowledged round trips (Karn's
	// algorithm: retransmitted packets never contribute samples), the
	// timeout is SRTT + 4·RTTVAR clamped to [MinRTO, MaxRTO], and each
	// consecutive timeout doubles it (exponential backoff) until an
	// acknowledgement makes progress again.
	Adaptive bool
	// MinRTO / MaxRTO clamp the adaptive timeout. Zero values default to
	// 1 ms and 60 s (raised to RTO if RTO is larger).
	MinRTO sim.Duration
	MaxRTO sim.Duration

	// MaxRetries, when positive, is the retransmission budget: after this
	// many consecutive timeouts without acknowledgement progress the
	// sender goes dead — it stops retransmitting and re-arming its timer,
	// queues (but never transmits) further Sends, and fires the OnDead
	// callback once. Zero means retry forever (the paper's behavior).
	MaxRetries int
}

// DefaultConfig mirrors the paper's implementation.
func DefaultConfig() Config {
	return Config{Window: 8, RTO: 150 * sim.Millisecond}
}

// ConfigError is the typed validation error returned by Config.Validate.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("gbn: invalid config: %s %s", e.Field, e.Reason)
}

// Validate checks the configuration, returning a *ConfigError describing
// the first violated constraint.
func (c Config) Validate() error {
	if c.Window <= 0 {
		return &ConfigError{Field: "Window", Reason: fmt.Sprintf("must be positive, got %d", c.Window)}
	}
	if c.RTO <= 0 {
		return &ConfigError{Field: "RTO", Reason: fmt.Sprintf("must be positive, got %v", c.RTO)}
	}
	if c.MinRTO < 0 {
		return &ConfigError{Field: "MinRTO", Reason: fmt.Sprintf("must not be negative, got %v", c.MinRTO)}
	}
	if c.MaxRTO < 0 {
		return &ConfigError{Field: "MaxRTO", Reason: fmt.Sprintf("must not be negative, got %v", c.MaxRTO)}
	}
	if c.MinRTO > 0 && c.MaxRTO > 0 && c.MinRTO > c.MaxRTO {
		return &ConfigError{Field: "MinRTO", Reason: fmt.Sprintf("exceeds MaxRTO (%v > %v)", c.MinRTO, c.MaxRTO)}
	}
	if c.MaxRetries < 0 {
		return &ConfigError{Field: "MaxRetries", Reason: fmt.Sprintf("must not be negative, got %d", c.MaxRetries)}
	}
	return nil
}

// Packet is one link-layer payload with a go-back-N sequence number.
type Packet struct {
	Seq   uint32
	Bytes int // payload size on the wire (protocol headers included)
	Data  any
}

// entry is one in-flight packet plus the bookkeeping the adaptive RTO
// needs: when it last went to the wire and whether it was ever
// retransmitted (Karn's algorithm excludes retransmitted packets from RTT
// sampling — their acks are ambiguous).
type entry struct {
	pkt    Packet
	sentAt sim.Time
	rexmit bool
}

// Sender is the transmitting half of a session. transmit hands a packet
// to the wire; it must not block (enqueue and return).
type Sender struct {
	cfg      Config
	e        *sim.Engine
	transmit func(Packet)
	timer    *sim.Timer

	next     uint32 // next sequence number to assign
	base     uint32 // oldest unacknowledged
	inflight []entry
	pending  []Packet // accepted but outside the window

	retransmissions uint64
	timeouts        uint64
	recovered       uint64 // packets acknowledged only after retransmission

	// Adaptive RTO state (RFC 6298): srtt/rttvar are valid once haveRTT.
	srtt    sim.Duration
	rttvar  sim.Duration
	haveRTT bool
	// consec counts consecutive timeouts since the last acknowledgement
	// progress; it drives the exponential backoff and the retransmission
	// budget.
	consec int
	// rtoLog records (µs) every backed-off timeout the adaptive sender
	// armed after a retransmission, for degradation reporting.
	rtoLog []float64

	dead   bool
	onDead func()

	rec     *trace.Recorder
	recNode int
}

// NewSender creates the sending half of a session on engine e. It panics
// on an invalid configuration (sessions are constructed from code, not
// user input); validate with Config.Validate first to get the error.
func NewSender(e *sim.Engine, cfg Config, transmit func(Packet)) *Sender {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sender{cfg: cfg, e: e, transmit: transmit, recNode: -1}
	s.timer = sim.NewTimer(e, s.onTimeout)
	return s
}

// SetTrace attaches a structured trace recorder; node labels the events.
func (s *Sender) SetTrace(rec *trace.Recorder, node int) {
	s.rec = rec
	s.recNode = node
}

// SetOnDead registers the callback fired exactly once when the sender
// exhausts its retransmission budget (Config.MaxRetries). It runs in
// timer context and must not block.
func (s *Sender) SetOnDead(fn func()) { s.onDead = fn }

// Send accepts a payload for reliable in-order delivery. If the window is
// open the packet goes to the wire immediately; otherwise it queues until
// acknowledgements open the window. A dead sender only queues.
func (s *Sender) Send(bytes int, data any) {
	pkt := Packet{Seq: s.next, Bytes: bytes, Data: data}
	s.next++
	if !s.dead && len(s.inflight) < s.cfg.Window {
		s.inflight = append(s.inflight, entry{pkt: pkt, sentAt: s.e.Now()})
		s.transmit(pkt)
		if !s.timer.Armed() {
			s.timer.Reset(s.rto())
		}
	} else {
		s.pending = append(s.pending, pkt)
	}
}

// OnAck processes a cumulative acknowledgement: ack is the receiver's
// next expected sequence number, so every packet with Seq < ack is
// confirmed delivered.
func (s *Sender) OnAck(ack uint32) {
	if s.dead {
		return // budget already exhausted and reported; stay failed
	}
	if ack <= s.base {
		return // stale or duplicate
	}
	advance := int(ack - s.base)
	if advance > len(s.inflight) {
		panic(fmt.Sprintf("gbn: ack %d beyond inflight window [%d, %d)", ack, s.base, s.base+uint32(len(s.inflight))))
	}
	now := s.e.Now()
	var sample sim.Duration
	haveSample := false
	for i := 0; i < advance; i++ {
		ent := &s.inflight[i]
		if ent.rexmit {
			s.recovered++
		} else {
			// Karn's algorithm: only never-retransmitted packets yield
			// samples; the last (freshest) one wins.
			sample = now.Sub(ent.sentAt)
			haveSample = true
		}
	}
	s.inflight = s.inflight[advance:]
	s.base = ack
	s.consec = 0
	if s.cfg.Adaptive && haveSample {
		s.updateRTT(sample)
	}
	// Open window: promote pending packets.
	for len(s.pending) > 0 && len(s.inflight) < s.cfg.Window {
		pkt := s.pending[0]
		s.pending = s.pending[1:]
		s.inflight = append(s.inflight, entry{pkt: pkt, sentAt: now})
		s.transmit(pkt)
	}
	if len(s.inflight) == 0 {
		s.timer.Stop()
	} else {
		s.timer.Reset(s.rto())
	}
}

// updateRTT folds one round-trip sample into the RFC 6298 estimator.
func (s *Sender) updateRTT(r sim.Duration) {
	if !s.haveRTT {
		s.srtt = r
		s.rttvar = r / 2
		s.haveRTT = true
		return
	}
	diff := s.srtt - r
	if diff < 0 {
		diff = -diff
	}
	s.rttvar = (3*s.rttvar + diff) / 4
	s.srtt = (7*s.srtt + r) / 8
}

// rtoBounds resolves the configured clamp, applying the documented
// defaults for zero values.
func (s *Sender) rtoBounds() (lo, hi sim.Duration) {
	lo = s.cfg.MinRTO
	if lo <= 0 {
		lo = sim.Millisecond
	}
	hi = s.cfg.MaxRTO
	if hi <= 0 {
		hi = 60 * sim.Second
		if s.cfg.RTO > hi {
			hi = s.cfg.RTO
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// rto returns the timeout to arm next: the fixed Config.RTO, or — when
// Adaptive — the estimator's SRTT + 4·RTTVAR, doubled per consecutive
// timeout and clamped to [MinRTO, MaxRTO].
func (s *Sender) rto() sim.Duration {
	if !s.cfg.Adaptive {
		return s.cfg.RTO
	}
	d := s.cfg.RTO
	if s.haveRTT {
		d = s.srtt + 4*s.rttvar
	}
	lo, hi := s.rtoBounds()
	if d < lo {
		d = lo
	}
	for i := 0; i < s.consec && d < hi; i++ {
		d *= 2
	}
	if d > hi {
		d = hi
	}
	return d
}

// onTimeout retransmits the entire window (the defining go-back-N move),
// unless the retransmission budget is exhausted — then the sender goes
// dead and reports it instead.
func (s *Sender) onTimeout() {
	if len(s.inflight) == 0 || s.dead {
		return
	}
	s.timeouts++
	s.consec++
	if s.cfg.MaxRetries > 0 && s.consec > s.cfg.MaxRetries {
		s.dead = true
		s.rec.Recordf(s.e.Now(), s.recNode, trace.KindRTO,
			"retransmission budget exhausted after %d consecutive timeouts, window [%d,%d) abandoned",
			s.consec-1, s.base, s.base+uint32(len(s.inflight)))
		if s.onDead != nil {
			cb := s.onDead
			s.onDead = nil
			cb()
		}
		return
	}
	s.rec.Recordf(s.e.Now(), s.recNode, trace.KindRTO, "timeout #%d, window [%d,%d) retransmits", s.timeouts, s.base, s.base+uint32(len(s.inflight)))
	for i := range s.inflight {
		ent := &s.inflight[i]
		s.retransmissions++
		ent.rexmit = true
		s.rec.Recordf(s.e.Now(), s.recNode, trace.KindRetransmit, "seq %d (%dB)", ent.pkt.Seq, ent.pkt.Bytes)
		s.transmit(ent.pkt)
	}
	next := s.rto()
	if s.cfg.Adaptive {
		s.rtoLog = append(s.rtoLog, next.Microseconds())
	}
	s.timer.Reset(next)
}

// Outstanding reports packets sent but not yet acknowledged.
func (s *Sender) Outstanding() int { return len(s.inflight) }

// Queued reports packets accepted but still waiting for window space.
func (s *Sender) Queued() int { return len(s.pending) }

// Retransmissions reports the total number of packet retransmissions.
func (s *Sender) Retransmissions() uint64 { return s.retransmissions }

// Timeouts reports how many times the RTO fired.
func (s *Sender) Timeouts() uint64 { return s.timeouts }

// Recovered reports packets that were acknowledged only after at least
// one retransmission — deliveries the reliability layer actually saved.
func (s *Sender) Recovered() uint64 { return s.recovered }

// Dead reports whether the retransmission budget has been exhausted.
func (s *Sender) Dead() bool { return s.dead }

// CurrentRTO reports the timeout the sender would arm next (including
// any backoff in effect).
func (s *Sender) CurrentRTO() sim.Duration { return s.rto() }

// RTOSamples returns the backed-off timeouts (µs) the adaptive sender
// armed after retransmissions, in firing order. Nil for a fixed-RTO or
// quiescent sender.
func (s *Sender) RTOSamples() []float64 { return s.rtoLog }

// Receiver is the receiving half of a session. deliver hands an in-order
// packet to the upper layer and reports whether it could be buffered; a
// false return suppresses the acknowledgement so the sender retries.
// sendAck transmits a cumulative acknowledgement (next expected seq).
type Receiver struct {
	expected uint32
	deliver  func(Packet) bool
	sendAck  func(ack uint32)

	delivered  uint64
	rejected   uint64
	outOfOrder uint64
	duplicates uint64
}

// NewReceiver creates the receiving half of a session.
func NewReceiver(deliver func(Packet) bool, sendAck func(uint32)) *Receiver {
	return &Receiver{deliver: deliver, sendAck: sendAck}
}

// OnPacket processes an arriving data packet.
func (r *Receiver) OnPacket(pkt Packet) {
	switch {
	case pkt.Seq == r.expected:
		if r.deliver(pkt) {
			r.expected++
			r.delivered++
			r.sendAck(r.expected)
		} else {
			// Upper layer has no buffer: behave as if the packet was
			// lost. No ack; the sender's timer recovers.
			r.rejected++
		}
	case pkt.Seq < r.expected:
		// Duplicate of something already delivered (a retransmission
		// after a lost ack): re-acknowledge so the sender advances.
		r.duplicates++
		r.sendAck(r.expected)
	default:
		// Gap: an earlier packet was lost. Go-back-N discards and
		// re-asserts the cumulative ack.
		r.outOfOrder++
		r.sendAck(r.expected)
	}
}

// Expected reports the next in-order sequence number.
func (r *Receiver) Expected() uint32 { return r.expected }

// Delivered reports packets handed to the upper layer.
func (r *Receiver) Delivered() uint64 { return r.delivered }

// Rejected reports in-order packets the upper layer refused to buffer.
func (r *Receiver) Rejected() uint64 { return r.rejected }

// OutOfOrder reports discarded out-of-order packets.
func (r *Receiver) OutOfOrder() uint64 { return r.outOfOrder }

// Duplicates reports re-acknowledged duplicate packets.
func (r *Receiver) Duplicates() uint64 { return r.duplicates }
