// Package gbn implements the go-back-N sliding-window reliability protocol
// (Tanenbaum, Computer Networks 3/e, pp. 207–213 — the paper's reference
// [10]) that Push-Pull Messaging runs over raw Ethernet frames.
//
// The receiver accepts packets strictly in order and acknowledges
// cumulatively. A packet the upper layer cannot buffer (pushed buffer
// full) is treated exactly like a lost packet: it is not acknowledged, and
// the sender's retransmission timer eventually resends the window. That
// path is what produces the paper's ~150 ms Push-All collapse in the
// late-receiver test (Fig. 6, right).
package gbn

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/trace"
)

// Config parameterizes one go-back-N session.
type Config struct {
	// Window is the maximum number of unacknowledged packets in flight.
	Window int
	// RTO is the retransmission timeout. The paper's implementation ran
	// on Linux 2.1 jiffy timers; the observed recovery penalty is about
	// 150 ms ("It took around 150 ms to transfer a 3072-byte message").
	RTO sim.Duration
}

// DefaultConfig mirrors the paper's implementation.
func DefaultConfig() Config {
	return Config{Window: 8, RTO: 150 * sim.Millisecond}
}

// Packet is one link-layer payload with a go-back-N sequence number.
type Packet struct {
	Seq   uint32
	Bytes int // payload size on the wire (protocol headers included)
	Data  any
}

// Sender is the transmitting half of a session. transmit hands a packet
// to the wire; it must not block (enqueue and return).
type Sender struct {
	cfg      Config
	e        *sim.Engine
	transmit func(Packet)
	timer    *sim.Timer

	next     uint32 // next sequence number to assign
	base     uint32 // oldest unacknowledged
	inflight []Packet
	pending  []Packet // accepted but outside the window

	retransmissions uint64
	timeouts        uint64

	rec     *trace.Recorder
	recNode int
}

// NewSender creates the sending half of a session on engine e.
func NewSender(e *sim.Engine, cfg Config, transmit func(Packet)) *Sender {
	if cfg.Window <= 0 {
		panic("gbn: window must be positive")
	}
	s := &Sender{cfg: cfg, e: e, transmit: transmit, recNode: -1}
	s.timer = sim.NewTimer(e, s.onTimeout)
	return s
}

// SetTrace attaches a structured trace recorder; node labels the events.
func (s *Sender) SetTrace(rec *trace.Recorder, node int) {
	s.rec = rec
	s.recNode = node
}

// Send accepts a payload for reliable in-order delivery. If the window is
// open the packet goes to the wire immediately; otherwise it queues until
// acknowledgements open the window.
func (s *Sender) Send(bytes int, data any) {
	pkt := Packet{Seq: s.next, Bytes: bytes, Data: data}
	s.next++
	if len(s.inflight) < s.cfg.Window {
		s.inflight = append(s.inflight, pkt)
		s.transmit(pkt)
		if !s.timer.Armed() {
			s.timer.Reset(s.cfg.RTO)
		}
	} else {
		s.pending = append(s.pending, pkt)
	}
}

// OnAck processes a cumulative acknowledgement: ack is the receiver's
// next expected sequence number, so every packet with Seq < ack is
// confirmed delivered.
func (s *Sender) OnAck(ack uint32) {
	if ack <= s.base {
		return // stale or duplicate
	}
	advance := int(ack - s.base)
	if advance > len(s.inflight) {
		panic(fmt.Sprintf("gbn: ack %d beyond inflight window [%d, %d)", ack, s.base, s.base+uint32(len(s.inflight))))
	}
	s.inflight = s.inflight[advance:]
	s.base = ack
	// Open window: promote pending packets.
	for len(s.pending) > 0 && len(s.inflight) < s.cfg.Window {
		pkt := s.pending[0]
		s.pending = s.pending[1:]
		s.inflight = append(s.inflight, pkt)
		s.transmit(pkt)
	}
	if len(s.inflight) == 0 {
		s.timer.Stop()
	} else {
		s.timer.Reset(s.cfg.RTO)
	}
}

// onTimeout retransmits the entire window (the defining go-back-N move).
func (s *Sender) onTimeout() {
	if len(s.inflight) == 0 {
		return
	}
	s.timeouts++
	s.rec.Recordf(s.e.Now(), s.recNode, trace.KindRTO, "timeout #%d, window [%d,%d) retransmits", s.timeouts, s.base, s.base+uint32(len(s.inflight)))
	for _, pkt := range s.inflight {
		s.retransmissions++
		s.rec.Recordf(s.e.Now(), s.recNode, trace.KindRetransmit, "seq %d (%dB)", pkt.Seq, pkt.Bytes)
		s.transmit(pkt)
	}
	s.timer.Reset(s.cfg.RTO)
}

// Outstanding reports packets sent but not yet acknowledged.
func (s *Sender) Outstanding() int { return len(s.inflight) }

// Queued reports packets accepted but still waiting for window space.
func (s *Sender) Queued() int { return len(s.pending) }

// Retransmissions reports the total number of packet retransmissions.
func (s *Sender) Retransmissions() uint64 { return s.retransmissions }

// Timeouts reports how many times the RTO fired.
func (s *Sender) Timeouts() uint64 { return s.timeouts }

// Receiver is the receiving half of a session. deliver hands an in-order
// packet to the upper layer and reports whether it could be buffered; a
// false return suppresses the acknowledgement so the sender retries.
// sendAck transmits a cumulative acknowledgement (next expected seq).
type Receiver struct {
	expected uint32
	deliver  func(Packet) bool
	sendAck  func(ack uint32)

	delivered  uint64
	rejected   uint64
	outOfOrder uint64
	duplicates uint64
}

// NewReceiver creates the receiving half of a session.
func NewReceiver(deliver func(Packet) bool, sendAck func(uint32)) *Receiver {
	return &Receiver{deliver: deliver, sendAck: sendAck}
}

// OnPacket processes an arriving data packet.
func (r *Receiver) OnPacket(pkt Packet) {
	switch {
	case pkt.Seq == r.expected:
		if r.deliver(pkt) {
			r.expected++
			r.delivered++
			r.sendAck(r.expected)
		} else {
			// Upper layer has no buffer: behave as if the packet was
			// lost. No ack; the sender's timer recovers.
			r.rejected++
		}
	case pkt.Seq < r.expected:
		// Duplicate of something already delivered (a retransmission
		// after a lost ack): re-acknowledge so the sender advances.
		r.duplicates++
		r.sendAck(r.expected)
	default:
		// Gap: an earlier packet was lost. Go-back-N discards and
		// re-asserts the cumulative ack.
		r.outOfOrder++
		r.sendAck(r.expected)
	}
}

// Expected reports the next in-order sequence number.
func (r *Receiver) Expected() uint32 { return r.expected }

// Delivered reports packets handed to the upper layer.
func (r *Receiver) Delivered() uint64 { return r.delivered }

// Rejected reports in-order packets the upper layer refused to buffer.
func (r *Receiver) Rejected() uint64 { return r.rejected }

// OutOfOrder reports discarded out-of-order packets.
func (r *Receiver) OutOfOrder() uint64 { return r.outOfOrder }

// Duplicates reports re-acknowledged duplicate packets.
func (r *Receiver) Duplicates() uint64 { return r.duplicates }
