package gbn

import (
	"testing"
	"testing/quick"

	"pushpull/internal/sim"
)

// lossyWire connects a Sender and Receiver through an engine with a
// programmable drop rule and a fixed one-way delay.
type lossyWire struct {
	e        *sim.Engine
	delay    sim.Duration
	dropData func(seq uint32, attempt int) bool
	dropAck  func(ack uint32, attempt int) bool
	attempts map[uint32]int
	ackTries map[uint32]int

	s *Sender
	r *Receiver
}

func newLossyWire(e *sim.Engine, cfg Config, deliver func(Packet) bool) *lossyWire {
	w := &lossyWire{
		e:        e,
		delay:    10 * sim.Microsecond,
		attempts: make(map[uint32]int),
		ackTries: make(map[uint32]int),
		dropData: func(uint32, int) bool { return false },
		dropAck:  func(uint32, int) bool { return false },
	}
	w.s = NewSender(e, cfg, func(pkt Packet) {
		a := w.attempts[pkt.Seq]
		w.attempts[pkt.Seq] = a + 1
		if w.dropData(pkt.Seq, a) {
			return
		}
		e.Schedule(w.delay, func() { w.r.OnPacket(pkt) })
	})
	w.r = NewReceiver(deliver, func(ack uint32) {
		a := w.ackTries[ack]
		w.ackTries[ack] = a + 1
		if w.dropAck(ack, a) {
			return
		}
		e.Schedule(w.delay, func() { w.s.OnAck(ack) })
	})
	return w
}

func TestInOrderDeliveryNoLoss(t *testing.T) {
	e := sim.NewEngine(1)
	var got []uint32
	w := newLossyWire(e, DefaultConfig(), func(p Packet) bool {
		got = append(got, p.Seq)
		return true
	})
	for i := 0; i < 20; i++ {
		w.s.Send(100, i)
	}
	e.Run()
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
	for i, seq := range got {
		if seq != uint32(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
	if w.s.Retransmissions() != 0 {
		t.Errorf("retransmissions = %d on a lossless wire", w.s.Retransmissions())
	}
}

func TestWindowLimitsInflight(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 4, RTO: sim.Duration(100 * sim.Millisecond)}
	var maxInflight int
	w := newLossyWire(e, cfg, func(Packet) bool { return true })
	for i := 0; i < 20; i++ {
		w.s.Send(100, i)
		if w.s.Outstanding() > maxInflight {
			maxInflight = w.s.Outstanding()
		}
	}
	if maxInflight > 4 {
		t.Errorf("inflight reached %d, window is 4", maxInflight)
	}
	if w.s.Queued() != 16 {
		t.Errorf("queued = %d, want 16", w.s.Queued())
	}
	e.Run()
	if w.s.Outstanding() != 0 || w.s.Queued() != 0 {
		t.Error("sender did not drain")
	}
}

func TestLostDataRecoveredByTimeout(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	var got []uint32
	w := newLossyWire(e, cfg, func(p Packet) bool {
		got = append(got, p.Seq)
		return true
	})
	// Drop packet 2 on its first attempt only.
	w.dropData = func(seq uint32, attempt int) bool { return seq == 2 && attempt == 0 }
	for i := 0; i < 5; i++ {
		w.s.Send(100, i)
	}
	end := e.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, seq := range got {
		if seq != uint32(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
	if w.s.Timeouts() == 0 {
		t.Error("recovery happened without a timeout?")
	}
	// Recovery must take at least one RTO — this is the paper's ~150 ms
	// Push-All penalty.
	if end < sim.Time(cfg.RTO) {
		t.Errorf("finished at %v, before one RTO %v", end, cfg.RTO)
	}
}

func TestRejectedDeliveryBehavesAsLoss(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := DefaultConfig()
	accept := false
	var got []uint32
	w := newLossyWire(e, cfg, func(p Packet) bool {
		if !accept {
			return false
		}
		got = append(got, p.Seq)
		return true
	})
	w.s.Send(500, "x")
	// Upper layer opens buffer space only after 1 ms (a late receiver).
	e.Schedule(sim.Duration(sim.Millisecond), func() { accept = true })
	end := e.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if w.r.Rejected() == 0 {
		t.Error("no rejection recorded")
	}
	if end < sim.Time(cfg.RTO) {
		t.Errorf("recovered at %v, want >= RTO %v", end, cfg.RTO)
	}
}

func TestLostAckRecoveredByDuplicate(t *testing.T) {
	e := sim.NewEngine(1)
	var got []uint32
	w := newLossyWire(e, DefaultConfig(), func(p Packet) bool {
		got = append(got, p.Seq)
		return true
	})
	dropped := false
	w.dropAck = func(ack uint32, attempt int) bool {
		if !dropped {
			dropped = true
			return true
		}
		return false
	}
	w.s.Send(100, "a")
	e.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d, want exactly 1 (duplicates must not re-deliver)", len(got))
	}
	if w.r.Duplicates() == 0 {
		t.Error("retransmission after lost ack not seen as duplicate")
	}
	if w.s.Outstanding() != 0 {
		t.Error("sender stuck with outstanding packet")
	}
}

func TestOutOfOrderDiscarded(t *testing.T) {
	e := sim.NewEngine(1)
	var got []uint32
	w := newLossyWire(e, DefaultConfig(), func(p Packet) bool {
		got = append(got, p.Seq)
		return true
	})
	// Drop packet 0 once; packets 1..3 arrive first and must be discarded,
	// then the whole window is retransmitted in order.
	w.dropData = func(seq uint32, attempt int) bool { return seq == 0 && attempt == 0 }
	for i := 0; i < 4; i++ {
		w.s.Send(100, i)
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("delivered %d, want 4", len(got))
	}
	for i, seq := range got {
		if seq != uint32(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
	if w.r.OutOfOrder() == 0 {
		t.Error("no out-of-order discards recorded")
	}
}

// TestDeliveryUnderArbitraryLoss is the package's core property: for any
// bounded loss pattern on data and ack packets, every packet is delivered
// exactly once, in order.
func TestDeliveryUnderArbitraryLoss(t *testing.T) {
	property := func(seed uint64, nPkts uint8, dataLossPct, ackLossPct uint8) bool {
		n := int(nPkts)%50 + 1
		dl := int(dataLossPct) % 60 // < 100 so progress is guaranteed
		al := int(ackLossPct) % 60
		e := sim.NewEngine(1)
		rng := sim.NewRand(seed)
		var got []uint32
		w := newLossyWire(e, Config{Window: 5, RTO: sim.Duration(2 * sim.Millisecond)}, func(p Packet) bool {
			got = append(got, p.Seq)
			return true
		})
		// Random loss, but never drop any packet more than 4 times so the
		// simulation terminates.
		w.dropData = func(seq uint32, attempt int) bool {
			return attempt < 4 && rng.Intn(100) < dl
		}
		w.dropAck = func(ack uint32, attempt int) bool {
			return attempt < 4 && rng.Intn(100) < al
		}
		for i := 0; i < n; i++ {
			w.s.Send(64, i)
		}
		e.Run()
		if len(got) != n {
			return false
		}
		for i, seq := range got {
			if seq != uint32(i) {
				return false
			}
		}
		return w.s.Outstanding() == 0 && w.s.Queued() == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStaleAckIgnored(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSender(e, DefaultConfig(), func(Packet) {})
	s.Send(10, "a")
	s.OnAck(1)
	s.OnAck(1) // duplicate
	s.OnAck(0) // stale
	if s.Outstanding() != 0 {
		t.Error("outstanding after full ack")
	}
}

func TestAckBeyondWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ack beyond window did not panic")
		}
	}()
	e := sim.NewEngine(1)
	s := NewSender(e, DefaultConfig(), func(Packet) {})
	s.Send(10, "a")
	s.OnAck(5)
}

func TestZeroWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero window did not panic")
		}
	}()
	NewSender(sim.NewEngine(1), Config{Window: 0, RTO: 1}, func(Packet) {})
}

func TestPendingDrainsInOrder(t *testing.T) {
	e := sim.NewEngine(1)
	var sent []uint32
	s := NewSender(e, Config{Window: 2, RTO: sim.Duration(sim.Millisecond)}, func(p Packet) {
		sent = append(sent, p.Seq)
	})
	for i := 0; i < 6; i++ {
		s.Send(10, i)
	}
	if len(sent) != 2 {
		t.Fatalf("transmitted %d with window 2, want 2", len(sent))
	}
	s.OnAck(1)
	s.OnAck(2)
	s.OnAck(4)
	// All six must have hit the wire by now (OnAck promotes pending
	// packets synchronously). Ack them so the RTO timer disarms and the
	// engine can drain.
	s.OnAck(6)
	e.Run()
	for i, seq := range sent {
		if seq != uint32(i) {
			t.Fatalf("transmit order broken: %v", sent)
		}
	}
	if len(sent) != 6 {
		t.Errorf("transmitted %d of 6", len(sent))
	}
}

func TestReceiverCounters(t *testing.T) {
	acks := 0
	r := NewReceiver(func(Packet) bool { return true }, func(uint32) { acks++ })
	r.OnPacket(Packet{Seq: 0})
	r.OnPacket(Packet{Seq: 0}) // duplicate
	r.OnPacket(Packet{Seq: 5}) // gap
	if r.Delivered() != 1 || r.Duplicates() != 1 || r.OutOfOrder() != 1 {
		t.Errorf("counters: delivered %d dup %d ooo %d", r.Delivered(), r.Duplicates(), r.OutOfOrder())
	}
	if r.Expected() != 1 {
		t.Errorf("expected = %d, want 1", r.Expected())
	}
	if acks != 3 {
		t.Errorf("acks = %d, want 3 (every packet acked or re-acked)", acks)
	}
}

func TestTimerNotArmedWhenIdle(t *testing.T) {
	e := sim.NewEngine(1)
	s := NewSender(e, DefaultConfig(), func(Packet) {})
	s.Send(10, "x")
	s.OnAck(1)
	end := e.Run()
	// The only scheduled event is the now-disarmed RTO check; it must
	// not retransmit.
	if s.Retransmissions() != 0 {
		t.Errorf("idle sender retransmitted %d times (end %v)", s.Retransmissions(), end)
	}
}
