package gbn

import (
	"errors"
	"fmt"
	"testing"

	"pushpull/internal/sim"
)

func TestConfigValidateTyped(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"zero window", Config{Window: 0, RTO: sim.Millisecond}, "Window"},
		{"negative window", Config{Window: -1, RTO: sim.Millisecond}, "Window"},
		{"zero RTO", Config{Window: 8, RTO: 0}, "RTO"},
		{"negative RTO", Config{Window: 8, RTO: -sim.Millisecond}, "RTO"},
		{"negative MinRTO", Config{Window: 8, RTO: sim.Millisecond, MinRTO: -1}, "MinRTO"},
		{"negative MaxRTO", Config{Window: 8, RTO: sim.Millisecond, MaxRTO: -1}, "MaxRTO"},
		{"inverted clamp", Config{Window: 8, RTO: sim.Millisecond,
			MinRTO: 2 * sim.Millisecond, MaxRTO: sim.Millisecond}, "MinRTO"},
		{"negative budget", Config{Window: 8, RTO: sim.Millisecond, MaxRetries: -1}, "MaxRetries"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("Validate() = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Errorf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
			}
		})
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig().Validate() = %v, want nil", err)
	}
}

// TestAdaptiveRTOTracksRTT pins the estimator against a constant-delay
// wire: the first sample sets RTO = RTT + 4·(RTT/2), and with zero
// variance RTTVAR decays so the timeout converges far below a fixed
// 150 ms RTO while never undercutting MinRTO.
func TestAdaptiveRTOTracksRTT(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 4, RTO: 150 * sim.Millisecond, Adaptive: true,
		MinRTO: 100 * sim.Microsecond}
	w := newLossyWire(e, cfg, func(Packet) bool { return true })
	for i := 0; i < 50; i++ {
		w.s.Send(100, i)
	}
	e.Run()
	got := w.s.CurrentRTO()
	if got >= 150*sim.Millisecond {
		t.Errorf("adaptive RTO %v never left the initial 150 ms", got)
	}
	if got < cfg.MinRTO {
		t.Errorf("adaptive RTO %v undercuts MinRTO %v", got, cfg.MinRTO)
	}
	// RTT is 2×10 µs; after 50 zero-variance samples the timeout should
	// sit within a small multiple of it.
	if got > 10*20*sim.Microsecond {
		t.Errorf("adaptive RTO %v did not converge toward the 20 µs RTT", got)
	}
}

// TestKarnRetransmitNotSampled pins Karn's algorithm: an ack that
// covers a retransmitted packet must not feed the estimator, or the
// ambiguous (first-send → late-ack) round trip would poison SRTT.
func TestKarnRetransmitNotSampled(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 1, RTO: sim.Millisecond, Adaptive: true,
		MinRTO: 100 * sim.Microsecond}
	w := newLossyWire(e, cfg, func(Packet) bool { return true })
	w.dropData = func(seq uint32, attempt int) bool { return seq == 0 && attempt == 0 }
	w.s.Send(100, 0)
	e.Run()
	if w.s.Retransmissions() != 1 {
		t.Fatalf("retransmissions = %d, want 1", w.s.Retransmissions())
	}
	// The only delivery was a retransmit: no sample may exist, so the
	// timeout is still the initial RTO doubled once... and then reset by
	// the ack progress to the plain initial RTO.
	if got := w.s.CurrentRTO(); got != cfg.RTO {
		t.Errorf("CurrentRTO = %v after retransmit-only traffic, want initial %v (no Karn sample)", got, cfg.RTO)
	}
	if w.s.Recovered() != 1 {
		t.Errorf("recovered = %d, want 1", w.s.Recovered())
	}
}

// blackoutWire drops every data packet while the engine clock is inside
// [from, to) — a virtual-time link blackout.
func blackoutWire(e *sim.Engine, cfg Config, from, to sim.Time, deliver func(Packet) bool) *lossyWire {
	w := newLossyWire(e, cfg, deliver)
	w.dropData = func(uint32, int) bool {
		now := e.Now()
		return now >= from && now < to
	}
	return w
}

// TestBlackoutBackoffAndRecovery drives a sender into a blackout many
// RTOs long: the adaptive timeout must back off exponentially across
// the outage (each consecutive timeout doubling the armed value), and
// every message must be delivered exactly once, in order, after the
// link returns.
func TestBlackoutBackoffAndRecovery(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 4, RTO: sim.Millisecond, Adaptive: true,
		MinRTO: 500 * sim.Microsecond}
	from := sim.Time(0)                  // dark from the first transmission
	to := from.Add(20 * sim.Millisecond) // ~5 doublings past the 1 ms initial RTO
	seen := make(map[uint32]int)
	var order []uint32
	w := blackoutWire(e, cfg, from, to, func(p Packet) bool {
		seen[p.Seq]++
		order = append(order, p.Seq)
		return true
	})
	const n = 12
	for i := 0; i < n; i++ {
		w.s.Send(100, i)
	}
	e.Run()

	if len(seen) != n {
		t.Fatalf("delivered %d distinct seqs, want %d", len(seen), n)
	}
	for seq, c := range seen {
		if c != 1 {
			t.Errorf("seq %d delivered %d times, want exactly once", seq, c)
		}
	}
	for i, seq := range order {
		if seq != uint32(i) {
			t.Fatalf("delivery order broken at %d: %v", i, order)
		}
	}
	samples := w.s.RTOSamples()
	if len(samples) < 4 {
		t.Fatalf("only %d backoff samples across a 20 ms blackout at 1 ms RTO", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Errorf("backoff shrank mid-outage: sample %d = %v µs after %v µs", i, samples[i], samples[i-1])
		}
	}
	if last, first := samples[len(samples)-1], samples[0]; last < 4*first {
		t.Errorf("backoff grew only %v → %v µs across the outage, want ≥ 4×", first, last)
	}
	if w.s.Dead() {
		t.Error("sender went dead with no retransmission budget configured")
	}
}

// TestBlackoutRetransmissionsPinned pins the exact retransmission and
// timeout counts of seeded random-loss-plus-blackout runs: the
// deterministic engine must reproduce them bit-for-bit, so any change
// to timer arithmetic or backoff policy shows up as a count diff here
// before it shows up as a digest diff in CI.
func TestBlackoutRetransmissionsPinned(t *testing.T) {
	pinned := map[uint64][2]uint64{ // seed → {retransmissions, timeouts}
		1: {16, 4},
		2: {20, 5},
		3: {20, 5},
	}
	for seed, want := range pinned {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			e := sim.NewEngine(seed)
			rng := sim.NewRand(seed)
			cfg := Config{Window: 4, RTO: sim.Millisecond, Adaptive: true,
				MinRTO: 500 * sim.Microsecond}
			from := sim.Time(0) // dark from the first transmission
			to := from.Add(10 * sim.Millisecond)
			seen := make(map[uint32]int)
			w := newLossyWire(e, cfg, func(p Packet) bool {
				seen[p.Seq]++
				return true
			})
			w.dropData = func(uint32, int) bool {
				now := e.Now()
				if now >= from && now < to {
					return true
				}
				return rng.Float64() < 0.05 // light ambient loss around the outage
			}
			const n = 20
			for i := 0; i < n; i++ {
				w.s.Send(100, i)
			}
			e.Run()
			for seq, c := range seen {
				if c != 1 {
					t.Errorf("seq %d delivered %d times, want exactly once", seq, c)
				}
			}
			if len(seen) != n {
				t.Fatalf("delivered %d distinct seqs, want %d", len(seen), n)
			}
			if got := [2]uint64{w.s.Retransmissions(), w.s.Timeouts()}; got != want {
				t.Errorf("seed %d: {retransmissions, timeouts} = %v, want pinned %v", seed, got, want)
			}
		})
	}
}

// TestRetransmissionBudgetDeclaresDead pins the budget semantics: a
// permanently dark link exhausts MaxRetries consecutive timeouts, the
// sender goes dead exactly once, stops retransmitting, and quietly
// queues (never transmits) later Sends.
func TestRetransmissionBudgetDeclaresDead(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 2, RTO: sim.Millisecond, Adaptive: true,
		MinRTO: 500 * sim.Microsecond, MaxRetries: 3}
	deadCalls := 0
	w := newLossyWire(e, cfg, func(Packet) bool { return true })
	w.dropData = func(uint32, int) bool { return true }
	w.s.SetOnDead(func() { deadCalls++ })
	w.s.Send(100, 0)
	e.Run()

	if !w.s.Dead() {
		t.Fatal("sender not dead after a permanently dark link")
	}
	if deadCalls != 1 {
		t.Errorf("OnDead fired %d times, want exactly once", deadCalls)
	}
	if got := w.s.Timeouts(); got != uint64(cfg.MaxRetries)+1 {
		t.Errorf("timeouts = %d, want MaxRetries+1 = %d", got, cfg.MaxRetries+1)
	}
	attempts := w.attempts[0]
	w.s.Send(100, 1)
	e.Run()
	if w.attempts[1] != 0 {
		t.Error("dead sender transmitted a new packet")
	}
	if w.attempts[0] != attempts {
		t.Error("dead sender kept retransmitting")
	}
	if w.s.Queued() != 1 {
		t.Errorf("queued = %d, want 1 (the post-death send)", w.s.Queued())
	}
	if w.s.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1 (the abandoned window)", w.s.Outstanding())
	}
	// A stray late ack must not resurrect it.
	w.s.OnAck(1)
	if !w.s.Dead() {
		t.Error("late ack resurrected a dead sender")
	}
}

// TestFixedRTONotAffected pins that the legacy configuration is
// untouched by the adaptive machinery: with Adaptive off the armed
// timeout never moves off the fixed RTO and no samples are logged.
func TestFixedRTONotAffected(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := Config{Window: 4, RTO: 150 * sim.Millisecond}
	w := newLossyWire(e, cfg, func(Packet) bool { return true })
	w.dropData = func(seq uint32, attempt int) bool { return attempt == 0 }
	for i := 0; i < 10; i++ {
		w.s.Send(100, i)
	}
	e.Run()
	if got := w.s.CurrentRTO(); got != cfg.RTO {
		t.Errorf("fixed-RTO sender's timeout = %v, want %v", got, cfg.RTO)
	}
	if n := len(w.s.RTOSamples()); n != 0 {
		t.Errorf("fixed-RTO sender logged %d backoff samples, want 0", n)
	}
}
