package gbn

import (
	"testing"

	"pushpull/internal/sim"
)

// lossyRun drives one sender/receiver session over an adversarial wire:
// every transmission (data and acks alike) can be dropped, duplicated,
// delayed by a random jitter (which reorders), and the receiver's upper
// layer can transiently refuse deliveries. It returns the values the
// upper layer accepted, in acceptance order.
//
// The property under test is the protocol's whole contract: whatever
// the schedule, delivery is exactly-once and in-order.
func lossyRun(t *testing.T, seed uint64, n int, dropPct, dupPct, rejectPct int, jitterUS int) []int {
	t.Helper()
	e := sim.NewEngine(seed)
	wire := sim.NewRand(seed ^ 0xD00D_FEED_BEEF_CAFE)

	var (
		sender    *Sender
		receiver  *Receiver
		delivered []int
	)

	chance := func(pct int) bool { return pct > 0 && wire.Intn(100) < pct }
	jitter := func() sim.Duration {
		base := 10 * sim.Microsecond
		if jitterUS <= 0 {
			return base
		}
		return base + wire.Duration(sim.Duration(jitterUS)*sim.Microsecond)
	}

	// Data path: sender → receiver.
	transmit := func(pkt Packet) {
		copies := 1
		if chance(dropPct) {
			copies = 0
		} else if chance(dupPct) {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			e.Schedule(jitter(), func() { receiver.OnPacket(pkt) })
		}
	}
	// Ack path: receiver → sender, equally hostile.
	sendAck := func(ack uint32) {
		copies := 1
		if chance(dropPct) {
			copies = 0
		} else if chance(dupPct) {
			copies = 2
		}
		for i := 0; i < copies; i++ {
			e.Schedule(jitter(), func() { sender.OnAck(ack) })
		}
	}
	deliver := func(pkt Packet) bool {
		if chance(rejectPct) {
			return false // upper layer has no buffer: must behave as loss
		}
		delivered = append(delivered, pkt.Data.(int))
		return true
	}

	sender = NewSender(e, Config{Window: 4, RTO: 500 * sim.Microsecond}, transmit)
	receiver = NewReceiver(deliver, sendAck)

	e.Schedule(0, func() {
		for i := 0; i < n; i++ {
			sender.Send(64, i)
		}
	})
	end := e.Run()

	if sender.Outstanding() != 0 || sender.Queued() != 0 {
		t.Fatalf("seed %d: run ended at %v with %d packets in flight and %d queued — the protocol gave up",
			seed, end, sender.Outstanding(), sender.Queued())
	}
	return delivered
}

// checkExactlyOnceInOrder asserts the delivery contract.
func checkExactlyOnceInOrder(t *testing.T, delivered []int, n int, seed uint64) {
	t.Helper()
	if len(delivered) != n {
		t.Fatalf("seed %d: delivered %d of %d payloads", seed, len(delivered), n)
	}
	for i, v := range delivered {
		if v != i {
			t.Fatalf("seed %d: delivery %d carried payload %d (out of order or duplicated): %v", seed, i, v, delivered)
		}
	}
}

// TestGoBackNExactlyOnceUnderAdversarialSchedules sweeps loss,
// duplication, rejection and reorder rates across many seeds.
func TestGoBackNExactlyOnceUnderAdversarialSchedules(t *testing.T) {
	cases := []struct {
		name                                 string
		dropPct, dupPct, rejectPct, jitterUS int
	}{
		{"clean wire", 0, 0, 0, 0},
		{"reorder only", 0, 0, 0, 400},
		{"drops", 20, 0, 0, 50},
		{"duplicates", 0, 25, 0, 50},
		{"rejections", 0, 0, 25, 50},
		{"everything at once", 15, 15, 15, 400},
	}
	const n = 60
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 25; seed++ {
				delivered := lossyRun(t, seed, n, tc.dropPct, tc.dupPct, tc.rejectPct, tc.jitterUS)
				checkExactlyOnceInOrder(t, delivered, n, seed)
			}
		})
	}
}

// TestGoBackNDeterministicReplay: the same seed must reproduce the same
// retransmission history, not just the same deliveries — the scenario
// engine's digests depend on it.
func TestGoBackNDeterministicReplay(t *testing.T) {
	run := func() (retx, timeouts uint64) {
		e := sim.NewEngine(7)
		wire := sim.NewRand(7)
		var sender *Sender
		var receiver *Receiver
		transmit := func(pkt Packet) {
			if wire.Intn(100) < 20 {
				return
			}
			e.Schedule(10*sim.Microsecond, func() { receiver.OnPacket(pkt) })
		}
		sender = NewSender(e, Config{Window: 4, RTO: 500 * sim.Microsecond}, transmit)
		receiver = NewReceiver(
			func(Packet) bool { return true },
			func(ack uint32) { e.Schedule(10*sim.Microsecond, func() { sender.OnAck(ack) }) },
		)
		e.Schedule(0, func() {
			for i := 0; i < 40; i++ {
				sender.Send(64, i)
			}
		})
		e.Run()
		return sender.Retransmissions(), sender.Timeouts()
	}
	r1, t1 := run()
	r2, t2 := run()
	if r1 != r2 || t1 != t2 {
		t.Fatalf("identical seeds diverged: %d/%d vs %d/%d retransmissions/timeouts", r1, t1, r2, t2)
	}
	if r1 == 0 || t1 == 0 {
		t.Fatalf("20%% loss produced no recoveries (%d retransmissions, %d timeouts); the adversary is not wired in", r1, t1)
	}
}

// FuzzGoBackNDelivery lets the fuzzer search the schedule space; the
// seed corpus below runs under plain `go test` as well.
func FuzzGoBackNDelivery(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(10), uint8(10), uint16(200), uint8(40))
	f.Add(uint64(99), uint8(30), uint8(0), uint8(0), uint16(0), uint8(80))
	f.Add(uint64(1234), uint8(0), uint8(30), uint8(30), uint16(900), uint8(25))
	f.Fuzz(func(t *testing.T, seed uint64, dropPct, dupPct, rejectPct uint8, jitterUS uint16, n uint8) {
		if n == 0 {
			return
		}
		// Cap the adversary so progress stays possible and runs stay
		// small; the property must hold for every such schedule.
		run := func(pct uint8) int { return int(pct % 35) }
		delivered := lossyRun(t, seed, int(n), run(dropPct), run(dupPct), run(rejectPct), int(jitterUS%1000))
		checkExactlyOnceInOrder(t, delivered, int(n), seed)
	})
}
