package sim

import "testing"

// The scenario engine diagnoses deadlocks from Pending() and reports
// run time from Now() after the drain, so cancelled events must vanish
// completely: not run, not counted, and never advancing the clock.

func TestAtCancelWithdrawsEvent(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.AtCancel(Time(0).Add(Millisecond), PriorityNormal, func() { ran = true })
	e.Schedule(Microsecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d before cancel, want 2", e.Pending())
	}
	h.Cancel()
	h.Cancel() // double cancel is a no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1", e.Pending())
	}
	end := e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if end != Time(0).Add(Microsecond) {
		t.Errorf("clock advanced to %v; a cancelled event moved it past the last real event", end)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", e.Pending())
	}
}

func TestCancelAfterExecutionIsNoOp(t *testing.T) {
	e := NewEngine(1)
	var h *EventHandle
	h = e.AtCancel(Time(0).Add(Microsecond), PriorityNormal, func() {})
	e.Schedule(Millisecond, func() {})
	e.Run()
	h.Cancel() // event already ran; must not corrupt the pending count
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after late cancel, want 0", e.Pending())
	}
}

// TestTimerStopLeavesNothingPending is the regression the scenario
// engine depends on: a stopped retransmission timer must not leave a
// stale expiration in the heap (it used to advance the clock a full
// RTO past the last delivery and false-flag completed runs as
// livelocked).
func TestTimerStopLeavesNothingPending(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	e.Schedule(0, func() {
		tm.Reset(150 * Millisecond)
	})
	e.Schedule(Microsecond, func() {
		tm.Stop()
	})
	end := e.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after stop, want 0", e.Pending())
	}
	if end != Time(0).Add(Microsecond) {
		t.Errorf("run ended at %v; the stopped timer's stale event dragged the clock", end)
	}
}

func TestTimerResetSupersedesOldDeadline(t *testing.T) {
	e := NewEngine(1)
	var fireTimes []Time
	tm := NewTimer(e, func() { fireTimes = append(fireTimes, e.Now()) })
	e.Schedule(0, func() { tm.Reset(Millisecond) })
	e.Schedule(Microsecond, func() { tm.Reset(2 * Millisecond) })
	e.Run()
	want := Time(0).Add(Microsecond).Add(2 * Millisecond)
	if len(fireTimes) != 1 || fireTimes[0] != want {
		t.Fatalf("fired at %v, want exactly one firing at %v", fireTimes, want)
	}
}
