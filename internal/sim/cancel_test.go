package sim

import "testing"

// The scenario engine diagnoses deadlocks from Pending() and reports
// run time from Now() after the drain, so cancelled events must vanish
// completely: not run, not counted, and never advancing the clock.

func TestAtCancelWithdrawsEvent(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.AtCancel(Time(0).Add(Millisecond), PriorityNormal, func() { ran = true })
	e.Schedule(Microsecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d before cancel, want 2", e.Pending())
	}
	h.Cancel()
	h.Cancel() // double cancel is a no-op
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after cancel, want 1", e.Pending())
	}
	end := e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if end != Time(0).Add(Microsecond) {
		t.Errorf("clock advanced to %v; a cancelled event moved it past the last real event", end)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after drain, want 0", e.Pending())
	}
}

func TestCancelAfterExecutionIsNoOp(t *testing.T) {
	e := NewEngine(1)
	h := e.AtCancel(Time(0).Add(Microsecond), PriorityNormal, func() {})
	e.Schedule(Millisecond, func() {})
	e.Run()
	h.Cancel() // event already ran; must not corrupt the pending count
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after late cancel, want 0", e.Pending())
	}
}

// TestZeroEventHandleCancelIsNoOp: the zero EventHandle is documented as
// inert, so holders need no armed/disarmed bookkeeping before calling
// Cancel (a zero-value Timer field used to dereference nil here).
func TestZeroEventHandleCancelIsNoOp(t *testing.T) {
	var h EventHandle
	h.Cancel() // must not panic
	e := NewEngine(1)
	e.Schedule(Microsecond, func() {})
	h.Cancel() // still inert with engines around
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, a zero handle cancelled a real event", e.Pending())
	}
}

// TestStaleHandleCannotCancelRecycledEvent: event structs are pooled, so
// a handle kept after its event ran must not be able to cancel the
// unrelated event that later reuses the same struct.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	h := e.AtCancel(Time(0).Add(Microsecond), PriorityNormal, func() {})
	e.Run() // the event runs and its struct returns to the pool
	ran := false
	h2 := e.AtCancel(e.Now().Add(Microsecond), PriorityNormal, func() { ran = true })
	h.Cancel() // stale: must not withdraw the recycled incarnation
	e.Run()
	if !ran {
		t.Fatal("stale handle cancelled a recycled event")
	}
	h2.Cancel() // already ran: no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

// TestCancelledEventsDoNotAccumulate is the unbounded-growth regression:
// a long-lived run arming and disarming many retransmission timers must
// keep the event heap at O(live events). Tombstoning (the previous
// implementation) only reclaimed cancelled events when they were popped,
// so this loop used to grow the heap by one entry per arm/disarm.
func TestCancelledEventsDoNotAccumulate(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	const cycles = 100_000
	for i := 0; i < cycles; i++ {
		tm.Reset(150 * Millisecond)
		tm.Stop()
	}
	if n := len(e.events); n != 0 {
		t.Errorf("heap holds %d events after %d arm/disarm cycles, want 0", n, cycles)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
	// The same property with interleaved live events: cancellation must
	// remove from the middle of the heap, not just the ends.
	live := 0
	for i := 0; i < 1000; i++ {
		keep := e.AtCancel(e.Now().Add(Duration(i+1)*Microsecond), PriorityNormal, func() { live++ })
		drop := e.AtCancel(e.Now().Add(Duration(i+1)*Millisecond), PriorityNormal, func() { t.Error("cancelled event ran") })
		drop.Cancel()
		_ = keep
	}
	if n := len(e.events); n != 1000 {
		t.Errorf("heap holds %d events, want exactly the 1000 live ones", n)
	}
	e.Run()
	if live != 1000 {
		t.Errorf("%d live events ran, want 1000", live)
	}
}

// TestTimerStopLeavesNothingPending is the regression the scenario
// engine depends on: a stopped retransmission timer must not leave a
// stale expiration in the heap (it used to advance the clock a full
// RTO past the last delivery and false-flag completed runs as
// livelocked).
func TestTimerStopLeavesNothingPending(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	tm := NewTimer(e, func() { fired++ })
	e.Schedule(0, func() {
		tm.Reset(150 * Millisecond)
	})
	e.Schedule(Microsecond, func() {
		tm.Stop()
	})
	end := e.Run()
	if fired != 0 {
		t.Errorf("stopped timer fired %d times", fired)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d after stop, want 0", e.Pending())
	}
	if end != Time(0).Add(Microsecond) {
		t.Errorf("run ended at %v; the stopped timer's stale event dragged the clock", end)
	}
}

func TestTimerResetSupersedesOldDeadline(t *testing.T) {
	e := NewEngine(1)
	var fireTimes []Time
	tm := NewTimer(e, func() { fireTimes = append(fireTimes, e.Now()) })
	e.Schedule(0, func() { tm.Reset(Millisecond) })
	e.Schedule(Microsecond, func() { tm.Reset(2 * Millisecond) })
	e.Run()
	want := Time(0).Add(Microsecond).Add(2 * Millisecond)
	if len(fireTimes) != 1 || fireTimes[0] != want {
		t.Fatalf("fired at %v, want exactly one firing at %v", fireTimes, want)
	}
}
