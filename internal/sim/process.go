package sim

import "fmt"

// Process is a goroutine-backed simulation coroutine. At most one process
// (or event callback) executes at any moment: the engine resumes a process,
// then blocks until the process parks again (by sleeping or waiting) or
// finishes. This strict hand-off keeps simulations deterministic and
// race-free.
//
// Process methods must only be called from within that process's own body.
type Process struct {
	e      *Engine
	name   string
	resume chan struct{}
	// transferFn is the bound transfer method, created once: scheduling
	// p.transfer directly would allocate a fresh method-value closure on
	// every wake and sleep.
	transferFn func()
	// wakeFn is the wake-path resume: it clears wakePending before
	// transferring so double-wake detection sees the true state.
	wakeFn func()
	done   bool
	// started flips once the start event has run and the goroutine exists;
	// Shutdown must not resume a process that never started.
	started bool
	// pidx is this process's slot in the engine's registry (for O(1)
	// swap-removal on finish).
	pidx int
	// waiting marks the process as parked on a Cond/Queue/Resource so that
	// double-wakes can be detected as model bugs; parked records which cond,
	// for the diagnostic message.
	waiting     bool
	wakePending bool
	parked      *Cond
}

// shutdownSentinel is the poison panic used by Engine.Shutdown to unwind
// parked process goroutines; each process's recover treats it as a normal
// exit rather than a model fault.
type shutdownSentinel struct{}

// Go starts a new process running body at the current virtual time. The
// process is scheduled like any other event; body begins executing when the
// engine reaches that event.
func (e *Engine) Go(name string, body func(p *Process)) *Process {
	return e.GoAt(0, name, body)
}

// GoAt is like Go but delays the start of the process by d.
func (e *Engine) GoAt(d Duration, name string, body func(p *Process)) *Process {
	p := &Process{e: e, name: e.uniqueName(name), resume: make(chan struct{}, 1)}
	p.transferFn = p.transfer
	p.wakeFn = func() {
		p.wakePending = false
		p.transfer()
	}
	e.nproc++
	p.pidx = len(e.procs)
	e.procs = append(e.procs, p)
	e.Schedule(d, func() {
		p.started = true
		go func() {
			<-p.resume
			defer func() {
				// Panics inside a process would otherwise kill the whole
				// program from an anonymous goroutine; capture and re-raise
				// them in engine context so callers of Run see them. The
				// shutdown sentinel is the one expected unwinding.
				if r := recover(); r != nil {
					if _, ok := r.(shutdownSentinel); !ok {
						p.e.fault = r
					}
				}
				p.done = true
				p.e.unregister(p)
				p.e.nproc--
				p.e.yield <- struct{}{}
			}()
			body(p)
		}()
		p.transfer()
	})
	return p
}

// transfer hands the engine's control token to the process and blocks until
// the process parks or finishes. Must be called from engine context.
//
// Both control channels are buffered (capacity 1), so handing the token
// over costs each side a single blocking channel operation: the resume
// send completes immediately and the engine parks only on the yield
// receive; symmetrically the process's yield send completes immediately —
// the engine regains control without a second rendezvous — and the
// process parks only on its resume receive.
func (p *Process) transfer() {
	p.resume <- struct{}{}
	<-p.e.yield
	if p.e.fault != nil {
		f := p.e.fault
		p.e.fault = nil
		panic(f)
	}
}

// park suspends the process until something resumes it. Must be called from
// process context. A resume during engine shutdown unwinds the goroutine
// instead of returning to the model.
func (p *Process) park() {
	p.e.yield <- struct{}{}
	<-p.resume
	if p.e.dying {
		panic(shutdownSentinel{})
	}
}

// wake schedules the process to resume at the current virtual time. It is
// the engine-side counterpart to park. Waking a finished process, or one
// whose previous wake has not run yet, is always a model bug; the panic
// carries enough context (process, virtual time, what it was parked on)
// to find it.
func (p *Process) wake() {
	if p.done {
		panic(fmt.Sprintf("sim: waking finished process %s at %v (last parked on %s)",
			p.name, p.e.now, p.parkedDesc()))
	}
	if p.wakePending {
		panic(fmt.Sprintf("sim: double wake of process %s at %v (parked on %s)",
			p.name, p.e.now, p.parkedDesc()))
	}
	p.wakePending = true
	p.waiting = false
	p.e.At(p.e.now, PriorityNormal, p.wakeFn)
}

// parkOn records the cond the process is registering on; with wake it
// implements the Waiter interface shared with tasklets.
func (p *Process) parkOn(c *Cond) {
	p.waiting = true
	p.parked = c
}

// parkedDesc describes what the process is (or was last) parked on.
func (p *Process) parkedDesc() string {
	switch {
	case p.parked == nil:
		return "nothing"
	case p.parked.name == "":
		return "an unnamed cond"
	default:
		return fmt.Sprintf("cond %q", p.parked.name)
	}
}

// Name reports the process's (unique) name.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.e }

// Now reports the current virtual time.
func (p *Process) Now() Time { return p.e.now }

// Done reports whether the process body has returned.
func (p *Process) Done() bool { return p.done }

// Sleep suspends the process for virtual duration d. Sleeping a negative
// duration panics; sleeping zero yields to other events at the same time.
func (p *Process) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping negative duration %d", p.name, d))
	}
	p.e.At(p.e.now.Add(d), PriorityNormal, p.transferFn)
	p.park()
}

// Yield lets every other event already scheduled at the current time run
// before the process continues.
func (p *Process) Yield() { p.Sleep(0) }
