package sim

import "testing"

func TestProcessSleep(t *testing.T) {
	e := NewEngine(1)
	var wakes []Time
	e.Go("sleeper", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Sleep(10)
			wakes = append(wakes, p.Now())
		}
	})
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wakes = %v, want %v", wakes, want)
		}
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("a", func(p *Process) {
		order = append(order, "a0")
		p.Sleep(10)
		order = append(order, "a10")
		p.Sleep(20)
		order = append(order, "a30")
	})
	e.Go("b", func(p *Process) {
		order = append(order, "b0")
		p.Sleep(15)
		order = append(order, "b15")
	})
	e.Run()
	want := []string{"a0", "b0", "a10", "b15", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestGoAt(t *testing.T) {
	e := NewEngine(1)
	var started Time = -1
	e.GoAt(25, "late", func(p *Process) { started = p.Now() })
	e.Run()
	if started != 25 {
		t.Errorf("process started at %d, want 25", started)
	}
}

func TestProcessSpawnsProcess(t *testing.T) {
	e := NewEngine(1)
	var childTime Time = -1
	e.Go("parent", func(p *Process) {
		p.Sleep(5)
		e.Go("child", func(c *Process) {
			c.Sleep(7)
			childTime = c.Now()
		})
		p.Sleep(100)
	})
	e.Run()
	if childTime != 12 {
		t.Errorf("child finished at %d, want 12", childTime)
	}
}

func TestProcessDone(t *testing.T) {
	e := NewEngine(1)
	p := e.Go("worker", func(p *Process) { p.Sleep(10) })
	e.RunUntil(5)
	if p.Done() {
		t.Error("process done before body returned")
	}
	e.Run()
	if !p.Done() {
		t.Error("process not done after run")
	}
}

func TestProcessNamesUnique(t *testing.T) {
	e := NewEngine(1)
	a := e.Go("w", func(p *Process) {})
	b := e.Go("w", func(p *Process) {})
	if a.Name() == b.Name() {
		t.Errorf("duplicate process names: %q, %q", a.Name(), b.Name())
	}
}

func TestYieldRunsPendingSameTimeEvents(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Go("y", func(p *Process) {
		p.Sleep(10)
		e.Schedule(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "process")
	})
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "process" {
		t.Fatalf("order = %v, want [event process]", order)
	}
}

func TestSleepNegativePanics(t *testing.T) {
	e := NewEngine(1)
	e.Go("bad", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("negative sleep did not panic")
			}
		}()
		p.Sleep(-1)
	})
	e.Run()
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEngine(42)
		var trace []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			e.Go(name, func(p *Process) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(e.Rand().Intn(50)))
					trace = append(trace, p.Name())
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("trace lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestProcessPanicPropagatesToRun(t *testing.T) {
	e := NewEngine(1)
	e.Go("bomb", func(p *Process) {
		p.Sleep(5)
		panic("boom")
	})
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	e.Run()
	t.Error("Run returned despite process panic")
}
