package sim

import (
	"fmt"
	"strings"
	"testing"
)

// pdesTrafficLog is the observable the determinism tests compare: every
// event appends (shard, time, rng draw) to its own shard's slice, so the
// combined transcript pins the exact per-shard execution order and RNG
// sequence. Per-shard slices need no locking — one goroutine owns a
// shard per superstep, and the barrier is the happens-before edge.
type pdesTrafficLog struct {
	byShard [][]string
}

func (l *pdesTrafficLog) add(shard int, t Time, draw uint64) {
	l.byShard[shard] = append(l.byShard[shard], fmt.Sprintf("s%d@%d:%x", shard, t, draw))
}

func (l *pdesTrafficLog) transcript() string {
	var b strings.Builder
	for _, s := range l.byShard {
		b.WriteString(strings.Join(s, " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// seedPDESTraffic loads a partition with a randomized mix of shard-local
// and cross-shard traffic: every hop logs, draws from its shard's RNG,
// reschedules locally at a random offset, and with probability ~1/3
// routes a follow-up to a random shard at a delay >= lookahead. The root
// participates too, fanning root-sourced events into every shard.
func seedPDESTraffic(p *Partition, log *pdesTrafficLog, depth int) {
	shards := p.Shards()
	look := p.Lookahead()
	var hop func(e *Engine, shard, depth int)
	hop = func(e *Engine, shard, depth int) {
		draw := e.Rand().Uint64()
		log.add(shard, e.Now(), draw)
		if depth <= 0 {
			return
		}
		e.Schedule(Duration(1+draw%uint64(2*look)), func() { hop(e, shard, depth-1) })
		if draw%3 == 0 {
			t := int(draw>>8) % shards
			dst := p.Shard(t)
			e.ScheduleOn(dst, look+e.Rand().Duration(look), func() { hop(dst, t+1, depth-1) })
		}
	}
	for i := 0; i < shards; i++ {
		e, shard := p.Shard(i), i+1
		e.At(Time(1+i), PriorityNormal, func() { hop(e, shard, depth) })
	}
	root := p.Root()
	root.At(5, PriorityNormal, func() {
		draw := root.Rand().Uint64()
		log.add(0, root.Now(), draw)
		for i := 0; i < shards; i++ {
			dst, shard := p.Shard(i), i+1
			root.ScheduleOn(dst, Duration(1+draw%7), func() { hop(dst, shard, depth/2) })
		}
	})
}

// TestPDESDigestAcrossWorkers is the determinism property test: for
// several seeds, a randomized interleaving of shard-local and
// cross-shard traffic must produce a byte-identical execution transcript
// (and identical executed counts and clocks) at 1, 2 and 8 workers.
func TestPDESDigestAcrossWorkers(t *testing.T) {
	const shards, depth = 6, 8
	const look = Duration(500)
	for seed := uint64(1); seed <= 3; seed++ {
		runAt := func(workers int) (string, uint64, Time) {
			p := NewPartition(seed, shards, workers, look)
			log := &pdesTrafficLog{byShard: make([][]string, shards+1)}
			seedPDESTraffic(p, log, depth)
			horizon := Time(0).Add(200 * look)
			p.RunUntil(horizon)
			defer p.Shutdown()
			return log.transcript(), p.Executed(), p.Now()
		}
		baseTr, baseEx, baseNow := runAt(1)
		if baseEx == 0 {
			t.Fatalf("seed %d: traffic generator executed nothing", seed)
		}
		for _, w := range []int{2, 8} {
			tr, ex, now := runAt(w)
			if ex != baseEx || now != baseNow {
				t.Errorf("seed %d workers %d: executed/now (%d, %d) != 1-worker (%d, %d)",
					seed, w, ex, now, baseEx, baseNow)
			}
			if tr != baseTr {
				t.Errorf("seed %d workers %d: execution transcript differs from 1-worker run", seed, w)
			}
		}
	}
}

// TestPartitionExecutedPendingExact pins that Executed and Pending are
// exact whole-simulation figures under sharded execution: Pending counts
// queued events on every engine plus routed events still parked in
// outboxes, and Executed sums every shard's executions including
// barrier-merged cross-shard events.
func TestPartitionExecutedPendingExact(t *testing.T) {
	const shards = 3
	p := NewPartition(7, shards, 2, 100)
	defer p.Shutdown()
	var ran [shards + 1]uint64
	for i := 0; i < shards; i++ {
		e, shard := p.Shard(i), i+1
		for k := 1; k <= 5; k++ {
			at := Time(10 * k)
			e.At(at, PriorityNormal, func() {
				ran[shard]++
				if at == 10 {
					dst := p.Shard((shard) % shards)
					e.ScheduleOn(dst, 100, func() { ran[(shard%shards)+1]++ })
				}
			})
		}
	}
	// A routed event parked in the root's outbox before the run starts
	// must already be visible in Pending.
	p.Root().ScheduleOn(p.Shard(0), 7, func() { ran[1]++ })
	if got, want := p.Pending(), shards*5+1; got != want {
		t.Fatalf("Pending() before run = %d, want %d (15 queued + 1 outbox)", got, want)
	}
	p.Run()
	var total uint64
	for _, n := range ran {
		total += n
	}
	if want := uint64(shards*5 + shards + 1); total != want {
		t.Fatalf("events ran = %d, want %d", total, want)
	}
	if got := p.Executed(); got != total {
		t.Errorf("Executed() = %d, want the exact event count %d", got, total)
	}
	if got := p.Pending(); got != 0 {
		t.Errorf("Pending() after run = %d, want 0", got)
	}
}

// TestPDESLookaheadViolationPanics pins the conservative contract: a
// child-sourced cross-shard event below the lookahead floor that lands
// in its destination's past is a model bug and panics at the barrier.
func TestPDESLookaheadViolationPanics(t *testing.T) {
	p := NewPartition(1, 2, 1, 50)
	defer p.Shutdown()
	a, b := p.Shard(0), p.Shard(1)
	b.At(59, PriorityNormal, func() {}) // advances b to the window bound
	a.At(10, PriorityNormal, func() {
		a.ScheduleOn(b, 1, func() {}) // d=1 < lookahead=50: lands at 11 < b's 59
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sub-lookahead cross-shard event did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Run()
}

// TestPartitionShutdownUnwindsParked pins teardown: processes parked on
// shard engines (and the root) when the run stops must be unwound by
// Shutdown, leaving no live process on any engine.
func TestPartitionShutdownUnwindsParked(t *testing.T) {
	p := NewPartition(1, 4, 2, 100)
	park := func(e *Engine, name string) {
		c := NewCond(e)
		e.Go(name, func(pr *Process) { c.Wait(pr) }) // parked forever
	}
	park(p.Root(), "root-pump")
	for i := 0; i < p.Shards(); i++ {
		park(p.Shard(i), fmt.Sprintf("shard%d-pump", i))
		p.Shard(i).At(Time(10+i), PriorityNormal, func() {})
	}
	p.Run()
	p.Shutdown()
	if n := p.Root().Live(); n != 0 {
		t.Errorf("root has %d live processes after Shutdown", n)
	}
	for i := 0; i < p.Shards(); i++ {
		if n := p.Shard(i).Live(); n != 0 {
			t.Errorf("shard %d has %d live processes after Shutdown", i, n)
		}
	}
}

// TestPlanWindow pins the conservative window arithmetic PlanWindow
// shares with the run loop: start at the earliest child event, bound at
// start+L-1 clipped below the root's next event, ready counting only
// shards with work inside the bound.
func TestPlanWindow(t *testing.T) {
	p := NewPartition(1, 3, 1, 50)
	defer p.Shutdown()
	if _, _, _, ok := p.PlanWindow(); ok {
		t.Fatal("empty partition reports a plannable window")
	}
	p.Shard(0).At(10, PriorityNormal, func() {})
	p.Shard(1).At(40, PriorityNormal, func() {})
	p.Shard(2).At(300, PriorityNormal, func() {})
	start, bound, ready, ok := p.PlanWindow()
	if !ok || start != 10 || bound != 59 || ready != 2 {
		t.Fatalf("PlanWindow() = (%d, %d, %d, %v), want (10, 59, 2, true)", start, bound, ready, ok)
	}
	// A root event inside the window clips the bound below it.
	p.Root().At(30, PriorityNormal, func() {})
	start, bound, ready, ok = p.PlanWindow()
	if !ok || start != 10 || bound != 29 || ready != 1 {
		t.Fatalf("root-clipped PlanWindow() = (%d, %d, %d, %v), want (10, 29, 1, true)", start, bound, ready, ok)
	}
	// A root event at or before every child's means no parallel window:
	// the root phase runs exclusively (root wins ties).
	p.Root().At(10, PriorityNormal, func() {})
	if _, _, _, ok := p.PlanWindow(); ok {
		t.Fatal("root at the tie reports a parallel window; the root phase must win")
	}
}

// TestPartitionStatsSchedule pins that the orchestration counters are
// schedule-derived: identical for any worker count.
func TestPartitionStatsSchedule(t *testing.T) {
	capture := func(workers int) PartitionStats {
		p := NewPartition(2, 4, workers, 200)
		log := &pdesTrafficLog{byShard: make([][]string, 5)}
		seedPDESTraffic(p, log, 6)
		p.Run()
		defer p.Shutdown()
		return p.Stats()
	}
	base := capture(1)
	if base.Supersteps == 0 || base.RoutedEvents == 0 {
		t.Fatalf("traffic generator exercised no supersteps/routing: %+v", base)
	}
	if got := capture(4); got != base {
		t.Errorf("stats differ across worker counts:\n 1: %+v\n 4: %+v", base, got)
	}
	if u := base.LookaheadUtilization(); u <= 0 || u > 1 {
		t.Errorf("LookaheadUtilization() = %g, want in (0, 1]", u)
	}
	if m := base.MeanReady(); m <= 0 || m > 4 {
		t.Errorf("MeanReady() = %g, want in (0, shards]", m)
	}
}
