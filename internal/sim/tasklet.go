package sim

import "fmt"

// Waiter is the parking contract shared by both execution tiers. A Waiter
// is anything the synchronization primitives (Cond, Queue, Resource) can
// park and later wake: goroutine-backed processes and inline tasklets both
// satisfy it, so both tiers share the same FIFO waiter lists and wake in
// one deterministic order.
//
// The interface is sealed (its methods are unexported): only Process and
// Tasklet implement it. Model code passes Waiter values through — e.g. a
// Subscribe(w Waiter) API — but never implements them.
type Waiter interface {
	// wake makes the waiter runnable at the current virtual time.
	wake()
	// parkOn records which condition the waiter is registered on, for
	// diagnostics when a wake goes wrong.
	parkOn(c *Cond)
}

// Tasklet is the engine's second execution tier: a resumable state-machine
// callback dispatched inline, with zero goroutine handoff. Where a Process
// costs two channel operations and a goroutine context switch per resume,
// a tasklet resume is an ordinary function call out of the event loop —
// same-timestamp wake chains batch through the direct-dispatch ring and
// never leave engine context.
//
// A tasklet's body is its step function. Each time the tasklet is started,
// woken, or a Sleep expires, the engine calls step(tk) once; the tasklet
// records its own resume point (typically a small pc field in the owning
// struct) and returns whenever it needs to park. Parking happens through
// the polling variants of the sync primitives — Queue.PollGet/PollPut,
// Resource.PollAcquire, Cond.Await — which register the tasklet for a
// wake instead of blocking, then report failure so step can return.
//
// Contract: a tasklet must park on at most one thing at a time — either a
// pending Sleep or a registration made by one failed Poll call — before
// returning from step. (The one exception is registering on conds that
// are only ever Broadcast, never Signalled, where a stale registration
// cannot steal a wake meant for another waiter; the collective-progression
// pump uses this to subscribe to several completions at once.) Wake is
// coalescing: waking an already-scheduled tasklet is a no-op, so redundant
// wakes are harmless as long as step re-checks its guard conditions.
//
// Like everything else in the engine, tasklets are single-threaded: step
// always runs in engine context, interleaved atomically with events and
// process segments in the engine's total (time, priority, seq) order.
type Tasklet struct {
	e    *Engine
	name string
	step func(*Tasklet)
	// runFn is the bound run method, created once so that scheduling a
	// resume never allocates.
	runFn     func()
	scheduled bool
	// waiting and parked mirror Process diagnostics: they record that the
	// tasklet registered on a cond, and which one.
	waiting bool
	parked  *Cond
}

// NewTasklet creates a tasklet that runs step each time it is woken. The
// tasklet is inert until Start (or Wake) is called.
func (e *Engine) NewTasklet(name string, step func(*Tasklet)) *Tasklet {
	tk := &Tasklet{e: e, name: e.uniqueName(name), step: step}
	tk.runFn = tk.run
	return tk
}

// run is the engine-side entry: clear scheduled before stepping so that
// the step function may immediately re-arm (Sleep) or be re-woken.
func (tk *Tasklet) run() {
	tk.scheduled = false
	tk.step(tk)
}

// Name reports the tasklet's (unique) name.
func (tk *Tasklet) Name() string { return tk.name }

// Engine returns the engine this tasklet runs on.
func (tk *Tasklet) Engine() *Engine { return tk.e }

// Now reports the current virtual time.
func (tk *Tasklet) Now() Time { return tk.e.now }

// Start schedules the tasklet's first step at the current virtual time.
// It consumes exactly one dispatch slot — the same cost as Engine.Go —
// which is what keeps process→tasklet conversions digest-neutral.
func (tk *Tasklet) Start() { tk.Wake() }

// Wake schedules the next step at the current virtual time. Waking a
// tasklet that is already scheduled is a no-op (wakes coalesce), so any
// number of same-instant signals produce exactly one step.
func (tk *Tasklet) Wake() {
	if tk.scheduled {
		return
	}
	tk.scheduled = true
	tk.waiting = false
	tk.parked = nil
	tk.e.At(tk.e.now, PriorityNormal, tk.runFn)
}

// wake and parkOn implement Waiter.
func (tk *Tasklet) wake()          { tk.Wake() }
func (tk *Tasklet) parkOn(c *Cond) { tk.waiting = true; tk.parked = c }

// Sleep schedules the next step after virtual duration d. It must be the
// tasklet's only pending resume: sleeping while already scheduled (or
// instead of returning after a failed Poll registration) is a model bug.
func (tk *Tasklet) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: tasklet %s sleeping negative duration %d", tk.name, d))
	}
	if tk.scheduled {
		panic("sim: tasklet " + tk.name + " sleeping while already scheduled")
	}
	tk.scheduled = true
	tk.e.At(tk.e.now.Add(d), PriorityNormal, tk.runFn)
}
