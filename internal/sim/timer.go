package sim

// Timer is a cancellable, resettable one-shot virtual timer, used for
// protocol timeouts (e.g. go-back-N retransmission). The callback runs in
// event context at expiry unless the timer was stopped or reset first.
//
// Stop and Reset withdraw the previously scheduled expiration outright
// (EventHandle.Cancel), so a disarmed timer leaves nothing behind: no
// stale no-op event to advance the clock past the last real activity,
// and nothing to count as pending work.
type Timer struct {
	e      *Engine
	fn     func()
	armed  bool
	at     Time
	handle *EventHandle
}

// NewTimer returns an unarmed timer that will run fn on expiry.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{e: e, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any previous
// schedule.
func (t *Timer) Reset(d Duration) {
	t.handle.Cancel()
	t.armed = true
	t.at = t.e.now.Add(d)
	t.handle = t.e.AtCancel(t.at, PriorityNormal, func() {
		t.armed = false
		t.handle = nil
		t.fn()
	})
}

// Stop disarms the timer. It is safe to stop an unarmed timer.
func (t *Timer) Stop() {
	t.handle.Cancel()
	t.handle = nil
	t.armed = false
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline reports when an armed timer will fire.
func (t *Timer) Deadline() Time { return t.at }
