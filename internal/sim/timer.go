package sim

// Timer is a cancellable, resettable one-shot virtual timer, used for
// protocol timeouts (e.g. go-back-N retransmission). The callback runs in
// event context at expiry unless the timer was stopped or reset first.
type Timer struct {
	e     *Engine
	fn    func()
	gen   uint64 // increments on Stop/Reset; stale expirations check it
	armed bool
	at    Time
}

// NewTimer returns an unarmed timer that will run fn on expiry.
func NewTimer(e *Engine, fn func()) *Timer {
	return &Timer{e: e, fn: fn}
}

// Reset (re)arms the timer to fire d from now, cancelling any previous
// schedule.
func (t *Timer) Reset(d Duration) {
	t.gen++
	t.armed = true
	t.at = t.e.now.Add(d)
	gen := t.gen
	t.e.At(t.at, PriorityNormal, func() {
		if t.gen != gen || !t.armed {
			return // stopped or re-armed since
		}
		t.armed = false
		t.fn()
	})
}

// Stop disarms the timer. It is safe to stop an unarmed timer.
func (t *Timer) Stop() {
	t.gen++
	t.armed = false
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline reports when an armed timer will fire.
func (t *Timer) Deadline() Time { return t.at }
