package sim

// Timer is a cancellable, resettable one-shot virtual timer, used for
// protocol timeouts (e.g. go-back-N retransmission). The callback runs in
// event context at expiry unless the timer was stopped or reset first.
//
// Stop and Reset withdraw the previously scheduled expiration outright
// (EventHandle.Cancel removes it from the event heap in place), so a
// disarmed timer leaves nothing behind: no stale event to advance the
// clock past the last real activity, nothing to count as pending work,
// and no heap growth however many times it is re-armed. Arming and
// disarming allocate nothing in steady state.
type Timer struct {
	e  *Engine
	fn func()
	// expire is the scheduled callback, closed over once here: re-arming
	// with a fresh closure per Reset would put an allocation on the
	// retransmission hot path.
	expire func()
	armed  bool
	at     Time
	handle EventHandle
}

// NewTimer returns an unarmed timer that will run fn on expiry.
func NewTimer(e *Engine, fn func()) *Timer {
	t := &Timer{e: e, fn: fn}
	t.expire = func() {
		t.armed = false
		t.handle = EventHandle{}
		t.fn()
	}
	return t
}

// Reset (re)arms the timer to fire d from now, cancelling any previous
// schedule.
func (t *Timer) Reset(d Duration) {
	t.handle.Cancel()
	t.armed = true
	t.at = t.e.now.Add(d)
	t.handle = t.e.AtCancel(t.at, PriorityNormal, t.expire)
}

// Stop disarms the timer. It is safe to stop an unarmed timer.
func (t *Timer) Stop() {
	t.handle.Cancel()
	t.handle = EventHandle{}
	t.armed = false
}

// Armed reports whether the timer is scheduled to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline reports when an armed timer will fire.
func (t *Timer) Deadline() Time { return t.at }
