package sim

// Cond is a condition variable for simulation processes. Waiters are woken
// in FIFO order, which keeps simulations deterministic.
//
// Unlike sync.Cond there is no associated lock: the simulation's one-at-a-
// time execution model means state examined before Wait cannot change until
// the process parks.
type Cond struct {
	e       *Engine
	waiters []*Process
}

// NewCond returns a condition variable bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// Wait parks the calling process until another event calls Signal or
// Broadcast.
func (c *Cond) Wait(p *Process) {
	p.waiting = true
	c.waiters = append(c.waiters, p)
	p.park()
}

// WaitFor repeatedly waits until pred() reports true. pred is evaluated
// before the first wait, so no wake is lost if the condition already holds.
func (c *Cond) WaitFor(p *Process, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// Signal wakes the longest-waiting process, if any. It reports whether a
// process was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	p := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	p.wake()
	return true
}

// Broadcast wakes every waiting process, in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		p.wake()
	}
	c.waiters = c.waiters[:0]
}

// Waiting reports the number of parked processes.
func (c *Cond) Waiting() int { return len(c.waiters) }
