package sim

// Cond is a condition variable for simulation processes and tasklets.
// Waiters are woken in FIFO order regardless of tier, which keeps
// simulations deterministic.
//
// Unlike sync.Cond there is no associated lock: the simulation's one-at-a-
// time execution model means state examined before Wait cannot change until
// the waiter parks.
type Cond struct {
	e       *Engine
	name    string
	waiters []Waiter
}

// NewCond returns a condition variable bound to engine e.
func NewCond(e *Engine) *Cond { return &Cond{e: e} }

// NewNamedCond is NewCond with a name that appears in wake diagnostics
// ("process X was parked on cond Y").
func NewNamedCond(e *Engine, name string) *Cond { return &Cond{e: e, name: name} }

// Name reports the cond's diagnostic name ("" if unnamed).
func (c *Cond) Name() string { return c.name }

// Await registers w at the tail of the waiter list without parking: the
// next Signal (or Broadcast) reaching that position wakes w. This is the
// tasklet-tier entry point — tasklets cannot block, so they register and
// return from their step instead. The caller must not register the same
// waiter twice before it is woken.
func (c *Cond) Await(w Waiter) {
	w.parkOn(c)
	c.waiters = append(c.waiters, w)
}

// Wait parks the calling process until another event calls Signal or
// Broadcast.
func (c *Cond) Wait(p *Process) {
	c.Await(p)
	p.park()
}

// WaitFor repeatedly waits until pred() reports true. pred is evaluated
// before the first wait, so no wake is lost if the condition already holds.
func (c *Cond) WaitFor(p *Process, pred func() bool) {
	for !pred() {
		c.Wait(p)
	}
}

// Signal wakes the longest-waiting waiter, if any. It reports whether a
// waiter was woken.
func (c *Cond) Signal() bool {
	if len(c.waiters) == 0 {
		return false
	}
	w := c.waiters[0]
	copy(c.waiters, c.waiters[1:])
	c.waiters = c.waiters[:len(c.waiters)-1]
	w.wake()
	return true
}

// Broadcast wakes every waiting waiter, in FIFO order.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		w.wake()
	}
	c.waiters = c.waiters[:0]
}

// Waiting reports the number of registered waiters.
func (c *Cond) Waiting() int { return len(c.waiters) }
