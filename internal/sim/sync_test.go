package sim

import "testing"

func TestCondSignalFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		e.Go(name, func(p *Process) {
			c.Wait(p)
			order = append(order, name)
		})
	}
	e.Go("signaler", func(p *Process) {
		p.Sleep(10)
		c.Signal()
		p.Sleep(10)
		c.Signal()
		p.Sleep(10)
		c.Signal()
	})
	e.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	woken := 0
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Process) {
			c.Wait(p)
			woken++
		})
	}
	e.Go("b", func(p *Process) {
		p.Sleep(1)
		c.Broadcast()
	})
	e.Run()
	if woken != 5 {
		t.Errorf("woken = %d, want 5", woken)
	}
}

func TestCondSignalEmpty(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	if c.Signal() {
		t.Error("Signal on empty cond reported a wake")
	}
}

func TestWaitForNoLostWake(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	ready := false
	var sawReady bool
	e.Go("waiter", func(p *Process) {
		c.WaitFor(p, func() bool { return ready })
		sawReady = ready
	})
	e.Go("setter", func(p *Process) {
		p.Sleep(5)
		ready = true
		c.Broadcast()
	})
	e.Run()
	if !sawReady {
		t.Error("WaitFor returned before predicate held")
	}
}

func TestWaitForAlreadyTrue(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	done := false
	e.Go("w", func(p *Process) {
		c.WaitFor(p, func() bool { return true })
		done = true
	})
	e.Run()
	if !done {
		t.Error("WaitFor with true predicate blocked forever")
	}
}

func TestQueuePutGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	var got []int
	e.Go("consumer", func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p))
		}
	})
	e.Go("producer", func(p *Process) {
		for i := 1; i <= 3; i++ {
			p.Sleep(10)
			q.Put(p, i)
		}
	})
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
}

func TestQueueBoundedBlocksProducer(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 2)
	var putTimes []Time
	e.Go("producer", func(p *Process) {
		for i := 0; i < 3; i++ {
			q.Put(p, i)
			putTimes = append(putTimes, p.Now())
		}
	})
	e.Go("consumer", func(p *Process) {
		p.Sleep(100)
		q.Get(p)
	})
	e.Run()
	if putTimes[0] != 0 || putTimes[1] != 0 {
		t.Errorf("first two puts should not block: %v", putTimes)
	}
	if putTimes[2] != 100 {
		t.Errorf("third put should block until consumer at t=100, got %v", putTimes[2])
	}
}

func TestQueueTryPutOverflow(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 2)
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("TryPut failed with room available")
	}
	if q.TryPut(3) {
		t.Error("TryPut succeeded on full queue")
	}
	if q.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", q.Dropped())
	}
}

func TestQueueTryGet(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[string](e, 0)
	if _, ok := q.TryGet(); ok {
		t.Error("TryGet on empty queue succeeded")
	}
	q.TryPut("x")
	v, ok := q.TryGet()
	if !ok || v != "x" {
		t.Errorf("TryGet = %q, %v", v, ok)
	}
}

func TestQueuePeek(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 0)
	q.TryPut(7)
	q.TryPut(8)
	if v, ok := q.Peek(); !ok || v != 7 {
		t.Errorf("Peek = %d, %v; want 7, true", v, ok)
	}
	if q.Len() != 2 {
		t.Error("Peek consumed an item")
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "bus")
	var holders int
	var maxHolders int
	for i := 0; i < 4; i++ {
		e.Go("user", func(p *Process) {
			r.Acquire(p)
			holders++
			if holders > maxHolders {
				maxHolders = holders
			}
			p.Sleep(10)
			holders--
			r.Release()
		})
	}
	e.Run()
	if maxHolders != 1 {
		t.Errorf("max simultaneous holders = %d, want 1", maxHolders)
	}
	if r.Acquires() != 4 {
		t.Errorf("acquires = %d, want 4", r.Acquires())
	}
	if r.Contended() != 3 {
		t.Errorf("contended = %d, want 3", r.Contended())
	}
	if r.BusyTime() != 40 {
		t.Errorf("busy time = %v, want 40", r.BusyTime())
	}
}

func TestResourceUse(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "link")
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Go("u", func(p *Process) {
			r.Use(p, 10)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{10, 20, 30}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("serialized use ends = %v, want %v", ends, want)
		}
	}
}

func TestResourceReleaseFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("releasing free resource did not panic")
		}
	}()
	e := NewEngine(1)
	NewResource(e, "x").Release()
}

func TestTimerFires(t *testing.T) {
	e := NewEngine(1)
	var fired Time = -1
	tm := NewTimer(e, func() { fired = e.Now() })
	tm.Reset(50)
	e.Run()
	if fired != 50 {
		t.Errorf("timer fired at %d, want 50", fired)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(50)
	e.Schedule(10, func() { tm.Stop() })
	e.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tm := NewTimer(e, func() { times = append(times, e.Now()) })
	tm.Reset(50)
	e.Schedule(10, func() { tm.Reset(100) }) // now fires at 110
	e.Run()
	if len(times) != 1 || times[0] != 110 {
		t.Errorf("fire times = %v, want [110]", times)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of range", v)
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}
