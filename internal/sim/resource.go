package sim

// Resource models mutually exclusive hardware or kernel resources — a
// memory bus, a NIC transmit path, a kernel lock — acquired by processes in
// FIFO order.
//
// Use is a convenience wrapping Acquire / hold for a duration / Release,
// which is the common pattern for modelling a timed bus transaction.
type Resource struct {
	e    *Engine
	name string
	held bool
	free *Cond
	// Busy time accounting, for utilization reports.
	busy      Duration
	lastStart Time
	acquires  uint64
	contended uint64
}

// NewResource returns an idle resource bound to engine e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{e: e, name: name, free: NewNamedCond(e, name)}
}

// Name reports the resource's name.
func (r *Resource) Name() string { return r.name }

// Acquire blocks the calling process until the resource is free, then
// takes it.
func (r *Resource) Acquire(p *Process) {
	if r.held {
		r.contended++
	}
	r.free.WaitFor(p, func() bool { return !r.held })
	r.held = true
	r.acquires++
	r.lastStart = r.e.now
}

// PollAcquire is the tasklet-tier Acquire: it takes the resource if it is
// free; otherwise it registers w at the tail of the FIFO for a wake on
// release and reports false. first must be true on the initial attempt of a logical
// acquisition and false on wake-driven retries, so the contention counter
// counts logical acquisitions exactly once — matching what a blocking
// Acquire would have recorded.
func (r *Resource) PollAcquire(w Waiter, first bool) bool {
	if r.held {
		if first {
			r.contended++
		}
		r.free.Await(w)
		return false
	}
	r.held = true
	r.acquires++
	r.lastStart = r.e.now
	return true
}

// Release frees the resource and wakes the longest waiter. Releasing a free
// resource panics: that is always a model bug.
func (r *Resource) Release() {
	if !r.held {
		panic("sim: release of free resource " + r.name)
	}
	r.held = false
	r.busy += r.e.now.Sub(r.lastStart)
	r.free.Signal()
}

// Use acquires the resource, holds it for d of virtual time, then releases
// it. This is the standard shape of a timed exclusive transaction.
func (r *Resource) Use(p *Process, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Held reports whether the resource is currently held.
func (r *Resource) Held() bool { return r.held }

// BusyTime reports the cumulative time the resource has been held.
func (r *Resource) BusyTime() Duration { return r.busy }

// Acquires reports the total number of acquisitions.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Contended reports how many acquisitions had to wait.
func (r *Resource) Contended() uint64 { return r.contended }
