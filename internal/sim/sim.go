// Package sim provides a deterministic discrete-event simulation kernel in
// virtual time. It is the substrate on which the whole testbed — SMP nodes,
// NICs, Ethernet links and the Push-Pull Messaging protocol itself — is
// modelled.
//
// The kernel schedules callbacks at absolute virtual times and runs them
// in a total order (time, priority, sequence number), so simulations are
// exactly reproducible. On top of the raw event layer sit two execution
// tiers that model code chooses between:
//
//   - Processes (sim.Process): goroutine-backed coroutines that may block
//     on virtual time (Sleep), conditions (Cond), bounded queues (Queue)
//     and resources (Resource). The engine hands control to at most one
//     process at a time, so process code reads like straight-line protocol
//     code yet remains deterministic. Each resume costs a goroutine
//     handoff (~2 µs): fine for application-level scenario code, too
//     expensive for protocol hot paths.
//   - Tasklets (sim.Tasklet): resumable state-machine callbacks dispatched
//     inline by the engine with zero goroutine handoff. A tasklet's step
//     function runs in engine context and parks by registering with a
//     sync primitive through its polling variants (Queue.PollGet/PollPut,
//     Resource.PollAcquire, Cond.Await) and returning; an explicit resume
//     point (a pc field in the owning struct) replaces the goroutine
//     stack. The NIC, go-back-N and switch pumps run on this tier.
//
// Both tiers park on the same primitives through the Waiter interface:
// Cond, Queue and Resource keep a single FIFO waiter list in which
// processes and tasklets mix freely, so wake order — and therefore the
// engine's total execution order — does not depend on which tier a waiter
// runs on. A process wake, a tasklet wake and a tasklet Start each consume
// exactly one scheduling slot, which is what makes converting an actor
// from one tier to the other behavior-neutral (byte-identical scenario
// digests), not just approximately equivalent.
//
// Determinism guarantees are tier-independent: same seed, same model,
// same execution order. Tasklet wakes coalesce (waking an already-
// scheduled tasklet is a no-op) and same-timestamp resumes batch through
// the engine's direct-dispatch ring, so a wake chain never leaves engine
// context.
//
// Engines that ran processes should be torn down with Engine.Shutdown
// once the run is over; otherwise every still-parked process leaks its
// goroutine.
//
// All state is confined to a single Engine; engines are not safe for use
// from multiple goroutines except through the process mechanism. For
// parallelism inside one run, a Partition (conservative barrier-
// synchronous PDES, see pdes.go) shards a simulation across several
// engines: each engine is still driven by exactly one goroutine at a
// time — a worker owns it for one superstep window, and the barrier
// between supersteps establishes the happens-before edge before another
// worker may touch it — so per-engine code keeps the single-threaded
// model, and cross-shard effects go through Engine.ScheduleOn.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports the duration as a floating-point microsecond count,
// the unit used throughout the paper's evaluation.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }
