// Package sim provides a deterministic discrete-event simulation kernel in
// virtual time. It is the substrate on which the whole testbed — SMP nodes,
// NICs, Ethernet links and the Push-Pull Messaging protocol itself — is
// modelled.
//
// The kernel has two layers:
//
//   - An event layer: callbacks scheduled at absolute virtual times and run
//     in a total order (time, priority, sequence number), so simulations are
//     exactly reproducible.
//   - A process layer: goroutine-backed coroutines that may block on virtual
//     time (Sleep), conditions (Cond), bounded queues (Queue) and resources
//     (Resource). The engine hands control to at most one process at a time,
//     so process code reads like straight-line protocol code yet remains
//     deterministic.
//
// All state is confined to a single Engine; engines are not safe for use
// from multiple goroutines except through the process mechanism.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time t+d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Microseconds reports the duration as a floating-point microsecond count,
// the unit used throughout the paper's evaluation.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Seconds reports the duration in seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }
