package sim

import "testing"

// The sim core is the tax every simulated byte pays; these benchmarks
// watch the three hot paths — heap scheduling, process context
// switches, and timer arm/disarm — with -benchmem so allocation
// regressions are visible. BENCH_sim.json at the repo root records the
// baseline.

// BenchmarkScheduleRun measures raw event throughput: schedule-and-run
// batches of future events through the heap, steady state.
func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine(1)
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			e.Schedule(Duration(j%16)*Microsecond, func() {})
		}
		e.Run()
	}
	b.ReportMetric(float64(b.N*batch), "events")
}

// BenchmarkSameTimeDispatch measures the wake/Yield shape: every event
// schedules its successor at the current virtual time.
func BenchmarkSameTimeDispatch(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			e.Schedule(0, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
}

// BenchmarkProcessSwitch measures one full engine->process->engine
// context switch: two processes alternately yielding.
func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine(1)
	body := func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Yield()
		}
	}
	e.Go("a", body)
	e.Go("b", body)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkTimerArmCancel measures the retransmission-timer shape: arm a
// timer, then disarm it before expiry, repeatedly — the go-back-N sender
// does exactly this for every acked window.
func BenchmarkTimerArmCancel(b *testing.B) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			tm.Reset(Millisecond)
			tm.Stop()
			e.Schedule(Microsecond, step)
		}
	}
	e.Schedule(0, step)
	e.Run()
	if pending := e.Pending(); pending != 0 {
		b.Fatalf("Pending() = %d after drain, want 0", pending)
	}
}

// BenchmarkTaskletSwitch is BenchmarkProcessSwitch's counterpart on the
// inline tier: two tasklets alternately yielding (Sleep(0)), the resume
// shape of every converted protocol pump. The gap between the two
// numbers is the goroutine context switch the tasklet tier eliminates.
func BenchmarkTaskletSwitch(b *testing.B) {
	e := NewEngine(1)
	mk := func(name string) *Tasklet {
		n := 0
		var tk *Tasklet
		tk = e.NewTasklet(name, func(*Tasklet) {
			if n < b.N {
				n++
				tk.Sleep(0)
			}
		})
		return tk
	}
	mk("a").Start()
	mk("b").Start()
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
