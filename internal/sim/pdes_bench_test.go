package sim

import "testing"

// The PDES microbenchmarks tracked by the lab's gobench series (see
// internal/lab/gobench.go, which replicates these shapes on the
// exported API): the superstep barrier, cross-shard routing, and the
// per-superstep window planning scan.

// BenchmarkPDESSuperstepBarrier measures one full parallel superstep —
// feed the pool, drain 8 one-event shards, barrier — the fixed overhead
// every window pays regardless of how much work it holds.
func BenchmarkPDESSuperstepBarrier(b *testing.B) {
	const shards = 8
	p := NewPartition(1, shards, 4, 100)
	defer p.Shutdown()
	var tick [shards]func()
	for i := 0; i < shards; i++ {
		e := p.Shard(i)
		tick[i] = func() { e.Schedule(100, tick[e.shard-1]) }
		e.At(1, PriorityNormal, tick[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RunUntil(p.Now().Add(100))
	}
}

// BenchmarkPDESCrossShardRouting measures one routed event end to end:
// outbox append, barrier collection, merge sort and destination insert —
// two shards ping-ponging a single event at exactly the lookahead.
func BenchmarkPDESCrossShardRouting(b *testing.B) {
	p := NewPartition(1, 2, 1, 100)
	defer p.Shutdown()
	a, c := p.Shard(0), p.Shard(1)
	var fwd, back func()
	fwd = func() { a.ScheduleOn(c, 100, back) }
	back = func() { c.ScheduleOn(a, 100, fwd) }
	a.At(1, PriorityNormal, fwd)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RunUntil(p.Now().Add(100))
	}
}

// BenchmarkPDESWindowPlanning measures the conservative lookahead
// computation alone: the PlanWindow scan over 16 loaded shards that the
// run loop repeats before every superstep.
func BenchmarkPDESWindowPlanning(b *testing.B) {
	const shards = 16
	p := NewPartition(1, shards, 1, 100)
	defer p.Shutdown()
	for i := 0; i < shards; i++ {
		p.Shard(i).At(Time(1+i*10), PriorityNormal, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := p.PlanWindow(); !ok {
			b.Fatal("unplannable window")
		}
	}
}
