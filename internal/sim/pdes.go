package sim

import (
	"fmt"
	"sort"
	"sync"
)

// Conservative barrier-synchronous PDES.
//
// A Partition shards one simulation across several Engines — one child
// engine per topology shard plus a root engine for anything not pinned
// to a shard — and executes them in supersteps. Each superstep opens a
// conservative window [T, T+L) where T is the earliest pending child
// event and L is the partition's lookahead (the minimum cross-shard
// event latency, e.g. the minimum link propagation delay of the
// topology). Inside the window every shard's event order depends only
// on its own state, so worker goroutines drain the ready shards
// concurrently; at the barrier the buffered cross-shard events are
// merged in (time, prio, shard, seq) order and inserted into their
// destinations, which makes the destination's subsequent event order —
// and therefore every digest — byte-identical for ANY worker count.
//
// The root engine never runs concurrently with the children: whenever
// its next event is at or before every child's, it executes exclusively
// (root wins ties). Root-sourced events carry no lookahead guarantee
// and are delivered no earlier than the destination's local clock;
// child-sourced events that arrive in a destination's past are a
// lookahead violation and panic — that is always a model bug (an
// emitter bypassed the latency floor the partition was built with).

// routedEvent is one cross-shard event parked in the source engine's
// outbox until the next superstep barrier.
type routedEvent struct {
	dst *Engine
	at  Time
	fn  func()
}

// flushEntry is a routed event tagged with its merge key: source shard
// and emission index, which together with the timestamp give the
// deterministic (time, prio, shard, seq) total order (all routed events
// share PriorityNormal).
type flushEntry struct {
	at    Time
	shard int
	idx   int
	dst   *Engine
	fn    func()
}

// workItem asks a worker to drain one shard up to bound (inclusive).
type workItem struct {
	e     *Engine
	bound Time
}

// PartitionStats counts what the superstep orchestrator did. Every
// field is derived from the event schedule alone, so the numbers are
// identical for any worker count.
type PartitionStats struct {
	// Supersteps is the number of parallel child windows; RootSteps the
	// number of exclusive root phases interleaved between them.
	Supersteps uint64 `json:"supersteps"`
	RootSteps  uint64 `json:"rootSteps"`
	// RoutedEvents counts cross-shard events merged at barriers.
	RoutedEvents uint64 `json:"routedEvents"`
	// ReadySum sums the shards that had work per superstep (the
	// parallelism the schedule exposed); MaxReady is the widest window.
	ReadySum uint64 `json:"readySum"`
	MaxReady int    `json:"maxReady"`
	// WindowNS sums the widths of the windows actually opened and
	// LookaheadNS the full lookahead budget (Supersteps × L): their
	// ratio is how much of the conservative bound the schedule used.
	WindowNS    int64 `json:"windowNS"`
	LookaheadNS int64 `json:"lookaheadNS"`
}

// LookaheadUtilization is the fraction of the conservative lookahead
// budget the opened windows actually spanned (0 when nothing ran).
func (s PartitionStats) LookaheadUtilization() float64 {
	if s.LookaheadNS == 0 {
		return 0
	}
	return float64(s.WindowNS) / float64(s.LookaheadNS)
}

// MeanReady is the mean number of shards with work per superstep.
func (s PartitionStats) MeanReady() float64 {
	if s.Supersteps == 0 {
		return 0
	}
	return float64(s.ReadySum) / float64(s.Supersteps)
}

// Partition is a set of engines executing one simulation under the
// conservative superstep protocol above. Create with NewPartition,
// drive with Run/RunUntil from a single goroutine (the orchestrator),
// and tear down with Shutdown. Model code never sees the Partition:
// it schedules through its local Engine, and cross-shard effects go
// through Engine.ScheduleOn.
type Partition struct {
	root      *Engine
	children  []*Engine
	lookahead Duration
	workers   int

	work    chan workItem
	wg      sync.WaitGroup
	started bool
	closed  bool
	ran     bool

	faults  []any // per shard ID, captured during a superstep
	ready   []*Engine
	scratch []flushEntry

	stats PartitionStats
}

const maxTime = Time(1<<63 - 1)

// NewPartition builds a root engine plus shards child engines. Each
// engine gets its own RNG stream split deterministically from seed (the
// root keeps the unsplit stream, matching a sequential engine), so
// random draws on one shard never perturb another's sequence regardless
// of execution interleaving. lookahead must be positive: it is the
// latency floor every child-sourced cross-shard event respects, and a
// zero floor admits no conservative window at all. workers bounds the
// goroutines draining a superstep; any value is safe and none of them
// changes results, only wall-clock.
func NewPartition(seed uint64, shards, workers int, lookahead Duration) *Partition {
	if shards <= 0 {
		panic("sim: partition needs at least one shard")
	}
	if lookahead <= 0 {
		panic("sim: conservative partition needs positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	p := &Partition{
		lookahead: lookahead,
		workers:   workers,
		faults:    make([]any, shards+1),
	}
	p.root = NewEngine(seed)
	p.root.part, p.root.shard = p, 0
	p.children = make([]*Engine, shards)
	for i := range p.children {
		c := NewEngine(splitSeed(seed, i))
		c.part, c.shard = p, i+1
		p.children[i] = c
	}
	return p
}

// splitSeed derives shard i's RNG seed with a splitmix64-style
// finalizer — deterministic, well-separated streams from one partition
// seed, the same recipe internal/fault uses per fault event.
func splitSeed(seed uint64, i int) uint64 {
	z := seed + (uint64(i)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// Root returns the partition's root engine (shard 0).
func (p *Partition) Root() *Engine { return p.root }

// Shards reports the number of child shards.
func (p *Partition) Shards() int { return len(p.children) }

// Shard returns child engine i (0-based).
func (p *Partition) Shard(i int) *Engine { return p.children[i] }

// Lookahead returns the latency floor the partition was built with.
func (p *Partition) Lookahead() Duration { return p.lookahead }

// SetLookahead replaces the latency floor — the topology hook for a
// builder that only knows the exact floor once its links exist. It must
// be called before the partition first runs, and the new floor must be
// positive.
func (p *Partition) SetLookahead(d Duration) {
	if p.ran {
		panic("sim: SetLookahead after the partition ran")
	}
	if d <= 0 {
		panic("sim: conservative partition needs positive lookahead")
	}
	p.lookahead = d
}

// Workers returns the worker bound the partition was built with.
func (p *Partition) Workers() int { return p.workers }

// PlanWindow computes the next parallel superstep's conservative plan
// without executing anything: the window start (the earliest child
// event), the inclusive bound (start + lookahead - 1, clipped below the
// root's next event), and how many shards have work inside it. ok is
// false when the next phase would not be a parallel window — no child
// has work, or the root's next event is at or before every child's
// (root wins ties and runs exclusively). This mirrors the planning step
// of RunUntil's loop, minus the caller's limit.
func (p *Partition) PlanWindow() (start, bound Time, ready int, ok bool) {
	rootNext, rootHas := p.root.NextEventTime()
	var minChild Time
	childHas := false
	for _, c := range p.children {
		if t, ok := c.NextEventTime(); ok {
			if !childHas || t < minChild {
				minChild = t
			}
			childHas = true
		}
	}
	if !childHas || (rootHas && rootNext <= minChild) {
		return 0, 0, 0, false
	}
	start = minChild
	bound = start.Add(p.lookahead - 1)
	if bound < start { // overflow at the far end of time
		bound = maxTime
	}
	if rootHas && rootNext-1 < bound {
		bound = rootNext - 1
	}
	for _, c := range p.children {
		if t, ok := c.NextEventTime(); ok && t <= bound {
			ready++
		}
	}
	return start, bound, ready, true
}

// Stats returns the orchestration counters accumulated so far.
func (p *Partition) Stats() PartitionStats { return p.stats }

// Now reports the partition's virtual time: the maximum over its
// engines' clocks, i.e. the last executed event anywhere (mirroring
// Engine.RunUntil, which leaves the clock at the last executed event).
func (p *Partition) Now() Time {
	t := p.root.Now()
	for _, c := range p.children {
		if n := c.Now(); n > t {
			t = n
		}
	}
	return t
}

// Executed reports events run across all engines — the exact
// whole-simulation counterpart of Engine.Executed.
func (p *Partition) Executed() uint64 {
	n := p.root.Executed()
	for _, c := range p.children {
		n += c.Executed()
	}
	return n
}

// Pending reports queued events across all engines plus routed events
// still parked in outboxes — the exact whole-simulation counterpart of
// Engine.Pending.
func (p *Partition) Pending() int {
	n := p.root.Pending() + len(p.root.outbox)
	for _, c := range p.children {
		n += c.Pending() + len(c.outbox)
	}
	return n
}

// Run executes the partition until every queue is empty. It returns the
// final virtual time.
func (p *Partition) Run() Time { return p.RunUntil(maxTime) }

// RunUntil executes events with timestamps <= limit across all shards,
// then returns the partition clock. The loop alternates two phases:
// exclusive root execution whenever the root's next event is at or
// before every child's, and parallel child supersteps otherwise. Both
// phases end with a barrier flush of the cross-shard outboxes.
func (p *Partition) RunUntil(limit Time) Time {
	p.ran = true
	for {
		rootNext, rootHas := p.root.NextEventTime()
		var minChild Time
		childHas := false
		for _, c := range p.children {
			if t, ok := c.NextEventTime(); ok {
				if !childHas || t < minChild {
					minChild = t
				}
				childHas = true
			}
		}
		if !childHas && !rootHas {
			break
		}
		if rootHas && (!childHas || rootNext <= minChild) {
			// Exclusive root phase: run the root alone up to the first
			// child event (root wins ties — a fixed, worker-independent
			// rule), never past limit.
			if rootNext > limit {
				break
			}
			bound := limit
			if childHas && minChild < bound {
				bound = minChild
			}
			p.root.RunUntil(bound)
			p.stats.RootSteps++
			p.flush()
			continue
		}
		// Parallel superstep: window [T, T+L), clipped below the root's
		// next event and the caller's limit. bound is inclusive.
		if minChild > limit {
			break
		}
		T := minChild
		bound := T.Add(p.lookahead - 1)
		if bound < T { // overflow at the far end of time
			bound = maxTime
		}
		if rootHas && rootNext-1 < bound {
			bound = rootNext - 1
		}
		if limit < bound {
			bound = limit
		}
		ready := p.ready[:0]
		for _, c := range p.children {
			if t, ok := c.NextEventTime(); ok && t <= bound {
				ready = append(ready, c)
			}
		}
		p.runWindow(ready, bound)
		p.stats.Supersteps++
		p.stats.ReadySum += uint64(len(ready))
		if len(ready) > p.stats.MaxReady {
			p.stats.MaxReady = len(ready)
		}
		p.stats.WindowNS += int64(Duration(bound-T) + 1)
		p.stats.LookaheadNS += int64(p.lookahead)
		for i := range ready {
			ready[i] = nil
		}
		p.ready = ready[:0]
		p.flush()
	}
	return p.Now()
}

// runWindow drains every ready shard up to bound. With one worker (or
// one ready shard) it runs inline on the orchestrator; otherwise the
// shards go to the worker pool and the WaitGroup is the superstep
// barrier. Shard panics are captured per shard — the rest of the window
// still completes, so the partition state at the re-raise is identical
// for any worker count — and the lowest-shard fault is re-raised on the
// orchestrator.
func (p *Partition) runWindow(ready []*Engine, bound Time) {
	if p.workers <= 1 || len(ready) <= 1 {
		for _, c := range ready {
			p.runShard(workItem{e: c, bound: bound})
		}
	} else {
		p.startWorkers()
		p.wg.Add(len(ready))
		for _, c := range ready {
			p.work <- workItem{e: c, bound: bound}
		}
		p.wg.Wait()
	}
	for _, f := range p.faults {
		if f != nil {
			for j := range p.faults {
				p.faults[j] = nil
			}
			panic(f)
		}
	}
}

// runShard executes one work item, capturing a panic under the shard's
// slot so the barrier can re-raise deterministically.
func (p *Partition) runShard(it workItem) {
	defer func() {
		if r := recover(); r != nil {
			p.faults[it.e.shard] = r
		}
	}()
	it.e.RunUntil(it.bound)
}

// startWorkers lazily spins up the pool. The work channel is buffered
// to the shard count so the orchestrator never blocks feeding a
// superstep.
func (p *Partition) startWorkers() {
	if p.started {
		return
	}
	p.started = true
	p.work = make(chan workItem, len(p.children))
	n := p.workers
	if n > len(p.children) {
		n = len(p.children)
	}
	for i := 0; i < n; i++ {
		go func() {
			for it := range p.work {
				p.runShard(it)
				p.wg.Done()
			}
		}()
	}
}

// flush merges every outbox into the destination engines in
// (time, prio, shard, seq) order — the partition's deterministic merge
// rule (prio is constant: routed events are PriorityNormal). Insertion
// order fixes the destination-side sequence numbers, so the resulting
// execution order is independent of how the superstep was scheduled.
func (p *Partition) flush() {
	es := p.scratch[:0]
	collect := func(e *Engine) {
		for i := range e.outbox {
			r := &e.outbox[i]
			es = append(es, flushEntry{at: r.at, shard: e.shard, idx: i, dst: r.dst, fn: r.fn})
			e.outbox[i] = routedEvent{}
		}
		e.outbox = e.outbox[:0]
	}
	collect(p.root)
	for _, c := range p.children {
		collect(c)
	}
	if len(es) == 0 {
		p.scratch = es
		return
	}
	sort.Slice(es, func(i, j int) bool {
		a, b := &es[i], &es[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.idx < b.idx
	})
	for i := range es {
		en := &es[i]
		t := en.at
		if t < en.dst.now {
			if en.shard == 0 {
				// Root-sourced: no lookahead contract; deliver no earlier
				// than the destination's clock. (In practice the root phase
				// always runs strictly below the children's windows, so
				// this clamp is a safety net, not a steady-state path.)
				t = en.dst.now
			} else {
				panic(fmt.Sprintf("sim: lookahead violation: shard %d routed an event at %v into a shard already at %v (lookahead %v)",
					en.shard-1, en.at, en.dst.now, p.lookahead))
			}
		}
		en.dst.At(t, PriorityNormal, en.fn)
		en.fn = nil
		p.stats.RoutedEvents++
	}
	p.scratch = es[:0]
}

// Shutdown tears down every engine (root first, then shards in order,
// unwinding parked processes exactly like Engine.Shutdown) and stops
// the worker pool. If any engine's teardown re-raises a process fault,
// the first one (in shard order) is re-raised after all engines are
// down. The partition is dead afterwards.
func (p *Partition) Shutdown() {
	if p.started && !p.closed {
		close(p.work)
		p.closed = true
	}
	var fault any
	down := func(e *Engine) {
		defer func() {
			if r := recover(); r != nil && fault == nil {
				fault = r
			}
		}()
		e.Shutdown()
	}
	down(p.root)
	for _, c := range p.children {
		down(c)
	}
	p.root.outbox = nil
	for _, c := range p.children {
		c.outbox = nil
	}
	if fault != nil {
		panic(fault)
	}
}
