package sim

import (
	"fmt"
	"testing"
)

// The scenario engine's determinism rests on the engine's total event
// order and on Cond waking waiters strictly FIFO (cond.go's contract).
// These tests pin that contract explicitly: if wake order ever became
// map-ordered or LIFO, simulations would stay runnable but silently
// stop being reproducible.

// TestCondSignalIsFIFO parks N processes in a known order and signals
// one at a time: each Signal must wake the longest-waiting process.
func TestCondSignalIsFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	const n = 8
	var woken []int
	for i := 0; i < n; i++ {
		i := i
		// Stagger the starts so the wait order is pinned: process i
		// parks at time i.
		e.GoAt(Duration(i)*Microsecond, fmt.Sprintf("waiter%d", i), func(p *Process) {
			c.Wait(p)
			woken = append(woken, i)
		})
	}
	e.GoAt(Duration(n)*Microsecond, "signaller", func(p *Process) {
		for i := 0; i < n; i++ {
			if !c.Signal() {
				t.Errorf("signal %d found no waiter", i)
			}
			// Let the woken process run before the next signal, so any
			// deviation from FIFO shows in the recorded order.
			p.Sleep(Microsecond)
		}
	})
	e.Run()
	for i, got := range woken {
		if got != i {
			t.Fatalf("wake order %v is not FIFO", woken)
		}
	}
	if len(woken) != n {
		t.Fatalf("woke %d of %d waiters", len(woken), n)
	}
}

// TestCondBroadcastIsFIFO: Broadcast must wake everyone in wait order.
func TestCondBroadcastIsFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	const n = 6
	var woken []int
	for i := 0; i < n; i++ {
		i := i
		e.GoAt(Duration(i)*Microsecond, fmt.Sprintf("waiter%d", i), func(p *Process) {
			c.Wait(p)
			woken = append(woken, i)
		})
	}
	e.GoAt(Duration(n)*Microsecond, "broadcaster", func(p *Process) {
		c.Broadcast()
	})
	e.Run()
	if len(woken) != n {
		t.Fatalf("woke %d of %d waiters", len(woken), n)
	}
	for i, got := range woken {
		if got != i {
			t.Fatalf("broadcast wake order %v is not FIFO", woken)
		}
	}
}

// TestCondWaitForNoLostWake: WaitFor evaluates its predicate before the
// first wait, so a condition that already holds must not park at all,
// and a waiter whose predicate turns true between wakes must proceed.
func TestCondWaitForNoLostWake(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	ready := true
	ran := false
	e.Go("immediate", func(p *Process) {
		c.WaitFor(p, func() bool { return ready })
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("WaitFor parked although the predicate already held")
	}
	if c.Waiting() != 0 {
		t.Fatalf("%d processes still parked", c.Waiting())
	}
}

// TestCondSignalOnEmpty: signalling with no waiters reports false and
// must not corrupt later waits.
func TestCondSignalOnEmpty(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	if c.Signal() {
		t.Error("Signal() on an empty cond reported a wake")
	}
	ran := false
	e.Go("waiter", func(p *Process) {
		c.Wait(p)
		ran = true
	})
	e.Go("signaller", func(p *Process) {
		p.Sleep(Microsecond)
		c.Signal()
	})
	e.Run()
	if !ran {
		t.Fatal("waiter never woke after an earlier empty Signal")
	}
}
