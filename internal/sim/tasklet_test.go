package sim

import (
	"strings"
	"testing"
)

// TestTaskletQueuePump is the canonical pump shape: a tasklet consumer
// draining a queue fed by a process producer, parking via PollGet when
// the queue runs dry and waking on the Put signal.
func TestTaskletQueuePump(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 2)
	var got []int
	tk := e.NewTasklet("pump", func(tk *Tasklet) {
		for {
			v, ok := q.PollGet(tk)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	tk.Start()
	e.Go("producer", func(p *Process) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
			p.Sleep(Microsecond)
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("pump drained %d items, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i)
		}
	}
}

// TestTaskletSleepResumes checks that Sleep re-arms the step function at
// the right virtual time and that a state-machine pc survives parking.
func TestTaskletSleepResumes(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	pc := 0
	tk := e.NewTasklet("sleeper", func(tk *Tasklet) {
		times = append(times, tk.Now())
		if pc < 3 {
			pc++
			tk.Sleep(10 * Microsecond)
		}
	})
	tk.Start()
	e.Run()
	want := []Time{0, Time(10 * Microsecond), Time(20 * Microsecond), Time(30 * Microsecond)}
	if len(times) != len(want) {
		t.Fatalf("stepped %d times, want %d", len(times), len(want))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("step %d at %v, want %v", i, times[i], want[i])
		}
	}
}

// TestTaskletWakeCoalesces: any number of same-instant wakes produce
// exactly one step.
func TestTaskletWakeCoalesces(t *testing.T) {
	e := NewEngine(1)
	steps := 0
	tk := e.NewTasklet("coalesce", func(tk *Tasklet) { steps++ })
	tk.Wake()
	tk.Wake()
	tk.Wake()
	e.Run()
	if steps != 1 {
		t.Fatalf("3 wakes ran %d steps, want 1", steps)
	}
	// After the step ran, a new wake schedules again.
	tk.Wake()
	e.Run()
	if steps != 2 {
		t.Fatalf("re-wake ran %d total steps, want 2", steps)
	}
}

// TestTaskletSleepWhileScheduledPanics: double-arming is a model bug.
func TestTaskletSleepWhileScheduledPanics(t *testing.T) {
	e := NewEngine(1)
	tk := e.NewTasklet("bad", func(tk *Tasklet) {})
	tk.Wake()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Sleep while scheduled did not panic")
		}
		if !strings.Contains(r.(string), "already scheduled") {
			t.Fatalf("panic %q lacks diagnosis", r)
		}
	}()
	tk.Sleep(Microsecond)
}

// TestTaskletNegativeSleepPanics mirrors the process-tier contract.
func TestTaskletNegativeSleepPanics(t *testing.T) {
	e := NewEngine(1)
	tk := e.NewTasklet("neg", func(tk *Tasklet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("negative Sleep did not panic")
		}
	}()
	tk.Sleep(-1)
}

// TestMixedTierCondFIFO parks a process and a tasklet on one cond and
// checks Signal wakes them in registration order, whatever the tier.
func TestMixedTierCondFIFO(t *testing.T) {
	e := NewEngine(1)
	c := NewNamedCond(e, "mixed")
	var order []string
	e.Go("proc", func(p *Process) {
		c.Wait(p)
		order = append(order, "proc")
	})
	tk := e.NewTasklet("task", func(tk *Tasklet) {
		order = append(order, "task")
	})
	e.Schedule(Microsecond, func() { c.Await(tk) }) // register after the process
	e.Schedule(2*Microsecond, func() { c.Signal() })
	e.Schedule(3*Microsecond, func() { c.Signal() })
	e.Run()
	if len(order) != 2 || order[0] != "proc" || order[1] != "task" {
		t.Fatalf("wake order %v, want [proc task]", order)
	}
}

// TestTaskletProcessSlotEquivalence pins the property the protocol
// conversions rely on: a tasklet Start and Sleep consume scheduling
// slots exactly like Engine.Go and Process.Sleep, so an interleaved
// third party observes the identical sequence numbering either way.
func TestTaskletProcessSlotEquivalence(t *testing.T) {
	run := func(useTasklet bool) []uint64 {
		e := NewEngine(7)
		var seqs []uint64
		mark := func() { seqs = append(seqs, e.Executed()) }
		if useTasklet {
			pc := 0
			tk := e.NewTasklet("x", func(tk *Tasklet) {
				if pc < 2 {
					pc++
					tk.Sleep(0)
				}
			})
			tk.Start()
		} else {
			e.Go("x", func(p *Process) {
				p.Yield()
				p.Yield()
			})
		}
		e.Schedule(0, mark)
		e.Schedule(0, mark)
		e.Schedule(0, mark)
		e.Run()
		return seqs
	}
	p, tk := run(false), run(true)
	if len(p) != len(tk) {
		t.Fatalf("marker counts differ: %v vs %v", p, tk)
	}
	for i := range p {
		if p[i] != tk[i] {
			t.Fatalf("marker %d saw executed=%d under processes, %d under tasklets", i, p[i], tk[i])
		}
	}
}

// TestPollAcquireContendedOnce: the first failed attempt counts one
// contention; re-attempts after wakes (first=false) do not inflate it.
func TestPollAcquireContendedOnce(t *testing.T) {
	e := NewEngine(1)
	r := NewResource(e, "bus")
	e.Go("holder", func(p *Process) {
		r.Acquire(p)
		p.Sleep(10 * Microsecond)
		r.Release()
		p.Sleep(10 * Microsecond) // reacquired by the tasklet in between
	})
	acquired := false
	first := true
	tk := e.NewTasklet("taker", func(tk *Tasklet) {
		if !r.PollAcquire(tk, first) {
			first = false
			return
		}
		acquired = true
		r.Release()
	})
	e.Schedule(Microsecond, func() { tk.Start() })
	e.Run()
	if !acquired {
		t.Fatal("tasklet never acquired the resource")
	}
	if got := r.Contended(); got != 1 {
		t.Fatalf("Contended() = %d, want 1 (one logical acquire, however many retries)", got)
	}
}

// TestPollPutDefersWithoutDropping: a full queue defers the producer
// tasklet — the item is retried, never counted dropped.
func TestPollPutDefersWithoutDropping(t *testing.T) {
	e := NewEngine(1)
	q := NewQueue[int](e, 1)
	q.TryPut(99)
	sent := false
	tk := e.NewTasklet("src", func(tk *Tasklet) {
		if !sent {
			if !q.PollPut(tk, 7) {
				return
			}
			sent = true
		}
	})
	tk.Start()
	e.Go("sink", func(p *Process) {
		p.Sleep(Microsecond)
		if v := q.Get(p); v != 99 {
			t.Errorf("first item %d, want 99", v)
		}
		p.Sleep(Microsecond)
		if v := q.Get(p); v != 7 {
			t.Errorf("second item %d, want 7", v)
		}
	})
	e.Run()
	if !sent {
		t.Fatal("deferred PollPut never completed")
	}
	if q.Dropped() != 0 {
		t.Fatalf("Dropped() = %d, want 0 (deferred is not dropped)", q.Dropped())
	}
}

// TestMixedTiersDeterministic runs a process/tasklet mesh twice and
// checks the trace matches — the same determinism contract the process
// tier has always had, now across both tiers. Run under -race this also
// exercises the memory-model handoff between goroutines and engine
// context.
func TestMixedTiersDeterministic(t *testing.T) {
	run := func() []int {
		e := NewEngine(42)
		q := NewQueue[int](e, 4)
		var trace []int
		tk := e.NewTasklet("pump", func(tk *Tasklet) {
			for {
				v, ok := q.PollGet(tk)
				if !ok {
					return
				}
				trace = append(trace, v)
			}
		})
		tk.Start()
		for i := 0; i < 3; i++ {
			i := i
			e.Go("feeder", func(p *Process) {
				for j := 0; j < 5; j++ {
					q.Put(p, i*100+j)
					p.Sleep(Duration(e.Rand().Intn(10)) * Microsecond)
				}
			})
		}
		e.Run()
		return trace
	}
	a, b := run(), run()
	if len(a) != 15 || len(b) != 15 {
		t.Fatalf("traces have %d and %d items, want 15", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestDoubleWakePanicsWithContext: waking a process whose wake is
// already pending panics, naming the process, time, and cond.
func TestDoubleWakePanicsWithContext(t *testing.T) {
	e := NewEngine(1)
	c := NewNamedCond(e, "the-cond")
	e.Go("victim", func(p *Process) { c.Wait(p) })
	e.Schedule(Microsecond, func() {
		c.Broadcast() // first wake
		defer func() {
			r := recover()
			if r == nil {
				t.Error("double wake did not panic")
				return
			}
			msg := r.(string)
			for _, want := range []string{"double wake", "victim", `cond "the-cond"`, "1.000µs"} {
				if !strings.Contains(msg, want) {
					t.Errorf("panic %q missing %q", msg, want)
				}
			}
			e.Stop() // the victim's wake is still pending; don't run it twice
		}()
		e.procs[0].wake() // second wake of the same park
	})
	e.Run()
}

// TestWakeFinishedProcessPanics: a wake landing after the process
// finished names the process and what it last parked on.
func TestWakeFinishedProcessPanics(t *testing.T) {
	e := NewEngine(1)
	c := NewNamedCond(e, "stale")
	var victim *Process
	e.Go("shortlived", func(p *Process) {
		victim = p
		c.Wait(p)
	})
	e.Schedule(Microsecond, func() { c.Broadcast() })
	e.Schedule(2*Microsecond, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("waking a finished process did not panic")
				return
			}
			msg := r.(string)
			for _, want := range []string{"finished process", "shortlived", `cond "stale"`} {
				if !strings.Contains(msg, want) {
					t.Errorf("panic %q missing %q", msg, want)
				}
			}
		}()
		victim.wake()
	})
	e.Run()
}
