package sim

import (
	"runtime"
	"testing"
	"time"
)

// settledGoroutines samples runtime.NumGoroutine until it stops falling,
// giving just-unwound goroutines time to actually exit (the yield
// handshake returns before the goroutine's final return).
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestShutdownUnwindsParkedProcesses is the regression test for the
// goroutine leak: a run that ends with processes parked (the protocol-
// pump-at-budget-exhaustion shape) must return to the baseline goroutine
// count after Shutdown.
func TestShutdownUnwindsParkedProcesses(t *testing.T) {
	base := settledGoroutines()
	e := NewEngine(1)
	c := NewCond(e)
	for i := 0; i < 8; i++ {
		e.Go("parked", func(p *Process) { c.Wait(p) }) // never signalled
	}
	e.RunUntil(Time(Millisecond))
	if e.Live() != 8 {
		t.Fatalf("Live() = %d before shutdown, want 8", e.Live())
	}
	e.Shutdown()
	if e.Live() != 0 {
		t.Fatalf("Live() = %d after shutdown, want 0", e.Live())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after shutdown, want 0", e.Pending())
	}
	if got := settledGoroutines(); got > base {
		t.Fatalf("%d goroutines after shutdown, baseline %d — parked processes leaked", got, base)
	}
}

// TestShutdownDropsNeverStartedProcesses: a process whose start event
// has not run yet has no goroutine; Shutdown must unregister it without
// trying to resume one.
func TestShutdownDropsNeverStartedProcesses(t *testing.T) {
	e := NewEngine(1)
	e.GoAt(Second, "future", func(p *Process) {
		t.Error("never-started process body ran during shutdown")
	})
	e.RunUntil(Time(Millisecond))
	if e.Live() != 1 {
		t.Fatalf("Live() = %d, want 1 (pending start)", e.Live())
	}
	e.Shutdown()
	if e.Live() != 0 || e.Pending() != 0 {
		t.Fatalf("Live()=%d Pending()=%d after shutdown, want 0 0", e.Live(), e.Pending())
	}
}

// TestShutdownRunsDefers: unwinding is a real stack unwind — a parked
// process's defers run, so model cleanup hooks fire.
func TestShutdownRunsDefers(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	cleaned := false
	e.Go("guarded", func(p *Process) {
		defer func() { cleaned = true }()
		c.Wait(p)
	})
	e.RunUntil(Time(Millisecond))
	e.Shutdown()
	if !cleaned {
		t.Fatal("parked process's defer did not run during shutdown")
	}
}

// TestShutdownIdempotent: a second Shutdown on a dead engine is a no-op.
func TestShutdownIdempotent(t *testing.T) {
	e := NewEngine(1)
	c := NewCond(e)
	e.Go("parked", func(p *Process) { c.Wait(p) })
	e.RunUntil(Time(Millisecond))
	e.Shutdown()
	e.Shutdown()
	if e.Live() != 0 || e.Pending() != 0 {
		t.Fatalf("Live()=%d Pending()=%d after double shutdown", e.Live(), e.Pending())
	}
}

// TestShutdownAfterCleanRun: shutting down an engine whose processes all
// finished normally is safe and leaves nothing behind.
func TestShutdownAfterCleanRun(t *testing.T) {
	e := NewEngine(1)
	e.Go("worker", func(p *Process) { p.Sleep(Microsecond) })
	e.Run()
	e.Shutdown()
	if e.Live() != 0 || e.Pending() != 0 {
		t.Fatalf("Live()=%d Pending()=%d after clean-run shutdown", e.Live(), e.Pending())
	}
}
