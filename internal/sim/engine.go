package sim

import (
	"container/heap"
	"fmt"
)

// Priority orders events that are scheduled for the same virtual time.
// Lower values run first. Most model code uses PriorityNormal; interrupt
// delivery uses PriorityHigh so that hardware beats software at equal
// timestamps, matching real machines where the APIC wins the race.
type Priority int32

// Event priorities, lowest runs first at equal timestamps.
const (
	PriorityHigh   Priority = -1
	PriorityNormal Priority = 0
	PriorityLow    Priority = 1
)

type event struct {
	at   Time
	prio Priority
	seq  uint64 // insertion order; final tiebreak for determinism
	fn   func()
	// cancelled events stay in the heap (removal from the middle of a
	// binary heap is not worth the bookkeeping) but are skipped without
	// advancing the clock or the executed count when popped; done marks
	// events that already ran, making a late Cancel a no-op.
	cancelled bool
	done      bool
}

// EventHandle identifies one scheduled event so it can be cancelled.
type EventHandle struct {
	e  *Engine
	ev *event
}

// Cancel withdraws the event: it will not run, will not advance the
// virtual clock, and no longer counts as pending. Cancelling twice (or
// after the event ran) is a no-op.
func (h *EventHandle) Cancel() {
	if h == nil || h.ev.cancelled || h.ev.done {
		return
	}
	h.ev.cancelled = true
	h.e.ncancelled++
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	yield   chan struct{} // running process hands control back here
	stopped bool
	rng     *Rand

	nproc      int // live (not yet finished) processes
	fault      any // panic captured from a process, re-raised in Run
	executed   uint64
	ncancelled int // cancelled events still sitting in the heap
	nameCount  map[string]int
}

// NewEngine returns an engine at virtual time zero with a deterministic
// random source derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		yield:     make(chan struct{}),
		rng:       NewRand(seed),
		nameCount: make(map[string]int),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports how many events have run so far; useful in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn at virtual time e.Now()+d with normal priority.
func (e *Engine) Schedule(d Duration, fn func()) { e.At(e.now.Add(d), PriorityNormal, fn) }

// At runs fn at absolute virtual time t. Scheduling in the past panics:
// that is always a model bug, and silently clamping it would corrupt
// latency measurements.
func (e *Engine) At(t Time, prio Priority, fn func()) {
	e.at(t, prio, fn)
}

// AtCancel is At returning a handle through which the event can be
// withdrawn again — the basis of cancellable timers.
func (e *Engine) AtCancel(t Time, prio Priority, fn func()) *EventHandle {
	return &EventHandle{e: e, ev: e.at(t, prio, fn)}
}

func (e *Engine) at(t Time, prio Priority, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &event{at: t, prio: prio, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the event set is exhausted or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps <= limit, then returns. The
// clock is left at the last executed event (or limit if nothing ran after
// it); pending later events remain queued.
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			// Withdrawn: discard without touching the clock.
			heap.Pop(&e.events)
			e.ncancelled--
			continue
		}
		if next.at > limit {
			break
		}
		heap.Pop(&e.events)
		next.done = true
		e.now = next.at
		e.executed++
		next.fn()
	}
	return e.now
}

// Pending reports the number of queued (non-cancelled) events.
func (e *Engine) Pending() int { return len(e.events) - e.ncancelled }

// uniqueName disambiguates duplicate process names for tracing.
func (e *Engine) uniqueName(name string) string {
	n := e.nameCount[name]
	e.nameCount[name] = n + 1
	if n == 0 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, n)
}
