package sim

import "fmt"

// Priority orders events that are scheduled for the same virtual time.
// Lower values run first. Most model code uses PriorityNormal; interrupt
// delivery uses PriorityHigh so that hardware beats software at equal
// timestamps, matching real machines where the APIC wins the race.
type Priority int32

// Event priorities, lowest runs first at equal timestamps.
const (
	PriorityHigh   Priority = -1
	PriorityNormal Priority = 0
	PriorityLow    Priority = 1
)

// event is one heap-scheduled callback. Event structs are pooled: the
// engine recycles them through a free list so steady-state scheduling
// allocates nothing, and gen tells a live incarnation from a recycled
// one so stale EventHandles are harmless.
type event struct {
	at   Time
	prio Priority
	seq  uint64 // insertion order; final tiebreak for determinism
	fn   func()
	idx  int    // position in the heap; -1 once popped or removed
	gen  uint64 // bumped on every recycle; EventHandles must match it
}

// EventHandle identifies one scheduled event so it can be cancelled.
// The zero EventHandle is valid and inert: Cancel on it is a no-op, so
// holders (timers, protocol state machines) need no armed/disarmed
// bookkeeping of their own.
type EventHandle struct {
	e   *Engine
	ev  *event
	gen uint64
}

// Cancel withdraws the event: it will not run, will not advance the
// virtual clock, and no longer counts as pending. The event is removed
// from the heap in place (sift repair), so cancelled events cost nothing
// at pop time and Pending()/memory stay proportional to live events.
// Cancelling twice, after the event ran, or through a zero handle is a
// no-op.
func (h EventHandle) Cancel() {
	// gen mismatch means the event struct was recycled (it ran, or was
	// cancelled already); idx < 0 catches the event currently executing.
	if h.ev == nil || h.ev.gen != h.gen || h.ev.idx < 0 {
		return
	}
	h.e.heapRemove(h.ev)
	h.e.release(h.ev)
}

// dispatchEntry is a same-time event on the direct-dispatch queue. The
// wake/Yield path — schedule at the current timestamp with normal
// priority — bypasses the heap entirely: entries carry only the sequence
// number needed to merge correctly against heap events, and live in a
// value ring so the hottest scheduling path allocates nothing.
type dispatchEntry struct {
	seq uint64
	fn  func()
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	events []*event // index-tracked min-heap on (at, prio, seq)
	free   []*event // recycled event structs

	// dq is the same-time direct-dispatch FIFO: events at (now,
	// PriorityNormal) in seq order, dq[dqHead:] pending. Its entries
	// always carry the current virtual time — time cannot advance while
	// the queue is non-empty, because anything in it is already runnable.
	dq     []dispatchEntry
	dqHead int

	yield   chan struct{} // running process hands control back here
	stopped bool
	rng     *Rand

	nproc int        // live (not yet finished) processes
	procs []*Process // registry of live processes, for Shutdown
	// dying flips while Shutdown unwinds parked processes: park resumes
	// into a poison panic instead of returning to the model.
	dying     bool
	fault     any // panic captured from a process, re-raised in Run
	executed  uint64
	nameCount map[string]int

	// Partition membership (nil/zero outside PDES mode). shard is this
	// engine's position in the partition's deterministic merge order;
	// outbox buffers cross-shard events emitted during a superstep until
	// the orchestrator flushes them at the next barrier (see pdes.go).
	part   *Partition
	shard  int
	outbox []routedEvent
}

// NewEngine returns an engine at virtual time zero with a deterministic
// random source derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{
		yield:     make(chan struct{}, 1),
		rng:       NewRand(seed),
		nameCount: make(map[string]int),
	}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *Rand { return e.rng }

// Executed reports how many events have run so far; useful in tests.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule runs fn at virtual time e.Now()+d with normal priority.
func (e *Engine) Schedule(d Duration, fn func()) { e.At(e.now.Add(d), PriorityNormal, fn) }

// At runs fn at absolute virtual time t. Scheduling in the past panics:
// that is always a model bug, and silently clamping it would corrupt
// latency measurements. Events at the current time with normal priority
// take the direct-dispatch queue and never touch the heap.
func (e *Engine) At(t Time, prio Priority, fn func()) {
	if t == e.now && prio == PriorityNormal {
		e.seq++
		e.dq = append(e.dq, dispatchEntry{seq: e.seq, fn: fn})
		return
	}
	e.at(t, prio, fn)
}

// AtCancel is At returning a handle through which the event can be
// withdrawn again — the basis of cancellable timers. Cancellable events
// always go through the heap (the dispatch queue has no removal), so
// prefer At for events that will certainly run.
func (e *Engine) AtCancel(t Time, prio Priority, fn func()) EventHandle {
	ev := e.at(t, prio, fn)
	return EventHandle{e: e, ev: ev, gen: ev.gen}
}

func (e *Engine) at(t Time, prio Priority, fn func()) *event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := e.alloc()
	ev.at, ev.prio, ev.seq, ev.fn = t, prio, e.seq, fn
	e.heapPush(ev)
	return ev
}

// alloc takes an event struct from the free list, or mints one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release recycles an executed or cancelled event. Bumping gen here
// invalidates every outstanding handle to this incarnation.
func (e *Engine) release(ev *event) {
	ev.fn = nil
	ev.idx = -1
	ev.gen++
	e.free = append(e.free, ev)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the event set is exhausted or Stop is
// called. It returns the final virtual time.
func (e *Engine) Run() Time { return e.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps <= limit, then returns. The
// clock is left at the last executed event (or limit if nothing ran after
// it); pending later events remain queued.
//
// The loop is a two-way merge of the heap and the direct-dispatch queue:
// both are ordered by (time, priority, seq), so popping the smaller head
// preserves the engine's total execution order exactly.
func (e *Engine) RunUntil(limit Time) Time {
	e.stopped = false
	for !e.stopped {
		hasDQ := e.dqHead < len(e.dq)
		hasHeap := len(e.events) > 0
		if !hasDQ && !hasHeap {
			break
		}
		useHeap := hasHeap
		if hasDQ && hasHeap {
			// The dispatch head's key is (e.now, PriorityNormal, seq);
			// the heap wins only with a strictly smaller key.
			top := e.events[0]
			if top.at > e.now || (top.at == e.now &&
				(top.prio > PriorityNormal ||
					(top.prio == PriorityNormal && top.seq > e.dq[e.dqHead].seq))) {
				useHeap = false
			}
		}
		if useHeap {
			next := e.events[0]
			if next.at > limit {
				break
			}
			e.heapPopTop()
			e.now = next.at
			e.executed++
			fn := next.fn
			e.release(next)
			fn()
			continue
		}
		if e.now > limit {
			break
		}
		fn := e.dq[e.dqHead].fn
		e.dq[e.dqHead].fn = nil
		e.dqHead++
		if e.dqHead == len(e.dq) {
			e.dq, e.dqHead = e.dq[:0], 0
		} else if e.dqHead >= 64 && e.dqHead*2 >= len(e.dq) {
			// A self-sustaining same-time chain never fully drains the
			// queue; compact so consumed head space is reused. The
			// vacated tail must drop its closure references like the
			// pop path does, or they outlive their events.
			n := copy(e.dq, e.dq[e.dqHead:])
			for i := n; i < len(e.dq); i++ {
				e.dq[i].fn = nil
			}
			e.dq, e.dqHead = e.dq[:n], 0
		}
		e.executed++
		fn()
	}
	return e.now
}

// Pending reports the number of queued events. For a partitioned run
// this is one shard's local count; Partition.Pending sums the shards,
// which is the exact whole-simulation figure.
func (e *Engine) Pending() int { return len(e.events) + (len(e.dq) - e.dqHead) }

// NextEventTime reports the timestamp of the next event this engine
// would execute, if any. A non-empty dispatch queue pins it to the
// current time: dispatch entries are already runnable at e.now and
// nothing on the heap can precede them by more than priority, which
// does not move the clock.
func (e *Engine) NextEventTime() (Time, bool) {
	if e.dqHead < len(e.dq) {
		return e.now, true
	}
	if len(e.events) > 0 {
		return e.events[0].at, true
	}
	return 0, false
}

// ScheduleOn schedules fn at dst's virtual time e.Now()+d, where dst
// may be a different engine of the same Partition. On the local engine
// (or outside a partition) it is exactly Schedule. Cross-shard events
// are buffered in the source's outbox and inserted into dst at the next
// superstep barrier in (time, prio, shard, seq) order — the partition's
// deterministic merge rule — so the destination's resulting event order
// is independent of worker count.
func (e *Engine) ScheduleOn(dst *Engine, d Duration, fn func()) {
	t := e.now.Add(d)
	if dst == e || e.part == nil {
		dst.At(t, PriorityNormal, fn)
		return
	}
	e.outbox = append(e.outbox, routedEvent{dst: dst, at: t, fn: fn})
}

// Live reports the number of live (started or pending) processes.
func (e *Engine) Live() int { return e.nproc }

// unregister removes p from the live-process registry by swapping the
// last entry into its slot. It runs either in engine context (never-
// started processes dropped by Shutdown) or in a finishing process's
// goroutine while the engine is blocked on yield — exclusive either way.
func (e *Engine) unregister(p *Process) {
	last := len(e.procs) - 1
	moved := e.procs[last]
	e.procs[p.pidx] = moved
	moved.pidx = p.pidx
	e.procs[last] = nil
	e.procs = e.procs[:last]
}

// Shutdown tears the engine down: every parked process goroutine is
// resumed into a poison panic that unwinds it (running its defers), and
// the remaining event set is cleared. Without this, a run that ends with
// processes still parked — protocol pumps at virtual-budget exhaustion,
// for instance — leaks one goroutine per parked process for the life of
// the program.
//
// Shutdown must be called from engine context (never from inside a
// process), after Run/RunUntil has returned. The engine is dead
// afterwards: its event set is empty and scheduling into it is a bug.
// Calling Shutdown again is a harmless no-op. If a process defer panics
// during unwinding, the first such fault is re-raised after teardown
// completes.
func (e *Engine) Shutdown() {
	e.dying = true
	var fault any
	for len(e.procs) > 0 {
		p := e.procs[len(e.procs)-1]
		if !p.started {
			// The start event never ran, so no goroutine exists; clearing
			// the event set below disposes of the pending start.
			p.done = true
			e.unregister(p)
			e.nproc--
			continue
		}
		// The goroutine is blocked in park's resume receive (a started,
		// unfinished process has nowhere else to block). Resume it; park
		// sees dying and panics the shutdown sentinel, the process's defer
		// recovers it, unregisters, and yields back.
		p.resume <- struct{}{}
		<-e.yield
		if e.fault != nil && fault == nil {
			fault = e.fault
		}
		e.fault = nil
	}
	e.dying = false
	// Drop the remaining event set: anything still scheduled (timers,
	// wake transfers for processes just unwound) must never run. Bump
	// generations so outstanding EventHandles turn inert.
	for _, ev := range e.events {
		ev.idx = -1
		ev.gen++
		ev.fn = nil
	}
	e.events = nil
	e.free = nil
	for i := range e.dq {
		e.dq[i].fn = nil
	}
	e.dq, e.dqHead = nil, 0
	if fault != nil {
		panic(fault)
	}
}

// eventLess is the engine's total execution order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// The heap is hand-rolled rather than container/heap so that every
// element knows its own index (idx), which is what makes EventHandle
// .Cancel an O(log n) in-place removal instead of a tombstone.

func (e *Engine) heapPush(ev *event) {
	ev.idx = len(e.events)
	e.events = append(e.events, ev)
	e.siftUp(ev.idx)
}

func (e *Engine) heapPopTop() {
	h := e.events
	h[0].idx = -1
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		e.events[0] = last
		last.idx = 0
		e.siftDown(0)
	}
}

// heapRemove takes ev out of the middle of the heap, repairing the
// invariant around the element moved into its slot.
func (e *Engine) heapRemove(ev *event) {
	i := ev.idx
	h := e.events
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	ev.idx = -1
	if i == n {
		return
	}
	e.events[i] = last
	last.idx = i
	e.siftDown(i)
	if last.idx == i {
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].idx = i
		i = parent
	}
	h[i] = ev
	ev.idx = i
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			m = r
		}
		if !eventLess(h[m], ev) {
			break
		}
		h[i] = h[m]
		h[i].idx = i
		i = m
	}
	h[i] = ev
	ev.idx = i
}

// uniqueName disambiguates duplicate process names for tracing.
func (e *Engine) uniqueName(name string) string {
	n := e.nameCount[name]
	e.nameCount[name] = n + 1
	if n == 0 {
		return name
	}
	return fmt.Sprintf("%s#%d", name, n)
}
