package sim

// Queue is a FIFO channel-like queue for simulation processes. A capacity
// of zero means unbounded. Get blocks while the queue is empty; Put blocks
// while a bounded queue is full. TryPut never blocks and reports failure on
// a full queue — that is how lossy hardware rings (NIC FIFOs, switch ports)
// are modelled.
type Queue[T any] struct {
	e        *Engine
	items    []T
	capacity int
	notEmpty *Cond
	notFull  *Cond
	dropped  uint64
}

// NewQueue returns a queue bound to engine e. capacity <= 0 means
// unbounded.
func NewQueue[T any](e *Engine, capacity int) *Queue[T] {
	return &Queue[T]{
		e:        e,
		capacity: capacity,
		notEmpty: NewCond(e),
		notFull:  NewCond(e),
	}
}

// SetName names the queue's internal conds for wake diagnostics.
func (q *Queue[T]) SetName(name string) {
	q.notEmpty.name = name + ".notEmpty"
	q.notFull.name = name + ".notFull"
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Cap reports the capacity (0 = unbounded).
func (q *Queue[T]) Cap() int { return q.capacity }

// Dropped reports how many TryPut calls failed because the queue was full.
func (q *Queue[T]) Dropped() uint64 { return q.dropped }

func (q *Queue[T]) full() bool { return q.capacity > 0 && len(q.items) >= q.capacity }

// TryPut appends v if there is room and reports whether it did. On failure
// the item is counted as dropped.
func (q *Queue[T]) TryPut(v T) bool {
	if q.full() {
		q.dropped++
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// Put appends v, blocking the calling process while the queue is full.
func (q *Queue[T]) Put(p *Process, v T) {
	q.notFull.WaitFor(p, func() bool { return !q.full() })
	q.items = append(q.items, v)
	q.notEmpty.Signal()
}

// PollPut is the tasklet-tier Put: it appends v if there is room;
// otherwise it registers w for a wake when space frees up and reports
// false, in which case the caller must retry the same item when woken.
// Unlike TryPut, a failed PollPut does not count the item as dropped —
// the item is deferred, not lost.
func (q *Queue[T]) PollPut(w Waiter, v T) bool {
	if q.full() {
		q.notFull.Await(w)
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return true
}

// TryGet removes and returns the head item without blocking. ok is false if
// the queue is empty.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Get removes and returns the head item, blocking the calling process while
// the queue is empty.
func (q *Queue[T]) Get(p *Process) T {
	q.notEmpty.WaitFor(p, func() bool { return len(q.items) > 0 })
	v, _ := q.TryGet()
	return v
}

// PollGet is the tasklet-tier Get: it removes and returns the head item
// if there is one; otherwise it registers w for a wake when an item
// arrives and reports false.
func (q *Queue[T]) PollGet(w Waiter) (v T, ok bool) {
	if len(q.items) == 0 {
		q.notEmpty.Await(w)
		return v, false
	}
	v, _ = q.TryGet()
	return v, true
}

// Peek returns the head item without removing it.
func (q *Queue[T]) Peek() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	return q.items[0], true
}
