package sim

// Rand is a small deterministic pseudo-random source (xorshift64*). The
// simulation uses it for the few places randomness is modelled at all
// (e.g. interrupt arbitration jitter), so that a fixed seed reproduces an
// identical event trace. math/rand would also do, but owning the generator
// pins the sequence across Go releases.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed (zero is remapped; xorshift
// has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Duration returns a uniformly distributed duration in [0, d).
func (r *Rand) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Uint64() % uint64(d))
}
