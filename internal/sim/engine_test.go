package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-time events ran out of insertion order: %v", got)
		}
	}
}

func TestPriorityBeatsSeq(t *testing.T) {
	e := NewEngine(1)
	var got []string
	e.At(5, PriorityNormal, func() { got = append(got, "normal") })
	e.At(5, PriorityHigh, func() { got = append(got, "high") })
	e.At(5, PriorityLow, func() { got = append(got, "low") })
	e.Run()
	if got[0] != "high" || got[1] != "normal" || got[2] != "low" {
		t.Fatalf("priority order wrong: %v", got)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Fatalf("nested schedule times = %v, want [10 15]", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, PriorityNormal, func() {})
	})
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*10, func() { count++ })
	}
	e.RunUntil(50)
	if count != 5 {
		t.Errorf("events run by t=50: %d, want 5", count)
	}
	if e.Pending() != 5 {
		t.Errorf("pending = %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("events run total: %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("events run = %d, want 3 (stopped)", count)
	}
}

func TestZeroDelaySchedulingRunsAtCurrentTime(t *testing.T) {
	e := NewEngine(1)
	var at Time = -1
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != 7 {
		t.Errorf("zero-delay event ran at %d, want 7", at)
	}
}

// TestDeterminism drives two identical engines with an arbitrary program of
// event insertions and checks that execution traces match exactly.
func TestDeterminism(t *testing.T) {
	run := func(seed uint64, delays []uint16) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var insert func(depth int, d Duration)
		insert = func(depth int, d Duration) {
			e.Schedule(d, func() {
				trace = append(trace, int64(e.Now()))
				if depth > 0 {
					insert(depth-1, Duration(e.Rand().Intn(100)))
				}
			})
		}
		for _, d := range delays {
			insert(3, Duration(d))
		}
		e.Run()
		return trace
	}
	property := func(seed uint64, delays []uint16) bool {
		a := run(seed, delays)
		b := run(seed, delays)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500µs"},
		{2500000, "2.500ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 100
	if tm.Add(50) != 150 {
		t.Error("Add failed")
	}
	if Time(150).Sub(tm) != 50 {
		t.Error("Sub failed")
	}
	if Duration(1500).Microseconds() != 1.5 {
		t.Error("Microseconds failed")
	}
}
