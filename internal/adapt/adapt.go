// Package adapt implements an online Bytes-To-Push controller for
// Push-Pull Messaging, realizing the paper's §3 remark that
// "applications can dynamically change the size of the pushed buffer to
// adapt to the runtime environment".
//
// The controller runs AIMD per channel on the only feedback the send
// side observes — the receiver's pull requests:
//
//   - A pull request reporting discarded pushed bytes means the receiver
//     was so late its pushed buffer overflowed; pushing those bytes was
//     wasted wire time. The BTP is halved (multiplicative decrease).
//   - A clean pull request means every pushed byte did useful work —
//     copied straight to the destination (early receiver) or prefetched
//     into the pushed buffer (late receiver; the paper's §5.3: "Push-Pull
//     had sent BTP bytes ... therefore during the pull phase, shorter
//     message was delivered"). The BTP grows additively, faster on
//     early-receiver feedback (direct copies are pure win) than on late
//     (parked bytes cost a second copy), probing the buffer's capacity.
//
// The result is the classic AIMD sawtooth around the receiver's pushed-
// buffer capacity — the dynamic adaptation §3 gestures at. A "fast" pull
// request (early receiver) is one bounded by wire and interrupt latency
// rather than by the receiver's compute phase.
package adapt

import (
	"fmt"
	"sort"
	"strings"

	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
)

// Config parameterizes the controller.
type Config struct {
	// Initial is the starting BTP per channel (paper: 760).
	Initial int
	// Min and Max bound the BTP. Max should not exceed the receiver's
	// pushed buffer.
	Min, Max int
	// Increase is the additive step on early-receiver feedback.
	Increase int
	// LateIncrease is the (gentler) additive step on late-but-undropped
	// feedback; zero holds the BTP steady on late receivers.
	LateIncrease int
	// EarlyThreshold classifies a pull request as "receiver was
	// waiting": round trips at or under it trigger additive increase.
	EarlyThreshold sim.Duration
}

// DefaultConfig matches the paper's testbed: start at the tuned 760 B,
// bound by one fragment and the 4 KB pushed buffer, classify round
// trips under 100 µs (a few wire-plus-interrupt times) as early.
func DefaultConfig() Config {
	return Config{
		Initial:        760,
		Min:            0,
		Max:            4096,
		Increase:       256,
		LateIncrease:   64,
		EarlyThreshold: 100 * sim.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Initial < 0 || c.Min < 0 || c.Max < c.Min {
		return fmt.Errorf("adapt: inconsistent BTP bounds min %d max %d initial %d", c.Min, c.Max, c.Initial)
	}
	if c.Increase <= 0 || c.LateIncrease < 0 {
		return fmt.Errorf("adapt: non-positive increase %d or negative late increase %d", c.Increase, c.LateIncrease)
	}
	if c.EarlyThreshold <= 0 {
		return fmt.Errorf("adapt: non-positive early threshold %v", c.EarlyThreshold)
	}
	return nil
}

// Controller is a per-channel AIMD BTP policy. It implements
// pushpull.BTPAdapter. Controllers are not safe for concurrent use;
// like everything in the simulation they run under the engine's
// one-event-at-a-time execution.
type Controller struct {
	cfg   Config
	chans map[pushpull.ChannelID]*state
}

type state struct {
	btp      int
	early    uint64
	late     uint64
	overflow uint64
}

// NewController returns a controller with cfg; it panics on invalid
// configuration (controllers are built from code, not user input).
func NewController(cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Controller{cfg: cfg, chans: make(map[pushpull.ChannelID]*state)}
}

func (c *Controller) state(ch pushpull.ChannelID) *state {
	st, ok := c.chans[ch]
	if !ok {
		st = &state{btp: c.clamp(c.cfg.Initial)}
		c.chans[ch] = st
	}
	return st
}

func (c *Controller) clamp(btp int) int {
	if btp < c.cfg.Min {
		return c.cfg.Min
	}
	if btp > c.cfg.Max {
		return c.cfg.Max
	}
	return btp
}

// BTP implements pushpull.BTPAdapter.
func (c *Controller) BTP(ch pushpull.ChannelID, total int) int {
	return c.state(ch).btp
}

// OnPullRequest implements pushpull.BTPAdapter: AIMD on the three
// feedback classes.
func (c *Controller) OnPullRequest(ch pushpull.ChannelID, redoBytes int, sinceSend sim.Duration) {
	st := c.state(ch)
	switch {
	case redoBytes > 0:
		st.overflow++
		st.btp = c.clamp(st.btp / 2)
	case sinceSend <= c.cfg.EarlyThreshold:
		st.early++
		st.btp = c.clamp(st.btp + c.cfg.Increase)
	default:
		st.late++
		st.btp = c.clamp(st.btp + c.cfg.LateIncrease)
	}
}

// Current reports the channel's present BTP (the initial value for a
// channel never seen).
func (c *Controller) Current(ch pushpull.ChannelID) int { return c.state(ch).btp }

// Counts reports how many pull requests were classified early / late /
// overflow for ch.
func (c *Controller) Counts(ch pushpull.ChannelID) (early, late, overflow uint64) {
	st := c.state(ch)
	return st.early, st.late, st.overflow
}

// String summarizes every channel's state, sorted, for reports.
func (c *Controller) String() string {
	keys := make([]pushpull.ChannelID, 0, len(c.chans))
	for ch := range c.chans {
		keys = append(keys, ch)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	var b strings.Builder
	for _, ch := range keys {
		st := c.chans[ch]
		fmt.Fprintf(&b, "%v: btp=%d early=%d late=%d overflow=%d\n",
			ch, st.btp, st.early, st.late, st.overflow)
	}
	return b.String()
}
