package adapt

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

var chAB = pushpull.ChannelID{
	From: pushpull.ProcessID{Node: 0, Proc: 0},
	To:   pushpull.ProcessID{Node: 1, Proc: 0},
}

func TestControllerStartsAtInitial(t *testing.T) {
	c := NewController(DefaultConfig())
	if got := c.BTP(chAB, 10000); got != 760 {
		t.Errorf("initial BTP = %d, want 760", got)
	}
}

func TestAdditiveIncreaseOnEarlyReceiver(t *testing.T) {
	cfg := DefaultConfig()
	c := NewController(cfg)
	for i := 0; i < 3; i++ {
		c.OnPullRequest(chAB, 0, 50*sim.Microsecond)
	}
	want := cfg.Initial + 3*cfg.Increase
	if got := c.Current(chAB); got != want {
		t.Errorf("BTP after 3 early = %d, want %d", got, want)
	}
	early, late, overflow := c.Counts(chAB)
	if early != 3 || late != 0 || overflow != 0 {
		t.Errorf("counts = %d/%d/%d, want 3/0/0", early, late, overflow)
	}
}

func TestMultiplicativeDecreaseOnOverflow(t *testing.T) {
	c := NewController(DefaultConfig())
	c.OnPullRequest(chAB, 1400, 500*sim.Microsecond)
	if got := c.Current(chAB); got != 380 {
		t.Errorf("BTP after overflow = %d, want 380", got)
	}
	c.OnPullRequest(chAB, 700, 500*sim.Microsecond)
	if got := c.Current(chAB); got != 190 {
		t.Errorf("BTP after second overflow = %d, want 190", got)
	}
}

func TestGentleIncreaseOnLateReceiver(t *testing.T) {
	// A clean late-receiver pull request still means every pushed byte
	// was useful (prefetched into the pushed buffer, §5.3), so the BTP
	// probes upward — just more cautiously than on early feedback.
	cfg := DefaultConfig()
	c := NewController(cfg)
	c.OnPullRequest(chAB, 0, 5*sim.Millisecond)
	if got := c.Current(chAB); got != cfg.Initial+cfg.LateIncrease {
		t.Errorf("BTP after late = %d, want %d", got, cfg.Initial+cfg.LateIncrease)
	}
	if cfg.LateIncrease >= cfg.Increase {
		t.Error("late step should be gentler than early step")
	}
}

func TestClampingAtBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Min = 100
	cfg.Max = 1000
	c := NewController(cfg)
	for i := 0; i < 50; i++ {
		c.OnPullRequest(chAB, 0, sim.Microsecond)
	}
	if got := c.Current(chAB); got != 1000 {
		t.Errorf("BTP not clamped at max: %d", got)
	}
	for i := 0; i < 50; i++ {
		c.OnPullRequest(chAB, 999, sim.Second)
	}
	if got := c.Current(chAB); got != 100 {
		t.Errorf("BTP not clamped at min: %d", got)
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	other := pushpull.ChannelID{
		From: pushpull.ProcessID{Node: 1, Proc: 0},
		To:   pushpull.ProcessID{Node: 0, Proc: 0},
	}
	c := NewController(DefaultConfig())
	c.OnPullRequest(chAB, 2000, sim.Millisecond)
	if c.Current(other) != 760 {
		t.Error("feedback on one channel leaked into another")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Initial: -1, Max: 100, Increase: 1, EarlyThreshold: 1},
		{Initial: 10, Min: 50, Max: 40, Increase: 1, EarlyThreshold: 1},
		{Initial: 10, Max: 100, Increase: 0, EarlyThreshold: 1},
		{Initial: 10, Max: 100, Increase: 1, EarlyThreshold: 0},
		{Initial: 10, Max: 100, Increase: 1, LateIncrease: -1, EarlyThreshold: 1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestStringSummarizes(t *testing.T) {
	c := NewController(DefaultConfig())
	c.OnPullRequest(chAB, 0, sim.Microsecond)
	if s := c.String(); !strings.Contains(s, "btp=") || !strings.Contains(s, "early=1") {
		t.Errorf("String = %q", s)
	}
}

// Property: the BTP never leaves [Min, Max] under any feedback sequence.
func TestBoundsInvariantProperty(t *testing.T) {
	f := func(redos []uint16, delays []uint16) bool {
		cfg := DefaultConfig()
		cfg.Min = 128
		cfg.Max = 2048
		c := NewController(cfg)
		n := len(redos)
		if len(delays) < n {
			n = len(delays)
		}
		for i := 0; i < n; i++ {
			c.OnPullRequest(chAB, int(redos[i])%3000, sim.Duration(delays[i])*sim.Microsecond)
			if btp := c.Current(chAB); btp < cfg.Min || btp > cfg.Max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// End-to-end: a persistently late receiver must drive the BTP down, an
// early receiver must drive it up, and integrity holds throughout.
func TestAdaptsToReceiverTiming(t *testing.T) {
	run := func(recvLate bool) (btp int, overflow uint64) {
		cfg := cluster.DefaultConfig()
		cfg.Opts.PushedBufBytes = 2048 // small buffer so late receivers overflow
		c := cluster.New(cfg)
		ctl := NewController(DefaultConfig())
		c.Stacks[0].SetAdapter(ctl)

		sender := c.Endpoint(0, 0)
		receiver := c.Endpoint(1, 0)
		const msgs = 12
		const size = 3000
		data := pattern(size)
		src := sender.Alloc(size)
		dst := receiver.Alloc(size)

		c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
			for i := 0; i < msgs; i++ {
				if err := sender.Send(th, receiver.ID, src, data); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
				th.Compute(200_000) // 1 ms between messages
			}
		})
		c.Nodes[1].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
			for i := 0; i < msgs; i++ {
				if recvLate {
					th.Compute(260_000) // arrive ~300 µs after the push
				}
				b, err := receiver.Recv(th, sender.ID, dst, size)
				if err != nil {
					t.Errorf("recv %d: %v", i, err)
					return
				}
				if !bytes.Equal(b, data) {
					t.Errorf("recv %d: bytes differ", i)
				}
				if !recvLate {
					// Early receiver: already parked in Recv when the
					// next message arrives.
					continue
				}
			}
		})
		c.Run()
		e, l, o := ctl.Counts(pushpull.ChannelID{From: sender.ID, To: receiver.ID})
		_ = e
		_ = l
		return ctl.Current(pushpull.ChannelID{From: sender.ID, To: receiver.ID}), o
	}

	lateBTP, _ := run(true)
	earlyBTP, earlyOverflow := run(false)
	if lateBTP >= 760 {
		t.Errorf("late receiver: BTP %d did not shrink below the initial 760", lateBTP)
	}
	if earlyBTP <= 760 {
		t.Errorf("early receiver: BTP %d did not grow beyond the initial 760", earlyBTP)
	}
	if earlyOverflow != 0 {
		t.Errorf("early receiver provoked %d overflows", earlyOverflow)
	}
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 13)
	}
	return b
}
