package ether

import (
	"fmt"

	"pushpull/internal/fault"
	"pushpull/internal/sim"
)

// Switch is a store-and-forward Fast Ethernet switch. Each attached node
// hangs off its own full-duplex link to a switch port; a frame is fully
// received, looked up, queued on the destination port (dropping on queue
// overflow, as real switches do) and re-serialized toward its target.
//
// The paper's two-machine testbed is connected back-to-back, so the base
// experiments do not use a switch; it exists for the multi-node example
// topologies and scalability ablations.
type Switch struct {
	e       *sim.Engine
	cfg     Config
	fwd     sim.Duration // lookup/forwarding latency after last bit in
	ports   map[int]*switchPort
	dropped uint64
	// faultDropped counts frames the port-blackout injectors discarded at
	// the forwarding plane.
	faultDropped uint64
}

// NewSwitch creates a switch with the given per-port link technology and
// forwarding latency.
func NewSwitch(e *sim.Engine, cfg Config, forwarding sim.Duration) *Switch {
	return &Switch{e: e, cfg: cfg, fwd: forwarding, ports: make(map[int]*switchPort)}
}

// Dropped reports frames lost to output-queue overflow.
func (s *Switch) Dropped() uint64 { return s.dropped }

// FaultDropped reports frames discarded by armed port-blackout injectors.
func (s *Switch) FaultDropped() uint64 { return s.faultDropped }

// SetPortInjector arms a blackout injector on node's port (nil disarms).
// While blacked out, the port forwards nothing in either direction.
func (s *Switch) SetPortInjector(node int, in *fault.PortInjector) {
	p, ok := s.ports[node]
	if !ok {
		panic(fmt.Sprintf("ether: no switch port for node %d", node))
	}
	p.inj = in
}

// switchPort is the switch end of one attached link. Its transmitter is a
// tasklet pump: fetching runs as a resumable state machine with fetching/
// transmitting as the resume points, so draining a queued frame costs
// inline event dispatches instead of goroutine handoffs.
type switchPort struct {
	sw     *Switch
	nodeID int
	link   *Link
	outQ   *sim.Queue[Frame]

	tk       *sim.Tasklet
	sending  bool // resume point: false = fetch next frame, true = mid-transmit
	frame    Frame
	txCursor TxCursor

	inj *fault.PortInjector
}

// pump drains the output queue onto the attached node's link.
func (p *switchPort) pump(tk *sim.Tasklet) {
	for {
		if !p.sending {
			f, ok := p.outQ.PollGet(tk)
			if !ok {
				return
			}
			p.frame, p.txCursor, p.sending = f, TxCursor{}, true
		}
		if !p.link.TransmitStep(tk, &p.txCursor, p, p.frame) {
			return
		}
		p.sending, p.frame = false, Frame{}
	}
}

// NodeID implements Port; the switch port answers for the attached node's
// position on the link (it is "the other end" of node nodeID's link).
func (p *switchPort) NodeID() int { return p.nodeID }

// DeliverFrame receives a fully arrived frame from the attached node and
// forwards it toward its destination port.
func (p *switchPort) DeliverFrame(f Frame) {
	if p.inj != nil && p.inj.Blocked(p.sw.e.Now()) {
		p.sw.faultDropped++ // ingress port blacked out
		return
	}
	dst, ok := p.sw.ports[f.Dst]
	if !ok {
		p.sw.dropped++ // unknown destination: flood suppressed, count as drop
		return
	}
	p.sw.e.Schedule(p.sw.fwd, func() {
		if dst.inj != nil && dst.inj.Blocked(p.sw.e.Now()) {
			p.sw.faultDropped++ // egress port blacked out
			return
		}
		if !dst.outQ.TryPut(f) {
			p.sw.dropped++
		}
	})
}

// Attach connects a node-side port to the switch and returns the link the
// node's NIC should transmit on. outQueue bounds the per-port output
// queue in frames (0 = unbounded).
func (s *Switch) Attach(nodePort Port, outQueue int) *Link {
	return s.AttachOn(nodePort, s.e, outQueue)
}

// AttachOn is Attach for partitioned runs: the node side of the access
// link lives on nodeEngine while the switch side (output queue, pump,
// forwarding plane) stays on the switch's own engine. With nodeEngine
// == s.e it is exactly Attach.
func (s *Switch) AttachOn(nodePort Port, nodeEngine *sim.Engine, outQueue int) *Link {
	sp := &switchPort{sw: s, nodeID: nodePort.NodeID(), outQ: sim.NewQueue[Frame](s.e, outQueue)}
	sp.outQ.SetName(fmt.Sprintf("switch-outq/%d", nodePort.NodeID()))
	link := NewLinkOn(nodeEngine, s.e, s.cfg, nodePort, sp)
	sp.link = link
	s.ports[nodePort.NodeID()] = sp
	// Per-port transmitter pump: drains the output queue onto the node's
	// link without a goroutine.
	sp.tk = s.e.NewTasklet(fmt.Sprintf("switch-tx/%d", nodePort.NodeID()), sp.pump)
	sp.tk.Start()
	return link
}
