package ether

import (
	"testing"
	"testing/quick"

	"pushpull/internal/sim"
)

// sink is a test Port collecting delivered frames.
type sink struct {
	id     int
	frames []Frame
}

func (s *sink) NodeID() int          { return s.id }
func (s *sink) DeliverFrame(f Frame) { s.frames = append(s.frames, f) }

func TestHubDeliversToDestination(t *testing.T) {
	e := sim.NewEngine(1)
	h := NewHub(e, FastEthernet())
	a, b, c := &sink{id: 0}, &sink{id: 1}, &sink{id: 2}
	h.Attach(a)
	h.Attach(b)
	h.Attach(c)

	e.Go("tx", func(p *sim.Process) {
		h.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 100})
	})
	e.Run()

	if len(b.frames) != 1 || len(c.frames) != 0 || len(a.frames) != 0 {
		t.Errorf("delivery: a=%d b=%d c=%d, want only b=1", len(a.frames), len(b.frames), len(c.frames))
	}
	if h.FramesSent() != 1 {
		t.Errorf("FramesSent = %d", h.FramesSent())
	}
}

func TestHubUnknownDestinationIgnored(t *testing.T) {
	e := sim.NewEngine(1)
	h := NewHub(e, FastEthernet())
	a := &sink{id: 0}
	h.Attach(a)
	e.Go("tx", func(p *sim.Process) {
		h.Transmit(p, a, Frame{Src: 0, Dst: 99, PayloadBytes: 64})
	})
	e.Run() // must not panic
	if h.FramesSent() != 1 {
		t.Errorf("FramesSent = %d, want 1 (repeated even if unclaimed)", h.FramesSent())
	}
}

func TestHubDuplicateAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attach did not panic")
		}
	}()
	e := sim.NewEngine(1)
	h := NewHub(e, FastEthernet())
	h.Attach(&sink{id: 0})
	h.Attach(&sink{id: 0})
}

func TestHubSlotTimeIs512BitTimes(t *testing.T) {
	h := NewHub(sim.NewEngine(1), FastEthernet())
	want := sim.Duration(512 * int64(sim.Second) / 100_000_000) // 5.12 µs
	if h.SlotTime() != want {
		t.Errorf("SlotTime = %v, want %v", h.SlotTime(), want)
	}
}

// Two stations blasting at each other on a hub serialize on the one wire:
// the total time must be at least the sum of all wire times, and
// collisions must be observed; the same load on a full-duplex link
// overlaps the two directions.
func TestHubHalfDuplexSerializesAndCollides(t *testing.T) {
	const frames = 50
	const payload = 1000

	run := func(hub bool) (sim.Time, uint64) {
		e := sim.NewEngine(1)
		cfg := FastEthernet()
		a, b := &sink{id: 0}, &sink{id: 1}
		var medium Medium
		var h *Hub
		if hub {
			h = NewHub(e, cfg)
			h.Attach(a)
			h.Attach(b)
			medium = h
		} else {
			medium = NewLink(e, cfg, a, b)
		}
		e.Go("a->b", func(p *sim.Process) {
			for i := 0; i < frames; i++ {
				medium.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: payload})
			}
		})
		e.Go("b->a", func(p *sim.Process) {
			for i := 0; i < frames; i++ {
				medium.Transmit(p, b, Frame{Src: 1, Dst: 0, PayloadBytes: payload})
			}
		})
		end := e.Run()
		var coll uint64
		if h != nil {
			coll = h.Collisions()
		}
		return end, coll
	}

	hubEnd, hubColl := run(true)
	linkEnd, _ := run(false)
	if hubEnd <= linkEnd {
		t.Errorf("hub (%v) not slower than full-duplex link (%v) under bidirectional load", hubEnd, linkEnd)
	}
	wire := FastEthernet().WireTime(payload)
	if minTotal := sim.Time(wire) * 2 * frames; hubEnd < minTotal {
		t.Errorf("hub finished at %v, before the serialized minimum %v", hubEnd, minTotal)
	}
	if hubColl == 0 {
		t.Error("bidirectional load on a hub produced no collisions")
	}
}

// Every transmitted frame is delivered exactly once on a lossless hub —
// deference and contention penalties may reorder timing but never drop
// or duplicate, for any traffic pattern.
func TestHubConservationProperty(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		e := sim.NewEngine(seed)
		h := NewHub(e, FastEthernet())
		a, b := &sink{id: 0}, &sink{id: 1}
		h.Attach(a)
		h.Attach(b)
		for i, sz := range sizes {
			n := int(sz)%MTU + 1
			src, dst, from := 0, 1, Port(a)
			if i%2 == 1 {
				src, dst, from = 1, 0, b
			}
			fr := Frame{Src: src, Dst: dst, PayloadBytes: n}
			p := from
			e.Go("tx", func(proc *sim.Process) { h.Transmit(proc, p, fr) })
		}
		e.Run()
		delivered := uint64(len(a.frames) + len(b.frames))
		return delivered == uint64(len(sizes)) && h.FramesSent() == uint64(len(sizes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinkLossRateDropsDeterministically(t *testing.T) {
	const frames = 2000
	cfg := FastEthernet()
	cfg.LossRate = 0.1

	run := func(seed uint64) (uint64, int) {
		e := sim.NewEngine(seed)
		a, b := &sink{id: 0}, &sink{id: 1}
		l := NewLink(e, cfg, a, b)
		e.Go("tx", func(p *sim.Process) {
			for i := 0; i < frames; i++ {
				l.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 200})
			}
		})
		e.Run()
		return l.FramesLost(), len(b.frames)
	}

	lost, got := run(42)
	if lost == 0 {
		t.Fatal("10% loss dropped nothing over 2000 frames")
	}
	if got+int(lost) != frames {
		t.Errorf("delivered %d + lost %d != sent %d", got, lost, frames)
	}
	// Loss should be in the statistical neighbourhood of 10%.
	if lost < frames/20 || lost > frames/4 {
		t.Errorf("lost %d of %d frames; implausible for 10%% loss", lost, frames)
	}
	// Determinism: the same seed loses exactly the same frames.
	lost2, got2 := run(42)
	if lost2 != lost || got2 != got {
		t.Errorf("same seed, different outcome: (%d,%d) vs (%d,%d)", lost, got, lost2, got2)
	}
}

func TestZeroLossRateLosesNothing(t *testing.T) {
	e := sim.NewEngine(1)
	a, b := &sink{id: 0}, &sink{id: 1}
	l := NewLink(e, FastEthernet(), a, b)
	e.Go("tx", func(p *sim.Process) {
		for i := 0; i < 500; i++ {
			l.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 64})
		}
	})
	e.Run()
	if l.FramesLost() != 0 || len(b.frames) != 500 {
		t.Errorf("lossless link lost %d, delivered %d", l.FramesLost(), len(b.frames))
	}
}
