package ether

import (
	"testing"

	"pushpull/internal/sim"
)

// collector is a Port that records delivered frames.
type collector struct {
	id     int
	frames []Frame
	times  []sim.Time
	e      *sim.Engine
}

func (c *collector) NodeID() int { return c.id }
func (c *collector) DeliverFrame(f Frame) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, c.e.Now())
}

func TestWireTime(t *testing.T) {
	cfg := FastEthernet()
	// 1500-byte payload: (1500+30)*8 bits at 100 Mb/s = 122.4 µs
	if got := cfg.WireTime(1500); got != 122400*sim.Nanosecond {
		t.Errorf("WireTime(1500) = %v, want 122.4µs", got)
	}
	// Minimum frame: 4-byte payload padded to 64: (64+30)*8 = 7.52µs
	if got := cfg.WireTime(4); got != 7520*sim.Nanosecond {
		t.Errorf("WireTime(4) = %v, want 7.52µs", got)
	}
}

func TestPayloadRateCeilingNearPaper(t *testing.T) {
	cfg := FastEthernet()
	rate := cfg.PayloadRate(MTU-16) / 1e6 // MTU minus a protocol header
	if rate < 12.0 || rate > 12.5 {
		t.Errorf("payload ceiling = %.2f MB/s, want ~12.1-12.2 (paper reaches 12.1)", rate)
	}
}

func TestLinkDelivers(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := FastEthernet()
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	l := NewLink(e, cfg, a, b)
	e.Go("tx", func(p *sim.Process) {
		l.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 100, Payload: "hello"})
	})
	e.Run()
	if len(b.frames) != 1 || b.frames[0].Payload != "hello" {
		t.Fatalf("b received %v", b.frames)
	}
	want := sim.Time(cfg.WireTime(100) + sim.Duration(cfg.Propagation))
	if b.times[0] != want {
		t.Errorf("delivery at %v, want %v", b.times[0], want)
	}
	if len(a.frames) != 0 {
		t.Error("frame echoed to sender")
	}
}

func TestLinkSerializesOneDirection(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := FastEthernet()
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	l := NewLink(e, cfg, a, b)
	for i := 0; i < 2; i++ {
		e.Go("tx", func(p *sim.Process) {
			l.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 1500})
		})
	}
	e.Run()
	if len(b.times) != 2 {
		t.Fatal("frames lost")
	}
	gap := b.times[1].Sub(b.times[0])
	if gap != cfg.WireTime(1500) {
		t.Errorf("back-to-back gap = %v, want one wire time %v", gap, cfg.WireTime(1500))
	}
}

func TestLinkFullDuplex(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := FastEthernet()
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	l := NewLink(e, cfg, a, b)
	e.Go("txA", func(p *sim.Process) {
		l.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 1500})
	})
	e.Go("txB", func(p *sim.Process) {
		l.Transmit(p, b, Frame{Src: 1, Dst: 0, PayloadBytes: 1500})
	})
	e.Run()
	// Opposite directions must not serialize against each other.
	want := sim.Time(cfg.WireTime(1500) + sim.Duration(cfg.Propagation))
	if a.times[0] != want || b.times[0] != want {
		t.Errorf("full-duplex deliveries at %v / %v, want both %v", a.times[0], b.times[0], want)
	}
}

func TestLinkForeignPortPanics(t *testing.T) {
	e := sim.NewEngine(1)
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	c := &collector{id: 2, e: e}
	l := NewLink(e, FastEthernet(), a, b)
	e.Go("bad", func(p *sim.Process) {
		defer func() {
			if recover() == nil {
				t.Error("transmit from foreign port did not panic")
			}
		}()
		l.Transmit(p, c, Frame{Src: 2, Dst: 1, PayloadBytes: 10})
	})
	e.Run()
}

func TestSwitchForwards(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := FastEthernet()
	sw := NewSwitch(e, cfg, 2*sim.Microsecond)
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	la := sw.Attach(a, 0)
	sw.Attach(b, 0)
	e.Go("tx", func(p *sim.Process) {
		la.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 200, Payload: 42})
	})
	e.Run()
	if len(b.frames) != 1 || b.frames[0].Payload != 42 {
		t.Fatalf("switch did not forward: %v", b.frames)
	}
	// Store-and-forward: at least two serializations plus forwarding.
	minTime := sim.Time(2*cfg.WireTime(200) + 2*sim.Duration(cfg.Propagation) + 2*sim.Microsecond)
	if b.times[0] < minTime {
		t.Errorf("delivery at %v faster than store-and-forward minimum %v", b.times[0], minTime)
	}
}

func TestSwitchUnknownDestinationDropped(t *testing.T) {
	e := sim.NewEngine(1)
	sw := NewSwitch(e, FastEthernet(), 0)
	a := &collector{id: 0, e: e}
	la := sw.Attach(a, 0)
	e.Go("tx", func(p *sim.Process) {
		la.Transmit(p, a, Frame{Src: 0, Dst: 99, PayloadBytes: 64})
	})
	e.Run()
	if sw.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", sw.Dropped())
	}
}

func TestSwitchOutputQueueOverflow(t *testing.T) {
	e := sim.NewEngine(1)
	cfg := FastEthernet()
	sw := NewSwitch(e, cfg, 0)
	a := &collector{id: 0, e: e}
	b := &collector{id: 1, e: e}
	c := &collector{id: 2, e: e}
	la := sw.Attach(a, 1) // 1-frame output queues
	lc := sw.Attach(c, 1)
	sw.Attach(b, 1)
	// Two senders blast frames at b simultaneously; with a 1-frame output
	// queue some must drop.
	for i := 0; i < 4; i++ {
		e.Go("txA", func(p *sim.Process) {
			la.Transmit(p, a, Frame{Src: 0, Dst: 1, PayloadBytes: 1500})
		})
		e.Go("txC", func(p *sim.Process) {
			lc.Transmit(p, c, Frame{Src: 2, Dst: 1, PayloadBytes: 1500})
		})
	}
	e.Run()
	if sw.Dropped() == 0 {
		t.Error("congested 1-frame output queue never dropped")
	}
	if len(b.frames)+int(sw.Dropped()) != 8 {
		t.Errorf("delivered %d + dropped %d != sent 8", len(b.frames), sw.Dropped())
	}
}
