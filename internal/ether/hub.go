package ether

import (
	"fmt"

	"pushpull/internal/fault"
	"pushpull/internal/sim"
)

// Hub is a shared-medium (half-duplex) Fast Ethernet repeater — the
// cheap alternative to the switch in the paper's era. Every attached
// station contends for one wire: data and acknowledgement traffic of a
// single connection collide with each other, which is why the paper's
// testbed (and every serious COMP) used a switch or back-to-back
// cabling instead. The hub exists for the hub-vs-switch ablation.
//
// The MAC model is 1-persistent CSMA/CD at station granularity: a
// station sensing the medium busy defers until it goes idle (the FIFO
// medium resource), and a station that had to defer pays one collision —
// a jam slot plus a random backoff slot — before its frame seizes the
// wire, modelling the contenders racing for the same idle instant.
// Sub-slot timing and the 16-collision excessive-collision abort are not
// modelled: with a handful of stations deferring FIFO, real MACs
// essentially never reach them. What the protocol above observes —
// all traffic serialized on one wire, plus per-contention jitter — is
// preserved.
type Hub struct {
	e      *sim.Engine
	cfg    Config
	medium *sim.Resource
	ports  map[int]Port
	slot   sim.Duration

	collisions uint64
	sent       uint64
	lost       uint64

	inj       *fault.HubInjector
	faultLost uint64
}

// NewHub creates a hub. Attach every NIC with Attach; the hub itself is
// the Medium the NICs transmit on.
func NewHub(e *sim.Engine, cfg Config) *Hub {
	slot := sim.Duration(512 * int64(sim.Second) / cfg.BitsPerSec)
	return &Hub{
		e:      e,
		cfg:    cfg,
		medium: sim.NewResource(e, "hub-medium"),
		ports:  make(map[int]Port),
		slot:   slot,
	}
}

// Attach registers a station for frame delivery. The caller hands the hub
// itself to the NIC as its transmit medium.
func (h *Hub) Attach(p Port) {
	if _, dup := h.ports[p.NodeID()]; dup {
		panic(fmt.Sprintf("ether: node %d attached to hub twice", p.NodeID()))
	}
	h.ports[p.NodeID()] = p
}

// Config implements Medium.
func (h *Hub) Config() Config { return h.cfg }

// SlotTime reports the contention slot (512 bit times).
func (h *Hub) SlotTime() sim.Duration { return h.slot }

// Collisions reports how many transmissions had to defer and pay the
// contention penalty.
func (h *Hub) Collisions() uint64 { return h.collisions }

// FramesSent reports frames fully repeated onto the medium.
func (h *Hub) FramesSent() uint64 { return h.sent }

// FramesLost reports frames dropped by the configured loss rate.
func (h *Hub) FramesLost() uint64 { return h.lost }

// SetInjector arms a fault injector on the shared medium (nil disarms).
func (h *Hub) SetInjector(in *fault.HubInjector) { h.inj = in }

// FaultLost reports frames dropped by the armed fault injector.
func (h *Hub) FaultLost() uint64 { return h.faultLost }

// Transmit implements Medium: defer while the wire is busy (carrier
// sense), pay a jam-plus-backoff penalty if there was contention, then
// hold the one shared wire for the serialization time and deliver to the
// destination station.
func (h *Hub) Transmit(p *sim.Process, from Port, f Frame) {
	contended := h.medium.Held()
	h.medium.Acquire(p)
	if contended {
		h.collisions++
		// Jam slot plus a random backoff slot: the losers of the race
		// for the idle instant retry within the contention window.
		p.Sleep(h.slot + h.e.Rand().Duration(h.slot))
	}
	p.Sleep(h.cfg.WireTime(f.PayloadBytes))
	h.medium.Release()
	h.finish(f)
}

// TransmitStep implements Medium for tasklet transmitters. The carrier
// sense, contention penalty, backoff RNG draw and serialization happen at
// the same instants — and consume the same RNG and scheduling slots — as
// the process-tier Transmit.
func (h *Hub) TransmitStep(tk *sim.Tasklet, cur *TxCursor, from Port, f Frame) bool {
	switch cur.pc {
	case txAcquire, txReacquire:
		if cur.pc == txAcquire {
			cur.contended = h.medium.Held()
		}
		if !h.medium.PollAcquire(tk, cur.pc == txAcquire) {
			cur.pc = txReacquire
			return false
		}
		if cur.contended {
			h.collisions++
			cur.pc = txBackoffDone
			tk.Sleep(h.slot + h.e.Rand().Duration(h.slot))
			return false
		}
		cur.pc = txSerialized
		tk.Sleep(h.cfg.WireTime(f.PayloadBytes))
		return false
	case txBackoffDone:
		cur.pc = txSerialized
		tk.Sleep(h.cfg.WireTime(f.PayloadBytes))
		return false
	default: // txSerialized
		h.medium.Release()
		h.finish(f)
		return true
	}
}

// finish counts the serialized frame, draws the loss lottery, and
// schedules delivery to the claiming station.
func (h *Hub) finish(f Frame) {
	h.sent++
	if h.cfg.LossRate > 0 && h.e.Rand().Float64() < h.cfg.LossRate {
		h.lost++
		return // lost on the wire, like a point-to-point link would lose it
	}
	// Consulted after the i.i.d. draw so the engine-RNG sequence of an
	// unfaulted run is untouched.
	if h.inj != nil && h.inj.Lose(h.e.Now(), f.Src, f.Dst) {
		h.faultLost++
		return
	}
	dst, ok := h.ports[f.Dst]
	if !ok {
		return // repeated to every station; nobody claims it
	}
	frame := f
	h.e.Schedule(h.cfg.Propagation, func() { dst.DeliverFrame(frame) })
}
