// Package ether models the cluster interconnect: 100 Mbit/s Fast Ethernet
// links (and optionally a store-and-forward switch) carrying Ethernet
// frames between NICs. Serialization time, framing overhead and the
// minimum frame size bound the achievable bandwidth exactly as on the
// paper's testbed, where 12.1 MB/s of the theoretical 12.5 MB/s payload
// rate was reached.
package ether

import (
	"fmt"

	"pushpull/internal/fault"
	"pushpull/internal/sim"
)

// Ethernet geometry. WireOverheadBytes covers preamble+SFD (8), MAC
// header (14), FCS (4) and a short interframe gap allowance.
const (
	MTU               = 1500 // max payload carried in one frame
	WireOverheadBytes = 30
	MinFrameBytes     = 64 // payload shorter than this is padded on the wire
)

// Config describes one link technology.
type Config struct {
	BitsPerSec  int64
	Propagation sim.Duration // cable + PHY latency, one way
	// LossRate is the probability that a fully serialized frame is lost
	// on the wire (bad cable, electrical noise). Zero on the paper's
	// back-to-back testbed; non-zero values exercise the go-back-N
	// recovery path. Draws come from the engine's deterministic RNG, so
	// runs remain exactly reproducible.
	LossRate float64
}

// FastEthernet is the paper's interconnect: 100 Mbit/s, back-to-back.
func FastEthernet() Config {
	return Config{
		BitsPerSec:  100_000_000,
		Propagation: 1000 * sim.Nanosecond,
	}
}

// Frame is one Ethernet frame in flight. Payload is the link-client
// protocol message (opaque here); PayloadBytes is its size on the wire
// including any protocol headers the client counts.
type Frame struct {
	Src, Dst     int // node IDs
	PayloadBytes int
	Payload      any
}

// WireTime reports how long serializing a frame with n payload bytes
// occupies the wire.
func (c Config) WireTime(n int) sim.Duration {
	if n < MinFrameBytes {
		n = MinFrameBytes
	}
	bits := int64(n+WireOverheadBytes) * 8
	return sim.Duration(bits * int64(sim.Second) / c.BitsPerSec)
}

// PayloadRate reports the steady-state payload bandwidth (bytes/s) for
// back-to-back frames of n payload bytes — the ceiling any protocol on
// this link can reach.
func (c Config) PayloadRate(n int) float64 {
	return float64(n) / c.WireTime(n).Seconds()
}

// Port is the attachment point of a NIC: frames delivered to the port are
// handed to the receive callback.
type Port interface {
	// NodeID identifies the attached node.
	NodeID() int
	// DeliverFrame hands a fully received frame to the NIC. It runs in
	// event context at the instant the last bit arrives.
	DeliverFrame(f Frame)
}

// Medium is anything a NIC can transmit frames on: a point-to-point Link,
// a switch port's link, or a shared-medium Hub.
type Medium interface {
	// Transmit serializes f on behalf of process p, blocking p for the
	// serialization (and, on shared media, contention) time, and delivers
	// the frame to its destination after the propagation delay.
	Transmit(p *sim.Process, from Port, f Frame)
	// TransmitStep is the tasklet-tier Transmit: one resume of the same
	// state machine, with cur carrying the resume point across parks.
	// Call it with a zero TxCursor to start a transmission, and again on
	// each wake until it reports true (frame fully serialized, delivery
	// scheduled). A false return means the tasklet has either registered
	// for a wake or armed a Sleep, and must simply return from its step.
	TransmitStep(tk *sim.Tasklet, cur *TxCursor, from Port, f Frame) bool
	// Config reports the medium's link technology.
	Config() Config
}

// TxCursor is the resume state of one in-progress TransmitStep
// transmission. The zero value starts a fresh transmission; the cursor is
// opaque to callers and interpreted by the medium that owns the
// transmission.
type TxCursor struct {
	pc        int8
	contended bool // hub: medium was busy at first carrier sense
}

// TxCursor resume points shared by the Medium implementations.
const (
	txAcquire     = iota // first acquisition attempt (counts contention)
	txReacquire          // wake-driven retry of the acquisition
	txBackoffDone        // hub: jam+backoff slept, serialization next
	txSerialized         // wire held for the serialization time; finish
)

// halfLink is one direction of a full-duplex link. Each half is homed
// on its transmitter's engine — the wire resource, the serialization
// state, the counters and the loss draws all belong to the sender's
// shard — and delivery crosses to the receiver's engine through
// ScheduleOn, which is a plain local Schedule when both ends share one
// engine (the sequential topology) and a routed cross-shard event under
// a sim.Partition.
type halfLink struct {
	e    *sim.Engine // transmitter-side engine: owns wire, counters, draws
	dste *sim.Engine // receiver-side engine: delivery target
	cfg  Config
	dst  Port
	wire *sim.Resource
	sent uint64
	lost uint64

	// inj, when set, is the armed fault injector for this direction;
	// frames it claims are counted in faultLost. Nil (the default) costs
	// one comparison per frame.
	inj       *fault.LinkInjector
	faultLost uint64
}

// Link is a full-duplex point-to-point Fast Ethernet segment between two
// ports. Each direction serializes independently (full duplex), so data
// and acknowledgement traffic do not contend — and under a partitioned
// run each direction lives entirely on its transmitter's shard.
type Link struct {
	cfg  Config
	a, b Port
	ab   halfLink // a -> b
	ba   halfLink // b -> a
}

// NewLink connects two ports back-to-back on one engine.
func NewLink(e *sim.Engine, cfg Config, a, b Port) *Link {
	return NewLinkOn(e, e, cfg, a, b)
}

// NewLinkOn connects two ports that may live on different engines of the
// same sim.Partition: ea drives a's transmissions (and receives b's),
// eb the converse. With ea == eb it is exactly NewLink. The link's
// propagation delay is the latency floor every cross-engine frame
// respects — the conservative lookahead a partition over this topology
// may use.
func NewLinkOn(ea, eb *sim.Engine, cfg Config, a, b Port) *Link {
	return &Link{
		cfg: cfg,
		a:   a,
		b:   b,
		ab: halfLink{
			e: ea, dste: eb, cfg: cfg, dst: b,
			wire: sim.NewResource(ea, fmt.Sprintf("wire %d->%d", a.NodeID(), b.NodeID())),
		},
		ba: halfLink{
			e: eb, dste: ea, cfg: cfg, dst: a,
			wire: sim.NewResource(eb, fmt.Sprintf("wire %d->%d", b.NodeID(), a.NodeID())),
		},
	}
}

// Config reports the link technology.
func (l *Link) Config() Config { return l.cfg }

// Lookahead reports the link's latency floor: no frame reaches the far
// engine sooner than this after leaving its transmitter.
func (l *Link) Lookahead() sim.Duration { return l.cfg.Propagation }

// FramesSent reports the number of frames fully serialized onto the link.
func (l *Link) FramesSent() uint64 { return l.ab.sent + l.ba.sent }

// FramesLost reports frames dropped by the configured loss rate.
func (l *Link) FramesLost() uint64 { return l.ab.lost + l.ba.lost }

// SetInjector arms one fault injector on both directions (nil disarms).
// Partitioned runs use SetInjectorDirs instead: the two directions
// execute on different shards and must not share stateful overlays.
func (l *Link) SetInjector(in *fault.LinkInjector) { l.ab.inj, l.ba.inj = in, in }

// SetInjectorDirs arms per-direction fault injectors: ab on the a->b
// half, ba on the b->a half.
func (l *Link) SetInjectorDirs(ab, ba *fault.LinkInjector) { l.ab.inj, l.ba.inj = ab, ba }

// FaultLost reports frames dropped by the armed fault injectors.
func (l *Link) FaultLost() uint64 { return l.ab.faultLost + l.ba.faultLost }

// Transmit serializes f onto the wire on behalf of process p (the
// transmitting port's engine), blocking p for the serialization time, and
// delivers the frame to the far port after the propagation delay. from
// identifies which end is transmitting.
func (l *Link) Transmit(p *sim.Process, from Port, f Frame) {
	h := l.dir(from)
	h.wire.Use(p, l.cfg.WireTime(f.PayloadBytes))
	h.finish(f)
}

// TransmitStep implements Medium for tasklet transmitters: acquire the
// directional wire (parking on contention), hold it for the serialization
// time, then release and deliver — the exact event sequence Transmit
// produces for a process.
func (l *Link) TransmitStep(tk *sim.Tasklet, cur *TxCursor, from Port, f Frame) bool {
	h := l.dir(from)
	switch cur.pc {
	case txAcquire, txReacquire:
		if !h.wire.PollAcquire(tk, cur.pc == txAcquire) {
			cur.pc = txReacquire
			return false
		}
		cur.pc = txSerialized
		tk.Sleep(l.cfg.WireTime(f.PayloadBytes))
		return false
	default: // txSerialized
		h.wire.Release()
		h.finish(f)
		return true
	}
}

// dir resolves the transmitting direction's half-link.
func (l *Link) dir(from Port) *halfLink {
	switch from {
	case l.a:
		return &l.ab
	case l.b:
		return &l.ba
	default:
		panic(fmt.Sprintf("ether: transmit from foreign port on link %d<->%d", l.a.NodeID(), l.b.NodeID()))
	}
}

// finish runs once the frame has fully serialized: count it, draw the
// loss lottery, and schedule delivery after the propagation delay. It
// runs on the transmitter's engine; delivery lands on the receiver's.
func (h *halfLink) finish(f Frame) {
	h.sent++
	if h.cfg.LossRate > 0 && h.e.Rand().Float64() < h.cfg.LossRate {
		h.lost++
		return // the frame corrupts on the wire; reliability recovers it
	}
	// Fault injection consults after the i.i.d. loss draw, so arming a
	// plan never perturbs the engine-RNG sequence of the base run.
	if h.inj != nil && h.inj.Lose(h.e.Now()) {
		h.faultLost++
		return
	}
	frame := f
	dst := h.dst
	h.e.ScheduleOn(h.dste, h.cfg.Propagation, func() { dst.DeliverFrame(frame) })
}

// MinLookahead reports the smallest positive propagation delay among
// the given links — the conservative lookahead bound for a partition
// whose shards are connected by them (every cross-shard frame is
// delayed at least this much). It returns 0 when no link contributes a
// positive floor, in which case a conservative partition over the
// topology is not admissible.
func MinLookahead(links ...*Link) sim.Duration {
	var min sim.Duration
	for _, l := range links {
		if p := l.cfg.Propagation; p > 0 && (min == 0 || p < min) {
			min = p
		}
	}
	return min
}
