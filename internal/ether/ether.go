// Package ether models the cluster interconnect: 100 Mbit/s Fast Ethernet
// links (and optionally a store-and-forward switch) carrying Ethernet
// frames between NICs. Serialization time, framing overhead and the
// minimum frame size bound the achievable bandwidth exactly as on the
// paper's testbed, where 12.1 MB/s of the theoretical 12.5 MB/s payload
// rate was reached.
package ether

import (
	"fmt"

	"pushpull/internal/fault"
	"pushpull/internal/sim"
)

// Ethernet geometry. WireOverheadBytes covers preamble+SFD (8), MAC
// header (14), FCS (4) and a short interframe gap allowance.
const (
	MTU               = 1500 // max payload carried in one frame
	WireOverheadBytes = 30
	MinFrameBytes     = 64 // payload shorter than this is padded on the wire
)

// Config describes one link technology.
type Config struct {
	BitsPerSec  int64
	Propagation sim.Duration // cable + PHY latency, one way
	// LossRate is the probability that a fully serialized frame is lost
	// on the wire (bad cable, electrical noise). Zero on the paper's
	// back-to-back testbed; non-zero values exercise the go-back-N
	// recovery path. Draws come from the engine's deterministic RNG, so
	// runs remain exactly reproducible.
	LossRate float64
}

// FastEthernet is the paper's interconnect: 100 Mbit/s, back-to-back.
func FastEthernet() Config {
	return Config{
		BitsPerSec:  100_000_000,
		Propagation: 1000 * sim.Nanosecond,
	}
}

// Frame is one Ethernet frame in flight. Payload is the link-client
// protocol message (opaque here); PayloadBytes is its size on the wire
// including any protocol headers the client counts.
type Frame struct {
	Src, Dst     int // node IDs
	PayloadBytes int
	Payload      any
}

// WireTime reports how long serializing a frame with n payload bytes
// occupies the wire.
func (c Config) WireTime(n int) sim.Duration {
	if n < MinFrameBytes {
		n = MinFrameBytes
	}
	bits := int64(n+WireOverheadBytes) * 8
	return sim.Duration(bits * int64(sim.Second) / c.BitsPerSec)
}

// PayloadRate reports the steady-state payload bandwidth (bytes/s) for
// back-to-back frames of n payload bytes — the ceiling any protocol on
// this link can reach.
func (c Config) PayloadRate(n int) float64 {
	return float64(n) / c.WireTime(n).Seconds()
}

// Port is the attachment point of a NIC: frames delivered to the port are
// handed to the receive callback.
type Port interface {
	// NodeID identifies the attached node.
	NodeID() int
	// DeliverFrame hands a fully received frame to the NIC. It runs in
	// event context at the instant the last bit arrives.
	DeliverFrame(f Frame)
}

// Medium is anything a NIC can transmit frames on: a point-to-point Link,
// a switch port's link, or a shared-medium Hub.
type Medium interface {
	// Transmit serializes f on behalf of process p, blocking p for the
	// serialization (and, on shared media, contention) time, and delivers
	// the frame to its destination after the propagation delay.
	Transmit(p *sim.Process, from Port, f Frame)
	// TransmitStep is the tasklet-tier Transmit: one resume of the same
	// state machine, with cur carrying the resume point across parks.
	// Call it with a zero TxCursor to start a transmission, and again on
	// each wake until it reports true (frame fully serialized, delivery
	// scheduled). A false return means the tasklet has either registered
	// for a wake or armed a Sleep, and must simply return from its step.
	TransmitStep(tk *sim.Tasklet, cur *TxCursor, from Port, f Frame) bool
	// Config reports the medium's link technology.
	Config() Config
}

// TxCursor is the resume state of one in-progress TransmitStep
// transmission. The zero value starts a fresh transmission; the cursor is
// opaque to callers and interpreted by the medium that owns the
// transmission.
type TxCursor struct {
	pc        int8
	contended bool // hub: medium was busy at first carrier sense
}

// TxCursor resume points shared by the Medium implementations.
const (
	txAcquire      = iota // first acquisition attempt (counts contention)
	txReacquire           // wake-driven retry of the acquisition
	txBackoffDone         // hub: jam+backoff slept, serialization next
	txSerialized          // wire held for the serialization time; finish
)

// Link is a full-duplex point-to-point Fast Ethernet segment between two
// ports. Each direction serializes independently (full duplex), so data
// and acknowledgement traffic do not contend.
type Link struct {
	e    *sim.Engine
	cfg  Config
	a, b Port
	dirA *sim.Resource // a -> b serialization
	dirB *sim.Resource // b -> a
	sent uint64
	lost uint64

	// inj, when set, is the armed fault injector for this link; frames it
	// claims are counted in faultLost. Nil (the default) costs one
	// comparison per frame.
	inj       *fault.LinkInjector
	faultLost uint64
}

// NewLink connects two ports back-to-back.
func NewLink(e *sim.Engine, cfg Config, a, b Port) *Link {
	return &Link{
		e:    e,
		cfg:  cfg,
		a:    a,
		b:    b,
		dirA: sim.NewResource(e, fmt.Sprintf("wire %d->%d", a.NodeID(), b.NodeID())),
		dirB: sim.NewResource(e, fmt.Sprintf("wire %d->%d", b.NodeID(), a.NodeID())),
	}
}

// Config reports the link technology.
func (l *Link) Config() Config { return l.cfg }

// FramesSent reports the number of frames fully serialized onto the link.
func (l *Link) FramesSent() uint64 { return l.sent }

// FramesLost reports frames dropped by the configured loss rate.
func (l *Link) FramesLost() uint64 { return l.lost }

// SetInjector arms a fault injector on the link (nil disarms).
func (l *Link) SetInjector(in *fault.LinkInjector) { l.inj = in }

// FaultLost reports frames dropped by the armed fault injector.
func (l *Link) FaultLost() uint64 { return l.faultLost }

// Transmit serializes f onto the wire on behalf of process p (the
// transmitting port's engine), blocking p for the serialization time, and
// delivers the frame to the far port after the propagation delay. from
// identifies which end is transmitting.
func (l *Link) Transmit(p *sim.Process, from Port, f Frame) {
	wire, dst := l.dir(from)
	wire.Use(p, l.cfg.WireTime(f.PayloadBytes))
	l.finish(dst, f)
}

// TransmitStep implements Medium for tasklet transmitters: acquire the
// directional wire (parking on contention), hold it for the serialization
// time, then release and deliver — the exact event sequence Transmit
// produces for a process.
func (l *Link) TransmitStep(tk *sim.Tasklet, cur *TxCursor, from Port, f Frame) bool {
	wire, dst := l.dir(from)
	switch cur.pc {
	case txAcquire, txReacquire:
		if !wire.PollAcquire(tk, cur.pc == txAcquire) {
			cur.pc = txReacquire
			return false
		}
		cur.pc = txSerialized
		tk.Sleep(l.cfg.WireTime(f.PayloadBytes))
		return false
	default: // txSerialized
		wire.Release()
		l.finish(dst, f)
		return true
	}
}

// dir resolves the directional wire and far port for a transmission.
func (l *Link) dir(from Port) (*sim.Resource, Port) {
	switch from {
	case l.a:
		return l.dirA, l.b
	case l.b:
		return l.dirB, l.a
	default:
		panic(fmt.Sprintf("ether: transmit from foreign port on link %d<->%d", l.a.NodeID(), l.b.NodeID()))
	}
}

// finish runs once the frame has fully serialized: count it, draw the
// loss lottery, and schedule delivery after the propagation delay.
func (l *Link) finish(dst Port, f Frame) {
	l.sent++
	if l.cfg.LossRate > 0 && l.e.Rand().Float64() < l.cfg.LossRate {
		l.lost++
		return // the frame corrupts on the wire; reliability recovers it
	}
	// Fault injection consults after the i.i.d. loss draw, so arming a
	// plan never perturbs the engine-RNG sequence of the base run.
	if l.inj != nil && l.inj.Lose(l.e.Now()) {
		l.faultLost++
		return
	}
	frame := f
	l.e.Schedule(l.cfg.Propagation, func() { dst.DeliverFrame(frame) })
}
