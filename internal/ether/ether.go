// Package ether models the cluster interconnect: 100 Mbit/s Fast Ethernet
// links (and optionally a store-and-forward switch) carrying Ethernet
// frames between NICs. Serialization time, framing overhead and the
// minimum frame size bound the achievable bandwidth exactly as on the
// paper's testbed, where 12.1 MB/s of the theoretical 12.5 MB/s payload
// rate was reached.
package ether

import (
	"fmt"

	"pushpull/internal/sim"
)

// Ethernet geometry. WireOverheadBytes covers preamble+SFD (8), MAC
// header (14), FCS (4) and a short interframe gap allowance.
const (
	MTU               = 1500 // max payload carried in one frame
	WireOverheadBytes = 30
	MinFrameBytes     = 64 // payload shorter than this is padded on the wire
)

// Config describes one link technology.
type Config struct {
	BitsPerSec  int64
	Propagation sim.Duration // cable + PHY latency, one way
	// LossRate is the probability that a fully serialized frame is lost
	// on the wire (bad cable, electrical noise). Zero on the paper's
	// back-to-back testbed; non-zero values exercise the go-back-N
	// recovery path. Draws come from the engine's deterministic RNG, so
	// runs remain exactly reproducible.
	LossRate float64
}

// FastEthernet is the paper's interconnect: 100 Mbit/s, back-to-back.
func FastEthernet() Config {
	return Config{
		BitsPerSec:  100_000_000,
		Propagation: 1000 * sim.Nanosecond,
	}
}

// Frame is one Ethernet frame in flight. Payload is the link-client
// protocol message (opaque here); PayloadBytes is its size on the wire
// including any protocol headers the client counts.
type Frame struct {
	Src, Dst     int // node IDs
	PayloadBytes int
	Payload      any
}

// WireTime reports how long serializing a frame with n payload bytes
// occupies the wire.
func (c Config) WireTime(n int) sim.Duration {
	if n < MinFrameBytes {
		n = MinFrameBytes
	}
	bits := int64(n+WireOverheadBytes) * 8
	return sim.Duration(bits * int64(sim.Second) / c.BitsPerSec)
}

// PayloadRate reports the steady-state payload bandwidth (bytes/s) for
// back-to-back frames of n payload bytes — the ceiling any protocol on
// this link can reach.
func (c Config) PayloadRate(n int) float64 {
	return float64(n) / c.WireTime(n).Seconds()
}

// Port is the attachment point of a NIC: frames delivered to the port are
// handed to the receive callback.
type Port interface {
	// NodeID identifies the attached node.
	NodeID() int
	// DeliverFrame hands a fully received frame to the NIC. It runs in
	// event context at the instant the last bit arrives.
	DeliverFrame(f Frame)
}

// Medium is anything a NIC can transmit frames on: a point-to-point Link,
// a switch port's link, or a shared-medium Hub.
type Medium interface {
	// Transmit serializes f on behalf of process p, blocking p for the
	// serialization (and, on shared media, contention) time, and delivers
	// the frame to its destination after the propagation delay.
	Transmit(p *sim.Process, from Port, f Frame)
	// Config reports the medium's link technology.
	Config() Config
}

// Link is a full-duplex point-to-point Fast Ethernet segment between two
// ports. Each direction serializes independently (full duplex), so data
// and acknowledgement traffic do not contend.
type Link struct {
	e    *sim.Engine
	cfg  Config
	a, b Port
	dirA *sim.Resource // a -> b serialization
	dirB *sim.Resource // b -> a
	sent uint64
	lost uint64
}

// NewLink connects two ports back-to-back.
func NewLink(e *sim.Engine, cfg Config, a, b Port) *Link {
	return &Link{
		e:    e,
		cfg:  cfg,
		a:    a,
		b:    b,
		dirA: sim.NewResource(e, fmt.Sprintf("wire %d->%d", a.NodeID(), b.NodeID())),
		dirB: sim.NewResource(e, fmt.Sprintf("wire %d->%d", b.NodeID(), a.NodeID())),
	}
}

// Config reports the link technology.
func (l *Link) Config() Config { return l.cfg }

// FramesSent reports the number of frames fully serialized onto the link.
func (l *Link) FramesSent() uint64 { return l.sent }

// FramesLost reports frames dropped by the configured loss rate.
func (l *Link) FramesLost() uint64 { return l.lost }

// Transmit serializes f onto the wire on behalf of process p (the
// transmitting port's engine), blocking p for the serialization time, and
// delivers the frame to the far port after the propagation delay. from
// identifies which end is transmitting.
func (l *Link) Transmit(p *sim.Process, from Port, f Frame) {
	var wire *sim.Resource
	var dst Port
	switch from {
	case l.a:
		wire, dst = l.dirA, l.b
	case l.b:
		wire, dst = l.dirB, l.a
	default:
		panic(fmt.Sprintf("ether: transmit from foreign port on link %d<->%d", l.a.NodeID(), l.b.NodeID()))
	}
	wire.Use(p, l.cfg.WireTime(f.PayloadBytes))
	l.sent++
	if l.cfg.LossRate > 0 && l.e.Rand().Float64() < l.cfg.LossRate {
		l.lost++
		return // the frame corrupts on the wire; reliability recovers it
	}
	frame := f
	l.e.Schedule(l.cfg.Propagation, func() { dst.DeliverFrame(frame) })
}
