package vm

import (
	"fmt"

	"pushpull/internal/sim"
)

// AddressSpace is one protected user address space: a page table mapping
// virtual pages to physical frames, plus a simple bump allocator for
// buffers. Buffers are page-aligned, as in the paper's benchmarks ("source
// and destination buffers were page-aligned for steady performance").
type AddressSpace struct {
	name   string
	frames *FrameAllocator
	pt     map[uint64]uint64 // vpn -> pfn
	pinned map[uint64]int    // vpn -> pin count
	next   VirtAddr
	cost   CostModel
}

// NewAddressSpace creates an empty address space drawing frames from fa.
func NewAddressSpace(name string, fa *FrameAllocator, cost CostModel) *AddressSpace {
	return &AddressSpace{
		name:   name,
		frames: fa,
		pt:     make(map[uint64]uint64),
		pinned: make(map[uint64]int),
		next:   VirtAddr(1 << 30), // arbitrary user-space base
		cost:   cost,
	}
}

// Name reports the space's name (for traces).
func (s *AddressSpace) Name() string { return s.name }

// CostModel returns the translation cost model in force.
func (s *AddressSpace) CostModel() CostModel { return s.cost }

// Alloc reserves n bytes of page-aligned virtual memory, faulting in
// physical frames immediately (the benchmarks touch their buffers before
// timing, so there are no faults on the measured path).
func (s *AddressSpace) Alloc(n int) VirtAddr {
	if n <= 0 {
		panic("vm: Alloc of non-positive size")
	}
	base := s.next
	pages := (n + PageSize - 1) / PageSize
	for i := 0; i < pages; i++ {
		vpn := base.PageOf() + uint64(i)
		s.pt[vpn] = s.frames.Alloc()
	}
	s.next = base + VirtAddr(pages*PageSize)
	return base
}

// Free releases the pages backing [addr, addr+n). The range must have been
// returned by Alloc and must not be pinned.
func (s *AddressSpace) Free(addr VirtAddr, n int) {
	pages := PagesSpanned(addr, n)
	for i := 0; i < pages; i++ {
		vpn := addr.PageOf() + uint64(i)
		if s.pinned[vpn] > 0 {
			panic(fmt.Sprintf("vm: freeing pinned page %d in %s", vpn, s.name))
		}
		pfn, ok := s.pt[vpn]
		if !ok {
			panic(fmt.Sprintf("vm: freeing unmapped page %d in %s", vpn, s.name))
		}
		s.frames.Free(pfn)
		delete(s.pt, vpn)
	}
}

// Translate resolves [addr, addr+n) to its physical scatter list — the
// cross-space zero buffer. Adjacent physical pages are coalesced when they
// happen to be contiguous. The time this takes on the simulated machine is
// TranslateCost; callers charge it to whichever thread performs the walk,
// which is exactly what Address Translation Overhead Masking manipulates.
func (s *AddressSpace) Translate(addr VirtAddr, n int) (ZeroBuffer, error) {
	if n <= 0 {
		return ZeroBuffer{}, fmt.Errorf("vm: translate of non-positive length %d", n)
	}
	var z ZeroBuffer
	remaining := n
	cur := addr
	for remaining > 0 {
		vpn := cur.PageOf()
		pfn, ok := s.pt[vpn]
		if !ok {
			return ZeroBuffer{}, fmt.Errorf("vm: %s: page fault at %#x", s.name, cur)
		}
		off := cur.Offset()
		take := PageSize - off
		if take > remaining {
			take = remaining
		}
		pa := PhysAddr(pfn<<PageShift) + PhysAddr(off)
		if k := len(z.Segs); k > 0 && z.Segs[k-1].Addr+PhysAddr(z.Segs[k-1].Len) == pa {
			z.Segs[k-1].Len += take
		} else {
			z.Segs = append(z.Segs, Segment{Addr: pa, Len: take})
		}
		cur += VirtAddr(take)
		remaining -= take
	}
	return z, nil
}

// TranslateCost reports the virtual time a Translate of this range costs.
func (s *AddressSpace) TranslateCost(addr VirtAddr, n int) sim.Duration {
	return s.cost.Cost(addr, n)
}

// Pin pins the pages of [addr, addr+n) so they cannot be freed (modelling
// pages wired for DMA). Pins nest.
func (s *AddressSpace) Pin(addr VirtAddr, n int) {
	pages := PagesSpanned(addr, n)
	for i := 0; i < pages; i++ {
		vpn := addr.PageOf() + uint64(i)
		if _, ok := s.pt[vpn]; !ok {
			panic(fmt.Sprintf("vm: pinning unmapped page %d in %s", vpn, s.name))
		}
		s.pinned[vpn]++
	}
}

// Unpin releases one pin on each page of the range.
func (s *AddressSpace) Unpin(addr VirtAddr, n int) {
	pages := PagesSpanned(addr, n)
	for i := 0; i < pages; i++ {
		vpn := addr.PageOf() + uint64(i)
		if s.pinned[vpn] <= 0 {
			panic(fmt.Sprintf("vm: unpinning unpinned page %d in %s", vpn, s.name))
		}
		s.pinned[vpn]--
		if s.pinned[vpn] == 0 {
			delete(s.pinned, vpn)
		}
	}
}

// PinnedPages reports the number of currently pinned pages.
func (s *AddressSpace) PinnedPages() int { return len(s.pinned) }
