package vm

import (
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T) *AddressSpace {
	t.Helper()
	fa := NewFrameAllocator(256 << 20) // paper's 256 MB nodes
	return NewAddressSpace("test", fa, DefaultCostModel())
}

func TestPagesSpanned(t *testing.T) {
	cases := []struct {
		addr VirtAddr
		n    int
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, PageSize, 1},
		{0, PageSize + 1, 2},
		{PageSize - 1, 2, 2},
		{0, 4 * PageSize, 4},
		{100, 4000, 2}, // crosses one boundary
	}
	for _, c := range cases {
		if got := PagesSpanned(c.addr, c.n); got != c.want {
			t.Errorf("PagesSpanned(%#x, %d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestAllocIsPageAligned(t *testing.T) {
	s := newSpace(t)
	for _, n := range []int{1, 100, PageSize, PageSize + 1, 12 << 10} {
		a := s.Alloc(n)
		if a.Offset() != 0 {
			t.Errorf("Alloc(%d) = %#x not page aligned", n, a)
		}
	}
}

func TestTranslateTilesRange(t *testing.T) {
	s := newSpace(t)
	property := func(sz uint16, off uint8, ln uint16) bool {
		size := int(sz)%32768 + 1
		a := s.Alloc(size)
		o := int(off) % size
		n := int(ln)%(size-o) + 1
		z, err := s.Translate(a+VirtAddr(o), n)
		if err != nil {
			return false
		}
		if z.Len() != n {
			return false
		}
		// Interior boundaries must be page-aligned on the virtual side:
		// each segment except the last must end where a page ends.
		covered := 0
		for i, seg := range z.Segs {
			if seg.Len <= 0 {
				return false
			}
			if i < len(z.Segs)-1 {
				endVirt := uint64(a) + uint64(o) + uint64(covered+seg.Len)
				if endVirt&PageMask != 0 {
					return false
				}
			}
			covered += seg.Len
		}
		return covered == n
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTranslateScattersAcrossPages(t *testing.T) {
	s := newSpace(t)
	a := s.Alloc(4 * PageSize)
	z, err := s.Translate(a, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Segs) < 2 {
		t.Errorf("4-page buffer translated to %d segments; interleaved allocator should scatter", len(z.Segs))
	}
}

func TestTranslateUnmappedFails(t *testing.T) {
	s := newSpace(t)
	if _, err := s.Translate(VirtAddr(0xdead000), 100); err == nil {
		t.Error("translating unmapped range succeeded")
	}
	if _, err := s.Translate(s.Alloc(100), 0); err == nil {
		t.Error("zero-length translate succeeded")
	}
}

func TestTranslateCostStaircase(t *testing.T) {
	s := newSpace(t)
	a := s.Alloc(64 << 10)
	m := s.CostModel()
	onePage := s.TranslateCost(a, 3000)
	twoPages := s.TranslateCost(a, 5000)
	if onePage != m.Base+m.PerPage {
		t.Errorf("1-page cost = %v, want base+1*per", onePage)
	}
	if twoPages != m.Base+2*m.PerPage {
		t.Errorf("2-page cost = %v, want base+2*per", twoPages)
	}
	if twoPages <= onePage {
		t.Error("cost must step up crossing a page boundary")
	}
}

func TestTranslateCostLongMessageNearPaper(t *testing.T) {
	// Paper: masking hides "around 12-13 µs for long messages". A 64 KB
	// buffer (16 pages) should cost on that order.
	s := newSpace(t)
	a := s.Alloc(64 << 10)
	c := s.TranslateCost(a, 64<<10)
	if us := c.Microseconds(); us < 8 || us > 18 {
		t.Errorf("64KB translate = %.1fµs, want ~12-13µs", us)
	}
}

func TestZeroBufferSlice(t *testing.T) {
	z := ZeroBuffer{Segs: []Segment{{Addr: 0x1000, Len: 100}, {Addr: 0x9000, Len: 50}}}
	sub := z.Slice(90, 30)
	if sub.Len() != 30 {
		t.Fatalf("slice len = %d, want 30", sub.Len())
	}
	if len(sub.Segs) != 2 {
		t.Fatalf("slice segs = %d, want 2", len(sub.Segs))
	}
	if sub.Segs[0].Addr != 0x1000+90 || sub.Segs[0].Len != 10 {
		t.Errorf("first seg = %+v", sub.Segs[0])
	}
	if sub.Segs[1].Addr != 0x9000 || sub.Segs[1].Len != 20 {
		t.Errorf("second seg = %+v", sub.Segs[1])
	}
}

func TestZeroBufferSliceProperty(t *testing.T) {
	s := newSpace(t)
	a := s.Alloc(32 << 10)
	z, err := s.Translate(a, 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	property := func(off, n uint16) bool {
		o := int(off) % z.Len()
		k := int(n) % (z.Len() - o)
		sub := z.Slice(o, k)
		if sub.Len() != k {
			return false
		}
		// slicing a slice agrees with slicing the original
		if k > 2 {
			if sub.Slice(1, k-2).Len() != k-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZeroBufferSliceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range slice did not panic")
		}
	}()
	z := ZeroBuffer{Segs: []Segment{{Addr: 0, Len: 10}}}
	z.Slice(5, 10)
}

func TestFreeReturnsFrames(t *testing.T) {
	fa := NewFrameAllocator(1 << 20)
	s := NewAddressSpace("x", fa, DefaultCostModel())
	before := fa.FreeFrames()
	a := s.Alloc(8 * PageSize)
	if fa.FreeFrames() != before-8 {
		t.Fatalf("free frames after alloc = %d, want %d", fa.FreeFrames(), before-8)
	}
	s.Free(a, 8*PageSize)
	if fa.FreeFrames() != before {
		t.Errorf("free frames after free = %d, want %d", fa.FreeFrames(), before)
	}
	if _, err := s.Translate(a, 10); err == nil {
		t.Error("translate after free succeeded")
	}
}

func TestPinPreventsFree(t *testing.T) {
	s := newSpace(t)
	a := s.Alloc(PageSize)
	s.Pin(a, PageSize)
	if s.PinnedPages() != 1 {
		t.Fatalf("pinned pages = %d, want 1", s.PinnedPages())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("freeing pinned page did not panic")
			}
		}()
		s.Free(a, PageSize)
	}()
	s.Unpin(a, PageSize)
	s.Free(a, PageSize) // now fine
}

func TestPinNests(t *testing.T) {
	s := newSpace(t)
	a := s.Alloc(PageSize)
	s.Pin(a, PageSize)
	s.Pin(a, PageSize)
	s.Unpin(a, PageSize)
	if s.PinnedPages() != 1 {
		t.Errorf("pin count not nested: pinned pages = %d, want 1", s.PinnedPages())
	}
	s.Unpin(a, PageSize)
	if s.PinnedPages() != 0 {
		t.Errorf("pinned pages = %d, want 0", s.PinnedPages())
	}
}

func TestFrameAllocatorNoDoubleAlloc(t *testing.T) {
	fa := NewFrameAllocator(1 << 20) // 256 frames
	seen := make(map[uint64]bool)
	for i := uint64(0); i < fa.TotalFrames(); i++ {
		fr := fa.Alloc()
		if seen[fr] {
			t.Fatalf("frame %d allocated twice", fr)
		}
		seen[fr] = true
	}
}

func TestFrameAllocatorInterleaves(t *testing.T) {
	fa := NewFrameAllocator(1 << 20)
	a, b := fa.Alloc(), fa.Alloc()
	if b == a+1 {
		t.Errorf("consecutive allocations %d, %d are physically adjacent; allocator should interleave", a, b)
	}
}

func TestCostModelZeroLength(t *testing.T) {
	m := DefaultCostModel()
	if m.Cost(0, 0) != 0 {
		t.Error("zero-length translation should be free")
	}
	if m.Cost(0, -5) != 0 {
		t.Error("negative-length translation should be free")
	}
}
