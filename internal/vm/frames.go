package vm

import "fmt"

// FrameAllocator hands out physical page frames for one node. Frames are
// deliberately handed out in an interleaved order (low half / high half
// alternating), so virtually contiguous buffers are physically scattered —
// the common state of a machine whose page pool has been churned. This is
// what makes zero buffers genuinely multi-segment.
type FrameAllocator struct {
	totalFrames uint64
	free        []uint64 // frame numbers, pop from end
	allocated   map[uint64]bool
}

// NewFrameAllocator manages a physical memory of size bytes (rounded down
// to whole frames).
func NewFrameAllocator(size uint64) *FrameAllocator {
	n := size >> PageShift
	f := &FrameAllocator{
		totalFrames: n,
		allocated:   make(map[uint64]bool),
	}
	// Interleave: 0, n/2, 1, n/2+1, ... reversed so pops come off the end
	// in that order.
	half := n / 2
	order := make([]uint64, 0, n)
	for i := uint64(0); i < half; i++ {
		order = append(order, i, half+i)
	}
	for i := 2 * half; i < n; i++ {
		order = append(order, i)
	}
	// reverse into the free stack
	f.free = make([]uint64, n)
	for i, fr := range order {
		f.free[int(n)-1-i] = fr
	}
	return f
}

// TotalFrames reports the number of managed frames.
func (f *FrameAllocator) TotalFrames() uint64 { return f.totalFrames }

// FreeFrames reports the number of unallocated frames.
func (f *FrameAllocator) FreeFrames() uint64 { return uint64(len(f.free)) }

// Alloc returns a free frame number. It panics when physical memory is
// exhausted: the simulated workloads are sized to fit, so exhaustion is a
// configuration bug.
func (f *FrameAllocator) Alloc() uint64 {
	if len(f.free) == 0 {
		panic("vm: out of physical frames")
	}
	fr := f.free[len(f.free)-1]
	f.free = f.free[:len(f.free)-1]
	f.allocated[fr] = true
	return fr
}

// Free returns a frame to the pool.
func (f *FrameAllocator) Free(frame uint64) {
	if !f.allocated[frame] {
		panic(fmt.Sprintf("vm: freeing unallocated frame %d", frame))
	}
	delete(f.allocated, frame)
	f.free = append(f.free, frame)
}

// Allocated reports whether a frame is currently allocated.
func (f *FrameAllocator) Allocated(frame uint64) bool { return f.allocated[frame] }
