// Package vm models the virtual-memory subsystem the paper's messaging
// layer lives on: per-process address spaces with page tables, a physical
// frame allocator, page pinning, and the Cross-Space Zero Buffer — a
// scatter list of (physical address, length) pairs that lets a kernel
// thread move data between two protected user address spaces (or between
// the NIC buffer and a user buffer) with a single copy.
//
// Virtual buffers are contiguous, but the frames backing them generally are
// not (the allocator deliberately interleaves frames, as a long-running
// Linux 2.1 box would), so translation yields one segment per page and its
// cost grows stepwise with the number of pages crossed. That staircase is
// load-bearing: it produces the Fig. 3 Push-All cliff near 4 KB and the
// 12–13 µs win of Address Translation Overhead Masking.
package vm

import (
	"fmt"

	"pushpull/internal/sim"
)

// Page geometry (i386, as on the paper's testbed).
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// VirtAddr is a virtual address within one address space.
type VirtAddr uint64

// PhysAddr is a physical memory address, global to a node.
type PhysAddr uint64

// PageOf returns the virtual page number containing a.
func (a VirtAddr) PageOf() uint64 { return uint64(a) >> PageShift }

// Offset returns the offset of a within its page.
func (a VirtAddr) Offset() int { return int(uint64(a) & PageMask) }

// PagesSpanned reports how many pages the range [addr, addr+n) touches.
func PagesSpanned(addr VirtAddr, n int) int {
	if n <= 0 {
		return 0
	}
	first := uint64(addr) >> PageShift
	last := (uint64(addr) + uint64(n) - 1) >> PageShift
	return int(last - first + 1)
}

// CostModel prices address translation: a fixed kernel-side setup cost plus
// a per-page table walk. The paper measures the total at 12–13 µs for long
// messages.
type CostModel struct {
	Base    sim.Duration
	PerPage sim.Duration
}

// DefaultCostModel matches the paper's testbed: walking the page tables of
// a user process from a kernel thread on a 200 MHz Pentium Pro.
func DefaultCostModel() CostModel {
	return CostModel{Base: 1200 * sim.Nanosecond, PerPage: 720 * sim.Nanosecond}
}

// Cost reports the translation cost for the range [addr, addr+n).
func (m CostModel) Cost(addr VirtAddr, n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return m.Base + sim.Duration(PagesSpanned(addr, n))*m.PerPage
}

// Segment is one physically contiguous piece of a buffer.
type Segment struct {
	Addr PhysAddr
	Len  int
}

// ZeroBuffer is the paper's cross-space zero buffer: the scatter list of
// physical segments backing a virtual range. It carries no message data
// itself — hence the name — only addresses and lengths.
type ZeroBuffer struct {
	Segs []Segment
}

// Len reports the total number of bytes described.
func (z ZeroBuffer) Len() int {
	n := 0
	for _, s := range z.Segs {
		n += s.Len
	}
	return n
}

// Slice returns a zero buffer describing bytes [off, off+n) of z.
// It panics if the range is out of bounds — callers hold the registration
// that produced z, so a bad range is a protocol bug.
func (z ZeroBuffer) Slice(off, n int) ZeroBuffer {
	if off < 0 || n < 0 || off+n > z.Len() {
		panic(fmt.Sprintf("vm: ZeroBuffer.Slice(%d, %d) of %d bytes", off, n, z.Len()))
	}
	var out ZeroBuffer
	for _, s := range z.Segs {
		if n == 0 {
			break
		}
		if off >= s.Len {
			off -= s.Len
			continue
		}
		take := s.Len - off
		if take > n {
			take = n
		}
		out.Segs = append(out.Segs, Segment{Addr: s.Addr + PhysAddr(off), Len: take})
		off = 0
		n -= take
	}
	return out
}
