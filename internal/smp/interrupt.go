package smp

import (
	"fmt"

	"pushpull/internal/sim"
)

// Policy selects how reception-handler invocations reach a processor
// (paper §2, stage 3).
type Policy int

// Handler invocation policies.
const (
	// Asymmetric delivers every interrupt to one pre-assigned processor.
	Asymmetric Policy = iota
	// Symmetric arbitrates each interrupt to the least loaded processor
	// (the paper's optimized configuration, cf. Intel MP 1.4 lowest
	// priority delivery).
	Symmetric
	// Polling dispenses with interrupts: a polling routine notices state
	// changes at its next tick, so invocation latency is quantized to the
	// polling period but avoids the interrupt dispatch cost.
	Polling
)

func (p Policy) String() string {
	switch p {
	case Asymmetric:
		return "asymmetric"
	case Symmetric:
		return "symmetric"
	case Polling:
		return "polling"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// InterruptController delivers device interrupts to processors according
// to the configured policy.
type InterruptController struct {
	node       *Node
	policy     Policy
	asymTarget int
	pollCPU    int
	raised     uint64
}

func newInterruptController(n *Node) *InterruptController {
	return &InterruptController{node: n, policy: Symmetric}
}

// SetPolicy selects the delivery policy. For Asymmetric, target is the
// CPU that receives every interrupt; for Polling, target is the CPU whose
// polling routine serves requests. Symmetric ignores target.
func (ic *InterruptController) SetPolicy(p Policy, target int) {
	ic.policy = p
	ic.asymTarget = target
	ic.pollCPU = target
}

// Policy reports the delivery policy in force.
func (ic *InterruptController) Policy() Policy { return ic.policy }

// Raised reports how many handler invocations have been requested.
func (ic *InterruptController) Raised() uint64 { return ic.raised }

// Raise requests execution of handler in interrupt (or polling) context.
// The handler runs on a processor chosen by the policy after the delivery
// latency; its execution time is stolen from whatever that processor was
// doing at the time.
//
// Raise is tier-neutral: it only schedules, never blocks, so it may be
// called from any engine-context code — an event callback, a tasklet step
// (the NIC receive path raises from one), or a process body. The handler
// itself always runs on a fresh irq/ process, because handler bodies
// block (bus copies, Exec) and so need the goroutine tier.
func (ic *InterruptController) Raise(name string, handler func(t *Thread)) {
	ic.raised++
	n := ic.node
	switch ic.policy {
	case Polling:
		// The polling routine notices the state change at its next tick.
		period := int64(n.Cfg.PollPeriod)
		now := int64(n.Engine.Now())
		wait := sim.Duration((now/period+1)*period - now)
		ic.deliver(name, n.CPUs[ic.pollCPU], wait, n.Cfg.PollCheck, handler)
	case Asymmetric:
		ic.deliver(name, n.CPUs[ic.asymTarget], 0, n.Cfg.InterruptDispatch, handler)
	case Symmetric:
		cpu := n.LeastLoadedCPU()
		ic.deliver(name, cpu, 0, n.Cfg.InterruptDispatch+n.Cfg.InterruptArbitration, handler)
	default:
		panic("smp: unknown interrupt policy")
	}
}

// deliver schedules handler on cpu after an untimed wait (polling delay)
// plus a timed dispatch cost charged to (and stolen from) the CPU.
func (ic *InterruptController) deliver(name string, cpu *Processor, wait, cost sim.Duration, handler func(t *Thread)) {
	n := ic.node
	n.Engine.GoAt(wait, "irq/"+name, func(p *sim.Process) {
		t := &Thread{P: p, Node: n, CPU: cpu, handler: true}
		t.Exec(cost)
		handler(t)
		if ic.policy != Polling {
			t.Exec(n.Cfg.InterruptExit)
		}
	})
}
