// Package smp models one symmetric multiprocessor node of the cluster:
// processors with load accounting, user/kernel threads, and the three
// reception-handler invocation methods the paper studies — asymmetric
// interrupt (fixed CPU), symmetric interrupt (arbitrated to the least
// loaded CPU, as the paper's optimized configuration uses), and polling.
//
// Interrupt handlers preempt whatever a processor is doing: handler
// execution time is "stolen" from the computation running on that CPU,
// which a Thread.Compute in progress absorbs by running longer. This is
// how the simulation reproduces the paper's §4.1 claim that running the
// pull phase on a lightly loaded processor overlaps communication with
// computation instead of slowing it down.
package smp

import (
	"fmt"

	"pushpull/internal/mem"
	"pushpull/internal/sim"
	"pushpull/internal/vm"
)

// Config collects the node's hardware shape and kernel software costs.
// Defaults model Linux 2.1.90 on a quad 200 MHz Pentium Pro.
type Config struct {
	NumCPUs int
	Mem     mem.Config
	VMCost  vm.CostModel
	// PhysMemBytes sizes the frame pool (paper: 256 MB per node).
	PhysMemBytes uint64

	// Software path costs.
	CallOverhead sim.Duration // user-level library call prologue
	SyscallEntry sim.Duration // user -> kernel crossing
	SyscallExit  sim.Duration // kernel -> user crossing
	QueueOp      sim.Duration // lock + enqueue/dequeue on a shared queue
	SignalLocal  sim.Duration // wake a thread on the same CPU
	SignalRemote sim.Duration // wake a thread on another CPU (IPI + reschedule)
	WakeLatency  sim.Duration // woken thread: reschedule + context switch until it runs

	// Interrupt delivery.
	InterruptDispatch    sim.Duration // vector entry to handler start
	InterruptArbitration sim.Duration // extra redirection cost of symmetric delivery
	InterruptExit        sim.Duration // iret path
	// KThreadDispatch is the cost of handing work to an idle kernel
	// thread on another processor (IPI + queue hand-off) — the intranode
	// pull phase uses this, not the NIC interrupt path.
	KThreadDispatch sim.Duration

	// Polling.
	PollPeriod sim.Duration // gap between polls of the NIC state variables
	PollCheck  sim.Duration // cost of one poll that finds work

	// ColdCachePenalty multiplies copy cost when the copying processor did
	// not touch the data last (paper §4.1: offloading the push phase would
	// "introduce a large number of cache misses").
	ColdCachePenalty float64
}

// DefaultConfig is the paper's node: 4 CPUs, 256 MB, Linux 2.1.90-era
// kernel path costs.
func DefaultConfig() Config {
	return Config{
		NumCPUs:      4,
		Mem:          mem.PentiumPro200(),
		VMCost:       vm.DefaultCostModel(),
		PhysMemBytes: 256 << 20,

		CallOverhead: 250 * sim.Nanosecond,
		SyscallEntry: 800 * sim.Nanosecond,
		SyscallExit:  800 * sim.Nanosecond,
		QueueOp:      500 * sim.Nanosecond,
		SignalLocal:  700 * sim.Nanosecond,
		SignalRemote: 2000 * sim.Nanosecond,
		WakeLatency:  2500 * sim.Nanosecond,

		InterruptDispatch:    5500 * sim.Nanosecond,
		InterruptArbitration: 400 * sim.Nanosecond,
		InterruptExit:        700 * sim.Nanosecond,
		KThreadDispatch:      1200 * sim.Nanosecond,

		PollPeriod: 5 * sim.Microsecond,
		PollCheck:  300 * sim.Nanosecond,

		ColdCachePenalty: 1.15,
	}
}

// Processor is one CPU of the node. Load is the number of contexts
// currently executing timed work on it; handler time is additionally
// accounted as stolen so computations absorb it.
type Processor struct {
	ID     int
	active int
	stolen sim.Duration
	busy   sim.Duration
}

// Load reports the number of contexts currently running timed work.
func (c *Processor) Load() int { return c.active }

// BusyTime reports cumulative timed work executed on this CPU.
func (c *Processor) BusyTime() sim.Duration { return c.busy }

// StolenTime reports cumulative handler time stolen from this CPU.
func (c *Processor) StolenTime() sim.Duration { return c.stolen }

// Node is one SMP machine of the cluster.
type Node struct {
	ID     int
	Engine *sim.Engine
	Cfg    Config
	CPUs   []*Processor
	Bus    *mem.Bus
	Copier *mem.Copier
	Frames *vm.FrameAllocator
	IRQ    *InterruptController
}

// NewNode builds a node with the given id and configuration.
func NewNode(e *sim.Engine, id int, cfg Config) *Node {
	if cfg.NumCPUs <= 0 {
		panic("smp: node needs at least one CPU")
	}
	n := &Node{ID: id, Engine: e, Cfg: cfg}
	for i := 0; i < cfg.NumCPUs; i++ {
		n.CPUs = append(n.CPUs, &Processor{ID: i})
	}
	n.Bus = mem.NewBus(e, cfg.Mem)
	n.Copier = mem.NewCopier(n.Bus)
	n.Frames = vm.NewFrameAllocator(cfg.PhysMemBytes)
	n.IRQ = newInterruptController(n)
	return n
}

// NewSpace creates a fresh user address space on this node.
func (n *Node) NewSpace(name string) *vm.AddressSpace {
	return vm.NewAddressSpace(fmt.Sprintf("n%d/%s", n.ID, name), n.Frames, n.Cfg.VMCost)
}

// LeastLoadedCPU returns the CPU with the fewest active contexts,
// preferring higher-numbered CPUs on ties so that handler work lands away
// from CPU 0, where applications conventionally start.
func (n *Node) LeastLoadedCPU() *Processor {
	best := n.CPUs[len(n.CPUs)-1]
	for i := len(n.CPUs) - 2; i >= 0; i-- {
		if n.CPUs[i].active < best.active {
			best = n.CPUs[i]
		}
	}
	return best
}
