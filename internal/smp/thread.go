package smp

import (
	"pushpull/internal/sim"
)

// Thread is a flow of control (user process, kernel thread, or interrupt
// handler body) bound to one processor of a node. Timed operations charge
// the bound CPU; Copy and PIO additionally occupy the memory bus.
type Thread struct {
	P    *sim.Process
	Node *Node
	CPU  *Processor
	// handler marks interrupt/poll handler threads: their execution time
	// is stolen from computations on the same CPU.
	handler bool
}

// Spawn starts a new thread named name on the given CPU.
func (n *Node) Spawn(name string, cpu int, body func(t *Thread)) {
	n.Engine.Go(name, func(p *sim.Process) {
		body(&Thread{P: p, Node: n, CPU: n.CPUs[cpu]})
	})
}

// SpawnAt is Spawn with a start delay.
func (n *Node) SpawnAt(d sim.Duration, name string, cpu int, body func(t *Thread)) {
	n.Engine.GoAt(d, name, func(p *sim.Process) {
		body(&Thread{P: p, Node: n, CPU: n.CPUs[cpu]})
	})
}

// Now reports the current virtual time.
func (t *Thread) Now() sim.Time { return t.P.Now() }

// Exec runs d of work on the bound CPU. Handler threads additionally
// record the time as stolen, so a Compute in progress on the same CPU
// stretches by the same amount.
func (t *Thread) Exec(d sim.Duration) {
	if d <= 0 {
		return
	}
	t.CPU.active++
	t.CPU.busy += d
	if t.handler {
		t.CPU.stolen += d
	}
	t.P.Sleep(d)
	t.CPU.active--
}

// Compute burns cycles of application work (the paper's NOP loops). The
// computation absorbs any handler time stolen from this CPU while it runs:
// if an interrupt handler executed for 10 µs here, the computation
// finishes 10 µs later.
func (t *Thread) Compute(cycles int64) {
	d := t.Node.Cfg.Mem.Cycles(cycles)
	t.CPU.active++
	t.CPU.busy += d
	absorbed := t.CPU.stolen
	for d > 0 {
		t.P.Sleep(d)
		d = t.CPU.stolen - absorbed
		absorbed = t.CPU.stolen
	}
	t.CPU.active--
}

// Copy performs a timed memory copy of n bytes: the CPU is busy and the
// memory bus is held for the duration. cold applies the cold-cache
// penalty, modelling a copy whose data was last touched by another CPU.
func (t *Thread) Copy(n int, cold bool) {
	if n <= 0 {
		return
	}
	d := t.Node.Copier.CopyCost(n)
	if cold {
		d = sim.Duration(float64(d) * t.Node.Cfg.ColdCachePenalty)
	}
	t.CPU.active++
	t.CPU.busy += d
	if t.handler {
		t.CPU.stolen += d
	}
	t.Node.Bus.Occupy(t.P, d)
	t.CPU.active--
}

// PIO performs a programmed-I/O transfer of n bytes into device memory.
func (t *Thread) PIO(n int) {
	if n <= 0 {
		return
	}
	d := t.Node.Copier.PIOCost(n)
	t.CPU.active++
	t.CPU.busy += d
	if t.handler {
		t.CPU.stolen += d
	}
	t.Node.Bus.Occupy(t.P, d)
	t.CPU.active--
}

// Syscall brackets fn with the kernel entry/exit costs.
func (t *Thread) Syscall(fn func()) {
	t.Exec(t.Node.Cfg.SyscallEntry)
	fn()
	t.Exec(t.Node.Cfg.SyscallExit)
}

// SignalCost reports the cost of waking a thread on CPU target from this
// thread's CPU.
func (t *Thread) SignalCost(target *Processor) sim.Duration {
	if target == t.CPU {
		return t.Node.Cfg.SignalLocal
	}
	return t.Node.Cfg.SignalRemote
}

// SpawnKernel starts a kernel worker thread on cpu whose execution time
// is stolen from computations there (handler semantics), charging the
// dispatch cost before body runs.
func (n *Node) SpawnKernel(name string, cpu *Processor, body func(t *Thread)) {
	n.Engine.Go(name, func(p *sim.Process) {
		t := &Thread{P: p, Node: n, CPU: cpu, handler: true}
		t.Exec(n.Cfg.KThreadDispatch)
		body(t)
	})
}
