package smp

import (
	"testing"

	"pushpull/internal/sim"
)

func newNode(e *sim.Engine) *Node { return NewNode(e, 0, DefaultConfig()) }

func TestComputeBurnsCycles(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var done sim.Time
	n.Spawn("app", 0, func(th *Thread) {
		th.Compute(100_000) // 100k cycles at 5ns = 500µs
		done = th.Now()
	})
	e.Run()
	if done != sim.Time(500*sim.Microsecond) {
		t.Errorf("100k NOPs finished at %v, want 500µs", done)
	}
}

func TestHandlerStealsFromComputation(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var done sim.Time
	n.Spawn("app", 2, func(th *Thread) {
		th.Compute(100_000)
		done = th.Now()
	})
	// A handler runs 50µs on CPU 2 midway through the computation.
	e.GoAt(100*sim.Microsecond, "irq", func(p *sim.Process) {
		h := &Thread{P: p, Node: n, CPU: n.CPUs[2], handler: true}
		h.Exec(50 * sim.Microsecond)
	})
	e.Run()
	want := sim.Time(550 * sim.Microsecond)
	if done != want {
		t.Errorf("computation with 50µs stolen finished at %v, want %v", done, want)
	}
}

func TestNonHandlerDoesNotSteal(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var done sim.Time
	n.Spawn("app", 2, func(th *Thread) {
		th.Compute(100_000)
		done = th.Now()
	})
	e.GoAt(100*sim.Microsecond, "other", func(p *sim.Process) {
		h := &Thread{P: p, Node: n, CPU: n.CPUs[3]} // different CPU
		h.Exec(50 * sim.Microsecond)
	})
	e.Run()
	if done != sim.Time(500*sim.Microsecond) {
		t.Errorf("computation finished at %v, want 500µs (no steal)", done)
	}
}

func TestLeastLoadedCPUAvoidsBusy(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var chosen int = -1
	n.Spawn("app", 0, func(th *Thread) {
		th.Compute(1_000_000)
	})
	e.GoAt(10*sim.Microsecond, "pick", func(p *sim.Process) {
		chosen = n.LeastLoadedCPU().ID
	})
	e.Run()
	if chosen == 0 {
		t.Error("least-loaded selection picked the busy CPU 0")
	}
}

func TestLeastLoadedPrefersHighIDsOnTie(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	if got := n.LeastLoadedCPU().ID; got != n.Cfg.NumCPUs-1 {
		t.Errorf("idle tie broke to CPU %d, want %d", got, n.Cfg.NumCPUs-1)
	}
}

func TestSymmetricInterruptPicksIdleCPU(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	n.IRQ.SetPolicy(Symmetric, 0)
	var handlerCPU = -1
	n.Spawn("app", 0, func(th *Thread) { th.Compute(1_000_000) })
	e.GoAt(10*sim.Microsecond, "raise", func(p *sim.Process) {
		n.IRQ.Raise("rx", func(h *Thread) { handlerCPU = h.CPU.ID })
	})
	e.Run()
	if handlerCPU == 0 {
		t.Error("symmetric interrupt landed on the loaded CPU")
	}
	if handlerCPU == -1 {
		t.Fatal("handler never ran")
	}
}

func TestAsymmetricInterruptPinned(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	n.IRQ.SetPolicy(Asymmetric, 1)
	cpus := map[int]int{}
	for i := 0; i < 5; i++ {
		e.Schedule(sim.Duration(i)*10, func() {
			n.IRQ.Raise("rx", func(h *Thread) { cpus[h.CPU.ID]++ })
		})
	}
	e.Run()
	if len(cpus) != 1 || cpus[1] != 5 {
		t.Errorf("asymmetric delivery spread = %v, want all on CPU 1", cpus)
	}
}

func TestInterruptDispatchLatency(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	n.IRQ.SetPolicy(Asymmetric, 0)
	var start, ran sim.Time
	e.Schedule(100, func() {
		start = e.Now()
		n.IRQ.Raise("rx", func(h *Thread) { ran = h.Now() })
	})
	e.Run()
	want := start.Add(n.Cfg.InterruptDispatch)
	if ran != want {
		t.Errorf("handler ran at %v, want %v", ran, want)
	}
}

func TestSymmetricCostsMoreThanAsymmetric(t *testing.T) {
	measure := func(pol Policy) sim.Duration {
		e := sim.NewEngine(1)
		n := newNode(e)
		n.IRQ.SetPolicy(pol, 0)
		var start, ran sim.Time
		e.Schedule(100, func() {
			start = e.Now()
			n.IRQ.Raise("rx", func(h *Thread) { ran = h.Now() })
		})
		e.Run()
		return ran.Sub(start)
	}
	if measure(Symmetric) <= measure(Asymmetric) {
		t.Error("symmetric arbitration should cost more than fixed delivery")
	}
}

func TestPollingQuantizesToTick(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	n.IRQ.SetPolicy(Polling, 0)
	var ran sim.Time
	// Raise at 12µs; with a 5µs period the poller notices at 15µs.
	e.Schedule(12*sim.Microsecond, func() {
		n.IRQ.Raise("rx", func(h *Thread) { ran = h.Now() })
	})
	e.Run()
	want := sim.Time(15*sim.Microsecond + n.Cfg.PollCheck)
	if ran != want {
		t.Errorf("polled handler ran at %v, want %v", ran, want)
	}
}

func TestCopyColdPenalty(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var warm, cold sim.Duration
	n.Spawn("w", 0, func(th *Thread) {
		s := th.Now()
		th.Copy(8192, false)
		warm = th.Now().Sub(s)
		s = th.Now()
		th.Copy(8192, true)
		cold = th.Now().Sub(s)
	})
	e.Run()
	if cold <= warm {
		t.Errorf("cold copy %v not slower than warm %v", cold, warm)
	}
	ratio := float64(cold) / float64(warm)
	cfg := DefaultConfig()
	if ratio < cfg.ColdCachePenalty-0.01 || ratio > cfg.ColdCachePenalty+0.01 {
		t.Errorf("cold/warm ratio = %.3f, want %.3f", ratio, cfg.ColdCachePenalty)
	}
}

func TestSyscallBrackets(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var inner, total sim.Duration
	n.Spawn("w", 0, func(th *Thread) {
		start := th.Now()
		th.Syscall(func() {
			s := th.Now()
			th.Exec(10 * sim.Microsecond)
			inner = th.Now().Sub(s)
		})
		total = th.Now().Sub(start)
	})
	e.Run()
	want := inner + n.Cfg.SyscallEntry + n.Cfg.SyscallExit
	if total != want {
		t.Errorf("syscall total = %v, want %v", total, want)
	}
}

func TestSignalCost(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	th := &Thread{Node: n, CPU: n.CPUs[0]}
	if th.SignalCost(n.CPUs[0]) != n.Cfg.SignalLocal {
		t.Error("same-CPU signal should cost SignalLocal")
	}
	if th.SignalCost(n.CPUs[1]) != n.Cfg.SignalRemote {
		t.Error("cross-CPU signal should cost SignalRemote")
	}
}

func TestSpawnAt(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var started sim.Time = -1
	n.SpawnAt(40, "late", 1, func(th *Thread) { started = th.Now() })
	e.Run()
	if started != 40 {
		t.Errorf("SpawnAt started at %v, want 40", started)
	}
}

func TestBusAccountingThroughThread(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	n.Spawn("w", 0, func(th *Thread) { th.Copy(1<<20, false) })
	e.Run()
	if n.Bus.BusyTime() == 0 {
		t.Error("thread copy did not charge the bus")
	}
	if n.CPUs[0].BusyTime() == 0 {
		t.Error("thread copy did not charge the CPU")
	}
}

func TestExecZeroOrNegativeIsFree(t *testing.T) {
	e := sim.NewEngine(1)
	n := newNode(e)
	var end sim.Time
	n.Spawn("w", 0, func(th *Thread) {
		th.Exec(0)
		th.Exec(-5)
		th.Copy(0, false)
		th.PIO(-1)
		end = th.Now()
	})
	e.Run()
	if end != 0 {
		t.Errorf("no-op operations advanced time to %v", end)
	}
}

// TestRaiseTierNeutral: Raise behaves identically whatever context calls
// it — a process body, a bare event callback, or a tasklet step. The
// handler's CPU and completion time must match across all three.
func TestRaiseTierNeutral(t *testing.T) {
	type outcome struct {
		cpu int
		at  sim.Time
	}
	measure := func(raise func(e *sim.Engine, n *Node, fire func())) outcome {
		e := sim.NewEngine(1)
		n := newNode(e)
		n.IRQ.SetPolicy(Symmetric, 0)
		var out outcome
		fire := func() {
			n.IRQ.Raise("rx", func(h *Thread) { out = outcome{h.CPU.ID, h.Now()} })
		}
		raise(e, n, fire)
		e.Run()
		return out
	}
	fromEvent := measure(func(e *sim.Engine, n *Node, fire func()) {
		e.Schedule(10*sim.Microsecond, fire)
	})
	fromProcess := measure(func(e *sim.Engine, n *Node, fire func()) {
		e.GoAt(10*sim.Microsecond, "raiser", func(p *sim.Process) { fire() })
	})
	fromTasklet := measure(func(e *sim.Engine, n *Node, fire func()) {
		tk := e.NewTasklet("raiser", func(tk *sim.Tasklet) { fire() })
		e.Schedule(10*sim.Microsecond, func() { tk.Wake() })
	})
	if fromProcess != fromEvent || fromTasklet != fromEvent {
		t.Fatalf("Raise is tier-sensitive: event=%+v process=%+v tasklet=%+v",
			fromEvent, fromProcess, fromTasklet)
	}
	if fromEvent.at == 0 {
		t.Fatal("handler never ran")
	}
}
