package pushpull

import (
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// This file implements the classical three-phase protocol the paper's
// introduction positions Push-Pull against: "In three-phase protocol, the
// communication pattern guarantees buffers along the communication path
// are not overflowed ... The protocol, however, introduced a significant
// amount of overheads during the handshaking phase."
//
// The handshake is entirely on the critical path: the sender translates
// its source buffer, transmits a request-to-send carrying no data, and
// blocks until the receiver's clear-to-send arrives; only then does it
// transmit the message, from its own thread. None of Push-Pull's
// optimizations apply — the mode exists as the historical baseline the
// paper's short-message latency claims are measured against.
//
// The receive side is the ordinary Push-Pull receive path: the RTS is an
// announcement fragment with zero pushed bytes, and the CTS is the
// acknowledgement-cum-pull-request. Only the send side differs, which is
// exactly the protocols' real relationship — three-phase is Push-Zero
// with the sender synchronously parked on the handshake.

// sendInterThreePhase is the internode three-phase send: translate, RTS,
// park until CTS, transmit everything, return.
func (s *Stack) sendInterThreePhase(t *smp.Thread, ep *Endpoint, ch ChannelID, msgID uint64, addr vmAddr, data []byte, so SendOptions, laneSeq uint64) {
	cfg := s.Node.Cfg
	total := len(data)
	sess := s.outSession(ch)

	t.Exec(cfg.CallOverhead)
	t.Exec(cfg.SyscallEntry)
	t.Exec(cfg.QueueOp) // register the send operation
	s.event(trace.KindSend, "%v#%d send %dB three-phase", ch, msgID, total)

	op := &sendOp{ch: ch, msgID: msgID, tag: so.Tag, addr: addr, data: data}
	ep.sendOps[sendKey{ch, msgID}] = op

	if total == 0 {
		// Nothing to hand over: the announcement alone completes the
		// transfer, so there is no CTS to park on.
		rts := fragMsg{ch: ch, msgID: msgID, tag: so.Tag, laneSeq: laneSeq, total: 0, pushTotal: 0, preloaded: true}
		t.Exec(s.nicKernelTrigger())
		sess.send(laneEager, rts.wireBytes(), rts)
		s.finishSend(ep, op)
		t.Exec(cfg.SyscallExit)
		return
	}
	op.done = sim.NewCond(s.Node.Engine)

	// Classical protocol: find out physical addresses before transmitting
	// anything. The translation sits on the critical path.
	cost := ep.Space.TranslateCost(addr, total)
	t.Exec(cost)
	op.srcReadyAt = t.Now()
	op.srcZB = translateOrDie(ep.Space, addr, total)

	// Phase 1: request-to-send (a bare announcement, zero pushed bytes).
	rts := fragMsg{ch: ch, msgID: msgID, tag: so.Tag, laneSeq: laneSeq, total: total, pushTotal: 0, preloaded: true}
	t.Exec(s.nicKernelTrigger())
	sess.send(laneEager, rts.wireBytes(), rts)

	// Phase 2: park until the receiver's clear-to-send arrives — or the
	// peer is declared unreachable, which aborts the handshake.
	for op.grant == nil && op.err == nil {
		op.done.Wait(t.P)
		t.Exec(cfg.WakeLatency)
	}
	if op.err != nil {
		s.event(trace.KindError, "%v#%d three-phase send aborted: %v", ch, msgID, op.err)
		s.finishSend(ep, op)
		t.Exec(cfg.SyscallExit)
		return
	}

	// Phase 3: transmit the whole message from the send process's thread.
	s.event(trace.KindPullGrant, "%v#%d CTS received, transmitting %dB", ch, msgID, total)
	for off := 0; off < total; {
		n := total - off
		if n > MaxFragData {
			n = MaxFragData
		}
		frag := fragMsg{
			ch:        ch,
			msgID:     msgID,
			tag:       so.Tag,
			offset:    off,
			data:      data[off : off+n],
			total:     total,
			pushTotal: 0,
			pull:      true,
		}
		t.Exec(s.nicKernelTrigger())
		sess.send(lanePull, frag.wireBytes(), frag)
		off += n
	}
	s.finishSend(ep, op)
	t.Exec(cfg.SyscallExit)
}

// grantThreePhase delivers a CTS to the parked three-phase sender. It
// runs in reception-handler context at the send party.
func (s *Stack) grantThreePhase(op *sendOp, req pullReqMsg) {
	r := req
	op.grant = &r
	op.done.Broadcast()
}
