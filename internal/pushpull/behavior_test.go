package pushpull_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

func TestRecvErrorThenRetryWithBiggerBuffer(t *testing.T) {
	// A receive into a too-small buffer fails; the message stays queued
	// and a retry with an adequate buffer gets it intact.
	c := intranodeCluster(pushpull.DefaultOptions())
	sender, receiver := c.Endpoint(0, 0), c.Endpoint(0, 1)
	data := pattern(5000, 3)
	src := sender.Alloc(5000)
	small := receiver.Alloc(100)
	big := receiver.Alloc(5000)
	var firstErr error
	var got []byte
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := sender.Send(th, receiver.ID, src, data); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(0, 1, "r", func(th *smp.Thread) {
		_, firstErr = receiver.Recv(th, sender.ID, small, 100)
		b, err := receiver.Recv(th, sender.ID, big, 5000)
		if err != nil {
			t.Errorf("retry failed: %v", err)
			return
		}
		got = b
	})
	c.Run()
	if firstErr == nil {
		t.Error("undersized receive succeeded")
	}
	if !bytes.Equal(got, data) {
		t.Error("retry did not deliver the original message intact")
	}
}

func TestIntegrityUnderEveryInvocationPolicy(t *testing.T) {
	for _, pol := range []smp.Policy{smp.Symmetric, smp.Asymmetric, smp.Polling} {
		cfg := cluster.DefaultConfig()
		cfg.Policy = pol
		cfg.PolicyTarget = 1
		c := cluster.New(cfg)
		data := pattern(6000, byte(pol))
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Errorf("policy %v: transfer corrupted", pol)
		}
	}
}

func TestIntegrityWithoutZeroBuffer(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.DisableZeroBuffer = true
	opts.PushedBufBytes = 64 << 10
	c := intranodeCluster(opts)
	data := pattern(12000, 7)
	got, _ := runTransfer(t, c, 0, 0, 0, 1, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Error("double-copy path corrupted data")
	}
}

func TestIntegrityWithPullLocal(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.PullLocal = true
	c := intranodeCluster(opts)
	data := pattern(9000, 4)
	got, _ := runTransfer(t, c, 0, 0, 0, 1, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Error("pull-local path corrupted data")
	}
}

func TestMaskedRecvHandlerWaitsForTranslation(t *testing.T) {
	// With masking on, the receive registers before its destination
	// translation completes; a fragment arriving in that window must not
	// land before zbReadyAt. We approximate by checking latency is never
	// *below* the unmasked case for a send that races registration.
	latency := func(mask bool) sim.Time {
		opts := pushpull.DefaultOptions()
		opts.MaskTranslation = mask
		opts.UserTrigger = true
		c := internodeCluster(opts)
		data := pattern(760, 1)
		_, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		return done
	}
	if latency(true) <= 0 || latency(false) <= 0 {
		t.Fatal("transfers did not complete")
	}
}

func TestAllPairsIntranode(t *testing.T) {
	// Four processes on one node, full mesh of channels.
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.ProcsPerNode = 4
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 64 << 10
	cfg.Opts = opts
	c := cluster.New(cfg)
	const n = 2000
	var received int
	for i := 0; i < 4; i++ {
		i := i
		self := c.Endpoint(0, i)
		src := self.Alloc(n)
		dst := self.Alloc(n)
		c.Spawn(0, i, fmt.Sprintf("p%d", i), func(th *smp.Thread) {
			// deterministic order: send to all higher, receive from all
			// lower, then the reverse.
			for j := i + 1; j < 4; j++ {
				if err := self.Send(th, c.Endpoint(0, j).ID, src, pattern(n, byte(i*4+j))); err != nil {
					t.Error(err)
				}
			}
			for j := 0; j < i; j++ {
				got, err := self.Recv(th, c.Endpoint(0, j).ID, dst, n)
				if err != nil {
					t.Error(err)
					continue
				}
				if !bytes.Equal(got, pattern(n, byte(j*4+i))) {
					t.Errorf("p%d<-p%d corrupted", i, j)
				}
				received++
			}
			for j := 0; j < i; j++ {
				if err := self.Send(th, c.Endpoint(0, j).ID, src, pattern(n, byte(i*4+j))); err != nil {
					t.Error(err)
				}
			}
			for j := i + 1; j < 4; j++ {
				got, err := self.Recv(th, c.Endpoint(0, j).ID, dst, n)
				if err != nil {
					t.Error(err)
					continue
				}
				if !bytes.Equal(got, pattern(n, byte(j*4+i))) {
					t.Errorf("p%d<-p%d corrupted", i, j)
				}
				received++
			}
		})
	}
	c.Run()
	if received != 12 {
		t.Errorf("completed %d of 12 pairwise transfers", received)
	}
}

func TestTraceEmitsProtocolPhases(t *testing.T) {
	opts := pushpull.DefaultOptions()
	c := internodeCluster(opts)
	var log strings.Builder
	for _, st := range c.Stacks {
		st.Trace = func(format string, args ...any) {
			fmt.Fprintf(&log, format+"\n", args...)
		}
	}
	data := pattern(1400, 2)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	out := log.String()
	for _, phase := range []string{"send 1400B internode", "push frag", "pull request", "pull granted", "complete: 1400/1400"} {
		if !strings.Contains(out, phase) {
			t.Errorf("trace missing %q:\n%s", phase, out)
		}
	}
}

func TestEndpointCounters(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	a, b := c.Endpoint(0, 0), c.Endpoint(1, 0)
	data := pattern(100, 1)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if got == nil {
		t.Fatal("no transfer")
	}
	if a.Sent() != 1 || b.Received() != 1 {
		t.Errorf("counters: sent %d received %d, want 1/1", a.Sent(), b.Received())
	}
	if a.Stack() == nil || b.Stack() == nil {
		t.Error("Stack accessor broken")
	}
}

func TestDuplicatePullRequestIgnored(t *testing.T) {
	// Force a go-back-N retransmission of a pull request by dropping the
	// link ack... simpler: send the same transfer through a long-delay
	// receiver so the pull request retransmits at least once if ever
	// refused. A clean run must serve the pull exactly once — verified
	// indirectly by data integrity and zero retransmissions.
	opts := pushpull.DefaultOptions()
	c := internodeCluster(opts)
	data := pattern(8000, 8)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, sim.Duration(500*sim.Microsecond))
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	// Pull requests flow receiver->sender on the channel's control lane.
	if n := c.Stacks[1].LinkStats(0).Retransmissions; n != 0 {
		t.Errorf("pull request retransmitted %d times in a clean run", n)
	}
}

func TestSendToUnknownNodePanics(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	src := sender.Alloc(100)
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		defer func() {
			if recover() == nil {
				t.Error("send to unwired node did not panic")
			}
		}()
		_ = sender.Send(th, pushpull.ProcessID{Node: 9, Proc: 0}, src, pattern(100, 1))
	})
	func() {
		defer func() { recover() }() // the panic propagates out of Run too
		c.Run()
	}()
}
