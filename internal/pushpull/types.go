package pushpull

import (
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/sim"
	"pushpull/internal/vm"
)

// ProcessID names one communicating process: node number plus per-node
// process number.
type ProcessID struct {
	Node int
	Proc int
}

func (p ProcessID) String() string { return fmt.Sprintf("n%d.p%d", p.Node, p.Proc) }

// ChannelID is one directed sender→receiver pair. Messages on a channel
// are delivered in FIFO order.
type ChannelID struct {
	From, To ProcessID
}

func (c ChannelID) String() string { return fmt.Sprintf("%v->%v", c.From, c.To) }

// Wire geometry of the messaging layer.
const (
	// ProtoHeaderBytes is the per-fragment protocol header (channel,
	// message id, offset, lengths, go-back-N sequence).
	ProtoHeaderBytes = 16
	// MaxFragData is the most message data one Ethernet frame carries.
	MaxFragData = ether.MTU - ProtoHeaderBytes
	// PushedSlotBytes is the internode pushed-buffer slot size: the
	// kernel stores each arriving fragment in a fixed-size slot (no
	// compaction), so a 4 KB pushed buffer holds two fragments.
	PushedSlotBytes = 2048
)

// sendOp is a registered send operation, held in the endpoint's send
// queue until the message is fully transmitted (pulled or pushed).
type sendOp struct {
	ch    ChannelID
	msgID uint64
	addr  vm.VirtAddr
	data  []byte
	// pushed is how many leading bytes went in the push phase.
	pushed int
	// start is when the send operation was registered (adaptive-BTP
	// feedback measures pull-request round trips from it).
	start sim.Time
	// srcReadyAt is when source translation completes; pull-phase
	// transmission (which DMAs from the user buffer) cannot start
	// earlier.
	srcReadyAt sim.Time
	srcZB      vm.ZeroBuffer
	served     bool
	// done, when non-nil, marks a synchronous send (three-phase): the
	// sending thread parks on it until the handshake grant (internode)
	// or until the transfer is fully served (intranode).
	done *sim.Cond
	// grant is the received clear-to-send for a parked three-phase
	// sender.
	grant *pullReqMsg
}

// recvOp is a registered receive operation.
type recvOp struct {
	ch     ChannelID
	addr   vm.VirtAddr
	bufLen int
	// zbReadyAt is when destination translation completes; handler-side
	// direct copies must wait for it (relevant when translation is
	// registered first and masked).
	zbReadyAt sim.Time
	zb        vm.ZeroBuffer
	done      *sim.Cond
	msg       *inboundMsg
	err       error
}

// inboundMsg tracks one message arriving at an endpoint.
type inboundMsg struct {
	ch        ChannelID
	msgID     uint64
	total     int
	pushTotal int // bytes the sender pushes eagerly
	buf       []byte
	received  int
	op        *recvOp // bound receive op, nil while unmatched
	// buffered fragments parked in the pushed buffer awaiting the recv.
	buffered []fragMsg
	slots    int // internode ring slots held
	intraBuf int // intranode pushed-buffer bytes held
	// dropped records pushed ranges the receiver discarded for lack of
	// buffer space; the pull request asks for them again. Only messages
	// with a pull phase may drop — fully eager transfers fall back to
	// go-back-N retransmission instead.
	dropped  []byteRange
	pullSent bool
	complete bool
}

// byteRange is a half-open [Off, Off+N) range of message bytes.
type byteRange struct {
	Off, N int
}

// remaining reports bytes not yet accounted for by push or pull.
func (m *inboundMsg) pullRemainder() int { return m.total - m.pushTotal }

// fragMsg is a data-bearing protocol fragment (push or pull data).
type fragMsg struct {
	ch        ChannelID
	msgID     uint64
	offset    int
	data      []byte
	total     int
	pushTotal int
	// preloaded marks fragments PIO-copied into the NIC FIFO by the
	// user-level trigger path (no host DMA on transmit).
	preloaded bool
	// pull marks pull-phase fragments (vs pushed fragments).
	pull bool
}

func (f fragMsg) wireBytes() int { return ProtoHeaderBytes + len(f.data) }

// pullReqMsg is the receive side's acknowledgement-cum-pull-request. It
// names the unsent tail plus any pushed ranges the receiver had to
// discard for lack of pushed-buffer space.
type pullReqMsg struct {
	ch         ChannelID
	msgID      uint64
	fromOffset int
	redo       []byteRange
}

func (r pullReqMsg) wireBytes() int { return ProtoHeaderBytes + 4 + 8*len(r.redo) }

// linkAckMsg is a raw (non-go-back-N) cumulative link acknowledgement.
type linkAckMsg struct {
	ack uint32
}

func (linkAckMsg) wireBytes() int { return ProtoHeaderBytes }

// wireMsg is what rides in an ether.Frame payload: either a go-back-N
// data packet or a raw link ack.
type wireMsg struct {
	pkt   any  // gbn.Packet for the data plane
	isAck bool // linkAckMsg for the control plane
	ack   linkAckMsg
}

// vmAddr abbreviates the virtual-address type used throughout the
// protocol code.
type vmAddr = vm.VirtAddr

// simDuration abbreviates the virtual-duration type.
type simDuration = sim.Duration
