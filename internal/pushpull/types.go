package pushpull

import (
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/sim"
	"pushpull/internal/vm"
)

// ProcessID names one communicating process: node number plus per-node
// process number.
type ProcessID struct {
	Node int
	Proc int
}

func (p ProcessID) String() string {
	if p == AnySource {
		return "any"
	}
	return fmt.Sprintf("n%d.p%d", p.Node, p.Proc)
}

// AnySource is the receive-matching wildcard: a receive posted with it
// binds the next eligible message from any sender.
var AnySource = ProcessID{Node: -1, Proc: -1}

// AnyTag is the tag-matching wildcard: a receive posted with it binds a
// message of any *application* tag — tags below ReservedTag. Reserved
// tags never match a wildcard, so infrastructure traffic (collective
// rounds in package coll) cannot be swallowed by an AnyTag receive
// posted while a collective is in flight. A receive naming a reserved
// tag explicitly still matches it.
const AnyTag = -1

// ReservedTag is the base of the reserved tag space. Tags at or above it
// belong to infrastructure protocols layered on the stack (package coll
// runs each collective on its own reserved lane); application tags must
// stay below it, and AnyTag wildcards only consider the application
// range.
const ReservedTag = 1 << 30

// ChannelID is one directed sender→receiver pair. Messages of one tag on
// a channel are delivered in FIFO order; each channel is backed by its
// own go-back-N sessions, so loss or refusal on one channel never stalls
// another channel's stream.
type ChannelID struct {
	From, To ProcessID
}

func (c ChannelID) String() string { return fmt.Sprintf("%v->%v", c.From, c.To) }

// laneKey identifies one (channel, tag) matching lane. Receives bind a
// lane's messages strictly in the order they were sent, even when rail
// striping makes later messages' fragments arrive first.
type laneKey struct {
	ch  ChannelID
	tag int
}

// Wire geometry of the messaging layer.
const (
	// ProtoHeaderBytes is the per-fragment protocol header (channel,
	// message id, tag, offset, lengths, go-back-N sequence).
	ProtoHeaderBytes = 16
	// MaxFragData is the most message data one Ethernet frame carries.
	MaxFragData = ether.MTU - ProtoHeaderBytes
	// PushedSlotBytes is the internode pushed-buffer slot size: the
	// kernel stores each arriving fragment in a fixed-size slot (no
	// compaction), so a 4 KB pushed buffer holds two fragments.
	PushedSlotBytes = 2048
)

// SendOptions tunes one send operation beyond the stack's Options.
type SendOptions struct {
	// Tag labels the message for tagged receive matching; receives with
	// the same tag (or AnyTag) bind it.
	Tag int
	// BTP, when >= 0, overrides the internode PushPull Bytes-To-Push for
	// this one message (clamped to [0, len(data)]). Ignored by the other
	// modes, whose BTP is their defining constant.
	BTP int
}

// DefaultSendOptions is a tag-0 send at the protocol's configured BTP.
func DefaultSendOptions() SendOptions { return SendOptions{Tag: 0, BTP: -1} }

// RecvOptions tunes one receive operation.
type RecvOptions struct {
	// Tag is the tag to match, or AnyTag for any.
	Tag int
}

// Status reports what a completed receive actually bound: the source
// process and tag of the delivered message (informative when the receive
// was posted with AnySource or AnyTag). Valid distinguishes a real
// matched envelope from the zero Status of a failed or not-yet-completed
// operation — without it, a failure would be indistinguishable from a
// genuine rank-0/tag-0 match. A failed operation's Status carries its
// error in Err and leaves Valid false.
type Status struct {
	Source ProcessID
	Tag    int
	Valid  bool
	Err    error
}

// sendOp is a registered send operation, held in the endpoint's send
// queue until the message is fully transmitted (pulled or pushed).
type sendOp struct {
	ch    ChannelID
	msgID uint64
	tag   int
	addr  vm.VirtAddr
	data  []byte
	// pushed is how many leading bytes went in the push phase.
	pushed int
	// start is when the send operation was registered (adaptive-BTP
	// feedback measures pull-request round trips from it).
	start sim.Time
	// srcReadyAt is when source translation completes; pull-phase
	// transmission (which DMAs from the user buffer) cannot start
	// earlier.
	srcReadyAt sim.Time
	srcZB      vm.ZeroBuffer
	served     bool
	// done, when non-nil, marks a synchronous send (three-phase): the
	// sending thread parks on it until the handshake grant (internode)
	// or until the transfer is fully served (intranode).
	done *sim.Cond
	// grant is the received clear-to-send for a parked three-phase
	// sender.
	grant *pullReqMsg
	// err aborts a parked sender: set (with a broadcast on done) when
	// the peer is declared unreachable.
	err error
}

// recvOp is a registered receive operation. src and tag may be the
// wildcards; the bound channel is known only once a message matches.
type recvOp struct {
	src    ProcessID // AnySource matches any sender
	tag    int       // AnyTag matches any tag
	addr   vm.VirtAddr
	bufLen int
	// zbReadyAt is when destination translation completes; handler-side
	// direct copies must wait for it (relevant when translation is
	// registered first and masked).
	zbReadyAt sim.Time
	zb        vm.ZeroBuffer
	done      *sim.Cond
	msg       *inboundMsg
	err       error
}

// matches reports whether op's source/tag pattern covers message m. The
// AnyTag wildcard is restricted to application tags: reserved-tag
// traffic (collective rounds) only binds receives that name its exact
// tag, so a wildcard posted mid-collective can never swallow a round.
func (op *recvOp) matches(m *inboundMsg) bool {
	if op.src != AnySource && op.src != m.ch.From {
		return false
	}
	if op.tag == AnyTag {
		return m.tag < ReservedTag
	}
	return op.tag == m.tag
}

// inboundMsg tracks one message arriving at an endpoint.
type inboundMsg struct {
	ch    ChannelID
	msgID uint64
	tag   int
	// laneSeq is the message's sequence number within its (channel, tag)
	// lane; receives bind lanes in laneSeq order.
	laneSeq   uint64
	total     int
	pushTotal int // bytes the sender pushes eagerly
	buf       []byte
	received  int
	op        *recvOp // bound receive op, nil while unmatched
	// buffered fragments parked in the pushed buffer awaiting the recv.
	buffered []fragMsg
	slots    int // internode ring slots held
	intraBuf int // intranode pushed-buffer bytes held
	// dropped records pushed ranges the receiver discarded for lack of
	// buffer space; the pull request asks for them again. Only messages
	// with a pull phase may drop — fully eager transfers fall back to
	// go-back-N retransmission instead.
	dropped  []byteRange
	pullSent bool
	complete bool
}

func (m *inboundMsg) lane() laneKey { return laneKey{ch: m.ch, tag: m.tag} }

// byteRange is a half-open [Off, Off+N) range of message bytes.
type byteRange struct {
	Off, N int
}

// remaining reports bytes not yet accounted for by push or pull.
func (m *inboundMsg) pullRemainder() int { return m.total - m.pushTotal }

// fragMsg is a data-bearing protocol fragment (push or pull data).
type fragMsg struct {
	ch        ChannelID
	msgID     uint64
	tag       int
	laneSeq   uint64
	offset    int
	data      []byte
	total     int
	pushTotal int
	// preloaded marks fragments PIO-copied into the NIC FIFO by the
	// user-level trigger path (no host DMA on transmit).
	preloaded bool
	// pull marks pull-phase fragments (vs pushed fragments).
	pull bool
}

func (f fragMsg) wireBytes() int { return ProtoHeaderBytes + len(f.data) }

// pullReqMsg is the receive side's acknowledgement-cum-pull-request. It
// names the unsent tail plus any pushed ranges the receiver had to
// discard for lack of pushed-buffer space. It rides the channel's own
// control lane (receiver→sender), reliably.
type pullReqMsg struct {
	ch         ChannelID
	msgID      uint64
	fromOffset int
	redo       []byteRange
}

func (r pullReqMsg) wireBytes() int { return ProtoHeaderBytes + 4 + 8*len(r.redo) }

// linkAckMsg is a raw (non-go-back-N) cumulative link acknowledgement.
type linkAckMsg struct {
	ack uint32
}

func (linkAckMsg) wireBytes() int { return ProtoHeaderBytes }

// lane names one of a channel's three independent go-back-N streams.
// Splitting them is what makes refusal harmless outside its own lane: a
// refused eager fragment (which only happens when no receive is posted)
// can never sit in front of pull-phase data the receiver explicitly
// asked for, or in front of the control traffic that grants pulls.
type lane uint8

const (
	// laneEager carries sender→receiver pushed fragments — the
	// optimistic traffic a full pushed buffer may refuse.
	laneEager lane = iota
	// lanePull carries sender→receiver pull-phase fragments, which by
	// definition have a posted receive and are never refused.
	lanePull
	// laneCtrl carries receiver→sender pull requests.
	laneCtrl
	numLanes
)

func (l lane) String() string {
	switch l {
	case laneEager:
		return "eager"
	case lanePull:
		return "pull"
	case laneCtrl:
		return "ctrl"
	default:
		return fmt.Sprintf("lane(%d)", uint8(l))
	}
}

// toSender reports whether the lane flows receiver→sender.
func (l lane) toSender() bool { return l == laneCtrl }

// wireMsg is what rides in an ether.Frame payload: a go-back-N packet or
// a raw link ack, addressed to one channel's lane so the receiving stack
// can route it to that channel's session.
type wireMsg struct {
	ch    ChannelID
	lane  lane
	pkt   any  // gbn.Packet for the data plane
	isAck bool // linkAckMsg for the control plane
	ack   linkAckMsg
}

// vmAddr abbreviates the virtual-address type used throughout the
// protocol code.
type vmAddr = vm.VirtAddr

// simDuration abbreviates the virtual-duration type.
type simDuration = sim.Duration
