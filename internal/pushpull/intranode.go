package pushpull

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// sendIntra is the intranode send path (paper §5.1). The sender's kernel
// context can read the source buffer through the user mappings and write
// either the kernel pushed buffer or — via the receiver's registered zero
// buffer — the destination user buffer directly, so the push phase needs
// no address translation. Only the pull kernel thread, which runs in a
// foreign context, must translate the source.
func (s *Stack) sendIntra(t *smp.Thread, ep *Endpoint, ch ChannelID, msgID uint64, addr vmAddr, data []byte, so SendOptions, laneSeq uint64) {
	cfg := s.Node.Cfg
	total := len(data)
	btp := s.Opts.intraBTP(total)

	t.Exec(cfg.CallOverhead)
	t.Exec(cfg.SyscallEntry)
	t.Exec(cfg.QueueOp) // register the send operation
	s.event(trace.KindSend, "%v#%d send %dB intranode, push %dB", ch, msgID, total, btp)

	op := &sendOp{ch: ch, msgID: msgID, tag: so.Tag, addr: addr, data: data, pushed: btp}
	op.srcReadyAt = t.Now() // intranode: pull thread translates on its own
	if s.Opts.Mode == ThreePhase && btp < total {
		// Three-phase is synchronous: the sender parks until the pull
		// kernel thread has fully served the transfer. A fully pushed
		// (zero-length) message has nothing to pull and never parks.
		op.done = sim.NewCond(s.Node.Engine)
	}
	ep.sendOps[sendKey{ch, msgID}] = op

	peer := s.eps[ch.To.Proc]
	if peer == nil {
		panic(fmt.Sprintf("pushpull: intranode send to missing endpoint %v", ch.To))
	}

	m := &inboundMsg{
		ch:        ch,
		msgID:     msgID,
		tag:       so.Tag,
		laneSeq:   laneSeq,
		total:     total,
		pushTotal: btp,
		buf:       make([]byte, total),
	}

	if rop := peer.intraDirectRecv(m); rop != nil && !s.Opts.DisableZeroBuffer {
		// Receive already registered (destination zero buffer known):
		// push straight into the destination buffer — one copy.
		peer.bind(rop, m)
		peer.inbound = append(peer.inbound, m)
		peer.settle(rop, m) // the lane advanced: later parked messages may now match
		if btp > 0 {
			t.Copy(btp, false)
			copy(m.buf[:btp], data[:btp])
			m.received += btp
			s.event(trace.KindDirect, "%v#%d pushed %dB direct to destination", ch, msgID, btp)
		}
		if m.pullRemainder() > 0 {
			// The send party starts the pull phase itself: the receive
			// information is already registered (arrow 3b of Figure 1).
			peer.maybeStartPull(t, m, false)
		} else {
			s.finishSend(ep, op)
			peer.complete(t, m)
		}
	} else {
		// Receive not yet posted: stage the pushed bytes in the pushed
		// buffer (arrow 2b.1). The sender blocks while the buffer is
		// full — intranode pushes never overflow, they throttle.
		peer.addInbound(m)
		if btp > 0 {
			peer.ring.reserveBytes(t.P, btp)
			m.intraBuf = btp
			t.Copy(btp, false)
			frag := fragMsg{ch: ch, msgID: msgID, offset: 0, data: data[:btp], total: total, pushTotal: btp}
			m.buffered = append(m.buffered, frag)
			s.event(trace.KindPark, "%v#%d pushed %dB to pushed buffer (%dB held)", ch, msgID, btp, peer.ring.bytesUsed())
		}
		if btp == total {
			s.finishSend(ep, op)
		}
		if m.op != nil {
			// A receive registered while we were copying: wake it to
			// drain the staged bytes and start the pull.
			m.op.done.Broadcast()
		}
	}

	for op.done != nil && !op.served {
		op.done.Wait(t.P)
		t.Exec(cfg.WakeLatency)
	}
	t.Exec(cfg.SyscallExit)
}

// dispatchIntraPull hands the pull phase to a kernel thread on the least
// loaded processor (the §4.1 parallelism claim: the pull overlaps with
// whatever the application CPUs are doing). Options.PullLocal instead
// pins the pull onto the receiving process's own CPU — the ablation the
// paper argues against.
func (s *Stack) dispatchIntraPull(m *inboundMsg) {
	cpu := s.Node.LeastLoadedCPU()
	if s.Opts.PullLocal {
		cpu = s.Node.CPUs[s.eps[m.ch.To.Proc].CPU]
	}
	s.event(trace.KindPullDispatch, "%v#%d pull dispatched to cpu%d", m.ch, m.msgID, cpu.ID)
	s.Node.SpawnKernel(fmt.Sprintf("pull/%v", m.ch), cpu, func(t *smp.Thread) {
		s.intraPull(t, m)
	})
}

// intraPull runs in the pull kernel thread: translate the unsent part of
// the source buffer (foreign address space), move it straight into the
// destination with one copy, and complete the receive.
func (s *Stack) intraPull(t *smp.Thread, m *inboundMsg) {
	cfg := s.Node.Cfg
	src := s.eps[m.ch.From.Proc]
	key := sendKey{m.ch, m.msgID}
	op := src.sendOps[key]
	if op == nil {
		panic(fmt.Sprintf("pushpull: pull with no send op for %v#%d", m.ch, m.msgID))
	}
	rem := m.total - op.pushed
	t.Exec(cfg.QueueOp)
	// The pull thread walks the sender's page tables for the remainder.
	t.Exec(src.Space.TranslateCost(op.addr+vmAddr(op.pushed), rem))
	op.srcZB = translateOrDie(src.Space, op.addr, m.total)
	// One copy, source user buffer to destination user buffer, through
	// the kernel direct map. Without the zero buffer (§4.2 ablation) the
	// data is staged through a shared kernel segment and copied twice.
	t.Copy(rem, false)
	if s.Opts.DisableZeroBuffer {
		t.Copy(rem, false)
	}
	copy(m.buf[op.pushed:], op.data[op.pushed:])
	m.received += rem
	s.finishSend(src, op)
	dst := s.eps[m.ch.To.Proc]
	t.Exec(cfg.QueueOp)
	dst.complete(t, m)
}

// finishSend retires a fully transmitted send operation, waking a
// synchronously parked (three-phase) sender if there is one.
func (s *Stack) finishSend(ep *Endpoint, op *sendOp) {
	op.served = true
	delete(ep.sendOps, sendKey{op.ch, op.msgID})
	if op.done != nil {
		op.done.Broadcast()
	}
}
