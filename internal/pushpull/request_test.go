package pushpull_test

import (
	"bytes"
	"testing"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

func TestIsendIrecvRoundTrip(t *testing.T) {
	for _, intra := range []bool{false, true} {
		var c *cluster.Cluster
		rNode, rProc := 1, 0
		if intra {
			c = intranodeCluster(pushpull.DefaultOptions())
			rNode, rProc = 0, 1
		} else {
			c = internodeCluster(pushpull.DefaultOptions())
		}
		sender := c.Endpoint(0, 0)
		receiver := c.Endpoint(rNode, rProc)
		data := pattern(5000, 4)
		src := sender.Alloc(len(data))
		dst := receiver.Alloc(len(data))
		var got []byte
		c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
			req := sender.Isend(th, receiver.ID, src, data)
			if _, err := req.Wait(th); err != nil {
				t.Errorf("isend: %v", err)
			}
		})
		c.Nodes[rNode].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
			req := receiver.Irecv(th, sender.ID, dst, len(data))
			b, err := req.Wait(th)
			if err != nil {
				t.Errorf("irecv: %v", err)
				return
			}
			got = b
		})
		c.Run()
		if !bytes.Equal(got, data) {
			t.Errorf("intra=%v: received bytes differ", intra)
		}
	}
}

// Isend must return to the caller without waiting for the transfer: the
// caller overlaps computation with communication, finishing its compute
// while the message is still in flight.
func TestIsendOverlapsComputation(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	data := pattern(8192, 6)
	src := sender.Alloc(len(data))
	dst := receiver.Alloc(len(data))

	var postedAt, computedAt, waitedAt sim.Time
	c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
		req := sender.Isend(th, receiver.ID, src, data)
		postedAt = th.Now()
		th.Compute(1000) // 5 µs of application work
		computedAt = th.Now()
		if _, err := req.Wait(th); err != nil {
			t.Errorf("isend: %v", err)
		}
		waitedAt = th.Now()
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
		if _, err := receiver.Recv(th, sender.ID, dst, len(data)); err != nil {
			t.Errorf("recv: %v", err)
		}
	})
	c.Run()

	if postedAt > sim.Time(10*sim.Microsecond) {
		t.Errorf("Isend blocked the caller until %v", postedAt)
	}
	if computedAt.Sub(postedAt) < sim.Duration(1000)*5 {
		t.Errorf("compute finished too fast: %v", computedAt.Sub(postedAt))
	}
	if waitedAt < computedAt {
		t.Error("Wait returned before the compute that preceded it")
	}
}

func TestTestPollsWithoutBlocking(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	data := pattern(1400, 8)
	src := sender.Alloc(len(data))
	dst := receiver.Alloc(len(data))

	sawIncomplete := false
	var got []byte
	c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
		if err := sender.Send(th, receiver.ID, src, data); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
		req := receiver.Irecv(th, sender.ID, dst, len(data))
		for {
			ok, b, err := req.Test()
			if err != nil {
				t.Errorf("test: %v", err)
				return
			}
			if ok {
				got = b
				return
			}
			sawIncomplete = true
			th.Exec(500 * sim.Nanosecond) // poll loop
		}
	})
	c.Run()
	if !bytes.Equal(got, data) {
		t.Error("received bytes differ")
	}
	if !sawIncomplete {
		t.Error("Test never reported an incomplete request; polling was not exercised")
	}
}

// Two Irecvs posted back to back bind the channel's messages in posting
// order even though they complete through helper threads.
func TestIrecvPostingOrderIsFIFO(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	first := pattern(2000, 1)
	second := pattern(2000, 2)
	src1 := sender.Alloc(len(first))
	src2 := sender.Alloc(len(second))
	dst1 := receiver.Alloc(len(first))
	dst2 := receiver.Alloc(len(second))

	var got1, got2 []byte
	c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
		if err := sender.Send(th, receiver.ID, src1, first); err != nil {
			t.Errorf("send 1: %v", err)
		}
		if err := sender.Send(th, receiver.ID, src2, second); err != nil {
			t.Errorf("send 2: %v", err)
		}
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
		r1 := receiver.Irecv(th, sender.ID, dst1, len(first))
		r2 := receiver.Irecv(th, sender.ID, dst2, len(second))
		var err error
		if got1, err = r1.Wait(th); err != nil {
			t.Errorf("wait 1: %v", err)
		}
		if got2, err = r2.Wait(th); err != nil {
			t.Errorf("wait 2: %v", err)
		}
	})
	c.Run()
	if !bytes.Equal(got1, first) {
		t.Error("first Irecv did not get the first message")
	}
	if !bytes.Equal(got2, second) {
		t.Error("second Irecv did not get the second message")
	}
}

func TestWaitAllCollectsFirstError(t *testing.T) {
	c := internodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	big := pattern(4000, 3)
	src := sender.Alloc(len(big))
	small := receiver.Alloc(100) // too small: the receive must fail

	var err error
	c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
		req := sender.Isend(th, receiver.ID, src, big)
		if _, e := req.Wait(th); e != nil {
			t.Errorf("isend: %v", e)
		}
	})
	c.Nodes[1].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
		req := receiver.Irecv(th, sender.ID, small, 100)
		err = pushpull.WaitAll(th, req)
	})
	c.Run()
	if err == nil {
		t.Error("WaitAll returned nil for an oversized message")
	}
}

// Waiting on an already-completed request returns immediately with the
// same outcome, any number of times.
func TestWaitIdempotent(t *testing.T) {
	c := intranodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(0, 1)
	data := pattern(64, 9)
	src := sender.Alloc(len(data))
	dst := receiver.Alloc(len(data))
	c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
		if err := sender.Send(th, receiver.ID, src, data); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	c.Nodes[0].Spawn("receiver", receiver.CPU, func(th *smp.Thread) {
		req := receiver.Irecv(th, sender.ID, dst, len(data))
		b1, err1 := req.Wait(th)
		b2, err2 := req.Wait(th)
		if err1 != nil || err2 != nil {
			t.Errorf("waits errored: %v %v", err1, err2)
		}
		if !bytes.Equal(b1, data) || !bytes.Equal(b2, data) {
			t.Error("repeated Wait returned different data")
		}
	})
	c.Run()
}
