package pushpull_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"pushpull/internal/cluster"
	"pushpull/internal/gbn"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// lossyCluster is the two-node testbed with a damaged cable.
func lossyCluster(opts pushpull.Options, lossRate float64, seed uint64) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	cfg.Net.LossRate = lossRate
	cfg.Seed = seed
	return cluster.New(cfg)
}

// A short retransmission timeout keeps lossy tests fast without changing
// what is being tested (recovery, not the paper's 150 ms constant).
func fastRTOOptions(mode pushpull.Mode) pushpull.Options {
	opts := pushpull.DefaultOptions()
	opts.Mode = mode
	opts.GBN = gbn.Config{Window: 8, RTO: 2 * sim.Millisecond}
	return opts
}

func TestLossyLinkIntegrityAllModes(t *testing.T) {
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		for _, loss := range []float64{0.01, 0.05} {
			c := lossyCluster(fastRTOOptions(mode), loss, 7)
			data := pattern(20000, byte(mode))
			got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
			if !bytes.Equal(got, data) {
				t.Errorf("mode %v loss %v: received bytes differ", mode, loss)
			}
		}
	}
}

func TestLossRecoveryCostsRetransmissions(t *testing.T) {
	run := func(loss float64) (sim.Time, uint64) {
		c := lossyCluster(fastRTOOptions(pushpull.PushPull), loss, 3)
		data := pattern(30000, 5)
		got, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Fatal("integrity lost")
		}
		return done, c.Stacks[0].LinkStats(1).Retransmissions
	}
	cleanT, cleanR := run(0)
	lossyT, lossyR := run(0.05)
	if cleanR != 0 {
		t.Errorf("lossless run retransmitted %d packets", cleanR)
	}
	if lossyR == 0 {
		t.Error("5% loss run retransmitted nothing")
	}
	if lossyT <= cleanT {
		t.Errorf("lossy transfer (%v) not slower than clean (%v)", lossyT, cleanT)
	}
}

func TestHubClusterDeliversAllModes(t *testing.T) {
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushAll} {
		cfg := cluster.DefaultConfig()
		cfg.Opts = fastRTOOptions(mode)
		cfg.UseHub = true
		c := cluster.New(cfg)
		data := pattern(9000, 1)
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Errorf("mode %v over hub: received bytes differ", mode)
		}
	}
}

// A hub's shared medium makes the ping-pong slower than a full-duplex
// back-to-back link: data and acknowledgement traffic collide.
func TestHubSlowerThanBackToBack(t *testing.T) {
	run := func(useHub bool) sim.Time {
		cfg := cluster.DefaultConfig()
		cfg.UseHub = useHub
		c := cluster.New(cfg)
		data := pattern(8192, 2)
		got, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Fatal("integrity lost")
		}
		return done
	}
	hub := run(true)
	b2b := run(false)
	if hub <= b2b {
		t.Errorf("hub transfer (%v) not slower than back-to-back (%v)", hub, b2b)
	}
}

func TestHubFourNodeAllPairs(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.UseHub = true
	cfg.Opts = fastRTOOptions(pushpull.PushPull)
	c := cluster.New(cfg)
	// Every node sends one message to its right neighbour concurrently;
	// the single shared wire must still deliver everything intact.
	type result struct {
		got  []byte
		want []byte
	}
	results := make([]result, 4)
	for i := 0; i < 4; i++ {
		i := i
		j := (i + 1) % 4
		sender := c.Endpoint(i, 0)
		receiver := c.Endpoint(j, 0)
		data := pattern(4000, byte(i+1))
		src := sender.Alloc(len(data))
		dst := receiver.Alloc(len(data))
		results[i].want = data
		c.Spawn(i, 0, "sender", func(th *smp.Thread) {
			if err := sender.Send(th, receiver.ID, src, data); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
		c.Spawn(j, 1, "receiver", func(th *smp.Thread) {
			b, err := receiver.Recv(th, sender.ID, dst, len(data))
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			results[i].got = b
		})
	}
	c.Run()
	for i, r := range results {
		if !bytes.Equal(r.got, r.want) {
			t.Errorf("pair %d->%d: bytes differ", i, (i+1)%4)
		}
	}
	if c.Hub.Collisions() == 0 {
		t.Error("four nodes on one wire produced no collisions")
	}
}

// Property: any loss rate up to 20%, any seed, any size — the transfer
// still completes with intact data (go-back-N invariant end to end).
func TestLossyIntegrityProperty(t *testing.T) {
	f := func(sz uint16, lossPct uint8, seed uint64) bool {
		n := int(sz)%12000 + 1
		loss := float64(lossPct%21) / 100
		c := lossyCluster(fastRTOOptions(pushpull.PushPull), loss, seed)
		data := pattern(n, byte(seed))
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
