package pushpull

import (
	"errors"
	"fmt"
)

// ErrPeerUnreachable is the sentinel every unreachable-peer failure
// wraps: a go-back-N sender exhausted its retransmission budget
// (Options.GBN.MaxRetries consecutive timeouts with no acknowledgement
// progress), so the stack declared the peer dead and failed every
// operation bound to it. Classify with errors.Is(err,
// ErrPeerUnreachable); the concrete *PeerUnreachableError carries the
// node pair.
var ErrPeerUnreachable = errors.New("peer unreachable: retransmission budget exhausted")

// PeerUnreachableError reports which peer a node declared dead. It
// matches ErrPeerUnreachable under errors.Is.
type PeerUnreachableError struct {
	Node int // the node that exhausted its budget
	Peer int // the peer it could not reach
}

func (e *PeerUnreachableError) Error() string {
	return fmt.Sprintf("pushpull: node %d: peer node %d unreachable: retransmission budget exhausted", e.Node, e.Peer)
}

// Is makes errors.Is(err, ErrPeerUnreachable) true for this error.
func (e *PeerUnreachableError) Is(target error) bool { return target == ErrPeerUnreachable }
