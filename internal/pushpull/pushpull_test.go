package pushpull_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// pattern builds a recognizable payload.
func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*31)
	}
	return b
}

// intranodeCluster builds a single-node cluster with two endpoints.
func intranodeCluster(opts pushpull.Options) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 1
	cfg.ProcsPerNode = 2
	cfg.Opts = opts
	return cluster.New(cfg)
}

// internodeCluster builds the paper's two-node testbed.
func internodeCluster(opts pushpull.Options) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	return cluster.New(cfg)
}

// runTransfer sends data from (sNode,sProc) to (rNode,rProc), optionally
// delaying either side, and returns what was received plus the virtual
// time the receive completed.
func runTransfer(t *testing.T, c *cluster.Cluster, sNode, sProc, rNode, rProc int,
	data []byte, sendDelay, recvDelay sim.Duration) ([]byte, sim.Time) {
	t.Helper()
	sender := c.Endpoint(sNode, sProc)
	receiver := c.Endpoint(rNode, rProc)
	src := sender.Alloc(max(len(data), 1)) // vm.Alloc wants a positive size even for empty payloads
	dst := receiver.Alloc(max(len(data), 1))
	var got []byte
	var done sim.Time
	c.Nodes[sNode].SpawnAt(sendDelay, "sender", sender.CPU, func(th *smp.Thread) {
		if err := sender.Send(th, receiver.ID, src, data); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	c.Nodes[rNode].SpawnAt(recvDelay, "receiver", receiver.CPU, func(th *smp.Thread) {
		b, err := receiver.Recv(th, sender.ID, dst, len(data))
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = b
		done = th.Now()
	})
	c.Run()
	return got, done
}

func allModes() []pushpull.Mode {
	return []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll}
}

func TestIntranodeIntegrityAllModesAndSizes(t *testing.T) {
	for _, mode := range allModes() {
		for _, n := range []int{1, 10, 16, 17, 100, 1000, 4096, 8192, 40000} {
			opts := pushpull.DefaultOptions()
			opts.Mode = mode
			opts.PushedBufBytes = 48 << 10
			c := intranodeCluster(opts)
			data := pattern(n, byte(n))
			got, _ := runTransfer(t, c, 0, 0, 0, 1, data, 0, 0)
			if !bytes.Equal(got, data) {
				t.Errorf("%v intranode %dB: corrupted (got %d bytes)", mode, n, len(got))
			}
		}
	}
}

func TestInternodeIntegrityAllModesAndSizes(t *testing.T) {
	for _, mode := range allModes() {
		for _, n := range []int{1, 4, 80, 760, 761, 1400, 1484, 1485, 8192, 20000} {
			opts := pushpull.DefaultOptions()
			opts.Mode = mode
			opts.PushedBufBytes = 64 << 10
			c := internodeCluster(opts)
			data := pattern(n, byte(n))
			got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
			if !bytes.Equal(got, data) {
				t.Errorf("%v internode %dB: corrupted (got %d bytes)", mode, n, len(got))
			}
		}
	}
}

func TestInternodeLateReceiverIntegrity(t *testing.T) {
	// Receiver posts 1 ms late: pushed fragments must park in the pushed
	// buffer and drain on registration.
	for _, mode := range allModes() {
		opts := pushpull.DefaultOptions()
		opts.Mode = mode
		c := internodeCluster(opts)
		data := pattern(1400, 7)
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, sim.Duration(sim.Millisecond))
		if !bytes.Equal(got, data) {
			t.Errorf("%v late receiver: corrupted", mode)
		}
	}
}

func TestInternodeEarlyReceiverIntegrity(t *testing.T) {
	for _, mode := range allModes() {
		opts := pushpull.DefaultOptions()
		opts.Mode = mode
		c := internodeCluster(opts)
		data := pattern(8192, 9)
		opts.PushedBufBytes = 64 << 10
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, sim.Duration(sim.Millisecond), 0)
		if !bytes.Equal(got, data) {
			t.Errorf("%v early receiver: corrupted", mode)
		}
	}
}

func TestPushAllLateReceiverOverflowRecovers(t *testing.T) {
	// The Fig. 6 collapse: Push-All, 4 KB pushed buffer (2 slots), 3072 B
	// message (3 fragments). The third fragment is refused, go-back-N
	// times out, and the transfer completes only after the RTO.
	opts := pushpull.DefaultOptions()
	opts.Mode = pushpull.PushAll
	opts.PushedBufBytes = 4096
	c := internodeCluster(opts)
	data := pattern(3072, 3)
	got, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, sim.Duration(sim.Millisecond))
	if !bytes.Equal(got, data) {
		t.Fatal("overflowed transfer corrupted")
	}
	if done < sim.Time(opts.GBN.RTO) {
		t.Errorf("completed at %v, expected to need at least one RTO (%v)", done, opts.GBN.RTO)
	}
	if c.Stacks[0].LinkStats(1).Retransmissions == 0 {
		t.Error("no retransmissions despite pushed-buffer overflow")
	}
	if c.Stacks[1].LinkStats(0).Rejected == 0 {
		t.Error("receiver never rejected a fragment")
	}
}

func TestPushPullLateReceiverNoOverflow(t *testing.T) {
	// Push-Pull with BTP=760 pushes at most one fragment per message:
	// a 4 KB pushed buffer is never overwhelmed, so no retransmissions.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 4096
	c := internodeCluster(opts)
	data := pattern(8192, 5)
	got, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, sim.Duration(sim.Millisecond))
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	if done >= sim.Time(opts.GBN.RTO) {
		t.Errorf("push-pull late receiver took %v, should not need the RTO", done)
	}
	if n := c.Stacks[0].LinkStats(1).Retransmissions; n != 0 {
		t.Errorf("push-pull retransmitted %d times", n)
	}
}

func TestChannelFIFOOrdering(t *testing.T) {
	// Several messages on one channel arrive in send order regardless of
	// size mix.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 64 << 10
	c := internodeCluster(opts)
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	sizes := []int{4, 3000, 40, 1484, 9000, 8}
	var bufs [][]byte
	srcs := make([]vm.VirtAddr, len(sizes))
	for i, n := range sizes {
		bufs = append(bufs, pattern(n, byte(i+1)))
		srcs[i] = sender.Alloc(n)
	}
	var got [][]byte
	c.Spawn(0, 0, "sender", func(th *smp.Thread) {
		for i := range sizes {
			if err := sender.Send(th, receiver.ID, srcs[i], bufs[i]); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	c.Spawn(1, 0, "receiver", func(th *smp.Thread) {
		for i := range sizes {
			dst := receiver.Alloc(sizes[i])
			b, err := receiver.Recv(th, sender.ID, dst, sizes[i])
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, b)
		}
	})
	c.Run()
	if len(got) != len(sizes) {
		t.Fatalf("received %d of %d messages", len(got), len(sizes))
	}
	for i := range sizes {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Errorf("message %d out of order or corrupted", i)
		}
	}
}

func TestIntranodeBidirectionalPingPong(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 12 << 10
	c := intranodeCluster(opts)
	a, b := c.Endpoint(0, 0), c.Endpoint(0, 1)
	const iters = 50
	const n = 1000
	msg := pattern(n, 1)
	aSrc, aDst := a.Alloc(n), a.Alloc(n)
	bSrc, bDst := b.Alloc(n), b.Alloc(n)
	fail := func(err error) {
		if err != nil {
			t.Error(err)
		}
	}
	c.Spawn(0, a.CPU, "ping", func(th *smp.Thread) {
		for i := 0; i < iters; i++ {
			fail(a.Send(th, b.ID, aSrc, msg))
			got, err := a.Recv(th, b.ID, aDst, n)
			fail(err)
			if !bytes.Equal(got, msg) {
				t.Error("pong corrupted")
			}
		}
	})
	c.Spawn(0, b.CPU, "pong", func(th *smp.Thread) {
		for i := 0; i < iters; i++ {
			got, err := b.Recv(th, a.ID, bDst, n)
			fail(err)
			if !bytes.Equal(got, msg) {
				t.Error("ping corrupted")
			}
			fail(b.Send(th, a.ID, bSrc, msg))
		}
	})
	end := c.Run()
	if a.Received() != iters || b.Received() != iters {
		t.Fatalf("completed %d/%d iterations", a.Received(), b.Received())
	}
	if end <= 0 {
		t.Error("simulation consumed no virtual time")
	}
}

func TestRecvBufferTooSmall(t *testing.T) {
	opts := pushpull.DefaultOptions()
	c := intranodeCluster(opts)
	sender, receiver := c.Endpoint(0, 0), c.Endpoint(0, 1)
	data := pattern(2000, 1)
	src := sender.Alloc(2000)
	dst := receiver.Alloc(100)
	var gotErr error
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		_ = sender.Send(th, receiver.ID, src, data)
	})
	c.Spawn(0, 1, "r", func(th *smp.Thread) {
		_, gotErr = receiver.Recv(th, sender.ID, dst, 100)
	})
	c.Run()
	if gotErr == nil {
		t.Error("receive into too-small buffer succeeded")
	}
}

func TestSendUnmappedSourceFails(t *testing.T) {
	c := intranodeCluster(pushpull.DefaultOptions())
	sender := c.Endpoint(0, 0)
	var err error
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		err = sender.Send(th, c.Endpoint(0, 1).ID, 0xdead000, pattern(100, 1))
	})
	c.Run()
	if err == nil {
		t.Error("send from unmapped buffer succeeded")
	}
}

func TestZeroLengthMessageDelivers(t *testing.T) {
	// A zero-length message transfers no data but carries its envelope:
	// the matching receive completes with zero bytes, on both routes and
	// in every mode (three-phase must not park on a CTS that never
	// comes).
	for _, mode := range []pushpull.Mode{pushpull.PushPull, pushpull.PushZero, pushpull.PushAll, pushpull.ThreePhase} {
		for _, inter := range []bool{false, true} {
			opts := pushpull.DefaultOptions()
			opts.Mode = mode
			var c *cluster.Cluster
			rNode, rProc := 0, 1
			if inter {
				c = internodeCluster(opts)
				rNode, rProc = 1, 0
			} else {
				c = intranodeCluster(opts)
			}
			got, done := runTransfer(t, c, 0, 0, rNode, rProc, nil, 0, 0)
			if len(got) != 0 {
				t.Errorf("%v inter=%v: zero-length receive returned %d bytes", mode, inter, len(got))
			}
			if done == 0 {
				t.Errorf("%v inter=%v: zero-length receive never completed", mode, inter)
			}
			if s, r := c.Endpoint(0, 0).Sent(), c.Endpoint(rNode, rProc).Received(); s != 1 || r != 1 {
				t.Errorf("%v inter=%v: sent=%d received=%d, want 1/1", mode, inter, s, r)
			}
		}
	}
}

// TestIntegrityProperty fuzzes size, mode and timing skew on both routes.
func TestIntegrityProperty(t *testing.T) {
	property := func(sz uint16, modeRaw, skewRaw uint8, internode bool) bool {
		n := int(sz)%16384 + 1
		mode := allModes()[int(modeRaw)%3]
		skew := sim.Duration(skewRaw) * 20 * sim.Microsecond
		opts := pushpull.DefaultOptions()
		opts.Mode = mode
		opts.PushedBufBytes = 64 << 10
		var c *cluster.Cluster
		var sNode, rNode, rProc int
		if internode {
			c = internodeCluster(opts)
			sNode, rNode, rProc = 0, 1, 0
		} else {
			c = intranodeCluster(opts)
			sNode, rNode, rProc = 0, 0, 1
		}
		data := pattern(n, byte(sz))
		var sendDelay, recvDelay sim.Duration
		if skewRaw%2 == 0 {
			recvDelay = skew
		} else {
			sendDelay = skew
		}
		got, _ := runTransfer(t, c, sNode, 0, rNode, rProc, data, sendDelay, recvDelay)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := pushpull.DefaultOptions()
	bad.MaskTranslation = true
	bad.UserTrigger = false
	if bad.Validate() == nil {
		t.Error("masking without user trigger validated")
	}
	bad = pushpull.DefaultOptions()
	bad.PushedBufBytes = 0
	if bad.Validate() == nil {
		t.Error("zero pushed buffer validated")
	}
	bad = pushpull.DefaultOptions()
	bad.BTP = -1
	if bad.Validate() == nil {
		t.Error("negative BTP validated")
	}
	if err := pushpull.DefaultOptions().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestPushPullDropsRefetchedByPull(t *testing.T) {
	// Two senders overflow one receiver's 2-slot pushed buffer with
	// pushed fragments while it is busy. With a pull phase pending, the
	// overflowed push must be discarded and re-fetched by the pull
	// request — no go-back-N timeout, no loss of data.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 4096 // 2 slots
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 3
	cfg.Opts = opts
	c := cluster.New(cfg)
	r := c.Endpoint(0, 0)
	s1, s2 := c.Endpoint(1, 0), c.Endpoint(2, 0)
	const n = 6000
	d1a, d1b := pattern(n, 1), pattern(n, 2)
	d2a, d2b := pattern(n, 3), pattern(n, 4)
	send := func(node int, ep *pushpull.Endpoint, msgs ...[]byte) {
		addr := ep.Alloc(n)
		c.Spawn(node, 0, "s", func(th *smp.Thread) {
			for _, m := range msgs {
				if err := ep.Send(th, r.ID, addr, m); err != nil {
					t.Error(err)
				}
			}
		})
	}
	send(1, s1, d1a, d1b)
	send(2, s2, d2a, d2b)
	var got [][]byte
	var doneAt sim.Time
	c.Nodes[0].SpawnAt(sim.Duration(2*sim.Millisecond), "r", 0, func(th *smp.Thread) {
		dst := r.Alloc(n)
		for _, from := range []pushpull.ProcessID{s1.ID, s1.ID, s2.ID, s2.ID} {
			b, err := r.Recv(th, from, dst, n)
			if err != nil {
				t.Error(err)
				return
			}
			got = append(got, append([]byte(nil), b...))
		}
		doneAt = th.Now()
	})
	c.Run()
	if len(got) != 4 {
		t.Fatalf("received %d of 4 messages", len(got))
	}
	for i, want := range [][]byte{d1a, d1b, d2a, d2b} {
		if !bytes.Equal(got[i], want) {
			t.Errorf("message %d corrupted or out of order", i)
		}
	}
	// The whole point: recovery must not have needed the 150 ms RTO.
	if doneAt >= sim.Time(opts.GBN.RTO) {
		t.Errorf("receives finished at %v; drop-and-refetch should avoid the RTO (%v)", doneAt, opts.GBN.RTO)
	}
	for _, sender := range []int{1, 2} {
		if n := c.Stacks[sender].LinkStats(0).Retransmissions; n != 0 {
			t.Errorf("node %d retransmitted %d packets; drops should be pull-refetched", sender, n)
		}
	}
}

func TestManyChannelOverflowNoLivelock(t *testing.T) {
	// The stencil livelock regression: cross-channel pushed-buffer
	// pressure with pull traffic behind overflowing pushes must always
	// make progress.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 4096
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 3
	cfg.Opts = opts
	c := cluster.New(cfg)
	const iters = 10
	const n = 8192
	mid := c.Endpoint(1, 0)
	for _, peerNode := range []int{0, 2} {
		peerNode := peerNode
		peer := c.Endpoint(peerNode, 0)
		pSrc, pDst := peer.Alloc(n), peer.Alloc(n)
		mSrc, mDst := mid.Alloc(n), mid.Alloc(n)
		msg := pattern(n, byte(peerNode))
		c.Spawn(peerNode, 0, "peer", func(th *smp.Thread) {
			for i := 0; i < iters; i++ {
				th.Compute(100_000)
				if err := peer.Send(th, mid.ID, pSrc, msg); err != nil {
					t.Error(err)
				}
				if _, err := peer.Recv(th, mid.ID, pDst, n); err != nil {
					t.Error(err)
				}
			}
		})
		c.Spawn(1, peerNode, "mid", func(th *smp.Thread) { // one thread per peer on distinct CPUs
			for i := 0; i < iters; i++ {
				th.Compute(250_000)
				if err := mid.Send(th, peer.ID, mSrc, msg); err != nil {
					t.Error(err)
				}
				if _, err := mid.Recv(th, peer.ID, mDst, n); err != nil {
					t.Error(err)
				}
			}
		})
	}
	c.Engine.RunUntil(sim.Time(5 * sim.Second))
	if mid.Received() != 2*iters {
		t.Fatalf("middle node received %d of %d (livelock?)", mid.Received(), 2*iters)
	}
	var retrans uint64
	for _, peerNode := range []int{0, 2} {
		retrans += c.Stacks[peerNode].LinkStats(1).Retransmissions
		retrans += c.Stacks[1].LinkStats(peerNode).Retransmissions
	}
	if retrans != 0 {
		t.Errorf("%d retransmissions; pushed-buffer pressure with pulls pending should not reach the RTO", retrans)
	}
}
