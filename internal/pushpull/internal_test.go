package pushpull

import (
	"testing"
	"testing/quick"

	"pushpull/internal/sim"
)

func TestInterBTPSelection(t *testing.T) {
	opts := DefaultOptions() // BTP 760, BTP1 80, BTP2 680, overlap on
	cases := []struct {
		mode  Mode
		total int
		want  int
	}{
		{PushPull, 10000, 760},
		{PushPull, 400, 400}, // clamped to message size
		{PushZero, 10000, 0},
		{PushAll, 10000, 10000},
	}
	for _, c := range cases {
		opts.Mode = c.mode
		if got := opts.interBTP(c.total); got != c.want {
			t.Errorf("interBTP(%v, %d) = %d, want %d", c.mode, c.total, got, c.want)
		}
	}
	opts.Mode = PushPull
	opts.OverlapAck = false
	if got := opts.interBTP(10000); got != 760 {
		t.Errorf("non-overlap BTP = %d, want 760", got)
	}
}

func TestIntraBTPSelection(t *testing.T) {
	opts := DefaultOptions() // IntraBTP 16
	if got := opts.intraBTP(1000); got != 16 {
		t.Errorf("intraBTP(1000) = %d, want 16", got)
	}
	if got := opts.intraBTP(10); got != 10 {
		t.Errorf("intraBTP(10) = %d, want 10 (clamped)", got)
	}
	opts.Mode = PushAll
	if got := opts.intraBTP(1000); got != 1000 {
		t.Errorf("push-all intraBTP = %d, want whole message", got)
	}
}

func TestPushRunsSplitsOnlyWhenPulling(t *testing.T) {
	opts := DefaultOptions()
	// Whole message fits in the push: one run (the Fig. 4 "identical
	// below 760 B" behavior).
	if runs := pushRuns(opts, 400, 400); len(runs) != 1 || runs[0] != 400 {
		t.Errorf("runs(fully pushed) = %v, want [400]", runs)
	}
	// A pull follows: BTP(1)+BTP(2) split.
	if runs := pushRuns(opts, 760, 1400); len(runs) != 2 || runs[0] != 80 || runs[1] != 680 {
		t.Errorf("runs(pulling) = %v, want [80 680]", runs)
	}
	// BTP(1)=0 sweep: zero-length first run is kept as the announcement.
	opts.BTP1 = 0
	if runs := pushRuns(opts, 680, 1400); len(runs) != 2 || runs[0] != 0 || runs[1] != 680 {
		t.Errorf("runs(BTP1=0) = %v, want [0 680]", runs)
	}
	// No overlap: a single run regardless.
	opts = DefaultOptions()
	opts.OverlapAck = false
	if runs := pushRuns(opts, 760, 1400); len(runs) != 1 || runs[0] != 760 {
		t.Errorf("runs(no overlap) = %v, want [760]", runs)
	}
	// Nothing pushed: no runs.
	if runs := pushRuns(opts, 0, 100); runs != nil {
		t.Errorf("runs(btp=0) = %v, want nil", runs)
	}
}

func TestPushRunsCoverBTP(t *testing.T) {
	property := func(btp1Raw, btp2Raw uint16, totalRaw uint16, overlap bool) bool {
		opts := DefaultOptions()
		opts.OverlapAck = overlap
		opts.BTP1 = int(btp1Raw) % 800
		opts.BTP2 = int(btp2Raw) % 800
		opts.BTP = opts.BTP1 + opts.BTP2
		total := int(totalRaw)%16000 + 1
		btp := opts.interBTP(total)
		sum := 0
		for _, r := range pushRuns(opts, btp, total) {
			if r < 0 {
				return false
			}
			sum += r
		}
		return sum == btp
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPushedBufferSlots(t *testing.T) {
	e := sim.NewEngine(1)
	b := newPushedBuffer(e, 4096)
	if b.slots != 2 {
		t.Fatalf("4KB buffer has %d slots, want 2 (2KB slots)", b.slots)
	}
	if !b.tryReserveSlot() || !b.tryReserveSlot() {
		t.Fatal("could not reserve 2 slots")
	}
	if b.tryReserveSlot() {
		t.Error("third slot reserved in a 2-slot buffer")
	}
	b.releaseSlot()
	if !b.tryReserveSlot() {
		t.Error("slot not reusable after release")
	}
}

func TestPushedBufferSlotUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("slot underflow did not panic")
		}
	}()
	e := sim.NewEngine(1)
	newPushedBuffer(e, 4096).releaseSlot()
}

func TestPushedBufferBytesBlockUntilSpace(t *testing.T) {
	e := sim.NewEngine(1)
	b := newPushedBuffer(e, 1000)
	var reservedAt sim.Time = -1
	e.Go("first", func(p *sim.Process) {
		b.reserveBytes(p, 800)
	})
	e.Go("second", func(p *sim.Process) {
		p.Sleep(1)
		b.reserveBytes(p, 500) // must wait for the release at t=50
		reservedAt = p.Now()
	})
	e.Go("releaser", func(p *sim.Process) {
		p.Sleep(50)
		b.releaseBytes(800)
	})
	e.Run()
	if reservedAt != 50 {
		t.Errorf("blocked reservation completed at %v, want 50", reservedAt)
	}
	if b.bytesUsed() != 500 {
		t.Errorf("bytes used = %d, want 500", b.bytesUsed())
	}
}

func TestPushedBufferByteUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("byte underflow did not panic")
		}
	}()
	e := sim.NewEngine(1)
	newPushedBuffer(e, 1000).releaseBytes(1)
}

func TestModeString(t *testing.T) {
	if PushPull.String() != "push-pull" || PushZero.String() != "push-zero" || PushAll.String() != "push-all" {
		t.Error("mode names wrong")
	}
	if Mode(99).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestWireSizes(t *testing.T) {
	f := fragMsg{data: make([]byte, 100)}
	if f.wireBytes() != 100+ProtoHeaderBytes {
		t.Errorf("frag wire bytes = %d", f.wireBytes())
	}
	if (pullReqMsg{}).wireBytes() != ProtoHeaderBytes+4 {
		t.Error("pull request wire bytes wrong")
	}
	if (linkAckMsg{}).wireBytes() != ProtoHeaderBytes {
		t.Error("link ack wire bytes wrong")
	}
	if MaxFragData != 1500-ProtoHeaderBytes {
		t.Error("MaxFragData inconsistent with MTU")
	}
}

func TestChannelAndProcessIDStrings(t *testing.T) {
	ch := ChannelID{From: ProcessID{0, 1}, To: ProcessID{2, 3}}
	if ch.String() != "n0.p1->n2.p3" {
		t.Errorf("channel string = %q", ch)
	}
}

func TestValidateRejectsBadGBN(t *testing.T) {
	opts := DefaultOptions()
	opts.GBN.Window = 0
	if opts.Validate() == nil {
		t.Error("zero go-back-N window validated")
	}
}
