package pushpull

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
	"pushpull/internal/vm"
)

type sendKey struct {
	ch    ChannelID
	msgID uint64
}

// Endpoint is the communication interface of one process: its send queue,
// receive queue, buffer queue and pushed buffer, shared with the kernel
// (paper Figure 1).
//
// Send and Recv must be called from a thread bound to the endpoint's CPU;
// they charge that thread the protocol's CPU costs and block it in
// virtual time the way the real calls block.
type Endpoint struct {
	stack *Stack
	ID    ProcessID
	CPU   int
	Space *vm.AddressSpace

	ring    *pushedBuffer
	inbound []*inboundMsg // arrival-ordered incoming messages
	pending []*recvOp     // registered, unmatched receive operations
	sendOps map[sendKey]*sendOp
	nextMsg map[ChannelID]uint64
	// nextBind is the next message id each channel's receives must bind,
	// enforcing FIFO channel semantics even when multi-rail striping
	// makes later messages' fragments arrive first.
	nextBind map[ChannelID]uint64

	sent, received uint64
}

// Stack returns the owning stack.
func (ep *Endpoint) Stack() *Stack { return ep.stack }

// Sent reports completed Send calls; Received reports completed Recvs.
func (ep *Endpoint) Sent() uint64     { return ep.sent }
func (ep *Endpoint) Received() uint64 { return ep.received }

// Alloc reserves a page-aligned buffer in the endpoint's address space.
func (ep *Endpoint) Alloc(n int) vm.VirtAddr { return ep.Space.Alloc(n) }

// Send transmits data (which the caller has placed at addr in the
// endpoint's space) to process to. It returns when the local send
// operation completes — after the push phase; the pull phase proceeds
// asynchronously, reading the source buffer until the message is fully
// transferred, exactly like the paper's send.
func (ep *Endpoint) Send(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("pushpull: empty send from %v", ep.ID)
	}
	if _, err := ep.Space.Translate(addr, len(data)); err != nil {
		return fmt.Errorf("pushpull: send source: %w", err)
	}
	ch := ChannelID{From: ep.ID, To: to}
	msgID := ep.nextMsg[ch]
	ep.nextMsg[ch] = msgID + 1

	if ep.stack.intranode(to) {
		ep.stack.sendIntra(t, ep, ch, msgID, addr, data)
	} else {
		ep.stack.sendInter(t, ep, ch, msgID, addr, data)
	}
	ep.sent++
	return nil
}

// Recv blocks until the next message on channel from→ep arrives and is
// fully placed in the destination buffer at addr (bufLen bytes, which
// must be large enough). It returns the received bytes.
func (ep *Endpoint) Recv(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int) ([]byte, error) {
	if bufLen <= 0 {
		return nil, fmt.Errorf("pushpull: non-positive receive buffer on %v", ep.ID)
	}
	if _, err := ep.Space.Translate(addr, bufLen); err != nil {
		return nil, fmt.Errorf("pushpull: receive destination: %w", err)
	}
	cfg := ep.stack.Node.Cfg
	ch := ChannelID{From: from, To: ep.ID}

	t.Exec(cfg.CallOverhead)
	t.Exec(cfg.SyscallEntry)

	op := &recvOp{
		ch:     ch,
		addr:   addr,
		bufLen: bufLen,
		done:   sim.NewCond(ep.stack.Node.Engine),
	}

	// Register the receive operation and resolve the destination's zero
	// buffer. With masking (internode), registration becomes visible
	// first and the translation overlaps whatever the wire is doing; the
	// handler's direct copy waits for zbReadyAt. Without masking (and
	// always intranode), registration is visible only once translation
	// has finished — which is what loses the Push-All race for multi-page
	// buffers (Fig. 3).
	cost := ep.Space.TranslateCost(addr, bufLen)
	masked := ep.stack.Opts.MaskTranslation && !ep.stack.intranode(from)
	t.Exec(cfg.QueueOp)
	if masked {
		op.zbReadyAt = t.Now().Add(cost)
		ep.register(t, op)
		t.Exec(cost)
	} else {
		t.Exec(cost)
		op.zbReadyAt = t.Now()
		ep.register(t, op)
	}
	op.zb = translateOrDie(ep.Space, addr, bufLen)

	// Service loop: drain buffered fragments, start the pull when its
	// time comes, park until the message completes.
	for {
		if op.msg == nil {
			ep.match(op)
		}
		if m := op.msg; m != nil {
			if m.total > bufLen {
				op.err = fmt.Errorf("pushpull: message of %d bytes exceeds %d-byte receive buffer on %v", m.total, bufLen, ep.ID)
				ep.unbind(op)
				break
			}
			ep.drainBuffered(t, m)
			ep.maybeStartPull(t, m, false)
			if m.complete {
				break
			}
		}
		op.done.Wait(t.P)
		t.Exec(cfg.WakeLatency)
	}
	if op.err != nil {
		t.Exec(cfg.SyscallExit)
		return nil, op.err
	}
	msg := op.msg
	t.Exec(cfg.SyscallExit)
	ep.received++
	return msg.buf, nil
}

// register makes a receive operation visible to senders and handlers.
func (ep *Endpoint) register(t *smp.Thread, op *recvOp) {
	ep.pending = append(ep.pending, op)
	// A sender may already have parked fragments (or an announcement):
	// match immediately so the wait loop sees them.
	ep.match(op)
}

// match binds op to its channel's next-in-sequence inbound message, if it
// has started arriving. Binding strictly by message id (not arrival
// order) keeps channels FIFO when rail striping reorders arrivals.
func (ep *Endpoint) match(op *recvOp) {
	want := ep.nextBind[op.ch]
	for _, m := range ep.inbound {
		if m.op == nil && m.ch == op.ch && m.msgID == want {
			ep.bind(op, m)
			return
		}
	}
}

// bind ties a receive operation to an inbound message and removes the op
// from the pending list.
func (ep *Endpoint) bind(op *recvOp, m *inboundMsg) {
	op.msg = m
	m.op = op
	ep.nextBind[m.ch] = m.msgID + 1
	for i, p := range ep.pending {
		if p == op {
			ep.pending = append(ep.pending[:i], ep.pending[i+1:]...)
			break
		}
	}
}

// unbind detaches a failed receive op, leaving the message for a retry
// with a bigger buffer.
func (ep *Endpoint) unbind(op *recvOp) {
	if op.msg != nil {
		ep.nextBind[op.msg.ch] = op.msg.msgID // the retry must bind it again
		op.msg.op = nil
		op.msg = nil
	}
	for i, p := range ep.pending {
		if p == op {
			ep.pending = append(ep.pending[:i], ep.pending[i+1:]...)
			break
		}
	}
}

// pendingFor returns the oldest unmatched receive op for ch, or nil.
func (ep *Endpoint) pendingFor(ch ChannelID) *recvOp {
	for _, op := range ep.pending {
		if op.ch == ch {
			return op
		}
	}
	return nil
}

// findInbound returns the inbound message (ch, msgID), or nil.
func (ep *Endpoint) findInbound(ch ChannelID, msgID uint64) *inboundMsg {
	for _, m := range ep.inbound {
		if m.ch == ch && m.msgID == msgID {
			return m
		}
	}
	return nil
}

// addInbound registers a newly arriving message and binds it to a waiting
// receive op if it is the channel's next message in sequence.
func (ep *Endpoint) addInbound(m *inboundMsg) {
	ep.inbound = append(ep.inbound, m)
	if m.msgID != ep.nextBind[m.ch] {
		return
	}
	if op := ep.pendingFor(m.ch); op != nil {
		ep.bind(op, m)
	}
}

// removeInbound drops a completed message from the inbound list.
func (ep *Endpoint) removeInbound(m *inboundMsg) {
	for i, x := range ep.inbound {
		if x == m {
			ep.inbound = append(ep.inbound[:i], ep.inbound[i+1:]...)
			return
		}
	}
}

// drainBuffered copies fragments parked in the pushed buffer into the
// bound destination, charging the receiving thread (this is the second
// copy the pushed buffer costs; data arriving after the bind skips it).
func (ep *Endpoint) drainBuffered(t *smp.Thread, m *inboundMsg) {
	for len(m.buffered) > 0 {
		f := m.buffered[0]
		m.buffered = m.buffered[1:]
		t.Copy(len(f.data), true) // written by another CPU: cold
		copy(m.buf[f.offset:], f.data)
		m.received += len(f.data)
		if m.intraBuf > 0 {
			n := len(f.data)
			if n > m.intraBuf {
				n = m.intraBuf
			}
			ep.ring.releaseBytes(n)
			m.intraBuf -= n
		} else if m.slots > 0 {
			ep.ring.releaseSlot()
			m.slots--
		}
	}
	if m.received == m.total {
		ep.complete(nil, m) // receiver context: no completion signal needed
	}
}

// maybeStartPull launches the pull phase once: internode it sends the
// acknowledgement / pull request; intranode it dispatches the pull kernel
// thread. fromHandler distinguishes the reception-handler-initiated pull
// (Push-and-Acknowledge Overlapping) from the receive-process-initiated
// one.
func (ep *Endpoint) maybeStartPull(t *smp.Thread, m *inboundMsg, fromHandler bool) {
	if m.pullSent || m.op == nil || m.pullRemainder() <= 0 {
		return
	}
	m.pullSent = true
	if ep.stack.intranode(m.ch.From) {
		ep.stack.dispatchIntraPull(m)
	} else {
		ep.stack.sendPullReq(t, m)
	}
}

// complete marks a message fully received. When a handler or pull thread
// finishes the message (t non-nil and a receiver is parked), it pays the
// cross-CPU signal; a receiver completing its own message inline passes
// t = nil.
func (ep *Endpoint) complete(t *smp.Thread, m *inboundMsg) {
	if m.complete {
		return
	}
	m.complete = true
	ep.stack.event(trace.KindComplete, "%v#%d complete: %d/%d bytes received", m.ch, m.msgID, m.received, m.total)
	ep.removeInbound(m)
	if m.op != nil && t != nil {
		t.Exec(t.SignalCost(ep.stack.Node.CPUs[ep.CPU]))
	}
	if m.op != nil {
		m.op.done.Broadcast()
	}
}
