package pushpull

import (
	"fmt"
	"sort"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
	"pushpull/internal/vm"
)

type sendKey struct {
	ch    ChannelID
	msgID uint64
}

// Endpoint is the communication interface of one process: its send queue,
// receive queue, buffer queue and pushed buffer, shared with the kernel
// (paper Figure 1).
//
// Send and Recv must be called from a thread bound to the endpoint's CPU;
// they charge that thread the protocol's CPU costs and block it in
// virtual time the way the real calls block.
type Endpoint struct {
	stack *Stack
	ID    ProcessID
	CPU   int
	Space *vm.AddressSpace

	ring    *pushedBuffer
	inbound []*inboundMsg // arrival-ordered incoming messages
	pending []*recvOp     // registered, unmatched receive operations
	sendOps map[sendKey]*sendOp
	nextMsg map[ChannelID]uint64
	// nextLane is the next lane sequence number to assign per outgoing
	// (channel, tag) lane.
	nextLane map[laneKey]uint64
	// nextBind is the next lane sequence each (channel, tag) lane's
	// receives must bind, enforcing FIFO lane semantics even when
	// multi-rail striping makes later messages' fragments arrive first.
	nextBind map[laneKey]uint64

	sent, received uint64

	// apiHandle memoizes the public comm package's per-process handle,
	// so repeated comm.At/Attach calls share one channel cache and one
	// set of staging buffers. One engine is single-threaded; no lock.
	apiHandle any
}

// APIHandle returns the memoized public-API handle (see comm.Attach).
func (ep *Endpoint) APIHandle() any { return ep.apiHandle }

// SetAPIHandle stores the public-API handle for this endpoint.
func (ep *Endpoint) SetAPIHandle(h any) { ep.apiHandle = h }

// Stack returns the owning stack.
func (ep *Endpoint) Stack() *Stack { return ep.stack }

// Sent reports completed Send calls; Received reports completed Recvs.
func (ep *Endpoint) Sent() uint64     { return ep.sent }
func (ep *Endpoint) Received() uint64 { return ep.received }

// Alloc reserves a page-aligned buffer in the endpoint's address space.
func (ep *Endpoint) Alloc(n int) vm.VirtAddr { return ep.Space.Alloc(n) }

// Send transmits data (which the caller has placed at addr in the
// endpoint's space) to process to, with tag 0 and the protocol's
// configured BTP. See SendOpt for the tunable form.
func (ep *Endpoint) Send(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte) error {
	return ep.SendOpt(t, to, addr, data, DefaultSendOptions())
}

// SendOpt transmits data to process to. It returns when the local send
// operation completes — after the push phase; the pull phase proceeds
// asynchronously, reading the source buffer until the message is fully
// transferred, exactly like the paper's send. Zero-length messages are
// valid: they transfer no data but carry their (tag, lane) envelope and
// complete a matching receive.
func (ep *Endpoint) SendOpt(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte, o SendOptions) error {
	if to == AnySource {
		return fmt.Errorf("pushpull: send to AnySource from %v", ep.ID)
	}
	if o.Tag == AnyTag {
		return fmt.Errorf("pushpull: send with wildcard tag from %v", ep.ID)
	}
	if len(data) > 0 {
		if _, err := ep.Space.Translate(addr, len(data)); err != nil {
			return fmt.Errorf("pushpull: send source: %w", err)
		}
	}
	if !ep.stack.intranode(to) {
		if derr := ep.stack.deadPeers[to.Node]; derr != nil {
			ep.stack.failedOps++
			return fmt.Errorf("pushpull: send to %v: %w", to, derr)
		}
	}
	ch := ChannelID{From: ep.ID, To: to}
	msgID := ep.nextMsg[ch]
	ep.nextMsg[ch] = msgID + 1
	lane := laneKey{ch: ch, tag: o.Tag}
	laneSeq := ep.nextLane[lane]
	ep.nextLane[lane] = laneSeq + 1

	if ep.stack.intranode(to) {
		ep.stack.sendIntra(t, ep, ch, msgID, addr, data, o, laneSeq)
	} else {
		ep.stack.sendInter(t, ep, ch, msgID, addr, data, o, laneSeq)
	}
	ep.sent++
	return nil
}

// Recv blocks until the next tag-0 message on channel from→ep arrives
// and is fully placed in the destination buffer at addr (bufLen bytes).
// See RecvOpt for tagged and wildcard receives.
func (ep *Endpoint) Recv(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int) ([]byte, error) {
	b, _, err := ep.RecvOpt(t, from, addr, bufLen, RecvOptions{})
	return b, err
}

// RecvOpt blocks until the next eligible message arrives and is fully
// placed in the destination buffer at addr (bufLen bytes, which must be
// large enough). from may be AnySource and o.Tag may be AnyTag; the
// returned Status reports what actually matched. Within one (channel,
// tag) lane messages bind strictly in send order; wildcard receives bind
// the eligible message that started arriving first.
func (ep *Endpoint) RecvOpt(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int, o RecvOptions) ([]byte, Status, error) {
	if bufLen < 0 {
		return nil, Status{}, fmt.Errorf("pushpull: negative receive buffer on %v", ep.ID)
	}
	if bufLen > 0 {
		if _, err := ep.Space.Translate(addr, bufLen); err != nil {
			return nil, Status{}, fmt.Errorf("pushpull: receive destination: %w", err)
		}
	}
	if from != AnySource && !ep.stack.intranode(from) {
		if derr := ep.stack.deadPeers[from.Node]; derr != nil {
			ep.stack.failedOps++
			return nil, Status{}, fmt.Errorf("pushpull: receive from %v: %w", from, derr)
		}
	}
	cfg := ep.stack.Node.Cfg

	t.Exec(cfg.CallOverhead)
	t.Exec(cfg.SyscallEntry)

	op := &recvOp{
		src:    from,
		tag:    o.Tag,
		addr:   addr,
		bufLen: bufLen,
		done:   sim.NewCond(ep.stack.Node.Engine),
	}

	// Register the receive operation and resolve the destination's zero
	// buffer. With masking (internode), registration becomes visible
	// first and the translation overlaps whatever the wire is doing; the
	// handler's direct copy waits for zbReadyAt. Without masking (and
	// always intranode), registration is visible only once translation
	// has finished — which is what loses the Push-All race for multi-page
	// buffers (Fig. 3).
	cost := sim.Duration(0)
	if bufLen > 0 {
		cost = ep.Space.TranslateCost(addr, bufLen)
	}
	// An AnySource receive may be bound by an intranode sender, whose
	// zero-buffer direct push copies at bind time with no way to wait
	// out a pending translation — so wildcard receives register
	// unmasked, like intranode ones.
	masked := ep.stack.Opts.MaskTranslation && from != AnySource && !ep.stack.intranode(from)
	t.Exec(cfg.QueueOp)
	if masked {
		op.zbReadyAt = t.Now().Add(cost)
		ep.register(t, op)
		t.Exec(cost)
	} else {
		t.Exec(cost)
		op.zbReadyAt = t.Now()
		ep.register(t, op)
	}
	if bufLen > 0 {
		op.zb = translateOrDie(ep.Space, addr, bufLen)
	}

	// Service loop: drain buffered fragments, start the pull when its
	// time comes, park until the message completes. Matching (and the
	// buffer-overflow failure, which never consumes the message) happens
	// in settle, driven by registration and arrivals.
	for op.err == nil {
		if m := op.msg; m != nil {
			ep.drainBuffered(t, m)
			ep.maybeStartPull(t, m, false)
			if m.complete {
				break
			}
		}
		op.done.Wait(t.P)
		t.Exec(cfg.WakeLatency)
	}
	if op.err != nil {
		t.Exec(cfg.SyscallExit)
		return nil, Status{}, op.err
	}
	msg := op.msg
	t.Exec(cfg.SyscallExit)
	ep.received++
	return msg.buf, Status{Source: msg.ch.From, Tag: msg.tag, Valid: true}, nil
}

// register makes a receive operation visible to senders and handlers.
func (ep *Endpoint) register(t *smp.Thread, op *recvOp) {
	ep.pending = append(ep.pending, op)
	// A sender may already have parked fragments (or an announcement):
	// settle immediately so the wait loop sees them.
	ep.settle(op, nil)
}

// eligible reports whether m may bind a receive: it must be its lane's
// next message. Binding strictly by lane sequence (not arrival order)
// keeps lanes FIFO when rail striping reorders arrivals.
func (ep *Endpoint) eligible(m *inboundMsg) bool {
	return m.op == nil && m.laneSeq == ep.nextBind[m.lane()]
}

// bestMatch returns the eligible inbound message op's pattern matches,
// or nil: at most one per lane is eligible, and wildcard patterns take
// the one that started arriving first.
func (ep *Endpoint) bestMatch(op *recvOp) *inboundMsg {
	for _, m := range ep.inbound {
		if ep.eligible(m) && op.matches(m) {
			return m
		}
	}
	return nil
}

// bind ties a receive operation to an inbound message, removes the op
// from the pending list, and advances the lane. The caller must have
// validated capacity: a message never binds a receive it overflows.
func (ep *Endpoint) bind(op *recvOp, m *inboundMsg) {
	op.msg = m
	m.op = op
	ep.nextBind[m.lane()] = m.laneSeq + 1
	ep.dropPending(op)
}

// fail resolves a receive with an error, without consuming any message.
func (ep *Endpoint) fail(op *recvOp, err error) {
	op.err = err
	ep.dropPending(op)
}

// failPeer fails every operation on this endpoint bound to the
// now-unreachable peer node: pending receives naming it, messages
// mid-transfer from it, and parked synchronous senders toward it. Runs
// in timer context from Stack.peerUnreachable.
func (ep *Endpoint) failPeer(peer int, err error) {
	// Pending receives with a definite source on the dead peer. Iterate a
	// snapshot: fail mutates ep.pending.
	pend := append([]*recvOp(nil), ep.pending...)
	for _, op := range pend {
		if op.src != AnySource && op.src.Node == peer {
			ep.fail(op, err)
			op.done.Broadcast()
			ep.stack.failedOps++
		}
	}
	// Receives already bound to a message the dead peer will never
	// finish transferring.
	for _, m := range ep.inbound {
		if m.ch.From.Node == peer && m.op != nil && !m.complete && m.op.err == nil {
			m.op.err = err
			m.op.done.Broadcast()
			ep.stack.failedOps++
		}
	}
	// Parked synchronous (three-phase) senders waiting on a grant the
	// dead peer will never send. The map iterates in sorted key order so
	// the wake sequence is deterministic.
	keys := make([]sendKey, 0, len(ep.sendOps))
	for k := range ep.sendOps {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.ch.To.Node != b.ch.To.Node {
			return a.ch.To.Node < b.ch.To.Node
		}
		if a.ch.To.Proc != b.ch.To.Proc {
			return a.ch.To.Proc < b.ch.To.Proc
		}
		return a.msgID < b.msgID
	})
	for _, k := range keys {
		op := ep.sendOps[k]
		if op.ch.To.Node == peer && op.done != nil && op.grant == nil && !op.served && op.err == nil {
			op.err = err
			op.done.Broadcast()
			ep.stack.failedOps++
		}
	}
}

func (ep *Endpoint) dropPending(op *recvOp) {
	for i, p := range ep.pending {
		if p == op {
			ep.pending = append(ep.pending[:i], ep.pending[i+1:]...)
			return
		}
	}
}

// settle resolves pending receives against eligible inbound messages
// until nothing more changes. Called after any state change that can
// create eligibility — an arrival or a lane advance. Receives resolve
// in posting order; a receive whose matched message overflows its
// buffer *fails without consuming it* (the message stays for a retry
// with room, and no pull phase ever starts on its behalf), exactly like
// a truncating MPI receive.
//
// Waking: a failed receive is always woken (nothing else ever will). A
// bound receive is woken unless the resolution involves the exempt op
// (registering in this very thread — its service loop runs next) or the
// exempt message (being delivered right now — the delivery path signals
// the bound receive itself, and an extra wake here would cost the
// receiver a spurious wake latency).
func (ep *Endpoint) settle(exemptOp *recvOp, exemptMsg *inboundMsg) {
	for {
		progressed := false
		for _, op := range ep.pending {
			m := ep.bestMatch(op)
			if m == nil {
				continue
			}
			if m.total > op.bufLen {
				ep.fail(op, fmt.Errorf("pushpull: message of %d bytes exceeds %d-byte receive buffer on %v", m.total, op.bufLen, ep.ID))
				if op != exemptOp {
					op.done.Broadcast()
				}
			} else {
				ep.bind(op, m)
				if op != exemptOp && m != exemptMsg {
					op.done.Broadcast()
				}
			}
			progressed = true
			break // the pending list changed: rescan from the front
		}
		if !progressed {
			return
		}
	}
}

// intraDirectRecv returns the pending receive a not-yet-registered
// intranode message m would bind directly (m must be its lane's next
// message and fit the receive's buffer), or nil — in which case the
// message parks and settle resolves it, including failing an
// undersized receive.
func (ep *Endpoint) intraDirectRecv(m *inboundMsg) *recvOp {
	if !ep.eligible(m) {
		return nil
	}
	for _, op := range ep.pending {
		if op.matches(m) {
			if m.total > op.bufLen {
				return nil
			}
			return op
		}
	}
	return nil
}

// findInbound returns the inbound message (ch, msgID), or nil.
func (ep *Endpoint) findInbound(ch ChannelID, msgID uint64) *inboundMsg {
	for _, m := range ep.inbound {
		if m.ch == ch && m.msgID == msgID {
			return m
		}
	}
	return nil
}

// addInbound registers a newly arriving message and settles it against
// the pending receives.
func (ep *Endpoint) addInbound(m *inboundMsg) {
	ep.inbound = append(ep.inbound, m)
	ep.settle(nil, m)
}

// removeInbound drops a completed message from the inbound list.
func (ep *Endpoint) removeInbound(m *inboundMsg) {
	for i, x := range ep.inbound {
		if x == m {
			ep.inbound = append(ep.inbound[:i], ep.inbound[i+1:]...)
			return
		}
	}
}

// drainBuffered copies fragments parked in the pushed buffer into the
// bound destination, charging the receiving thread (this is the second
// copy the pushed buffer costs; data arriving after the bind skips it).
func (ep *Endpoint) drainBuffered(t *smp.Thread, m *inboundMsg) {
	for len(m.buffered) > 0 {
		f := m.buffered[0]
		m.buffered = m.buffered[1:]
		t.Copy(len(f.data), true) // written by another CPU: cold
		copy(m.buf[f.offset:], f.data)
		m.received += len(f.data)
		if m.intraBuf > 0 {
			n := len(f.data)
			if n > m.intraBuf {
				n = m.intraBuf
			}
			ep.ring.releaseBytes(n)
			m.intraBuf -= n
		} else if m.slots > 0 {
			ep.ring.releaseSlot()
			m.slots--
		}
	}
	if m.received == m.total {
		ep.complete(nil, m) // receiver context: no completion signal needed
	}
}

// maybeStartPull launches the pull phase once: internode it sends the
// acknowledgement / pull request; intranode it dispatches the pull kernel
// thread. fromHandler distinguishes the reception-handler-initiated pull
// (Push-and-Acknowledge Overlapping) from the receive-process-initiated
// one.
func (ep *Endpoint) maybeStartPull(t *smp.Thread, m *inboundMsg, fromHandler bool) {
	if m.pullSent || m.op == nil || m.pullRemainder() <= 0 {
		return
	}
	m.pullSent = true
	if ep.stack.intranode(m.ch.From) {
		ep.stack.dispatchIntraPull(m)
	} else {
		ep.stack.sendPullReq(t, m)
	}
}

// complete marks a message fully received. When a handler or pull thread
// finishes the message (t non-nil and a receiver is parked), it pays the
// cross-CPU signal; a receiver completing its own message inline passes
// t = nil.
func (ep *Endpoint) complete(t *smp.Thread, m *inboundMsg) {
	if m.complete {
		return
	}
	m.complete = true
	ep.stack.event(trace.KindComplete, "%v#%d complete: %d/%d bytes received", m.ch, m.msgID, m.received, m.total)
	ep.removeInbound(m)
	if m.op != nil && t != nil {
		t.Exec(t.SignalCost(ep.stack.Node.CPUs[ep.CPU]))
	}
	if m.op != nil {
		m.op.done.Broadcast()
	}
}
