package pushpull

import (
	"fmt"
	"sort"

	"pushpull/internal/ether"
	"pushpull/internal/gbn"
	"pushpull/internal/nic"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
	"pushpull/internal/vm"
)

// Stack is the messaging layer of one node: the endpoints living there,
// plus one pair of go-back-N lanes *per directed channel* toward every
// peer node reachable through the attached NICs.
//
// Per-channel sessions are the protocol-level fix for the shared-stream
// livelock: a refused fully-eager fragment stalls only its own channel's
// stream, so pull traffic and other channels keep draining the pushed
// buffer and the refused fragment's retransmission eventually lands.
// Each channel owns a data lane (sender→receiver fragments) and a
// control lane (receiver→sender pull requests), one go-back-N pair per
// rail.
//
// A node may attach several NICs ("rails"); fragments of one message are
// striped across rails round-robin, realizing the paper's §6 outlook —
// "a more general mechanism to work with multiple network interfaces
// using multiple processors". Per-rail go-back-N keeps each rail in
// order; cross-rail reordering is absorbed by offset-addressed assembly
// and strict lane-sequence receive matching.
type Stack struct {
	Node *smp.Node
	Opts Options

	eps   map[int]*Endpoint
	peers map[int]bool // wired peer nodes (AddPeer)
	nics  []*nic.NIC
	// outSess/inSess hold this node's halves of every channel session it
	// has touched: outSess for channels this node sends on (data-lane
	// sender + control-lane receiver), inSess for channels it receives
	// on (data-lane receiver + control-lane sender). Sessions are
	// created lazily on first use; sessOrder records creation order so
	// post-run iteration (stats, recorders) is deterministic.
	outSess   map[ChannelID]*chanSession
	inSess    map[ChannelID]*chanSession
	sessOrder []*chanSession
	// curT is the handler thread currently delivering a packet; the
	// go-back-N deliver callbacks have no thread parameter, and handlers
	// are serialized by rxLock, so passing it through the stack is safe.
	curT *smp.Thread
	// rxLock serializes reception handlers (paper §2 stage 1: "the
	// system has to restrict that only one user or kernel thread invokes
	// the thread at a time"). Without it, a handler sleeping in a copy
	// while the next frame's handler runs would reenter the go-back-N
	// receiver and misorder in-order traffic.
	rxLock *sim.Resource

	// discardedBytes counts pushed bytes the receive side dropped for
	// lack of pushed-buffer space (re-fetched by the pull phase) — the
	// wire bandwidth the eager push wasted.
	discardedBytes uint64

	// deadPeers holds the typed unreachability error per peer node a
	// go-back-N sender declared dead (retransmission budget exhausted).
	// Operations toward a dead peer fail fast with that error.
	deadPeers map[int]*PeerUnreachableError
	// failedOps counts operations the stack failed with
	// ErrPeerUnreachable (pending receives, mid-transfer messages and
	// parked senders at declaration time, plus fast-failed entries).
	failedOps uint64

	// Trace, when set, receives one line per protocol event (used by
	// cmd/pushpull-trace).
	Trace func(format string, args ...any)
	// Rec, when set, receives every protocol event as a structured
	// trace.Event. A nil recorder is valid and records nothing.
	Rec *trace.Recorder
	// Adapter, when set, chooses the internode PushPull BTP per message
	// and receives pull-request feedback (see BTPAdapter).
	Adapter BTPAdapter
}

// NewStack builds the messaging layer for node n. It panics on invalid
// options: stacks are constructed from code, not user input.
func NewStack(n *smp.Node, opts Options) *Stack {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Stack{
		Node:      n,
		Opts:      opts,
		eps:       make(map[int]*Endpoint),
		peers:     make(map[int]bool),
		outSess:   make(map[ChannelID]*chanSession),
		inSess:    make(map[ChannelID]*chanSession),
		deadPeers: make(map[int]*PeerUnreachableError),
		rxLock:    sim.NewResource(n.Engine, fmt.Sprintf("rxlock/n%d", n.ID)),
	}
}

func (s *Stack) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(format, args...)
	}
}

// SetRecorder attaches a structured trace recorder to the stack and
// propagates it to the attached NICs and go-back-N sessions, so one
// recorder sees the whole node's protocol, link and reliability events.
// Sessions created later inherit it at creation.
func (s *Stack) SetRecorder(rec *trace.Recorder) {
	s.Rec = rec
	for _, nc := range s.nics {
		nc.Rec = rec
	}
	for _, sess := range s.sessOrder {
		for _, r := range sess.rails {
			for l := lane(0); l < numLanes; l++ {
				if snd := r.snd[l]; snd != nil {
					snd.SetTrace(rec, s.Node.ID)
				}
			}
		}
	}
}

// event publishes one structured protocol event (and mirrors it onto the
// printf hook, prefixed with the current virtual time).
func (s *Stack) event(k trace.Kind, format string, args ...any) {
	if s.Trace != nil {
		s.Trace("%v  "+format, append([]any{s.Node.Engine.Now()}, args...)...)
	}
	s.Rec.Recordf(s.Node.Engine.Now(), s.Node.ID, k, format, args...)
}

// NewEndpoint registers a communicating process on this node, bound to
// CPU cpu, and returns its endpoint. The endpoint owns a fresh address
// space.
func (s *Stack) NewEndpoint(proc, cpu int) *Endpoint {
	if _, dup := s.eps[proc]; dup {
		panic(fmt.Sprintf("pushpull: duplicate endpoint %d on node %d", proc, s.Node.ID))
	}
	ep := &Endpoint{
		stack:    s,
		ID:       ProcessID{Node: s.Node.ID, Proc: proc},
		CPU:      cpu,
		Space:    s.Node.NewSpace(fmt.Sprintf("p%d", proc)),
		ring:     newPushedBuffer(s.Node.Engine, s.Opts.PushedBufBytes),
		sendOps:  make(map[sendKey]*sendOp),
		nextMsg:  make(map[ChannelID]uint64),
		nextLane: make(map[laneKey]uint64),
		nextBind: make(map[laneKey]uint64),
	}
	s.eps[proc] = ep
	return ep
}

// Endpoint returns the endpoint of process proc, or nil.
func (s *Stack) Endpoint(proc int) *Endpoint { return s.eps[proc] }

// Procs reports the number of registered endpoints. Endpoints are
// numbered 0..Procs()-1 by every builder in the repo, so this is the
// bound for rank enumeration — no probing loop needed.
func (s *Stack) Procs() int { return len(s.eps) }

// AttachNIC adds a network interface (rail) and installs the reception
// handler. Call once per rail, before AddPeer.
func (s *Stack) AttachNIC(nc *nic.NIC) {
	railIdx := len(s.nics)
	s.nics = append(s.nics, nc)
	nc.SetReceiveHandler(func(t *smp.Thread, f ether.Frame) {
		s.handleFrame(railIdx, t, f)
	})
}

// NIC returns rail 0's NIC (nil for an intranode-only stack); Rails
// reports the rail count.
func (s *Stack) NIC() *nic.NIC {
	if len(s.nics) == 0 {
		return nil
	}
	return s.nics[0]
}

// Rails reports the number of attached NICs.
func (s *Stack) Rails() int { return len(s.nics) }

// AddPeer wires peer node into the topology. Channel sessions toward it
// are created lazily, one per directed channel, on first use. All NICs
// must be attached first.
func (s *Stack) AddPeer(peerNode int) {
	if len(s.nics) == 0 {
		panic("pushpull: AddPeer before AttachNIC")
	}
	if s.peers[peerNode] {
		panic(fmt.Sprintf("pushpull: duplicate peer %d on node %d", peerNode, s.Node.ID))
	}
	s.peers[peerNode] = true
}

// chanSession is one node's half of a directed channel's reliable
// transport. At the channel's From node (out = true) each rail carries
// go-back-N *senders* for the eager and pull data lanes and a *receiver*
// for the control lane's pull requests; at the To node the roles mirror.
type chanSession struct {
	stack *Stack
	ch    ChannelID
	peer  int  // remote node
	out   bool // true at ch.From's node
	rails []*chanRail
	next  [numLanes]int // per-lane round-robin rail cursors
}

// chanRail is one NIC's lane set for a channel session: per lane, a
// sender or a receiver depending on which side of the channel this node
// is (the unused halves stay nil).
type chanRail struct {
	sess *chanSession
	idx  int
	nic  *nic.NIC
	snd  [numLanes]*gbn.Sender
	rcv  [numLanes]*gbn.Receiver
	// txPool recycles the one-shot enqueue tasklets that hand frames to
	// the NIC (the former tx/ and tx-ack/ helper processes).
	txPool []*txJob
}

// txJob enqueues one frame into the rail's NIC FIFO: a one-shot tasklet
// that parks on ring space instead of blocking a goroutine.
type txJob struct {
	rail *chanRail
	tk   *sim.Tasklet
	req  nic.TxRequest
}

func (j *txJob) step(tk *sim.Tasklet) {
	if !j.rail.nic.SendPoll(tk, j.req) {
		return
	}
	j.req = nic.TxRequest{}
	j.rail.txPool = append(j.rail.txPool, j)
}

// launchTx starts a pooled enqueue tasklet for req. Like the helper
// process it replaces, it never blocks the caller — transmit runs in
// handler and timer context — and enqueue order follows launch order
// because the engine's dispatch ring and the FIFO's waiter list are both
// FIFO.
func (r *chanRail) launchTx(req nic.TxRequest) {
	var j *txJob
	if n := len(r.txPool); n > 0 {
		j = r.txPool[n-1]
		r.txPool = r.txPool[:n-1]
	} else {
		s := r.sess.stack
		j = &txJob{rail: r}
		j.tk = s.Node.Engine.NewTasklet(fmt.Sprintf("tx/n%d->n%d.r%d", s.Node.ID, r.sess.peer, r.idx), j.step)
	}
	j.req = req
	j.tk.Start()
}

// outSession returns (creating if needed) the sending-side session of
// channel ch: this node transmits data fragments and receives pull
// requests.
func (s *Stack) outSession(ch ChannelID) *chanSession {
	if sess := s.outSess[ch]; sess != nil {
		return sess
	}
	sess := s.newSession(ch, ch.To.Node, true)
	s.outSess[ch] = sess
	return sess
}

// inSession returns (creating if needed) the receiving-side session of
// channel ch: this node receives data fragments and transmits pull
// requests.
func (s *Stack) inSession(ch ChannelID) *chanSession {
	if sess := s.inSess[ch]; sess != nil {
		return sess
	}
	sess := s.newSession(ch, ch.From.Node, false)
	s.inSess[ch] = sess
	return sess
}

func (s *Stack) newSession(ch ChannelID, peer int, out bool) *chanSession {
	if !s.peers[peer] {
		panic(fmt.Sprintf("pushpull: node %d has no peer wiring toward node %d (channel %v)", s.Node.ID, peer, ch))
	}
	sess := &chanSession{stack: s, ch: ch, peer: peer, out: out}
	for i := range s.nics {
		r := &chanRail{sess: sess, idx: i, nic: s.nics[i]}
		for l := lane(0); l < numLanes; l++ {
			l := l
			if l.toSender() != out {
				// This node transmits on the lane.
				r.snd[l] = gbn.NewSender(s.Node.Engine, s.Opts.GBN, func(pkt gbn.Packet) { r.transmit(l, pkt) })
				r.snd[l].SetTrace(s.Rec, s.Node.ID)
				if s.Opts.GBN.MaxRetries > 0 {
					r.snd[l].SetOnDead(func() { s.peerUnreachable(peer) })
				}
			} else {
				// This node receives on the lane.
				deliver := sess.deliverFrag
				if l == laneCtrl {
					deliver = sess.deliverCtrl
				}
				r.rcv[l] = gbn.NewReceiver(deliver, func(ack uint32) { r.transmitAck(l, ack) })
			}
		}
		sess.rails = append(sess.rails, r)
	}
	s.sessOrder = append(s.sessOrder, sess)
	return sess
}

// send stripes a protocol packet onto the lane's next rail.
func (ps *chanSession) send(l lane, bytes int, data any) {
	r := ps.rails[ps.next[l]]
	ps.next[l] = (ps.next[l] + 1) % len(ps.rails)
	r.snd[l].Send(bytes, data)
}

// transmit hands a go-back-N packet to this rail's NIC, addressed to the
// given lane. It must not block the caller (it may run in handler or
// timer context), so the enqueue — which can wait for outgoing-FIFO
// space — happens on a one-shot tasklet.
func (r *chanRail) transmit(l lane, pkt gbn.Packet) {
	preloaded := false
	switch d := pkt.Data.(type) {
	case fragMsg:
		preloaded = d.preloaded
	case pullReqMsg:
		preloaded = true // built directly in the FIFO by the kernel
	}
	s := r.sess.stack
	frame := ether.Frame{
		Src:          s.Node.ID,
		Dst:          r.sess.peer,
		PayloadBytes: pkt.Bytes,
		Payload:      wireMsg{ch: r.sess.ch, lane: l, pkt: pkt},
	}
	r.launchTx(nic.TxRequest{Frame: frame, Preloaded: preloaded})
}

// transmitAck sends a raw cumulative link acknowledgement for one lane
// on this rail (not itself reliable; a lost ack is recovered by the data
// retransmission path).
func (r *chanRail) transmitAck(l lane, ack uint32) {
	s := r.sess.stack
	frame := ether.Frame{
		Src:          s.Node.ID,
		Dst:          r.sess.peer,
		PayloadBytes: linkAckMsg{}.wireBytes(),
		Payload:      wireMsg{ch: r.sess.ch, lane: l, isAck: true, ack: linkAckMsg{ack: ack}},
	}
	r.launchTx(nic.TxRequest{Frame: frame, Preloaded: true})
}

// deliverFrag is the eager and pull lanes' go-back-N upward delivery: an
// in-order fragment for this node. It reports whether the fragment could
// be consumed; false (no pushed-buffer space) makes go-back-N treat it
// as lost — stalling only this channel's eager lane.
func (ps *chanSession) deliverFrag(pkt gbn.Packet) bool {
	f, ok := pkt.Data.(fragMsg)
	if !ok {
		panic(fmt.Sprintf("pushpull: data lane carried %T", pkt.Data))
	}
	return ps.stack.deliverFrag(ps.stack.curT, f)
}

// deliverCtrl is the control lane's upward delivery at the data sender:
// the channel's pull requests.
func (ps *chanSession) deliverCtrl(pkt gbn.Packet) bool {
	req, ok := pkt.Data.(pullReqMsg)
	if !ok {
		panic(fmt.Sprintf("pushpull: control lane carried %T", pkt.Data))
	}
	ps.stack.servePull(ps.stack.curT, req)
	return true
}

// handleFrame is the reception handler (paper §2 stages 3-4): it runs in
// interrupt or polling context on the CPU the node's policy chose, and
// routes the frame to its channel's session and lane.
func (s *Stack) handleFrame(railIdx int, t *smp.Thread, f ether.Frame) {
	if !s.peers[f.Src] {
		s.event(trace.KindError, "frame from unknown peer %d dropped", f.Src)
		return
	}
	wm, ok := f.Payload.(wireMsg)
	if !ok {
		panic(fmt.Sprintf("pushpull: node %d received foreign payload %T", s.Node.ID, f.Payload))
	}
	// Eager/pull lane traffic arrives at the channel's To node (its in
	// session); control traffic arrives at the From node (out session).
	// Acks travel the opposite way and land on the transmitting half.
	sessionOf := func(recvSide bool) *chanSession {
		if wm.lane.toSender() == recvSide {
			return s.outSession(wm.ch)
		}
		return s.inSession(wm.ch)
	}
	if wm.isAck {
		// Link acks touch only a go-back-N sender and never sleep; they
		// bypass the handler lock like a real driver's ack fast path.
		sessionOf(false).rails[railIdx].snd[wm.lane].OnAck(wm.ack.ack)
		return
	}
	pkt := wm.pkt.(gbn.Packet)
	sess := sessionOf(true)
	s.rxLock.Acquire(t.P)
	s.curT = t
	sess.rails[railIdx].rcv[wm.lane].OnPacket(pkt)
	s.curT = nil
	s.rxLock.Release()
}

// peerUnreachable marks peer dead — a go-back-N sender toward it
// exhausted its retransmission budget — and fails every operation bound
// to it: pending receives naming the peer, messages mid-transfer from
// it, and parked three-phase senders toward it. Subsequent sends and
// receives involving the peer fail fast at entry. It runs in timer
// context (the sender's onDead callback) and fires once per peer.
func (s *Stack) peerUnreachable(peer int) {
	if s.deadPeers[peer] != nil {
		return
	}
	err := &PeerUnreachableError{Node: s.Node.ID, Peer: peer}
	s.deadPeers[peer] = err
	s.event(trace.KindError, "peer node %d unreachable: retransmission budget exhausted", peer)
	// Endpoints are numbered 0..Procs()-1 by every builder; index order
	// keeps the wake sequence deterministic.
	for proc := 0; proc < len(s.eps); proc++ {
		if ep := s.eps[proc]; ep != nil {
			ep.failPeer(peer, err)
		}
	}
}

// DeadPeers returns the peers this node has declared unreachable, in
// ascending node order.
func (s *Stack) DeadPeers() []int {
	var out []int
	for p := range s.deadPeers {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// FailedOps reports operations this stack failed with
// ErrPeerUnreachable.
func (s *Stack) FailedOps() uint64 { return s.failedOps }

// RTOSamples appends every backed-off adaptive timeout (µs) this node's
// go-back-N senders armed after retransmissions, in session order.
func (s *Stack) RTOSamples(dst []float64) []float64 {
	for _, sess := range s.sessOrder {
		for _, r := range sess.rails {
			for l := lane(0); l < numLanes; l++ {
				if snd := r.snd[l]; snd != nil {
					dst = append(dst, snd.RTOSamples()...)
				}
			}
		}
	}
	return dst
}

// LinkStats aggregates the go-back-N counters of every channel session
// between this node and peer, both lanes: the transmitting halves on
// this node (data out plus control out) and the receiving halves (data
// in plus control in).
type LinkStats struct {
	// Transmitting halves on this node toward peer. Recovered counts
	// packets acknowledged only after at least one retransmission — the
	// deliveries the reliability layer actually saved.
	Retransmissions, Timeouts, Recovered, Outstanding, Queued uint64
	// Receiving halves on this node from peer.
	Delivered, Rejected, OutOfOrder, Duplicates uint64
}

// LinkStats sums the reliability counters of every session toward/from
// peer (see LinkStats fields). ChannelStats narrows to one channel.
func (s *Stack) LinkStats(peer int) LinkStats {
	var st LinkStats
	for _, sess := range s.sessOrder {
		if sess.peer != peer {
			continue
		}
		sess.addStats(&st)
	}
	return st
}

// ChannelStats sums the reliability counters of one channel's sessions
// at this node (out and in halves, every rail and lane).
func (s *Stack) ChannelStats(ch ChannelID) LinkStats {
	var st LinkStats
	if sess := s.outSess[ch]; sess != nil {
		sess.addStats(&st)
	}
	if sess := s.inSess[ch]; sess != nil {
		sess.addStats(&st)
	}
	return st
}

func (ps *chanSession) addStats(st *LinkStats) {
	for _, r := range ps.rails {
		for l := lane(0); l < numLanes; l++ {
			if snd := r.snd[l]; snd != nil {
				st.Retransmissions += snd.Retransmissions()
				st.Timeouts += snd.Timeouts()
				st.Recovered += snd.Recovered()
				st.Outstanding += uint64(snd.Outstanding())
				st.Queued += uint64(snd.Queued())
			}
			if rcv := r.rcv[l]; rcv != nil {
				st.Delivered += rcv.Delivered()
				st.Rejected += rcv.Rejected()
				st.OutOfOrder += rcv.OutOfOrder()
				st.Duplicates += rcv.Duplicates()
			}
		}
	}
}

// Sessions reports how many channel sessions this node has materialized
// (out and in halves counted separately).
func (s *Stack) Sessions() int { return len(s.sessOrder) }

// DiscardedBytes reports pushed bytes this node's receive side discarded
// for lack of pushed-buffer space (later re-fetched by pull requests).
func (s *Stack) DiscardedBytes() uint64 { return s.discardedBytes }

// intranode reports whether dst lives on this node.
func (s *Stack) intranode(dst ProcessID) bool { return dst.Node == s.Node.ID }

// nicTrigger reports the user-level doorbell cost (rail 0; rails are
// identical hardware).
func (s *Stack) nicTrigger() sim.Duration { return s.nics[0].TriggerCost() }

// nicKernelTrigger reports the kernel driver transmit path cost.
func (s *Stack) nicKernelTrigger() sim.Duration { return s.nics[0].KernelTriggerCost() }

// translateOrDie resolves a registered user range, panicking on a fault:
// endpoints validate ranges at Send/Recv entry, so a fault here is a bug.
func translateOrDie(space *vm.AddressSpace, addr vm.VirtAddr, n int) vm.ZeroBuffer {
	zb, err := space.Translate(addr, n)
	if err != nil {
		panic(err)
	}
	return zb
}
