package pushpull

import (
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/gbn"
	"pushpull/internal/nic"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
	"pushpull/internal/vm"
)

// Stack is the messaging layer of one node: the endpoints living there,
// plus one go-back-N session per rail toward every peer node reachable
// through the attached NICs.
//
// A node may attach several NICs ("rails"); fragments of one message are
// striped across rails round-robin, realizing the paper's §6 outlook —
// "a more general mechanism to work with multiple network interfaces
// using multiple processors". Per-rail go-back-N keeps each rail in
// order; cross-rail reordering is absorbed by offset-addressed assembly
// and strict message-id receive matching.
type Stack struct {
	Node *smp.Node
	Opts Options

	eps   map[int]*Endpoint
	peers map[int]*peerSession
	nics  []*nic.NIC
	// rxLock serializes reception handlers (paper §2 stage 1: "the
	// system has to restrict that only one user or kernel thread invokes
	// the thread at a time"). Without it, a handler sleeping in a copy
	// while the next frame's handler runs would reenter the go-back-N
	// receiver and misorder in-order traffic.
	rxLock *sim.Resource

	// discardedBytes counts pushed bytes the receive side dropped for
	// lack of pushed-buffer space (re-fetched by the pull phase) — the
	// wire bandwidth the eager push wasted.
	discardedBytes uint64

	// Trace, when set, receives one line per protocol event (used by
	// cmd/pushpull-trace).
	Trace func(format string, args ...any)
	// Rec, when set, receives every protocol event as a structured
	// trace.Event. A nil recorder is valid and records nothing.
	Rec *trace.Recorder
	// Adapter, when set, chooses the internode PushPull BTP per message
	// and receives pull-request feedback (see BTPAdapter).
	Adapter BTPAdapter
}

// NewStack builds the messaging layer for node n. It panics on invalid
// options: stacks are constructed from code, not user input.
func NewStack(n *smp.Node, opts Options) *Stack {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &Stack{
		Node:   n,
		Opts:   opts,
		eps:    make(map[int]*Endpoint),
		peers:  make(map[int]*peerSession),
		rxLock: sim.NewResource(n.Engine, fmt.Sprintf("rxlock/n%d", n.ID)),
	}
}

func (s *Stack) trace(format string, args ...any) {
	if s.Trace != nil {
		s.Trace(format, args...)
	}
}

// SetRecorder attaches a structured trace recorder to the stack and
// propagates it to the attached NICs and go-back-N sessions, so one
// recorder sees the whole node's protocol, link and reliability events.
// Call after the topology is wired (AttachNIC / AddPeer).
func (s *Stack) SetRecorder(rec *trace.Recorder) {
	s.Rec = rec
	for _, nc := range s.nics {
		nc.Rec = rec
	}
	for _, sess := range s.peers {
		for _, r := range sess.rails {
			r.snd.SetTrace(rec, s.Node.ID)
		}
	}
}

// event publishes one structured protocol event (and mirrors it onto the
// printf hook, prefixed with the current virtual time).
func (s *Stack) event(k trace.Kind, format string, args ...any) {
	if s.Trace != nil {
		s.Trace("%v  "+format, append([]any{s.Node.Engine.Now()}, args...)...)
	}
	s.Rec.Recordf(s.Node.Engine.Now(), s.Node.ID, k, format, args...)
}

// NewEndpoint registers a communicating process on this node, bound to
// CPU cpu, and returns its endpoint. The endpoint owns a fresh address
// space.
func (s *Stack) NewEndpoint(proc, cpu int) *Endpoint {
	if _, dup := s.eps[proc]; dup {
		panic(fmt.Sprintf("pushpull: duplicate endpoint %d on node %d", proc, s.Node.ID))
	}
	ep := &Endpoint{
		stack:    s,
		ID:       ProcessID{Node: s.Node.ID, Proc: proc},
		CPU:      cpu,
		Space:    s.Node.NewSpace(fmt.Sprintf("p%d", proc)),
		ring:     newPushedBuffer(s.Node.Engine, s.Opts.PushedBufBytes),
		sendOps:  make(map[sendKey]*sendOp),
		nextMsg:  make(map[ChannelID]uint64),
		nextBind: make(map[ChannelID]uint64),
	}
	s.eps[proc] = ep
	return ep
}

// Endpoint returns the endpoint of process proc, or nil.
func (s *Stack) Endpoint(proc int) *Endpoint { return s.eps[proc] }

// AttachNIC adds a network interface (rail) and installs the reception
// handler. Call once per rail, before AddPeer.
func (s *Stack) AttachNIC(nc *nic.NIC) {
	railIdx := len(s.nics)
	s.nics = append(s.nics, nc)
	nc.SetReceiveHandler(func(t *smp.Thread, f ether.Frame) {
		s.handleFrame(railIdx, t, f)
	})
}

// NIC returns rail 0's NIC (nil for an intranode-only stack); Rails
// reports the rail count.
func (s *Stack) NIC() *nic.NIC {
	if len(s.nics) == 0 {
		return nil
	}
	return s.nics[0]
}

// Rails reports the number of attached NICs.
func (s *Stack) Rails() int { return len(s.nics) }

// AddPeer creates the go-back-N sessions (one per rail) toward peer
// node. All NICs must be attached first.
func (s *Stack) AddPeer(peerNode int) {
	if len(s.nics) == 0 {
		panic("pushpull: AddPeer before AttachNIC")
	}
	if _, dup := s.peers[peerNode]; dup {
		panic(fmt.Sprintf("pushpull: duplicate peer %d on node %d", peerNode, s.Node.ID))
	}
	sess := &peerSession{stack: s, peer: peerNode}
	for i := range s.nics {
		r := &rail{sess: sess, idx: i, nic: s.nics[i]}
		r.snd = gbn.NewSender(s.Node.Engine, s.Opts.GBN, r.transmitPacket)
		r.rcv = gbn.NewReceiver(sess.deliverPacket, r.transmitAck)
		sess.rails = append(sess.rails, r)
	}
	s.peers[peerNode] = sess
}

// Session returns the go-back-N halves of rail 0 toward peer, for
// statistics (RailSession gives a specific rail).
func (s *Stack) Session(peer int) (*gbn.Sender, *gbn.Receiver) {
	return s.RailSession(peer, 0)
}

// RailSession returns the go-back-N halves of one rail toward peer.
func (s *Stack) RailSession(peer, railIdx int) (*gbn.Sender, *gbn.Receiver) {
	sess := s.peers[peer]
	if sess == nil || railIdx >= len(sess.rails) {
		return nil, nil
	}
	r := sess.rails[railIdx]
	return r.snd, r.rcv
}

// handleFrame is the reception handler (paper §2 stages 3-4): it runs in
// interrupt or polling context on the CPU the node's policy chose.
func (s *Stack) handleFrame(railIdx int, t *smp.Thread, f ether.Frame) {
	sess := s.peers[f.Src]
	if sess == nil {
		s.event(trace.KindError, "frame from unknown peer %d dropped", f.Src)
		return
	}
	r := sess.rails[railIdx]
	wm, ok := f.Payload.(wireMsg)
	if !ok {
		panic(fmt.Sprintf("pushpull: node %d received foreign payload %T", s.Node.ID, f.Payload))
	}
	if wm.isAck {
		// Link acks touch only the go-back-N sender and never sleep; they
		// bypass the handler lock like a real driver's ack fast path.
		r.snd.OnAck(wm.ack.ack)
		return
	}
	pkt := wm.pkt.(gbn.Packet)
	s.rxLock.Acquire(t.P)
	sess.curT = t
	r.rcv.OnPacket(pkt)
	sess.curT = nil
	s.rxLock.Release()
}

// peerSession is one node pair's reliable transport: one go-back-N
// session per rail, multiplexing every channel between the two nodes.
type peerSession struct {
	stack *Stack
	peer  int
	rails []*rail
	next  int // round-robin rail cursor
	// curT is the handler thread currently delivering a packet; the
	// go-back-N deliver callback has no thread parameter, and the
	// simulation is single-threaded, so passing it through the session
	// is safe.
	curT *smp.Thread
}

// rail is one NIC's reliable lane toward the peer.
type rail struct {
	sess *peerSession
	idx  int
	nic  *nic.NIC
	snd  *gbn.Sender
	rcv  *gbn.Receiver
}

// send stripes a protocol packet onto the next rail.
func (ps *peerSession) send(bytes int, data any) {
	r := ps.rails[ps.next]
	ps.next = (ps.next + 1) % len(ps.rails)
	r.snd.Send(bytes, data)
}

// transmitPacket hands a go-back-N packet to this rail's NIC. It must
// not block the caller (it may run in handler or timer context), so the
// enqueue — which can wait for outgoing-FIFO space — happens on a helper
// process.
func (r *rail) transmitPacket(pkt gbn.Packet) {
	preloaded := false
	switch d := pkt.Data.(type) {
	case fragMsg:
		preloaded = d.preloaded
	case pullReqMsg:
		preloaded = true // built directly in the FIFO by the kernel
	}
	s := r.sess.stack
	frame := ether.Frame{
		Src:          s.Node.ID,
		Dst:          r.sess.peer,
		PayloadBytes: pkt.Bytes,
		Payload:      wireMsg{pkt: pkt},
	}
	s.Node.Engine.Go(fmt.Sprintf("tx/n%d->n%d.r%d", s.Node.ID, r.sess.peer, r.idx), func(p *sim.Process) {
		r.nic.Send(p, nic.TxRequest{Frame: frame, Preloaded: preloaded})
	})
}

// transmitAck sends a raw cumulative link acknowledgement on this rail
// (not itself reliable; a lost ack is recovered by the data
// retransmission path).
func (r *rail) transmitAck(ack uint32) {
	s := r.sess.stack
	frame := ether.Frame{
		Src:          s.Node.ID,
		Dst:          r.sess.peer,
		PayloadBytes: linkAckMsg{}.wireBytes(),
		Payload:      wireMsg{isAck: true, ack: linkAckMsg{ack: ack}},
	}
	s.Node.Engine.Go(fmt.Sprintf("tx-ack/n%d->n%d.r%d", s.Node.ID, r.sess.peer, r.idx), func(p *sim.Process) {
		r.nic.Send(p, nic.TxRequest{Frame: frame, Preloaded: true})
	})
}

// deliverPacket is the go-back-N upward delivery: an in-order protocol
// packet for this node. It reports whether the packet could be consumed;
// false (no pushed-buffer space) makes go-back-N treat it as lost.
func (ps *peerSession) deliverPacket(pkt gbn.Packet) bool {
	t := ps.curT
	switch m := pkt.Data.(type) {
	case fragMsg:
		return ps.stack.deliverFrag(t, m)
	case pullReqMsg:
		ps.stack.servePull(t, m)
		return true
	default:
		panic(fmt.Sprintf("pushpull: unknown packet payload %T", pkt.Data))
	}
}

// DiscardedBytes reports pushed bytes this node's receive side discarded
// for lack of pushed-buffer space (later re-fetched by pull requests).
func (s *Stack) DiscardedBytes() uint64 { return s.discardedBytes }

// intranode reports whether dst lives on this node.
func (s *Stack) intranode(dst ProcessID) bool { return dst.Node == s.Node.ID }

// session returns the peer session toward node, panicking if the topology
// was never wired (a configuration bug, not a runtime condition).
func (s *Stack) session(node int) *peerSession {
	sess := s.peers[node]
	if sess == nil {
		panic(fmt.Sprintf("pushpull: node %d has no session toward node %d", s.Node.ID, node))
	}
	return sess
}

// nicTrigger reports the user-level doorbell cost (rail 0; rails are
// identical hardware).
func (s *Stack) nicTrigger() sim.Duration { return s.nics[0].TriggerCost() }

// nicKernelTrigger reports the kernel driver transmit path cost.
func (s *Stack) nicKernelTrigger() sim.Duration { return s.nics[0].KernelTriggerCost() }

// translateOrDie resolves a registered user range, panicking on a fault:
// endpoints validate ranges at Send/Recv entry, so a fault here is a bug.
func translateOrDie(space *vm.AddressSpace, addr vm.VirtAddr, n int) vm.ZeroBuffer {
	zb, err := space.Translate(addr, n)
	if err != nil {
		panic(err)
	}
	return zb
}
