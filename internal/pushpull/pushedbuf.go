package pushpull

import "pushpull/internal/sim"

// pushedBuffer is the per-endpoint staging area for pushed bytes whose
// destination is not yet known ("the buffer queue and pushed buffer" of
// the paper's Figure 1).
//
// Intranode it is byte-addressed: senders reserve exactly the bytes they
// push, blocking while the buffer is full (the kernel throttles them, so
// intranode pushes never overflow). Internode the kernel parks each
// arriving fragment in a fixed PushedSlotBytes slot — so a 4 KB buffer
// holds two fragments — and an arrival finding no free slot is refused,
// which go-back-N treats as loss. That refusal is the paper's Fig. 6
// Push-All collapse.
type pushedBuffer struct {
	capBytes  int
	usedBytes int
	slots     int
	usedSlots int
	space     *sim.Cond
}

func newPushedBuffer(e *sim.Engine, capBytes int) *pushedBuffer {
	return &pushedBuffer{
		capBytes: capBytes,
		slots:    capBytes / PushedSlotBytes,
		space:    sim.NewCond(e),
	}
}

// reserveBytes blocks the calling process until n bytes fit, then takes
// them (intranode path).
func (b *pushedBuffer) reserveBytes(p *sim.Process, n int) {
	b.space.WaitFor(p, func() bool { return b.usedBytes+n <= b.capBytes })
	b.usedBytes += n
}

// releaseBytes returns intranode staging bytes.
func (b *pushedBuffer) releaseBytes(n int) {
	if n > b.usedBytes {
		panic("pushpull: pushed buffer byte accounting underflow")
	}
	b.usedBytes -= n
	b.space.Broadcast()
}

// tryReserveSlot takes one internode fragment slot if available.
func (b *pushedBuffer) tryReserveSlot() bool {
	if b.usedSlots >= b.slots {
		return false
	}
	b.usedSlots++
	return true
}

// releaseSlot returns one internode fragment slot.
func (b *pushedBuffer) releaseSlot() {
	if b.usedSlots <= 0 {
		panic("pushpull: pushed buffer slot accounting underflow")
	}
	b.usedSlots--
	b.space.Broadcast()
}

// bytesUsed reports current intranode byte occupancy (for invariants).
func (b *pushedBuffer) bytesUsed() int { return b.usedBytes }

// slotsUsed reports current internode slot occupancy (for invariants).
func (b *pushedBuffer) slotsUsed() int { return b.usedSlots }
