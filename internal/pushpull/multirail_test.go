package pushpull_test

import (
	"bytes"
	"testing"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// railCluster builds a two-node cluster with the given number of NICs per
// node.
func railCluster(opts pushpull.Options, rails int) *cluster.Cluster {
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	cfg.Rails = rails
	return cluster.New(cfg)
}

func TestMultiRailIntegrity(t *testing.T) {
	for _, rails := range []int{1, 2, 4} {
		opts := pushpull.DefaultOptions()
		opts.PushedBufBytes = 64 << 10
		c := railCluster(opts, rails)
		data := pattern(40000, byte(rails))
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Errorf("%d rails: 40KB transfer corrupted", rails)
		}
	}
}

func TestMultiRailStripesAcrossNICs(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 64 << 10
	c := railCluster(opts, 2)
	data := pattern(30000, 9)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("transfer corrupted")
	}
	// Both of node 0's NICs must have carried data frames.
	for r := 0; r < 2; r++ {
		if c.NICs[r].TxFrames() < 3 {
			t.Errorf("rail %d carried only %d frames; striping inactive", r, c.NICs[r].TxFrames())
		}
	}
}

func TestMultiRailSpeedsUpLargeTransfers(t *testing.T) {
	elapsed := func(rails int) sim.Time {
		opts := pushpull.DefaultOptions()
		opts.PushedBufBytes = 64 << 10
		c := railCluster(opts, rails)
		data := pattern(120000, 1)
		_, done := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		return done
	}
	one, four := elapsed(1), elapsed(4)
	speedup := float64(one) / float64(four)
	if speedup < 2.5 {
		t.Errorf("4-rail speedup on 120KB = %.2fx, want > 2.5x (wire-bound striping)", speedup)
	}
}

func TestMultiRailFIFOAcrossReorderingRails(t *testing.T) {
	// Many back-to-back messages striped over rails: fragments of later
	// messages overtake earlier ones on other rails, but channel FIFO
	// order must hold.
	opts := pushpull.DefaultOptions()
	opts.PushedBufBytes = 256 << 10
	c := railCluster(opts, 3)
	sender := c.Endpoint(0, 0)
	receiver := c.Endpoint(1, 0)
	const k = 12
	sizes := []int{9000, 40, 2000, 17000, 8, 1484, 760, 5000, 4, 3000, 12000, 100}
	var sent [][]byte
	addrs := make([]vm.VirtAddr, k)
	for i := 0; i < k; i++ {
		sent = append(sent, pattern(sizes[i], byte(i*3+1)))
		addrs[i] = sender.Alloc(sizes[i])
	}
	var got [][]byte
	c.Spawn(0, 0, "sender", func(th *smp.Thread) {
		for i := 0; i < k; i++ {
			if err := sender.Send(th, receiver.ID, addrs[i], sent[i]); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		}
	})
	c.Spawn(1, 0, "receiver", func(th *smp.Thread) {
		dst := receiver.Alloc(20000)
		for i := 0; i < k; i++ {
			b, err := receiver.Recv(th, sender.ID, dst, 20000)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, b)
		}
	})
	c.Run()
	if len(got) != k {
		t.Fatalf("received %d of %d", len(got), k)
	}
	for i := range sent {
		if !bytes.Equal(got[i], sent[i]) {
			t.Errorf("message %d: FIFO order or content broken (%d vs %d bytes)", i, len(got[i]), len(sent[i]))
		}
	}
}

func TestMultiRailRequiresBackToBack(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("multi-rail with a switch did not panic")
		}
	}()
	cfg := cluster.DefaultConfig()
	cfg.Rails = 2
	cfg.UseSwitch = true
	cluster.New(cfg)
}

func TestMultiRailLateReceiverStillRecovers(t *testing.T) {
	// Push-All overflow semantics must survive striping: drops on one
	// rail recover independently.
	opts := pushpull.DefaultOptions()
	opts.Mode = pushpull.PushAll
	opts.PushedBufBytes = 4096
	c := railCluster(opts, 2)
	data := pattern(9000, 5)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, sim.Duration(sim.Millisecond))
	if !bytes.Equal(got, data) {
		t.Fatal("striped overflowed transfer corrupted")
	}
}
