package pushpull_test

import (
	"bytes"
	"testing"

	"pushpull/internal/cluster"
	"pushpull/internal/gbn"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// Failure injection: every bounded hardware queue in the path — the
// NIC's incoming ring, the switch's output queues, the go-back-N window
// — is shrunk until it drops, and the transfer must still complete
// intact.

func TestRxRingOverflowRecovered(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.NIC.RxRingFrames = 2 // a 40 KB blast overruns two ring slots
	// A slow polling receiver: frames arrive every ~122 µs but are only
	// drained once per millisecond, so the ring backs up and drops.
	cfg.Policy = smp.Polling
	cfg.SMP.PollPeriod = sim.Millisecond
	cfg.Opts = fastRTOOptions(pushpull.PushAll)
	cfg.Opts.PushedBufBytes = 256 << 10
	c := cluster.New(cfg)
	data := pattern(40000, 5)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("received bytes differ")
	}
	if c.NICs[1].RxDropped() == 0 {
		t.Error("two-slot rx ring dropped nothing; the overflow path was not exercised")
	}
	if c.Stacks[0].LinkStats(1).Retransmissions == 0 {
		t.Error("rx-ring drops caused no retransmissions")
	}
}

func TestSwitchQueueOverflowRecovered(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.UseSwitch = true
	cfg.SwitchQueueFrames = 2
	cfg.Opts = fastRTOOptions(pushpull.PushPull)
	cfg.Opts.PushedBufBytes = 64 << 10
	c := cluster.New(cfg)

	// Three nodes blast node 0 at once: its switch port queue overflows.
	const size = 20000
	got := make([][]byte, 4)
	want := make([][]byte, 4)
	receiver := c.Endpoint(0, 0)
	for i := 1; i < 4; i++ {
		i := i
		sender := c.Endpoint(i, 0)
		want[i] = pattern(size, byte(i))
		src := sender.Alloc(size)
		c.Spawn(i, 0, "sender", func(th *smp.Thread) {
			if err := sender.Send(th, receiver.ID, src, want[i]); err != nil {
				t.Errorf("send %d: %v", i, err)
			}
		})
	}
	c.Spawn(0, 0, "receiver", func(th *smp.Thread) {
		for i := 1; i < 4; i++ {
			dst := receiver.Alloc(size)
			b, err := receiver.Recv(th, c.Endpoint(i, 0).ID, dst, size)
			if err != nil {
				t.Errorf("recv from %d: %v", i, err)
				return
			}
			got[i] = b
		}
	})
	c.Run()
	for i := 1; i < 4; i++ {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("stream from node %d corrupted", i)
		}
	}
	if c.Switch.Dropped() == 0 {
		t.Error("two-frame switch queues dropped nothing; the overflow path was not exercised")
	}
}

func TestWindowOneStillDelivers(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.GBN = gbn.Config{Window: 1, RTO: 2 * sim.Millisecond}
	c := internodeCluster(opts)
	data := pattern(30000, 9)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("received bytes differ with window 1")
	}
}

func TestWindowOneWithLossRecovered(t *testing.T) {
	opts := pushpull.DefaultOptions()
	opts.GBN = gbn.Config{Window: 1, RTO: 2 * sim.Millisecond}
	cfg := cluster.DefaultConfig()
	cfg.Opts = opts
	cfg.Net.LossRate = 0.05
	cfg.Seed = 11
	c := cluster.New(cfg)
	data := pattern(15000, 3)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("received bytes differ with window 1 and 5% loss")
	}
}

// Every bounded queue at once: lossy wire, tiny rx ring, tiny switch
// queues, small pushed buffer — the full gauntlet.
func TestFailureGauntlet(t *testing.T) {
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 3
	cfg.UseSwitch = true
	cfg.SwitchQueueFrames = 4
	cfg.NIC.RxRingFrames = 4
	cfg.Net.LossRate = 0.02
	cfg.Seed = 23
	cfg.Opts = fastRTOOptions(pushpull.PushPull)
	cfg.Opts.PushedBufBytes = 4096
	c := cluster.New(cfg)

	const size = 25000
	a, b := c.Endpoint(1, 0), c.Endpoint(2, 0)
	wantAB := pattern(size, 1)
	wantBA := pattern(size, 2)
	srcA, dstA := a.Alloc(size), a.Alloc(size)
	srcB, dstB := b.Alloc(size), b.Alloc(size)
	var gotAB, gotBA []byte
	c.Spawn(1, 0, "a", func(th *smp.Thread) {
		if err := a.Send(th, b.ID, srcA, wantAB); err != nil {
			t.Errorf("a send: %v", err)
		}
		g, err := a.Recv(th, b.ID, dstA, size)
		if err != nil {
			t.Errorf("a recv: %v", err)
			return
		}
		gotBA = g
	})
	c.Spawn(2, 0, "b", func(th *smp.Thread) {
		if err := b.Send(th, a.ID, srcB, wantBA); err != nil {
			t.Errorf("b send: %v", err)
		}
		g, err := b.Recv(th, a.ID, dstB, size)
		if err != nil {
			t.Errorf("b recv: %v", err)
			return
		}
		gotAB = g
	})
	c.Run()
	if !bytes.Equal(gotAB, wantAB) || !bytes.Equal(gotBA, wantBA) {
		t.Error("bidirectional transfer through the gauntlet corrupted data")
	}
}
