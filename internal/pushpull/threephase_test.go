package pushpull_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

func threePhaseOptions() pushpull.Options {
	opts := pushpull.DefaultOptions()
	opts.Mode = pushpull.ThreePhase
	// The classical protocol predates the paper's optimizations.
	opts.MaskTranslation = false
	opts.OverlapAck = false
	opts.UserTrigger = false
	return opts
}

func TestThreePhaseIntegrityInternode(t *testing.T) {
	for _, n := range []int{1, 16, 100, 1480, 1500, 3000, 8192, 40000} {
		c := internodeCluster(threePhaseOptions())
		data := pattern(n, 7)
		got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Errorf("size %d: received bytes differ", n)
		}
	}
}

func TestThreePhaseIntegrityIntranode(t *testing.T) {
	for _, n := range []int{1, 16, 4096, 40000} {
		c := intranodeCluster(threePhaseOptions())
		data := pattern(n, 3)
		got, _ := runTransfer(t, c, 0, 0, 0, 1, data, 0, 0)
		if !bytes.Equal(got, data) {
			t.Errorf("size %d: received bytes differ", n)
		}
	}
}

// The paper's motivation: the three-phase handshake penalizes short
// messages, which Push-Pull avoids by pushing eagerly. A short internode
// message must complete strictly earlier under full-opt Push-Pull.
func TestThreePhaseHandshakePenaltyShortMessages(t *testing.T) {
	latency := func(opts pushpull.Options) sim.Time {
		c := internodeCluster(opts)
		_, done := runTransfer(t, c, 0, 0, 1, 0, pattern(64, 1), 0, 0)
		return done
	}
	tp := latency(threePhaseOptions())
	pp := latency(pushpull.DefaultOptions())
	if pp >= tp {
		t.Errorf("push-pull (%v) not faster than three-phase (%v) for 64 B", pp, tp)
	}
	// The gap must be at least one wire round trip of a minimum frame —
	// that is what the handshake costs.
	minGap := cluster.DefaultConfig().Net.WireTime(0) * 2
	if tp.Sub(pp) < minGap {
		t.Errorf("handshake gap %v smaller than a minimum-frame round trip %v", tp.Sub(pp), minGap)
	}
}

// Three-phase sends are synchronous: with the receiver arriving late, the
// sender cannot return from Send before the receiver has posted its
// receive (internode: the CTS cannot have been sent earlier).
func TestThreePhaseSenderBlocksUntilReceiverPosts(t *testing.T) {
	const recvDelay = 2 * sim.Millisecond
	for _, intra := range []bool{false, true} {
		var c *cluster.Cluster
		rNode, rProc := 1, 0
		if intra {
			c = intranodeCluster(threePhaseOptions())
			rNode, rProc = 0, 1
		} else {
			c = internodeCluster(threePhaseOptions())
		}
		sender := c.Endpoint(0, 0)
		receiver := c.Endpoint(rNode, rProc)
		data := pattern(5000, 9)
		src := sender.Alloc(len(data))
		dst := receiver.Alloc(len(data))
		var sendReturned sim.Time
		c.Nodes[0].Spawn("sender", sender.CPU, func(th *smp.Thread) {
			if err := sender.Send(th, receiver.ID, src, data); err != nil {
				t.Errorf("send: %v", err)
			}
			sendReturned = th.Now()
		})
		c.Nodes[rNode].SpawnAt(recvDelay, "receiver", receiver.CPU, func(th *smp.Thread) {
			if _, err := receiver.Recv(th, sender.ID, dst, len(data)); err != nil {
				t.Errorf("recv: %v", err)
			}
		})
		c.Run()
		if sendReturned < sim.Time(recvDelay) {
			t.Errorf("intra=%v: three-phase send returned at %v, before the receive was posted at %v",
				intra, sendReturned, sim.Time(recvDelay))
		}
	}
}

// The wire never carries message data before the CTS: every data-bearing
// event must follow the pull request in the trace.
func TestThreePhaseNoDataBeforeCTS(t *testing.T) {
	c := internodeCluster(threePhaseOptions())
	rec := trace.NewRecorder(0)
	c.SetRecorder(rec)
	data := pattern(4000, 2)
	got, _ := runTransfer(t, c, 0, 0, 1, 0, data, 0, 0)
	if !bytes.Equal(got, data) {
		t.Fatal("received bytes differ")
	}

	reqs := rec.OfKind(trace.KindPullReq)
	if len(reqs) != 1 {
		t.Fatalf("want exactly one CTS, traced %d", len(reqs))
	}
	cts := reqs[0].Seq
	for _, ev := range rec.OfKind(trace.KindDirect) {
		if ev.Seq < cts {
			t.Errorf("data copied to destination before CTS: %v", ev)
		}
	}
	if n := rec.Count(trace.KindPush); n != 0 {
		t.Errorf("three-phase pushed %d data fragments; want none", n)
	}
	if rec.Count(trace.KindPullGrant) == 0 {
		t.Error("no pull-grant event traced")
	}
}

// Property: three-phase delivers any payload intact for any size and any
// receiver timing, inter- and intranode.
func TestThreePhaseIntegrityProperty(t *testing.T) {
	f := func(sz uint16, delayUS uint16, seed byte, intra bool) bool {
		n := int(sz)%20000 + 1
		var c *cluster.Cluster
		rNode, rProc := 1, 0
		if intra {
			c = intranodeCluster(threePhaseOptions())
			rNode, rProc = 0, 1
		} else {
			c = internodeCluster(threePhaseOptions())
		}
		data := pattern(n, seed)
		got, _ := runTransfer(t, c, 0, 0, rNode, rProc, data,
			0, sim.Duration(delayUS%5000)*sim.Microsecond)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
