package pushpull

import (
	"fmt"

	"pushpull/internal/gbn"
)

// Mode selects the messaging mechanism under test.
type Mode int

// Messaging mechanisms evaluated in the paper.
const (
	// PushPull pushes BTP bytes eagerly and pulls the remainder.
	PushPull Mode = iota
	// PushZero pushes nothing: a zero-byte announcement plus pull
	// (the paper's rendezvous/three-phase stand-in).
	PushZero
	// PushAll pushes the entire message eagerly.
	PushAll
	// ThreePhase is the classical three-phase handshake protocol the
	// paper's introduction argues against: request-to-send, clear-to-
	// send, then the data — with the sender synchronously parked on the
	// handshake and no optimizations applied. A historical baseline.
	ThreePhase
)

func (m Mode) String() string {
	switch m {
	case PushPull:
		return "push-pull"
	case PushZero:
		return "push-zero"
	case PushAll:
		return "push-all"
	case ThreePhase:
		return "three-phase"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures a Stack's protocol behaviour. The zero value is not
// useful; start from DefaultOptions.
type Options struct {
	Mode Mode

	// BTP is the internode Bytes-To-Push (paper §5.2: 760 = 80+680).
	BTP int
	// BTP1 and BTP2 split BTP when OverlapAck is on (paper: 80 and 680).
	BTP1, BTP2 int
	// IntraBTP is the intranode Bytes-To-Push (paper §5.1: 16).
	IntraBTP int

	// MaskTranslation schedules source-buffer address translation after
	// transmission has been initiated (§4.3). Requires UserTrigger.
	MaskTranslation bool
	// OverlapAck splits the pushed bytes into BTP1+BTP2 so the pull
	// request overlaps the second fragment's transmission (§4.4).
	OverlapAck bool
	// UserTrigger uses the user-mapped NIC FIFO and doorbell for the
	// pushed fragments instead of a system call + kernel DMA.
	UserTrigger bool

	// PullLocal pins the intranode pull kernel thread to the receiving
	// process's CPU instead of the least loaded one — the design choice
	// §4.1 argues against; kept as an ablation knob.
	PullLocal bool

	// DisableZeroBuffer replaces the cross-space zero buffer with the
	// classical shared-segment transfer: every intranode byte is staged
	// through kernel memory and copied twice. Ablation for §4.2.
	DisableZeroBuffer bool

	// PushedBufBytes sizes each endpoint's pushed buffer. Intranode it
	// is a byte-addressed staging buffer; internode the kernel stores
	// arriving fragments in fixed 2 KB ring slots (see PushedSlotBytes).
	PushedBufBytes int

	// GBN configures the go-back-N link sessions.
	GBN gbn.Config
}

// DefaultOptions is the paper's fully optimized Push-Pull configuration.
func DefaultOptions() Options {
	return Options{
		Mode:            PushPull,
		BTP:             760,
		BTP1:            80,
		BTP2:            680,
		IntraBTP:        16,
		MaskTranslation: true,
		OverlapAck:      true,
		UserTrigger:     true,
		PushedBufBytes:  4096,
		GBN:             gbn.DefaultConfig(),
	}
}

// Validate reports configuration errors.
func (o Options) Validate() error {
	if o.BTP < 0 || o.BTP1 < 0 || o.BTP2 < 0 || o.IntraBTP < 0 {
		return fmt.Errorf("pushpull: negative BTP")
	}
	if o.MaskTranslation && !o.UserTrigger {
		return fmt.Errorf("pushpull: MaskTranslation requires UserTrigger (the pushed bytes must reach the NIC without translation)")
	}
	if o.PushedBufBytes <= 0 {
		return fmt.Errorf("pushpull: PushedBufBytes must be positive")
	}
	if err := o.GBN.Validate(); err != nil {
		return fmt.Errorf("pushpull: %w", err)
	}
	return nil
}

// interBTP reports how many leading bytes of a total-byte message are
// pushed eagerly on the internode path.
func (o Options) interBTP(total int) int {
	var btp int
	switch o.Mode {
	case PushZero, ThreePhase:
		return 0
	case PushAll:
		return total
	case PushPull:
		if o.OverlapAck {
			btp = o.BTP1 + o.BTP2
		} else {
			btp = o.BTP
		}
	}
	if btp > total {
		btp = total
	}
	return btp
}

// intraBTP reports how many leading bytes are pushed on the intranode
// path.
func (o Options) intraBTP(total int) int {
	var btp int
	switch o.Mode {
	case PushZero, ThreePhase:
		return 0
	case PushAll:
		return total
	case PushPull:
		btp = o.IntraBTP
	}
	if btp > total {
		btp = total
	}
	return btp
}
