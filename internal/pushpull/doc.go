// Package pushpull implements Push-Pull Messaging (Wong & Wang, ICPP
// 1999): a high-performance message-passing protocol for clusters of SMP
// machines, together with its two baselines (Push-Zero and Push-All) and
// its three optimizations (Cross-Space Zero Buffer, Address Translation
// Overhead Masking, Push-and-Acknowledge Overlapping).
//
// # Protocol
//
// A send first *pushes* the leading BTP (Bytes-To-Push) bytes toward the
// receiver. When the receive operation has been posted and the pushed
// fragment has arrived, the receive side *pulls* the remainder by sending
// an acknowledgement that doubles as a pull request; the sender answers
// with the rest of the message. Messages no longer than BTP complete in
// the push phase alone, so short transfers avoid the rendezvous round
// trip entirely, while long transfers never overflow intermediate buffers
// — the two properties the paper combines from eager and three-phase
// protocols.
//
//   - Push-Zero (BTP = 0) degenerates to a rendezvous / three-phase
//     protocol: a zero-byte announcement, then pull.
//   - Push-All (BTP = message length) degenerates to a fully eager
//     protocol that stakes everything on receiver buffering.
//
// # Optimizations
//
//   - Cross-Space Zero Buffer: buffers are registered as scatter lists of
//     physical (address, length) pairs so a kernel thread (intranode) or
//     the reception handler (internode) moves data straight into the
//     destination user buffer — one copy, no shared-segment double copy.
//   - Address Translation Overhead Masking: the pushed bytes are copied
//     into the NIC FIFO from user space (mapped control registers), so
//     transmission starts before the source buffer is translated; the
//     translation then overlaps wire time instead of preceding it.
//   - Push-and-Acknowledge Overlapping: BTP is split into BTP(1)+BTP(2);
//     the receiver's pull request is sent as soon as the first fragment
//     arrives and overlaps the second fragment's transmission, hiding the
//     acknowledgement latency.
//
// # Transport
//
// Every directed channel (sender→receiver process pair) owns its own
// go-back-N sessions, split into three lanes: eager pushed fragments
// (the optimistic traffic a full pushed buffer may refuse), pull-phase
// fragments (receiver-requested, never refused), and control (pull
// requests). The split means a refused fully-eager fragment stalls only
// its own channel's eager lane — it can never sit in front of another
// channel's traffic, nor in front of the pull data that frees the
// pushed buffer, which is what used to turn the Fig. 6 collapse into a
// permanent livelock on the old shared per-node-pair stream.
//
// Receive matching is lane-FIFO per (channel, tag), with AnySource and
// AnyTag wildcards; zero-length messages carry only their envelope.
//
// # Use
//
// This package is the protocol engine; applications program against the
// public comm package (package comm at the repository root), which
// wraps Endpoints in per-channel handles, managed staging buffers and
// the unified Op request type. Building blocks here: a Stack per node,
// Endpoints (one per communicating process), stacks connected either
// intranode (same node) or through NIC/link pairs (see package cluster
// for assembly). All calls take the calling smp.Thread, which is
// charged the CPU time the corresponding protocol stage costs on the
// simulated machine.
package pushpull
