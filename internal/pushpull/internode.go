package pushpull

import (
	"fmt"

	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// sendInter is the internode send path. With the user-level trigger the
// pushed fragments are PIO-copied into the NIC's outgoing FIFO from user
// space — no system call, no translation — and the source translation is
// either masked (scheduled after transmission starts, §4.3) or paid up
// front. Push-and-Acknowledge Overlapping (§4.4) splits the pushed bytes
// into BTP(1)+BTP(2) so the receiver's pull request overlaps the second
// fragment's wire time. Every fragment rides the channel's own data-lane
// go-back-N session.
func (s *Stack) sendInter(t *smp.Thread, ep *Endpoint, ch ChannelID, msgID uint64, addr vmAddr, data []byte, so SendOptions, laneSeq uint64) {
	if s.Opts.Mode == ThreePhase {
		s.sendInterThreePhase(t, ep, ch, msgID, addr, data, so, laneSeq)
		return
	}
	cfg := s.Node.Cfg
	opts := s.Opts
	total := len(data)
	btp := opts.interBTP(total)
	if so.BTP >= 0 && opts.Mode == PushPull {
		btp = so.BTP
	} else if s.Adapter != nil && opts.Mode == PushPull {
		btp = s.Adapter.BTP(ch, total)
	}
	if btp < 0 {
		btp = 0
	}
	if btp > total {
		btp = total
	}
	sess := s.outSession(ch)

	t.Exec(cfg.CallOverhead)
	if !opts.UserTrigger {
		t.Exec(cfg.SyscallEntry)
	}
	t.Exec(cfg.QueueOp) // register the send operation
	s.event(trace.KindSend, "%v#%d send %dB internode, push %dB", ch, msgID, total, btp)

	op := &sendOp{ch: ch, msgID: msgID, tag: so.Tag, addr: addr, data: data, pushed: btp, start: t.Now()}
	ep.sendOps[sendKey{ch, msgID}] = op

	translated := total == 0 // nothing to translate for an empty message
	translate := func() {
		translated = true
		cost := ep.Space.TranslateCost(addr, total)
		op.srcReadyAt = t.Now().Add(cost)
		t.Exec(cost)
		op.srcZB = translateOrDie(ep.Space, addr, total)
	}
	if !opts.MaskTranslation && total > 0 {
		// Unmasked: find out physical addresses before any transmission.
		translate()
	}

	// Push phase. Fragment the pushed bytes: BTP(1)+BTP(2) when
	// overlapping, one run otherwise; each run is further split at the
	// MTU. Push-All PIO-copies only its first fragment; the rest DMA
	// from host memory and therefore need the translation first.
	runs := pushRuns(opts, btp, total)
	pioBudget := btp
	if opts.Mode == PushAll {
		if pioBudget > MaxFragData {
			pioBudget = MaxFragData
		}
	}
	off := 0
	for _, run := range runs {
		if run == 0 {
			// Empty first run: transmit a bare announcement so the pull
			// request is triggered as early as possible.
			ann := fragMsg{ch: ch, msgID: msgID, tag: so.Tag, laneSeq: laneSeq, total: total, pushTotal: btp, preloaded: true}
			if opts.UserTrigger {
				t.Exec(s.nicTrigger())
			} else {
				t.Exec(s.nicKernelTrigger())
			}
			sess.send(laneEager, ann.wireBytes(), ann)
			continue
		}
		for run > 0 {
			n := run
			if n > MaxFragData {
				n = MaxFragData
			}
			frag := fragMsg{
				ch:        ch,
				msgID:     msgID,
				tag:       so.Tag,
				laneSeq:   laneSeq,
				offset:    off,
				data:      data[off : off+n],
				total:     total,
				pushTotal: btp,
			}
			if opts.UserTrigger && off < pioBudget {
				// Copy into the mapped FIFO and ring the doorbell from
				// user space.
				t.PIO(frag.wireBytes())
				t.Exec(s.nicTrigger())
				frag.preloaded = true
			} else if opts.UserTrigger {
				// Descriptor queued through the mapped ring (Push-All's
				// later fragments DMA from host memory).
				t.Exec(s.nicTrigger())
			} else {
				// Kernel driver transmit path: per-frame descriptor and
				// ring work the user-level trigger eliminates.
				t.Exec(s.nicKernelTrigger())
			}
			if opts.Mode == PushAll && off+n > pioBudget && !translated {
				// Push-All cannot push everything through the FIFO: the
				// remaining fragments DMA from the user buffer, so the
				// translation must happen now, hidden only by the first
				// fragment's wire time.
				translate()
			}
			s.event(trace.KindPush, "%v#%d push frag [%d:%d) preloaded=%v", ch, msgID, frag.offset, frag.offset+n, frag.preloaded)
			sess.send(laneEager, frag.wireBytes(), frag)
			off += n
			run -= n
		}
	}
	if btp == 0 {
		// Pushing nothing (Push-Zero, a zero-length message, or Push-Pull
		// swept down to BTP=0): the push phase transfers no data, but the
		// announcement frame still occupies the wire (the paper's point
		// about Push-Zero wasting bandwidth in the early-receiver test).
		ann := fragMsg{ch: ch, msgID: msgID, tag: so.Tag, laneSeq: laneSeq, total: total, pushTotal: 0, preloaded: true}
		if opts.UserTrigger {
			t.Exec(s.nicTrigger())
		} else {
			t.Exec(s.nicKernelTrigger())
		}
		sess.send(laneEager, ann.wireBytes(), ann)
	}

	if !translated {
		// Masked: translation happens after transmission was initiated,
		// overlapping the wire time of the pushed fragments.
		translate()
	}

	if btp == total {
		// Fully pushed (or zero-length): nothing to pull; the send op is
		// complete.
		s.finishSend(ep, op)
	}
	if !opts.UserTrigger {
		t.Exec(cfg.SyscallExit)
	}
}

// pushRuns reports the eager transmission runs for btp pushed bytes of a
// total-byte message. The BTP(1)/BTP(2) split only matters when a pull
// phase will follow; a message that fits entirely in the push goes out in
// one run, which is why the paper's four optimization variants coincide
// below 760 bytes (Fig. 4).
func pushRuns(opts Options, btp, total int) []int {
	if btp <= 0 {
		return nil
	}
	if opts.Mode == PushPull && opts.OverlapAck && btp < total {
		b1 := opts.BTP1
		if b1 > btp {
			b1 = btp
		}
		if b2 := btp - b1; b2 > 0 {
			// A zero-byte first run still emits an (empty) announcement
			// fragment, so the receiver's acknowledgement can overlap the
			// second fragment even when BTP(1)=0 — the configuration of
			// the paper's §5.2 BTP(2) sweep.
			return []int{b1, b2}
		}
		return []int{b1}
	}
	return []int{btp}
}

// deliverFrag handles one in-order data fragment at the receive side,
// in reception-handler context. It reports false when the fragment could
// not be buffered, which the go-back-N layer treats as loss — stalling
// only this channel's stream.
func (s *Stack) deliverFrag(t *smp.Thread, f fragMsg) bool {
	cfg := s.Node.Cfg
	ep := s.eps[f.ch.To.Proc]
	if ep == nil {
		panic(fmt.Sprintf("pushpull: fragment for missing endpoint %v", f.ch.To))
	}
	m := ep.findInbound(f.ch, f.msgID)
	if m == nil {
		t.Exec(cfg.QueueOp)
		m = &inboundMsg{
			ch:        f.ch,
			msgID:     f.msgID,
			tag:       f.tag,
			laneSeq:   f.laneSeq,
			total:     f.total,
			pushTotal: f.pushTotal,
			buf:       make([]byte, f.total),
		}
		ep.addInbound(m)
	}
	if m.op != nil {
		if len(f.data) > 0 {
			s.event(trace.KindDirect, "%v#%d frag [%d:%d) direct to destination on cpu%d", f.ch, f.msgID, f.offset, f.offset+len(f.data), t.CPU.ID)
		}
		// Receive registered: copy straight into the destination buffer
		// through its zero buffer (one copy). The destination's
		// translation may still be in flight when masked — wait for it.
		if rdy := m.op.zbReadyAt; t.Now() < rdy {
			t.P.Sleep(rdy.Sub(t.Now()))
		}
		if len(f.data) > 0 {
			t.Copy(len(f.data), false)
			copy(m.buf[f.offset:], f.data)
			m.received += len(f.data)
		}
		// Push-and-Acknowledge Overlapping: the handler answers the
		// first pushed fragment with the pull request immediately, while
		// later pushed fragments are still on the wire.
		ep.maybeStartPull(t, m, true)
		if m.received == m.total {
			ep.complete(t, m)
		}
		return true
	}
	// No receive yet: park the fragment in the pushed buffer. Fragments
	// carrying data occupy one slot each; empty announcements are pure
	// metadata.
	if len(f.data) > 0 {
		switch {
		case ep.ring.tryReserveSlot():
			m.slots++
			m.buffered = append(m.buffered, f)
			s.event(trace.KindPark, "%v#%d frag [%d:%d) parked in pushed buffer (slot %d/%d)", f.ch, f.msgID, f.offset, f.offset+len(f.data), ep.ring.slotsUsed(), ep.ring.slots)
		case !m.pullSent && f.pushTotal < f.total:
			// Buffer full, but a pull phase is still to come: discard
			// this optimistic push and let the pull request re-fetch the
			// range. Accepting (and acking) the fragment keeps the
			// in-order stream moving — refusing it would stall pull
			// traffic of earlier messages behind the retransmission.
			m.dropped = append(m.dropped, byteRange{Off: f.offset, N: len(f.data)})
			s.discardedBytes += uint64(len(f.data))
			s.event(trace.KindDiscard, "%v#%d frag [%d:%d) DISCARDED: pushed buffer full, pull will re-fetch", f.ch, f.msgID, f.offset, f.offset+len(f.data))
		default:
			// Fully eager message (Push-All or a short fully-pushed
			// transfer): no pull phase exists to re-fetch the data, so
			// the fragment must be refused and recovered by go-back-N —
			// the paper's Fig. 6 collapse, now confined to this
			// channel's eager lane. (The pullSent guard above is pure
			// defense: match-time capacity validation means a receive
			// never detaches after starting a pull, so an unbound
			// message with the pull request already out cannot occur —
			// but if it ever did, a discard here would be an
			// unrecoverable hole, while refusal retransmits.)
			s.event(trace.KindRefuse, "%v#%d frag [%d:%d) REFUSED: pushed buffer full", f.ch, f.msgID, f.offset, f.offset+len(f.data))
			return false
		}
	}
	t.Exec(cfg.QueueOp)
	if m.op != nil && m.op.done != nil {
		m.op.done.Broadcast()
	}
	return true
}

// sendPullReq transmits the acknowledgement-cum-pull-request for m from
// the receive side (handler or receive process context), on the
// channel's own control lane.
func (s *Stack) sendPullReq(t *smp.Thread, m *inboundMsg) {
	cfg := s.Node.Cfg
	t.Exec(cfg.QueueOp)
	t.Exec(s.nicKernelTrigger())
	s.event(trace.KindPullReq, "%v#%d pull request (ack) for [%d:%d), %d dropped ranges", m.ch, m.msgID, m.pushTotal, m.total, len(m.dropped))
	req := pullReqMsg{ch: m.ch, msgID: m.msgID, fromOffset: m.pushTotal, redo: m.dropped}
	s.inSession(m.ch).send(laneCtrl, req.wireBytes(), req)
}

// servePull runs at the send side when the pull request arrives: grant it
// and transmit the rest of the message from the send queue (arrow 1b.2).
func (s *Stack) servePull(t *smp.Thread, req pullReqMsg) {
	cfg := s.Node.Cfg
	ep := s.eps[req.ch.From.Proc]
	if ep == nil {
		panic(fmt.Sprintf("pushpull: pull request for missing endpoint %v", req.ch.From))
	}
	key := sendKey{req.ch, req.msgID}
	op := ep.sendOps[key]
	if op == nil || op.served {
		return // duplicate pull request after go-back-N retransmission
	}
	t.Exec(cfg.QueueOp)
	if s.Adapter != nil {
		redo := 0
		for _, r := range req.redo {
			redo += r.N
		}
		s.Adapter.OnPullRequest(req.ch, redo, t.Now().Sub(op.start))
	}
	if op.done != nil {
		// Three-phase: the CTS wakes the parked sender, which transmits
		// from its own thread; the handler only delivers the grant.
		s.grantThreePhase(op, req)
		return
	}
	// The pull data DMAs from the user source buffer: its translation
	// must have finished (masking scheduled it behind the push wire
	// time, which is almost always enough — but never break causality).
	if t.Now() < op.srcReadyAt {
		t.P.Sleep(op.srcReadyAt.Sub(t.Now()))
	}
	s.event(trace.KindPullGrant, "%v#%d pull granted, transmitting [%d:%d) + %d redo ranges", req.ch, req.msgID, op.pushed, len(op.data), len(req.redo))
	sess := s.outSession(req.ch)
	total := len(op.data)
	ranges := append(append([]byteRange(nil), req.redo...), byteRange{Off: op.pushed, N: total - op.pushed})
	for _, r := range ranges {
		for off, end := r.Off, r.Off+r.N; off < end; {
			n := end - off
			if n > MaxFragData {
				n = MaxFragData
			}
			frag := fragMsg{
				ch:        req.ch,
				msgID:     req.msgID,
				tag:       op.tag,
				offset:    off,
				data:      op.data[off : off+n],
				total:     total,
				pushTotal: op.pushed,
				pull:      true,
			}
			t.Exec(s.nicKernelTrigger())
			sess.send(lanePull, frag.wireBytes(), frag)
			off += n
		}
	}
	s.finishSend(ep, op)
}
