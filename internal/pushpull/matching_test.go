package pushpull

import (
	"testing"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// matchEndpoint builds a bare endpoint for white-box matching tests:
// the settle/bind/fail logic is pure state manipulation, so no cluster
// or traffic is needed.
func matchEndpoint() (*sim.Engine, *Endpoint) {
	e := sim.NewEngine(1)
	n := smp.NewNode(e, 0, smp.DefaultConfig())
	st := NewStack(n, DefaultOptions())
	return e, st.NewEndpoint(0, 0)
}

func newMsg(ep *Endpoint, laneSeq uint64, total int) *inboundMsg {
	return &inboundMsg{
		ch:      ChannelID{From: ProcessID{Node: 1}, To: ep.ID},
		msgID:   laneSeq,
		laneSeq: laneSeq,
		total:   total,
		buf:     make([]byte, total),
	}
}

func newOp(e *sim.Engine, bufLen int) *recvOp {
	return &recvOp{src: ProcessID{Node: 1}, tag: 0, bufLen: bufLen, done: sim.NewCond(e)}
}

// TestOversizedReceiveFailsWithoutConsuming is the regression for the
// failed-receive recovery bugs: a receive whose matched message
// overflows its buffer must error at match time *without binding the
// message* — binding first and unbinding later desynchronized the lane
// counter once later messages completed past it, and let a pull phase
// start (and its data be discarded unrecoverably) on behalf of a
// receive that was about to fail.
func TestOversizedReceiveFailsWithoutConsuming(t *testing.T) {
	e, ep := matchEndpoint()

	op1 := newOp(e, 500) // too small for A
	op2 := newOp(e, 5000)
	ep.register(nil, op1)
	ep.register(nil, op2)

	a := newMsg(ep, 0, 4000)
	ep.addInbound(a)
	if op1.err == nil {
		t.Fatal("undersized receive did not fail at match time")
	}
	if op1.msg != nil {
		t.Fatal("failed receive consumed the message")
	}
	if op2.msg != a {
		t.Fatal("next pending receive did not bind the message the failed one left")
	}

	// The lane keeps moving: B and C follow in sequence.
	b := newMsg(ep, 1, 100)
	ep.addInbound(b)
	op3 := newOp(e, 5000)
	ep.register(nil, op3)
	if op3.msg != b {
		t.Fatal("lane did not advance to message B after the failure")
	}
	c := newMsg(ep, 2, 100)
	ep.addInbound(c)
	op4 := newOp(e, 5000)
	ep.register(nil, op4)
	if op4.msg != c {
		t.Fatal("lane wedged: message C (laneSeq 2) not matchable")
	}
}

// TestRetryAfterOversizedFailureBindsSameMessage: the failed receive's
// message stays the lane head, so a retry with room gets exactly it.
func TestRetryAfterOversizedFailureBindsSameMessage(t *testing.T) {
	e, ep := matchEndpoint()

	a := newMsg(ep, 0, 4000)
	ep.addInbound(a)
	op1 := newOp(e, 500)
	ep.register(nil, op1)
	if op1.err == nil || a.op != nil {
		t.Fatal("undersized receive against a parked message did not fail cleanly")
	}
	if got := ep.nextBind[a.lane()]; got != 0 {
		t.Fatalf("lane counter advanced to %d by a failed receive", got)
	}
	retry := newOp(e, 4000)
	ep.register(nil, retry)
	if retry.msg != a {
		t.Fatal("retry with a big enough buffer did not bind the message")
	}
}

// TestPendingReceivesResolveInPostingOrder: with several receives
// pending, the earliest posted one gets the lane head.
func TestPendingReceivesResolveInPostingOrder(t *testing.T) {
	e, ep := matchEndpoint()
	op1 := newOp(e, 5000)
	op2 := newOp(e, 5000)
	ep.register(nil, op1)
	ep.register(nil, op2)
	a := newMsg(ep, 0, 100)
	b := newMsg(ep, 1, 100)
	ep.addInbound(a)
	ep.addInbound(b)
	if op1.msg != a || op2.msg != b {
		t.Fatalf("posting order broken: op1=%v op2=%v", op1.msg, op2.msg)
	}
}

// TestAnyTagSkipsReservedTags: the AnyTag wildcard is an application-
// range wildcard — a reserved-tag message (a collective round) parks
// past a pending wildcard receive, and only a receive naming the exact
// reserved tag binds it. Application-tag messages still match the
// wildcard as before.
func TestAnyTagSkipsReservedTags(t *testing.T) {
	e, ep := matchEndpoint()

	wild := newOp(e, 5000)
	wild.tag = AnyTag
	ep.register(nil, wild)

	resv := newMsg(ep, 0, 100)
	resv.tag = ReservedTag + 3
	ep.addInbound(resv)
	if wild.msg != nil {
		t.Fatal("AnyTag receive swallowed a reserved-tag message")
	}

	// The exact reserved tag binds it; the wildcard stays pending.
	exact := newOp(e, 5000)
	exact.tag = ReservedTag + 3
	ep.register(nil, exact)
	if exact.msg != resv {
		t.Fatal("exact reserved-tag receive did not bind the parked message")
	}

	// An application-tag arrival matches the waiting wildcard.
	app := newMsg(ep, 0, 100)
	app.tag = 7
	ep.addInbound(app)
	if wild.msg != app {
		t.Fatal("AnyTag receive did not bind the application-tag message")
	}
}
