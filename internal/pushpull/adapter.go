package pushpull

import "pushpull/internal/sim"

// BTPAdapter lets a policy object choose the Bytes-To-Push per message
// and learn from the protocol's feedback, realizing the paper's §3
// remark that "applications can dynamically change the size of the
// pushed buffer to adapt to the runtime environment".
//
// The adapter is consulted on the internode PushPull path only: the
// other modes' BTP is their defining constant, and the intranode push
// (16 B) is not worth adapting.
//
// Feedback is what the send side can actually observe: every pull
// request reveals how long the receiver took to claim the message and
// how many pushed bytes it had to discard for lack of pushed-buffer
// space. Fully pushed messages produce no pull request and hence no
// feedback.
type BTPAdapter interface {
	// BTP returns the bytes to push eagerly for a message of total
	// bytes on ch. The stack clamps the result to [0, total].
	BTP(ch ChannelID, total int) int
	// OnPullRequest reports a received pull request for ch: redoBytes
	// pushed bytes were discarded by the receiver, and the request
	// arrived sinceSend after the send operation started.
	OnPullRequest(ch ChannelID, redoBytes int, sinceSend sim.Duration)
}

// SetAdapter installs (or, with nil, removes) the BTP policy. Safe to
// call between messages; a message in flight keeps the BTP it was sent
// with.
func (s *Stack) SetAdapter(a BTPAdapter) { s.Adapter = a }
