package pushpull

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// Request tracks one outstanding nonblocking operation started with Isend
// or Irecv. Complete it with Wait (blocking) or poll it with Test.
//
// The simulated library implements nonblocking operations the way a
// user-level messaging library on a COMP node would: the operation runs
// on a helper thread bound to the same CPU as the caller, so its protocol
// costs are still charged to that processor, while the calling thread is
// free to compute — the overlap the paper's §4.1 parallelism argument is
// about, exposed at the API level.
type Request struct {
	done     *sim.Cond
	complete bool
	data     []byte
	status   Status
	err      error
}

// Isend starts a nonblocking tag-0 send of data (placed at addr in the
// endpoint's space) to process to, returning immediately with a Request.
// The data buffer must not be modified until the request completes.
func (ep *Endpoint) Isend(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte) *Request {
	return ep.IsendOpt(t, to, addr, data, DefaultSendOptions())
}

// IsendOpt is Isend with per-operation options (tag, BTP override).
func (ep *Endpoint) IsendOpt(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte, o SendOptions) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	t.Exec(ep.stack.Node.Cfg.CallOverhead) // posting cost on the caller
	ep.stack.Node.Spawn(fmt.Sprintf("isend/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		err := ep.SendOpt(ht, to, addr, data, o)
		req.finish(nil, Status{Source: ep.ID, Tag: o.Tag, Valid: true}, err)
	})
	return req
}

// Irecv starts a nonblocking receive of the next tag-0 message on channel
// from→ep into addr (bufLen bytes), returning immediately with a Request.
// Wait (or a successful Test) returns the received bytes.
//
// Multiple Irecvs posted by the same process for the same channel bind
// messages in posting order, matching the FIFO channel semantics of
// blocking Recv.
func (ep *Endpoint) Irecv(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int) *Request {
	return ep.IrecvOpt(t, from, addr, bufLen, RecvOptions{})
}

// IrecvOpt is Irecv with per-operation options; from may be AnySource
// and o.Tag may be AnyTag. The Request's Status reports what matched.
func (ep *Endpoint) IrecvOpt(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int, o RecvOptions) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	t.Exec(ep.stack.Node.Cfg.CallOverhead)
	ep.stack.Node.Spawn(fmt.Sprintf("irecv/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		b, st, err := ep.RecvOpt(ht, from, addr, bufLen, o)
		req.finish(b, st, err)
	})
	return req
}

// IsendAsyncOpt is IsendOpt with no posting thread: the whole operation,
// including the posting cost, runs on the helper thread. It exists for
// infrastructure that posts operations from engine context (the
// collective progression tasklet); application code, which always has a
// calling thread, should use IsendOpt so the posting cost lands on the
// caller.
func (ep *Endpoint) IsendAsyncOpt(to ProcessID, addr vm.VirtAddr, data []byte, o SendOptions) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	ep.stack.Node.Spawn(fmt.Sprintf("isend/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		ht.Exec(ep.stack.Node.Cfg.CallOverhead)
		err := ep.SendOpt(ht, to, addr, data, o)
		req.finish(nil, Status{Source: ep.ID, Tag: o.Tag, Valid: true}, err)
	})
	return req
}

// IrecvAsyncOpt is IrecvOpt with no posting thread (see IsendAsyncOpt).
func (ep *Endpoint) IrecvAsyncOpt(from ProcessID, addr vm.VirtAddr, bufLen int, o RecvOptions) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	ep.stack.Node.Spawn(fmt.Sprintf("irecv/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		ht.Exec(ep.stack.Node.Cfg.CallOverhead)
		b, st, err := ep.RecvOpt(ht, from, addr, bufLen, o)
		req.finish(b, st, err)
	})
	return req
}

// finish records the outcome and wakes every waiter. A failed
// operation's Status is normalized to the error form (Valid false, Err
// set) whatever the caller passed.
func (req *Request) finish(data []byte, st Status, err error) {
	if err != nil {
		st = Status{Err: err}
	}
	req.data = data
	req.status = st
	req.err = err
	req.complete = true
	req.done.Broadcast()
}

// Wait parks the calling thread until the operation completes. For a
// receive it returns the received bytes; for a send the data is nil.
func (req *Request) Wait(t *smp.Thread) ([]byte, error) {
	for !req.complete {
		req.done.Wait(t.P)
		t.Exec(t.Node.Cfg.WakeLatency)
	}
	return req.data, req.err
}

// Subscribe registers w (a process or tasklet) for one wake when the
// operation completes; it reports false, without registering, if the
// operation is already complete. The completion cond is broadcast, never
// signalled, so a subscription can coexist with other subscribers and
// with threads parked in Wait.
func (req *Request) Subscribe(w sim.Waiter) bool {
	if req.complete {
		return false
	}
	req.done.Await(w)
	return true
}

// Test reports whether the operation has completed, without blocking.
// Once it returns true, the data and error are the operation's outcome.
func (req *Request) Test() (bool, []byte, error) {
	if !req.complete {
		return false, nil, nil
	}
	return true, req.data, req.err
}

// Status reports the completed operation's envelope: for a receive, the
// source and tag that matched (informative after AnySource / AnyTag).
// Status.Valid is false until the request completes, and a failed
// request's Status carries the error in Err instead of an envelope.
func (req *Request) Status() Status { return req.status }

// WaitAll completes every request in order and returns the first error.
func WaitAll(t *smp.Thread, reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}
