package pushpull

import (
	"fmt"

	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// Request tracks one outstanding nonblocking operation started with Isend
// or Irecv. Complete it with Wait (blocking) or poll it with Test.
//
// The simulated library implements nonblocking operations the way a
// user-level messaging library on a COMP node would: the operation runs
// on a helper thread bound to the same CPU as the caller, so its protocol
// costs are still charged to that processor, while the calling thread is
// free to compute — the overlap the paper's §4.1 parallelism argument is
// about, exposed at the API level.
type Request struct {
	done     *sim.Cond
	complete bool
	data     []byte
	err      error
}

// Isend starts a nonblocking send of data (placed at addr in the
// endpoint's space) to process to, returning immediately with a Request.
// The data buffer must not be modified until the request completes.
func (ep *Endpoint) Isend(t *smp.Thread, to ProcessID, addr vm.VirtAddr, data []byte) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	t.Exec(ep.stack.Node.Cfg.CallOverhead) // posting cost on the caller
	ep.stack.Node.Spawn(fmt.Sprintf("isend/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		err := ep.Send(ht, to, addr, data)
		req.finish(nil, err)
	})
	return req
}

// Irecv starts a nonblocking receive of the next message on channel
// from→ep into addr (bufLen bytes), returning immediately with a Request.
// Wait (or a successful Test) returns the received bytes.
//
// Multiple Irecvs posted by the same process for the same channel bind
// messages in posting order, matching the FIFO channel semantics of
// blocking Recv.
func (ep *Endpoint) Irecv(t *smp.Thread, from ProcessID, addr vm.VirtAddr, bufLen int) *Request {
	req := &Request{done: sim.NewCond(ep.stack.Node.Engine)}
	t.Exec(ep.stack.Node.Cfg.CallOverhead)
	ep.stack.Node.Spawn(fmt.Sprintf("irecv/%v", ep.ID), ep.CPU, func(ht *smp.Thread) {
		b, err := ep.Recv(ht, from, addr, bufLen)
		req.finish(b, err)
	})
	return req
}

// finish records the outcome and wakes every waiter.
func (req *Request) finish(data []byte, err error) {
	req.data = data
	req.err = err
	req.complete = true
	req.done.Broadcast()
}

// Wait parks the calling thread until the operation completes. For a
// receive it returns the received bytes; for a send the data is nil.
func (req *Request) Wait(t *smp.Thread) ([]byte, error) {
	for !req.complete {
		req.done.Wait(t.P)
		t.Exec(t.Node.Cfg.WakeLatency)
	}
	return req.data, req.err
}

// Test reports whether the operation has completed, without blocking.
// Once it returns true, the data and error are the operation's outcome.
func (req *Request) Test() (bool, []byte, error) {
	if !req.complete {
		return false, nil, nil
	}
	return true, req.data, req.err
}

// WaitAll completes every request in order and returns the first error.
func WaitAll(t *smp.Thread, reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, err := r.Wait(t); err != nil && first == nil {
			first = err
		}
	}
	return first
}
