package cluster

import (
	"testing"

	"pushpull/internal/smp"
)

func TestDefaultConfigIsPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 2 {
		t.Errorf("nodes = %d, want 2", cfg.Nodes)
	}
	if cfg.SMP.NumCPUs != 4 {
		t.Errorf("CPUs per node = %d, want 4 (quad Pentium Pro)", cfg.SMP.NumCPUs)
	}
	if cfg.Net.BitsPerSec != 100_000_000 {
		t.Errorf("link = %d bit/s, want Fast Ethernet", cfg.Net.BitsPerSec)
	}
	if cfg.Policy != smp.Symmetric {
		t.Error("default policy should be symmetric interrupt (the paper's optimized setup)")
	}
	if err := cfg.Opts.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestTwoNodeDirectLink(t *testing.T) {
	c := New(DefaultConfig())
	if c.Switch != nil {
		t.Error("two-node default should be back-to-back, not switched")
	}
	if len(c.NICs) != 2 {
		t.Errorf("NICs = %d, want 2", len(c.NICs))
	}
	if c.Endpoint(0, 0) == nil || c.Endpoint(1, 0) == nil {
		t.Error("endpoints missing")
	}
}

func TestMoreNodesForcesSwitch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	if c.Switch == nil {
		t.Error("three-node cluster must use a switch")
	}
	if len(c.NICs) != 3 {
		t.Errorf("NICs = %d, want 3", len(c.NICs))
	}
}

func TestSingleNodeHasNoNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.ProcsPerNode = 2
	c := New(cfg)
	if len(c.NICs) != 0 || c.Switch != nil {
		t.Error("intranode-only cluster should have no NICs or switch")
	}
	if c.Stacks[0].NIC() != nil {
		t.Error("stack reports a NIC on a networkless node")
	}
}

func TestRailsLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rails = 3
	c := New(cfg)
	if len(c.NICs) != 6 {
		t.Fatalf("NICs = %d, want 6 (3 rails x 2 nodes)", len(c.NICs))
	}
	for i, nc := range c.NICs {
		wantNode := i / 3
		if nc.Node().ID != wantNode {
			t.Errorf("NIC %d on node %d, want %d (node-major layout)", i, nc.Node().ID, wantNode)
		}
	}
	if c.Stacks[0].Rails() != 3 || c.Stacks[1].Rails() != 3 {
		t.Error("stacks do not report 3 rails")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := map[string]Config{
		"zero nodes": func() Config { c := DefaultConfig(); c.Nodes = 0; return c }(),
		"zero procs": func() Config { c := DefaultConfig(); c.ProcsPerNode = 0; return c }(),
		"rails with 3 nodes": func() Config {
			c := DefaultConfig()
			c.Nodes = 3
			c.Rails = 2
			return c
		}(),
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestEndpointMissingPanics(t *testing.T) {
	c := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("missing endpoint lookup did not panic")
		}
	}()
	c.Endpoint(0, 99)
}

func TestSpawnRunsOnRequestedCPU(t *testing.T) {
	c := New(DefaultConfig())
	var cpu = -1
	c.Spawn(1, 2, "probe", func(th *smp.Thread) { cpu = th.CPU.ID })
	c.Run()
	if cpu != 2 {
		t.Errorf("thread ran on CPU %d, want 2", cpu)
	}
}

func TestAllPairsSessionsExist(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			snd, rcv := c.Stacks[i].Session(j)
			if snd == nil || rcv == nil {
				t.Errorf("missing session %d->%d", i, j)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		cfg := DefaultConfig()
		c := New(cfg)
		a, b := c.Endpoint(0, 0), c.Endpoint(1, 0)
		src, dst := a.Alloc(5000), b.Alloc(5000)
		msg := make([]byte, 5000)
		c.Spawn(0, 0, "s", func(th *smp.Thread) {
			if err := a.Send(th, b.ID, src, msg); err != nil {
				t.Error(err)
			}
		})
		c.Spawn(1, 0, "r", func(th *smp.Thread) {
			if _, err := b.Recv(th, a.ID, dst, 5000); err != nil {
				t.Error(err)
			}
		})
		return int64(c.Run())
	}
	if run() != run() {
		t.Error("identical clusters produced different final times")
	}
}
