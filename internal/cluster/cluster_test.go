package cluster

import (
	"testing"

	"pushpull/internal/pushpull"
	"pushpull/internal/smp"
)

func TestDefaultConfigIsPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 2 {
		t.Errorf("nodes = %d, want 2", cfg.Nodes)
	}
	if cfg.SMP.NumCPUs != 4 {
		t.Errorf("CPUs per node = %d, want 4 (quad Pentium Pro)", cfg.SMP.NumCPUs)
	}
	if cfg.Net.BitsPerSec != 100_000_000 {
		t.Errorf("link = %d bit/s, want Fast Ethernet", cfg.Net.BitsPerSec)
	}
	if cfg.Policy != smp.Symmetric {
		t.Error("default policy should be symmetric interrupt (the paper's optimized setup)")
	}
	if err := cfg.Opts.Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
}

func TestTwoNodeDirectLink(t *testing.T) {
	c := New(DefaultConfig())
	if c.Switch != nil {
		t.Error("two-node default should be back-to-back, not switched")
	}
	if len(c.NICs) != 2 {
		t.Errorf("NICs = %d, want 2", len(c.NICs))
	}
	if c.Endpoint(0, 0) == nil || c.Endpoint(1, 0) == nil {
		t.Error("endpoints missing")
	}
}

func TestMoreNodesForcesSwitch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	if c.Switch == nil {
		t.Error("three-node cluster must use a switch")
	}
	if len(c.NICs) != 3 {
		t.Errorf("NICs = %d, want 3", len(c.NICs))
	}
}

func TestSingleNodeHasNoNetwork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 1
	cfg.ProcsPerNode = 2
	c := New(cfg)
	if len(c.NICs) != 0 || c.Switch != nil {
		t.Error("intranode-only cluster should have no NICs or switch")
	}
	if c.Stacks[0].NIC() != nil {
		t.Error("stack reports a NIC on a networkless node")
	}
}

func TestRailsLayout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rails = 3
	c := New(cfg)
	if len(c.NICs) != 6 {
		t.Fatalf("NICs = %d, want 6 (3 rails x 2 nodes)", len(c.NICs))
	}
	for i, nc := range c.NICs {
		wantNode := i / 3
		if nc.Node().ID != wantNode {
			t.Errorf("NIC %d on node %d, want %d (node-major layout)", i, nc.Node().ID, wantNode)
		}
	}
	if c.Stacks[0].Rails() != 3 || c.Stacks[1].Rails() != 3 {
		t.Error("stacks do not report 3 rails")
	}
}

func TestBadConfigsPanic(t *testing.T) {
	cases := map[string]Config{
		"zero nodes": func() Config { c := DefaultConfig(); c.Nodes = 0; return c }(),
		"zero procs": func() Config { c := DefaultConfig(); c.ProcsPerNode = 0; return c }(),
		"rails with 3 nodes": func() Config {
			c := DefaultConfig()
			c.Nodes = 3
			c.Rails = 2
			return c
		}(),
	}
	for name, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestEndpointMissingPanics(t *testing.T) {
	c := New(DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Error("missing endpoint lookup did not panic")
		}
	}()
	c.Endpoint(0, 99)
}

func TestSpawnRunsOnRequestedCPU(t *testing.T) {
	c := New(DefaultConfig())
	var cpu = -1
	c.Spawn(1, 2, "probe", func(th *smp.Thread) { cpu = th.CPU.ID })
	c.Run()
	if cpu != 2 {
		t.Errorf("thread ran on CPU %d, want 2", cpu)
	}
}

func TestChannelSessionsMaterializeLazily(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 3
	c := New(cfg)
	for i := 0; i < 3; i++ {
		if n := c.Stacks[i].Sessions(); n != 0 {
			t.Errorf("node %d has %d sessions before any traffic", i, n)
		}
	}
	a, b := c.Endpoint(0, 0), c.Endpoint(1, 0)
	src, dst := a.Alloc(4000), b.Alloc(4000)
	msg := make([]byte, 4000)
	c.Spawn(0, 0, "s", func(th *smp.Thread) {
		if err := a.Send(th, b.ID, src, msg); err != nil {
			t.Error(err)
		}
	})
	c.Spawn(1, 0, "r", func(th *smp.Thread) {
		if _, err := b.Recv(th, a.ID, dst, 4000); err != nil {
			t.Error(err)
		}
	})
	c.Run()
	// Exactly the used channel has sessions: the out half on node 0, the
	// in half on node 1, nothing on the uninvolved node 2.
	ch := pushpull.ChannelID{From: a.ID, To: b.ID}
	if n := c.Stacks[0].Sessions(); n != 1 {
		t.Errorf("sender node has %d sessions, want 1", n)
	}
	if n := c.Stacks[1].Sessions(); n != 1 {
		t.Errorf("receiver node has %d sessions, want 1", n)
	}
	if n := c.Stacks[2].Sessions(); n != 0 {
		t.Errorf("idle node has %d sessions, want 0", n)
	}
	if st := c.Stacks[1].ChannelStats(ch); st.Delivered == 0 {
		t.Error("receiving side delivered no packets on the channel's data lane")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		cfg := DefaultConfig()
		c := New(cfg)
		a, b := c.Endpoint(0, 0), c.Endpoint(1, 0)
		src, dst := a.Alloc(5000), b.Alloc(5000)
		msg := make([]byte, 5000)
		c.Spawn(0, 0, "s", func(th *smp.Thread) {
			if err := a.Send(th, b.ID, src, msg); err != nil {
				t.Error(err)
			}
		})
		c.Spawn(1, 0, "r", func(th *smp.Thread) {
			if _, err := b.Recv(th, a.ID, dst, 5000); err != nil {
				t.Error(err)
			}
		})
		return int64(c.Run())
	}
	if run() != run() {
		t.Error("identical clusters produced different final times")
	}
}
