// Package cluster assembles complete simulated COMPs (Clusters Of
// Multi-Processors): SMP nodes with NICs, joined back-to-back or through
// a store-and-forward switch, each running a Push-Pull Messaging stack.
// It is the top-level entry point the examples and the benchmark harness
// build on.
package cluster

import (
	"errors"
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/fault"
	"pushpull/internal/nic"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// Config describes a cluster to build. DefaultConfig reproduces the
// paper's testbed: two quad Pentium Pro nodes, DEC 21140 Fast Ethernet
// back-to-back, symmetric interrupts, fully optimized Push-Pull.
type Config struct {
	Nodes        int
	ProcsPerNode int
	SMP          smp.Config
	NIC          nic.Config
	Net          ether.Config
	Opts         pushpull.Options
	Policy       smp.Policy
	PolicyTarget int
	// Rails is the number of NICs (and back-to-back links) per node —
	// the paper's §6 outlook of driving multiple network interfaces with
	// multiple processors. Values above 1 require a two-node,
	// switch-less cluster. Zero means one.
	Rails int
	// UseSwitch inserts a store-and-forward switch; required (and
	// defaulted) for more than two nodes. Two-node clusters default to a
	// back-to-back link, like the paper's testbed.
	UseSwitch bool
	// UseHub joins all nodes on one shared half-duplex segment instead of
	// a switch or back-to-back link — the hub-vs-switch ablation.
	// Mutually exclusive with UseSwitch and Rails > 1.
	UseHub bool
	// SwitchForward is the switch's forwarding latency.
	SwitchForward sim.Duration
	// SwitchQueueFrames bounds each switch output queue (0 = unbounded).
	SwitchQueueFrames int
	Seed              uint64
	// FaultPlan, when set, is compiled against the seed and armed on the
	// topology: link faults on the back-to-back or switch access links
	// (or the hub), port blackouts on the switch, pause/stall windows on
	// the NICs. Nil costs nothing anywhere.
	FaultPlan *fault.Plan
}

// DefaultConfig is the paper's two-node testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:             2,
		ProcsPerNode:      1,
		SMP:               smp.DefaultConfig(),
		NIC:               nic.DEC21140(),
		Net:               ether.FastEthernet(),
		Opts:              pushpull.DefaultOptions(),
		Policy:            smp.Symmetric,
		SwitchForward:     3 * sim.Microsecond,
		SwitchQueueFrames: 64,
		Seed:              1,
	}
}

// Cluster is a built simulation: engine, nodes, stacks, endpoints.
type Cluster struct {
	Engine *sim.Engine
	Nodes  []*smp.Node
	Stacks []*pushpull.Stack
	NICs   []*nic.NIC
	Switch *ether.Switch
	Hub    *ether.Hub
	Links  []*ether.Link // back-to-back links, rail-major (empty otherwise)
	// SwitchLinks are the per-node access links of a switch topology, in
	// node order (empty otherwise).
	SwitchLinks []*ether.Link
	// Faults is the compiled fault plan armed on this cluster, nil when
	// none was configured.
	Faults *fault.Set
}

// normalize applies the defaulting rules New has always used: more than
// two nodes force a switch unless a hub was asked for.
func (cfg Config) normalize() Config {
	if cfg.Nodes > 2 && !cfg.UseHub {
		cfg.UseSwitch = true
	}
	return cfg
}

// Validate reports configuration errors without building anything, so
// callers assembling configs from user input (e.g. scenario specs) can
// reject them gracefully instead of hitting New's panics.
func (cfg Config) Validate() error {
	cfg = cfg.normalize()
	if cfg.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node")
	}
	if cfg.ProcsPerNode < 1 {
		return fmt.Errorf("cluster: need at least one process per node")
	}
	if cfg.UseHub && cfg.UseSwitch {
		return fmt.Errorf("cluster: UseHub and UseSwitch are mutually exclusive")
	}
	if cfg.UseHub && cfg.Rails > 1 {
		return fmt.Errorf("cluster: multi-rail requires point-to-point links, not a hub")
	}
	if cfg.Rails > 1 && cfg.Nodes > 1 && (cfg.Nodes != 2 || cfg.UseSwitch) {
		return fmt.Errorf("cluster: multi-rail requires a two-node back-to-back topology")
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Validate(cfg.Nodes); err != nil {
			return err
		}
	}
	return nil
}

// New builds a cluster. It panics on inconsistent configuration — the
// callers are experiment definitions, not user input (which should be
// screened with Validate first).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.normalize()
	e := sim.NewEngine(cfg.Seed)
	c := &Cluster{Engine: e}

	for i := 0; i < cfg.Nodes; i++ {
		n := smp.NewNode(e, i, cfg.SMP)
		n.IRQ.SetPolicy(cfg.Policy, cfg.PolicyTarget)
		st := pushpull.NewStack(n, cfg.Opts)
		for p := 0; p < cfg.ProcsPerNode; p++ {
			st.NewEndpoint(p, p%cfg.SMP.NumCPUs)
		}
		c.Nodes = append(c.Nodes, n)
		c.Stacks = append(c.Stacks, st)
	}

	if cfg.Nodes == 1 {
		return c // intranode-only cluster: no network
	}

	if cfg.FaultPlan != nil {
		fs, err := fault.Compile(cfg.FaultPlan, cfg.Seed)
		if err != nil {
			panic(err) // Validate above accepted the plan; compile errors are bugs
		}
		c.Faults = fs
	}

	// Validate (above) already rejected multi-rail on anything but a
	// two-node back-to-back topology.
	rails := cfg.Rails
	if rails <= 0 {
		rails = 1
	}

	// NICs are laid out node-major: node i's rail r is NICs[i*rails+r].
	for i, n := range c.Nodes {
		for r := 0; r < rails; r++ {
			nc := nic.New(n, cfg.NIC)
			if c.Faults != nil {
				nc.SetFaultInjector(c.Faults.NICInjector(n.ID))
			}
			c.NICs = append(c.NICs, nc)
			c.Stacks[i].AttachNIC(nc)
		}
	}

	switch {
	case cfg.UseHub:
		c.Hub = ether.NewHub(e, cfg.Net)
		if c.Faults != nil {
			c.Hub.SetInjector(c.Faults.HubInjector())
		}
		for _, nc := range c.NICs {
			c.Hub.Attach(nc)
			nc.AttachLink(c.Hub)
		}
	case !cfg.UseSwitch && cfg.Nodes == 2:
		for r := 0; r < rails; r++ {
			a, b := c.NICs[r], c.NICs[rails+r]
			link := ether.NewLink(e, cfg.Net, a, b)
			if c.Faults != nil {
				link.SetInjector(c.Faults.LinkInjector(a.NodeID(), b.NodeID()))
			}
			a.AttachLink(link)
			b.AttachLink(link)
			c.Links = append(c.Links, link)
		}
	default:
		c.Switch = ether.NewSwitch(e, cfg.Net, cfg.SwitchForward)
		for _, nc := range c.NICs {
			link := c.Switch.Attach(nc, cfg.SwitchQueueFrames)
			nc.AttachLink(link)
			c.SwitchLinks = append(c.SwitchLinks, link)
			if c.Faults != nil {
				link.SetInjector(c.Faults.LinkInjector(nc.NodeID()))
				c.Switch.SetPortInjector(nc.NodeID(), c.Faults.PortInjector(nc.NodeID()))
			}
		}
	}

	for i := range c.Stacks {
		for j := range c.Stacks {
			if i != j {
				c.Stacks[i].AddPeer(j)
			}
		}
	}
	return c
}

// ProcsPerNode reports the number of processes on each node. Clusters
// are built uniformly (every node gets cfg.ProcsPerNode endpoints), so
// the first stack answers for all of them.
func (c *Cluster) ProcsPerNode() int { return c.Stacks[0].Procs() }

// Procs reports the total number of processes in the cluster — the
// bound for rank enumeration, replacing the old probe-until-nil loops.
func (c *Cluster) Procs() int { return len(c.Stacks) * c.ProcsPerNode() }

// Endpoint returns process proc on node node.
func (c *Cluster) Endpoint(node, proc int) *pushpull.Endpoint {
	ep := c.Stacks[node].Endpoint(proc)
	if ep == nil {
		panic(fmt.Sprintf("cluster: no endpoint %d on node %d", proc, node))
	}
	return ep
}

// Spawn starts an application thread named name on node's CPU cpu.
func (c *Cluster) Spawn(node, cpu int, name string, body func(t *smp.Thread)) {
	c.Nodes[node].Spawn(name, cpu, body)
}

// Run drives the simulation to completion and returns the final virtual
// time.
func (c *Cluster) Run() sim.Time { return c.Engine.Run() }

// ErrBudget marks a run that exhausted its virtual-time budget with
// events still pending — the signature of a protocol deadlock or
// retransmission livelock. Both RunWithin and the scenario engine's
// budget errors wrap it (scenario.ErrVirtualBudget is this value), so
// errors.Is classifies them uniformly.
var ErrBudget = errors.New("virtual-time budget exhausted")

// RunWithin drives the simulation at most budget of virtual time and
// returns an ErrBudget-wrapping error if events were still pending when
// it expired. The examples run under it so a stalled protocol fails
// their smoke runs instead of spinning.
func (c *Cluster) RunWithin(budget sim.Duration) (sim.Time, error) {
	limit := c.Engine.Now().Add(budget) // relative: reusable on an advanced engine
	end := c.Engine.RunUntil(limit)
	if n := c.Engine.Pending(); n > 0 {
		return end, fmt.Errorf("cluster: %w: %v elapsed with %d events still pending (deadlock or livelock)", ErrBudget, budget, n)
	}
	return end, nil
}

// Shutdown tears the simulation down once a run is over, unwinding every
// still-parked process goroutine (rank threads at budget exhaustion, IRQ
// handlers mid-copy) so a finished cluster holds no goroutines. The
// cluster is unusable afterwards; call it last, and not at all if the
// engine will run again.
func (c *Cluster) Shutdown() { c.Engine.Shutdown() }

// SetRecorder attaches one structured trace recorder to every stack (and
// through them every NIC and go-back-N session) in the cluster.
func (c *Cluster) SetRecorder(rec *trace.Recorder) {
	for _, st := range c.Stacks {
		st.SetRecorder(rec)
	}
}

// FrameLoss is the cluster-wide frame-death ledger: every place the
// topology can discard a frame, attributed to its cause. The sum answers
// "where did frames die" for any run.
type FrameLoss struct {
	// LinkLost / HubLost are i.i.d. LossRate drops on the wires;
	// LinkFaultLost / HubFaultLost are injected link faults.
	LinkLost, LinkFaultLost uint64
	HubLost, HubFaultLost   uint64
	// SwitchDropped is output-queue overflow (plus unknown destinations);
	// SwitchFaultDropped is injected port blackouts.
	SwitchDropped, SwitchFaultDropped uint64
	// NICRxDropped is incoming-ring overflow; NICFaultDropped is frames
	// discarded while the host was paused by an injected fault.
	NICRxDropped, NICFaultDropped uint64
}

// Total sums every counted frame death.
func (fl FrameLoss) Total() uint64 {
	return fl.LinkLost + fl.LinkFaultLost + fl.HubLost + fl.HubFaultLost +
		fl.SwitchDropped + fl.SwitchFaultDropped + fl.NICRxDropped + fl.NICFaultDropped
}

// FrameLoss aggregates the loss counters of every medium and NIC in the
// cluster.
func (c *Cluster) FrameLoss() FrameLoss {
	var fl FrameLoss
	for _, l := range c.Links {
		fl.LinkLost += l.FramesLost()
		fl.LinkFaultLost += l.FaultLost()
	}
	for _, l := range c.SwitchLinks {
		fl.LinkLost += l.FramesLost()
		fl.LinkFaultLost += l.FaultLost()
	}
	if c.Hub != nil {
		fl.HubLost = c.Hub.FramesLost()
		fl.HubFaultLost = c.Hub.FaultLost()
	}
	if c.Switch != nil {
		fl.SwitchDropped = c.Switch.Dropped()
		fl.SwitchFaultDropped = c.Switch.FaultDropped()
	}
	for _, nc := range c.NICs {
		fl.NICRxDropped += nc.RxDropped()
		fl.NICFaultDropped += nc.FaultDropped()
	}
	return fl
}
