// Package cluster assembles complete simulated COMPs (Clusters Of
// Multi-Processors): SMP nodes with NICs, joined back-to-back or through
// a store-and-forward switch, each running a Push-Pull Messaging stack.
// It is the top-level entry point the examples and the benchmark harness
// build on.
package cluster

import (
	"errors"
	"fmt"

	"pushpull/internal/ether"
	"pushpull/internal/fault"
	"pushpull/internal/nic"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/trace"
)

// Config describes a cluster to build. DefaultConfig reproduces the
// paper's testbed: two quad Pentium Pro nodes, DEC 21140 Fast Ethernet
// back-to-back, symmetric interrupts, fully optimized Push-Pull.
type Config struct {
	Nodes        int
	ProcsPerNode int
	SMP          smp.Config
	NIC          nic.Config
	Net          ether.Config
	Opts         pushpull.Options
	Policy       smp.Policy
	PolicyTarget int
	// Rails is the number of NICs (and back-to-back links) per node —
	// the paper's §6 outlook of driving multiple network interfaces with
	// multiple processors. Values above 1 require a two-node,
	// switch-less cluster. Zero means one.
	Rails int
	// UseSwitch inserts a store-and-forward switch; required (and
	// defaulted) for more than two nodes. Two-node clusters default to a
	// back-to-back link, like the paper's testbed.
	UseSwitch bool
	// UseHub joins all nodes on one shared half-duplex segment instead of
	// a switch or back-to-back link — the hub-vs-switch ablation.
	// Mutually exclusive with UseSwitch and Rails > 1.
	UseHub bool
	// SwitchForward is the switch's forwarding latency.
	SwitchForward sim.Duration
	// SwitchQueueFrames bounds each switch output queue (0 = unbounded).
	SwitchQueueFrames int
	Seed              uint64
	// FaultPlan, when set, is compiled against the seed and armed on the
	// topology: link faults on the back-to-back or switch access links
	// (or the hub), port blackouts on the switch, pause/stall windows on
	// the NICs. Nil costs nothing anywhere.
	FaultPlan *fault.Plan
	// ParallelWorkers > 0 requests conservative PDES execution: the
	// simulation is partitioned into one engine per node (plus one for
	// the switch) and driven in lookahead-bounded supersteps by up to
	// this many worker goroutines. Results are byte-identical for every
	// value — 1, 4, or more workers than shards — because the partition's
	// merge rule is deterministic; only wall-clock changes. Topologies
	// without a positive cross-shard latency floor (hubs, single-node
	// clusters) fall back to the sequential engine.
	ParallelWorkers int
}

// DefaultConfig is the paper's two-node testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:             2,
		ProcsPerNode:      1,
		SMP:               smp.DefaultConfig(),
		NIC:               nic.DEC21140(),
		Net:               ether.FastEthernet(),
		Opts:              pushpull.DefaultOptions(),
		Policy:            smp.Symmetric,
		SwitchForward:     3 * sim.Microsecond,
		SwitchQueueFrames: 64,
		Seed:              1,
	}
}

// Cluster is a built simulation: engine, nodes, stacks, endpoints.
type Cluster struct {
	// Engine is the root engine. Sequentially built clusters run
	// everything on it; a partitioned cluster (Partition != nil) homes
	// each node on its own shard engine (Nodes[i].Engine) and keeps the
	// root for orchestration-only state. Drive runs through the Cluster
	// methods (Run/RunWithin/RunUntil/Now/Pending/Shutdown), which
	// dispatch to whichever execution mode was built.
	Engine *sim.Engine
	// Partition is the conservative-PDES partition driving this cluster,
	// nil for sequential execution.
	Partition *sim.Partition
	Nodes     []*smp.Node
	Stacks    []*pushpull.Stack
	NICs      []*nic.NIC
	Switch    *ether.Switch
	Hub       *ether.Hub
	Links     []*ether.Link // back-to-back links, rail-major (empty otherwise)
	// SwitchLinks are the per-node access links of a switch topology, in
	// node order (empty otherwise).
	SwitchLinks []*ether.Link
	// Faults is the compiled fault plan armed on this cluster, nil when
	// none was configured.
	Faults *fault.Set
}

// normalize applies the defaulting rules New has always used: more than
// two nodes force a switch unless a hub was asked for.
func (cfg Config) normalize() Config {
	if cfg.Nodes > 2 && !cfg.UseHub {
		cfg.UseSwitch = true
	}
	return cfg
}

// Validate reports configuration errors without building anything, so
// callers assembling configs from user input (e.g. scenario specs) can
// reject them gracefully instead of hitting New's panics.
func (cfg Config) Validate() error {
	cfg = cfg.normalize()
	if cfg.Nodes < 1 {
		return fmt.Errorf("cluster: need at least one node")
	}
	if cfg.ProcsPerNode < 1 {
		return fmt.Errorf("cluster: need at least one process per node")
	}
	if cfg.UseHub && cfg.UseSwitch {
		return fmt.Errorf("cluster: UseHub and UseSwitch are mutually exclusive")
	}
	if cfg.UseHub && cfg.Rails > 1 {
		return fmt.Errorf("cluster: multi-rail requires point-to-point links, not a hub")
	}
	if cfg.Rails > 1 && cfg.Nodes > 1 && (cfg.Nodes != 2 || cfg.UseSwitch) {
		return fmt.Errorf("cluster: multi-rail requires a two-node back-to-back topology")
	}
	if cfg.FaultPlan != nil {
		if err := cfg.FaultPlan.Validate(cfg.Nodes); err != nil {
			return err
		}
	}
	return nil
}

// New builds a cluster. It panics on inconsistent configuration — the
// callers are experiment definitions, not user input (which should be
// screened with Validate first).
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.normalize()

	// PDES eligibility: a partition needs at least two node shards and a
	// positive cross-shard latency floor. Hubs share one medium (no
	// per-node confinement) and single-node clusters have nothing to
	// shard, so both fall back to the sequential engine — as does a
	// zero-propagation network, which admits no conservative window.
	var part *sim.Partition
	if cfg.ParallelWorkers > 0 && cfg.Nodes >= 2 && !cfg.UseHub && cfg.Net.Propagation > 0 {
		shards := cfg.Nodes
		if cfg.UseSwitch {
			shards++ // the switch's forwarding plane is its own shard
		}
		part = sim.NewPartition(cfg.Seed, shards, cfg.ParallelWorkers, cfg.Net.Propagation)
	}
	e := sim.NewEngine(cfg.Seed)
	if part != nil {
		e = part.Root()
	}
	c := &Cluster{Engine: e, Partition: part}
	nodeEngine := func(i int) *sim.Engine {
		if part != nil {
			return part.Shard(i)
		}
		return e
	}

	for i := 0; i < cfg.Nodes; i++ {
		n := smp.NewNode(nodeEngine(i), i, cfg.SMP)
		n.IRQ.SetPolicy(cfg.Policy, cfg.PolicyTarget)
		st := pushpull.NewStack(n, cfg.Opts)
		for p := 0; p < cfg.ProcsPerNode; p++ {
			st.NewEndpoint(p, p%cfg.SMP.NumCPUs)
		}
		c.Nodes = append(c.Nodes, n)
		c.Stacks = append(c.Stacks, st)
	}

	if cfg.Nodes == 1 {
		return c // intranode-only cluster: no network
	}

	if cfg.FaultPlan != nil {
		fs, err := fault.Compile(cfg.FaultPlan, cfg.Seed)
		if err != nil {
			panic(err) // Validate above accepted the plan; compile errors are bugs
		}
		c.Faults = fs
	}

	// Validate (above) already rejected multi-rail on anything but a
	// two-node back-to-back topology.
	rails := cfg.Rails
	if rails <= 0 {
		rails = 1
	}

	// NICs are laid out node-major: node i's rail r is NICs[i*rails+r].
	for i, n := range c.Nodes {
		for r := 0; r < rails; r++ {
			nc := nic.New(n, cfg.NIC)
			if c.Faults != nil {
				nc.SetFaultInjector(c.Faults.NICInjector(n.ID))
			}
			c.NICs = append(c.NICs, nc)
			c.Stacks[i].AttachNIC(nc)
		}
	}

	switch {
	case cfg.UseHub:
		c.Hub = ether.NewHub(e, cfg.Net)
		if c.Faults != nil {
			c.Hub.SetInjector(c.Faults.HubInjector())
		}
		for _, nc := range c.NICs {
			c.Hub.Attach(nc)
			nc.AttachLink(c.Hub)
		}
	case !cfg.UseSwitch && cfg.Nodes == 2:
		for r := 0; r < rails; r++ {
			a, b := c.NICs[r], c.NICs[rails+r]
			link := ether.NewLinkOn(nodeEngine(a.NodeID()), nodeEngine(b.NodeID()), cfg.Net, a, b)
			if c.Faults != nil {
				if part != nil {
					// The two directions run on different shards: give each
					// its own injector with privately cloned burst chains
					// (salted by rail and direction, so every stream in the
					// run is distinct and deterministic).
					link.SetInjectorDirs(
						c.Faults.LinkInjectorDir(uint64(r)*2, a.NodeID(), b.NodeID()),
						c.Faults.LinkInjectorDir(uint64(r)*2+1, a.NodeID(), b.NodeID()))
				} else {
					link.SetInjector(c.Faults.LinkInjector(a.NodeID(), b.NodeID()))
				}
			}
			a.AttachLink(link)
			b.AttachLink(link)
			c.Links = append(c.Links, link)
		}
	default:
		se := e
		if part != nil {
			se = part.Shard(cfg.Nodes)
		}
		c.Switch = ether.NewSwitch(se, cfg.Net, cfg.SwitchForward)
		for _, nc := range c.NICs {
			link := c.Switch.AttachOn(nc, nodeEngine(nc.NodeID()), cfg.SwitchQueueFrames)
			nc.AttachLink(link)
			c.SwitchLinks = append(c.SwitchLinks, link)
			if c.Faults != nil {
				if part != nil {
					link.SetInjectorDirs(
						c.Faults.LinkInjectorDir(uint64(nc.NodeID())*2, nc.NodeID()),
						c.Faults.LinkInjectorDir(uint64(nc.NodeID())*2+1, nc.NodeID()))
				} else {
					link.SetInjector(c.Faults.LinkInjector(nc.NodeID()))
				}
				c.Switch.SetPortInjector(nc.NodeID(), c.Faults.PortInjector(nc.NodeID()))
			}
		}
	}

	for i := range c.Stacks {
		for j := range c.Stacks {
			if i != j {
				c.Stacks[i].AddPeer(j)
			}
		}
	}

	if part != nil {
		// Topology-lookahead hook: the partition's conservative window is
		// the minimum latency floor of the links actually built, asked of
		// the ether layer itself rather than assumed from the config.
		links := make([]*ether.Link, 0, len(c.Links)+len(c.SwitchLinks))
		links = append(links, c.Links...)
		links = append(links, c.SwitchLinks...)
		if la := ether.MinLookahead(links...); la > 0 {
			part.SetLookahead(la)
		}
	}
	return c
}

// ProcsPerNode reports the number of processes on each node. Clusters
// are built uniformly (every node gets cfg.ProcsPerNode endpoints), so
// the first stack answers for all of them.
func (c *Cluster) ProcsPerNode() int { return c.Stacks[0].Procs() }

// Procs reports the total number of processes in the cluster — the
// bound for rank enumeration, replacing the old probe-until-nil loops.
func (c *Cluster) Procs() int { return len(c.Stacks) * c.ProcsPerNode() }

// Endpoint returns process proc on node node.
func (c *Cluster) Endpoint(node, proc int) *pushpull.Endpoint {
	ep := c.Stacks[node].Endpoint(proc)
	if ep == nil {
		panic(fmt.Sprintf("cluster: no endpoint %d on node %d", proc, node))
	}
	return ep
}

// Spawn starts an application thread named name on node's CPU cpu.
func (c *Cluster) Spawn(node, cpu int, name string, body func(t *smp.Thread)) {
	c.Nodes[node].Spawn(name, cpu, body)
}

// Run drives the simulation to completion and returns the final virtual
// time.
func (c *Cluster) Run() sim.Time {
	if c.Partition != nil {
		return c.Partition.Run()
	}
	return c.Engine.Run()
}

// RunUntil executes events with timestamps <= limit and returns the
// virtual clock (the last executed event anywhere in the cluster).
func (c *Cluster) RunUntil(limit sim.Time) sim.Time {
	if c.Partition != nil {
		return c.Partition.RunUntil(limit)
	}
	return c.Engine.RunUntil(limit)
}

// Now reports the cluster's virtual time: the root engine's clock, or
// the partition-wide maximum under PDES.
func (c *Cluster) Now() sim.Time {
	if c.Partition != nil {
		return c.Partition.Now()
	}
	return c.Engine.Now()
}

// Pending reports queued events across the whole cluster — exact in
// both execution modes (the partition sums its shards and in-flight
// cross-shard routes).
func (c *Cluster) Pending() int {
	if c.Partition != nil {
		return c.Partition.Pending()
	}
	return c.Engine.Pending()
}

// Executed reports events run across the whole cluster — exact in both
// execution modes.
func (c *Cluster) Executed() uint64 {
	if c.Partition != nil {
		return c.Partition.Executed()
	}
	return c.Engine.Executed()
}

// PDESStats reports the partition's superstep counters; ok is false for
// a sequentially built cluster.
func (c *Cluster) PDESStats() (sim.PartitionStats, bool) {
	if c.Partition == nil {
		return sim.PartitionStats{}, false
	}
	return c.Partition.Stats(), true
}

// ErrBudget marks a run that exhausted its virtual-time budget with
// events still pending — the signature of a protocol deadlock or
// retransmission livelock. Both RunWithin and the scenario engine's
// budget errors wrap it (scenario.ErrVirtualBudget is this value), so
// errors.Is classifies them uniformly.
var ErrBudget = errors.New("virtual-time budget exhausted")

// RunWithin drives the simulation at most budget of virtual time and
// returns an ErrBudget-wrapping error if events were still pending when
// it expired. The examples run under it so a stalled protocol fails
// their smoke runs instead of spinning.
func (c *Cluster) RunWithin(budget sim.Duration) (sim.Time, error) {
	limit := c.Now().Add(budget) // relative: reusable on an advanced engine
	end := c.RunUntil(limit)
	if n := c.Pending(); n > 0 {
		return end, fmt.Errorf("cluster: %w: %v elapsed with %d events still pending (deadlock or livelock)", ErrBudget, budget, n)
	}
	return end, nil
}

// Shutdown tears the simulation down once a run is over, unwinding every
// still-parked process goroutine (rank threads at budget exhaustion, IRQ
// handlers mid-copy) so a finished cluster holds no goroutines. Under
// PDES it also stops the partition's worker pool. The cluster is
// unusable afterwards; call it last, and not at all if the engine will
// run again.
func (c *Cluster) Shutdown() {
	if c.Partition != nil {
		c.Partition.Shutdown()
		return
	}
	c.Engine.Shutdown()
}

// SetRecorder attaches one structured trace recorder to every stack (and
// through them every NIC and go-back-N session) in the cluster. A
// partitioned cluster must use SetNodeRecorders instead: one recorder
// shared across shards would race.
func (c *Cluster) SetRecorder(rec *trace.Recorder) {
	for _, st := range c.Stacks {
		st.SetRecorder(rec)
	}
}

// SetNodeRecorders attaches recs[i] to node i's stack — the per-shard
// recorder layout partitioned runs need (each recorder is only ever
// touched by its node's engine). len(recs) must equal the node count.
func (c *Cluster) SetNodeRecorders(recs []*trace.Recorder) {
	if len(recs) != len(c.Stacks) {
		panic(fmt.Sprintf("cluster: %d recorders for %d nodes", len(recs), len(c.Stacks)))
	}
	for i, st := range c.Stacks {
		st.SetRecorder(recs[i])
	}
}

// FrameLoss is the cluster-wide frame-death ledger: every place the
// topology can discard a frame, attributed to its cause. The sum answers
// "where did frames die" for any run.
type FrameLoss struct {
	// LinkLost / HubLost are i.i.d. LossRate drops on the wires;
	// LinkFaultLost / HubFaultLost are injected link faults.
	LinkLost, LinkFaultLost uint64
	HubLost, HubFaultLost   uint64
	// SwitchDropped is output-queue overflow (plus unknown destinations);
	// SwitchFaultDropped is injected port blackouts.
	SwitchDropped, SwitchFaultDropped uint64
	// NICRxDropped is incoming-ring overflow; NICFaultDropped is frames
	// discarded while the host was paused by an injected fault.
	NICRxDropped, NICFaultDropped uint64
}

// Total sums every counted frame death.
func (fl FrameLoss) Total() uint64 {
	return fl.LinkLost + fl.LinkFaultLost + fl.HubLost + fl.HubFaultLost +
		fl.SwitchDropped + fl.SwitchFaultDropped + fl.NICRxDropped + fl.NICFaultDropped
}

// FrameLoss aggregates the loss counters of every medium and NIC in the
// cluster.
func (c *Cluster) FrameLoss() FrameLoss {
	var fl FrameLoss
	for _, l := range c.Links {
		fl.LinkLost += l.FramesLost()
		fl.LinkFaultLost += l.FaultLost()
	}
	for _, l := range c.SwitchLinks {
		fl.LinkLost += l.FramesLost()
		fl.LinkFaultLost += l.FaultLost()
	}
	if c.Hub != nil {
		fl.HubLost = c.Hub.FramesLost()
		fl.HubFaultLost = c.Hub.FaultLost()
	}
	if c.Switch != nil {
		fl.SwitchDropped = c.Switch.Dropped()
		fl.SwitchFaultDropped = c.Switch.FaultDropped()
	}
	for _, nc := range c.NICs {
		fl.NICRxDropped += nc.RxDropped()
		fl.NICFaultDropped += nc.FaultDropped()
	}
	return fl
}
