// Package fault implements deterministic fault injection for the
// simulated cluster: a Plan is a virtual-time schedule of typed fault
// events — link down/up intervals, flapping links, correlated loss
// bursts, switch-port blackouts, node pauses and NIC transmit stalls —
// compiled into per-component injectors that the network layers consult
// on their hot paths. With no plan armed every injector pointer is nil,
// so the cost of the subsystem is a single nil check per frame and every
// unfaulted run stays bit-identical.
//
// Determinism: all randomized behavior (random flap phases, the
// Gilbert–Elliott burst chain) draws from private xorshift64* streams
// seeded from the plan seed, the cluster seed and the event's position —
// never from the engine's RNG — so arming a plan does not perturb the
// rest of the simulation's random sequence, and the same plan over the
// same seed replays exactly.
package fault

import (
	"encoding/json"
	"fmt"
	"sort"

	"pushpull/internal/sim"
)

// Kind names a fault event type.
type Kind string

const (
	// KindLinkDown takes node's link (or its switch access link) down for
	// [AtMS, UntilMS): every frame in either direction is lost.
	KindLinkDown Kind = "link-down"
	// KindLinkFlap toggles node's link with period PeriodMS over
	// [AtMS, UntilMS): up for DutyCycle of each period, down for the
	// rest. With Random set, the down interval lands at a seeded-random
	// phase within each period instead of at the end.
	KindLinkFlap Kind = "link-flap"
	// KindLossBurst overlays a two-state Gilbert–Elliott loss chain on
	// node's link for [AtMS, UntilMS): in the good state frames pass, in
	// the burst state they are lost with probability BurstLoss; the chain
	// enters the burst state with PEnterBurst and leaves it with
	// PExitBurst per consulted frame.
	KindLossBurst Kind = "loss-burst"
	// KindPortBlackout blocks node's switch port for [AtMS, UntilMS):
	// the switch forwards nothing to or from that port.
	KindPortBlackout Kind = "port-blackout"
	// KindNodePause freezes node's host for [AtMS, UntilMS): its NIC
	// drops every received frame (nobody drains the ring) and stalls
	// transmit fetches until the pause lifts.
	KindNodePause Kind = "node-pause"
	// KindNICStall stalls node's NIC transmit engine for [AtMS, UntilMS):
	// frames queue but none are fetched until the window ends. Reception
	// is unaffected.
	KindNICStall Kind = "nic-stall"
)

// Event is one scheduled fault. Times are virtual milliseconds from the
// start of the run; the fault is active over [AtMS, UntilMS).
type Event struct {
	Kind Kind `json:"kind"`
	Node int  `json:"node"`

	AtMS    float64 `json:"atMS"`
	UntilMS float64 `json:"untilMS"`

	// Flap parameters (KindLinkFlap).
	PeriodMS  float64 `json:"periodMS,omitempty"`
	DutyCycle float64 `json:"dutyCycle,omitempty"` // fraction of each period the link is UP
	Random    bool    `json:"random,omitempty"`    // seeded-random down phase per period

	// Gilbert–Elliott parameters (KindLossBurst).
	PEnterBurst float64 `json:"pEnterBurst,omitempty"`
	PExitBurst  float64 `json:"pExitBurst,omitempty"`
	BurstLoss   float64 `json:"burstLoss,omitempty"`
}

// Plan is a deterministic fault schedule: the events plus an optional
// seed that (mixed with the cluster seed) drives all randomized fault
// behavior.
type Plan struct {
	Seed   uint64  `json:"seed,omitempty"`
	Events []Event `json:"events"`
}

// ParsePlan decodes a JSON fault plan, rejecting unknown fields.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parse plan: %w", err)
	}
	return &p, nil
}

// maxFlapPeriods bounds the window expansion of one flap event, so a
// malformed plan (tiny period over a huge window) cannot compile into
// millions of intervals.
const maxFlapPeriods = 100000

// Validate checks the plan against a cluster of the given node count
// (pass 0 to skip the range check).
func (p *Plan) Validate(nodes int) error {
	for i, ev := range p.Events {
		prefix := fmt.Sprintf("fault: event %d (%s)", i, ev.Kind)
		switch ev.Kind {
		case KindLinkDown, KindLinkFlap, KindLossBurst, KindPortBlackout, KindNodePause, KindNICStall:
		default:
			return fmt.Errorf("fault: event %d has unknown kind %q", i, ev.Kind)
		}
		if ev.Node < 0 || (nodes > 0 && ev.Node >= nodes) {
			return fmt.Errorf("%s: node %d out of range [0,%d)", prefix, ev.Node, nodes)
		}
		if ev.AtMS < 0 {
			return fmt.Errorf("%s: atMS %v is negative", prefix, ev.AtMS)
		}
		if ev.UntilMS <= ev.AtMS {
			return fmt.Errorf("%s: untilMS %v must exceed atMS %v", prefix, ev.UntilMS, ev.AtMS)
		}
		if ev.Kind == KindLinkFlap {
			if ev.PeriodMS <= 0 {
				return fmt.Errorf("%s: periodMS %v must be positive", prefix, ev.PeriodMS)
			}
			if ev.DutyCycle < 0 || ev.DutyCycle > 1 {
				return fmt.Errorf("%s: dutyCycle %v outside [0,1]", prefix, ev.DutyCycle)
			}
			if (ev.UntilMS-ev.AtMS)/ev.PeriodMS > maxFlapPeriods {
				return fmt.Errorf("%s: expands to more than %d periods", prefix, maxFlapPeriods)
			}
		}
		if ev.Kind == KindLossBurst {
			for _, pr := range []struct {
				name string
				v    float64
			}{{"pEnterBurst", ev.PEnterBurst}, {"pExitBurst", ev.PExitBurst}, {"burstLoss", ev.BurstLoss}} {
				if pr.v < 0 || pr.v > 1 {
					return fmt.Errorf("%s: %s %v outside [0,1]", prefix, pr.name, pr.v)
				}
			}
			if ev.BurstLoss == 0 {
				return fmt.Errorf("%s: burstLoss must be positive", prefix)
			}
		}
	}
	return nil
}

// window is one half-open active interval [from, to).
type window struct {
	from, to sim.Time
}

// windows is a sorted, merged, non-overlapping interval set.
type windows []window

func (ws windows) contains(t sim.Time) bool {
	// Plans hold a handful of windows; linear scan with an early exit on
	// the sorted set beats a binary search at these sizes.
	for _, w := range ws {
		if t < w.from {
			return false
		}
		if t < w.to {
			return true
		}
	}
	return false
}

// end returns the end of the window containing t (t must be contained).
func (ws windows) end(t sim.Time) sim.Time {
	for _, w := range ws {
		if t >= w.from && t < w.to {
			return w.to
		}
	}
	return t
}

// total sums window lengths clipped to [0, limit].
func (ws windows) total(limit sim.Time) sim.Duration {
	var d sim.Duration
	for _, w := range ws {
		to := w.to
		if to > limit {
			to = limit
		}
		if to > w.from {
			d += to.Sub(w.from)
		}
	}
	return d
}

// merge sorts and coalesces overlapping or touching intervals.
func merge(ws windows) windows {
	if len(ws) <= 1 {
		return ws
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].from < ws[j].from })
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.from <= last.to {
			if w.to > last.to {
				last.to = w.to
			}
		} else {
			out = append(out, w)
		}
	}
	return out
}

func msToTime(ms float64) sim.Time {
	return sim.Time(0).Add(sim.Duration(ms * float64(sim.Millisecond)))
}

// geChain is one two-state Gilbert–Elliott loss process, active within
// its window and frozen outside it. Each consulted frame advances the
// state machine and, in the burst state, is lost with BurstLoss.
type geChain struct {
	win     window
	rng     *sim.Rand
	seed    uint64 // the stream's seed, kept for per-direction clones
	pEnter  float64
	pExit   float64
	loss    float64
	inBurst bool
	losses  uint64
}

// cloneFor returns a private copy of the chain at its initial state
// whose stream is derived from the original's seed and salt — the
// per-direction split partitioned runs need, since a chain advances per
// consulted frame and two link directions executing on different shards
// must not share one.
func (g *geChain) cloneFor(salt uint64) *geChain {
	z := g.seed ^ (salt+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return &geChain{
		win:    g.win,
		rng:    sim.NewRand(z),
		seed:   z,
		pEnter: g.pEnter,
		pExit:  g.pExit,
		loss:   g.loss,
	}
}

func (g *geChain) lose(now sim.Time) bool {
	if now < g.win.from || now >= g.win.to {
		return false
	}
	lost := false
	if g.inBurst && g.rng.Float64() < g.loss {
		lost = true
		g.losses++
	}
	if g.inBurst {
		if g.rng.Float64() < g.pExit {
			g.inBurst = false
		}
	} else if g.rng.Float64() < g.pEnter {
		g.inBurst = true
	}
	return lost
}

// linkState is the compiled per-node link fault state: merged down
// windows (link-down plus expanded flap periods) and optional loss-burst
// chains.
type linkState struct {
	down   windows
	bursts []*geChain
}

func (st *linkState) lose(now sim.Time) bool {
	if st.down.contains(now) {
		return true
	}
	for _, g := range st.bursts {
		if g.lose(now) {
			return true
		}
	}
	return false
}

// nicState is the compiled per-node NIC/host fault state.
type nicState struct {
	pause windows // node-pause: rx drops and tx stalls
	stall windows // nic-stall: tx stalls only
}

// Set is a compiled plan: per-node injector state plus the metadata the
// degradation report needs. Obtain one with Compile.
type Set struct {
	links map[int]*linkState
	ports map[int]windows
	nics  map[int]*nicState

	// cloneBursts registers the per-direction chain clones handed out by
	// LinkInjectorDir, per node, so BurstLosses stays exact when a
	// partitioned run splits a link's directions across shards.
	cloneBursts map[int][]*geChain

	lastEnd sim.Time
}

// Compile expands and validates a plan into a Set. seed is the cluster
// seed, mixed with the plan's own seed to derive every private random
// stream. A nil plan compiles to a nil Set: every injector accessor on
// the way down then hands out nil, keeping the unfaulted hot path to a
// single pointer comparison.
func Compile(p *Plan, seed uint64) (*Set, error) {
	if p == nil {
		return nil, nil
	}
	if err := p.Validate(0); err != nil {
		return nil, err
	}
	s := &Set{
		links:       make(map[int]*linkState),
		ports:       make(map[int]windows),
		nics:        make(map[int]*nicState),
		cloneBursts: make(map[int][]*geChain),
	}
	link := func(node int) *linkState {
		st := s.links[node]
		if st == nil {
			st = &linkState{}
			s.links[node] = st
		}
		return st
	}
	nic := func(node int) *nicState {
		st := s.nics[node]
		if st == nil {
			st = &nicState{}
			s.nics[node] = st
		}
		return st
	}
	for i, ev := range p.Events {
		from, to := msToTime(ev.AtMS), msToTime(ev.UntilMS)
		if to > s.lastEnd {
			s.lastEnd = to
		}
		// One private stream per event: deterministic, independent of
		// event order elsewhere in the plan and of the engine's RNG.
		evSeed := seed ^ p.Seed ^ (uint64(i)+1)*0x9E3779B97F4A7C15 ^ uint64(ev.Node)<<32
		switch ev.Kind {
		case KindLinkDown:
			link(ev.Node).down = append(link(ev.Node).down, window{from, to})
		case KindLinkFlap:
			rng := sim.NewRand(evSeed)
			period := sim.Duration(ev.PeriodMS * float64(sim.Millisecond))
			downLen := sim.Duration((1 - ev.DutyCycle) * float64(period))
			if downLen <= 0 {
				break // duty cycle 1: never down
			}
			st := link(ev.Node)
			for start := from; start < to; start = start.Add(period) {
				off := period - downLen // deterministic: up first, down at the tail
				if ev.Random && period > downLen {
					off = rng.Duration(period - downLen)
				}
				wFrom := start.Add(off)
				wTo := wFrom.Add(downLen)
				if wTo > to {
					wTo = to
				}
				if wTo > wFrom {
					st.down = append(st.down, window{wFrom, wTo})
				}
			}
		case KindLossBurst:
			link(ev.Node).bursts = append(link(ev.Node).bursts, &geChain{
				win:    window{from, to},
				rng:    sim.NewRand(evSeed),
				pEnter: ev.PEnterBurst,
				pExit:  ev.PExitBurst,
				loss:   ev.BurstLoss,
				seed:   evSeed,
			})
		case KindPortBlackout:
			s.ports[ev.Node] = append(s.ports[ev.Node], window{from, to})
		case KindNodePause:
			nic(ev.Node).pause = append(nic(ev.Node).pause, window{from, to})
		case KindNICStall:
			nic(ev.Node).stall = append(nic(ev.Node).stall, window{from, to})
		}
	}
	for _, st := range s.links {
		st.down = merge(st.down)
	}
	for node, ws := range s.ports {
		s.ports[node] = merge(ws)
	}
	for _, st := range s.nics {
		st.pause = merge(st.pause)
		st.stall = merge(st.stall)
	}
	return s, nil
}

// LinkInjector is consulted by an ether.Link for every frame it carries;
// it covers the link faults of every endpoint node passed to
// Set.LinkInjector.
type LinkInjector struct {
	states []*linkState
}

// Lose reports whether the frame in flight at virtual time now is lost
// to an injected fault.
func (in *LinkInjector) Lose(now sim.Time) bool {
	lost := false
	for _, st := range in.states {
		if st.lose(now) {
			lost = true
		}
	}
	return lost
}

// LinkInjector returns the injector covering the link faults of the
// given endpoint nodes, or nil if none of them has any (the nil keeps
// the unfaulted hot path a single comparison).
func (s *Set) LinkInjector(nodes ...int) *LinkInjector {
	var sts []*linkState
	for _, n := range nodes {
		if st := s.links[n]; st != nil {
			sts = append(sts, st)
		}
	}
	if len(sts) == 0 {
		return nil
	}
	return &LinkInjector{states: sts}
}

// LinkInjectorDir is LinkInjector for one direction of a link in a
// partitioned run. Stateless fault state (down windows) is shared with
// every other consumer, but each stateful Gilbert–Elliott chain is
// replaced by a private clone whose stream is derived from the chain's
// seed and salt — so the two directions, executing on different shards,
// advance independent deterministic chains instead of racing on one.
// Salt must be unique per (link, direction) within the run; the clones
// are registered so BurstLosses stays exact.
func (s *Set) LinkInjectorDir(salt uint64, nodes ...int) *LinkInjector {
	var sts []*linkState
	for _, n := range nodes {
		st := s.links[n]
		if st == nil {
			continue
		}
		if len(st.bursts) == 0 {
			sts = append(sts, st) // immutable windows only: share
			continue
		}
		c := &linkState{down: st.down}
		for _, g := range st.bursts {
			cg := g.cloneFor(salt)
			c.bursts = append(c.bursts, cg)
			s.cloneBursts[n] = append(s.cloneBursts[n], cg)
		}
		sts = append(sts, c)
	}
	if len(sts) == 0 {
		return nil
	}
	return &LinkInjector{states: sts}
}

// HubInjector is consulted by an ether.Hub per frame with the frame's
// endpoints: a frame is lost if either endpoint's link is faulted.
type HubInjector struct {
	states map[int]*linkState
}

// Lose reports whether a src→dst frame at virtual time now is lost.
func (in *HubInjector) Lose(now sim.Time, src, dst int) bool {
	lost := false
	if st := in.states[src]; st != nil && st.lose(now) {
		lost = true
	}
	if st := in.states[dst]; st != nil && st.lose(now) {
		lost = true
	}
	return lost
}

// HubInjector returns the shared-medium injector, or nil if the plan has
// no link faults at all.
func (s *Set) HubInjector() *HubInjector {
	if len(s.links) == 0 {
		return nil
	}
	return &HubInjector{states: s.links}
}

// PortInjector is consulted by a switch port; Blocked frames are dropped
// at the forwarding plane.
type PortInjector struct {
	ws windows
}

// Blocked reports whether the port is blacked out at virtual time now.
func (in *PortInjector) Blocked(now sim.Time) bool { return in.ws.contains(now) }

// PortInjector returns node's switch-port injector, or nil.
func (s *Set) PortInjector(node int) *PortInjector {
	ws := s.ports[node]
	if len(ws) == 0 {
		return nil
	}
	return &PortInjector{ws: ws}
}

// NICInjector is consulted by a NIC on its receive and transmit paths.
type NICInjector struct {
	st *nicState
}

// RxDrop reports whether a received frame is dropped because the host is
// paused at virtual time now.
func (in *NICInjector) RxDrop(now sim.Time) bool { return in.st.pause.contains(now) }

// StallUntil reports the time the NIC's transmit engine may next fetch a
// frame, if a stall or pause window covers now.
func (in *NICInjector) StallUntil(now sim.Time) (sim.Time, bool) {
	until := now
	if in.st.pause.contains(now) {
		if e := in.st.pause.end(now); e > until {
			until = e
		}
	}
	if in.st.stall.contains(now) {
		if e := in.st.stall.end(now); e > until {
			until = e
		}
	}
	return until, until > now
}

// NICInjector returns node's NIC injector, or nil.
func (s *Set) NICInjector(node int) *NICInjector {
	st := s.nics[node]
	if st == nil {
		return nil
	}
	return &NICInjector{st: st}
}

// Downtime reports how long node's link was forced down within [0, end].
func (s *Set) Downtime(node int, end sim.Time) sim.Duration {
	st := s.links[node]
	if st == nil {
		return 0
	}
	return st.down.total(end)
}

// BurstLosses reports frames the node's Gilbert–Elliott chains have lost
// so far — the original chains plus any per-direction clones handed out
// by LinkInjectorDir (a run consults one family or the other, never
// both, so the sum double-counts nothing).
func (s *Set) BurstLosses(node int) uint64 {
	var n uint64
	if st := s.links[node]; st != nil {
		for _, g := range st.bursts {
			n += g.losses
		}
	}
	for _, g := range s.cloneBursts[node] {
		n += g.losses
	}
	return n
}

// LastFaultEnd reports the end of the latest scheduled fault window —
// the instant after which the network is clean and recovery time is
// measured.
func (s *Set) LastFaultEnd() sim.Time { return s.lastEnd }

// Nodes returns the sorted set of nodes any fault touches.
func (s *Set) Nodes() []int {
	seen := map[int]bool{}
	for n := range s.links {
		seen[n] = true
	}
	for n := range s.ports {
		seen[n] = true
	}
	for n := range s.nics {
		seen[n] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
