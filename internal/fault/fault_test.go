package fault

import (
	"strings"
	"testing"

	"pushpull/internal/sim"
)

func ms(v float64) sim.Time { return msToTime(v) }

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string // substring of the error, "" for valid
	}{
		{"valid link-down", Event{Kind: KindLinkDown, Node: 0, AtMS: 1, UntilMS: 2}, ""},
		{"unknown kind", Event{Kind: "meteor-strike", AtMS: 0, UntilMS: 1}, "unknown kind"},
		{"node out of range", Event{Kind: KindLinkDown, Node: 9, AtMS: 0, UntilMS: 1}, "out of range"},
		{"negative node", Event{Kind: KindLinkDown, Node: -1, AtMS: 0, UntilMS: 1}, "out of range"},
		{"negative at", Event{Kind: KindLinkDown, AtMS: -1, UntilMS: 1}, "negative"},
		{"empty window", Event{Kind: KindLinkDown, AtMS: 2, UntilMS: 2}, "must exceed"},
		{"flap no period", Event{Kind: KindLinkFlap, AtMS: 0, UntilMS: 1, DutyCycle: 0.5}, "periodMS"},
		{"flap bad duty", Event{Kind: KindLinkFlap, AtMS: 0, UntilMS: 1, PeriodMS: 0.1, DutyCycle: 1.5}, "dutyCycle"},
		{"flap explodes", Event{Kind: KindLinkFlap, AtMS: 0, UntilMS: 1e9, PeriodMS: 0.001, DutyCycle: 0.5}, "periods"},
		{"burst bad prob", Event{Kind: KindLossBurst, AtMS: 0, UntilMS: 1, PEnterBurst: 2, BurstLoss: 0.5}, "outside [0,1]"},
		{"burst zero loss", Event{Kind: KindLossBurst, AtMS: 0, UntilMS: 1, PEnterBurst: 0.1, PExitBurst: 0.1}, "burstLoss"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Plan{Events: []Event{tc.ev}}
			err := p.Validate(4)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	if _, err := ParsePlan([]byte(`{nope`)); err == nil {
		t.Error("ParsePlan accepted malformed JSON")
	}
	p, err := ParsePlan([]byte(`{"seed":3,"events":[{"kind":"link-down","node":1,"atMS":1,"untilMS":2}]}`))
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 3 || len(p.Events) != 1 || p.Events[0].Kind != KindLinkDown {
		t.Errorf("ParsePlan decoded %+v", p)
	}
}

func TestCompileNilPlan(t *testing.T) {
	s, err := Compile(nil, 1)
	if err != nil {
		t.Fatalf("Compile(nil): %v", err)
	}
	if s != nil {
		t.Fatalf("Compile(nil) = %+v, want nil set (nil-check-only hot path)", s)
	}
}

func TestLinkDownWindowsMerged(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindLinkDown, Node: 1, AtMS: 5, UntilMS: 8},
		{Kind: KindLinkDown, Node: 1, AtMS: 1, UntilMS: 3},
		{Kind: KindLinkDown, Node: 1, AtMS: 2, UntilMS: 6}, // bridges the two
	}}
	s, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := s.LinkInjector(1)
	if in == nil {
		t.Fatal("no injector for faulted node")
	}
	for _, tc := range []struct {
		atMS float64
		lost bool
	}{{0.5, false}, {1, true}, {4, true}, {7.999, true}, {8, false}, {9, false}} {
		if got := in.Lose(ms(tc.atMS)); got != tc.lost {
			t.Errorf("Lose(@%gms) = %v, want %v", tc.atMS, got, tc.lost)
		}
	}
	if got, want := s.Downtime(1, ms(100)), 7*sim.Millisecond; got != want {
		t.Errorf("Downtime = %v, want %v (merged [1,8))", got, want)
	}
	if got, want := s.Downtime(1, ms(4)), 3*sim.Millisecond; got != want {
		t.Errorf("Downtime clamped to 4ms = %v, want %v", got, want)
	}
	if s.LinkInjector(0) != nil {
		t.Error("unfaulted node got a non-nil injector")
	}
	if got := s.LastFaultEnd(); got != ms(8) {
		t.Errorf("LastFaultEnd = %v, want 8 ms", got)
	}
}

func TestFlapDeterministicAcrossCompiles(t *testing.T) {
	p := &Plan{Seed: 9, Events: []Event{
		{Kind: KindLinkFlap, Node: 0, AtMS: 0, UntilMS: 10, PeriodMS: 1, DutyCycle: 0.6, Random: true},
	}}
	probe := func() (pattern []bool, down sim.Duration) {
		s, err := Compile(p, 42)
		if err != nil {
			t.Fatal(err)
		}
		in := s.LinkInjector(0)
		for us := 0; us < 10000; us += 50 {
			pattern = append(pattern, in.Lose(sim.Time(0).Add(sim.Duration(us)*sim.Microsecond)))
		}
		return pattern, s.Downtime(0, ms(10))
	}
	p1, d1 := probe()
	p2, d2 := probe()
	if d1 != d2 {
		t.Fatalf("downtime differs across compiles: %v vs %v", d1, d2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("flap pattern differs at probe %d", i)
		}
	}
	// 40% duty-cycle downtime over 10 ms, each period's down interval
	// possibly clipped at the plan end: strictly positive, at most 4 ms.
	if d1 <= 0 || d1 > 4*sim.Millisecond {
		t.Errorf("flap downtime = %v, want in (0, 4ms]", d1)
	}
	// A different cluster seed must move the random phases.
	s3, _ := Compile(p, 43)
	if got := s3.Downtime(0, ms(10)); got <= 0 {
		t.Errorf("reseeded flap downtime = %v, want positive", got)
	}
}

func TestGilbertElliottChain(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindLossBurst, Node: 2, AtMS: 0, UntilMS: 100,
			PEnterBurst: 0.2, PExitBurst: 0.2, BurstLoss: 1},
	}}
	s, err := Compile(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	in := s.LinkInjector(2)
	losses := 0
	const frames = 2000
	for i := 0; i < frames; i++ {
		if in.Lose(ms(float64(i) * 0.01)) {
			losses++
		}
	}
	if uint64(losses) != s.BurstLosses(2) {
		t.Errorf("observed %d losses, counter says %d", losses, s.BurstLosses(2))
	}
	// Stationary burst occupancy is pEnter/(pEnter+pExit) = 0.5 with
	// certain loss inside a burst: losses must be plentiful but partial.
	if losses < frames/10 || losses > frames*9/10 {
		t.Errorf("losses = %d of %d, want a partial correlated pattern", losses, frames)
	}
	// Outside the window the chain is frozen: no loss, no state advance.
	if in.Lose(ms(200)) {
		t.Error("chain lost a frame outside its window")
	}
	if got := s.BurstLosses(2); got != uint64(losses) {
		t.Errorf("out-of-window consult changed the loss counter: %d", got)
	}
}

func TestPortAndNICInjectors(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: KindPortBlackout, Node: 1, AtMS: 1, UntilMS: 2},
		{Kind: KindNICStall, Node: 2, AtMS: 3, UntilMS: 5},
		{Kind: KindNodePause, Node: 2, AtMS: 4, UntilMS: 6},
	}}
	s, err := Compile(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.PortInjector(1)
	if pi == nil || !pi.Blocked(ms(1.5)) || pi.Blocked(ms(2.5)) {
		t.Error("port blackout window wrong")
	}
	if s.PortInjector(2) != nil {
		t.Error("node 2 has no port fault but got an injector")
	}
	ni := s.NICInjector(2)
	if ni == nil {
		t.Fatal("no NIC injector for node 2")
	}
	// During the pause the host drops rx; during stall-only it must not.
	if ni.RxDrop(ms(3.5)) {
		t.Error("rx dropped during a tx-only stall")
	}
	if !ni.RxDrop(ms(4.5)) {
		t.Error("rx not dropped during a node pause")
	}
	// Stall and pause overlap [4,5): tx may not fetch until the later
	// end (pause until 6).
	if until, stalled := ni.StallUntil(ms(4.5)); !stalled || until != ms(6) {
		t.Errorf("StallUntil(@4.5ms) = %v,%v, want 6ms,true", until, stalled)
	}
	if _, stalled := ni.StallUntil(ms(6.5)); stalled {
		t.Error("stalled after every window closed")
	}
	if got := s.Nodes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Nodes() = %v, want [1 2]", got)
	}
	if got := s.LastFaultEnd(); got != ms(6) {
		t.Errorf("LastFaultEnd = %v, want 6 ms", got)
	}
}
