package scenario

import (
	"runtime"
	"testing"
	"time"
)

// settledGoroutines samples runtime.NumGoroutine until it stops falling,
// giving just-unwound process goroutines time to actually exit.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		time.Sleep(time.Millisecond)
		m := runtime.NumGoroutine()
		if m >= n {
			return m
		}
		n = m
	}
	return n
}

// TestSweepGoroutineLeak is the regression test for the parked-process
// leak: points that exhaust their virtual-time budget end with rank
// threads and protocol pumps still parked, and before Engine.Shutdown
// each such point leaked its whole goroutine complement for the life of
// the process — a sweep-killer at grid scale. After a sweep whose points
// ALL fail on budget, the goroutine count must return to baseline.
func TestSweepGoroutineLeak(t *testing.T) {
	base := DefaultSpec()
	base.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 2}
	base.Traffic = Traffic{Pattern: "alltoall", Size: 1400, Messages: 20}
	base.MaxVirtualMS = 0.0001 // nothing completes inside this budget
	sw := Sweep{Name: "leaky", Base: base, Grid: Grid{Seeds: []uint64{1, 2, 3, 4}}}

	baseline := settledGoroutines()
	res, err := RunSweep(sw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != res.Points || res.Points != 4 {
		t.Fatalf("want all 4 points budget-failed, got %d/%d", res.Failed, res.Points)
	}
	// Allow the sweep workers themselves to wind down, then compare.
	if got := settledGoroutines(); got > baseline {
		t.Fatalf("%d goroutines after sweep, baseline %d — budget-exhausted points leak parked processes",
			got, baseline)
	}
}

// TestRunShutdownAfterSuccess: the normal (completed) run path also
// tears its cluster down — success must not be the leaky branch.
func TestRunShutdownAfterSuccess(t *testing.T) {
	baseline := settledGoroutines()
	spec := DefaultSpec()
	spec.Traffic = Traffic{Pattern: "pingpong", Size: 64, Messages: 3}
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if got := settledGoroutines(); got > baseline {
		t.Fatalf("%d goroutines after completed run, baseline %d", got, baseline)
	}
}

// BenchmarkPumpBoundScenario is the end-to-end counterpart to
// BenchmarkTaskletSwitch: a full pingpong scenario whose wall time is
// dominated by protocol-pump handoffs (NIC tx/wire/rx, go-back-N lanes),
// i.e. by whichever tier those pumps run on. The tasklet conversion
// shows up here as whole-scenario speedup, not just a micro number.
func BenchmarkPumpBoundScenario(b *testing.B) {
	spec := DefaultSpec()
	spec.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 200}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
