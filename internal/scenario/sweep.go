package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"pushpull/internal/fault"
)

// Sweep is a declarative parameter study: one base Spec expanded over a
// cartesian grid of parameter axes. Like Spec it is a plain struct with
// a stable JSON encoding, so sweeps are files too. Each grid point is an
// independent scenario run with its own engine; the expansion order —
// and therefore the result order and the aggregate digest — is fixed by
// the spec alone, never by scheduling.
type Sweep struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Base supplies every field the grid does not vary.
	Base Spec `json:"base"`
	Grid Grid `json:"grid"`
}

// Grid names the swept axes. An empty axis keeps the base value; the
// expansion is the cartesian product of the non-empty axes, ordered
// nodes (outermost) > procsPerNode > pushedBufBytes > sizes >
// lossRates > rtoMs > gbnWindow > algorithms > faultPlans > seeds
// (innermost).
type Grid struct {
	// Nodes varies Topology.Nodes.
	Nodes []int `json:"nodes,omitempty"`
	// ProcsPerNode varies Topology.ProcsPerNode.
	ProcsPerNode []int `json:"procsPerNode,omitempty"`
	// PushedBufBytes varies Protocol.PushedBufBytes.
	PushedBufBytes []int `json:"pushedBufBytes,omitempty"`
	// Sizes varies Traffic.Size.
	Sizes []int `json:"sizes,omitempty"`
	// LossRates varies Topology.LossRate.
	LossRates []float64 `json:"lossRates,omitempty"`
	// RTOMs varies Protocol.RTOMs (the go-back-N fixed retransmission
	// timeout, milliseconds).
	RTOMs []float64 `json:"rtoMs,omitempty"`
	// GBNWindows varies Protocol.GBNWindow (the go-back-N send window,
	// frames).
	GBNWindows []int `json:"gbnWindows,omitempty"`
	// Algorithms varies Traffic.Algorithm (collective patterns only —
	// expansion fails on a pattern with no algorithm axis).
	Algorithms []string `json:"algorithms,omitempty"`
	// FaultPlans varies Spec.Faults over the named presets of
	// FaultPlanByName ("none" clears the base plan), so degradation
	// studies sweep fault shapes like any other parameter.
	FaultPlans []string `json:"faultPlans,omitempty"`
	// Seeds varies Seed.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// FaultPlanNames lists the named fault-plan presets a sweep's
// faultPlans axis accepts, sorted.
func FaultPlanNames() []string { return []string{"blackout-5ms", "burst-loss", "flap", "none"} }

// FaultPlanByName returns a preset fault plan for sweep axes: small,
// one-event shapes targeting node 1 (present in every networked
// topology). "none" returns nil — the clean-baseline cell.
func FaultPlanByName(name string) (*fault.Plan, error) {
	switch name {
	case "none":
		return nil, nil
	case "blackout-5ms":
		return &fault.Plan{Events: []fault.Event{
			{Kind: fault.KindLinkDown, Node: 1, AtMS: 1, UntilMS: 6},
		}}, nil
	case "flap":
		return &fault.Plan{Events: []fault.Event{
			{Kind: fault.KindLinkFlap, Node: 1, AtMS: 0, UntilMS: 10,
				PeriodMS: 1, DutyCycle: 0.6, Random: true},
		}}, nil
	case "burst-loss":
		return &fault.Plan{Events: []fault.Event{
			{Kind: fault.KindLossBurst, Node: 1, AtMS: 0, UntilMS: 20,
				PEnterBurst: 0.03, PExitBurst: 0.25, BurstLoss: 0.5},
		}}, nil
	}
	return nil, fmt.Errorf("scenario: unknown fault plan %q (have %v)", name, FaultPlanNames())
}

// Point is one expanded grid cell: a complete runnable Spec plus its
// position in grid order. FaultPlan records the cell's faultPlans
// preset name ("" when that axis is not swept) — the plan itself lives
// in Spec.Faults, but results label cells by name.
type Point struct {
	Index     int
	Spec      Spec
	FaultPlan string
}

// Points reports the expansion size without expanding.
func (g Grid) Points() int {
	n := 1
	for _, axis := range []int{
		len(g.Nodes), len(g.ProcsPerNode), len(g.PushedBufBytes), len(g.Sizes), len(g.LossRates),
		len(g.RTOMs), len(g.GBNWindows), len(g.Algorithms), len(g.FaultPlans), len(g.Seeds),
	} {
		if axis > 0 {
			n *= axis
		}
	}
	return n
}

// Expand materializes the grid in its deterministic order. Every point
// is validated; an invalid cell (e.g. a nodes value the base topology
// kind cannot host) fails the whole expansion, so a sweep never runs
// half a study.
func (sw Sweep) Expand() ([]Point, error) {
	// Non-positive axis values would be silently ignored by the spec
	// lowering (clusterConfig only applies them when > 0), leaving the
	// point labelled with a parameter it did not run — reject them
	// outright. Sizes <= 0 are caught by Spec.Validate below.
	for _, n := range sw.Grid.Nodes {
		if n <= 0 {
			return nil, fmt.Errorf("scenario: sweep grid nodes value %d is not positive", n)
		}
	}
	for _, p := range sw.Grid.ProcsPerNode {
		if p <= 0 {
			return nil, fmt.Errorf("scenario: sweep grid procsPerNode value %d is not positive", p)
		}
	}
	for _, b := range sw.Grid.PushedBufBytes {
		if b <= 0 {
			return nil, fmt.Errorf("scenario: sweep grid pushedBufBytes value %d is not positive", b)
		}
	}
	for _, r := range sw.Grid.RTOMs {
		if r <= 0 {
			return nil, fmt.Errorf("scenario: sweep grid rtoMs value %g is not positive", r)
		}
	}
	for _, w := range sw.Grid.GBNWindows {
		if w <= 0 {
			return nil, fmt.Errorf("scenario: sweep grid gbnWindows value %d is not positive", w)
		}
	}
	for _, l := range sw.Grid.LossRates {
		if l < 0 || l > 1 {
			return nil, fmt.Errorf("scenario: sweep grid loss rate %g outside [0, 1]", l)
		}
	}
	for _, a := range sw.Grid.Algorithms {
		// An empty value would silently mean "the default" while the
		// point's name claims an explicit algorithm — reject it.
		if a == "" {
			return nil, fmt.Errorf("scenario: sweep grid algorithms value is empty (name an algorithm explicitly)")
		}
	}
	for _, f := range sw.Grid.FaultPlans {
		// Resolve every preset up front: a typo fails the expansion, not
		// point N of a half-run study.
		if _, err := FaultPlanByName(f); err != nil {
			return nil, fmt.Errorf("scenario: sweep grid faultPlans: %w", err)
		}
	}
	axes := []struct {
		key    string
		n      int
		format func(i int) string
		apply  func(s *Spec, i int)
	}{
		{"nodes", len(sw.Grid.Nodes),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.Nodes[i]) },
			func(s *Spec, i int) { s.Topology.Nodes = sw.Grid.Nodes[i] }},
		{"procs", len(sw.Grid.ProcsPerNode),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.ProcsPerNode[i]) },
			func(s *Spec, i int) { s.Topology.ProcsPerNode = sw.Grid.ProcsPerNode[i] }},
		{"buf", len(sw.Grid.PushedBufBytes),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.PushedBufBytes[i]) },
			func(s *Spec, i int) { s.Protocol.PushedBufBytes = sw.Grid.PushedBufBytes[i] }},
		{"size", len(sw.Grid.Sizes),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.Sizes[i]) },
			func(s *Spec, i int) { s.Traffic.Size = sw.Grid.Sizes[i] }},
		{"loss", len(sw.Grid.LossRates),
			func(i int) string { return fmt.Sprintf("%g", sw.Grid.LossRates[i]) },
			func(s *Spec, i int) { s.Topology.LossRate = sw.Grid.LossRates[i] }},
		{"rto", len(sw.Grid.RTOMs),
			func(i int) string { return fmt.Sprintf("%g", sw.Grid.RTOMs[i]) },
			func(s *Spec, i int) { s.Protocol.RTOMs = sw.Grid.RTOMs[i] }},
		{"win", len(sw.Grid.GBNWindows),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.GBNWindows[i]) },
			func(s *Spec, i int) { s.Protocol.GBNWindow = sw.Grid.GBNWindows[i] }},
		{"alg", len(sw.Grid.Algorithms),
			func(i int) string { return sw.Grid.Algorithms[i] },
			func(s *Spec, i int) { s.Traffic.Algorithm = sw.Grid.Algorithms[i] }},
		{"faults", len(sw.Grid.FaultPlans),
			func(i int) string { return sw.Grid.FaultPlans[i] },
			func(s *Spec, i int) {
				p, _ := FaultPlanByName(sw.Grid.FaultPlans[i]) // pre-validated above
				s.Faults = p
			}},
		{"seed", len(sw.Grid.Seeds),
			func(i int) string { return fmt.Sprintf("%d", sw.Grid.Seeds[i]) },
			func(s *Spec, i int) { s.Seed = sw.Grid.Seeds[i] }},
	}

	base := sw.Base
	name := sw.Name
	if name == "" {
		name = base.Name
	}
	points := make([]Point, 0, sw.Grid.Points())
	// idx walks the mixed-radix counter over the non-empty axes, seeds
	// fastest — a plain counting loop keeps the order self-evident.
	idx := make([]int, len(axes))
	for {
		spec := base
		suffix := ""
		faultPlan := ""
		for a, ax := range axes {
			if ax.n == 0 {
				continue
			}
			ax.apply(&spec, idx[a])
			if ax.key == "faults" {
				faultPlan = ax.format(idx[a])
			}
			if suffix != "" {
				suffix += ","
			}
			suffix += ax.key + "=" + ax.format(idx[a])
		}
		spec.Name = name
		if suffix != "" {
			spec.Name = name + "/" + suffix
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: sweep %q point %q: %w", name, spec.Name, err)
		}
		points = append(points, Point{Index: len(points), Spec: spec, FaultPlan: faultPlan})

		// Increment the counter, innermost (last) axis fastest.
		a := len(axes) - 1
		for ; a >= 0; a-- {
			if axes[a].n == 0 {
				continue
			}
			idx[a]++
			if idx[a] < axes[a].n {
				break
			}
			idx[a] = 0
		}
		if a < 0 {
			return points, nil
		}
	}
}

// PointResult is one grid cell's outcome. Exactly one of Error and
// Result is set: a point whose run fails (validation, livelock budget,
// or a panic out of the protocol model) is reported in place, so one
// pathological cell cannot void a 200-point study.
type PointResult struct {
	Index          int     `json:"index"`
	Name           string  `json:"name"`
	Nodes          int     `json:"nodes"`
	PushedBufBytes int     `json:"pushedBufBytes"`
	Size           int     `json:"size"`
	LossRate       float64 `json:"lossRate"`
	Algorithm      string  `json:"algorithm,omitempty"`
	// FaultPlan names the cell's faultPlans preset ("" when the axis is
	// not swept).
	FaultPlan string `json:"faultPlan,omitempty"`
	Seed      uint64 `json:"seed"`
	Error     string `json:"error,omitempty"`
	// BudgetExhausted flags an Error that was a virtual-time-budget
	// exhaustion (protocol deadlock or retransmission livelock), so
	// sweeps over pathological cells are machine-checkable without
	// string matching. PeerUnreachable flags the structured failure
	// instead: the transport diagnosed a dead peer and failed fast.
	BudgetExhausted bool    `json:"budgetExhausted,omitempty"`
	PeerUnreachable bool    `json:"peerUnreachable,omitempty"`
	Result          *Result `json:"result,omitempty"`
}

// SweepResult is the machine-readable outcome of a whole sweep, in grid
// order. Nothing in it depends on wall time or worker count: running the
// same sweep with 1 worker or GOMAXPROCS produces a byte-identical
// encoding, and the aggregate Digest makes that checkable at a glance.
type SweepResult struct {
	Sweep       string        `json:"sweep"`
	Description string        `json:"description,omitempty"`
	Points      int           `json:"points"`
	Failed      int           `json:"failed"`
	Results     []PointResult `json:"results"`
	// Digest is a SHA-256 over every point's digest (or error) in grid
	// order: two sweeps agree iff all their runs do.
	Digest string `json:"digest"`
}

// JSON renders the sweep result indented for files and stdout.
func (r *SweepResult) JSON() []byte {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	return out
}

// ParallelFor runs do(i) for every i in [0, n) across a pool of
// workers. It is the repo's one across-runs parallelism primitive: each
// do call owns its simulation engines outright (engines are single-
// threaded by design), so parallelism lives strictly across runs, never
// within one, and results indexed by i need no locking. workers <= 0
// means GOMAXPROCS; ParallelFor returns when every call has.
func ParallelFor(n, workers int, do func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			do(i)
		}
		return
	}
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				do(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		indices <- i
	}
	close(indices)
	wg.Wait()
}

// RunSweep expands the sweep and runs every point across a worker pool,
// one simulation engine per goroutine. workers <= 0 means GOMAXPROCS.
// Results come back in grid order regardless of completion order.
func RunSweep(sw Sweep, workers int, opts ...RunOption) (*SweepResult, error) {
	points, err := sw.Expand()
	if err != nil {
		return nil, err
	}
	results := make([]PointResult, len(points))
	ParallelFor(len(points), workers, func(i int) {
		results[i] = runPoint(points[i], opts...)
	})

	name := sw.Name
	if name == "" {
		name = sw.Base.Name
	}
	res := &SweepResult{
		Sweep:       name,
		Description: sw.Description,
		Points:      len(results),
		Results:     results,
	}
	h := sha256.New()
	for i := range results {
		pr := &results[i]
		if pr.Error != "" {
			res.Failed++
			fmt.Fprintf(h, "%d %s error %s\n", pr.Index, pr.Name, pr.Error)
			continue
		}
		fmt.Fprintf(h, "%d %s %s\n", pr.Index, pr.Name, pr.Result.Digest)
	}
	res.Digest = hex.EncodeToString(h.Sum(nil))
	return res, nil
}

// runPoint runs one cell, converting errors and model panics into the
// point's Error field. The recover matters under parallelism: a panic
// escaping a worker goroutine would kill the whole process, turning one
// bad cell into zero results.
func runPoint(pt Point, opts ...RunOption) (pr PointResult) {
	s := pt.Spec
	pr = PointResult{
		Index:          pt.Index,
		Name:           s.Name,
		Nodes:          s.Topology.Nodes,
		PushedBufBytes: s.Protocol.PushedBufBytes,
		Size:           s.Traffic.Size,
		LossRate:       s.Topology.LossRate,
		Algorithm:      s.Traffic.Algorithm,
		FaultPlan:      pt.FaultPlan,
		Seed:           s.Seed,
	}
	defer func() {
		if r := recover(); r != nil {
			pr.Result = nil
			pr.Error = fmt.Sprintf("panic: %v", r)
		}
	}()
	res, err := Run(s, opts...)
	if err != nil {
		pr.Error = err.Error()
		pr.BudgetExhausted = IsBudgetError(err)
		pr.PeerUnreachable = IsPeerUnreachable(err)
		return pr
	}
	pr.Result = res
	return pr
}

// ParseSweep overlays JSON onto a default-rooted sweep, so a sweep file
// only states what differs from the paper's testbed (mirroring
// ParseSpec).
func ParseSweep(data []byte) (Sweep, error) {
	sw := Sweep{Base: DefaultSpec()}
	if err := json.Unmarshal(data, &sw); err != nil {
		return Sweep{}, fmt.Errorf("scenario: parsing sweep: %w", err)
	}
	if _, err := sw.Expand(); err != nil {
		return Sweep{}, err
	}
	return sw, nil
}

// JSON renders the sweep spec canonically.
func (sw Sweep) JSON() []byte {
	out, err := json.MarshalIndent(sw, "", "  ")
	if err != nil {
		panic(err)
	}
	return out
}

// BuiltinSweeps returns the named parameter studies shipped with the
// engine: a small grid for CI determinism checks and a larger study
// exercising every axis.
func BuiltinSweeps() []Sweep {
	smoke := Sweep{
		Name:        "smoke-grid",
		Description: "small CI grid: permutation traffic over nodes x size x seed (8 points, seconds)",
		Base:        DefaultSpec(),
	}
	smoke.Base.Topology = Topology{Kind: "switch", Nodes: 2, ProcsPerNode: 1, Policy: "symmetric"}
	smoke.Base.Traffic = Traffic{Pattern: "permutation", Size: 1400, Messages: 10}
	smoke.Grid = Grid{
		Nodes: []int{2, 4},
		Sizes: []int{256, 1400},
		Seeds: []uint64{1, 2},
	}

	study := Sweep{
		Name:        "perm-study",
		Description: "48-point study: permutation latency vs nodes x pushed buffer x size x loss x seed",
		Base:        DefaultSpec(),
	}
	study.Base.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	study.Base.Protocol.RTOMs = 2
	study.Base.Traffic = Traffic{Pattern: "permutation", Size: 1400, Messages: 30}
	study.Grid = Grid{
		Nodes:          []int{4, 6},
		PushedBufBytes: []int{4096, 16384},
		Sizes:          []int{1400, 4096},
		LossRates:      []float64{0, 0.005},
		Seeds:          []uint64{1, 2, 3},
	}

	collSmoke := Sweep{
		Name:        "coll-smoke",
		Description: "CI grid for the collective family: allreduce over nodes x algorithm x seed (16 points, seconds)",
		Base:        DefaultSpec(),
	}
	collSmoke.Base.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	collSmoke.Base.Traffic = Traffic{Pattern: "allreduce", Size: 1024, Messages: 5}
	collSmoke.Grid = Grid{
		Nodes:      []int{2, 4},
		Algorithms: []string{"tree", "recursive-doubling", "ring", "rs-ag"},
		Seeds:      []uint64{1, 2},
	}

	faultSmoke := Sweep{
		Name:        "fault-smoke",
		Description: "CI grid for the fault family: internode ping-pong over faultPlan x seed (8 points, seconds) — pins that every preset degrades and recovers identically across worker counts",
		Base:        DefaultSpec(),
	}
	faultSmoke.Base.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 100}
	faultSmoke.Base.Protocol.RTOMs = 2
	faultSmoke.Base.Protocol.AdaptiveRTO = true
	faultSmoke.Base.Protocol.MaxRetries = 10
	faultSmoke.Base.MaxVirtualMS = 3000
	faultSmoke.Grid = Grid{
		FaultPlans: []string{"none", "blackout-5ms", "flap", "burst-loss"},
		Seeds:      []uint64{1, 2},
	}

	protoGrid := Sweep{
		Name:        "proto-grid",
		Description: "CI grid for the transport axes: internode ping-pong over procsPerNode x rtoMs x gbnWindow on a lossy wire (8 points, seconds)",
		Base:        DefaultSpec(),
	}
	protoGrid.Base.Topology.LossRate = 0.002 // make the RTO/window axes matter
	protoGrid.Base.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 50}
	protoGrid.Grid = Grid{
		ProcsPerNode: []int{1, 2},
		RTOMs:        []float64{2, 8},
		GBNWindows:   []int{8, 32},
	}

	return []Sweep{smoke, study, collSmoke, faultSmoke, protoGrid}
}

// SweepNames lists the builtin sweep names, sorted.
func SweepNames() []string {
	sweeps := BuiltinSweeps()
	names := make([]string, 0, len(sweeps))
	for _, sw := range sweeps {
		names = append(names, sw.Name)
	}
	sort.Strings(names)
	return names
}

// SweepByName returns the builtin sweep with the given name.
func SweepByName(name string) (Sweep, error) {
	for _, sw := range BuiltinSweeps() {
		if sw.Name == name {
			return sw, nil
		}
	}
	return Sweep{}, fmt.Errorf("scenario: unknown sweep %q (have %v)", name, SweepNames())
}
