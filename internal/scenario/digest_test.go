package scenario

import "testing"

// The sim core's fast path (pooled events, in-place cancellation, the
// same-time dispatch queue, the single-op process handoff) must preserve
// the engine's total event order exactly — not approximately. These
// digests were captured from every builtin scenario at full size BEFORE
// the optimization (the internal/bench/equivalence_test.go methodology,
// applied to the scenario layer): a diff here means an optimization
// reordered, dropped or duplicated at least one event somewhere in the
// stack.
//
// If a deliberate model change moves these values, recapture with:
//
//	go run ./cmd/pushpull-scen run <name> 2>&1 | grep digest
var pinnedDigests = map[string]string{
	"paper-intranode-pingpong": "5439bb88711ee766c4978699161c58aff9824b804771d259c412447eab4cb00f",
	"paper-internode-pingpong": "626644b3d849f4aaeb6ff3b665dcf7a21f5e605f76e5a1d1ab4f332c8a357c03",
	"paper-early-receiver":     "8320f5db40eb3c351f260d36f9f761c554005f5e3a8cf4923dcf3213fe19e919",
	"paper-late-receiver":      "865005ba176db8cc8173257d67c80078b161a61b15530600ff563c02ee6b53b1",
	"paper-bandwidth":          "f3e5d6e584ce8c9aeac9b189b2ea64dec40cd8eea796fd46071c870b9a21668c",
	"hotspot":                  "c189231fd725a1ba9447f0a9960940aae83bbcfabfd8e9deba4770d0b6868583",
	"permutation":              "86f016b22c5677aa80f8e92c90f4a4375518a5096bfbb04fe299aa26131bc076",
	"bursty":                   "851b506877d8ccb35577159d5f8f0f848cd1ce0c2786ddb88b953a34446c6a62",
	"pipeline":                 "6ab138f75483b5714f8a5d2e709942873bd897bf845694345e3b3e329c73657e",
	"wavefront":                "99d405f5d3f3f6dc717eb0f717f66daea7fc76dbc0311fc3db07cee9f1c7e429",
	"wavefront-adaptive":       "712fad4497df472ace2756f57f21bb42e984b402e6e9e24eb7c70a3c5fdac3b8",
	"hub-hotspot":              "b1b1cc1cc473f086c3a8df9402303baa2679d91100f1a5b2b68dd468b988cfc2",
	"lossy-permutation":        "66fb62b4ff28244f365d3421e73b9ea0afebb55695d8c085f3369a9ad02f72ee",
}

// TestBuiltinDigestsPinned runs all builtin scenarios at full size and
// compares against the pre-optimization capture byte for byte.
func TestBuiltinDigestsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size scenario runs are not short")
	}
	specs := Builtin()
	if len(specs) != len(pinnedDigests) {
		t.Errorf("have %d builtin scenarios but %d pinned digests — pin new scenarios here as they are added",
			len(specs), len(pinnedDigests))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := pinnedDigests[spec.Name]
			if !ok {
				t.Fatalf("no pinned digest for %q", spec.Name)
			}
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != want {
				t.Errorf("digest diverged from the pre-optimization capture:\n  got  %s\n  want %s",
					res.Digest, want)
			}
		})
	}
}
