package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The protocol stack and the sim core must produce every builtin
// scenario's result byte for byte: a diff against the pinned capture
// means something reordered, dropped or duplicated at least one event
// somewhere in the stack. The digests live in testdata/digests.json so
// the capture is data, not code.
//
// Legitimate recaptures are *wire-behavior changes* — a protocol-level
// redesign (e.g. the per-channel session split), a new cost model, a new
// builtin scenario. Run:
//
//	make digests
//
// and review the diff: every changed digest must be explainable by the
// change you made. A digest that moves under a pure optimization
// (scheduling, pooling, caching) is a bug, not a recapture.
var updateDigests = flag.Bool("update", false, "regenerate testdata/digests.json from the current builtin scenarios")

const digestFile = "testdata/digests.json"

func readPinnedDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(digestFile)
	if err != nil {
		t.Fatalf("reading pinned digests (run `make digests` to capture): %v", err)
	}
	pinned := make(map[string]string)
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatalf("parsing %s: %v", digestFile, err)
	}
	return pinned
}

// TestBuiltinDigestsPinned runs all builtin scenarios at full size and
// compares against the pinned capture byte for byte. With -update it
// rewrites the capture instead.
func TestBuiltinDigestsPinned(t *testing.T) {
	if testing.Short() && !*updateDigests {
		t.Skip("full-size scenario runs are not short")
	}
	specs := Builtin()

	if *updateDigests {
		pinned := make(map[string]string, len(specs))
		for _, spec := range specs {
			res, err := Run(spec)
			if err != nil {
				t.Fatalf("capturing %s: %v", spec.Name, err)
			}
			pinned[spec.Name] = res.Digest
			t.Logf("captured %-26s %s", spec.Name, res.Digest)
		}
		// json.MarshalIndent sorts map keys, so the capture is stable.
		out, err := json.MarshalIndent(pinned, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(digestFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(digestFile, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	pinned := readPinnedDigests(t)
	if len(specs) != len(pinned) {
		t.Errorf("have %d builtin scenarios but %d pinned digests — run `make digests` and review the diff",
			len(specs), len(pinned))
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			want, ok := pinned[spec.Name]
			if !ok {
				t.Fatalf("no pinned digest for %q — run `make digests` and review the diff", spec.Name)
			}
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Digest != want {
				t.Errorf("digest diverged from the pinned capture (wire-behavior change? run `make digests` and review):\n  got  %s\n  want %s",
					res.Digest, want)
			}
		})
	}
}
