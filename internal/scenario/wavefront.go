package scenario

import (
	"encoding/binary"
	"fmt"
	"sort"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// The wavefront pattern is the engine's irregular, data-dependent shape
// (in the spirit of the wavefront-propagation workloads of the
// irregular-application literature): rank Root injects Messages seed
// messages, and every delivered message below Depth triggers Fanout new
// sends whose targets and sizes are derived from the received payload
// bytes — the communication graph unfolds from the data as it arrives.
//
// Because the derivation is a pure function of delivered bytes and the
// transport is reliable, the full message graph is computable in
// advance. The pattern does exactly that to know how many messages each
// directed channel will carry (each channel gets one reactor thread
// receiving that many messages); at run time the reactors re-derive the
// children from the bytes they actually received, so a corrupted or
// misdelivered payload would desynchronize the run and be caught as a
// count mismatch.

// wfHeaderBytes is the payload prefix carrying the generative state:
// an 8-byte key, a 1-byte depth, and the 8-byte send timestamp.
const wfHeaderBytes = 17

// wfMix is a 64-bit finalizer (splitmix64-style) used for all
// data-derived decisions.
func wfMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// wfParams is the wavefront's resolved configuration.
type wfParams struct {
	ranks   int
	root    int
	width   int // initial messages injected by the root
	fanout  int
	depth   int
	minSize int
	maxSize int
}

func wavefrontParams(s Spec, ranks int) (wfParams, error) {
	p := wfParams{
		ranks:   ranks,
		root:    s.Traffic.Root,
		width:   s.Traffic.Messages,
		fanout:  s.Traffic.Fanout,
		depth:   s.Traffic.Depth,
		minSize: s.Traffic.MinSize,
		maxSize: s.Traffic.MaxSize,
	}
	if p.fanout <= 0 {
		p.fanout = 2
	}
	if p.depth <= 0 {
		p.depth = 3
	}
	// Size bounds: zero means default; an explicit bad value is an
	// error, never a silent substitution — a run must mean exactly what
	// its spec says.
	switch {
	case p.minSize == 0:
		p.minSize = 64
	case p.minSize < wfHeaderBytes:
		return p, fmt.Errorf("scenario: wavefront minSize %d is below the %d-byte payload header", p.minSize, wfHeaderBytes)
	}
	switch {
	case p.maxSize == 0:
		p.maxSize = max(p.minSize, s.Traffic.Size)
	case p.maxSize < p.minSize:
		return p, fmt.Errorf("scenario: wavefront maxSize %d is below minSize %d", p.maxSize, p.minSize)
	}
	if ranks < 2 {
		return p, fmt.Errorf("scenario: wavefront needs at least 2 ranks, have %d", ranks)
	}
	if p.root < 0 || p.root >= ranks {
		return p, fmt.Errorf("scenario: wavefront root %d out of range (%d ranks)", p.root, ranks)
	}
	// Bound the explosion: width * fanout^depth messages.
	total := p.width
	for d, layer := 0, p.width; d < p.depth; d++ {
		layer *= p.fanout
		total += layer
		if total > 1_000_000 {
			return p, fmt.Errorf("scenario: wavefront of width %d, fanout %d, depth %d exceeds 1M messages", p.width, p.fanout, p.depth)
		}
	}
	return p, nil
}

// wfChild derives child k of a message with generative key key held by
// rank holder: a new key, a target rank (never the holder itself) and a
// payload size in [minSize, maxSize].
func (p wfParams) wfChild(key uint64, holder, k int) (childKey uint64, target, size int) {
	childKey = wfMix(key + uint64(k) + 1)
	target = int(childKey % uint64(p.ranks))
	if target == holder {
		target = (target + 1) % p.ranks
	}
	span := p.maxSize - p.minSize + 1
	size = p.minSize + int((childKey>>32)%uint64(span))
	return childKey, target, size
}

// wfPlan walks the message graph without running it, returning the
// per-directed-channel message counts and the totals.
func (p wfParams) plan(seed uint64) (counts map[[2]int]int, messages int, bytes uint64) {
	type node struct {
		key    uint64
		holder int
		depth  int
	}
	counts = make(map[[2]int]int)
	var queue []node
	for i := 0; i < p.width; i++ {
		key, target, size := p.wfChild(wfMix(seed)+uint64(i), p.root, i)
		counts[[2]int{p.root, target}]++
		messages++
		bytes += uint64(size)
		queue = append(queue, node{key: key, holder: target, depth: 1})
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.depth >= p.depth {
			continue
		}
		for k := 0; k < p.fanout; k++ {
			key, target, size := p.wfChild(n.key, n.holder, k)
			counts[[2]int{n.holder, target}]++
			messages++
			bytes += uint64(size)
			queue = append(queue, node{key: key, holder: target, depth: n.depth + 1})
		}
	}
	return counts, messages, bytes
}

// wfEncode builds a payload of the given size carrying (key, depth,
// sentAt) in its header; the rest is key-derived filler.
func wfEncode(buf []byte, size int, key uint64, depth int, sentAt sim.Time) []byte {
	msg := buf[:size]
	binary.LittleEndian.PutUint64(msg[0:8], key)
	msg[8] = byte(depth)
	binary.LittleEndian.PutUint64(msg[9:17], uint64(sentAt))
	for i := wfHeaderBytes; i < size; i++ {
		msg[i] = byte(key >> (uint(i) % 64))
	}
	return msg
}

// runWavefront executes the pattern: one injector thread on the root,
// one reactor thread per active directed channel. Samples are
// per-message send-to-delivery latencies (the send timestamp rides in
// the payload).
func runWavefront(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	cms := ranks(c)
	p, err := wavefrontParams(s, len(cms))
	if err != nil {
		return nil, 0, err
	}
	counts, planMsgs, planBytes := p.plan(s.Seed)

	type chanKey = [2]int
	samples := make([]float64, 0, planMsgs)

	// Per-reactor accumulators: under a partitioned (PDES) cluster the
	// reactors run concurrently on their nodes' shards, so they must not
	// share mutable state. Each directed channel's reactor records into
	// its own slot; the slots are merged after the run. Totals are
	// order-independent, so they merge identically in both modes; raw
	// samples are digested in order, so the sequential engine keeps its
	// original global-event-order interleave (preserving the pinned
	// digests) while a partitioned run concatenates per-channel in
	// sorted (from, to) order — one more way a partition's digest
	// legitimately differs from the sequential engine's, while staying
	// byte-identical for any worker count.
	type wfAcc struct {
		samples []float64
		msgs    int
		bytes   uint64
		err     error
	}
	accs := make(map[chanKey]*wfAcc, len(counts))
	for ck, cnt := range counts {
		accs[ck] = &wfAcc{samples: make([]float64, 0, cnt)}
	}
	sequential := c.Partition == nil

	// Each active directed channel reuses one source staging buffer (the
	// translation cost is per-address, so reuse mirrors a real sender's
	// registered buffer) — exactly what the comm.Channel manages; its
	// growth follows the deterministic message order. The payload bytes
	// themselves are allocated per message: the pull phase reads the
	// source asynchronously, and the receivers re-derive the graph from
	// the bytes they are handed.
	srcChan := make(map[chanKey]*comm.Channel)
	for ck := range counts {
		ch := cms[ck[0]].To(cms[ck[1]].ID())
		srcChan[ck] = ch
	}

	// send transmits one wavefront message on the (from → to) channel.
	send := func(t *smp.Thread, from int, key uint64, target, size, depth int) {
		msg := wfEncode(make([]byte, size), size, key, depth, t.Now())
		must(srcChan[chanKey{from, target}].Send(t, msg))
	}

	// react processes one delivered payload: record the sample, then
	// derive and emit the children. The message graph is re-derived from
	// the received bytes — the data dependence is real, not replayed.
	react := func(t *smp.Thread, acc *wfAcc, self int, data []byte) {
		key := binary.LittleEndian.Uint64(data[0:8])
		depth := int(data[8])
		sentAt := sim.Time(binary.LittleEndian.Uint64(data[9:17]))
		if sequential {
			samples = append(samples, t.Now().Sub(sentAt).Microseconds())
		} else {
			acc.samples = append(acc.samples, t.Now().Sub(sentAt).Microseconds())
		}
		acc.msgs++
		acc.bytes += uint64(len(data))
		if depth >= p.depth {
			return
		}
		for k := 0; k < p.fanout; k++ {
			childKey, target, size := p.wfChild(key, self, k)
			send(t, self, childKey, target, size, depth+1)
		}
	}

	// One reactor per active directed channel, on the receiver's CPU.
	for ck, cnt := range counts {
		ck, cnt := ck, cnt
		acc := accs[ck]
		from, to := cms[ck[0]], cms[ck[1]]
		spawn(c, to, fmt.Sprintf("wf-r%d<-%d", ck[1], ck[0]), func(t *smp.Thread) {
			for i := 0; i < cnt; i++ {
				data, err := to.Recv(t, from.ID(), p.maxSize)
				if err != nil {
					acc.err = err
					return
				}
				react(t, acc, ck[1], data)
			}
		})
	}

	// The injector seeds the front from the root.
	spawn(c, cms[p.root], "wf-inject", func(t *smp.Thread) {
		for i := 0; i < p.width; i++ {
			key, target, size := p.wfChild(wfMix(s.Seed)+uint64(i), p.root, i)
			send(t, p.root, key, target, size, 1)
		}
	})
	simErr := runSim(c, s)
	// Merge the per-reactor accumulators in sorted channel order — the
	// same order for any worker count (and any map iteration).
	keys := make([]chanKey, 0, len(accs))
	for ck := range accs {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var (
		gotMsgs  int
		gotBytes uint64
		runErr   error
	)
	for _, ck := range keys {
		acc := accs[ck]
		gotMsgs += acc.msgs
		gotBytes += acc.bytes
		if acc.err != nil && runErr == nil {
			runErr = acc.err
		}
		if !sequential {
			samples = append(samples, acc.samples...)
		}
	}
	// A reactor's Recv error strands its peers, so the budget usually
	// expires too — the root cause outranks the generic budget report.
	if runErr != nil {
		return nil, 0, runErr
	}
	if simErr != nil {
		return nil, 0, simErr
	}
	if gotMsgs != planMsgs || gotBytes != planBytes {
		return nil, 0, fmt.Errorf("scenario: wavefront delivered %d messages / %d bytes, plan predicted %d / %d (data-dependent derivation diverged)",
			gotMsgs, gotBytes, planMsgs, planBytes)
	}
	return samples, gotBytes, nil
}
