package scenario

import (
	"strings"
	"testing"
)

// smallSweep shrinks a sweep's traffic for test wall time.
func smallSweep(sw Sweep) Sweep {
	if sw.Base.Traffic.Messages > 5 {
		sw.Base.Traffic.Messages = 5
	}
	return sw
}

// TestSweepExpansionOrder: the grid expands in the documented axis order
// (nodes > buf > size > loss > seed, seeds innermost), empty axes keep
// the base value, and every point gets a self-describing name.
func TestSweepExpansionOrder(t *testing.T) {
	sw := Sweep{Name: "order", Base: DefaultSpec()}
	sw.Base.Topology = Topology{Kind: "switch", Nodes: 2, ProcsPerNode: 1}
	sw.Base.Traffic = Traffic{Pattern: "pingpong", Size: 64, Messages: 3}
	sw.Grid = Grid{
		Nodes: []int{2, 4},
		Sizes: []int{64, 1400},
		Seeds: []uint64{7, 8},
	}
	if got := sw.Grid.Points(); got != 8 {
		t.Fatalf("Points() = %d, want 8", got)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("expanded %d points, want 8", len(points))
	}
	wantNames := []string{
		"order/nodes=2,size=64,seed=7",
		"order/nodes=2,size=64,seed=8",
		"order/nodes=2,size=1400,seed=7",
		"order/nodes=2,size=1400,seed=8",
		"order/nodes=4,size=64,seed=7",
		"order/nodes=4,size=64,seed=8",
		"order/nodes=4,size=1400,seed=7",
		"order/nodes=4,size=1400,seed=8",
	}
	for i, p := range points {
		if p.Index != i {
			t.Errorf("point %d carries index %d", i, p.Index)
		}
		if p.Spec.Name != wantNames[i] {
			t.Errorf("point %d name = %q, want %q", i, p.Spec.Name, wantNames[i])
		}
		// The unswept axes keep base values.
		if p.Spec.Protocol.PushedBufBytes != sw.Base.Protocol.PushedBufBytes {
			t.Errorf("point %d lost the base pushed-buffer size", i)
		}
		if p.Spec.Topology.LossRate != 0 {
			t.Errorf("point %d invented a loss rate", i)
		}
	}
	if points[5].Spec.Topology.Nodes != 4 || points[5].Spec.Traffic.Size != 64 || points[5].Spec.Seed != 8 {
		t.Errorf("point 5 = %+v, want nodes=4 size=64 seed=8", points[5].Spec)
	}
}

// TestSweepExpansionValidatesEveryPoint: one invalid cell fails the
// whole expansion — a sweep never silently runs half a study.
func TestSweepExpansionValidatesEveryPoint(t *testing.T) {
	sw := Sweep{Name: "invalid", Base: DefaultSpec()} // back-to-back base
	sw.Grid = Grid{Nodes: []int{2, 8}}                // 8 nodes needs a switch
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "at most 2 nodes") {
		t.Fatalf("Expand() = %v, want the back-to-back node-count error", err)
	}
}

// TestSweepExpansionRejectsInertAxisValues: non-positive nodes/buffer
// values and out-of-range loss rates would be silently ignored by the
// spec lowering while still labelling the point — they must fail the
// expansion instead of mislabelling a study.
func TestSweepExpansionRejectsInertAxisValues(t *testing.T) {
	cases := []struct {
		name string
		grid Grid
		want string
	}{
		{"zero nodes", Grid{Nodes: []int{0, 2}}, "nodes value 0"},
		{"zero buffer", Grid{PushedBufBytes: []int{0}}, "pushedBufBytes value 0"},
		{"negative loss", Grid{LossRates: []float64{-0.1}}, "loss rate -0.1"},
		{"loss above one", Grid{LossRates: []float64{1.5}}, "loss rate 1.5"},
		{"empty algorithm", Grid{Algorithms: []string{""}}, "algorithms value is empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw := Sweep{Name: "inert", Base: DefaultSpec(), Grid: tc.grid}
			if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Expand() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// The algorithm axis expands onto Traffic.Algorithm with labelled point
// names, and a base pattern without an algorithm axis fails expansion.
func TestSweepAlgorithmAxis(t *testing.T) {
	sw := Sweep{Name: "alg", Base: DefaultSpec()}
	sw.Base.Topology = Topology{Kind: "switch", Nodes: 2, ProcsPerNode: 1, Policy: "symmetric"}
	sw.Base.Traffic = Traffic{Pattern: "allreduce", Size: 256, Messages: 2}
	sw.Grid = Grid{Algorithms: []string{"tree", "ring"}}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("expanded %d points, want 2", len(points))
	}
	for i, wantAlg := range []string{"tree", "ring"} {
		if got := points[i].Spec.Traffic.Algorithm; got != wantAlg {
			t.Errorf("point %d algorithm = %q, want %q", i, got, wantAlg)
		}
		wantName := "alg/alg=" + wantAlg
		if points[i].Spec.Name != wantName {
			t.Errorf("point %d name = %q, want %q", i, points[i].Spec.Name, wantName)
		}
	}

	sw.Base.Traffic = Traffic{Pattern: "pingpong", Size: 256, Messages: 2}
	if _, err := sw.Expand(); err == nil || !strings.Contains(err.Error(), "does not take an algorithm") {
		t.Errorf("Expand() on a pattern without an algorithm axis = %v, want rejection", err)
	}
}

// TestSweepWorkerCountDoesNotChangeResults is the subsystem's core
// guarantee: 1 worker and many workers produce byte-identical sweep
// results, aggregate digest included. Running this under -race also
// checks the pool for data races.
func TestSweepWorkerCountDoesNotChangeResults(t *testing.T) {
	sw, err := SweepByName("smoke-grid")
	if err != nil {
		t.Fatal(err)
	}
	sw = smallSweep(sw)
	serial, err := RunSweep(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunSweep(sw, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Digest != parallel.Digest {
		t.Fatalf("worker count changed the aggregate digest:\n  1 worker:  %s\n  8 workers: %s",
			serial.Digest, parallel.Digest)
	}
	if string(serial.JSON()) != string(parallel.JSON()) {
		t.Fatal("same digest but different sweep encodings")
	}
	if serial.Failed != 0 {
		t.Fatalf("%d of %d smoke-grid points failed", serial.Failed, serial.Points)
	}
	if serial.Points != sw.Grid.Points() {
		t.Fatalf("ran %d points, grid says %d", serial.Points, sw.Grid.Points())
	}
}

// TestSweepReportsPointFailuresInPlace: a cell whose run fails (here: a
// virtual-time budget exhausted immediately) is reported in its grid
// slot with the error, and healthy cells still produce results.
func TestSweepReportsPointFailuresInPlace(t *testing.T) {
	base := DefaultSpec()
	base.Topology = Topology{Kind: "switch", Nodes: 2, ProcsPerNode: 1}
	base.Traffic = Traffic{Pattern: "pingpong", Size: 64, Messages: 3}
	base.MaxVirtualMS = 0.0001 // nothing completes inside this budget
	sw := Sweep{Name: "doomed", Base: base, Grid: Grid{Seeds: []uint64{1, 2}}}
	res, err := RunSweep(sw, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 2 {
		t.Fatalf("Failed = %d, want 2", res.Failed)
	}
	for i, pr := range res.Results {
		if pr.Index != i {
			t.Errorf("result %d carries index %d", i, pr.Index)
		}
		if pr.Result != nil || !strings.Contains(pr.Error, "budget") || !pr.BudgetExhausted {
			t.Errorf("point %d: Result=%v Error=%q BudgetExhausted=%v, want a flagged virtual-budget error and no result", i, pr.Result, pr.Error, pr.BudgetExhausted)
		}
	}
	// Determinism holds for failures too.
	again, err := RunSweep(sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != res.Digest {
		t.Fatalf("failure digests differ across worker counts: %s vs %s", res.Digest, again.Digest)
	}
}

// TestSweepPointResultsCarryTheirParameters: downstream analysis reads
// the swept parameters off each PointResult, not by re-deriving the grid.
func TestSweepPointResultsCarryTheirParameters(t *testing.T) {
	sw, err := SweepByName("smoke-grid")
	if err != nil {
		t.Fatal(err)
	}
	sw = smallSweep(sw)
	res, err := RunSweep(sw, 0) // 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	points, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range res.Results {
		spec := points[i].Spec
		if pr.Nodes != spec.Topology.Nodes || pr.Size != spec.Traffic.Size ||
			pr.Seed != spec.Seed || pr.Name != spec.Name {
			t.Errorf("point %d result parameters %+v do not match its spec", i, pr)
		}
		if pr.Result == nil || pr.Result.Digest == "" {
			t.Errorf("point %d has no sealed result", i)
		}
		if pr.Result != nil && pr.Result.Seed != spec.Seed {
			t.Errorf("point %d ran seed %d, spec says %d", i, pr.Result.Seed, spec.Seed)
		}
	}
}

// TestSweepJSONRoundTrip: sweep specs are files; rendering and parsing
// one back must be the identity, and parsing overlays base defaults.
func TestSweepJSONRoundTrip(t *testing.T) {
	for _, sw := range BuiltinSweeps() {
		back, err := ParseSweep(sw.JSON())
		if err != nil {
			t.Fatalf("%s: %v", sw.Name, err)
		}
		if string(back.JSON()) != string(sw.JSON()) {
			t.Errorf("%s: JSON round trip changed the sweep", sw.Name)
		}
	}
	// A sparse sweep file inherits the testbed defaults in its base.
	sparse, err := ParseSweep([]byte(`{"name":"sparse","base":{"topology":{"kind":"switch","nodes":2},"traffic":{"pattern":"pingpong","size":64,"messages":3}},"grid":{"seeds":[1,2,3]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if sparse.Base.Protocol.BTP != DefaultSpec().Protocol.BTP {
		t.Errorf("sparse sweep lost protocol defaults: %+v", sparse.Base.Protocol)
	}
	if sparse.Grid.Points() != 3 {
		t.Errorf("sparse sweep expands to %d points, want 3", sparse.Grid.Points())
	}
}
