package scenario

import (
	"errors"
	"testing"

	"pushpull/internal/fault"
	"pushpull/internal/pushpull"
)

// TestDeadLinkAllReduceFailsFast pins the end-to-end failure chain: a
// collective over a permanently dead link must surface the structured
// unreachable-peer error through coll.Request → comm.Op → Run within
// the retransmission budget — not stall until the virtual-time budget
// kills the run as a generic livelock.
func TestDeadLinkAllReduceFailsFast(t *testing.T) {
	s := DefaultSpec()
	s.Name = "dead-link-allreduce"
	s.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	s.Traffic = Traffic{Pattern: "allreduce", Size: 1024, Messages: 5, Algorithm: "recursive-doubling"}
	s.Protocol.RTOMs = 2
	s.Protocol.AdaptiveRTO = true
	s.Protocol.MaxRetries = 5
	s.MaxVirtualMS = 2000
	s.Faults = &fault.Plan{Events: []fault.Event{
		// Down before traffic starts and past any reachable virtual end.
		{Kind: fault.KindLinkDown, Node: 2, AtMS: 0, UntilMS: 10_000},
	}}

	res, err := Run(s)
	if err == nil {
		t.Fatalf("Run completed (%v) over a permanently dead link", res.Digest)
	}
	if !IsPeerUnreachable(err) {
		t.Fatalf("Run error = %v, want an unreachable-peer failure", err)
	}
	if IsBudgetError(err) {
		t.Fatalf("Run error = %v: the virtual budget fired before the retransmission budget", err)
	}
	var pe *pushpull.PeerUnreachableError
	if !errors.As(err, &pe) {
		t.Fatalf("Run error = %v, want a wrapped *PeerUnreachableError naming the dead pair", err)
	}
	if pe.Node != 2 && pe.Peer != 2 {
		t.Errorf("failure names pair (%d,%d); the dead link is node 2's", pe.Node, pe.Peer)
	}
}

// TestDeadLinkFailsFastDeterministically pins that the failure itself
// is reproducible: same spec, same diagnosis, same failed pair.
func TestDeadLinkFailsFastDeterministically(t *testing.T) {
	run := func() string {
		s := DefaultSpec()
		s.Name = "dead-link-pingpong"
		s.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 50}
		s.Protocol.RTOMs = 2
		s.Protocol.AdaptiveRTO = true
		s.Protocol.MaxRetries = 4
		s.MaxVirtualMS = 2000
		s.Faults = &fault.Plan{Events: []fault.Event{
			{Kind: fault.KindLinkDown, Node: 1, AtMS: 0.5, UntilMS: 10_000},
		}}
		_, err := Run(s)
		if err == nil {
			t.Fatal("Run completed over a permanently dead link")
		}
		if !IsPeerUnreachable(err) {
			t.Fatalf("Run error = %v, want unreachable-peer", err)
		}
		return err.Error()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("failure not reproducible:\n  %s\n  %s", a, b)
	}
}

// TestTransientBlackoutRecoversByteExactly pins the recovery story: a
// blackout shorter than the retransmission budget degrades the run but
// completes it, byte-identically across repeats, with the degradation
// section accounting for the outage.
func TestTransientBlackoutRecoversByteExactly(t *testing.T) {
	spec, err := ByName("blackout-recovery")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(spec)
	if err != nil {
		t.Fatalf("blackout-recovery failed: %v", err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatalf("second run failed: %v", err)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("transient blackout not byte-exact: %s vs %s", r1.Digest, r2.Digest)
	}
	d := r1.Degradation
	if d == nil {
		t.Fatal("fault run produced no degradation section")
	}
	if d.FailedOps != 0 {
		t.Errorf("failedOps = %d: the blackout is shorter than the budget, nothing may fail", d.FailedOps)
	}
	if d.Timeouts == 0 || d.Retransmissions == 0 {
		t.Errorf("blackout left no transport scars: timeouts=%d retransmissions=%d", d.Timeouts, d.Retransmissions)
	}
	if d.BackoffRTO == nil || d.BackoffRTO.Max <= d.BackoffRTO.Min {
		t.Errorf("backoff summary %+v shows no exponential growth", d.BackoffRTO)
	}
	if d.RecoveryUS <= 0 {
		t.Errorf("recoveryUS = %g: the run must outlive the last fault window", d.RecoveryUS)
	}
	var downtime float64
	for _, nd := range d.Nodes {
		downtime += nd.DowntimeUS
	}
	if downtime != 8000 {
		t.Errorf("total scheduled downtime = %g µs, want the plan's 8000", downtime)
	}
	if r1.FrameLoss == nil || r1.FrameLoss.LinkFaultLost == 0 {
		t.Errorf("frame-loss section missing the blackout's casualties: %+v", r1.FrameLoss)
	}
}

// TestDegradationNilWithoutPlan pins the digest-stability contract for
// pre-existing scenarios: no fault plan, no degradation section — and
// the observational frame-loss section stays out of the digest.
func TestDegradationNilWithoutPlan(t *testing.T) {
	spec, err := ByName("paper-internode-pingpong")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degradation != nil {
		t.Errorf("unfaulted run grew a degradation section: %+v", res.Degradation)
	}
	if res.FrameLoss == nil {
		t.Error("networked run missing the frame-loss section")
	}
	// Re-seal (same samples) with the frame-loss section forcibly
	// cleared: the digest may not move, proving it was never part of the
	// sealed encoding.
	withFL := res.Digest
	res.FrameLoss = nil
	res.seal(res.Samples, true)
	if res.Digest != withFL {
		t.Errorf("frame-loss section leaked into the digest: %s vs %s", res.Digest, withFL)
	}
}

// TestFaultSweepAxis pins the faultPlans sweep axis: presets resolve,
// unknown names fail expansion whole, and every cell of the builtin
// fault-smoke grid labels itself with its preset.
func TestFaultSweepAxis(t *testing.T) {
	if _, err := FaultPlanByName("typo"); err == nil {
		t.Error("FaultPlanByName accepted an unknown preset")
	}
	sw := Sweep{Base: DefaultSpec(), Name: "bad"}
	sw.Base.Traffic = Traffic{Pattern: "pingpong", Size: 100, Messages: 1}
	sw.Grid = Grid{FaultPlans: []string{"none", "typo"}}
	if _, err := sw.Expand(); err == nil {
		t.Error("Expand accepted a grid with an unknown fault preset")
	}

	fs, err := SweepByName("fault-smoke")
	if err != nil {
		t.Fatal(err)
	}
	points, err := fs.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("fault-smoke expanded to %d points, want 8", len(points))
	}
	for _, pt := range points {
		if pt.FaultPlan == "" {
			t.Errorf("point %q lost its fault-plan label", pt.Spec.Name)
		}
		if pt.FaultPlan == "none" && pt.Spec.Faults != nil {
			t.Errorf("point %q: preset none left a plan armed", pt.Spec.Name)
		}
		if pt.FaultPlan != "none" && pt.Spec.Faults == nil {
			t.Errorf("point %q: preset %s armed no plan", pt.Spec.Name, pt.FaultPlan)
		}
	}
}
