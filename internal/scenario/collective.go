package scenario

import (
	"bytes"
	"fmt"
	"sort"

	"pushpull/coll"
	"pushpull/comm"
	"pushpull/internal/cluster"
)

// The collective pattern family drives the public coll package — whole-
// world operations instead of per-channel streams — so the scenario
// engine can characterize the communication schedules real parallel
// programs are made of. Traffic.Algorithm selects the collective
// algorithm where one applies (the sweepable axis); every pattern
// verifies its results byte-exactly, so a run that completes is also a
// correctness witness for the schedule under the configured protocol,
// topology and loss rate.

// collAlgOp maps the patterns that take a Traffic.Algorithm to the coll
// operation whose algorithm table validates it.
var collAlgOp = map[string]coll.OpKind{
	"allreduce": coll.OpAllReduce,
	"bcast":     coll.OpBcast,
}

// algPatternNames lists the patterns with an algorithm axis, sorted.
func algPatternNames() []string {
	names := make([]string, 0, len(collAlgOp))
	for name := range collAlgOp {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// collFill derives rank r's deterministic contribution.
func collFill(r, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r*131 + i*7 + 1)
	}
	return b
}

// firstRankErr reduces per-rank error slots to one error, lowest rank
// first. The collective patterns record validation failures per rank —
// under a partitioned (PDES) cluster the ranks run concurrently on
// their nodes' shards, so they must not write one shared variable —
// and the lowest-rank pick keeps the reported error deterministic for
// any worker count.
func firstRankErr(rankErr []error) error {
	for _, err := range rankErr {
		if err != nil {
			return err
		}
	}
	return nil
}

// runAllReduce: every rank allreduces a Size-byte vector Messages
// times under the selected algorithm (XOR combine: commutative, so
// every algorithm must produce identical bytes). Samples are
// per-operation times measured on rank 0; each rank checks its result
// against the locally recomputed XOR of all contributions.
func runAllReduce(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	w := coll.NewWorld(c)
	size := w.Size()
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	alg := coll.Algorithm(s.Traffic.Algorithm)

	want := make([]byte, n)
	for rank := 0; rank < size; rank++ {
		want = coll.XorBytes(want, collFill(rank, n))
	}
	samples := make([]float64, 0, iters)
	rankErr := make([]error, size)
	w.Launch(func(r *coll.Rank) {
		data := collFill(r.ID(), n)
		r.Barrier()
		for i := 0; i < iters; i++ {
			start := r.Thread().Now()
			res := r.AllReduce(data, coll.XorBytes, coll.WithAlgorithm(alg))
			if !bytes.Equal(res, want) && rankErr[r.ID()] == nil {
				rankErr[r.ID()] = fmt.Errorf("scenario: allreduce rank %d iteration %d produced wrong bytes", r.ID(), i)
			}
			if r.ID() == 0 {
				samples = append(samples, r.Thread().Now().Sub(start).Microseconds())
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if err := firstRankErr(rankErr); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: allreduce finished %d of %d operations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(n) * uint64(size), nil
}

// collOpts lowers the spec's algorithm/segment knobs onto coll options.
func collOpts(s Spec) []coll.Opt {
	var opts []coll.Opt
	if alg := s.Traffic.Algorithm; alg != "" {
		opts = append(opts, coll.WithAlgorithm(coll.Algorithm(alg)))
	}
	if seg := s.Traffic.SegmentBytes; seg > 0 {
		opts = append(opts, coll.WithSegment(seg))
	}
	return opts
}

// runBcast: rank Root broadcasts a Size-byte vector Messages times
// under the selected algorithm; every rank verifies the received bytes
// against the root's deterministic fill. Samples are per-operation
// times on the terminal ring rank (root-1, the last hop of the chain
// algorithms and a leaf of the binomial tree), where completion of the
// whole operation is visible — the root itself finishes as soon as its
// sends retire locally.
func runBcast(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	w := coll.NewWorld(c)
	size := w.Size()
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	root := s.Traffic.Root
	if root < 0 || root >= size {
		return nil, 0, fmt.Errorf("scenario: bcast root %d out of range for %d ranks", root, size)
	}
	opts := collOpts(s)
	last := (root - 1 + size) % size

	payload := collFill(root, n)
	samples := make([]float64, 0, iters)
	rankErr := make([]error, size)
	w.Launch(func(r *coll.Rank) {
		r.Barrier()
		for i := 0; i < iters; i++ {
			start := r.Thread().Now()
			var data []byte
			if r.ID() == root {
				data = payload
			}
			got := r.Bcast(root, data, n, opts...)
			if !bytes.Equal(got, payload) && rankErr[r.ID()] == nil {
				rankErr[r.ID()] = fmt.Errorf("scenario: bcast rank %d iteration %d received wrong bytes", r.ID(), i)
			}
			if r.ID() == last {
				samples = append(samples, r.Thread().Now().Sub(start).Microseconds())
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if err := firstRankErr(rankErr); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: bcast finished %d of %d operations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(n) * uint64(size-1), nil
}

// runAllToAll: Messages rounds of a full block shuffle — every rank
// sends a distinct Size-byte block to every other rank (the transpose /
// FFT exchange). Samples are per-round times on rank 0; every received
// block is verified against the sender-derived fill.
func runAllToAll(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	w := coll.NewWorld(c)
	size := w.Size()
	n := s.Traffic.Size
	iters := s.Traffic.Messages

	samples := make([]float64, 0, iters)
	rankErr := make([]error, size)
	w.Launch(func(r *coll.Rank) {
		blocks := make([][]byte, size)
		for to := 0; to < size; to++ {
			blocks[to] = collFill(r.ID()*size+to, n)
		}
		r.Barrier()
		for i := 0; i < iters; i++ {
			start := r.Thread().Now()
			got := r.AllToAll(blocks, n)
			for from := 0; from < size; from++ {
				if !bytes.Equal(got[from], collFill(from*size+r.ID(), n)) && rankErr[r.ID()] == nil {
					rankErr[r.ID()] = fmt.Errorf("scenario: alltoall rank %d iteration %d got a wrong block from %d", r.ID(), i, from)
				}
			}
			if r.ID() == 0 {
				samples = append(samples, r.Thread().Now().Sub(start).Microseconds())
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if err := firstRankErr(rankErr); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: alltoall finished %d of %d rounds (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(n) * uint64(size) * uint64(size-1), nil
}

// runHalo: the 1-D stencil halo exchange with load imbalance — each
// iteration rank r computes ComputeX + r·ComputeY cycles, then swaps
// Size-byte halos with both chain neighbours (directions tagged so the
// receives can never cross-match). The skew makes neighbours
// systematically early/late, the paper's §5.3 race at scale. Samples
// are per-iteration times on the last (most loaded) rank.
func runHalo(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	w := coll.NewWorld(c)
	size := w.Size()
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	base, skew := s.Traffic.ComputeX, s.Traffic.ComputeY
	const (
		tagUp   = 1
		tagDown = 2
	)

	samples := make([]float64, 0, iters)
	rankErr := make([]error, size)
	w.Launch(func(r *coll.Rank) {
		rank := r.ID()
		left, right := rank-1, rank+1
		up := collFill(rank, n)   // halo this rank offers its successor
		down := collFill(rank, n) // and its predecessor
		for i := 0; i < iters; i++ {
			start := r.Thread().Now()
			r.Compute(base + int64(rank)*skew)
			var sends []*comm.Op
			if left >= 0 {
				sends = append(sends, r.Isend(left, down, comm.WithTag(tagDown)))
			}
			if right < size {
				sends = append(sends, r.Isend(right, up, comm.WithTag(tagUp)))
			}
			if left >= 0 {
				got := r.Recv(left, n, comm.WithTag(tagUp))
				if !bytes.Equal(got, collFill(left, n)) && rankErr[rank] == nil {
					rankErr[rank] = fmt.Errorf("scenario: halo rank %d iteration %d got a wrong halo from %d", rank, i, left)
				}
			}
			if right < size {
				got := r.Recv(right, n, comm.WithTag(tagDown))
				if !bytes.Equal(got, collFill(right, n)) && rankErr[rank] == nil {
					rankErr[rank] = fmt.Errorf("scenario: halo rank %d iteration %d got a wrong halo from %d", rank, i, right)
				}
			}
			if err := comm.WaitAll(r.Thread(), sends...); err != nil && rankErr[rank] == nil {
				rankErr[rank] = fmt.Errorf("scenario: halo rank %d iteration %d send: %w", rank, i, err)
			}
			if rank == size-1 {
				samples = append(samples, r.Thread().Now().Sub(start).Microseconds())
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if err := firstRankErr(rankErr); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: halo finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(2*(size-1)) * uint64(n), nil
}
