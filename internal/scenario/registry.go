package scenario

import (
	"fmt"
	"sort"

	"pushpull/internal/fault"
)

// Builtin returns the named scenarios shipped with the engine: the
// paper's own measurement shapes expressed declaratively, plus the
// workload shapes the bespoke bench drivers could not express. Each
// entry is a complete Spec — print it with Spec.JSON, tweak fields, and
// feed it back through ParseSpec.
func Builtin() []Spec {
	base := func(name, desc string) Spec {
		s := DefaultSpec()
		s.Name = name
		s.Description = desc
		return s
	}

	intraPing := base("paper-intranode-pingpong",
		"paper Fig. 3 headline point: 10 B intranode ping-pong, 12 KB pushed buffer (paper: 7.5 µs single trip)")
	intraPing.Topology.Kind = "intranode"
	intraPing.Topology.Nodes = 1
	intraPing.Topology.ProcsPerNode = 2
	intraPing.Protocol.PushedBufBytes = 12 << 10
	intraPing.Traffic = Traffic{Pattern: "pingpong", Size: 10, Messages: 1000}

	interPing := base("paper-internode-pingpong",
		"paper Fig. 4 full-optimization point: 1400 B internode ping-pong over back-to-back Fast Ethernet")
	interPing.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 1000}

	early := base("paper-early-receiver",
		"paper Fig. 6 (left): compute-then-communicate ping-pong, receiver arrives early (x=500k, y=100k NOPs)")
	early.Protocol.PushedBufBytes = 4096
	early.Traffic = Traffic{Pattern: "earlylate", Size: 2048, Messages: 200,
		ComputeX: 500_000, ComputeY: 100_000}

	late := base("paper-late-receiver",
		"paper Fig. 6 (right): compute-then-communicate ping-pong, receiver arrives late (x=100k, y=300k NOPs)")
	late.Protocol.PushedBufBytes = 4096
	late.Traffic = Traffic{Pattern: "earlylate", Size: 2048, Messages: 200,
		ComputeX: 100_000, ComputeY: 300_000}

	bw := base("paper-bandwidth",
		"paper §5 bandwidth body: 8 KB internode stream with per-message 4 B acks (paper peak: 12.1 MB/s)")
	bw.Traffic = Traffic{Pattern: "bandwidth", Size: 8192, Messages: 200}

	hotspot := base("hotspot",
		"all-to-one: seven senders converge on one sink over a switch, overflowing its pushed buffer")
	hotspot.Topology = Topology{Kind: "switch", Nodes: 8, ProcsPerNode: 1, Policy: "symmetric"}
	hotspot.Traffic = Traffic{Pattern: "hotspot", Size: 2048, Messages: 50}

	perm := base("permutation",
		"random permutation: every rank streams to a seed-derived partner, all channels concurrently")
	perm.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	perm.Traffic = Traffic{Pattern: "permutation", Size: 1400, Messages: 50}

	bursty := base("bursty",
		"on/off senders: 16-message bursts separated by 500 µs of silence, two sender/receiver pairs over a switch")
	bursty.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	bursty.Traffic = Traffic{Pattern: "bursty", Size: 4096, Messages: 96,
		BurstLen: 16, BurstIdleUS: 500}

	pipeline := base("pipeline",
		"store-and-forward chain through four nodes; end-to-end latency includes every hop's push/pull")
	pipeline.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	pipeline.Traffic = Traffic{Pattern: "pipeline", Size: 4096, Messages: 100}

	wave := base("wavefront",
		"irregular data-dependent propagation: each delivery triggers sends of payload-derived sizes to payload-derived targets")
	wave.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	wave.Traffic = Traffic{Pattern: "wavefront", Size: 1024, Messages: 4,
		Fanout: 2, Depth: 5, MinSize: 800, MaxSize: 2400}

	// eagerOverflow pins the protocol fix that retired the shared-stream
	// RTO livelock: a convergent wavefront whose data-derived sizes dip
	// below the 760 B BTP produces fully eager messages, and at seed 42
	// one is refused for lack of pushed-buffer slots while the slots are
	// held by messages parked behind it. On the old per-node-pair
	// go-back-N stream that was a permanent livelock (the refused
	// fragment sat in front of the pull data that would have freed the
	// buffer); on per-channel lanes every stream recovers within one RTO.
	// The tight budget is the regression tripwire: the run completes in
	// ~152 virtual ms, and any reintroduced cross-message blocking blows
	// the 3000 ms budget instead of hanging CI.
	eagerOverflow := base("eager-overflow",
		"seed-42 convergent fully-eager (size <= BTP) wavefront: livelocked the shared stream, completes on per-channel lanes")
	eagerOverflow.Seed = 42
	eagerOverflow.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	eagerOverflow.Traffic = Traffic{Pattern: "wavefront", Size: 1024, Messages: 4,
		Fanout: 2, Depth: 4, MinSize: 64, MaxSize: 2048}
	eagerOverflow.MaxVirtualMS = 3000

	waveAdaptive := base("wavefront-adaptive",
		"the wavefront under the AIMD BTP controller: adaptation chases the per-channel buffer headroom of an irregular load")
	waveAdaptive.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	waveAdaptive.Protocol.Adaptive = true
	waveAdaptive.Traffic = Traffic{Pattern: "wavefront", Size: 1024, Messages: 4,
		Fanout: 2, Depth: 5, MinSize: 800, MaxSize: 2400}

	hubHotspot := base("hub-hotspot",
		"the hotspot on one shared half-duplex segment: collisions and backoff jitter under convergence")
	hubHotspot.Topology = Topology{Kind: "hub", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	hubHotspot.Traffic = Traffic{Pattern: "hotspot", Size: 1400, Messages: 30}

	lossyPerm := base("lossy-permutation",
		"the permutation over a damaged cable (0.5% frame loss): go-back-N recoveries under concurrent streams")
	lossyPerm.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1,
		Policy: "symmetric", LossRate: 0.005}
	lossyPerm.Protocol.RTOMs = 2
	lossyPerm.Traffic = Traffic{Pattern: "permutation", Size: 1400, Messages: 40}

	// The collective family runs the public coll package — whole-world
	// schedules instead of per-channel streams — with Traffic.Algorithm
	// as the sweepable axis.
	collAllreduce := base("coll-allreduce",
		"collective family: 6-node recursive-doubling allreduce of 4 KB vectors, log-round pairwise exchanges under switch contention")
	collAllreduce.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	collAllreduce.Traffic = Traffic{Pattern: "allreduce", Size: 4096, Messages: 20,
		Algorithm: "recursive-doubling"}

	collAllreduceRing := base("coll-allreduce-ring",
		"the same allreduce on the ordered ring: 2(n-1) rounds in rank order — the algorithm-ablation partner of coll-allreduce")
	collAllreduceRing.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	collAllreduceRing.Traffic = Traffic{Pattern: "allreduce", Size: 4096, Messages: 20,
		Algorithm: "ring"}

	collAlltoall := base("coll-alltoall",
		"collective family: full block shuffle on 8 ranks (4 nodes x 2 procs) — the transpose/FFT exchange, intra- and internode at once")
	collAlltoall.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 2, Policy: "symmetric"}
	collAlltoall.Traffic = Traffic{Pattern: "alltoall", Size: 1024, Messages: 10}

	// The long-vector pair: the segmented/pipelined algorithms this
	// family exists to characterize, at sizes where the plain schedules
	// leave most links idle.
	collBcastSeg := base("coll-bcast-seg",
		"collective family: 64 KiB segmented ring broadcast through 6 switched nodes (8 KiB segments) — the pipelined chain, every link busy at once")
	collBcastSeg.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	collBcastSeg.Protocol.PushedBufBytes = 64 << 10
	collBcastSeg.Traffic = Traffic{Pattern: "bcast", Size: 64 << 10, Messages: 8,
		Algorithm: "ring-seg", SegmentBytes: 8192}

	collAllreduceRsag := base("coll-allreduce-rsag",
		"collective family: 32 KiB reduce-scatter + allgather allreduce on 8 switched ranks — 1/P blocks instead of full-vector rounds, no bottleneck rank")
	collAllreduceRsag.Topology = Topology{Kind: "switch", Nodes: 8, ProcsPerNode: 1, Policy: "symmetric"}
	collAllreduceRsag.Protocol.PushedBufBytes = 64 << 10
	collAllreduceRsag.Traffic = Traffic{Pattern: "allreduce", Size: 32 << 10, Messages: 8,
		Algorithm: "rs-ag"}

	collHalo := base("coll-halo",
		"collective family: 1-D halo exchange, 8 KB halos through 4 KB pushed buffers with rank-skewed compute — §5.3 early/late races at scale")
	collHalo.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	collHalo.Protocol.PushedBufBytes = 4096
	collHalo.Traffic = Traffic{Pattern: "halo", Size: 8192, Messages: 20,
		ComputeX: 300_000, ComputeY: 60_000}

	// The fault family exercises the deterministic fault-injection
	// subsystem (internal/fault) against the self-healing transport:
	// each pins a degradation-and-recovery story in its digest — per-
	// link downtime, retransmissions, backoff spread, recovery tail.
	blackoutRecovery := base("blackout-recovery",
		"fault family: the internode ping-pong through an 8 ms total link blackout — adaptive RTO backs off across the outage, delivery resumes exactly-once on restore")
	blackoutRecovery.Traffic = Traffic{Pattern: "pingpong", Size: 1400, Messages: 400}
	blackoutRecovery.Protocol.RTOMs = 2
	blackoutRecovery.Protocol.AdaptiveRTO = true
	blackoutRecovery.Protocol.MaxRetries = 10
	blackoutRecovery.MaxVirtualMS = 3000
	blackoutRecovery.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.KindLinkDown, Node: 1, AtMS: 2, UntilMS: 10},
	}}

	flakyAllreduce := base("flaky-link-allreduce",
		"fault family: recursive-doubling allreduce while one rank's cable suffers correlated Gilbert-Elliott loss bursts — go-back-N recoveries inside a collective schedule")
	flakyAllreduce.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	flakyAllreduce.Traffic = Traffic{Pattern: "allreduce", Size: 2048, Messages: 10,
		Algorithm: "recursive-doubling"}
	flakyAllreduce.Protocol.RTOMs = 2
	flakyAllreduce.Protocol.AdaptiveRTO = true
	flakyAllreduce.MaxVirtualMS = 3000
	flakyAllreduce.Faults = &fault.Plan{Seed: 7, Events: []fault.Event{
		{Kind: fault.KindLossBurst, Node: 2, AtMS: 0, UntilMS: 40,
			PEnterBurst: 0.02, PExitBurst: 0.25, BurstLoss: 0.6},
	}}

	flappingWave := base("flapping-wavefront",
		"fault family: the irregular wavefront over a flapping access link (1.5 ms period, 70% duty, seeded-random down phase) — retransmission storms meet data-dependent traffic")
	flappingWave.Topology = Topology{Kind: "switch", Nodes: 6, ProcsPerNode: 1, Policy: "symmetric"}
	flappingWave.Traffic = Traffic{Pattern: "wavefront", Size: 1024, Messages: 4,
		Fanout: 2, Depth: 5, MinSize: 800, MaxSize: 2400}
	flappingWave.Protocol.RTOMs = 2
	flappingWave.Protocol.AdaptiveRTO = true
	flappingWave.MaxVirtualMS = 3000
	flappingWave.Faults = &fault.Plan{Seed: 3, Events: []fault.Event{
		{Kind: fault.KindLinkFlap, Node: 3, AtMS: 0, UntilMS: 15,
			PeriodMS: 1.5, DutyCycle: 0.7, Random: true},
	}}

	portBlackoutPipeline := base("port-blackout-pipeline",
		"fault family: the store-and-forward chain through a switch-port blackout at hop 2 plus a NIC transmit stall at hop 1 — back-to-back faults at different layers of the same path")
	portBlackoutPipeline.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1, Policy: "symmetric"}
	portBlackoutPipeline.Traffic = Traffic{Pattern: "pipeline", Size: 4096, Messages: 60}
	portBlackoutPipeline.Protocol.RTOMs = 2
	portBlackoutPipeline.Protocol.AdaptiveRTO = true
	portBlackoutPipeline.Protocol.MaxRetries = 12
	portBlackoutPipeline.MaxVirtualMS = 3000
	portBlackoutPipeline.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.KindPortBlackout, Node: 2, AtMS: 1, UntilMS: 4},
		{Kind: fault.KindNICStall, Node: 1, AtMS: 5, UntilMS: 7},
	}}

	return []Spec{
		intraPing, interPing, early, late, bw,
		hotspot, perm, bursty, pipeline, wave,
		waveAdaptive, hubHotspot, lossyPerm, eagerOverflow,
		collAllreduce, collAllreduceRing, collAlltoall, collHalo,
		collBcastSeg, collAllreduceRsag,
		blackoutRecovery, flakyAllreduce, flappingWave, portBlackoutPipeline,
	}
}

// Names lists the builtin scenario names, sorted.
func Names() []string {
	specs := Builtin()
	names := make([]string, 0, len(specs))
	for _, s := range specs {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return names
}

// ByName returns the builtin scenario with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}
