package scenario

import (
	"errors"
	"fmt"
	"sort"

	"pushpull/comm"
	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// patternFunc drives one traffic shape on a built cluster and returns
// the per-message latency samples (µs) plus the payload bytes the
// pattern delivered. Implementations spawn threads, call c.Run()
// exactly once, and must be deterministic given the cluster's seed.
// Patterns program against the public comm API — the same surface the
// examples and collectives use.
type patternFunc func(c *cluster.Cluster, s Spec) (samples []float64, bytes uint64, err error)

// patternDoc describes one pattern for listings.
type patternDoc struct {
	run patternFunc
	doc string
}

var patterns = map[string]patternDoc{
	"pingpong":    {runPingPong, "two endpoints ping-pong Messages times; samples are half round trips (paper Figs. 3/4)"},
	"bandwidth":   {runBandwidthPattern, "unidirectional stream with a 4 B ack per message; samples are send+ack times (paper §5 bandwidth)"},
	"earlylate":   {runEarlyLate, "compute-then-communicate ping-pong with ComputeX/ComputeY NOPs (paper Fig. 6)"},
	"oneshot":     {runOneShot, "one untimed transfer with the receiver delayed DelayUS; the sample is the completion time"},
	"hotspot":     {runHotspot, "every rank sends Messages messages to rank Root; all-to-one buffer pressure"},
	"permutation": {runPermutation, "each rank streams to a seed-derived fixed-point-free permutation partner"},
	"bursty":      {runBursty, "sender ranks emit BurstLen-message bursts separated by BurstIdleUS of silence"},
	"pipeline":    {runPipeline, "rank 0 feeds a store-and-forward chain through every rank; samples are end-to-end"},
	"wavefront":   {runWavefront, "irregular: each received message triggers Fanout sends of data-derived sizes to data-derived targets"},
	"allreduce":   {runAllReduce, "collective: world-wide Size-byte allreduce, Messages ops; Algorithm picks tree | recursive-doubling | ring | rs-ag"},
	"bcast":       {runBcast, "collective: rank Root broadcasts Size bytes, Messages ops; Algorithm picks binomial | ring | ring-seg (SegmentBytes sets the pipeline segment)"},
	"alltoall":    {runAllToAll, "collective: Messages rounds of the full block shuffle, one Size-byte block per directed rank pair"},
	"halo":        {runHalo, "collective: 1-D halo exchange with rank-skewed compute (ComputeX + rank*ComputeY cycles), Size-byte halos"},
}

// PatternNames lists the traffic patterns, sorted.
func PatternNames() []string {
	names := make([]string, 0, len(patterns))
	for name := range patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PatternDoc returns the one-line description of a pattern.
func PatternDoc(name string) string { return patterns[name].doc }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// defaultVirtualBudget bounds runs whose spec does not set one: ten
// virtual minutes, far beyond any legitimate scenario on this testbed.
const defaultVirtualBudget = 10 * 60 * 1000 // ms

// ErrVirtualBudget marks a run that exhausted its virtual-time budget
// with events still pending — the signature of a protocol deadlock or
// retransmission livelock. It is cluster.ErrBudget (the same condition
// reported by cluster.RunWithin). Check with errors.Is;
// cmd/pushpull-scen turns it into a distinct exit code so CI detects
// stalls mechanically.
var ErrVirtualBudget = cluster.ErrBudget

// IsBudgetError reports whether err is a virtual-time-budget exhaustion.
func IsBudgetError(err error) bool { return errors.Is(err, ErrVirtualBudget) }

// IsPeerUnreachable reports whether err is (or wraps) a structured
// unreachable-peer failure: the transport exhausted its retransmission
// budget toward a dead node and failed the operation instead of
// retrying forever. Distinct from IsBudgetError — the run ended with a
// diagnosis, not a stall; cmd/pushpull-scen gives it its own exit code.
func IsPeerUnreachable(err error) bool { return errors.Is(err, pushpull.ErrPeerUnreachable) }

// runSim drives the cluster within the spec's virtual-time budget. It
// returns an ErrVirtualBudget-wrapping error if the budget expired with
// events still pending (see Spec.MaxVirtualMS); the caller's own
// completion checks add pattern context.
//
// Either way the cluster is shut down before returning: a budget-
// exhausted run leaves rank threads and protocol helpers parked, and
// without the teardown each one would leak its goroutine for the life of
// the sweep.
func runSim(c *cluster.Cluster, s Spec) error {
	budget := s.MaxVirtualMS
	if budget <= 0 {
		budget = defaultVirtualBudget
	}
	limit := sim.Time(0).Add(sim.Duration(budget * float64(sim.Millisecond)))
	c.RunUntil(limit)
	pending := c.Pending()
	c.Shutdown()
	if pending > 0 {
		return fmt.Errorf("scenario: %w: %g ms elapsed with %d events still pending — protocol deadlock or retransmission livelock",
			ErrVirtualBudget, budget, pending)
	}
	return nil
}

// pair returns the two communicating processes of the two-endpoint
// patterns: (0,0) and, on a single-node cluster, (0,1), otherwise (1,0)
// — exactly the bench harness's Workload.build choice.
func pair(c *cluster.Cluster) (a, b *comm.Comm) {
	a = comm.At(c, 0, 0)
	if len(c.Nodes) == 1 {
		return a, comm.At(c, 0, 1)
	}
	return a, comm.At(c, 1, 0)
}

// barrier performs the paper's barrier: a simple 4-byte ping-pong.
func barrier(t *smp.Thread, self *comm.Comm, peer comm.ProcessID, initiator bool) error {
	tiny := []byte{1, 2, 3, 4}
	if initiator {
		if err := self.Send(t, peer, tiny); err != nil {
			return err
		}
		_, err := self.Recv(t, peer, 4)
		return err
	}
	if _, err := self.Recv(t, peer, 4); err != nil {
		return err
	}
	return self.Send(t, peer, tiny)
}

// spawn starts a thread on the process's own node and CPU.
func spawn(c *cluster.Cluster, cm *comm.Comm, name string, body func(t *smp.Thread)) {
	c.Nodes[cm.ID().Node].Spawn(name, cm.Endpoint().CPU, body)
}

// runPingPong is the paper's latency test: Messages timed round trips
// after one barrier; each sample is half a round trip in microseconds.
func runPingPong(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i)
	}
	samples := make([]float64, 0, iters)

	spawn(c, a, "ping", func(t *smp.Thread) {
		must(barrier(t, a, b.ID(), true))
		for i := 0; i < iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID(), msg))
			_, err := a.Recv(t, b.ID(), n)
			must(err)
			rt := t.Now().Sub(start)
			samples = append(samples, rt.Microseconds()/2)
		}
	})
	spawn(c, b, "pong", func(t *smp.Thread) {
		must(barrier(t, b, a.ID(), false))
		for i := 0; i < iters; i++ {
			_, err := b.Recv(t, a.ID(), n)
			must(err)
			must(b.Send(t, a.ID(), msg))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: ping-pong finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(2*iters) * uint64(n), nil
}

// runBandwidthPattern is the paper's bandwidth test body: Messages
// iterations of "send Size bytes, receive a 4-byte acknowledgement";
// each sample is one send+ack time in microseconds. (The paper's MB/s
// figure subtracts a 4-byte single-trip baseline; internal/bench and the
// Result's Throughput field both derive rates from these samples.)
func runBandwidthPattern(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	msg := make([]byte, n)
	ackBuf := []byte{1, 2, 3, 4}
	samples := make([]float64, 0, iters)

	spawn(c, a, "src", func(t *smp.Thread) {
		must(barrier(t, a, b.ID(), true))
		for i := 0; i < iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID(), msg))
			_, err := a.Recv(t, b.ID(), 4)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds())
		}
	})
	spawn(c, b, "sink", func(t *smp.Thread) {
		must(barrier(t, b, a.ID(), false))
		for i := 0; i < iters; i++ {
			_, err := b.Recv(t, a.ID(), n)
			must(err)
			must(b.Send(t, a.ID(), ackBuf))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: bandwidth finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(n), nil
}

// runEarlyLate is the paper's redesigned ping-pong (Fig. 5): both sides
// compute before they communicate, with ComputeX and ComputeY NOP
// counts steering who arrives first. Samples are half ping durations.
func runEarlyLate(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	x, y := s.Traffic.ComputeX, s.Traffic.ComputeY
	msg := make([]byte, n)
	samples := make([]float64, 0, iters)

	spawn(c, a, "ping", func(t *smp.Thread) {
		for i := 0; i < iters; i++ {
			must(barrier(t, a, b.ID(), true))
			start := t.Now()
			t.Compute(x)
			must(a.Send(t, b.ID(), msg))
			t.Compute(y)
			_, err := a.Recv(t, b.ID(), n)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds()/2)
		}
	})
	spawn(c, b, "pong", func(t *smp.Thread) {
		for i := 0; i < iters; i++ {
			must(barrier(t, b, a.ID(), false))
			t.Compute(y)
			_, err := b.Recv(t, a.ID(), n)
			must(err)
			t.Compute(x)
			must(b.Send(t, a.ID(), msg))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: early/late finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(2*iters) * uint64(n), nil
}

// runOneShot measures a single warmup-free transfer end to end with the
// receiver's start delayed by DelayUS; the one sample is the completion
// time in microseconds (used by the go-back-N recovery measurements,
// where trimming would hide the event under test).
func runOneShot(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	msg := make([]byte, n)
	recvDelay := sim.Duration(s.Traffic.DelayUS * float64(sim.Microsecond))
	var done sim.Time
	spawn(c, a, "src", func(t *smp.Thread) {
		must(a.Send(t, b.ID(), msg))
	})
	c.Nodes[b.ID().Node].SpawnAt(recvDelay, "dst-recv", b.Endpoint().CPU, func(t *smp.Thread) {
		_, err := b.Recv(t, a.ID(), n)
		must(err)
		done = t.Now()
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if done == 0 {
		return nil, 0, fmt.Errorf("scenario: oneshot transfer never completed")
	}
	return []float64{sim.Duration(done).Microseconds()}, uint64(n), nil
}

// ranks flattens the cluster's processes in (node, proc) order.
func ranks(c *cluster.Cluster) []*comm.Comm {
	cms := make([]*comm.Comm, 0, c.Procs())
	for node := range c.Nodes {
		for proc := 0; proc < c.ProcsPerNode(); proc++ {
			cms = append(cms, comm.At(c, node, proc))
		}
	}
	return cms
}

// runHotspot drives the all-to-one shape: every rank except Root sends
// Messages messages of Size bytes to Root, which services its senders
// round-robin. With enough senders the root's pushed buffer overflows,
// exercising discard-and-repull (Push-Pull) or per-channel go-back-N
// recovery (fully eager) under contention. Samples are send-start to
// receive-complete times.
func runHotspot(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	cms := ranks(c)
	root := s.Traffic.Root
	if root < 0 || root >= len(cms) {
		return nil, 0, fmt.Errorf("scenario: hotspot root %d out of range (%d ranks)", root, len(cms))
	}
	if len(cms) < 2 {
		return nil, 0, fmt.Errorf("scenario: hotspot needs at least 2 ranks, have %d", len(cms))
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	sink := cms[root]
	var senders []*comm.Comm
	for r, cm := range cms {
		if r != root {
			senders = append(senders, cm)
		}
	}

	starts := make([][]sim.Time, len(senders))
	dones := make([][]sim.Time, len(senders))
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	for si, cm := range senders {
		si, cm := si, cm
		starts[si] = make([]sim.Time, msgs)
		dones[si] = make([]sim.Time, msgs)
		spawn(c, cm, fmt.Sprintf("hot-src%d", si), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				starts[si][i] = t.Now()
				must(cm.Send(t, sink.ID(), payload))
			}
		})
	}
	spawn(c, sink, "hot-sink", func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			for si, cm := range senders {
				_, err := sink.Recv(t, cm.ID(), n)
				must(err)
				dones[si][i] = t.Now()
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, len(senders)*msgs)
	for si := range senders {
		for i := 0; i < msgs; i++ {
			if dones[si][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: hotspot sender %d message %d never completed", si, i)
			}
			samples = append(samples, dones[si][i].Sub(starts[si][i]).Microseconds())
		}
	}
	return samples, uint64(len(senders)*msgs) * uint64(n), nil
}

// permutationOf derives a deterministic fixed-point-free permutation of
// p elements from seed (Fisher-Yates off the scenario's own stream, then
// a rotation fix-up for any fixed points).
func permutationOf(p int, seed uint64) []int {
	rng := sim.NewRand(seed ^ 0xA5C3_96E7_D18B_42F0)
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	for i := p - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < p; i++ {
		if perm[i] == i {
			perm[i], perm[(i+1)%p] = perm[(i+1)%p], perm[i]
		}
	}
	return perm
}

// runPermutation streams Messages messages of Size bytes from every rank
// to its seed-derived permutation partner, all channels concurrently —
// the classic random-permutation stress of an interconnect. Each rank
// runs one sender and one receiver thread.
func runPermutation(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	cms := ranks(c)
	p := len(cms)
	if p < 2 {
		return nil, 0, fmt.Errorf("scenario: permutation needs at least 2 ranks, have %d", p)
	}
	perm := permutationOf(p, s.Seed)
	inv := make([]int, p)
	for i, t := range perm {
		inv[t] = i
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)

	starts := make([][]sim.Time, p)
	dones := make([][]sim.Time, p)
	for r, cm := range cms {
		r, cm := r, cm
		starts[r] = make([]sim.Time, msgs)
		dones[r] = make([]sim.Time, msgs)
		to := cms[perm[r]].ID()
		from := cms[inv[r]].ID()
		spawn(c, cm, fmt.Sprintf("perm-src%d", r), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				starts[r][i] = t.Now()
				must(cm.Send(t, to, payload))
			}
		})
		spawn(c, cm, fmt.Sprintf("perm-dst%d", r), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := cm.Recv(t, from, n)
				must(err)
				// Completion of sender inv[r]'s i-th message.
				dones[inv[r]][i] = t.Now()
			}
		})
	}
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, p*msgs)
	for r := 0; r < p; r++ {
		for i := 0; i < msgs; i++ {
			if dones[r][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: permutation rank %d message %d never completed", r, i)
			}
			samples = append(samples, dones[r][i].Sub(starts[r][i]).Microseconds())
		}
	}
	return samples, uint64(p*msgs) * uint64(n), nil
}

// runBursty pairs the first half of the ranks with the second half;
// every sender emits BurstLen back-to-back messages, idles BurstIdleUS,
// and repeats until Messages messages are out. The off periods let
// receivers drain, so latency is bimodal: head-of-burst messages see a
// quiet network, tail-of-burst messages queue behind their own burst.
func runBursty(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	cms := ranks(c)
	p := len(cms)
	if p < 2 || p%2 != 0 {
		return nil, 0, fmt.Errorf("scenario: bursty needs an even rank count >= 2, have %d", p)
	}
	burst := s.Traffic.BurstLen
	if burst <= 0 {
		burst = 8
	}
	idle := sim.Duration(s.Traffic.BurstIdleUS * float64(sim.Microsecond))
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)
	half := p / 2

	starts := make([][]sim.Time, half)
	dones := make([][]sim.Time, half)
	for si := 0; si < half; si++ {
		si := si
		src, dst := cms[si], cms[half+si]
		starts[si] = make([]sim.Time, msgs)
		dones[si] = make([]sim.Time, msgs)
		spawn(c, src, fmt.Sprintf("burst-src%d", si), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				if i > 0 && i%burst == 0 && idle > 0 {
					t.P.Sleep(idle)
				}
				starts[si][i] = t.Now()
				must(src.Send(t, dst.ID(), payload))
			}
		})
		spawn(c, dst, fmt.Sprintf("burst-dst%d", si), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := dst.Recv(t, src.ID(), n)
				must(err)
				dones[si][i] = t.Now()
			}
		})
	}
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, half*msgs)
	for si := 0; si < half; si++ {
		for i := 0; i < msgs; i++ {
			if dones[si][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: bursty pair %d message %d never completed", si, i)
			}
			samples = append(samples, dones[si][i].Sub(starts[si][i]).Microseconds())
		}
	}
	return samples, uint64(half*msgs) * uint64(n), nil
}

// runPipeline chains every rank: rank 0 generates Messages messages of
// Size bytes, each intermediate rank receives from its predecessor and
// forwards to its successor, and the last rank sinks them. Samples are
// end-to-end (injection to final delivery) times, so pipeline fill and
// per-hop store-and-forward cost both show.
func runPipeline(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	cms := ranks(c)
	p := len(cms)
	if p < 2 {
		return nil, 0, fmt.Errorf("scenario: pipeline needs at least 2 ranks, have %d", p)
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)
	starts := make([]sim.Time, msgs)
	dones := make([]sim.Time, msgs)

	head := cms[0]
	spawn(c, head, "pipe-head", func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			starts[i] = t.Now()
			must(head.Send(t, cms[1].ID(), payload))
		}
	})
	for r := 1; r < p-1; r++ {
		r := r
		cm := cms[r]
		spawn(c, cm, fmt.Sprintf("pipe-stage%d", r), func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := cm.Recv(t, cms[r-1].ID(), n)
				must(err)
				must(cm.Send(t, cms[r+1].ID(), payload))
			}
		})
	}
	tail := cms[p-1]
	spawn(c, tail, "pipe-tail", func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			_, err := tail.Recv(t, cms[p-2].ID(), n)
			must(err)
			dones[i] = t.Now()
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, msgs)
	for i := 0; i < msgs; i++ {
		if dones[i] == 0 {
			return nil, 0, fmt.Errorf("scenario: pipeline message %d never reached the tail", i)
		}
		samples = append(samples, dones[i].Sub(starts[i]).Microseconds())
	}
	return samples, uint64((p-1)*msgs) * uint64(n), nil
}
