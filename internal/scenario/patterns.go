package scenario

import (
	"fmt"
	"sort"

	"pushpull/internal/cluster"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
	"pushpull/internal/vm"
)

// patternFunc drives one traffic shape on a built cluster and returns
// the per-message latency samples (µs) plus the payload bytes the
// pattern delivered. Implementations spawn threads, call c.Run()
// exactly once, and must be deterministic given the cluster's seed.
type patternFunc func(c *cluster.Cluster, s Spec) (samples []float64, bytes uint64, err error)

// patternDoc describes one pattern for listings.
type patternDoc struct {
	run patternFunc
	doc string
}

var patterns = map[string]patternDoc{
	"pingpong":    {runPingPong, "two endpoints ping-pong Messages times; samples are half round trips (paper Figs. 3/4)"},
	"bandwidth":   {runBandwidthPattern, "unidirectional stream with a 4 B ack per message; samples are send+ack times (paper §5 bandwidth)"},
	"earlylate":   {runEarlyLate, "compute-then-communicate ping-pong with ComputeX/ComputeY NOPs (paper Fig. 6)"},
	"oneshot":     {runOneShot, "one untimed transfer with the receiver delayed DelayUS; the sample is the completion time"},
	"hotspot":     {runHotspot, "every rank sends Messages messages to rank Root; all-to-one buffer pressure"},
	"permutation": {runPermutation, "each rank streams to a seed-derived fixed-point-free permutation partner"},
	"bursty":      {runBursty, "sender ranks emit BurstLen-message bursts separated by BurstIdleUS of silence"},
	"pipeline":    {runPipeline, "rank 0 feeds a store-and-forward chain through every rank; samples are end-to-end"},
	"wavefront":   {runWavefront, "irregular: each received message triggers Fanout sends of data-derived sizes to data-derived targets"},
}

// PatternNames lists the traffic patterns, sorted.
func PatternNames() []string {
	names := make([]string, 0, len(patterns))
	for name := range patterns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PatternDoc returns the one-line description of a pattern.
func PatternDoc(name string) string { return patterns[name].doc }

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// defaultVirtualBudget bounds runs whose spec does not set one: ten
// virtual minutes, far beyond any legitimate scenario on this testbed.
const defaultVirtualBudget = 10 * 60 * 1000 // ms

// runSim drives the cluster within the spec's virtual-time budget. It
// returns an error if the budget expired with events still pending —
// the signature of a protocol deadlock or RTO livelock (see Spec
// .MaxVirtualMS); the caller's own completion checks add pattern
// context.
func runSim(c *cluster.Cluster, s Spec) error {
	budget := s.MaxVirtualMS
	if budget <= 0 {
		budget = defaultVirtualBudget
	}
	limit := sim.Time(0).Add(sim.Duration(budget * float64(sim.Millisecond)))
	c.Engine.RunUntil(limit)
	if c.Engine.Pending() > 0 {
		return fmt.Errorf("scenario: virtual budget of %g ms exhausted with %d events still pending — protocol deadlock or retransmission livelock",
			budget, c.Engine.Pending())
	}
	return nil
}

// pair returns the two communicating endpoints of the two-endpoint
// patterns: (0,0) and, on a single-node cluster, (0,1), otherwise (1,0)
// — exactly the bench harness's Workload.build choice.
func pair(c *cluster.Cluster) (a, b *pushpull.Endpoint) {
	a = c.Endpoint(0, 0)
	if len(c.Nodes) == 1 {
		return a, c.Endpoint(0, 1)
	}
	return a, c.Endpoint(1, 0)
}

// barrier performs the paper's barrier: a simple 4-byte ping-pong.
func barrier(t *smp.Thread, self, peer *pushpull.Endpoint,
	src, dst vm.VirtAddr, initiator bool) error {
	tiny := []byte{1, 2, 3, 4}
	if initiator {
		if err := self.Send(t, peer.ID, src, tiny); err != nil {
			return err
		}
		_, err := self.Recv(t, peer.ID, dst, 4)
		return err
	}
	if _, err := self.Recv(t, peer.ID, dst, 4); err != nil {
		return err
	}
	return self.Send(t, peer.ID, src, tiny)
}

// runPingPong is the paper's latency test: Messages timed round trips
// after one barrier; each sample is half a round trip in microseconds.
func runPingPong(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i)
	}
	aSrc, aDst := a.Alloc(max(n, 4)), a.Alloc(max(n, 4))
	bSrc, bDst := b.Alloc(max(n, 4)), b.Alloc(max(n, 4))
	samples := make([]float64, 0, iters)

	c.Nodes[a.ID.Node].Spawn("ping", a.CPU, func(t *smp.Thread) {
		must(barrier(t, a, b, aSrc, aDst, true))
		for i := 0; i < iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID, aSrc, msg))
			_, err := a.Recv(t, b.ID, aDst, n)
			must(err)
			rt := t.Now().Sub(start)
			samples = append(samples, rt.Microseconds()/2)
		}
	})
	c.Nodes[b.ID.Node].Spawn("pong", b.CPU, func(t *smp.Thread) {
		must(barrier(t, b, a, bSrc, bDst, false))
		for i := 0; i < iters; i++ {
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			must(b.Send(t, a.ID, bSrc, msg))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: ping-pong finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(2*iters) * uint64(n), nil
}

// runBandwidthPattern is the paper's bandwidth test body: Messages
// iterations of "send Size bytes, receive a 4-byte acknowledgement";
// each sample is one send+ack time in microseconds. (The paper's MB/s
// figure subtracts a 4-byte single-trip baseline; internal/bench and the
// Result's Throughput field both derive rates from these samples.)
func runBandwidthPattern(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	msg := make([]byte, n)
	ackBuf := []byte{1, 2, 3, 4}
	aSrc, aDst := a.Alloc(n), a.Alloc(4)
	bSrc, bDst := b.Alloc(4), b.Alloc(n)
	samples := make([]float64, 0, iters)

	c.Nodes[a.ID.Node].Spawn("src", a.CPU, func(t *smp.Thread) {
		must(barrier(t, a, b, aSrc, aDst, true))
		for i := 0; i < iters; i++ {
			start := t.Now()
			must(a.Send(t, b.ID, aSrc, msg))
			_, err := a.Recv(t, b.ID, aDst, 4)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds())
		}
	})
	c.Nodes[b.ID.Node].Spawn("sink", b.CPU, func(t *smp.Thread) {
		must(barrier(t, b, a, bSrc, bDst, false))
		for i := 0; i < iters; i++ {
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			must(b.Send(t, a.ID, bSrc, ackBuf))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: bandwidth finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(iters) * uint64(n), nil
}

// runEarlyLate is the paper's redesigned ping-pong (Fig. 5): both sides
// compute before they communicate, with ComputeX and ComputeY NOP
// counts steering who arrives first. Samples are half ping durations.
func runEarlyLate(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	iters := s.Traffic.Messages
	x, y := s.Traffic.ComputeX, s.Traffic.ComputeY
	msg := make([]byte, n)
	aSrc, aDst := a.Alloc(max(n, 4)), a.Alloc(max(n, 4))
	bSrc, bDst := b.Alloc(max(n, 4)), b.Alloc(max(n, 4))
	samples := make([]float64, 0, iters)

	c.Nodes[a.ID.Node].Spawn("ping", a.CPU, func(t *smp.Thread) {
		for i := 0; i < iters; i++ {
			must(barrier(t, a, b, aSrc, aDst, true))
			start := t.Now()
			t.Compute(x)
			must(a.Send(t, b.ID, aSrc, msg))
			t.Compute(y)
			_, err := a.Recv(t, b.ID, aDst, n)
			must(err)
			samples = append(samples, t.Now().Sub(start).Microseconds()/2)
		}
	})
	c.Nodes[b.ID.Node].Spawn("pong", b.CPU, func(t *smp.Thread) {
		for i := 0; i < iters; i++ {
			must(barrier(t, b, a, bSrc, bDst, false))
			t.Compute(y)
			_, err := b.Recv(t, a.ID, bDst, n)
			must(err)
			t.Compute(x)
			must(b.Send(t, a.ID, bSrc, msg))
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if len(samples) != iters {
		return nil, 0, fmt.Errorf("scenario: early/late finished %d of %d iterations (deadlock?)", len(samples), iters)
	}
	return samples, uint64(2*iters) * uint64(n), nil
}

// runOneShot measures a single warmup-free transfer end to end with the
// receiver's start delayed by DelayUS; the one sample is the completion
// time in microseconds (used by the go-back-N recovery measurements,
// where trimming would hide the event under test).
func runOneShot(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	a, b := pair(c)
	n := s.Traffic.Size
	msg := make([]byte, n)
	src := a.Alloc(n)
	dst := b.Alloc(n)
	recvDelay := sim.Duration(s.Traffic.DelayUS * float64(sim.Microsecond))
	var done sim.Time
	c.Nodes[a.ID.Node].Spawn("src", a.CPU, func(t *smp.Thread) {
		must(a.Send(t, b.ID, src, msg))
	})
	c.Nodes[b.ID.Node].SpawnAt(recvDelay, "dst-recv", b.CPU, func(t *smp.Thread) {
		_, err := b.Recv(t, a.ID, dst, n)
		must(err)
		done = t.Now()
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}
	if done == 0 {
		return nil, 0, fmt.Errorf("scenario: oneshot transfer never completed")
	}
	return []float64{sim.Duration(done).Microseconds()}, uint64(n), nil
}

// ranks flattens the cluster's endpoints in (node, proc) order.
func ranks(c *cluster.Cluster) []*pushpull.Endpoint {
	var eps []*pushpull.Endpoint
	for node := range c.Nodes {
		for proc := 0; ; proc++ {
			ep := c.Stacks[node].Endpoint(proc)
			if ep == nil {
				break
			}
			eps = append(eps, ep)
		}
	}
	return eps
}

// runHotspot drives the all-to-one shape: every rank except Root sends
// Messages messages of Size bytes to Root, which services its senders
// round-robin. With enough senders the root's pushed buffer overflows,
// exercising discard-and-repull (Push-Pull) or go-back-N recovery
// (Push-All) under contention. Samples are send-start to
// receive-complete times.
func runHotspot(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	eps := ranks(c)
	root := s.Traffic.Root
	if root < 0 || root >= len(eps) {
		return nil, 0, fmt.Errorf("scenario: hotspot root %d out of range (%d ranks)", root, len(eps))
	}
	if len(eps) < 2 {
		return nil, 0, fmt.Errorf("scenario: hotspot needs at least 2 ranks, have %d", len(eps))
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	sink := eps[root]
	var senders []*pushpull.Endpoint
	for r, ep := range eps {
		if r != root {
			senders = append(senders, ep)
		}
	}

	starts := make([][]sim.Time, len(senders))
	dones := make([][]sim.Time, len(senders))
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	for si, ep := range senders {
		si, ep := si, ep
		starts[si] = make([]sim.Time, msgs)
		dones[si] = make([]sim.Time, msgs)
		src := ep.Alloc(n)
		c.Nodes[ep.ID.Node].Spawn(fmt.Sprintf("hot-src%d", si), ep.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				starts[si][i] = t.Now()
				must(ep.Send(t, sink.ID, src, payload))
			}
		})
	}
	dst := sink.Alloc(n)
	c.Nodes[sink.ID.Node].Spawn("hot-sink", sink.CPU, func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			for si, ep := range senders {
				_, err := sink.Recv(t, ep.ID, dst, n)
				must(err)
				dones[si][i] = t.Now()
			}
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, len(senders)*msgs)
	for si := range senders {
		for i := 0; i < msgs; i++ {
			if dones[si][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: hotspot sender %d message %d never completed", si, i)
			}
			samples = append(samples, dones[si][i].Sub(starts[si][i]).Microseconds())
		}
	}
	return samples, uint64(len(senders)*msgs) * uint64(n), nil
}

// permutationOf derives a deterministic fixed-point-free permutation of
// p elements from seed (Fisher-Yates off the scenario's own stream, then
// a rotation fix-up for any fixed points).
func permutationOf(p int, seed uint64) []int {
	rng := sim.NewRand(seed ^ 0xA5C3_96E7_D18B_42F0)
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	for i := p - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i := 0; i < p; i++ {
		if perm[i] == i {
			perm[i], perm[(i+1)%p] = perm[(i+1)%p], perm[i]
		}
	}
	return perm
}

// runPermutation streams Messages messages of Size bytes from every rank
// to its seed-derived permutation partner, all channels concurrently —
// the classic random-permutation stress of an interconnect. Each rank
// runs one sender and one receiver thread.
func runPermutation(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	eps := ranks(c)
	p := len(eps)
	if p < 2 {
		return nil, 0, fmt.Errorf("scenario: permutation needs at least 2 ranks, have %d", p)
	}
	perm := permutationOf(p, s.Seed)
	inv := make([]int, p)
	for i, t := range perm {
		inv[t] = i
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)

	starts := make([][]sim.Time, p)
	dones := make([][]sim.Time, p)
	for r, ep := range eps {
		r, ep := r, ep
		starts[r] = make([]sim.Time, msgs)
		dones[r] = make([]sim.Time, msgs)
		to := eps[perm[r]]
		from := eps[inv[r]]
		src := ep.Alloc(n)
		dst := ep.Alloc(n)
		c.Nodes[ep.ID.Node].Spawn(fmt.Sprintf("perm-src%d", r), ep.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				starts[r][i] = t.Now()
				must(ep.Send(t, to.ID, src, payload))
			}
		})
		c.Nodes[ep.ID.Node].Spawn(fmt.Sprintf("perm-dst%d", r), ep.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := ep.Recv(t, from.ID, dst, n)
				must(err)
				// Completion of sender inv[r]'s i-th message.
				dones[inv[r]][i] = t.Now()
			}
		})
	}
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, p*msgs)
	for r := 0; r < p; r++ {
		for i := 0; i < msgs; i++ {
			if dones[r][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: permutation rank %d message %d never completed", r, i)
			}
			samples = append(samples, dones[r][i].Sub(starts[r][i]).Microseconds())
		}
	}
	return samples, uint64(p*msgs) * uint64(n), nil
}

// runBursty pairs the first half of the ranks with the second half;
// every sender emits BurstLen back-to-back messages, idles BurstIdleUS,
// and repeats until Messages messages are out. The off periods let
// receivers drain, so latency is bimodal: head-of-burst messages see a
// quiet network, tail-of-burst messages queue behind their own burst.
func runBursty(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	eps := ranks(c)
	p := len(eps)
	if p < 2 || p%2 != 0 {
		return nil, 0, fmt.Errorf("scenario: bursty needs an even rank count >= 2, have %d", p)
	}
	burst := s.Traffic.BurstLen
	if burst <= 0 {
		burst = 8
	}
	idle := sim.Duration(s.Traffic.BurstIdleUS * float64(sim.Microsecond))
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)
	half := p / 2

	starts := make([][]sim.Time, half)
	dones := make([][]sim.Time, half)
	for si := 0; si < half; si++ {
		si := si
		src, dst := eps[si], eps[half+si]
		starts[si] = make([]sim.Time, msgs)
		dones[si] = make([]sim.Time, msgs)
		srcBuf := src.Alloc(n)
		dstBuf := dst.Alloc(n)
		c.Nodes[src.ID.Node].Spawn(fmt.Sprintf("burst-src%d", si), src.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				if i > 0 && i%burst == 0 && idle > 0 {
					t.P.Sleep(idle)
				}
				starts[si][i] = t.Now()
				must(src.Send(t, dst.ID, srcBuf, payload))
			}
		})
		c.Nodes[dst.ID.Node].Spawn(fmt.Sprintf("burst-dst%d", si), dst.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := dst.Recv(t, src.ID, dstBuf, n)
				must(err)
				dones[si][i] = t.Now()
			}
		})
	}
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, half*msgs)
	for si := 0; si < half; si++ {
		for i := 0; i < msgs; i++ {
			if dones[si][i] == 0 {
				return nil, 0, fmt.Errorf("scenario: bursty pair %d message %d never completed", si, i)
			}
			samples = append(samples, dones[si][i].Sub(starts[si][i]).Microseconds())
		}
	}
	return samples, uint64(half*msgs) * uint64(n), nil
}

// runPipeline chains every rank: rank 0 generates Messages messages of
// Size bytes, each intermediate rank receives from its predecessor and
// forwards to its successor, and the last rank sinks them. Samples are
// end-to-end (injection to final delivery) times, so pipeline fill and
// per-hop store-and-forward cost both show.
func runPipeline(c *cluster.Cluster, s Spec) ([]float64, uint64, error) {
	eps := ranks(c)
	p := len(eps)
	if p < 2 {
		return nil, 0, fmt.Errorf("scenario: pipeline needs at least 2 ranks, have %d", p)
	}
	n := s.Traffic.Size
	msgs := s.Traffic.Messages
	payload := make([]byte, n)
	starts := make([]sim.Time, msgs)
	dones := make([]sim.Time, msgs)

	head := eps[0]
	headBuf := head.Alloc(n)
	c.Nodes[head.ID.Node].Spawn("pipe-head", head.CPU, func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			starts[i] = t.Now()
			must(head.Send(t, eps[1].ID, headBuf, payload))
		}
	})
	for r := 1; r < p-1; r++ {
		r := r
		ep := eps[r]
		in, out := ep.Alloc(n), ep.Alloc(n)
		c.Nodes[ep.ID.Node].Spawn(fmt.Sprintf("pipe-stage%d", r), ep.CPU, func(t *smp.Thread) {
			for i := 0; i < msgs; i++ {
				_, err := ep.Recv(t, eps[r-1].ID, in, n)
				must(err)
				must(ep.Send(t, eps[r+1].ID, out, payload))
			}
		})
	}
	tail := eps[p-1]
	tailBuf := tail.Alloc(n)
	c.Nodes[tail.ID.Node].Spawn("pipe-tail", tail.CPU, func(t *smp.Thread) {
		for i := 0; i < msgs; i++ {
			_, err := tail.Recv(t, eps[p-2].ID, tailBuf, n)
			must(err)
			dones[i] = t.Now()
		}
	})
	if err := runSim(c, s); err != nil {
		return nil, 0, err
	}

	samples := make([]float64, 0, msgs)
	for i := 0; i < msgs; i++ {
		if dones[i] == 0 {
			return nil, 0, fmt.Errorf("scenario: pipeline message %d never reached the tail", i)
		}
		samples = append(samples, dones[i].Sub(starts[i]).Microseconds())
	}
	return samples, uint64((p-1)*msgs) * uint64(n), nil
}
