package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// small returns spec with its traffic scaled down for test wall time.
func small(s Spec) Spec {
	if s.Traffic.Messages > 20 {
		s.Traffic.Messages = 20
	}
	if s.Traffic.Pattern == "wavefront" {
		s.Traffic.Messages = 2
		s.Traffic.Depth = 3
	}
	if s.Traffic.Pattern == "earlylate" {
		s.Traffic.Messages = 5
	}
	return s
}

// TestBuiltinScenariosRun drives every registered scenario end to end:
// no deadlocks, every message delivered, a sane result.
func TestBuiltinScenariosRun(t *testing.T) {
	specs := Builtin()
	if len(specs) < 8 {
		t.Fatalf("need at least 8 builtin scenarios (3 paper-derived + 5 new patterns), have %d", len(specs))
	}
	seen := map[string]bool{}
	for _, spec := range specs {
		spec := small(spec)
		t.Run(spec.Name, func(t *testing.T) {
			if seen[spec.Name] {
				t.Fatalf("duplicate scenario name %q", spec.Name)
			}
			seen[spec.Name] = true
			res, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if res.Receives == 0 {
				t.Error("scenario completed zero receives")
			}
			if res.Bytes == 0 {
				t.Error("scenario delivered zero payload bytes")
			}
			if res.VirtualUS <= 0 {
				t.Errorf("virtual time %v not positive", res.VirtualUS)
			}
			if res.Latency.N == 0 || res.Latency.TrimmedMean <= 0 {
				t.Errorf("no usable latency samples: %+v", res.Latency)
			}
			if res.Digest == "" {
				t.Error("result not sealed with a digest")
			}
			if res.Samples != nil {
				t.Error("samples kept without KeepSamples")
			}
		})
	}
	// The acceptance floor: the five genuinely new workload shapes all
	// have a registered scenario.
	for _, pattern := range []string{"hotspot", "permutation", "bursty", "pipeline", "wavefront"} {
		found := false
		for _, spec := range specs {
			if spec.Traffic.Pattern == pattern {
				found = true
			}
		}
		if !found {
			t.Errorf("no builtin scenario exercises pattern %q", pattern)
		}
	}
}

// TestDeterminismSameSeed is the engine's core guarantee: an identical
// spec (same seed) produces a byte-identical result, digest included —
// samples, virtual times, event counts, everything.
func TestDeterminismSameSeed(t *testing.T) {
	for _, name := range []string{"hotspot", "wavefront", "lossy-permutation", "hub-hotspot"} {
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = small(spec)
			a, err := Run(spec, KeepSamples())
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(spec, KeepSamples())
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("same spec, same seed, different digests:\n  %s\n  %s", a.Digest, b.Digest)
			}
			aj, bj := string(a.JSON()), string(b.JSON())
			if aj != bj {
				t.Fatalf("same digest but different encodings:\n%s\n---\n%s", aj, bj)
			}
		})
	}
}

// TestDeterminismDifferentSeeds: changing only the seed must change the
// event interleavings. The seed steers the traffic shape (wavefront,
// permutation) and the modelled nondeterminism (frame loss, hub
// backoff), so on these scenarios the runs must diverge.
func TestDeterminismDifferentSeeds(t *testing.T) {
	for _, name := range []string{"wavefront", "lossy-permutation"} {
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			spec = small(spec)
			a, err := Run(spec, KeepSamples())
			if err != nil {
				t.Fatal(err)
			}
			spec.Seed = spec.Seed + 1
			b, err := Run(spec, KeepSamples())
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest == b.Digest {
				t.Fatalf("seeds %d and %d produced identical runs (digest %s)", a.Seed, b.Seed, a.Digest)
			}
		})
	}
}

// TestSpecJSONRoundTrip: rendering a spec and parsing it back must be
// the identity, and parsing overlays onto the paper defaults.
func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range Builtin() {
		back, err := ParseSpec(spec.JSON())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if string(back.JSON()) != string(spec.JSON()) {
			t.Errorf("%s: JSON round trip changed the spec", spec.Name)
		}
	}

	// A sparse spec inherits the testbed defaults.
	sparse, err := ParseSpec([]byte(`{"name":"tweak","traffic":{"pattern":"pingpong","size":64,"messages":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultSpec()
	if sparse.Protocol.BTP != def.Protocol.BTP || !sparse.Protocol.MaskTranslation {
		t.Errorf("sparse spec lost protocol defaults: %+v", sparse.Protocol)
	}
	// An explicit zero still overrides.
	zeroed, err := ParseSpec([]byte(`{"protocol":{"btp1":0,"btp2":0,"btp":0,"overlapAck":false},"traffic":{"pattern":"pingpong","size":64,"messages":3}}`))
	if err != nil {
		t.Fatal(err)
	}
	if zeroed.Protocol.BTP != 0 || zeroed.Protocol.OverlapAck {
		t.Errorf("explicit zeros did not override defaults: %+v", zeroed.Protocol)
	}
}

// TestSpecValidation rejects the junk a CLI user can type.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad mode", func(s *Spec) { s.Protocol.Mode = "push-some" }, "unknown protocol mode"},
		{"bad pattern", func(s *Spec) { s.Traffic.Pattern = "saturate" }, "unknown traffic pattern"},
		{"bad topology", func(s *Spec) { s.Topology.Kind = "torus" }, "unknown topology kind"},
		{"bad policy", func(s *Spec) { s.Topology.Policy = "adaptive" }, "unknown interrupt policy"},
		{"zero size", func(s *Spec) { s.Traffic.Size = 0 }, "size must be positive"},
		{"zero messages", func(s *Spec) { s.Traffic.Messages = 0 }, "messages must be positive"},
		{"hub rails", func(s *Spec) { s.Topology.Kind = "hub"; s.Topology.Rails = 2 }, "multi-rail"},
		{"one process", func(s *Spec) { s.Topology.Nodes = 1; s.Topology.ProcsPerNode = 1 }, "at least 2"},
		{"back-to-back too big", func(s *Spec) { s.Topology.Nodes = 8 }, "at most 2 nodes"},
		{"algorithm on plain pattern", func(s *Spec) { s.Traffic.Algorithm = "ring" }, "does not take an algorithm"},
		{"bad collective algorithm", func(s *Spec) {
			s.Topology = Topology{Kind: "switch", Nodes: 4, ProcsPerNode: 1}
			s.Traffic = Traffic{Pattern: "allreduce", Size: 1024, Messages: 5, Algorithm: "quantum"}
		}, "no algorithm \"quantum\""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := DefaultSpec()
			tc.mut(&spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestResultJSONShape guards the documented result schema: the fields
// downstream tooling parses must stay present under their JSON names.
func TestResultJSONShape(t *testing.T) {
	spec, err := ByName("pipeline")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(small(spec), KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(res.JSON(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"scenario", "pattern", "seed", "ranks", "virtualUS", "receives",
		"bytes", "throughputMBps", "latency", "endpoints", "events",
		"discardedBytes", "samples", "digest",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("result JSON is missing documented key %q", key)
		}
	}
}

// TestHotspotAppliesBufferPressure: the all-to-one shape must actually
// stress the sink's pushed buffer — the park/discard machinery (or
// go-back-N refusals) has to fire, otherwise the pattern is not doing
// its job.
func TestHotspotAppliesBufferPressure(t *testing.T) {
	spec, err := ByName("hotspot")
	if err != nil {
		t.Fatal(err)
	}
	spec.Traffic.Messages = 20
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events["park"] == 0 && res.Events["discard"] == 0 && res.Events["refuse"] == 0 {
		t.Errorf("hotspot run never pressured the pushed buffer; events: %v", res.Events)
	}
	// Seven senders × 20 messages, plus no losses: exact delivery count.
	var sunk uint64
	for _, ep := range res.Endpoints {
		if ep.Node == 0 && ep.Proc == 0 {
			sunk = ep.Received
		}
	}
	if sunk != 7*20 {
		t.Errorf("sink received %d messages, want %d", sunk, 7*20)
	}
}

// TestPermutationIsFixedPointFree: every rank must talk to somebody
// else, for any seed and any rank count.
func TestPermutationIsFixedPointFree(t *testing.T) {
	for p := 2; p <= 9; p++ {
		for seed := uint64(0); seed < 50; seed++ {
			perm := permutationOf(p, seed)
			used := make([]bool, p)
			for i, v := range perm {
				if v == i {
					t.Fatalf("p=%d seed=%d: rank %d maps to itself (%v)", p, seed, i, perm)
				}
				if used[v] {
					t.Fatalf("p=%d seed=%d: %v is not a permutation", p, seed, perm)
				}
				used[v] = true
			}
		}
	}
}

// TestWavefrontIsDataDependent: the wavefront's plan must vary with the
// seed (it is derived from payload bytes), and the run must match its
// plan exactly — the mismatch check is what makes the data dependence
// falsifiable.
func TestWavefrontIsDataDependent(t *testing.T) {
	p := wfParams{ranks: 6, root: 0, width: 3, fanout: 2, depth: 4, minSize: 64, maxSize: 2048}
	_, msgs1, bytes1 := p.plan(1)
	_, msgs2, bytes2 := p.plan(2)
	if msgs1 != msgs2 {
		t.Errorf("message count should depend only on shape: %d vs %d", msgs1, msgs2)
	}
	if bytes1 == bytes2 {
		t.Errorf("byte totals for different seeds agree (%d); sizes are not data-derived", bytes1)
	}

	spec, err := ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	spec = small(spec)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := wavefrontParams(spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, wantMsgs, wantBytes := wp.plan(spec.Seed)
	if res.Bytes != wantBytes {
		t.Errorf("run delivered %d bytes, plan predicts %d", res.Bytes, wantBytes)
	}
	var delivered uint64
	for _, ep := range res.Endpoints {
		delivered += ep.Received
	}
	if delivered != uint64(wantMsgs) {
		t.Errorf("run delivered %d messages, plan predicts %d", delivered, wantMsgs)
	}
}

// TestBurstyIdlesTheWire: with long off periods the run must take at
// least the sum of the idle gaps — i.e. the sleeps really happen.
func TestBurstyIdlesTheWire(t *testing.T) {
	spec, err := ByName("bursty")
	if err != nil {
		t.Fatal(err)
	}
	spec.Traffic.Messages = 32
	spec.Traffic.BurstLen = 8
	spec.Traffic.BurstIdleUS = 10_000
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 32 messages in bursts of 8 → 3 idle gaps of 10 ms each.
	if res.VirtualUS < 30_000 {
		t.Errorf("bursty run finished in %.0f µs; the 3×10 ms idle gaps did not happen", res.VirtualUS)
	}
}

// TestRunConfigSeedReachesTraffic: a Result must be reproducible from
// its own output, so seed-derived traffic has to draw from the cluster
// seed RunConfig reports — not from a zero-valued spec field.
func TestRunConfigSeedReachesTraffic(t *testing.T) {
	spec, err := ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	spec = small(spec)
	spec.Seed = 9
	viaRun, err := Run(spec, KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.clusterConfig()
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 0 // RunConfig must take the seed from cfg, not from here
	viaRunConfig, err := RunConfig(cfg, spec, KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	if viaRun.Digest != viaRunConfig.Digest {
		t.Fatalf("RunConfig ignored the cluster seed for traffic derivation:\n  Run:       %s\n  RunConfig: %s",
			viaRun.Digest, viaRunConfig.Digest)
	}
}

// TestWavefrontRejectsBadSizes: explicit out-of-range size bounds are
// errors, not silent substitutions.
func TestWavefrontRejectsBadSizes(t *testing.T) {
	spec, err := ByName("wavefront")
	if err != nil {
		t.Fatal(err)
	}
	spec = small(spec)
	spec.Traffic.MinSize = 10 // below the 17-byte payload header
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "payload header") {
		t.Errorf("tiny minSize: got %v, want a payload-header error", err)
	}
	spec.Traffic.MinSize = 64
	spec.Traffic.MaxSize = 32
	if _, err := Run(spec); err == nil || !strings.Contains(err.Error(), "below minSize") {
		t.Errorf("inverted bounds: got %v, want a below-minSize error", err)
	}
}

// TestTightBudgetAcceptsCompletedRun: a run that finishes inside its
// budget must pass even when the budget is far below the go-back-N
// RTO — stale cancelled timer events must not read as pending work or
// drag VirtualUS an RTO past the last delivery.
func TestTightBudgetAcceptsCompletedRun(t *testing.T) {
	spec := DefaultSpec()
	spec.Traffic = Traffic{Pattern: "pingpong", Size: 64, Messages: 1}
	spec.MaxVirtualMS = 5 // well under the 150 ms RTO
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("completed run reported as livelocked: %v", err)
	}
	if res.VirtualUS >= 5000 {
		t.Errorf("VirtualUS = %.1f µs; the cancelled RTO tail is back", res.VirtualUS)
	}
}

// TestEagerOverflowScenarioCompletes is the livelock regression pinned
// by the per-channel session redesign. The builtin "eager-overflow"
// scenario — a seed-42 convergent wavefront whose data-derived sizes
// fall below the 760 B BTP, so refused fully-eager fragments meet a full
// pushed buffer — permanently livelocked the old shared per-node-pair
// go-back-N stream (the refused fragment blocked the pull data that
// would have freed the buffer; the RTO retransmitted forever). With one
// go-back-N lane set per channel, eager, pull and control traffic can
// never block each other, and the run must complete well inside its
// pinned 3000 ms budget. The digest is additionally pinned with every
// other builtin in testdata/digests.json.
func TestEagerOverflowScenarioCompletes(t *testing.T) {
	spec, err := ByName("eager-overflow")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 42 || spec.MaxVirtualMS != 3000 {
		t.Fatalf("regression spec drifted: seed=%d budget=%v", spec.Seed, spec.MaxVirtualMS)
	}
	res, err := Run(spec)
	if IsBudgetError(err) {
		t.Fatalf("eager-overflow exhausted its virtual-time budget again — per-channel lane isolation regressed: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest == "" {
		t.Fatal("result not sealed with a digest")
	}
	// The run needs exactly one RTO tail (~151.6 virtual ms); anything
	// close to the budget means refusals are chaining again.
	if res.VirtualUS > 1_000_000 {
		t.Errorf("eager-overflow took %.0f virtual µs; refusal recovery is chaining (budget %g ms)", res.VirtualUS, spec.MaxVirtualMS)
	}
	if ev := res.Events["refuse"]; ev == 0 {
		t.Error("scenario exercised no refusals — it no longer pins the eager-overflow path")
	}
}

// TestAdaptiveScenarioInstallsController: the adaptive spec must behave
// differently from the identical static spec (the AIMD controller is
// actually wired in).
func TestAdaptiveScenarioInstallsController(t *testing.T) {
	spec, err := ByName("wavefront-adaptive")
	if err != nil {
		t.Fatal(err)
	}
	spec = small(spec)
	adaptive, err := Run(spec, KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	spec.Protocol.Adaptive = false
	static, err := Run(spec, KeepSamples())
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Digest == static.Digest {
		t.Error("adaptive and static runs are identical; the AIMD controller is not installed")
	}
}
