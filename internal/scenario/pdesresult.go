package scenario

// PDESResult reports how the conservative-PDES run loop orchestrated a
// partitioned run: the knobs (workers, shards, lookahead) and the
// schedule-derived counters. Everything except Workers is a pure
// function of the event schedule, so two runs of the same spec at
// different worker counts report identical counters — and identical
// digests, since the whole struct is attached after sealing.
type PDESResult struct {
	// Workers is the requested parallelism; Shards the number of child
	// engines the topology was split into (one per node, plus one for
	// the switch fabric when present).
	Workers int `json:"workers"`
	Shards  int `json:"shards"`
	// LookaheadNS is the conservative window width: the minimum
	// propagation delay over all inter-shard links.
	LookaheadNS int64 `json:"lookaheadNS"`
	// Supersteps counts parallel child windows; RootSteps exclusive
	// root-engine phases; RoutedEvents cross-shard events exchanged at
	// window barriers.
	Supersteps   uint64 `json:"supersteps"`
	RootSteps    uint64 `json:"rootSteps"`
	RoutedEvents uint64 `json:"routedEvents"`
	// MeanReady/MaxReady describe how many shards had work per
	// superstep — the available parallelism.
	MeanReady float64 `json:"meanReady"`
	MaxReady  int     `json:"maxReady"`
	// LookaheadUtilization is the mean fraction of the lookahead window
	// each superstep actually spanned (1.0 = every window ran the full
	// lookahead before a barrier was needed).
	LookaheadUtilization float64 `json:"lookaheadUtilization"`
}
