package scenario

import "testing"

// The PDES contract at the scenario level: for any builtin on an
// eligible topology, the result digest is byte-identical for ANY worker
// count. (PDES results may legitimately differ from the sequential
// engine's — shards draw from split RNG streams — which is why the
// pinned-digest capture stays on the sequential path; the invariant
// here is worker-count independence.)

// pdesScenarios are the representative builtins the equality test runs:
// switch and back-to-back fabrics, wire loss, a fault plan with
// stateful Gilbert-Elliott bursts inside a collective, and a
// data-dependent wavefront.
var pdesScenarios = []string{
	"paper-internode-pingpong", // back-to-back, the paper's testbed
	"permutation",              // switch fabric, concurrent channels
	"lossy-permutation",        // per-frame loss draws on shard RNGs
	"flaky-link-allreduce",     // fault plan + per-direction burst chains
	"wavefront",                // data-derived sizes and targets
}

func runBuiltinAt(t *testing.T, name string, workers int) *Result {
	t.Helper()
	return runBuiltinSeedAt(t, name, 0, workers)
}

// runBuiltinSeedAt runs a builtin with an optional seed override
// (0 keeps the spec's own seed, like the CLI's -seed flag).
func runBuiltinSeedAt(t *testing.T, name string, seed uint64, workers int) *Result {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 0 {
		s.Seed = seed
	}
	s.ParallelWorkers = workers
	res, err := Run(s)
	if err != nil {
		t.Fatalf("%s seed %d at %d workers: %v", name, seed, workers, err)
	}
	return res
}

// TestPDESWavefrontSeedsWorkerIndependent is the regression test for
// the shared-reactor-state race: wavefront's data-dependent traffic
// puts a reactor thread per directed channel on every node's shard, and
// an early version let them append to one shared sample slice — at some
// seeds (7 was one) concurrent shards interleaved and the digest
// flapped between invocations and worker counts. The per-reactor
// accumulators fix it; this pins digest equality across worker counts
// and across repeated runs at those seeds specifically, since the
// default-seed schedule never overlapped reactors enough to trip it.
func TestPDESWavefrontSeedsWorkerIndependent(t *testing.T) {
	for _, seed := range []uint64{7, 13} {
		base := runBuiltinSeedAt(t, "wavefront", seed, 1)
		if base.PDES == nil {
			t.Fatalf("seed %d: eligible topology ran without a partition", seed)
		}
		rerun := runBuiltinSeedAt(t, "wavefront", seed, 4)
		if rerun.Digest != runBuiltinSeedAt(t, "wavefront", seed, 4).Digest {
			t.Errorf("seed %d: repeated 4-worker runs disagree", seed)
		}
		for _, w := range []int{2, 4, 8} {
			res := runBuiltinSeedAt(t, "wavefront", seed, w)
			if res.Digest != base.Digest {
				t.Errorf("seed %d: digest differs at %d vs 1 workers:\n %s\n %s",
					seed, w, res.Digest, base.Digest)
			}
		}
	}
}

func TestPDESDigestsWorkerIndependent(t *testing.T) {
	for _, name := range pdesScenarios {
		base := runBuiltinAt(t, name, 1)
		if base.PDES == nil {
			t.Fatalf("%s: eligible topology ran without a partition", name)
		}
		for _, w := range []int{2, 4} {
			res := runBuiltinAt(t, name, w)
			if res.Digest != base.Digest {
				t.Errorf("%s: digest differs at %d vs 1 workers:\n %s\n %s",
					name, w, res.Digest, base.Digest)
			}
			if res.PDES == nil || res.PDES.Workers != w {
				t.Errorf("%s: PDES section missing or mislabelled at %d workers: %+v", name, w, res.PDES)
			}
			// The orchestration counters are schedule-derived: identical
			// regardless of workers.
			if res.PDES != nil && (res.PDES.Supersteps != base.PDES.Supersteps ||
				res.PDES.RoutedEvents != base.PDES.RoutedEvents) {
				t.Errorf("%s: superstep counters differ across worker counts:\n %+v\n %+v",
					name, res.PDES, base.PDES)
			}
		}
	}
}

// TestPDESFallbackSequential pins the eligibility gate: topologies with
// no conservative lookahead (one shared hub segment, a single SMP node)
// silently run on the plain sequential engine — same digest as
// workers=0, no PDES section.
func TestPDESFallbackSequential(t *testing.T) {
	for _, name := range []string{"hub-hotspot", "paper-intranode-pingpong"} {
		seq := runBuiltinAt(t, name, 0)
		par := runBuiltinAt(t, name, 4)
		if par.PDES != nil {
			t.Errorf("%s: ineligible topology reports a PDES section: %+v", name, par.PDES)
		}
		if par.Digest != seq.Digest {
			t.Errorf("%s: fallback digest differs from sequential: %s vs %s", name, par.Digest, seq.Digest)
		}
	}
}

// TestPDESSequentialUnaffected pins that workers=0 still runs the plain
// single-engine path with no PDES section, on an eligible topology.
func TestPDESSequentialUnaffected(t *testing.T) {
	res := runBuiltinAt(t, "permutation", 0)
	if res.PDES != nil {
		t.Errorf("workers=0 run reports a PDES section: %+v", res.PDES)
	}
}
