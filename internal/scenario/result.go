package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"pushpull/internal/stats"
)

// Result is the machine-readable outcome of one scenario run. Every
// field is derived from virtual time and deterministic counters, so a
// given (spec, seed) pair produces a byte-identical encoding — the
// Digest makes that property checkable at a glance.
type Result struct {
	// Scenario and Pattern identify what ran; Seed is the run's seed.
	Scenario string `json:"scenario"`
	Pattern  string `json:"pattern"`
	Seed     uint64 `json:"seed"`
	// Ranks is the number of communicating endpoints.
	Ranks int `json:"ranks"`
	// VirtualUS is the final virtual clock in microseconds.
	VirtualUS float64 `json:"virtualUS"`
	// Receives counts completed application-level Recv operations
	// across all endpoints — pattern payloads plus the barrier/credit
	// exchanges some patterns use (it always equals the sum of the
	// Endpoints' Received fields). Bytes counts pattern payload bytes
	// only; wire-level protocol traffic is visible in Events.
	Receives uint64 `json:"receives"`
	Bytes    uint64 `json:"bytes"`
	// ThroughputMBps is Bytes over the full virtual run time.
	ThroughputMBps float64 `json:"throughputMBps"`
	// Latency summarizes the pattern's per-message samples (µs) with the
	// paper's middle-80% trimmed-mean methodology.
	Latency stats.Summary `json:"latency"`
	// Endpoints reports per-endpoint completed operation counts.
	Endpoints []EndpointResult `json:"endpoints"`
	// Events counts structured protocol events by kind (push, park,
	// discard, pull-req, rto, retransmit, ...).
	Events map[string]uint64 `json:"events"`
	// DiscardedBytes totals pushed bytes receivers dropped for lack of
	// pushed-buffer space (re-fetched by the pull phase).
	DiscardedBytes uint64 `json:"discardedBytes"`
	// Samples holds the raw per-message latencies (µs) when the run was
	// asked to keep them.
	Samples []float64 `json:"samples,omitempty"`
	// Digest is a SHA-256 over the canonical encoding of everything
	// above (including samples): two runs agree iff their digests do.
	Digest string `json:"digest"`
}

// EndpointResult is one endpoint's operation counters.
type EndpointResult struct {
	Node     int    `json:"node"`
	Proc     int    `json:"proc"`
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
}

// seal computes the digest. keepSamples controls whether the raw
// samples stay in the emitted result; they are always digested, so the
// digest is insensitive to the choice.
func (r *Result) seal(samples []float64, keepSamples bool) {
	r.Samples = samples
	r.Digest = ""
	enc, err := json.Marshal(r)
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	sum := sha256.Sum256(enc)
	r.Digest = hex.EncodeToString(sum[:])
	if !keepSamples {
		r.Samples = nil
	}
}

// JSON renders the result indented for files and stdout.
func (r *Result) JSON() []byte {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return out
}
