package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"

	"pushpull/internal/cluster"
	"pushpull/internal/stats"
)

// Result is the machine-readable outcome of one scenario run. Every
// field is derived from virtual time and deterministic counters, so a
// given (spec, seed) pair produces a byte-identical encoding — the
// Digest makes that property checkable at a glance.
type Result struct {
	// Scenario and Pattern identify what ran; Seed is the run's seed.
	Scenario string `json:"scenario"`
	Pattern  string `json:"pattern"`
	Seed     uint64 `json:"seed"`
	// Ranks is the number of communicating endpoints.
	Ranks int `json:"ranks"`
	// VirtualUS is the final virtual clock in microseconds.
	VirtualUS float64 `json:"virtualUS"`
	// Receives counts completed application-level Recv operations
	// across all endpoints — pattern payloads plus the barrier/credit
	// exchanges some patterns use (it always equals the sum of the
	// Endpoints' Received fields). Bytes counts pattern payload bytes
	// only; wire-level protocol traffic is visible in Events.
	Receives uint64 `json:"receives"`
	Bytes    uint64 `json:"bytes"`
	// ThroughputMBps is Bytes over the full virtual run time.
	ThroughputMBps float64 `json:"throughputMBps"`
	// Latency summarizes the pattern's per-message samples (µs) with the
	// paper's middle-80% trimmed-mean methodology.
	Latency stats.Summary `json:"latency"`
	// Endpoints reports per-endpoint completed operation counts.
	Endpoints []EndpointResult `json:"endpoints"`
	// Events counts structured protocol events by kind (push, park,
	// discard, pull-req, rto, retransmit, ...).
	Events map[string]uint64 `json:"events"`
	// DiscardedBytes totals pushed bytes receivers dropped for lack of
	// pushed-buffer space (re-fetched by the pull phase).
	DiscardedBytes uint64 `json:"discardedBytes"`
	// Degradation is present only when the spec armed a fault plan. It
	// is part of the digest: a fault scenario pins its degradation and
	// recovery behaviour exactly like its traffic.
	Degradation *Degradation `json:"degradation,omitempty"`
	// FrameLoss breaks down where frames died in the fabric, attached
	// for every networked run. It is set after sealing and excluded
	// from the digest (see seal), so the pre-existing pinned digests —
	// including the lossy ones — are unaffected by its introduction.
	FrameLoss *cluster.FrameLoss `json:"frameLoss,omitempty"`
	// PDES reports the conservative-PDES orchestration counters when the
	// run executed on a partitioned cluster (Spec.ParallelWorkers > 0 on
	// an eligible topology). Like FrameLoss it is set after sealing and
	// excluded from the digest: the superstep counters are identical for
	// any worker count, but Workers itself is the knob `make pdes-check`
	// varies while demanding byte-identical digests.
	PDES *PDESResult `json:"pdes,omitempty"`
	// Samples holds the raw per-message latencies (µs) when the run was
	// asked to keep them.
	Samples []float64 `json:"samples,omitempty"`
	// Digest is a SHA-256 over the canonical encoding of everything
	// above (including samples): two runs agree iff their digests do.
	Digest string `json:"digest"`
}

// EndpointResult is one endpoint's operation counters.
type EndpointResult struct {
	Node     int    `json:"node"`
	Proc     int    `json:"proc"`
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
}

// Degradation quantifies fault impact and transport reaction for a run
// that armed a fault plan (Spec.Faults).
type Degradation struct {
	// Nodes reports per-node fault exposure and reaction, by node ID.
	Nodes []NodeDegradation `json:"nodes"`
	// Totals of the per-node transport counters below.
	Retransmissions uint64 `json:"retransmissions"`
	Timeouts        uint64 `json:"timeouts"`
	Recovered       uint64 `json:"recovered"`
	FailedOps       uint64 `json:"failedOps"`
	// BackoffRTO summarizes the adaptive timeout values (µs) armed
	// after each expiry — count/mean/p50/p90/p99/max, the tail being
	// what exponential backoff is about — with a histogram exposing the
	// spread. Present only when Protocol.AdaptiveRTO is on and at least
	// one timeout fired.
	BackoffRTO  *stats.Quantiles `json:"backoffRTO,omitempty"`
	BackoffHist *stats.Histogram `json:"backoffHist,omitempty"`
	// LastFaultUS is the virtual time the last scheduled fault window
	// ended (clamped to the run's end); RecoveryUS is how long the run
	// kept going after that — the post-fault recovery tail, 0 when the
	// run finished inside a fault window.
	LastFaultUS float64 `json:"lastFaultUS"`
	RecoveryUS  float64 `json:"recoveryUS"`
}

// NodeDegradation is one node's view of the plan: how long its
// links/ports were scheduled unusable, what the burst overlay ate, and
// how its outbound go-back-N sessions reacted.
type NodeDegradation struct {
	Node int `json:"node"`
	// DowntimeUS totals this node's scheduled link/port/pause downtime
	// windows, merged and clamped to the run's end.
	DowntimeUS float64 `json:"downtimeUS"`
	// BurstLosses counts frames the Gilbert–Elliott overlay dropped on
	// this node's links.
	BurstLosses uint64 `json:"burstLosses"`
	// Outbound session counters summed over all peers.
	Retransmissions uint64 `json:"retransmissions"`
	Timeouts        uint64 `json:"timeouts"`
	Recovered       uint64 `json:"recovered"`
	// FailedOps counts operations this node failed with an
	// unreachable-peer error; DeadPeers lists who it gave up on.
	FailedOps uint64 `json:"failedOps"`
	DeadPeers []int  `json:"deadPeers,omitempty"`
}

// seal computes the digest. keepSamples controls whether the raw
// samples stay in the emitted result; they are always digested, so the
// digest is insensitive to the choice.
func (r *Result) seal(samples []float64, keepSamples bool) {
	r.Samples = samples
	r.Digest = ""
	fl := r.FrameLoss
	r.FrameLoss = nil // observational, not digested (restored below)
	enc, err := json.Marshal(r)
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	sum := sha256.Sum256(enc)
	r.Digest = hex.EncodeToString(sum[:])
	r.FrameLoss = fl
	if !keepSamples {
		r.Samples = nil
	}
}

// JSON renders the result indented for files and stdout.
func (r *Result) JSON() []byte {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return out
}
