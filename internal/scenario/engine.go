package scenario

import (
	"fmt"

	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/stats"
	"pushpull/internal/trace"
)

// RunOption tunes one Run call without touching the spec.
type RunOption func(*runOpts)

type runOpts struct {
	keepSamples bool
}

// KeepSamples retains the raw per-message latency samples in the
// Result (they are always part of the digest).
func KeepSamples() RunOption {
	return func(o *runOpts) { o.keepSamples = true }
}

// Run validates the spec, builds the described cluster and drives the
// traffic pattern on it, returning the machine-readable result.
func Run(spec Spec, opts ...RunOption) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, err := spec.clusterConfig()
	if err != nil {
		return nil, err
	}
	return RunConfig(cfg, spec, opts...)
}

// RunConfig is Run for callers that already hold a full cluster.Config
// (the bench harness sweeps config fields the declarative topology
// doesn't name, e.g. NIC ring sizes or SMP path costs). The spec
// contributes the traffic pattern, the adaptive-protocol switch and the
// labels; the cluster seed comes from cfg.
func RunConfig(cfg cluster.Config, spec Spec, opts ...RunOption) (*Result, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	pat, ok := patterns[spec.Traffic.Pattern]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown traffic pattern %q (have %v)", spec.Traffic.Pattern, PatternNames())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The cluster seed is authoritative: seed-derived traffic
	// (permutation partners, wavefront keys) must draw from the same
	// seed the Result reports, or the run would not be reproducible
	// from its own output.
	spec.Seed = cfg.Seed

	c := cluster.New(cfg)
	// One recorder per node: under a partitioned (PDES) cluster each
	// node's stack records from its own shard, so the recorders must not
	// be shared. Sequential clusters get the same layout — the Result
	// only reads per-kind counts, which merge below, so the layout is
	// digest-neutral either way.
	recs := make([]*trace.Recorder, len(c.Stacks))
	for i := range recs {
		recs[i] = trace.NewRecorder(4096)
	}
	c.SetNodeRecorders(recs)
	if spec.Protocol.Adaptive {
		ac := spec.adaptConfig(cfg.Opts)
		for _, st := range c.Stacks {
			st.SetAdapter(adapt.NewController(ac))
		}
	}

	samples, bytes, err := runPattern(c, pat.run, spec)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scenario:  spec.Name,
		Pattern:   spec.Traffic.Pattern,
		Seed:      cfg.Seed,
		VirtualUS: sim.Duration(c.Now()).Microseconds(),
		Latency:   stats.Summarize(samples),
		Events:    make(map[string]uint64),
	}
	for _, rec := range recs {
		for _, kind := range rec.Kinds() {
			res.Events[string(kind)] += rec.Count(kind)
		}
	}
	var receives uint64
	for node, st := range c.Stacks {
		res.DiscardedBytes += st.DiscardedBytes()
		for proc := 0; proc < st.Procs(); proc++ {
			ep := st.Endpoint(proc)
			res.Endpoints = append(res.Endpoints, EndpointResult{
				Node: node, Proc: proc, Sent: ep.Sent(), Received: ep.Received(),
			})
			receives += ep.Received()
			res.Ranks++
		}
	}
	res.Receives = receives
	res.Bytes = bytes
	if res.VirtualUS > 0 {
		res.ThroughputMBps = float64(bytes) / res.VirtualUS // bytes/µs == MB/s
	}
	if c.Faults != nil {
		res.Degradation = degradation(c)
	}
	res.seal(samples, o.keepSamples)
	if len(c.NICs) > 0 {
		fl := c.FrameLoss()
		res.FrameLoss = &fl
	}
	if st, ok := c.PDESStats(); ok {
		// Attached after sealing, like FrameLoss: the superstep counters
		// are schedule-derived (identical for any worker count), but
		// Workers is the one knob that may legitimately differ between
		// two otherwise identical runs — and `make pdes-check` diffs
		// exactly those digests.
		res.PDES = &PDESResult{
			Workers:              c.Partition.Workers(),
			Shards:               c.Partition.Shards(),
			LookaheadNS:          int64(c.Partition.Lookahead()),
			Supersteps:           st.Supersteps,
			RootSteps:            st.RootSteps,
			RoutedEvents:         st.RoutedEvents,
			MeanReady:            st.MeanReady(),
			MaxReady:             st.MaxReady,
			LookaheadUtilization: st.LookaheadUtilization(),
		}
	}
	return res, nil
}

// runPattern drives the pattern and converts pattern-level panics on
// unreachable peers (the patterns' must() helper) into returned errors.
// Anything else is a real bug and keeps panicking. The engine is shut
// down on the recovery path: runSim's deferred Shutdown never ran when
// RunUntil re-raised a process panic, and without it the cluster's
// pumps would leak goroutines parked on the virtual clock.
func runPattern(c *cluster.Cluster, pat patternFunc, spec Spec) (samples []float64, bytes uint64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		perr, ok := r.(error)
		if !ok || !IsPeerUnreachable(perr) {
			panic(r)
		}
		c.Shutdown()
		samples, bytes = nil, 0
		err = perr
	}()
	return pat(c, spec)
}

// degradation assembles the fault-impact section from the compiled
// fault set and the stacks' transport counters.
func degradation(c *cluster.Cluster) *Degradation {
	d := &Degradation{}
	end := c.Now()
	var rto []float64
	for node, st := range c.Stacks {
		nd := NodeDegradation{
			Node:        node,
			DowntimeUS:  c.Faults.Downtime(node, end).Microseconds(),
			BurstLosses: c.Faults.BurstLosses(node),
			FailedOps:   st.FailedOps(),
			DeadPeers:   st.DeadPeers(),
		}
		for peer := range c.Stacks {
			if peer == node {
				continue
			}
			ls := st.LinkStats(peer)
			nd.Retransmissions += ls.Retransmissions
			nd.Timeouts += ls.Timeouts
			nd.Recovered += ls.Recovered
		}
		d.Nodes = append(d.Nodes, nd)
		d.Retransmissions += nd.Retransmissions
		d.Timeouts += nd.Timeouts
		d.Recovered += nd.Recovered
		d.FailedOps += nd.FailedOps
		rto = st.RTOSamples(rto)
	}
	last := c.Faults.LastFaultEnd()
	if last > end {
		last = end
	}
	d.LastFaultUS = sim.Duration(last).Microseconds()
	if end > last {
		d.RecoveryUS = end.Sub(last).Microseconds()
	}
	if len(rto) > 0 {
		q := stats.QuantileSummary(rto)
		d.BackoffRTO = &q
		d.BackoffHist = stats.NewHistogram(rto, 8)
	}
	return d
}
