package scenario

import (
	"fmt"

	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/sim"
	"pushpull/internal/stats"
	"pushpull/internal/trace"
)

// RunOption tunes one Run call without touching the spec.
type RunOption func(*runOpts)

type runOpts struct {
	keepSamples bool
}

// KeepSamples retains the raw per-message latency samples in the
// Result (they are always part of the digest).
func KeepSamples() RunOption {
	return func(o *runOpts) { o.keepSamples = true }
}

// Run validates the spec, builds the described cluster and drives the
// traffic pattern on it, returning the machine-readable result.
func Run(spec Spec, opts ...RunOption) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg, err := spec.clusterConfig()
	if err != nil {
		return nil, err
	}
	return RunConfig(cfg, spec, opts...)
}

// RunConfig is Run for callers that already hold a full cluster.Config
// (the bench harness sweeps config fields the declarative topology
// doesn't name, e.g. NIC ring sizes or SMP path costs). The spec
// contributes the traffic pattern, the adaptive-protocol switch and the
// labels; the cluster seed comes from cfg.
func RunConfig(cfg cluster.Config, spec Spec, opts ...RunOption) (*Result, error) {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	pat, ok := patterns[spec.Traffic.Pattern]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown traffic pattern %q (have %v)", spec.Traffic.Pattern, PatternNames())
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// The cluster seed is authoritative: seed-derived traffic
	// (permutation partners, wavefront keys) must draw from the same
	// seed the Result reports, or the run would not be reproducible
	// from its own output.
	spec.Seed = cfg.Seed

	c := cluster.New(cfg)
	rec := trace.NewRecorder(4096)
	c.SetRecorder(rec)
	if spec.Protocol.Adaptive {
		ac := spec.adaptConfig(cfg.Opts)
		for _, st := range c.Stacks {
			st.SetAdapter(adapt.NewController(ac))
		}
	}

	samples, bytes, err := pat.run(c, spec)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Scenario:  spec.Name,
		Pattern:   spec.Traffic.Pattern,
		Seed:      cfg.Seed,
		VirtualUS: sim.Duration(c.Engine.Now()).Microseconds(),
		Latency:   stats.Summarize(samples),
		Events:    make(map[string]uint64),
	}
	for _, kind := range rec.Kinds() {
		res.Events[string(kind)] = rec.Count(kind)
	}
	var receives uint64
	for node, st := range c.Stacks {
		res.DiscardedBytes += st.DiscardedBytes()
		for proc := 0; proc < st.Procs(); proc++ {
			ep := st.Endpoint(proc)
			res.Endpoints = append(res.Endpoints, EndpointResult{
				Node: node, Proc: proc, Sent: ep.Sent(), Received: ep.Received(),
			})
			receives += ep.Received()
			res.Ranks++
		}
	}
	res.Receives = receives
	res.Bytes = bytes
	if res.VirtualUS > 0 {
		res.ThroughputMBps = float64(bytes) / res.VirtualUS // bytes/µs == MB/s
	}
	res.seal(samples, o.keepSamples)
	return res, nil
}
