// Package scenario is the declarative workload engine: one Spec — a
// plain struct with a stable JSON encoding — composes a topology (hub,
// switch or back-to-back via internal/ether and internal/cluster), a
// protocol configuration (Push-Zero / Push-All / fixed-BTP Push-Pull /
// adaptive AIMD via internal/adapt) and a traffic pattern, then runs the
// whole thing deterministically on the simulation engine and emits a
// machine-readable Result.
//
// The paper's experiments (internal/bench) are expressed through the
// same engine; the pattern vocabulary additionally covers workload
// shapes the bespoke bench drivers could not: hotspot (all-to-one),
// random permutation, bursty on/off senders, pipeline chains, and an
// irregular wavefront where every received message triggers sends of
// data-derived sizes to data-derived targets.
package scenario

import (
	"encoding/json"
	"fmt"

	"pushpull/coll"
	"pushpull/internal/adapt"
	"pushpull/internal/cluster"
	"pushpull/internal/fault"
	"pushpull/internal/gbn"
	"pushpull/internal/pushpull"
	"pushpull/internal/sim"
	"pushpull/internal/smp"
)

// Spec is one complete declarative scenario. The zero value is not
// runnable; start from DefaultSpec (or ParseSpec, which overlays JSON on
// the defaults so absent fields keep the paper's testbed values).
type Spec struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Seed        uint64   `json:"seed"`
	Topology    Topology `json:"topology"`
	Protocol    Protocol `json:"protocol"`
	Traffic     Traffic  `json:"traffic"`
	// MaxVirtualMS bounds the run's virtual time (default 10 virtual
	// minutes). The modelled protocol can livelock — a refused
	// fully-eager fragment retransmits on RTO forever if the pushed
	// buffer slots it needs are held by messages queued behind it — and
	// the budget turns such runs into reported errors instead of hangs.
	MaxVirtualMS float64 `json:"maxVirtualMS,omitempty"`
	// Faults, when set, is the deterministic fault plan armed on the
	// topology (see internal/fault): link down/flap windows, correlated
	// loss bursts, switch-port blackouts, node pauses, NIC stalls. Runs
	// with a plan report a degradation section in their Result.
	Faults *fault.Plan `json:"faults,omitempty"`
	// ParallelWorkers > 0 enables conservative-PDES execution: the
	// topology is split into one shard per node (plus one for the switch)
	// and that many worker goroutines drain lookahead-bounded windows in
	// parallel. The digest is byte-identical for any worker count;
	// topologies without a conservative lookahead (hub, intranode,
	// zero-propagation links) silently run sequentially. 0 is the plain
	// sequential engine.
	ParallelWorkers int `json:"parallelWorkers,omitempty"`
}

// Topology selects the machines and the interconnect joining them.
type Topology struct {
	// Kind is "back-to-back" (two nodes, direct cables — the paper's
	// testbed), "switch" (store-and-forward), "hub" (one shared
	// half-duplex segment) or "intranode" (a single SMP node, no
	// network).
	Kind         string `json:"kind"`
	Nodes        int    `json:"nodes"`
	ProcsPerNode int    `json:"procsPerNode"`
	// Rails is the number of NICs + cables per node (back-to-back only).
	Rails int `json:"rails,omitempty"`
	// SwitchForwardUS and SwitchQueueFrames tune the switch model.
	SwitchForwardUS   float64 `json:"switchForwardUS,omitempty"`
	SwitchQueueFrames int     `json:"switchQueueFrames,omitempty"`
	// LossRate is the probability a serialized frame is lost on the wire.
	LossRate float64 `json:"lossRate,omitempty"`
	// Policy is the reception-handler invocation method: "symmetric",
	// "asymmetric" or "polling" (§2 stage 3 of the paper).
	Policy       string  `json:"policy,omitempty"`
	PolicyTarget int     `json:"policyTarget,omitempty"`
	PollPeriodUS float64 `json:"pollPeriodUS,omitempty"`
}

// Protocol configures the messaging stack on every node.
type Protocol struct {
	// Mode is "push-pull", "push-zero", "push-all" or "three-phase".
	Mode string `json:"mode"`
	// BTP / BTP1 / BTP2 / IntraBTP are the paper's Bytes-To-Push knobs.
	BTP      int `json:"btp"`
	BTP1     int `json:"btp1"`
	BTP2     int `json:"btp2"`
	IntraBTP int `json:"intraBTP"`
	// PushedBufBytes sizes each endpoint's pushed buffer.
	PushedBufBytes int `json:"pushedBufBytes"`
	// The three optimizing techniques of §4.3/§4.4.
	MaskTranslation bool `json:"maskTranslation"`
	OverlapAck      bool `json:"overlapAck"`
	UserTrigger     bool `json:"userTrigger"`
	// Ablation knobs (§4.1, §4.2).
	PullLocal         bool `json:"pullLocal,omitempty"`
	DisableZeroBuffer bool `json:"disableZeroBuffer,omitempty"`
	// Go-back-N reliability parameters.
	GBNWindow int     `json:"gbnWindow"`
	RTOMs     float64 `json:"rtoMs"`
	// AdaptiveRTO switches go-back-N from the fixed RTO to the RFC
	// 6298-style SRTT/RTTVAR estimator with exponential backoff;
	// MinRTOMs/MaxRTOMs clamp it (zero = the gbn package defaults).
	AdaptiveRTO bool    `json:"adaptiveRTO,omitempty"`
	MinRTOMs    float64 `json:"minRTOMs,omitempty"`
	MaxRTOMs    float64 `json:"maxRTOMs,omitempty"`
	// MaxRetries, when positive, is the retransmission budget: that many
	// consecutive timeouts with no progress declare the peer unreachable
	// and fail its operations with ErrPeerUnreachable.
	MaxRetries int `json:"maxRetries,omitempty"`
	// Adaptive installs the AIMD BTP controller (§3's dynamic
	// pushed-buffer remark) on every stack. AdaptMax bounds the adapted
	// BTP; zero means the pushed buffer size.
	Adaptive bool `json:"adaptive,omitempty"`
	AdaptMax int  `json:"adaptMax,omitempty"`
}

// Traffic selects the workload shape the built cluster runs. Fields not
// used by the chosen pattern are ignored.
type Traffic struct {
	// Pattern is one of the names in Patterns().
	Pattern string `json:"pattern"`
	// Size is the message size in bytes (fixed-size patterns; the
	// wavefront's root message size).
	Size int `json:"size"`
	// Messages is the per-sender message count (iterations for the
	// ping-pong style patterns; initial wavefront width).
	Messages int `json:"messages"`
	// ComputeX and ComputeY are the early/late receiver NOP counts
	// (pattern "earlylate", paper §5.3).
	ComputeX int64 `json:"computeX,omitempty"`
	ComputeY int64 `json:"computeY,omitempty"`
	// DelayUS delays the receiver's start (pattern "oneshot").
	DelayUS float64 `json:"delayUS,omitempty"`
	// BurstLen and BurstIdleUS shape the on/off senders (pattern
	// "bursty"): BurstLen back-to-back messages, then BurstIdleUS of
	// silence.
	BurstLen    int     `json:"burstLen,omitempty"`
	BurstIdleUS float64 `json:"burstIdleUS,omitempty"`
	// Root is the hotspot sink / wavefront origin rank.
	Root int `json:"root,omitempty"`
	// Fanout and Depth bound the wavefront: every message below Depth
	// triggers Fanout data-derived sends.
	Fanout int `json:"fanout,omitempty"`
	Depth  int `json:"depth,omitempty"`
	// MinSize and MaxSize bound the wavefront's data-derived sizes.
	MinSize int `json:"minSize,omitempty"`
	MaxSize int `json:"maxSize,omitempty"`
	// Algorithm selects the collective algorithm for the patterns that
	// take one (see coll.Algorithms); empty means the op's default.
	Algorithm string `json:"algorithm,omitempty"`
	// SegmentBytes sets the segment size of the segmented collective
	// algorithms (bcast pattern with "ring-seg"); 0 means
	// coll.DefaultSegmentBytes.
	SegmentBytes int `json:"segmentBytes,omitempty"`
}

// DefaultSpec is the paper's fully optimized two-node testbed running a
// 1000-iteration 1400 B ping-pong.
func DefaultSpec() Spec {
	opts := pushpull.DefaultOptions()
	g := gbn.DefaultConfig()
	return Spec{
		Name: "default",
		Seed: 1,
		Topology: Topology{
			Kind:         "back-to-back",
			Nodes:        2,
			ProcsPerNode: 1,
			Policy:       "symmetric",
		},
		Protocol: Protocol{
			Mode:            "push-pull",
			BTP:             opts.BTP,
			BTP1:            opts.BTP1,
			BTP2:            opts.BTP2,
			IntraBTP:        opts.IntraBTP,
			PushedBufBytes:  opts.PushedBufBytes,
			MaskTranslation: opts.MaskTranslation,
			OverlapAck:      opts.OverlapAck,
			UserTrigger:     opts.UserTrigger,
			GBNWindow:       g.Window,
			RTOMs:           float64(g.RTO / sim.Millisecond),
		},
		Traffic: Traffic{
			Pattern:  "pingpong",
			Size:     1400,
			Messages: 1000,
		},
	}
}

// ParseSpec overlays JSON onto DefaultSpec, so a spec file only states
// what differs from the paper's testbed.
func ParseSpec(data []byte) (Spec, error) {
	s := DefaultSpec()
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON renders the spec canonically (indented, stable field order).
func (s Spec) JSON() []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err) // plain-data struct: cannot fail
	}
	return out
}

// Validate reports spec errors without building anything.
func (s Spec) Validate() error {
	if _, err := parseMode(s.Protocol.Mode); err != nil {
		return err
	}
	if _, ok := patterns[s.Traffic.Pattern]; !ok {
		return fmt.Errorf("scenario: unknown traffic pattern %q (have %v)", s.Traffic.Pattern, PatternNames())
	}
	if s.Traffic.Size <= 0 {
		return fmt.Errorf("scenario: traffic size must be positive, got %d", s.Traffic.Size)
	}
	if s.Traffic.Messages <= 0 {
		return fmt.Errorf("scenario: traffic messages must be positive, got %d", s.Traffic.Messages)
	}
	if alg := s.Traffic.Algorithm; alg != "" {
		op, ok := collAlgOp[s.Traffic.Pattern]
		if !ok {
			return fmt.Errorf("scenario: pattern %q does not take an algorithm (patterns with one: %v)", s.Traffic.Pattern, algPatternNames())
		}
		if err := coll.ValidateAlgorithm(op, coll.Algorithm(alg)); err != nil {
			return err
		}
	}
	if s.Traffic.SegmentBytes < 0 {
		return fmt.Errorf("scenario: traffic segmentBytes %d is negative", s.Traffic.SegmentBytes)
	}
	if s.ParallelWorkers < 0 {
		return fmt.Errorf("scenario: parallelWorkers %d is negative", s.ParallelWorkers)
	}
	cfg, err := s.clusterConfig()
	if err != nil {
		return err
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	// Every pattern needs a communicating pair; the two-endpoint
	// patterns would otherwise panic deep in the cluster builder on a
	// one-process topology.
	if cfg.Nodes*cfg.ProcsPerNode < 2 {
		return fmt.Errorf("scenario: topology has %d process(es); every pattern needs at least 2", cfg.Nodes*cfg.ProcsPerNode)
	}
	return nil
}

func parseMode(mode string) (pushpull.Mode, error) {
	switch mode {
	case "push-pull":
		return pushpull.PushPull, nil
	case "push-zero":
		return pushpull.PushZero, nil
	case "push-all":
		return pushpull.PushAll, nil
	case "three-phase":
		return pushpull.ThreePhase, nil
	default:
		return 0, fmt.Errorf("scenario: unknown protocol mode %q", mode)
	}
}

func parsePolicy(policy string) (smp.Policy, error) {
	switch policy {
	case "", "symmetric":
		return smp.Symmetric, nil
	case "asymmetric":
		return smp.Asymmetric, nil
	case "polling":
		return smp.Polling, nil
	default:
		return 0, fmt.Errorf("scenario: unknown interrupt policy %q", policy)
	}
}

// clusterConfig lowers the declarative topology + protocol onto the
// cluster builder's configuration.
func (s Spec) clusterConfig() (cluster.Config, error) {
	cfg := cluster.DefaultConfig()
	cfg.Seed = s.Seed

	t := s.Topology
	if t.Nodes > 0 {
		cfg.Nodes = t.Nodes
	}
	if t.ProcsPerNode > 0 {
		cfg.ProcsPerNode = t.ProcsPerNode
	}
	switch t.Kind {
	case "", "back-to-back":
		// Direct cables join exactly two nodes; silently substituting a
		// switch would mislabel the results, so bigger clusters must say
		// "switch" or "hub" explicitly.
		if cfg.Nodes > 2 {
			return cluster.Config{}, fmt.Errorf("scenario: topology kind %q supports at most 2 nodes, got %d (use \"switch\" or \"hub\")", "back-to-back", cfg.Nodes)
		}
	case "switch":
		cfg.UseSwitch = true
	case "hub":
		cfg.UseHub = true
	case "intranode":
		cfg.Nodes = 1
		if t.ProcsPerNode <= 1 {
			cfg.ProcsPerNode = 2
		}
	default:
		return cluster.Config{}, fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
	if t.Rails > 0 {
		cfg.Rails = t.Rails
	}
	if t.SwitchForwardUS > 0 {
		cfg.SwitchForward = sim.Duration(t.SwitchForwardUS * float64(sim.Microsecond))
	}
	if t.SwitchQueueFrames > 0 {
		cfg.SwitchQueueFrames = t.SwitchQueueFrames
	}
	cfg.Net.LossRate = t.LossRate
	policy, err := parsePolicy(t.Policy)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg.Policy = policy
	cfg.PolicyTarget = t.PolicyTarget
	if t.PollPeriodUS > 0 {
		cfg.SMP.PollPeriod = sim.Duration(t.PollPeriodUS * float64(sim.Microsecond))
	}

	p := s.Protocol
	mode, err := parseMode(p.Mode)
	if err != nil {
		return cluster.Config{}, err
	}
	cfg.Opts.Mode = mode
	cfg.Opts.BTP = p.BTP
	cfg.Opts.BTP1 = p.BTP1
	cfg.Opts.BTP2 = p.BTP2
	cfg.Opts.IntraBTP = p.IntraBTP
	if p.PushedBufBytes > 0 {
		cfg.Opts.PushedBufBytes = p.PushedBufBytes
	}
	cfg.Opts.MaskTranslation = p.MaskTranslation
	cfg.Opts.OverlapAck = p.OverlapAck
	cfg.Opts.UserTrigger = p.UserTrigger
	cfg.Opts.PullLocal = p.PullLocal
	cfg.Opts.DisableZeroBuffer = p.DisableZeroBuffer
	if p.GBNWindow > 0 {
		cfg.Opts.GBN.Window = p.GBNWindow
	}
	if p.RTOMs > 0 {
		cfg.Opts.GBN.RTO = sim.Duration(p.RTOMs * float64(sim.Millisecond))
	}
	cfg.Opts.GBN.Adaptive = p.AdaptiveRTO
	if p.MinRTOMs > 0 {
		cfg.Opts.GBN.MinRTO = sim.Duration(p.MinRTOMs * float64(sim.Millisecond))
	}
	if p.MaxRTOMs > 0 {
		cfg.Opts.GBN.MaxRTO = sim.Duration(p.MaxRTOMs * float64(sim.Millisecond))
	}
	if p.MaxRetries > 0 {
		cfg.Opts.GBN.MaxRetries = p.MaxRetries
	}
	if err := cfg.Opts.Validate(); err != nil {
		return cluster.Config{}, err
	}
	cfg.FaultPlan = s.Faults
	cfg.ParallelWorkers = s.ParallelWorkers
	return cfg, nil
}

// adaptConfig builds the AIMD controller configuration for an adaptive
// spec.
func (s Spec) adaptConfig(opts pushpull.Options) adapt.Config {
	ac := adapt.DefaultConfig()
	ac.Max = s.Protocol.AdaptMax
	if ac.Max <= 0 {
		ac.Max = opts.PushedBufBytes
	}
	return ac
}
